#!/usr/bin/env bash
# Smoke-test the cordobad server end to end: boot it on a random port, offer
# ~100 open-loop queries, then SIGTERM and assert a clean drain (exit 0, the
# "drained:" report flushed) and a nonzero p99 in the client's tail report.
set -euo pipefail
cd "$(dirname "$0")/.."

work=$(mktemp -d)
trap 'kill -9 "$srv" 2>/dev/null || true; rm -rf "$work"' EXIT

go build -o "$work/cordobad" ./cmd/cordobad

addr_file="$work/addr"
"$work/cordobad" -sf 0.002 -workers 2 -addr 127.0.0.1:0 -addr-file "$addr_file" \
  >"$work/server.log" 2>&1 &
srv=$!

for _ in $(seq 1 150); do
  [ -s "$addr_file" ] && break
  kill -0 "$srv" 2>/dev/null || { echo "server died during startup:"; cat "$work/server.log"; exit 1; }
  sleep 0.2
done
[ -s "$addr_file" ] || { echo "server did not publish its address:"; cat "$work/server.log"; exit 1; }
addr=$(cat "$addr_file")
echo "server up at $addr"

client_out=$("$work/cordobad" -client -addr "$addr" -rate 300 -arrivals 100 -conns 4)
echo "$client_out"

kill -TERM "$srv"
rc=0
wait "$srv" || rc=$?
echo "--- server log ---"
cat "$work/server.log"

[ "$rc" -eq 0 ] || { echo "FAIL: server exited $rc on SIGTERM (want 0)"; exit 1; }
grep -q '^drained: completed=' "$work/server.log" \
  || { echo "FAIL: no drain report in server log"; exit 1; }
echo "$client_out" | grep -q 'offered=100' \
  || { echo "FAIL: client did not offer 100 arrivals"; exit 1; }
echo "$client_out" | grep -Eq ' ok=[1-9][0-9]* ' \
  || { echo "FAIL: no queries completed"; exit 1; }
echo "$client_out" | grep -q ' err=0 ' \
  || { echo "FAIL: client saw errors"; exit 1; }
echo "$client_out" | grep -q 'p99=' \
  || { echo "FAIL: no p99 in client report"; exit 1; }
if echo "$client_out" | grep -q 'p99=0s'; then
  echo "FAIL: p99 is zero"; exit 1
fi
echo "smoke-server OK"
