#!/usr/bin/env bash
# Smoke-test the cordobad server end to end: boot it on a random port with
# the metrics endpoint enabled, offer ~100 open-loop queries, scrape /metrics
# and assert a nonzero completed-query counter, then SIGTERM and assert a
# clean drain (exit 0, the "drained:" report flushed) and a nonzero p99 in
# the client's tail report.
set -euo pipefail
cd "$(dirname "$0")/.."

work=$(mktemp -d)
trap 'kill -9 "$srv" 2>/dev/null || true; rm -rf "$work"' EXIT

go build -o "$work/cordobad" ./cmd/cordobad

addr_file="$work/addr"
metrics_file="$work/metrics-addr"
"$work/cordobad" -sf 0.002 -workers 2 -addr 127.0.0.1:0 -addr-file "$addr_file" \
  -metrics 127.0.0.1:0 -metrics-file "$metrics_file" \
  >"$work/server.log" 2>&1 &
srv=$!

for _ in $(seq 1 150); do
  [ -s "$addr_file" ] && break
  kill -0 "$srv" 2>/dev/null || { echo "server died during startup:"; cat "$work/server.log"; exit 1; }
  sleep 0.2
done
[ -s "$addr_file" ] || { echo "server did not publish its address:"; cat "$work/server.log"; exit 1; }
addr=$(cat "$addr_file")
echo "server up at $addr"

client_out=$("$work/cordobad" -client -addr "$addr" -rate 300 -arrivals 100 -conns 4 -trace 3)
echo "$client_out"

# Scrape the Prometheus endpoint and assert the completed-query counter
# moved. exec through /dev/tcp keeps the scrape dependency-free.
[ -s "$metrics_file" ] || { echo "FAIL: server did not publish its metrics address"; exit 1; }
maddr=$(cat "$metrics_file")
mhost=${maddr%:*} mport=${maddr##*:}
exec 3<>"/dev/tcp/$mhost/$mport"
printf 'GET /metrics HTTP/1.0\r\nHost: %s\r\n\r\n' "$maddr" >&3
scrape=$(cat <&3)
exec 3<&- 3>&-
echo "$scrape" > "$work/metrics.txt"
echo "$scrape" | grep -Eq '^cordoba_queries_total [1-9]' \
  || { echo "FAIL: /metrics lacks a nonzero cordoba_queries_total"; head -40 "$work/metrics.txt"; exit 1; }
series=$(echo "$scrape" | grep -Ec '^cordoba_[a-z_]+(\{[^}]*\})? [0-9+.eE-]+$' || true)
[ "$series" -ge 20 ] || { echo "FAIL: /metrics serves $series series (want >= 20)"; exit 1; }
echo "metrics OK: $series series, completed counter nonzero"
echo "$client_out" | grep -q 'complete' \
  || { echo "FAIL: client trace dump lacks a complete span"; exit 1; }

kill -TERM "$srv"
rc=0
wait "$srv" || rc=$?
echo "--- server log ---"
cat "$work/server.log"

[ "$rc" -eq 0 ] || { echo "FAIL: server exited $rc on SIGTERM (want 0)"; exit 1; }
grep -q '^drained: completed=' "$work/server.log" \
  || { echo "FAIL: no drain report in server log"; exit 1; }
echo "$client_out" | grep -q 'offered=100' \
  || { echo "FAIL: client did not offer 100 arrivals"; exit 1; }
echo "$client_out" | grep -Eq ' ok=[1-9][0-9]* ' \
  || { echo "FAIL: no queries completed"; exit 1; }
echo "$client_out" | grep -q ' err=0 ' \
  || { echo "FAIL: client saw errors"; exit 1; }
echo "$client_out" | grep -q 'p99=' \
  || { echo "FAIL: no p99 in client report"; exit 1; }
if echo "$client_out" | grep -q 'p99=0s'; then
  echo "FAIL: p99 is zero"; exit 1
fi
echo "smoke-server OK"
