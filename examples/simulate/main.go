// Simulate: drive the deterministic CMP simulator directly — sweep the
// processor count for a query and compare measured sharing speedups against
// the model's predictions (a miniature Figure 5).
//
// Run with: go run ./examples/simulate
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/tpch"
)

func main() {
	pl := tpch.Plan(tpch.Q6)
	model := tpch.Model(tpch.Q6)
	fmt.Println("TPC-H Q6: sharing speedup, simulator (meas) vs analytical model (pred)")
	fmt.Printf("%9s", "clients")
	for _, n := range []int{1, 2, 8, 32} {
		fmt.Printf("  %7dcpu meas  %7dcpu pred", n, n)
	}
	fmt.Println()
	for _, m := range []int{1, 4, 8, 16, 32, 48} {
		fmt.Printf("%9d", m)
		for _, n := range []int{1, 2, 8, 32} {
			meas, err := sim.Speedup(pl, tpch.PivotName, m, sim.Config{Processors: n})
			if err != nil {
				log.Fatal(err)
			}
			pred := core.Z(model, m, core.NewEnv(float64(n)))
			fmt.Printf("  %11.3f  %11.3f", meas, pred)
		}
		fmt.Println()
	}

	// Utilization under sharing: why 32 contexts go to waste (Section 1.2).
	shared, err := sim.Run(pl, tpch.PivotName, 48, true, sim.Config{Processors: 32})
	if err != nil {
		log.Fatal(err)
	}
	unshared, err := sim.Run(pl, tpch.PivotName, 48, false, sim.Config{Processors: 32})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n48 clients on 32 contexts: shared execution uses %.1f contexts, unshared uses %.1f\n",
		shared.Utilization*32, unshared.Utilization*32)
	fmt.Printf("unshared outperforms shared by %.1fx (the paper's ~10x observation)\n",
		unshared.Throughput/shared.Throughput)
}
