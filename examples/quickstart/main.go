// Quickstart: build a query plan with measured work coefficients, compile
// it against a sharing pivot, and ask the analytical model whether a group
// of concurrent instances should share work on a given machine.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
)

func main() {
	// A three-stage pipelined query: a table scan feeding a filter feeding
	// an aggregate. Coefficients are per unit of forward progress (profile
	// your system, or see internal/profile for automated estimation).
	scan := core.NewNode("scan", 9, 10) // w=9 own work, s=10 per-consumer output
	filter := core.NewNode("filter", 2, 1, scan)
	agg := core.NewNode("agg", 1, 0, filter)
	plan := core.Plan{Name: "example", Root: agg}
	fmt.Print(plan)

	// Candidate pivot: share the scan among concurrent queries.
	q := core.MustCompile(plan, scan)
	fmt.Printf("\np_max=%.3g  u'=%.3g  peak utilization u=%.3g processors\n\n",
		q.PMax(), q.UPrime(), q.U())

	// Should 16 identical queries share the scan?
	for _, n := range []float64{1, 4, 32} {
		env := core.NewEnv(n)
		const m = 16
		z := core.Z(q, m, env)
		verdict := "run independently"
		if core.ShouldShare(q, m, env) {
			verdict = "share the scan"
		}
		fmt.Printf("%2.0f processors, %d clients: Z=%.3g -> %s\n", n, m, z, verdict)
	}

	// The same decision for a group that mixes different consumers above
	// the pivot (heterogeneous sharers, Section 5.1).
	light := q
	light.Above = []float64{0.5}
	heavy := q
	heavy.Above = []float64{8}
	group := core.Group{Members: []core.Query{light, heavy, heavy}}
	env := core.NewEnv(4)
	fmt.Printf("\nmixed group of 3 on 4 processors: Z=%.3g shared-x=%.3g unshared-x=%.3g\n",
		group.Z(env, core.Closed), group.SharedX(env), group.UnsharedX(env, core.Closed))
}
