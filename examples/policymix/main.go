// Policymix: the Figure 6 scenario. A closed system of clients runs a
// Q1/Q4 mix on the staged engine under the three sharing policies; the
// model-guided policy decides per submission, at runtime, whether joining a
// sharing group beats independent execution.
//
// Run with: go run ./examples/policymix
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/tpch"
	"repro/internal/workload"
)

func main() {
	db := tpch.MustGenerate(tpch.Config{ScaleFactor: 0.002, Seed: 7})
	const (
		workers  = 4
		clients  = 8
		duration = time.Second
	)
	mix := workload.EngineMix{
		Specs: map[string]engine.QuerySpec{
			"Q1": tpch.MustEngineSpec(tpch.Q1, db, 0),
			"Q4": tpch.MustEngineSpec(tpch.Q4, db, 0),
		},
		Assignment: workload.Assign("Q1", "Q4", clients, 0.5),
	}
	fmt.Printf("closed system: %d clients (50%% Q1 / 50%% Q4) on %d emulated processors\n\n", clients, workers)
	for _, p := range []engine.SharePolicy{
		policy.ModelGuided{Env: core.NewEnv(workers)},
		policy.Always{},
		policy.Never{},
	} {
		e, err := engine.New(engine.Options{Workers: workers})
		if err != nil {
			log.Fatal(err)
		}
		res, err := mix.Run(e, policy.ForEngine(p), duration)
		e.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7s: %5d completions (%8.0f q/min)  per class: %v\n",
			policy.Name(p), res.Completions, res.QueriesPerMinute, res.PerClass)
	}

	// The analytic evaluator predicts the same experiment on any hardware;
	// here is the paper's 32-context machine.
	fmt.Println("\nmodel-predicted policy ordering for 20 clients on 32 processors:")
	for _, pt := range workload.Figure6Series(tpch.Model(tpch.Q1), tpch.Model(tpch.Q4), 20, 32, 4) {
		fmt.Printf("  %3.0f%% Q4: model=%.3g never=%.3g always=%.3g\n",
			pt.FractionQ4*100, pt.Model, pt.Never, pt.Always)
	}
}
