// Sharedscan: the Figure 1 scenario on the real staged engine. Several
// clients submit TPC-H Q6 concurrently; under always-share the engine merges
// them at the scan and fans the pivot output out to every sharer. The
// example verifies all sharers receive the full, identical result and
// compares response times with independent execution.
//
// Run with: go run ./examples/sharedscan
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/tpch"
)

func main() {
	db := tpch.MustGenerate(tpch.Config{ScaleFactor: 0.01, Seed: 42})
	fmt.Printf("lineitem has %d rows in memory\n", db.Lineitem.NumRows())

	const clients = 8
	for _, mode := range []struct {
		name string
		pol  engine.SharePolicy
	}{
		{"always-share", policy.Always{}},
		{"never-share", policy.ForEngine(policy.Never{})},
	} {
		e, err := engine.New(engine.Options{Workers: 2})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		handles := make([]*engine.Handle, clients)
		for i := range handles {
			h, err := e.Submit(tpch.MustEngineSpec(tpch.Q6, db, 0), mode.pol)
			if err != nil {
				log.Fatal(err)
			}
			handles[i] = h
		}
		var revenue float64
		for i, h := range handles {
			res, err := h.Wait()
			if err != nil {
				log.Fatalf("sharer %d: %v", i, err)
			}
			r := res.MustCol("revenue").F64[0]
			if i == 0 {
				revenue = r
			} else if r != revenue {
				log.Fatalf("sharer %d got revenue %f, sharer 0 got %f", i, r, revenue)
			}
		}
		fmt.Printf("%-12s: %d clients, revenue=%.2f, wall time %v\n",
			mode.name, clients, revenue, time.Since(start).Round(time.Millisecond))
		e.Close()
	}
	fmt.Println("all sharers received identical, complete results")
}
