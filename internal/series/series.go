// Package series formats experiment output: the numeric series the paper's
// figures plot, rendered as aligned ASCII tables or CSV, plus the
// relative-error statistics (max/average) Figure 5 reports for model
// validation.
package series

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table is a rectangular result set: one labelled row per x-value, one
// column per curve.
type Table struct {
	// Title is printed above the table.
	Title string
	// XLabel names the x column ("clients (m)").
	XLabel string
	// Columns are the curve labels in display order.
	Columns []string
	// rows maps x to column values.
	rows map[float64]map[string]float64
	xs   []float64
}

// NewTable creates an empty table.
func NewTable(title, xLabel string, columns ...string) *Table {
	return &Table{
		Title:   title,
		XLabel:  xLabel,
		Columns: columns,
		rows:    make(map[float64]map[string]float64),
	}
}

// Set records one cell.
func (t *Table) Set(x float64, column string, value float64) {
	row, ok := t.rows[x]
	if !ok {
		row = make(map[string]float64)
		t.rows[x] = row
		t.xs = append(t.xs, x)
		sort.Float64s(t.xs)
	}
	row[column] = value
	for _, c := range t.Columns {
		if c == column {
			return
		}
	}
	t.Columns = append(t.Columns, column)
}

// Get returns one cell and whether it was set.
func (t *Table) Get(x float64, column string) (float64, bool) {
	row, ok := t.rows[x]
	if !ok {
		return 0, false
	}
	v, ok := row[column]
	return v, ok
}

// Xs returns the recorded x values in ascending order.
func (t *Table) Xs() []float64 { return append([]float64(nil), t.xs...) }

// ASCII renders the table with aligned columns.
func (t *Table) ASCII() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "# %s\n", t.Title)
	}
	widths := make([]int, len(t.Columns)+1)
	header := append([]string{t.XLabel}, t.Columns...)
	cells := [][]string{header}
	for _, x := range t.xs {
		row := []string{trimFloat(x)}
		for _, c := range t.Columns {
			if v, ok := t.rows[x][c]; ok {
				row = append(row, fmt.Sprintf("%.4g", v))
			} else {
				row = append(row, "-")
			}
		}
		cells = append(cells, row)
	}
	for _, row := range cells {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range cells {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(t.XLabel))
	for _, c := range t.Columns {
		b.WriteByte(',')
		b.WriteString(csvEscape(c))
	}
	b.WriteByte('\n')
	for _, x := range t.xs {
		b.WriteString(trimFloat(x))
		for _, c := range t.Columns {
			b.WriteByte(',')
			if v, ok := t.rows[x][c]; ok {
				fmt.Fprintf(&b, "%g", v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func trimFloat(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e15 {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// ErrorStats summarizes relative errors between predictions and
// measurements, the form Figure 5's caption reports ("maximum error 22%,
// average error 5.7%").
type ErrorStats struct {
	// Max is the largest relative error.
	Max float64
	// Avg is the mean relative error.
	Avg float64
	// N is the number of compared points.
	N int
}

// Compare accumulates relative errors |pred−meas|/|meas| for paired values;
// pairs with zero measurement are skipped.
func Compare(pred, meas []float64) ErrorStats {
	var st ErrorStats
	n := len(pred)
	if len(meas) < n {
		n = len(meas)
	}
	var sum float64
	for i := 0; i < n; i++ {
		if meas[i] == 0 {
			continue
		}
		e := math.Abs(pred[i]-meas[i]) / math.Abs(meas[i])
		if e > st.Max {
			st.Max = e
		}
		sum += e
		st.N++
	}
	if st.N > 0 {
		st.Avg = sum / float64(st.N)
	}
	return st
}

// String renders the stats like the paper's captions.
func (s ErrorStats) String() string {
	return fmt.Sprintf("max error %.1f%%, average error %.1f%% (n=%d)", s.Max*100, s.Avg*100, s.N)
}
