package series

import (
	"math"
	"strings"
	"testing"
)

func TestTableSetGetOrder(t *testing.T) {
	tb := NewTable("test", "m", "a")
	tb.Set(4, "a", 1.5)
	tb.Set(1, "a", 0.5)
	tb.Set(2, "b", 9) // new column appended on demand
	if v, ok := tb.Get(4, "a"); !ok || v != 1.5 {
		t.Errorf("Get(4,a) = %g %v", v, ok)
	}
	if _, ok := tb.Get(99, "a"); ok {
		t.Error("missing row reported present")
	}
	if _, ok := tb.Get(4, "b"); ok {
		t.Error("missing cell reported present")
	}
	xs := tb.Xs()
	if len(xs) != 3 || xs[0] != 1 || xs[1] != 2 || xs[2] != 4 {
		t.Errorf("Xs = %v", xs)
	}
	if len(tb.Columns) != 2 || tb.Columns[1] != "b" {
		t.Errorf("Columns = %v", tb.Columns)
	}
}

func TestASCII(t *testing.T) {
	tb := NewTable("speedup", "m", "1 CPU", "32 CPU")
	tb.Set(1, "1 CPU", 1)
	tb.Set(1, "32 CPU", 1)
	tb.Set(8, "1 CPU", 1.75)
	out := tb.ASCII()
	for _, want := range []string{"# speedup", "m", "1 CPU", "32 CPU", "1.75", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Errorf("ASCII has %d lines:\n%s", len(lines), out)
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("", "x", "plain", `wei,rd "col"`)
	tb.Set(1, "plain", 2)
	tb.Set(1, `wei,rd "col"`, 3)
	out := tb.CSV()
	if !strings.HasPrefix(out, `x,plain,"wei,rd ""col"""`) {
		t.Errorf("CSV header wrong:\n%s", out)
	}
	if !strings.Contains(out, "1,2,3") {
		t.Errorf("CSV row wrong:\n%s", out)
	}
}

func TestCompare(t *testing.T) {
	st := Compare([]float64{1.1, 2.0, 3.0}, []float64{1.0, 2.0, 0})
	if st.N != 2 {
		t.Errorf("N = %d, want 2 (zero measurement skipped)", st.N)
	}
	if math.Abs(st.Max-0.1) > 1e-12 {
		t.Errorf("Max = %g", st.Max)
	}
	if math.Abs(st.Avg-0.05) > 1e-12 {
		t.Errorf("Avg = %g", st.Avg)
	}
	if !strings.Contains(st.String(), "10.0%") {
		t.Errorf("String = %q", st.String())
	}
	empty := Compare(nil, nil)
	if empty.N != 0 || empty.Avg != 0 {
		t.Errorf("empty stats = %+v", empty)
	}
}
