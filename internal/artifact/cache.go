// Package artifact implements the shared-artifact keep-alive cache: a
// memory-budgeted, epoch-invalidated store for shared artifacts that have
// lost their last consumer — sealed hash-join build states and completed
// pivot result runs — keyed by the canonical subtree fingerprint they were
// shared under.
//
// The work exchange (internal/storage) owns artifacts while they are in
// flight: a build state is refcounted by its probers and retires at the last
// release. This cache picks up where the exchange leaves off. Instead of the
// artifact's memory dying with its last consumer, the engine hands the
// retired value here, and a fingerprint-matching arrival within the
// keep-alive window attaches to the retained artifact with zero rebuild work
// — sharing across bursts, not just within one.
//
// Three policies govern residency:
//
//   - Admission is cost-model-driven: an artifact is retained only when the
//     model's retain-vs-evict ratio favors it (core.ShouldRetain — predicted
//     rebuild cost × expected re-arrival probability against the footprint's
//     claim on the budget).
//   - Eviction under memory pressure is LRU-by-benefit: the byte budget is a
//     hard ceiling, and when an admission needs room the cache drops the
//     entry with the lowest benefit density (expected work saved per pinned
//     byte, core.RetainScore), breaking ties by least recent use.
//   - Invalidation is epoch-based: every artifact records the invalidation
//     epoch of its source tables at build time, any mutation-path publish
//     bumps the tables' epochs (storage.Table.Epoch), and a lookup whose
//     current epoch differs from the entry's drops the stale artifact
//     instead of serving it.
//
// Entries also expire after the keep-alive TTL, measured from last use — a
// hit refreshes the window, an idle artifact ages out even under no memory
// pressure. All methods are safe for concurrent use.
package artifact

import (
	"math"
	"sync"
	"time"

	"repro/internal/core"
)

// DefaultRearrival is the expected re-arrival probability used when the
// configuration leaves Rearrival zero: a coin flip, the neutral prior for
// closed-loop traffic whose burst structure the cache cannot observe.
const DefaultRearrival = 0.5

// Per-key re-arrival estimation: every lookup under a key is an arrival of
// a fingerprint-matching query, and the cache keeps an exponentially
// weighted moving average of each key's inter-arrival gap. Admission then
// weighs rebuild cost by that key's own re-arrival probability — hot
// fingerprints (gap ≪ TTL) approach certainty, cold ones (gap ≫ TTL) decay
// toward zero — instead of one fixed prior for the whole workload. The
// configured Rearrival remains the prior for keys with no observed gap yet.
const (
	// rearrivalAlpha is the EWMA weight on the newest gap: heavy enough to
	// converge within a handful of arrivals, light enough to smooth jitter.
	rearrivalAlpha = 0.3
	// maxArrivalKeys bounds the tracker map; when full, inserting a new key
	// evicts the key whose last arrival is oldest.
	maxArrivalKeys = 4096
)

// arrival is one key's observed inter-arrival structure.
type arrival struct {
	last time.Time
	gap  float64 // EWMA inter-arrival gap in seconds; 0 until two arrivals
}

// Config configures a Cache.
type Config struct {
	// BudgetBytes is the hard ceiling on retained bytes (0 = unbounded).
	// Admissions that would exceed it evict lower-benefit entries first and
	// are rejected when the artifact alone exceeds the budget.
	BudgetBytes int64
	// TTL is the keep-alive window measured from an entry's last use
	// (0 = entries never expire by age).
	TTL time.Duration
	// Rearrival is the prior probability that a fingerprint-matching query
	// re-arrives within the keep-alive window, the weight on the model's
	// rebuild cost at admission (0 = DefaultRearrival). It applies to keys
	// whose arrival history the cache has not yet observed; once a key shows
	// two or more arrivals, its own EWMA inter-arrival estimate takes over
	// (see RearrivalFor).
	Rearrival float64
	// Now overrides the clock (tests); nil uses time.Now.
	Now func() time.Time
}

// Stats is a snapshot of the cache's counters: cumulative outcomes plus the
// current footprint gauge.
type Stats struct {
	// Hits counts lookups served from a retained artifact; Misses counts
	// lookups that found nothing usable (absent, expired, or stale).
	Hits, Misses int64
	// Evictions counts entries dropped for memory pressure, Expirations
	// entries aged out by the TTL, Invalidations entries rejected because
	// their epoch went stale, and Rejects admissions the retain model or the
	// budget refused.
	Evictions, Expirations, Invalidations, Rejects int64
	// Bytes is the current retained footprint and Entries the current count.
	Bytes   int64
	Entries int
}

// entry is one retained artifact.
type entry struct {
	value   any
	bytes   int64
	score   float64 // benefit density: expected work saved per byte
	epoch   uint64
	lastUse time.Time
}

// Cache is the keep-alive store. The zero value is not usable; construct
// with New.
type Cache struct {
	budget    int64
	ttl       time.Duration
	rearrival float64
	now       func() time.Time

	mu       sync.Mutex
	entries  map[string]*entry
	arrivals map[string]*arrival
	bytes    int64
	stats    Stats
}

// New creates a cache with the given configuration.
func New(cfg Config) *Cache {
	if cfg.Rearrival <= 0 {
		cfg.Rearrival = DefaultRearrival
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Cache{
		budget:    cfg.BudgetBytes,
		ttl:       cfg.TTL,
		rearrival: cfg.Rearrival,
		now:       cfg.Now,
		entries:   make(map[string]*entry),
		arrivals:  make(map[string]*arrival),
	}
}

// Budget returns the configured byte ceiling (0 = unbounded).
func (c *Cache) Budget() int64 { return c.budget }

// TTL returns the configured keep-alive window.
func (c *Cache) TTL() time.Duration { return c.ttl }

// Rearrival returns the configured re-arrival prior: the probability used
// for keys whose inter-arrival structure the cache has not yet observed.
func (c *Cache) Rearrival() float64 { return c.rearrival }

// RearrivalFor returns the expected probability that a query matching key
// re-arrives within the keep-alive window: the per-key EWMA estimate once
// two arrivals have been observed, the configured prior before that (or
// whenever the cache has no TTL window to estimate against).
func (c *Cache) RearrivalFor(key string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rearrivalForLocked(key)
}

// rearrivalForLocked estimates key's re-arrival probability within the TTL
// assuming exponential inter-arrivals at the observed EWMA rate:
// P = 1 - exp(-TTL/gap), clamped away from the extremes so one burst can
// never make an artifact look permanently free or permanently worthless.
// Caller holds c.mu.
func (c *Cache) rearrivalForLocked(key string) float64 {
	a, ok := c.arrivals[key]
	if !ok || a.gap <= 0 || c.ttl <= 0 {
		return c.rearrival
	}
	p := 1 - math.Exp(-c.ttl.Seconds()/a.gap)
	return math.Min(0.99, math.Max(0.01, p))
}

// observeLocked records one arrival of a query matching key, updating the
// key's EWMA inter-arrival gap. Caller holds c.mu.
func (c *Cache) observeLocked(key string) {
	now := c.now()
	a, ok := c.arrivals[key]
	if !ok {
		if len(c.arrivals) >= maxArrivalKeys {
			c.evictArrivalLocked()
		}
		c.arrivals[key] = &arrival{last: now}
		return
	}
	gap := now.Sub(a.last).Seconds()
	a.last = now
	if gap <= 0 {
		return
	}
	if a.gap == 0 {
		a.gap = gap
	} else {
		a.gap = rearrivalAlpha*gap + (1-rearrivalAlpha)*a.gap
	}
}

// evictArrivalLocked drops the tracker whose last arrival is oldest — the
// key least likely to matter to a near-future admission. Caller holds c.mu.
func (c *Cache) evictArrivalLocked() {
	var victim string
	var oldest time.Time
	for key, a := range c.arrivals {
		if victim == "" || a.last.Before(oldest) {
			victim, oldest = key, a.last
		}
	}
	if victim != "" {
		delete(c.arrivals, victim)
	}
}

// Put offers a retired artifact for retention: value under key, footprint
// bytes, the work model of the subplan that built it (compiled at the
// artifact's pivot — rebuild cost is what a hit saves), and the invalidation
// epoch of its source tables at build time. It reports whether the artifact
// was retained. A re-offer under a live key replaces the entry (a refresh,
// not an eviction); admission applies the retain model and never lets the
// footprint exceed the budget, evicting lowest-benefit-density entries first
// to make room.
func (c *Cache) Put(key string, value any, bytes int64, model core.Query, epoch uint64) bool {
	if value == nil {
		return false
	}
	if bytes < 0 {
		bytes = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !core.ShouldRetain(model, c.rearrivalForLocked(key), bytes, c.budget) {
		c.stats.Rejects++
		return false
	}
	if old, ok := c.entries[key]; ok {
		c.bytes -= old.bytes
		delete(c.entries, key)
	}
	for c.budget > 0 && c.bytes+bytes > c.budget {
		if !c.evictOneLocked() {
			// Nothing left to evict and still no room: refuse (unreachable
			// while ShouldRetain rejects oversized artifacts, kept as a
			// guard so Bytes can never exceed the budget).
			c.stats.Rejects++
			return false
		}
	}
	c.entries[key] = &entry{
		value:   value,
		bytes:   bytes,
		score:   core.RetainScore(model, c.rearrival, bytes),
		epoch:   epoch,
		lastUse: c.now(),
	}
	c.bytes += bytes
	return true
}

// Get returns the retained artifact under key, provided it has neither aged
// past the keep-alive window nor gone stale (epoch is the current
// invalidation epoch of the subplan's source tables; a mismatch drops the
// entry). A hit refreshes the entry's keep-alive window. The entry stays
// resident — the caller shares the artifact, it does not take it over.
func (c *Cache) Get(key string, epoch uint64) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Every lookup — hit or miss — is an arrival of a matching query: the
	// signal the per-key re-arrival estimate is built from.
	c.observeLocked(key)
	e, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	if c.expiredLocked(e) {
		c.removeLocked(key, e)
		c.stats.Expirations++
		c.stats.Misses++
		return nil, false
	}
	if e.epoch != epoch {
		c.removeLocked(key, e)
		c.stats.Invalidations++
		c.stats.Misses++
		return nil, false
	}
	e.lastUse = c.now()
	c.stats.Hits++
	return e.value, true
}

// Invalidate drops the entry under key regardless of epoch, reporting
// whether one was resident. Mutation paths that know a key is stale can
// call it eagerly instead of waiting for the lookup to notice.
func (c *Cache) Invalidate(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return false
	}
	c.removeLocked(key, e)
	c.stats.Invalidations++
	return true
}

// ExpireTTL drops every entry idle past the keep-alive window, returning the
// number dropped. Long-running drivers call it on the sweep cadence so
// expired artifacts release their bytes without waiting for a lookup.
func (c *Cache) ExpireTTL() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for key, e := range c.entries {
		if c.expiredLocked(e) {
			c.removeLocked(key, e)
			c.stats.Expirations++
			n++
		}
	}
	return n
}

// Stats returns a snapshot of the counters plus the current footprint.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Bytes = c.bytes
	s.Entries = len(c.entries)
	return s
}

// expiredLocked reports whether the entry has idled past the TTL.
func (c *Cache) expiredLocked(e *entry) bool {
	return c.ttl > 0 && c.now().Sub(e.lastUse) > c.ttl
}

// removeLocked drops one entry and its bytes. Caller holds c.mu.
func (c *Cache) removeLocked(key string, e *entry) {
	c.bytes -= e.bytes
	delete(c.entries, key)
}

// evictOneLocked drops the entry the retention model values least — expired
// entries first (they are free), then the lowest benefit density, least
// recently used among equals (LRU-by-benefit). It reports whether anything
// was evicted. Caller holds c.mu.
func (c *Cache) evictOneLocked() bool {
	var victimKey string
	var victim *entry
	victimExpired := false
	for key, e := range c.entries {
		expired := c.expiredLocked(e)
		switch {
		case victim == nil,
			expired && !victimExpired,
			expired == victimExpired && e.score < victim.score,
			expired == victimExpired && e.score == victim.score && e.lastUse.Before(victim.lastUse):
			victimKey, victim, victimExpired = key, e, expired
		}
	}
	if victim == nil {
		return false
	}
	c.removeLocked(victimKey, victim)
	if victimExpired {
		c.stats.Expirations++
	} else {
		c.stats.Evictions++
	}
	return true
}
