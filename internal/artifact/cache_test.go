package artifact

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
)

// clock is a manual test clock.
type clock struct{ t time.Time }

func newClock() *clock                   { return &clock{t: time.Unix(1000, 0)} }
func (c *clock) now() time.Time          { return c.t }
func (c *clock) advance(d time.Duration) { c.t = c.t.Add(d) }

// model returns a retain model whose rebuild cost is w.
func model(w float64) core.Query { return core.Query{Name: "m", PivotW: w} }

func TestHitWithinTTLMissAfterExpiry(t *testing.T) {
	ck := newClock()
	c := New(Config{BudgetBytes: 1 << 20, TTL: 100 * time.Millisecond, Now: ck.now})
	if !c.Put("k", "artifact", 64, model(10), 7) {
		t.Fatal("Put rejected a cheap, beneficial artifact")
	}
	ck.advance(50 * time.Millisecond)
	v, ok := c.Get("k", 7)
	if !ok || v != "artifact" {
		t.Fatalf("Get within TTL = (%v, %v), want hit", v, ok)
	}
	// The hit refreshed the window: another 80ms is still within TTL of the
	// last use, then 120ms idle ages it out.
	ck.advance(80 * time.Millisecond)
	if _, ok := c.Get("k", 7); !ok {
		t.Fatal("Get after refresh missed, want hit")
	}
	ck.advance(120 * time.Millisecond)
	if _, ok := c.Get("k", 7); ok {
		t.Fatal("Get past TTL hit, want miss")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Expirations != 1 {
		t.Fatalf("stats = %+v, want 2 hits, 1 miss, 1 expiration", s)
	}
	if s.Bytes != 0 || s.Entries != 0 {
		t.Fatalf("expired entry still resident: %+v", s)
	}
}

func TestEpochInvalidation(t *testing.T) {
	c := New(Config{BudgetBytes: 1 << 20})
	c.Put("k", "stale", 64, model(10), 3)
	if _, ok := c.Get("k", 4); ok {
		t.Fatal("Get with bumped epoch hit, want stale rejection")
	}
	s := c.Stats()
	if s.Invalidations != 1 || s.Misses != 1 || s.Entries != 0 {
		t.Fatalf("stats = %+v, want the stale entry dropped and counted", s)
	}
	// Invalidate drops eagerly without an epoch.
	c.Put("k2", "x", 64, model(10), 1)
	if !c.Invalidate("k2") {
		t.Fatal("Invalidate of resident key = false")
	}
	if c.Invalidate("k2") {
		t.Fatal("Invalidate of absent key = true")
	}
}

func TestEvictionOrderUnderTightBudget(t *testing.T) {
	ck := newClock()
	// Budget fits two 100-byte artifacts, not three.
	c := New(Config{BudgetBytes: 200, Now: ck.now})
	c.Put("low", "a", 100, model(3), 0) // lowest benefit density
	ck.advance(time.Millisecond)
	c.Put("high", "b", 100, model(50), 0)
	ck.advance(time.Millisecond)
	if !c.Put("mid", "c", 100, model(10), 0) {
		t.Fatal("admission under pressure rejected, want eviction instead")
	}
	if _, ok := c.Get("low", 0); ok {
		t.Fatal("lowest-benefit entry survived eviction")
	}
	if _, ok := c.Get("high", 0); !ok {
		t.Fatal("highest-benefit entry was evicted")
	}
	if _, ok := c.Get("mid", 0); !ok {
		t.Fatal("newly admitted entry missing")
	}
	s := c.Stats()
	if s.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", s.Evictions)
	}
	if s.Bytes != 200 {
		t.Fatalf("Bytes = %d, want 200", s.Bytes)
	}
}

func TestEvictionTieBreaksLRU(t *testing.T) {
	ck := newClock()
	c := New(Config{BudgetBytes: 200, Now: ck.now})
	c.Put("old", "a", 100, model(10), 0)
	ck.advance(time.Millisecond)
	c.Put("new", "b", 100, model(10), 0)
	ck.advance(time.Millisecond)
	c.Put("next", "c", 100, model(10), 0)
	if _, ok := c.Get("old", 0); ok {
		t.Fatal("least-recently-used equal-benefit entry survived")
	}
	if _, ok := c.Get("new", 0); !ok {
		t.Fatal("more recent equal-benefit entry was evicted")
	}
}

func TestBudgetIsAHardCeiling(t *testing.T) {
	c := New(Config{BudgetBytes: 100})
	// An artifact alone exceeding the budget is rejected outright.
	if c.Put("huge", "x", 101, model(1000), 0) {
		t.Fatal("oversized artifact admitted")
	}
	if s := c.Stats(); s.Rejects != 1 || s.Bytes != 0 {
		t.Fatalf("stats = %+v, want 1 reject, 0 bytes", s)
	}
	// Fill the budget exactly, then verify every admission keeps Bytes under
	// the ceiling.
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("k%d", i), "x", 40, model(10), 0)
		if s := c.Stats(); s.Bytes > 100 {
			t.Fatalf("Bytes = %d exceeds budget 100 after insert %d", s.Bytes, i)
		}
	}
}

func TestAdmissionRejectsZeroBenefit(t *testing.T) {
	c := New(Config{BudgetBytes: 1 << 20})
	if c.Put("k", "x", 64, model(0), 0) {
		t.Fatal("artifact with zero rebuild cost admitted")
	}
	if c.Put("nil", nil, 64, model(10), 0) {
		t.Fatal("nil artifact admitted")
	}
	if s := c.Stats(); s.Rejects != 1 {
		t.Fatalf("Rejects = %d, want 1 (nil values are not counted)", s.Rejects)
	}
}

func TestPutRefreshesExistingKey(t *testing.T) {
	c := New(Config{BudgetBytes: 1 << 20})
	c.Put("k", "v1", 100, model(10), 1)
	c.Put("k", "v2", 200, model(10), 2)
	s := c.Stats()
	if s.Entries != 1 || s.Bytes != 200 || s.Evictions != 0 {
		t.Fatalf("stats = %+v, want a single refreshed 200-byte entry, no eviction", s)
	}
	if v, ok := c.Get("k", 2); !ok || v != "v2" {
		t.Fatalf("Get = (%v, %v), want refreshed value at the new epoch", v, ok)
	}
}

func TestExpireTTLSweep(t *testing.T) {
	ck := newClock()
	c := New(Config{BudgetBytes: 1 << 20, TTL: 10 * time.Millisecond, Now: ck.now})
	c.Put("a", "x", 10, model(10), 0)
	c.Put("b", "y", 10, model(10), 0)
	ck.advance(5 * time.Millisecond)
	c.Put("c", "z", 10, model(10), 0)
	ck.advance(7 * time.Millisecond)
	if n := c.ExpireTTL(); n != 2 {
		t.Fatalf("ExpireTTL = %d, want 2 (a and b idled past the window)", n)
	}
	if _, ok := c.Get("c", 0); !ok {
		t.Fatal("entry within the window was swept")
	}
	if s := c.Stats(); s.Expirations != 2 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 2 expirations and c resident", s)
	}
}

func TestUnboundedBudget(t *testing.T) {
	c := New(Config{})
	for i := 0; i < 100; i++ {
		if !c.Put(fmt.Sprintf("k%d", i), i, 1<<20, model(10), 0) {
			t.Fatalf("unbounded cache rejected admission %d", i)
		}
	}
	if s := c.Stats(); s.Entries != 100 || s.Evictions != 0 {
		t.Fatalf("stats = %+v, want all 100 retained", s)
	}
}
