package artifact

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/core"
)

// arrive records n arrivals of key spaced gap apart on the test clock.
func arrive(c *Cache, ck *clock, key string, n int, gap time.Duration) {
	for i := 0; i < n; i++ {
		c.Get(key, 0)
		ck.advance(gap)
	}
}

// The per-key EWMA must converge to the analytic re-arrival probability of a
// steady arrival process — P = 1 - exp(-TTL/gap) — and keep distinct
// estimates for keys with distinct rates, while unseen keys stay on the
// configured prior.
func TestRearrivalEWMAConvergence(t *testing.T) {
	ck := newClock()
	ttl := 2 * time.Second
	c := New(Config{TTL: ttl, Now: ck.now})

	if got := c.RearrivalFor("unseen"); got != DefaultRearrival {
		t.Fatalf("unseen key estimate = %g, want the prior %g", got, DefaultRearrival)
	}

	arrive(c, ck, "hot", 30, time.Second)     // gap 1s << TTL
	arrive(c, ck, "cold", 30, 20*time.Second) // gap 20s >> TTL
	hotWant := 1 - math.Exp(-ttl.Seconds()/1.0)
	coldWant := 1 - math.Exp(-ttl.Seconds()/20.0)
	if got := c.RearrivalFor("hot"); math.Abs(got-hotWant) > 0.01 {
		t.Errorf("hot key estimate = %g, want ~%g", got, hotWant)
	}
	if got := c.RearrivalFor("cold"); math.Abs(got-coldWant) > 0.01 {
		t.Errorf("cold key estimate = %g, want ~%g", got, coldWant)
	}
	if c.RearrivalFor("hot") <= c.RearrivalFor("cold") {
		t.Error("hot key must estimate a higher re-arrival than cold")
	}
	// The prior is untouched by observation.
	if got := c.Rearrival(); got != DefaultRearrival {
		t.Errorf("prior drifted to %g", got)
	}
}

// A rate change must pull the EWMA toward the new regime geometrically: after
// k new-regime gaps the residual error shrinks by (1-alpha)^k.
func TestRearrivalEWMATracksRegimeShift(t *testing.T) {
	ck := newClock()
	c := New(Config{TTL: 2 * time.Second, Now: ck.now})
	arrive(c, ck, "k", 20, time.Second)
	before := c.RearrivalFor("k")
	// Slow down 8x; the estimate must fall monotonically toward the new rate.
	prev := before
	for i := 0; i < 20; i++ {
		arrive(c, ck, "k", 1, 8*time.Second)
		got := c.RearrivalFor("k")
		if got > prev+1e-12 {
			t.Fatalf("estimate rose from %g to %g while the key slowed", prev, got)
		}
		prev = got
	}
	want := 1 - math.Exp(-2.0/8.0)
	if math.Abs(prev-want) > 0.02 {
		t.Errorf("after regime shift estimate = %g, want ~%g", prev, want)
	}
	if prev >= before {
		t.Errorf("slowing key kept estimate %g >= %g", prev, before)
	}
}

// Admission must use the per-key estimate: an artifact whose rebuild cost is
// marginal under the prior is retained for a hot key and refused for a cold
// one.
func TestRearrivalDrivesAdmission(t *testing.T) {
	ck := newClock()
	ttl := 2 * time.Second
	c := New(Config{BudgetBytes: 1 << 20, TTL: ttl, Now: ck.now})
	arrive(c, ck, "hot", 30, time.Second)
	arrive(c, ck, "cold", 30, time.Minute)
	// Pick a rebuild cost between the two estimates' retain thresholds:
	// retain iff p * w >= threshold(bytes, budget); calibrate w so that
	// hot admits and cold rejects under the same footprint.
	const bytes = 1 << 10
	var w float64
	for try := 0.1; try < 1e6; try *= 1.5 {
		m := model(try)
		hotOK := core.ShouldRetain(m, c.RearrivalFor("hot"), bytes, c.Budget())
		coldOK := core.ShouldRetain(m, c.RearrivalFor("cold"), bytes, c.Budget())
		if hotOK && !coldOK {
			w = try
			break
		}
	}
	if w == 0 {
		t.Skip("no rebuild cost separates the two estimates under this budget")
	}
	if !c.Put("hot", "tbl", bytes, model(w), 0) {
		t.Error("hot key's artifact refused despite frequent re-arrivals")
	}
	if c.Put("cold", "tbl", bytes, model(w), 0) {
		t.Error("cold key's artifact retained despite rare re-arrivals")
	}
}

// The tracker map must stay bounded: far more keys than the cap leave at
// most maxArrivalKeys trackers, evicting the stalest.
func TestRearrivalTrackerBounded(t *testing.T) {
	ck := newClock()
	c := New(Config{TTL: time.Second, Now: ck.now})
	for i := 0; i < maxArrivalKeys+512; i++ {
		c.Get(fmt.Sprintf("k%d", i), 0)
		ck.advance(time.Millisecond)
	}
	c.mu.Lock()
	n := len(c.arrivals)
	_, oldestAlive := c.arrivals["k0"]
	_, newestAlive := c.arrivals[fmt.Sprintf("k%d", maxArrivalKeys+511)]
	c.mu.Unlock()
	if n > maxArrivalKeys {
		t.Fatalf("%d trackers, cap is %d", n, maxArrivalKeys)
	}
	if oldestAlive {
		t.Error("stalest tracker survived the bound")
	}
	if !newestAlive {
		t.Error("newest tracker evicted")
	}
}
