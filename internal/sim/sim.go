// Package sim implements a deterministic discrete-event simulator of a chip
// multiprocessor executing pipelined query plans — the stand-in for the
// paper's UltraSparc T1 testbed (8 cores × 4 contexts, round-robin issue).
//
// Each plan operator becomes a thread that processes its query's forward
// progress in fixed page quanta: one step consumes a page from every input
// queue, performs w/P time units of work plus s/P per consumer for output,
// and deposits a page in every consumer queue. Bounded queues throttle
// producers; a fixed number of contexts serves runnable threads FIFO
// (round-robin). Work sharing instantiates the sub-plan below the pivot
// once and fans the pivot's output out to every sharer, paying the
// per-consumer cost — exactly the structure the analytical model reasons
// about, but with the scheduling, quantization, and buffering effects the
// model ignores. The gap between the two is the model error Figure 5
// reports.
//
// All time is virtual: results are bit-for-bit reproducible on any host.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// Config parameterizes a simulation run.
type Config struct {
	// Processors is the number of hardware contexts n.
	Processors int
	// PagesPerQuery is the forward-progress granularity P: one query is P
	// pages of progress through every operator. Default 40.
	PagesPerQuery int
	// QueueCap is the inter-operator buffer capacity in pages. Default 8.
	QueueCap int
	// Horizon is the virtual-time budget for throughput measurement.
	// Default 5000.
	Horizon float64
	// Contention scales effective processing capacity: every step lasts
	// 1/Contention times longer, emulating n·k effective processors
	// (Section 4.1.4). Zero means 1 (no contention).
	Contention float64
}

func (c Config) withDefaults() Config {
	if c.PagesPerQuery == 0 {
		c.PagesPerQuery = 40
	}
	if c.QueueCap == 0 {
		c.QueueCap = 8
	}
	if c.Horizon == 0 {
		c.Horizon = 5000
	}
	if c.Contention <= 0 || c.Contention > 1 {
		c.Contention = 1
	}
	return c
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.Processors <= 0 {
		return fmt.Errorf("sim: processors must be positive, got %d", c.Processors)
	}
	return nil
}

// ErrStalled is returned when the simulation deadlocks (no runnable thread
// and no in-flight step) — it indicates a malformed plan graph.
var ErrStalled = errors.New("sim: simulation stalled")

type threadState int

const (
	tsBlocked threadState = iota
	tsReady
	tsRunning
	tsDone
)

// queue is a counted page buffer between two threads.
type queue struct {
	items    int // completed pages available to the consumer
	reserved int // pages being produced (space already claimed)
	cap      int
	producer *thread
	consumer *thread
}

func (q *queue) spaceFree() bool { return q.items+q.reserved < q.cap }

// thread is one operator instance.
type thread struct {
	id        int
	name      string
	work      float64 // w/P: own work per page
	emitCost  float64 // s/P: output cost per consumer per page
	stopAndG  bool
	inputs    []*queue
	outputs   []*queue
	total     int // pages per query instance
	consumed  int
	produced  int
	state     threadState
	inProduce bool    // current step reserved output space
	member    *member // the sharer whose completion this root signals (roots only)
	group     *group
	busy      float64 // accumulated virtual busy time
}

// member is one query in a group (a sharer).
type member struct {
	root *thread
	done bool
}

// group is a set of threads that restart together: one query (unshared) or
// a whole sharing group.
type group struct {
	threads []*thread
	members []*member
	pending int // members not yet done this round
}

// runnable reports whether the thread can execute its next step.
func (t *thread) runnable() bool {
	if t.state == tsDone {
		return false
	}
	if t.stopAndG && t.consumed < t.total {
		// Consuming phase: needs input only.
		for _, in := range t.inputs {
			if in.items == 0 {
				return false
			}
		}
		return true
	}
	if !t.stopAndG {
		if t.consumed >= t.total {
			return false
		}
		for _, in := range t.inputs {
			if in.items == 0 {
				return false
			}
		}
	} else if t.produced >= t.total {
		return false
	}
	for _, out := range t.outputs {
		if !out.spaceFree() {
			return false
		}
	}
	return true
}

// stepDuration returns the virtual time of the next step.
func (t *thread) stepDuration(contention float64) float64 {
	var d float64
	switch {
	case t.stopAndG && t.consumed < t.total:
		d = t.work // consuming phase pays own work only
	case t.stopAndG:
		d = t.emitCost * float64(len(t.outputs)) // producing phase pays output
	default:
		d = t.work + t.emitCost*float64(len(t.outputs))
	}
	if d <= 0 {
		d = 1e-9 // zero-cost operators still occupy a scheduling slot briefly
	}
	return d / contention
}

// begin claims inputs and reserves output space for one step.
func (t *thread) begin() {
	if t.stopAndG && t.consumed < t.total {
		// Consuming phase of a stop-&-go operator: absorb a page, emit
		// nothing (Section 5.2's rate decoupling).
		for _, in := range t.inputs {
			in.items--
		}
		t.consumed++
		t.inProduce = false
		return
	}
	if !t.stopAndG {
		for _, in := range t.inputs {
			in.items--
		}
		t.consumed++
	}
	for _, out := range t.outputs {
		out.reserved++
	}
	t.inProduce = true
}

// end publishes the step's output page. It reports whether the thread just
// finished its last page of the round.
func (t *thread) end() bool {
	if t.inProduce {
		for _, out := range t.outputs {
			out.reserved--
			out.items++
		}
		t.produced++
	}
	if t.stopAndG {
		return t.produced >= t.total
	}
	return t.consumed >= t.total
}

// event is one in-flight step completion.
type event struct {
	at  float64
	seq int
	th  *thread
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// machine is the simulated CMP.
type machine struct {
	cfg       Config
	threads   []*thread
	groups    []*group
	ready     []*thread // FIFO round-robin
	events    eventHeap
	now       float64
	seq       int
	idle      int     // free contexts
	finished  float64 // completed queries (whole-query granularity)
	rootPages int     // total root pages processed (fractional progress)
	busyTime  float64
}

func newMachine(cfg Config) *machine {
	return &machine{cfg: cfg, idle: cfg.Processors}
}

// enqueue makes a thread ready if it is currently blocked and runnable.
func (m *machine) enqueue(t *thread) {
	if t.state == tsBlocked && t.runnable() {
		t.state = tsReady
		m.ready = append(m.ready, t)
	}
}

// dispatch assigns ready threads to idle contexts.
func (m *machine) dispatch() {
	for m.idle > 0 && len(m.ready) > 0 {
		t := m.ready[0]
		m.ready = m.ready[1:]
		t.state = tsRunning
		d := t.stepDuration(m.cfg.Contention)
		t.begin()
		t.busy += d
		m.busyTime += d
		m.seq++
		heap.Push(&m.events, event{at: m.now + d, seq: m.seq, th: t})
		m.idle--
	}
}

// wakeNeighbors re-evaluates threads adjacent to t's queues.
func (m *machine) wakeNeighbors(t *thread) {
	for _, in := range t.inputs {
		if in.producer != nil {
			m.enqueue(in.producer)
		}
	}
	for _, out := range t.outputs {
		if out.consumer != nil {
			m.enqueue(out.consumer)
		}
	}
}

// run advances the simulation to the horizon, restarting groups as they
// complete (closed system: every finished query is replaced immediately).
func (m *machine) run() error {
	for _, t := range m.threads {
		t.state = tsBlocked
		m.enqueue(t)
	}
	m.dispatch()
	for len(m.events) > 0 {
		e := heap.Pop(&m.events).(event)
		if e.at > m.cfg.Horizon {
			return nil
		}
		m.now = e.at
		m.idle++
		t := e.th
		roundDone := t.end()
		if t.member != nil && t.member.root == t {
			// Root threads record per-page progress for smooth throughput.
			m.rootPages++
		}
		if roundDone {
			t.state = tsDone
			m.onThreadDone(t)
		} else {
			t.state = tsBlocked
			m.enqueue(t)
		}
		m.wakeNeighbors(t)
		m.dispatch()
		if len(m.events) == 0 && len(m.ready) > 0 {
			return fmt.Errorf("%w: ready threads but no contexts dispatched", ErrStalled)
		}
	}
	// All groups finished and restarted until... if events drained before
	// the horizon something is stuck.
	if m.now < m.cfg.Horizon {
		return fmt.Errorf("%w at t=%g", ErrStalled, m.now)
	}
	return nil
}

// onThreadDone handles root completions and group restarts.
func (m *machine) onThreadDone(t *thread) {
	g := t.group
	if t.member != nil && t.member.root == t && !t.member.done {
		t.member.done = true
		m.finished++
		g.pending--
	}
	if g.pending > 0 {
		return
	}
	// All members done: verify every thread in the group has finished its
	// round, then restart the whole group (closed system).
	for _, th := range g.threads {
		if th.state != tsDone {
			return // stragglers still flushing; restart when the last ends
		}
	}
	for _, th := range g.threads {
		th.consumed, th.produced = 0, 0
		th.state = tsBlocked
	}
	for _, mem := range g.members {
		mem.done = false
	}
	g.pending = len(g.members)
	for _, th := range g.threads {
		m.enqueue(th)
	}
}
