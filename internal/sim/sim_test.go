package sim

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/tpch"
)

func cfg(n int) Config { return Config{Processors: n} }

func TestConfigValidate(t *testing.T) {
	if err := cfg(0).Validate(); err == nil {
		t.Error("0 processors accepted")
	}
	if err := cfg(4).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	pl := core.Fig3Plan()
	if _, err := Run(pl, "pivot", 0, false, cfg(1)); err == nil {
		t.Error("0 clients accepted")
	}
	if _, err := Run(pl, "ghost", 2, true, cfg(1)); !errors.Is(err, core.ErrPivotNotFound) {
		t.Errorf("missing pivot: %v", err)
	}
	if _, err := Run(core.Plan{Name: "empty"}, "x", 1, false, cfg(1)); err == nil {
		t.Error("empty plan accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	pl := core.Fig3Plan()
	a, err := Run(pl, "pivot", 8, true, cfg(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(pl, "pivot", 8, true, cfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput != b.Throughput || a.Completions != b.Completions {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

// A single query on ample processors runs at its model peak rate r = 1/p_max
// (up to pipeline-fill effects).
func TestSingleQueryPeakRate(t *testing.T) {
	pl := core.Fig3Plan() // p_max = 10
	res, err := Run(pl, "pivot", 1, false, cfg(8))
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 / 10
	if math.Abs(res.Throughput-want)/want > 0.10 {
		t.Errorf("throughput = %g, want ≈ %g (±10%%)", res.Throughput, want)
	}
}

// On one processor the machine is work-conserving: throughput approaches
// 1/u' regardless of client count.
func TestUniprocessorWorkConserving(t *testing.T) {
	pl := core.Fig3Plan() // u' = 27
	for _, m := range []int{1, 4, 16} {
		res, err := Run(pl, "pivot", m, false, cfg(1))
		if err != nil {
			t.Fatal(err)
		}
		want := float64(m) * math.Min(1.0/27, 1.0/(27*float64(m)))
		if math.Abs(res.Throughput-want)/want > 0.10 {
			t.Errorf("m=%d: throughput = %g, want ≈ %g", m, res.Throughput, want)
		}
		if res.Utilization < 0.95 {
			t.Errorf("m=%d: utilization = %g, want ~1 on a saturated uniprocessor", m, res.Utilization)
		}
	}
}

// Measured speedups must track the model's qualitative regimes on the Fig3
// synthetic query (Section 6.1): good on few processors, harmful on many.
func TestSpeedupRegimesMatchModel(t *testing.T) {
	pl := core.Fig3Plan()
	// 1 CPU, heavy load: sharing wins clearly.
	z1, err := Speedup(pl, "pivot", 16, cfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if z1 < 1.5 {
		t.Errorf("1 CPU m=16: measured speedup %g, want > 1.5", z1)
	}
	// 32 CPU, moderate load: sharing hurts.
	z32, err := Speedup(pl, "pivot", 10, cfg(32))
	if err != nil {
		t.Fatal(err)
	}
	if z32 > 1.0 {
		t.Errorf("32 CPU m=10: measured speedup %g, want < 1", z32)
	}
}

// The measured throughput stays within a modest error of the analytical
// model across the paper's (m, n) grid for Q6 — the Figure 5 validation
// property (paper: max 22%, avg 5.7% for scan-heavy).
func TestModelErrorSmallForQ6(t *testing.T) {
	pl := tpch.Plan(tpch.Q6)
	q := tpch.Model(tpch.Q6)
	var worst, sum float64
	var count int
	for _, n := range []int{1, 2, 8, 32} {
		env := core.NewEnv(float64(n))
		for _, m := range []int{1, 2, 4, 8, 16, 32, 48} {
			measured, err := Run(pl, tpch.PivotName, m, true, cfg(n))
			if err != nil {
				t.Fatal(err)
			}
			predicted := core.SharedX(q, m, env)
			relErr := math.Abs(measured.Throughput-predicted) / predicted
			if relErr > worst {
				worst = relErr
			}
			sum += relErr
			count++
		}
	}
	avg := sum / float64(count)
	if worst > 0.35 {
		t.Errorf("worst shared-rate error = %.1f%%, want ≤ 35%%", worst*100)
	}
	if avg > 0.12 {
		t.Errorf("average shared-rate error = %.1f%%, want ≤ 12%%", avg*100)
	}
}

// Sharing caps utilization: Q6 shared on 32 contexts uses only a few of
// them while unshared execution uses far more (the Section 1.2 observation
// behind the 10x loss).
func TestQ6SharingCapsUtilization(t *testing.T) {
	pl := tpch.Plan(tpch.Q6)
	shared, err := Run(pl, tpch.PivotName, 32, true, cfg(32))
	if err != nil {
		t.Fatal(err)
	}
	unshared, err := Run(pl, tpch.PivotName, 32, false, cfg(32))
	if err != nil {
		t.Fatal(err)
	}
	sharedCtx := shared.Utilization * 32
	unsharedCtx := unshared.Utilization * 32
	if sharedCtx > 4 {
		t.Errorf("shared execution used %.1f contexts, want ≤ 4 (paper: ~3 of 32)", sharedCtx)
	}
	if unsharedCtx < 24 {
		t.Errorf("unshared execution used %.1f contexts, want ≥ 24 (paper: all 32)", unsharedCtx)
	}
	if ratio := unshared.Throughput / shared.Throughput; ratio < 5 {
		t.Errorf("unshared/shared throughput = %.1fx, want ≥ 5x (paper: ~10x)", ratio)
	}
}

// Join-heavy queries must measure shared-always-wins across the grid.
func TestJoinHeavyAlwaysBenefits(t *testing.T) {
	for _, qid := range []tpch.QueryID{tpch.Q4, tpch.Q13} {
		pl := tpch.Plan(qid)
		for _, n := range []int{1, 8, 32} {
			for _, m := range []int{2, 8, 32} {
				z, err := Speedup(pl, tpch.PivotName, m, cfg(n))
				if err != nil {
					t.Fatalf("%s n=%d m=%d: %v", qid, n, m, err)
				}
				if z < 0.95 {
					t.Errorf("%s n=%d m=%d: measured speedup %g < 1", qid, n, m, z)
				}
			}
		}
	}
}

// Stop-&-go operators simulate without stalling and throttle correctly: a
// sort in the middle decouples the phases.
func TestStopAndGoSimulates(t *testing.T) {
	scan := core.NewNode("scan", 5, 1)
	sort := core.NewStopAndGo("sort", 8, 1, scan)
	agg := core.NewNode("agg", 2, 0, sort)
	pl := core.Plan{Name: "sorted", Root: agg}
	res, err := Run(pl, "scan", 4, true, cfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Error("no progress through stop-&-go plan")
	}
	// Unshared too.
	res2, err := Run(pl, "scan", 4, false, cfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Throughput <= 0 {
		t.Error("no unshared progress through stop-&-go plan")
	}
}

// Sharing the whole plan (pivot = root) synthesizes per-sharer clients.
func TestShareAtRoot(t *testing.T) {
	pl := core.Fig3Plan()
	res, err := Run(pl, "top", 4, true, cfg(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Error("no progress sharing at the root")
	}
}

// Contention scaling reduces throughput proportionally.
func TestContentionScalesThroughput(t *testing.T) {
	pl := core.Fig3Plan()
	full, err := Run(pl, "pivot", 8, false, Config{Processors: 4})
	if err != nil {
		t.Fatal(err)
	}
	half, err := Run(pl, "pivot", 8, false, Config{Processors: 4, Contention: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ratio := half.Throughput / full.Throughput
	if math.Abs(ratio-0.5) > 0.08 {
		t.Errorf("contention 0.5 gave throughput ratio %g, want ≈ 0.5", ratio)
	}
}

// Busy time splits by operator and scales with the work coefficients.
func TestBusyTimeAccounting(t *testing.T) {
	pl := core.Fig3Plan()
	res, err := Run(pl, "pivot", 1, false, cfg(4))
	if err != nil {
		t.Fatal(err)
	}
	bottom, pivot, top := res.BusyTime["bottom"], res.BusyTime["pivot"], res.BusyTime["top"]
	if bottom <= 0 || pivot <= 0 || top <= 0 {
		t.Fatalf("missing busy time: %+v", res.BusyTime)
	}
	// bottom:pivot:top work is 10:7:10 per query.
	if math.Abs(bottom/top-1) > 0.05 {
		t.Errorf("bottom/top busy ratio = %g, want ≈ 1", bottom/top)
	}
	if r := pivot / bottom; math.Abs(r-0.7) > 0.07 {
		t.Errorf("pivot/bottom busy ratio = %g, want ≈ 0.7", r)
	}
}

// The shared pivot's busy time grows with the number of sharers (the
// per-consumer cost is physically paid).
func TestPivotBusyGrowsWithSharers(t *testing.T) {
	pl := core.Fig3Plan()
	small, err := Run(pl, "pivot", 2, true, cfg(8))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(pl, "pivot", 16, true, cfg(8))
	if err != nil {
		t.Fatal(err)
	}
	// Per shared page the pivot pays w + m·s: normalize busy time by the
	// group rounds executed (throughput × horizon / m sharers per round).
	perRoundSmall := small.BusyTime["pivot"] / (small.Throughput * 5000 / 2)
	perRoundBig := big.BusyTime["pivot"] / (big.Throughput * 5000 / 16)
	if perRoundBig <= perRoundSmall {
		t.Errorf("pivot per-round busy did not grow with sharers: %g vs %g", perRoundSmall, perRoundBig)
	}
	// And it should sit near the model's p_φ(m) = 6 + m·1.
	if math.Abs(perRoundSmall-8) > 1.5 || math.Abs(perRoundBig-22) > 3 {
		t.Errorf("pivot per-round busy = %g / %g, want ≈ 8 / 22", perRoundSmall, perRoundBig)
	}
}
