package sim

import (
	"fmt"

	"repro/internal/core"
)

// buildUnshared instantiates m independent copies of the plan, each its own
// group (a closed system replaces each completed query individually).
func (m *machine) buildUnshared(pl core.Plan, copies int) error {
	for i := 0; i < copies; i++ {
		g := &group{}
		root, err := m.buildSubtree(pl.Root, g, nil)
		if err != nil {
			return err
		}
		mem := &member{root: root}
		root.member = mem
		g.members = []*member{mem}
		g.pending = 1
		m.groups = append(m.groups, g)
	}
	return nil
}

// buildShared instantiates the sub-plan rooted at the pivot once and one
// private copy of the remaining plan per sharer, fanning the pivot's output
// out to all of them.
func (m *machine) buildShared(pl core.Plan, pivot *core.PlanNode, sharers int) error {
	g := &group{}
	pivotThread, err := m.buildSubtree(pivot, g, nil)
	if err != nil {
		return err
	}
	for i := 0; i < sharers; i++ {
		var root *thread
		if pivot == pl.Root {
			// Whole plan shared: give each sharer a zero-cost client that
			// drains the pivot, so completion stays per-sharer.
			client := m.newThread(fmt.Sprintf("client-%d", i), 0, 0, false, g)
			m.connect(pivotThread, client)
			root = client
		} else {
			root, err = m.buildAbove(pl.Root, pivot, pivotThread, g)
			if err != nil {
				return err
			}
		}
		mem := &member{root: root}
		root.member = mem
		g.members = append(g.members, mem)
	}
	g.pending = len(g.members)
	m.groups = append(m.groups, g)
	return nil
}

// buildSubtree creates threads for the subtree rooted at nd; the returned
// thread is nd's. parent edges are wired by the caller.
func (m *machine) buildSubtree(nd *core.PlanNode, g *group, _ *thread) (*thread, error) {
	t := m.newThread(nd.Name, nd.W, nd.S, nd.Kind == core.StopAndGo, g)
	for _, c := range nd.Children {
		child, err := m.buildSubtree(c, g, t)
		if err != nil {
			return nil, err
		}
		m.connect(child, t)
	}
	return t, nil
}

// buildAbove clones the plan outside the pivot subtree; the pivot position
// consumes from the shared pivot thread. Returns the clone's root thread.
func (m *machine) buildAbove(nd *core.PlanNode, pivot *core.PlanNode, shared *thread, g *group) (*thread, error) {
	if nd == pivot {
		return shared, nil
	}
	t := m.newThread(nd.Name, nd.W, nd.S, nd.Kind == core.StopAndGo, g)
	for _, c := range nd.Children {
		child, err := m.buildAbove(c, pivot, shared, g)
		if err != nil {
			return nil, err
		}
		m.connect(child, t)
	}
	return t, nil
}

func (m *machine) newThread(name string, w, s float64, stopAndGo bool, g *group) *thread {
	p := float64(m.cfg.PagesPerQuery)
	t := &thread{
		id:       len(m.threads),
		name:     name,
		work:     w / p,
		emitCost: s / p,
		stopAndG: stopAndGo,
		total:    m.cfg.PagesPerQuery,
		group:    g,
		state:    tsBlocked,
	}
	m.threads = append(m.threads, t)
	g.threads = append(g.threads, t)
	return t
}

func (m *machine) connect(producer, consumer *thread) {
	q := &queue{cap: m.cfg.QueueCap, producer: producer, consumer: consumer}
	producer.outputs = append(producer.outputs, q)
	consumer.inputs = append(consumer.inputs, q)
}

// Result summarizes one simulation run.
type Result struct {
	// Throughput is completed query mass per unit virtual time (root pages
	// divided by pages per query, over the horizon) — fractional completions
	// smooth quantization at short horizons.
	Throughput float64
	// Completions counts whole queries finished.
	Completions float64
	// Utilization is the fraction of total context-time spent busy.
	Utilization float64
	// BusyTime aggregates virtual busy time by operator name.
	BusyTime map[string]float64
}

// Run simulates m copies of the plan for the configured horizon, shared at
// the named pivot or independent, and reports throughput.
func Run(pl core.Plan, pivotName string, clients int, shared bool, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := pl.Validate(); err != nil {
		return Result{}, err
	}
	if clients <= 0 {
		return Result{}, fmt.Errorf("sim: clients must be positive, got %d", clients)
	}
	mach := newMachine(cfg)
	if shared {
		pivot := pl.Find(pivotName)
		if pivot == nil {
			return Result{}, fmt.Errorf("%w: %q", core.ErrPivotNotFound, pivotName)
		}
		if err := mach.buildShared(pl, pivot, clients); err != nil {
			return Result{}, err
		}
	} else {
		if err := mach.buildUnshared(pl, clients); err != nil {
			return Result{}, err
		}
	}
	if err := mach.run(); err != nil {
		return Result{}, err
	}
	busy := make(map[string]float64)
	for _, t := range mach.threads {
		busy[t.name] += t.busy
	}
	return Result{
		Throughput:  float64(mach.rootPages) / float64(cfg.PagesPerQuery) / cfg.Horizon,
		Completions: mach.finished,
		Utilization: mach.busyTime / (cfg.Horizon * float64(cfg.Processors)),
		BusyTime:    busy,
	}, nil
}

// Speedup returns the measured sharing benefit: shared throughput over
// unshared throughput for the same client count and hardware — the quantity
// Figures 1, 2, and 5 plot.
func Speedup(pl core.Plan, pivotName string, clients int, cfg Config) (float64, error) {
	sharedRes, err := Run(pl, pivotName, clients, true, cfg)
	if err != nil {
		return 0, err
	}
	unsharedRes, err := Run(pl, pivotName, clients, false, cfg)
	if err != nil {
		return 0, err
	}
	if unsharedRes.Throughput == 0 {
		return 0, fmt.Errorf("sim: unshared throughput is zero")
	}
	return sharedRes.Throughput / unsharedRes.Throughput, nil
}
