package workload

import (
	"math"
	"math/rand"
	"time"
)

// This file models open-loop (open-system) traffic: arrivals fire on their
// own schedule whether or not earlier queries have finished, unlike the
// closed-loop clients of EngineMix.Run that wait for each response before
// resubmitting. Open-loop load is what exposes tail latency and the need for
// admission control — a closed loop self-throttles at saturation, an open
// loop keeps pushing.

// ArrivalProcess generates inter-arrival gaps. Next takes the elapsed time
// since the run started (so time-varying processes know where they are in
// their cycle) and returns the gap before the next arrival.
type ArrivalProcess interface {
	Next(elapsed time.Duration) time.Duration
}

// Poisson is a homogeneous Poisson arrival process: exponentially
// distributed gaps at a constant mean rate.
type Poisson struct {
	rate float64 // arrivals per second
	rng  *rand.Rand
}

// NewPoisson returns a Poisson process offering `rate` arrivals per second,
// deterministic under `seed`.
func NewPoisson(rate float64, seed uint64) *Poisson {
	return &Poisson{rate: rate, rng: rand.New(rand.NewSource(int64(seed)))}
}

func (p *Poisson) Next(time.Duration) time.Duration {
	return expGap(p.rng, p.rate)
}

// Diurnal is a sinusoidally modulated Poisson process — the load curve of a
// day compressed into Period: rate(t) = Base·(1 + Amplitude·sin(2πt/Period)).
// Amplitude in [0,1) keeps the rate positive.
type Diurnal struct {
	base      float64
	amplitude float64
	period    time.Duration
	rng       *rand.Rand
}

// NewDiurnal returns a diurnal process around `base` arrivals per second.
func NewDiurnal(base, amplitude float64, period time.Duration, seed uint64) *Diurnal {
	if amplitude < 0 {
		amplitude = 0
	}
	if amplitude > 0.99 {
		amplitude = 0.99
	}
	return &Diurnal{base: base, amplitude: amplitude, period: period, rng: rand.New(rand.NewSource(int64(seed)))}
}

func (d *Diurnal) Next(elapsed time.Duration) time.Duration {
	phase := 2 * math.Pi * float64(elapsed) / float64(d.period)
	rate := d.base * (1 + d.amplitude*math.Sin(phase))
	return expGap(d.rng, rate)
}

// FlashCrowd is a step process: Base rate, then Peak for the window
// [At, At+Dur), then Base again — the overload spike admission control is
// for.
type FlashCrowd struct {
	base, peak float64
	at, dur    time.Duration
	rng        *rand.Rand
}

// NewFlashCrowd returns a flash-crowd process: `base` arrivals per second
// with a `peak` burst of length dur starting at `at`.
func NewFlashCrowd(base, peak float64, at, dur time.Duration, seed uint64) *FlashCrowd {
	return &FlashCrowd{base: base, peak: peak, at: at, dur: dur, rng: rand.New(rand.NewSource(int64(seed)))}
}

func (f *FlashCrowd) Next(elapsed time.Duration) time.Duration {
	rate := f.base
	if elapsed >= f.at && elapsed < f.at+f.dur {
		rate = f.peak
	}
	return expGap(f.rng, rate)
}

// expGap samples an exponential inter-arrival gap at the given rate,
// clamped so a degenerate rate cannot stall the arrival loop forever.
func expGap(rng *rand.Rand, rate float64) time.Duration {
	if rate <= 0 {
		return time.Second
	}
	gap := rng.ExpFloat64() / rate
	const maxGap = 10.0 // seconds
	if gap > maxGap {
		gap = maxGap
	}
	return time.Duration(gap * float64(time.Second))
}
