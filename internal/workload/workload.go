// Package workload implements the closed-system experiment harness of
// Section 8.2: a fixed population of clients, each resubmitting a query the
// moment the previous one completes, over a mix of query classes (the paper
// varies the fraction of Q4 vs Q1), executed under one of the three sharing
// policies. It provides both an analytical evaluator (deterministic,
// regenerates Figure 6's curves from the model) and a wall-clock driver for
// the real staged engine.
package workload

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/storage"
)

// Class is one query class in a mix.
type Class struct {
	// Name labels the class ("Q1").
	Name string
	// Model carries the class's work-model coefficients.
	Model core.Query
	// Clients is the number of closed-loop clients running this class.
	Clients int
}

// Mix is a closed-system workload.
type Mix struct {
	// Classes are the query classes; total clients is the sum.
	Classes []Class
}

// PolicyKind selects the sharing policy for analytic prediction.
type PolicyKind int

const (
	// NeverShare executes every query independently.
	NeverShare PolicyKind = iota
	// AlwaysShare merges all clients of a class into one group.
	AlwaysShare
	// ModelShare partitions each class into the group configuration the
	// model predicts fastest (Section 8.1's multiple-groups optimization).
	ModelShare
)

// String returns the policy label used in Figure 6.
func (p PolicyKind) String() string {
	switch p {
	case NeverShare:
		return "never"
	case AlwaysShare:
		return "always"
	case ModelShare:
		return "model"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(p))
	}
}

// unit is one allocation unit competing for processors: x(n') =
// min(peak, peak/sat · n') for its processor share n'.
type unit struct {
	peak float64 // aggregate rate with unlimited processors
	sat  float64 // processors needed to reach peak
}

// unsharedUnit models m independent copies of q.
func unsharedUnit(q core.Query, m int) unit {
	pm := q.PMax()
	up := q.UPrime()
	if pm == 0 || up == 0 {
		return unit{}
	}
	peak := float64(m) / pm
	return unit{peak: peak, sat: peak * up}
}

// sharedUnit models one group of m sharers of q.
func sharedUnit(q core.Query, m int) unit {
	pm := q.SharedPMax(m)
	up := q.SharedUPrime(m)
	if pm == 0 || up == 0 {
		return unit{}
	}
	return unit{peak: float64(m) / pm, sat: up / pm}
}

// systemX returns total throughput of the units on n processors under
// uniform time sharing: if aggregate saturation demand exceeds n, every
// unit slows by the same factor λ = n/Σsat (round-robin fairness).
func systemX(units []unit, n float64) float64 {
	var totSat, totPeak float64
	for _, u := range units {
		totSat += u.sat
		totPeak += u.peak
	}
	if totSat <= n || totSat == 0 {
		return totPeak
	}
	return totPeak * n / totSat
}

// classCandidates enumerates the sharing configurations one class can adopt:
// fully unshared, one group, and every partition into g evenly-sized groups
// (Section 8.1's multiple-groups strategy).
func classCandidates(c Class) [][]unit {
	m := c.Clients
	if m == 0 {
		return [][]unit{nil}
	}
	out := [][]unit{{unsharedUnit(c.Model, m)}}
	for groups := 1; groups <= m; groups++ {
		var cfg []unit
		base, extra := m/groups, m%groups
		for gi := 0; gi < groups; gi++ {
			size := base
			if gi < extra {
				size++
			}
			if size == 0 {
				continue
			}
			if size == 1 {
				cfg = append(cfg, unsharedUnit(c.Model, 1))
			} else {
				cfg = append(cfg, sharedUnit(c.Model, size))
			}
		}
		out = append(out, cfg)
	}
	return out
}

// staticUnits returns the units of a static policy for one class.
func staticUnits(c Class, kind PolicyKind) []unit {
	if c.Clients == 0 {
		return nil
	}
	if kind == AlwaysShare {
		return []unit{sharedUnit(c.Model, c.Clients)}
	}
	return []unit{unsharedUnit(c.Model, c.Clients)}
}

// PredictThroughput evaluates the mix's aggregate throughput (queries per
// unit of model time) on n processors under a policy, using the analytical
// model end to end. This is the evaluator behind the Figure 6 series.
//
// ModelShare performs a joint search: per-class candidate configurations
// are optimized by coordinate ascent over the whole mix (classes interact
// through the shared processor pool), seeded with both static policies, so
// the model-guided prediction always dominates always-share and
// never-share.
func PredictThroughput(mix Mix, n float64, kind PolicyKind) float64 {
	switch kind {
	case NeverShare, AlwaysShare:
		var units []unit
		for _, c := range mix.Classes {
			units = append(units, staticUnits(c, kind)...)
		}
		return systemX(units, n)
	case ModelShare:
		return modelSearch(mix, n)
	default:
		panic(fmt.Sprintf("workload: unknown policy %d", int(kind)))
	}
}

// modelSearch runs coordinate ascent over per-class configurations from two
// seeds (all-unshared and all-shared) and returns the best total throughput
// found.
func modelSearch(mix Mix, n float64) float64 {
	cands := make([][][]unit, len(mix.Classes))
	for i, c := range mix.Classes {
		cands[i] = classCandidates(c)
	}
	evaluate := func(choice []int) float64 {
		var units []unit
		for i, ci := range choice {
			units = append(units, cands[i][ci]...)
		}
		return systemX(units, n)
	}
	best := 0.0
	for _, seedKind := range []PolicyKind{NeverShare, AlwaysShare} {
		choice := make([]int, len(mix.Classes))
		for i, c := range mix.Classes {
			choice[i] = seedIndex(cands[i], c, seedKind)
		}
		cur := evaluate(choice)
		for pass := 0; pass < 8; pass++ {
			improved := false
			for i := range choice {
				bestCi, bestX := choice[i], cur
				for ci := range cands[i] {
					if ci == choice[i] {
						continue
					}
					old := choice[i]
					choice[i] = ci
					if x := evaluate(choice); x > bestX {
						bestCi, bestX = ci, x
					}
					choice[i] = old
				}
				if bestCi != choice[i] {
					choice[i] = bestCi
					cur = bestX
					improved = true
				}
			}
			if !improved {
				break
			}
		}
		if cur > best {
			best = cur
		}
	}
	return best
}

// seedIndex locates the candidate matching a static policy: index 0 is the
// fully unshared configuration, index 1 is the single shared group.
func seedIndex(cands [][]unit, c Class, kind PolicyKind) int {
	if kind == AlwaysShare && c.Clients > 1 && len(cands) > 1 {
		return 1
	}
	return 0
}

// Figure6Point is one x-position of Figure 6: a Q4 fraction with the
// throughput of each policy.
type Figure6Point struct {
	// FractionQ4 is the share of clients running the join-heavy class.
	FractionQ4 float64
	// Never, Always, Model are predicted throughputs.
	Never, Always, Model float64
}

// Figure6Series sweeps the Q4 fraction from 0 to 1 for a fixed client count
// and processor count, reproducing one panel of Figure 6.
func Figure6Series(q1, q4 core.Query, clients int, n float64, steps int) []Figure6Point {
	if steps < 1 {
		steps = 4
	}
	out := make([]Figure6Point, 0, steps+1)
	for i := 0; i <= steps; i++ {
		f := float64(i) / float64(steps)
		m4 := int(math.Round(f * float64(clients)))
		mix := Mix{Classes: []Class{
			{Name: "Q1", Model: q1, Clients: clients - m4},
			{Name: "Q4", Model: q4, Clients: m4},
		}}
		out = append(out, Figure6Point{
			FractionQ4: f,
			Never:      PredictThroughput(mix, n, NeverShare),
			Always:     PredictThroughput(mix, n, AlwaysShare),
			Model:      PredictThroughput(mix, n, ModelShare),
		})
	}
	return out
}

// EngineMix drives the real staged engine with a closed-loop client
// population for a wall-clock duration.
type EngineMix struct {
	// Specs maps class name to its engine spec.
	Specs map[string]engine.QuerySpec
	// Assignment lists, per client, the class name it loops on.
	Assignment []string
}

// MixResult reports a closed-loop engine run.
type MixResult struct {
	// Completions counts finished queries.
	Completions int
	// QueriesPerMinute is the measured throughput.
	QueriesPerMinute float64
	// PerClass breaks completions down by class.
	PerClass map[string]int
	// InflightAttaches counts queries that joined a scan already in
	// progress (non-zero only when the engine runs with InflightSharing
	// and an AttachPolicy).
	InflightAttaches int64
	// ParallelRuns counts queries executed as partitioned clones, and
	// ParallelClones the clone pipelines spawned for them (non-zero only
	// under a parallelizing policy or specs with an explicit degree).
	ParallelRuns   int64
	ParallelClones int64
	// PivotJoins counts, per pivot node level, the queries that merged into
	// a sharing group anchored there — level 0 is the scan; higher levels
	// mean the group shared operator work above it.
	PivotJoins map[int]int64
	// HashBuilds counts shared hash-join builds executed (one per
	// build-sharing group), and BuildJoins the queries that attached to an
	// existing build instead of running their own.
	HashBuilds int64
	BuildJoins int64
	// Supersedes counts work-exchange registrations that displaced a
	// still-live entry, and SweepReclaims the entries the age-based sweep
	// force-retired — the registry-hygiene metrics from the eviction work.
	Supersedes    int64
	SweepReclaims int64
	// CacheHits counts queries served from the keep-alive artifact cache
	// (a retained hash build attached with zero rebuild, or a whole result
	// run), CacheMisses lookups that found nothing usable, and
	// CacheEvictions artifacts dropped for memory pressure — all zero when
	// the engine runs without a cache. CacheBytes is the cache's retained
	// footprint at the end of the run (a gauge, not a delta).
	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64
	CacheBytes     int64
	// Bursts counts the duty cycles of a bursty run (1 for a plain Run).
	Bursts int
}

// accumulate folds another run's result into r (for multi-burst drivers).
func (r *MixResult) accumulate(o MixResult) {
	r.Completions += o.Completions
	if r.PerClass == nil {
		r.PerClass = make(map[string]int)
	}
	for k, v := range o.PerClass {
		r.PerClass[k] += v
	}
	if r.PivotJoins == nil {
		r.PivotJoins = make(map[int]int64)
	}
	for k, v := range o.PivotJoins {
		r.PivotJoins[k] += v
	}
	r.InflightAttaches += o.InflightAttaches
	r.ParallelRuns += o.ParallelRuns
	r.ParallelClones += o.ParallelClones
	r.HashBuilds += o.HashBuilds
	r.BuildJoins += o.BuildJoins
	r.Supersedes += o.Supersedes
	r.SweepReclaims += o.SweepReclaims
	r.CacheHits += o.CacheHits
	r.CacheMisses += o.CacheMisses
	r.CacheEvictions += o.CacheEvictions
	r.CacheBytes = o.CacheBytes
	r.Bursts += o.Bursts
}

// Run drives the engine until the deadline. Each client resubmits its
// class's query immediately upon completion (closed system). Resubmission
// happens from completion callbacks on engine workers, so the driver needs
// no goroutine per client and stays fair even on single-CPU hosts.
func (w EngineMix) Run(e *engine.Engine, pol engine.SharePolicy, duration time.Duration) (MixResult, error) {
	if len(w.Assignment) == 0 {
		return MixResult{}, fmt.Errorf("workload: no clients")
	}
	for _, class := range w.Assignment {
		if _, ok := w.Specs[class]; !ok {
			return MixResult{}, fmt.Errorf("workload: no spec for class %q", class)
		}
	}
	deadline := time.Now().Add(duration)
	startAttaches := e.InflightAttaches()
	startRuns := e.ParallelRuns()
	startClones := e.ParallelClones()
	startJoins := e.PivotLevelJoins()
	startBuilds := e.HashBuilds()
	startBuildJoins := e.BuildJoins()
	startSupersedes := e.Exchange().SupersedeCount()
	startReclaims := e.Exchange().SweepReclaims()
	startCache := e.CacheStats()
	var mu sync.Mutex
	perClass := make(map[string]int)
	total := 0
	outstanding := 0
	var firstErr error
	allDone := make(chan struct{})

	var clientDone func(class string)
	submit := func(class string) error {
		_, err := e.SubmitFn(w.Specs[class], pol, func(_ *storage.Batch, err error) {
			mu.Lock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			if err == nil {
				perClass[class]++
				total++
			}
			mu.Unlock()
			clientDone(class)
		})
		return err
	}
	finish := func() {
		outstanding--
		if outstanding == 0 {
			close(allDone)
		}
	}
	clientDone = func(class string) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || !time.Now().Before(deadline) {
			finish()
			return
		}
		if err := submit(class); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			finish()
		}
	}

	mu.Lock()
	outstanding = len(w.Assignment)
	for _, class := range w.Assignment {
		if err := submit(class); err != nil {
			mu.Unlock()
			return MixResult{}, err
		}
	}
	mu.Unlock()
	<-allDone

	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return MixResult{}, firstErr
	}
	joins := e.PivotLevelJoins()
	for level, n := range startJoins {
		if joins[level] -= n; joins[level] == 0 {
			delete(joins, level)
		}
	}
	endCache := e.CacheStats()
	return MixResult{
		Completions:      total,
		QueriesPerMinute: float64(total) / duration.Minutes(),
		PerClass:         perClass,
		InflightAttaches: e.InflightAttaches() - startAttaches,
		ParallelRuns:     e.ParallelRuns() - startRuns,
		ParallelClones:   e.ParallelClones() - startClones,
		PivotJoins:       joins,
		HashBuilds:       e.HashBuilds() - startBuilds,
		BuildJoins:       e.BuildJoins() - startBuildJoins,
		Supersedes:       e.Exchange().SupersedeCount() - startSupersedes,
		SweepReclaims:    e.Exchange().SweepReclaims() - startReclaims,
		CacheHits:        endCache.Hits - startCache.Hits,
		CacheMisses:      endCache.Misses - startCache.Misses,
		CacheEvictions:   endCache.Evictions - startCache.Evictions,
		CacheBytes:       endCache.Bytes,
		Bursts:           1,
	}, nil
}

// RunBursty drives the engine with on/off duty-cycle traffic: closed-loop
// bursts of burstOn separated by idle gaps of idleGap, until duration
// elapses. Every burst drains completely before the gap starts, so whatever
// the engine retained across the gap (keep-alive cached artifacts) — not
// in-flight sharing — carries work from one burst to the next. The result
// accumulates all bursts, with QueriesPerMinute measured over the whole
// wall-clock span (idle gaps included: retention pays for the work the whole
// duty cycle would otherwise redo).
func (w EngineMix) RunBursty(e *engine.Engine, pol engine.SharePolicy, duration, burstOn, idleGap time.Duration) (MixResult, error) {
	if burstOn <= 0 {
		return MixResult{}, fmt.Errorf("workload: non-positive burst duration %v", burstOn)
	}
	start := time.Now()
	deadline := start.Add(duration)
	var total MixResult
	for {
		res, err := w.Run(e, pol, burstOn)
		if err != nil {
			return MixResult{}, err
		}
		total.accumulate(res)
		if !time.Now().Add(idleGap).Before(deadline) {
			break
		}
		time.Sleep(idleGap)
	}
	elapsed := time.Since(start)
	if elapsed > 0 {
		total.QueriesPerMinute = float64(total.Completions) / elapsed.Minutes()
	}
	return total, nil
}

// Assign builds a client assignment: clients total, a fraction running the
// named minority class, the rest the majority class.
func Assign(majority, minority string, clients int, minorityFraction float64) []string {
	out := make([]string, clients)
	mCount := int(math.Round(minorityFraction * float64(clients)))
	for i := range out {
		if i < mCount {
			out[i] = minority
		} else {
			out[i] = majority
		}
	}
	return out
}
