package workload

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// histBucketsPerOctave sets the histogram resolution: 8 buckets per doubling
// bounds any quantile's relative error by 2^(1/8)−1 ≈ 9%, plenty for tail
// reporting, at a fixed few-hundred-bucket footprint.
const histBucketsPerOctave = 8

// histMin is the first bucket's upper bound; observations below it land in
// bucket zero.
const histMin = time.Microsecond

// Hist is a thread-safe log-bucketed latency histogram: fixed memory
// whatever the sample count, geometric buckets so p99 of a microsecond and
// p99 of a minute are captured with the same relative precision.
type Hist struct {
	mu     sync.Mutex
	counts []uint64
	n      uint64
	sum    time.Duration
	max    time.Duration
}

// histBucket maps a duration to its bucket index.
func histBucket(d time.Duration) int {
	if d <= histMin {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(d)/float64(histMin)) * histBucketsPerOctave))
}

// histBound returns the upper bound of bucket i.
func histBound(i int) time.Duration {
	return time.Duration(float64(histMin) * math.Pow(2, float64(i)/histBucketsPerOctave))
}

// Observe records one latency sample.
func (h *Hist) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	b := histBucket(d)
	h.mu.Lock()
	if b >= len(h.counts) {
		grown := make([]uint64, b+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[b]++
	h.n++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// Count returns the number of samples observed.
func (h *Hist) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Mean returns the arithmetic mean of the samples (0 when empty).
func (h *Hist) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / time.Duration(h.n)
}

// Max returns the largest sample observed.
func (h *Hist) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns the latency at quantile p in [0,1]: the upper bound of
// the bucket holding the p·n-th sample, clamped to the observed maximum so
// the top bucket's rounding never reports a latency nothing reached. Returns
// 0 when the histogram is empty.
func (h *Hist) Quantile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(math.Ceil(p * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			bound := histBound(i)
			if bound > h.max {
				bound = h.max
			}
			return bound
		}
	}
	return h.max
}

// P50, P95 and P99 are the tail-latency quantiles the reports cite.
func (h *Hist) P50() time.Duration { return h.Quantile(0.50) }
func (h *Hist) P95() time.Duration { return h.Quantile(0.95) }
func (h *Hist) P99() time.Duration { return h.Quantile(0.99) }

// String renders the headline quantiles, e.g. for run reports.
func (h *Hist) String() string {
	return fmt.Sprintf("p50=%v p95=%v p99=%v max=%v n=%d",
		h.P50().Round(time.Microsecond), h.P95().Round(time.Microsecond),
		h.P99().Round(time.Microsecond), h.Max().Round(time.Microsecond), h.Count())
}
