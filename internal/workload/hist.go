package workload

import "repro/internal/obs"

// Hist is the log-bucketed latency histogram the load generators report
// with. It began life here and moved to internal/obs when the telemetry
// layer unified histograms across the engine, server and clients; the alias
// keeps every workload-facing call site (and the zero-value-usable
// contract) intact. An empty histogram reports 0 for every quantile, never
// a sentinel.
type Hist = obs.Hist
