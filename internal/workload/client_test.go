package workload_test

import (
	"net"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/server"
	"repro/internal/tpch"
	"repro/internal/workload"
)

// startServer brings a cordobad server up on a random loopback port.
func startServer(t *testing.T, workers int) (*server.Server, string) {
	return startShardedServer(t, workers, 1)
}

// startShardedServer brings up a server over a cluster of engine shards.
func startShardedServer(t *testing.T, workers, shards int) (*server.Server, string) {
	t.Helper()
	db := tpch.MustGenerate(tpch.Config{ScaleFactor: 0.002, Seed: 42})
	pol, _, err := policy.ByName("subplan", core.NewEnv(float64(workers)), workers)
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.New(server.Config{
		DB:     db,
		Shards: shards,
		Engine: engine.Options{Workers: workers, FanOut: engine.FanOutShare},
		Policy: policy.ForEngine(pol),
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(s.Shutdown)
	return s, ln.Addr().String()
}

// The pipelined client must correlate concurrent in-flight requests and
// fetch server stats.
func TestClientPipelines(t *testing.T) {
	_, addr := startServer(t, 2)
	c, err := workload.DialServer(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var chans []<-chan server.Response
	for i := 0; i < 6; i++ {
		ch, err := c.Submit(server.Request{Family: "Q6", Variant: i % 3})
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for i, ch := range chans {
		resp, ok := <-ch
		if !ok || resp.Status != server.StatusOK || resp.Rows <= 0 {
			t.Fatalf("request %d: ok=%v resp=%+v", i, ok, resp)
		}
	}
	st, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 6 {
		t.Fatalf("server completed %d, want 6", st.Completed)
	}
}

// An open-loop Poisson run above single-query pace must complete without
// errors: every arrival is answered (ok or shed, never a hang), latencies
// land in the histogram, and the tail quantiles are nonzero.
func TestRunOpenLoopPoisson(t *testing.T) {
	_, addr := startServer(t, 2)
	res, err := workload.RunOpenLoop(workload.OpenLoopConfig{
		Addr:        addr,
		Arrivals:    workload.NewPoisson(300, 11),
		MaxArrivals: 60,
		Conns:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered != 60 {
		t.Fatalf("offered %d, want 60", res.Offered)
	}
	if got := res.OK + res.Shed + res.Errors + res.Lost; got != res.Offered {
		t.Fatalf("response accounting: ok=%d shed=%d err=%d lost=%d vs offered=%d",
			res.OK, res.Shed, res.Errors, res.Lost, res.Offered)
	}
	if res.Errors != 0 || res.Lost != 0 {
		t.Fatalf("open-loop run errored: %+v", res)
	}
	if res.OK == 0 {
		t.Fatal("open-loop run completed nothing")
	}
	if uint64(res.OK) != res.Latency.Count() {
		t.Fatalf("histogram holds %d samples for %d OK responses", res.Latency.Count(), res.OK)
	}
	if res.Latency.P99() <= 0 || res.Latency.P50() > res.Latency.P99() {
		t.Fatalf("tail quantiles inconsistent: %s", res.Latency)
	}
}

// Against a sharded server the open-loop report must carry one counter row
// per shard plus the cluster aggregate; an unsharded server's stats render
// nothing.
func TestShardReport(t *testing.T) {
	_, addr := startShardedServer(t, 2, 2)
	res, err := workload.RunOpenLoop(workload.OpenLoopConfig{
		Addr:        addr,
		Arrivals:    workload.NewPoisson(300, 7),
		MaxArrivals: 12,
		Conns:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK == 0 {
		t.Fatal("open-loop run against the sharded server completed nothing")
	}
	c, err := workload.DialServer(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	rep := workload.ShardReport(st)
	for _, want := range []string{"shard 0:", "shard 1:", "cluster: shards=2"} {
		if !strings.Contains(rep, want) {
			t.Errorf("shard report lacks %q:\n%s", want, rep)
		}
	}
	if strings.Count(rep, "\n") != 3 {
		t.Errorf("shard report should be 3 lines (2 shards + aggregate):\n%s", rep)
	}
	if workload.ShardReport(server.Stats{}) != "" {
		t.Error("unsharded stats rendered a shard report")
	}
}
