package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// Client is a pipelined cordobad wire client: one TCP connection, any
// number of in-flight requests, responses correlated back to their waiters
// by id. Safe for concurrent use.
type Client struct {
	nc net.Conn

	wmu sync.Mutex
	w   *bufio.Writer

	mu      sync.Mutex
	pending map[string]chan server.Response
	nextID  uint64
	readErr error
	closed  bool
}

// DialServer connects to a cordobad address.
func DialServer(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		nc:      nc,
		w:       bufio.NewWriter(nc),
		pending: make(map[string]chan server.Response),
	}
	go c.readLoop()
	return c, nil
}

// readLoop fans responses out to their waiters. On connection loss every
// waiter (present and future) fails fast instead of hanging.
func (c *Client) readLoop() {
	sc := bufio.NewScanner(c.nc)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		var resp server.Response
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			continue
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
	err := sc.Err()
	if err == nil {
		err = fmt.Errorf("connection closed")
	}
	c.mu.Lock()
	c.readErr = err
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
	c.mu.Unlock()
}

// Submit sends a request and returns a channel that yields its response.
// A closed channel (zero Response, ok=false on receive) means the
// connection died. An empty ID is auto-assigned.
func (c *Client) Submit(req server.Request) (<-chan server.Response, error) {
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return nil, err
	}
	if req.ID == "" {
		c.nextID++
		req.ID = fmt.Sprintf("r%d", c.nextID)
	}
	ch := make(chan server.Response, 1)
	c.pending[req.ID] = ch
	c.mu.Unlock()

	line, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	c.wmu.Lock()
	_, werr := c.w.Write(append(line, '\n'))
	if werr == nil {
		werr = c.w.Flush()
	}
	c.wmu.Unlock()
	if werr != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, werr
	}
	return ch, nil
}

// Do sends a request and waits for its response.
func (c *Client) Do(req server.Request) (server.Response, error) {
	ch, err := c.Submit(req)
	if err != nil {
		return server.Response{}, err
	}
	resp, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.readErr
		c.mu.Unlock()
		return server.Response{}, err
	}
	return resp, nil
}

// ServerStats fetches the server's counters.
func (c *Client) ServerStats() (server.Stats, error) {
	resp, err := c.Do(server.Request{Op: "stats"})
	if err != nil {
		return server.Stats{}, err
	}
	if resp.Stats == nil {
		return server.Stats{}, fmt.Errorf("stats response carried no stats")
	}
	return *resp.Stats, nil
}

// Traces fetches up to limit recent query lifecycle traces per engine
// (limit <= 0 applies the server default).
func (c *Client) Traces(limit int) ([]obs.TraceRecord, error) {
	resp, err := c.Do(server.Request{Op: "trace", Limit: limit})
	if err != nil {
		return nil, err
	}
	if resp.Status != server.StatusOK {
		return nil, fmt.Errorf("trace op: status %q (%s)", resp.Status, resp.Error)
	}
	return resp.Traces, nil
}

// TraceReport renders trace records as indented span chains — one header
// line per query, one line per span event with its offset from submit and,
// where the model spoke, the predicted (and at completion, measured)
// benefit.
func TraceReport(recs []obs.TraceRecord) string {
	var sb strings.Builder
	for _, r := range recs {
		fmt.Fprintf(&sb, "trace %d %s quanta=%d queue_wait=%.2fms\n",
			r.ID, r.Signature, r.Quanta, r.QueueWaitMS)
		for _, e := range r.Events {
			fmt.Fprintf(&sb, "  %9.3fms %-8s %s", e.OffsetMS, e.Kind, e.Detail)
			if e.Predicted != 0 {
				fmt.Fprintf(&sb, " predicted=%.3g", e.Predicted)
			}
			if e.Measured != 0 {
				fmt.Fprintf(&sb, " measured=%.3g", e.Measured)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// ShardReport renders a sharded server's stats as one counter row per shard
// plus the cluster aggregate — the tail of the open-loop client report and
// of cordobad's drain output. Empty when the server runs unsharded.
func ShardReport(st server.Stats) string {
	if len(st.Shards) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, sh := range st.Shards {
		fmt.Fprintf(&sb, "  shard %d: completed=%d builds=%d buildJoins=%d busJoins=%d compile=%d/%d\n",
			sh.Shard, sh.Completed, sh.HashBuilds, sh.BuildJoins, sh.BusJoins,
			sh.CompileHits, sh.CompileMisses)
	}
	fmt.Fprintf(&sb, "  cluster: shards=%d scatters=%d routed=%d builds=%d busJoins=%d compile=%d/%d cache=%d/%d shed=%d\n",
		len(st.Shards), st.Scatters, st.Routed, st.HashBuilds, st.BusJoins,
		st.CompileHits, st.CompileMisses, st.CacheHits, st.CacheMisses, st.Shed)
	return sb.String()
}

// Close tears the connection down; outstanding waiters fail.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.nc.Close()
}

// OpenLoopConfig drives RunOpenLoop against a live server.
type OpenLoopConfig struct {
	// Addr is the server address.
	Addr string
	// Arrivals generates the inter-arrival gaps (required).
	Arrivals ArrivalProcess
	// Duration bounds the offered-traffic window (0 = until MaxArrivals).
	Duration time.Duration
	// MaxArrivals caps the number of arrivals (0 = until Duration). At least
	// one bound must be set.
	MaxArrivals int
	// Families is the rotation of family names per arrival (default: Q1,
	// Q6, Q4, Q13 — the full registry).
	Families []string
	// Variants is the per-family variant rotation length (default 3).
	Variants int
	// Tenants is the tenant rotation (default one "default" tenant).
	Tenants []string
	// Conns spreads traffic over this many connections (default 4).
	Conns int
}

// OpenLoopResult summarizes one open-loop run.
type OpenLoopResult struct {
	// Offered counts arrivals sent.
	Offered int
	// OK, Shed and Errors partition the responses.
	OK, Shed, Errors int
	// Lost counts arrivals whose connection died before answering.
	Lost int
	// QueuedOK counts OK responses that waited in a tenant FIFO first.
	QueuedOK int
	// SharedOK counts OK responses admitted into sharing.
	SharedOK int
	// Latency is the end-to-end histogram of OK responses.
	Latency *Hist
	// QueueWait is the histogram of FIFO waits among queued-then-served
	// responses.
	QueueWait *Hist
	// Elapsed is the wall-clock time from first arrival to last response.
	Elapsed time.Duration
}

// String renders the one-line run report.
func (r OpenLoopResult) String() string {
	return fmt.Sprintf("offered=%d ok=%d shed=%d err=%d lost=%d queued=%d shared=%d %s",
		r.Offered, r.OK, r.Shed, r.Errors, r.Lost, r.QueuedOK, r.SharedOK, r.Latency)
}

// RunOpenLoop offers open-loop traffic to a cordobad server: arrivals fire
// on the process's schedule regardless of outstanding responses, rotate
// through the family/variant/tenant mix, and every response lands in the
// latency histogram. The run returns after the offered window closes and
// every outstanding arrival has been answered (or its connection lost).
func RunOpenLoop(cfg OpenLoopConfig) (OpenLoopResult, error) {
	if cfg.Arrivals == nil {
		return OpenLoopResult{}, fmt.Errorf("openloop: Arrivals is required")
	}
	if cfg.Duration <= 0 && cfg.MaxArrivals <= 0 {
		return OpenLoopResult{}, fmt.Errorf("openloop: set Duration or MaxArrivals")
	}
	families := cfg.Families
	if len(families) == 0 {
		families = []string{"Q1", "Q6", "Q4", "Q13"}
	}
	variants := cfg.Variants
	if variants <= 0 {
		variants = 3
	}
	tenants := cfg.Tenants
	if len(tenants) == 0 {
		tenants = []string{"default"}
	}
	nconns := cfg.Conns
	if nconns <= 0 {
		nconns = 4
	}
	conns := make([]*Client, nconns)
	for i := range conns {
		c, err := DialServer(cfg.Addr)
		if err != nil {
			for _, done := range conns[:i] {
				done.Close()
			}
			return OpenLoopResult{}, err
		}
		conns[i] = c
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	res := OpenLoopResult{Latency: &Hist{}, QueueWait: &Hist{}}
	var (
		resMu sync.Mutex
		wg    sync.WaitGroup
	)
	start := time.Now()
	next := start
	for i := 0; cfg.MaxArrivals <= 0 || i < cfg.MaxArrivals; i++ {
		gap := cfg.Arrivals.Next(time.Since(start))
		next = next.Add(gap)
		// Open loop: sleep to the schedule, never to the responses. A late
		// wake keeps the backlogged schedule (no gap re-synthesis), which is
		// exactly the bursty catch-up an open system exhibits.
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		if cfg.Duration > 0 && time.Since(start) >= cfg.Duration {
			break
		}
		req := server.Request{
			Family:  families[i%len(families)],
			Variant: (i / len(families)) % variants,
			Tenant:  tenants[i%len(tenants)],
		}
		sent := time.Now()
		ch, err := conns[i%len(conns)].Submit(req)
		res.Offered++
		if err != nil {
			res.Lost++
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, ok := <-ch
			resMu.Lock()
			defer resMu.Unlock()
			switch {
			case !ok:
				res.Lost++
			case resp.Status == server.StatusOK:
				res.OK++
				res.Latency.Observe(time.Since(sent))
				if resp.QueueMS > 0 {
					res.QueuedOK++
					res.QueueWait.Observe(time.Duration(resp.QueueMS * float64(time.Millisecond)))
				}
				if resp.Decision == "admit-shared" {
					res.SharedOK++
				}
			case resp.Status == server.StatusShed:
				res.Shed++
			default:
				res.Errors++
			}
		}()
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	return res, nil
}
