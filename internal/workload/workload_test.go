package workload

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/tpch"
)

func q1() core.Query { return tpch.Model(tpch.Q1) }
func q4() core.Query { return tpch.Model(tpch.Q4) }

func TestPolicyKindString(t *testing.T) {
	if NeverShare.String() != "never" || AlwaysShare.String() != "always" || ModelShare.String() != "model" {
		t.Error("policy labels wrong")
	}
}

// On 2 processors sharing is always beneficial: always ≥ model ≥ never
// (Figure 6 left).
func TestFigure6TwoProcessorOrdering(t *testing.T) {
	pts := Figure6Series(q1(), q4(), 20, 2, 4)
	for _, pt := range pts {
		if pt.Model < pt.Never-1e-9 {
			t.Errorf("f=%.2f: model %g < never %g on 2 cpus", pt.FractionQ4, pt.Model, pt.Never)
		}
		if pt.Always < pt.Never-1e-9 {
			t.Errorf("f=%.2f: always %g < never %g on 2 cpus", pt.FractionQ4, pt.Always, pt.Never)
		}
		// Model tracks always closely when sharing is uniformly good.
		if pt.Model < 0.9*pt.Always {
			t.Errorf("f=%.2f: model %g far below always %g on 2 cpus", pt.FractionQ4, pt.Model, pt.Always)
		}
	}
}

// On 32 processors the orderings invert for scan-heavy work: never beats
// always (paper: 165 vs 80 q/min) and model beats both (200 q/min) — the
// 20% / 2.5x headline.
func TestFigure6ThirtyTwoProcessorOrdering(t *testing.T) {
	pts := Figure6Series(q1(), q4(), 20, 32, 4)
	var sumNever, sumAlways, sumModel float64
	for _, pt := range pts {
		if pt.Model < pt.Never-1e-9 {
			t.Errorf("f=%.2f: model %g < never %g", pt.FractionQ4, pt.Model, pt.Never)
		}
		if pt.Model < pt.Always-1e-9 {
			t.Errorf("f=%.2f: model %g < always %g", pt.FractionQ4, pt.Model, pt.Always)
		}
		sumNever += pt.Never
		sumAlways += pt.Always
		sumModel += pt.Model
	}
	// Average ratios approximate the paper's: model/never ≈ 1.2x,
	// model/always ≈ 2.5x. Accept generous bands — the shape is the claim.
	if r := sumModel / sumNever; r < 1.05 || r > 1.8 {
		t.Errorf("model/never average = %g, want ≈ 1.2 (within [1.05, 1.8])", r)
	}
	if r := sumModel / sumAlways; r < 1.5 {
		t.Errorf("model/always average = %g, want ≥ 1.5 (paper: ≈ 2.5)", r)
	}
	// At the pure-Q1 end, always-share collapses hardest.
	if pts[0].Always >= pts[0].Never {
		t.Errorf("pure Q1 on 32 cpus: always %g ≥ never %g", pts[0].Always, pts[0].Never)
	}
	// At the pure-Q4 end, sharing wins even on 32 processors.
	last := pts[len(pts)-1]
	if last.Always < last.Never {
		t.Errorf("pure Q4 on 32 cpus: always %g < never %g", last.Always, last.Never)
	}
}

// The model policy never predicts worse than both static policies — it can
// always fall back to either configuration.
func TestModelPolicyDominatesStatic(t *testing.T) {
	for _, n := range []float64{1, 2, 8, 16, 32} {
		for _, clients := range []int{4, 20, 48} {
			pts := Figure6Series(q1(), q4(), clients, n, 4)
			for _, pt := range pts {
				if pt.Model < math.Max(pt.Never, pt.Always)-1e-9 {
					t.Errorf("n=%g clients=%d f=%.2f: model %g below best static %g",
						n, clients, pt.FractionQ4, pt.Model, math.Max(pt.Never, pt.Always))
				}
			}
		}
	}
}

func TestPredictThroughputEmptyClass(t *testing.T) {
	mix := Mix{Classes: []Class{{Name: "Q1", Model: q1(), Clients: 0}}}
	if x := PredictThroughput(mix, 4, AlwaysShare); x != 0 {
		t.Errorf("empty mix throughput = %g", x)
	}
}

// Unsaturated system: all units run at peak; throughput independent of
// policy search fairness details.
func TestPredictThroughputUnsaturated(t *testing.T) {
	mix := Mix{Classes: []Class{{Name: "Q1", Model: q1(), Clients: 1}}}
	x := PredictThroughput(mix, 1000, NeverShare)
	want := 1 / q1().PMax()
	if math.Abs(x-want) > 1e-9 {
		t.Errorf("throughput = %g, want %g", x, want)
	}
}

func TestAssign(t *testing.T) {
	a := Assign("Q1", "Q4", 10, 0.3)
	var q4s int
	for _, c := range a {
		if c == "Q4" {
			q4s++
		}
	}
	if q4s != 3 || len(a) != 10 {
		t.Errorf("assignment = %v", a)
	}
}

// Closed-loop engine run completes queries under every policy and counts
// them per class.
func TestEngineMixRun(t *testing.T) {
	db := tpch.MustGenerate(tpch.Config{ScaleFactor: 0.001, Seed: 11})
	e, err := engine.New(engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	mix := EngineMix{
		Specs: map[string]engine.QuerySpec{
			"Q1": tpch.MustEngineSpec(tpch.Q1, db, 0),
			"Q6": tpch.MustEngineSpec(tpch.Q6, db, 0),
		},
		Assignment: Assign("Q6", "Q1", 4, 0.5),
	}
	for _, pol := range []engine.SharePolicy{policy.ForEngine(policy.Never{}), policy.Always{}, policy.ModelGuided{Env: core.NewEnv(4)}} {
		res, err := mix.Run(e, pol, 150*time.Millisecond)
		if err != nil {
			t.Fatalf("policy %v: %v", pol, err)
		}
		if res.Completions == 0 {
			t.Errorf("policy %v: no completions", pol)
		}
		if res.PerClass["Q1"] == 0 || res.PerClass["Q6"] == 0 {
			t.Errorf("policy %v: class starved: %v", pol, res.PerClass)
		}
		if res.QueriesPerMinute <= 0 {
			t.Errorf("policy %v: qpm = %g", pol, res.QueriesPerMinute)
		}
	}
}

// A parallelizing policy shows up in the mix report: scan-pivot queries run
// as clone groups and the counters carry through MixResult.
func TestEngineMixReportsParallelClones(t *testing.T) {
	db := tpch.MustGenerate(tpch.Config{ScaleFactor: 0.001, Seed: 11})
	e, err := engine.New(engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	mix := EngineMix{
		Specs:      map[string]engine.QuerySpec{"Q6": tpch.MustEngineSpec(tpch.Q6, db, 0)},
		Assignment: Assign("Q6", "Q6", 2, 0),
	}
	res, err := mix.Run(e, policy.Parallel{Clones: 2}, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions == 0 {
		t.Fatal("no completions under parallel policy")
	}
	if res.ParallelRuns == 0 || res.ParallelClones != 2*res.ParallelRuns {
		t.Fatalf("parallel counters: runs=%d clones=%d", res.ParallelRuns, res.ParallelClones)
	}
}

// Pivot-level join counters carry through MixResult, and they are deltas:
// a second run must not inherit the first run's joins.
func TestEngineMixReportsPivotJoins(t *testing.T) {
	db := tpch.MustGenerate(tpch.Config{ScaleFactor: 0.001, Seed: 11})
	e, err := engine.New(engine.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	mix := EngineMix{
		Specs:      map[string]engine.QuerySpec{"Q1": tpch.MustEngineSpec(tpch.Q1, db, 0)},
		Assignment: Assign("Q1", "Q1", 4, 0),
	}
	pol := policy.ModelGuided{Env: core.NewEnv(2), PivotSelect: true}
	res, err := mix.Run(e, pol, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, n := range res.PivotJoins {
		total += n
	}
	if total == 0 {
		t.Fatalf("no pivot-level joins recorded under the subplan policy: %v", res.PivotJoins)
	}
	// Q1 offers the aggregate as its highest candidate; the subplan policy
	// must have anchored at least one group there.
	if res.PivotJoins[1] == 0 {
		t.Errorf("no joins at the aggregate level: %v", res.PivotJoins)
	}
	again, err := mix.Run(e, pol, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for level, n := range again.PivotJoins {
		if n < 0 {
			t.Errorf("negative join delta at level %d: %d", level, n)
		}
	}
}

func TestEngineMixErrors(t *testing.T) {
	e, err := engine.New(engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := (EngineMix{}).Run(e, nil, time.Millisecond); err == nil {
		t.Error("empty mix accepted")
	}
	bad := EngineMix{Assignment: []string{"ghost"}, Specs: map[string]engine.QuerySpec{}}
	if _, err := bad.Run(e, nil, time.Millisecond); err == nil {
		t.Error("unknown class accepted")
	}
}
