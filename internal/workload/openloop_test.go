package workload

import (
	"math"
	"testing"
	"time"
)

// The histogram must bound quantile error by its bucket ratio (~9%) on a
// known uniform distribution, clamp to the observed max, and zero out when
// empty.
func TestHistQuantiles(t *testing.T) {
	var h Hist
	if h.Quantile(0.99) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram reported nonzero stats")
	}
	for ms := 1; ms <= 1000; ms++ {
		h.Observe(time.Duration(ms) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count() = %d", h.Count())
	}
	if h.Max() != time.Second {
		t.Fatalf("Max() = %v", h.Max())
	}
	checks := []struct {
		p    float64
		want time.Duration
	}{{0.50, 500 * time.Millisecond}, {0.95, 950 * time.Millisecond}, {0.99, 990 * time.Millisecond}}
	for _, c := range checks {
		got := h.Quantile(c.p)
		ratio := float64(got) / float64(c.want)
		if ratio < 0.90 || ratio > 1.10 {
			t.Fatalf("Quantile(%.2f) = %v, want %v ±10%%", c.p, got, c.want)
		}
	}
	if h.Quantile(1) > h.Max() {
		t.Fatalf("Quantile(1) = %v exceeds Max() = %v", h.Quantile(1), h.Max())
	}
	mean := h.Mean()
	if mean < 450*time.Millisecond || mean > 550*time.Millisecond {
		t.Fatalf("Mean() = %v", mean)
	}
}

// Poisson gaps must average 1/rate, reproduce exactly under the same seed,
// and never exceed the stall clamp.
func TestPoissonArrivals(t *testing.T) {
	const rate = 200.0
	p1 := NewPoisson(rate, 7)
	p2 := NewPoisson(rate, 7)
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		g1 := p1.Next(0)
		if g2 := p2.Next(0); g2 != g1 {
			t.Fatalf("same seed diverged at sample %d: %v vs %v", i, g1, g2)
		}
		if g1 < 0 || g1 > 10*time.Second {
			t.Fatalf("gap %v out of range", g1)
		}
		sum += g1
	}
	mean := float64(sum) / float64(n) / float64(time.Second)
	if math.Abs(mean-1/rate) > 0.2/rate {
		t.Fatalf("mean gap %.6fs, want ~%.6fs", mean, 1/rate)
	}
	if NewPoisson(0, 1).Next(0) != time.Second {
		t.Fatal("degenerate rate did not clamp")
	}
}

// The flash-crowd step must offer visibly denser arrivals inside its window
// than outside, and the diurnal cycle must modulate the mean gap across
// phases.
func TestShapedArrivals(t *testing.T) {
	fc := NewFlashCrowd(10, 1000, time.Minute, time.Minute, 3)
	meanGap := func(p ArrivalProcess, elapsed time.Duration, n int) float64 {
		var sum time.Duration
		for i := 0; i < n; i++ {
			sum += p.Next(elapsed)
		}
		return float64(sum) / float64(n)
	}
	base := meanGap(fc, 0, 4000)
	peak := meanGap(fc, 90*time.Second, 4000)
	if base < 50*peak {
		t.Fatalf("flash crowd not dense enough: base gap %.0f, peak gap %.0f", base, peak)
	}
	d := NewDiurnal(100, 0.9, time.Hour, 3)
	high := meanGap(d, 15*time.Minute, 4000) // sin peak: rate 190/s
	low := meanGap(d, 45*time.Minute, 4000)  // sin trough: rate 10/s
	if low < 5*high {
		t.Fatalf("diurnal cycle flat: trough gap %.0f, peak gap %.0f", low, high)
	}
}
