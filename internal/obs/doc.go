// Package obs is Cordoba's unified telemetry layer: a lock-cheap metrics
// registry exported in Prometheus text format, a bounded per-engine ring of
// per-query lifecycle traces, and a model-accuracy audit that pairs each
// submit-time decision's predicted benefit with the measured outcome.
//
// The package deliberately has no dependencies beyond the standard library
// and no knowledge of the engine: the engine, scheduler, cache, cluster and
// server all register closures over their existing counters (so the hot
// paths pay nothing for exposition), append span events to a query's trace
// handle (nil-safe, so a disabled tracer costs one pointer test), and feed
// (predicted, measured) pairs to an Audit keyed by decision kind.
//
// Three building blocks:
//
//   - Registry / Counter / Gauge / CounterFunc / GaugeFunc / Histogram:
//     named series with optional labels, rendered by WritePrometheus. Counters
//     and gauges are single atomics; func variants sample at scrape time.
//   - Tracer / QueryTrace: Begin allocates a trace slot in a fixed ring
//     (oldest evicted on wrap), spans append under the trace's own mutex,
//     scheduler quanta and queue waits accumulate in per-trace atomics.
//   - Audit: Observe(kind, predicted, measured) accumulates a per-kind
//     measured/predicted ratio histogram — the prediction-error distribution
//     of the cost model's share/parallel/scatter/admit decisions.
package obs
