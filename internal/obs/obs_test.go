package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// An empty histogram must report 0 for every quantile — not the top-bucket
// bound, not the max sentinel.
func TestEmptyHistQuantilesReportZero(t *testing.T) {
	var f FloatHist
	for _, p := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := f.Quantile(p); got != 0 {
			t.Fatalf("empty FloatHist Quantile(%v) = %v, want 0", p, got)
		}
	}
	if f.Mean() != 0 || f.Max() != 0 || f.Count() != 0 {
		t.Fatalf("empty FloatHist not all-zero: mean=%v max=%v n=%d", f.Mean(), f.Max(), f.Count())
	}
	var h Hist
	if h.P50() != 0 || h.P95() != 0 || h.P99() != 0 || h.Max() != 0 {
		t.Fatalf("empty Hist quantiles not zero: %s", h.String())
	}
}

func TestHistQuantileClampAndResolution(t *testing.T) {
	var h Hist
	for i := 0; i < 100; i++ {
		h.Observe(10 * time.Millisecond)
	}
	// All mass in one bucket: every quantile equals the observed max (the
	// clamp), not the bucket's geometric upper bound.
	if got := h.P99(); got != 10*time.Millisecond {
		t.Fatalf("P99 = %v, want 10ms exactly (clamped to max)", got)
	}
	h.Observe(time.Second)
	p100 := h.Quantile(1)
	if p100 < 900*time.Millisecond || p100 > time.Second {
		t.Fatalf("Quantile(1) after outlier = %v, want within ~9%% below 1s", p100)
	}
	if h.Count() != 101 {
		t.Fatalf("Count = %d, want 101", h.Count())
	}
}

// The tracer ring must retain exactly the last `cap` traces once it wraps,
// oldest-first in Recent.
func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 1; i <= 10; i++ {
		qt := tr.Begin(fmt.Sprintf("q%d", i))
		qt.Event("submit", "")
		if qt.ID() != uint64(i) {
			t.Fatalf("trace %d got id %d", i, qt.ID())
		}
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	recs := tr.Recent(0)
	if len(recs) != 4 {
		t.Fatalf("Recent(0) returned %d records, want 4", len(recs))
	}
	for i, rec := range recs {
		wantID := uint64(7 + i) // 7,8,9,10 survive; 1..6 evicted
		if rec.ID != wantID {
			t.Fatalf("record %d has id %d, want %d", i, rec.ID, wantID)
		}
		if rec.Signature != fmt.Sprintf("q%d", wantID) {
			t.Fatalf("record %d signature %q", i, rec.Signature)
		}
	}
	if got := tr.Recent(2); len(got) != 2 || got[1].ID != 10 {
		t.Fatalf("Recent(2) = %+v, want last two ending at id 10", got)
	}
}

// A nil tracer (disabled) and a nil trace must be safe through the whole
// span API.
func TestNilTracerAndTraceAreNoOps(t *testing.T) {
	var tr *Tracer
	qt := tr.Begin("x")
	if qt != nil {
		t.Fatal("nil tracer Begin returned non-nil trace")
	}
	qt.Event("submit", "detail")
	qt.EventPredicted("pivot", "z", 2.5)
	qt.EventMeasured("complete", "", 2.5, 2.1)
	qt.IncQuanta()
	qt.AddWait(time.Millisecond)
	if rec := qt.Snapshot(); rec.ID != 0 || len(rec.Events) != 0 {
		t.Fatalf("nil trace snapshot = %+v", rec)
	}
	if tr.Len() != 0 || tr.Recent(5) != nil {
		t.Fatal("nil tracer not empty")
	}
	if NewTracer(0) != nil || NewTracer(-1) != nil {
		t.Fatal("non-positive capacity should disable tracing")
	}
}

// Concurrent span emission, quanta counting and snapshotting across many
// goroutines — the -race target for the tracing hot path.
func TestConcurrentSpanEmission(t *testing.T) {
	tr := NewTracer(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				qt := tr.Begin(fmt.Sprintf("g%d-%d", g, i))
				qt.Event("submit", "")
				qt.EventPredicted("pivot", "share@1", 1.5)
				qt.IncQuanta()
				qt.AddWait(time.Microsecond)
				qt.EventMeasured("complete", "", 1.5, 1.2)
			}
		}(g)
	}
	// Concurrent readers while writers run.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				for _, rec := range tr.Recent(8) {
					_ = rec.Quanta
				}
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 32 {
		t.Fatalf("Len = %d, want full ring of 32", tr.Len())
	}
	for _, rec := range tr.Recent(0) {
		if len(rec.Events) != 3 {
			t.Fatalf("trace %d has %d events, want 3", rec.ID, len(rec.Events))
		}
		if rec.Quanta != 1 {
			t.Fatalf("trace %d quanta = %d", rec.ID, rec.Quanta)
		}
	}
}

// Prometheus text-format escaping: backslashes, quotes and newlines in
// label values; backslashes and newlines in HELP.
func TestPrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("esc_total", "help with \\ backslash\nand newline", Labels{
		"path": `C:\data`,
		"q":    "say \"hi\"\nbye",
	})
	c.Add(3)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	wantHelp := `# HELP esc_total help with \\ backslash\nand newline`
	if !strings.Contains(out, wantHelp) {
		t.Fatalf("HELP not escaped:\n%s", out)
	}
	wantSeries := `esc_total{path="C:\\data",q="say \"hi\"\nbye"} 3`
	if !strings.Contains(out, wantSeries) {
		t.Fatalf("label values not escaped, want %q in:\n%s", wantSeries, out)
	}
}

func TestRegistryCountersGaugesFuncsAndHistograms(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter", nil)
	c.Inc()
	c.Add(4)
	g := r.Gauge("g", "a gauge", Labels{"shard": "0"})
	g.Set(2.5)
	g.Add(-0.5)
	r.CounterFunc("cf_total", "func counter", nil, func() float64 { return 42 })
	r.GaugeFunc("gf", "func gauge", nil, func() float64 { return -1.25 })
	var fh FloatHist
	fh.Observe(100) // µs
	fh.Observe(200)
	r.Histogram("lat_seconds", "latency", nil, &fh, 1e-6)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE c_total counter", "c_total 5",
		`g{shard="0"} 2`,
		"cf_total 42",
		"gf -1.25",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="+Inf"} 2`,
		"lat_seconds_count 2",
		"lat_seconds_sum 0.0003",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in exposition:\n%s", want, out)
		}
	}
	// Histogram bucket bounds must be cumulative and ordered.
	snap := fh.Snapshot()
	if len(snap.Buckets) != 2 || snap.Buckets[1].CumulativeCount != 2 {
		t.Fatalf("snapshot buckets = %+v", snap.Buckets)
	}
	if snap.Buckets[0].UpperBound >= snap.Buckets[1].UpperBound {
		t.Fatalf("bucket bounds not ascending: %+v", snap.Buckets)
	}
}

func TestAuditObserveAndSnapshot(t *testing.T) {
	a := NewAudit()
	// Model promised 2× from sharing, delivered 1.8×, thrice.
	for i := 0; i < 3; i++ {
		a.Observe("share", 2.0, 1.8)
	}
	a.Observe("alone", 1.0, 1.0)
	a.Observe("bogus", 0, 1) // dropped: no prediction
	stats := a.Snapshot()
	if len(stats) != 2 {
		t.Fatalf("got %d kinds, want 2: %+v", len(stats), stats)
	}
	if stats[0].Kind != "alone" || stats[1].Kind != "share" {
		t.Fatalf("kinds not sorted: %+v", stats)
	}
	sh := stats[1]
	if sh.N != 3 || sh.MeanPredicted != 2.0 {
		t.Fatalf("share stats = %+v", sh)
	}
	// Error ratio 0.9, log-bucket relative error ≤ 9%.
	if sh.ErrP50 < 0.85 || sh.ErrP50 > 0.95 {
		t.Fatalf("share ErrP50 = %v, want ≈0.9", sh.ErrP50)
	}

	r := NewRegistry()
	r.RegisterAudit("cordoba_model", Labels{"shard": "0"}, a)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`cordoba_model_decisions_total{kind="share",shard="0"} 3`,
		`cordoba_model_error_ratio{kind="share",quantile="0.5",shard="0"}`,
		`cordoba_model_predicted_benefit_sum{kind="share",shard="0"} 6`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in audit exposition:\n%s", want, out)
		}
	}
}

func TestAuditConcurrentObserve(t *testing.T) {
	a := NewAudit()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				a.Observe("share", 2, 1.9)
				_ = a.Snapshot()
			}
		}()
	}
	wg.Wait()
	if st := a.Snapshot(); st[0].N != 4000 {
		t.Fatalf("N = %d, want 4000", st[0].N)
	}
}
