package obs

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// histBucketsPerOctave sets the histogram resolution: 8 buckets per doubling
// bounds any quantile's relative error by 2^(1/8)−1 ≈ 9%, plenty for tail
// reporting, at a fixed few-hundred-bucket footprint.
const histBucketsPerOctave = 8

// FloatHist is a thread-safe log-bucketed histogram over positive float64
// values: fixed memory whatever the sample count, geometric buckets so the
// p99 of a microsecond and the p99 of a minute are captured with the same
// relative precision. Values at or below 1 land in bucket zero, so callers
// whose values range below 1 (ratios, fractions) should scale observations
// up and divide quantiles back down. The zero value is ready to use.
type FloatHist struct {
	mu     sync.Mutex
	counts []uint64
	n      uint64
	sum    float64
	max    float64
}

// floatBucket maps a value to its bucket index.
func floatBucket(v float64) int {
	if v <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(v) * histBucketsPerOctave))
}

// floatBound returns the upper bound of bucket i.
func floatBound(i int) float64 {
	return math.Pow(2, float64(i)/histBucketsPerOctave)
}

// Observe records one sample. Negative samples are clamped to 0.
func (h *FloatHist) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	b := floatBucket(v)
	h.mu.Lock()
	if b >= len(h.counts) {
		grown := make([]uint64, b+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[b]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Count returns the number of samples observed.
func (h *FloatHist) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of all samples.
func (h *FloatHist) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the arithmetic mean of the samples (0 when empty).
func (h *FloatHist) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Max returns the largest sample observed (0 when empty).
func (h *FloatHist) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns the value at quantile p in [0,1]: the upper bound of the
// bucket holding the p·n-th sample, clamped to the observed maximum so the
// top bucket's geometric rounding never reports a value nothing reached. An
// empty histogram reports 0, never a sentinel.
func (h *FloatHist) Quantile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(math.Ceil(p * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			bound := floatBound(i)
			if bound > h.max {
				bound = h.max
			}
			return bound
		}
	}
	return h.max
}

// HistBucket is one cumulative bucket of a histogram snapshot: the count of
// samples at or below UpperBound.
type HistBucket struct {
	UpperBound      float64
	CumulativeCount uint64
}

// HistSnapshot is a consistent point-in-time copy of a histogram, in the
// cumulative-bucket form the Prometheus exposition format wants.
type HistSnapshot struct {
	Buckets []HistBucket
	Count   uint64
	Sum     float64
	Max     float64
}

// Snapshot returns the histogram's cumulative-bucket state. Empty buckets
// between occupied ones are skipped (their cumulative count equals the
// previous bound's, so the exposition loses nothing).
func (h *FloatHist) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{Count: h.n, Sum: h.sum, Max: h.max}
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		s.Buckets = append(s.Buckets, HistBucket{UpperBound: floatBound(i), CumulativeCount: cum})
	}
	return s
}

// histUnit is the duration histogram's unit: observations are stored in
// microseconds, so bucket zero's upper bound is 1µs — the same resolution
// floor the workload package's original histogram used.
const histUnit = time.Microsecond

// Hist is a thread-safe log-bucketed latency histogram: a FloatHist over
// microseconds with a time.Duration API. It was born as workload.Hist and is
// re-exported there as an alias; the zero value is ready to use.
type Hist struct {
	f FloatHist
}

// Observe records one latency sample.
func (h *Hist) Observe(d time.Duration) {
	h.f.Observe(float64(d) / float64(histUnit))
}

// Float returns the underlying FloatHist, e.g. for registry registration.
// Values are in microseconds.
func (h *Hist) Float() *FloatHist { return &h.f }

// Count returns the number of samples observed.
func (h *Hist) Count() uint64 { return h.f.Count() }

// Mean returns the arithmetic mean of the samples (0 when empty).
func (h *Hist) Mean() time.Duration {
	return time.Duration(h.f.Mean() * float64(histUnit))
}

// Max returns the largest sample observed.
func (h *Hist) Max() time.Duration {
	return time.Duration(h.f.Max() * float64(histUnit))
}

// Quantile returns the latency at quantile p in [0,1], clamped to the
// observed maximum. An empty histogram reports 0, never a sentinel.
func (h *Hist) Quantile(p float64) time.Duration {
	return time.Duration(h.f.Quantile(p) * float64(histUnit))
}

// P50, P95 and P99 are the tail-latency quantiles the reports cite.
func (h *Hist) P50() time.Duration { return h.Quantile(0.50) }
func (h *Hist) P95() time.Duration { return h.Quantile(0.95) }
func (h *Hist) P99() time.Duration { return h.Quantile(0.99) }

// String renders the headline quantiles, e.g. for run reports.
func (h *Hist) String() string {
	return fmt.Sprintf("p50=%v p95=%v p99=%v max=%v n=%d",
		h.P50().Round(time.Microsecond), h.P95().Round(time.Microsecond),
		h.P99().Round(time.Microsecond), h.Max().Round(time.Microsecond), h.Count())
}
