package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Event is one span event in a query's lifecycle: submit, admit, compile,
// pivot choice, anchor/attach, seal, gather, complete. Predicted carries the
// model's expected benefit at decision events (speedup vs running alone,
// 1 = none); Measured carries the realized benefit at completion.
type Event struct {
	T         time.Time
	Kind      string
	Detail    string
	Predicted float64
	Measured  float64
}

// QueryTrace accumulates one query's span events plus two hot-path
// counters: scheduler quanta executed and time spent blocked on page
// queues. All methods are nil-receiver safe, so call sites need no tracer-
// enabled test.
type QueryTrace struct {
	id     uint64
	sig    string
	start  time.Time
	quanta atomic.Int64
	waitNS atomic.Int64

	mu     sync.Mutex
	events []Event
}

// ID returns the trace's tracer-assigned sequence number (0 for nil).
func (t *QueryTrace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// Event appends a span event.
func (t *QueryTrace) Event(kind, detail string) {
	t.add(Event{Kind: kind, Detail: detail})
}

// EventPredicted appends a span event carrying the model's predicted
// benefit.
func (t *QueryTrace) EventPredicted(kind, detail string, predicted float64) {
	t.add(Event{Kind: kind, Detail: detail, Predicted: predicted})
}

// EventMeasured appends a span event carrying both the predicted and the
// measured benefit — the completion event pairs the two for the audit.
func (t *QueryTrace) EventMeasured(kind, detail string, predicted, measured float64) {
	t.add(Event{Kind: kind, Detail: detail, Predicted: predicted, Measured: measured})
}

func (t *QueryTrace) add(e Event) {
	if t == nil {
		return
	}
	e.T = time.Now()
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// IncQuanta counts one scheduler quantum executed on the query's behalf.
func (t *QueryTrace) IncQuanta() {
	if t == nil {
		return
	}
	t.quanta.Add(1)
}

// AddWait accumulates time one of the query's tasks spent parked on a page
// queue.
func (t *QueryTrace) AddWait(d time.Duration) {
	if t == nil || d <= 0 {
		return
	}
	t.waitNS.Add(int64(d))
}

// TraceEvent is the wire form of an Event: offset from trace start instead
// of an absolute timestamp.
type TraceEvent struct {
	OffsetMS  float64 `json:"offset_ms"`
	Kind      string  `json:"kind"`
	Detail    string  `json:"detail,omitempty"`
	Predicted float64 `json:"predicted,omitempty"`
	Measured  float64 `json:"measured,omitempty"`
}

// TraceRecord is a consistent snapshot of one query's trace, in the form the
// trace wire op returns.
type TraceRecord struct {
	ID          uint64       `json:"id"`
	Signature   string       `json:"signature"`
	Quanta      int64        `json:"quanta"`
	QueueWaitMS float64      `json:"queue_wait_ms"`
	Events      []TraceEvent `json:"events"`
}

// Snapshot copies the trace's current state.
func (t *QueryTrace) Snapshot() TraceRecord {
	if t == nil {
		return TraceRecord{}
	}
	rec := TraceRecord{
		ID:          t.id,
		Signature:   t.sig,
		Quanta:      t.quanta.Load(),
		QueueWaitMS: float64(t.waitNS.Load()) / 1e6,
	}
	t.mu.Lock()
	rec.Events = make([]TraceEvent, len(t.events))
	for i, e := range t.events {
		rec.Events[i] = TraceEvent{
			OffsetMS:  e.T.Sub(t.start).Seconds() * 1e3,
			Kind:      e.Kind,
			Detail:    e.Detail,
			Predicted: e.Predicted,
			Measured:  e.Measured,
		}
	}
	t.mu.Unlock()
	return rec
}

// Tracer keeps the most recent query traces in a fixed ring: Begin claims
// the next slot, evicting the oldest trace once the ring wraps. A nil Tracer
// is a disabled one — Begin returns a nil trace and every downstream span
// call is a no-op.
type Tracer struct {
	mu   sync.Mutex
	ring []*QueryTrace
	next int
	seq  uint64
}

// NewTracer returns a tracer retaining the last capacity traces, or nil
// (tracing disabled) when capacity is not positive.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		return nil
	}
	return &Tracer{ring: make([]*QueryTrace, capacity)}
}

// Begin allocates a trace for one query, appends its submit-side identity
// and claims a ring slot.
func (tr *Tracer) Begin(signature string) *QueryTrace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	tr.seq++
	t := &QueryTrace{id: tr.seq, sig: signature, start: time.Now()}
	tr.ring[tr.next] = t
	tr.next = (tr.next + 1) % len(tr.ring)
	tr.mu.Unlock()
	return t
}

// Len returns the number of traces currently retained.
func (tr *Tracer) Len() int {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := 0
	for _, t := range tr.ring {
		if t != nil {
			n++
		}
	}
	return n
}

// Recent snapshots up to n retained traces, oldest first (so the last entry
// is the newest query). n <= 0 means all retained.
func (tr *Tracer) Recent(n int) []TraceRecord {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	ordered := make([]*QueryTrace, 0, len(tr.ring))
	// Oldest retained trace sits at next (the slot about to be evicted).
	for i := 0; i < len(tr.ring); i++ {
		if t := tr.ring[(tr.next+i)%len(tr.ring)]; t != nil {
			ordered = append(ordered, t)
		}
	}
	tr.mu.Unlock()
	if n > 0 && len(ordered) > n {
		ordered = ordered[len(ordered)-n:]
	}
	out := make([]TraceRecord, len(ordered))
	for i, t := range ordered {
		out[i] = t.Snapshot()
	}
	return out
}
