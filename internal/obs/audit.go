package obs

import (
	"sort"
	"sync"
)

// auditRatioScale scales measured/predicted ratios before histogram
// insertion: the FloatHist's bucket-zero floor is 1, so ratios are stored
// ×1024, keeping log-bucket resolution down to under-predictions of ~2⁻¹⁰.
const auditRatioScale = 1024

// auditKind accumulates one decision kind's predicted-vs-measured record.
type auditKind struct {
	n       int64
	predSum float64
	measSum float64
	ratio   FloatHist
}

// Audit pairs submit-time decisions' predicted benefit with the measured
// outcome, per decision kind ("share", "build-share", "parallel", "scatter",
// "alone", ...). Benefit is a speedup versus running the query alone at the
// same load, so 1 means "no benefit expected/observed" and the
// measured/predicted ratio is the model's error: 1 is a perfect call, below
// 1 the model over-promised, above 1 it under-promised.
type Audit struct {
	mu    sync.Mutex
	kinds map[string]*auditKind
	order []string
}

// NewAudit returns an empty audit.
func NewAudit() *Audit {
	return &Audit{kinds: make(map[string]*auditKind)}
}

// Observe records one decision outcome. Non-positive predictions or
// measurements carry no ratio information and are dropped.
func (a *Audit) Observe(kind string, predicted, measured float64) {
	if a == nil || predicted <= 0 || measured <= 0 {
		return
	}
	a.mu.Lock()
	k, ok := a.kinds[kind]
	if !ok {
		k = &auditKind{}
		a.kinds[kind] = k
		a.order = append(a.order, kind)
	}
	k.n++
	k.predSum += predicted
	k.measSum += measured
	a.mu.Unlock()
	k.ratio.Observe(measured / predicted * auditRatioScale)
}

// AuditStat is one decision kind's accumulated accuracy record.
type AuditStat struct {
	Kind          string  `json:"kind"`
	N             int64   `json:"n"`
	PredictedSum  float64 `json:"predicted_sum"`
	MeasuredSum   float64 `json:"measured_sum"`
	MeanPredicted float64 `json:"mean_predicted"`
	MeanMeasured  float64 `json:"mean_measured"`
	ErrP50        float64 `json:"err_p50"`
	ErrP95        float64 `json:"err_p95"`
	ErrP99        float64 `json:"err_p99"`
}

// Snapshot returns per-kind stats sorted by kind name.
func (a *Audit) Snapshot() []AuditStat {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	names := make([]string, len(a.order))
	copy(names, a.order)
	kinds := make([]*auditKind, len(names))
	for i, name := range names {
		kinds[i] = a.kinds[name]
	}
	a.mu.Unlock()
	sort.Sort(&auditSort{names, kinds})
	out := make([]AuditStat, len(names))
	for i, name := range names {
		k := kinds[i]
		a.mu.Lock()
		st := AuditStat{Kind: name, N: k.n, PredictedSum: k.predSum, MeasuredSum: k.measSum}
		if k.n > 0 {
			st.MeanPredicted = k.predSum / float64(k.n)
			st.MeanMeasured = k.measSum / float64(k.n)
		}
		a.mu.Unlock()
		st.ErrP50 = k.ratio.Quantile(0.50) / auditRatioScale
		st.ErrP95 = k.ratio.Quantile(0.95) / auditRatioScale
		st.ErrP99 = k.ratio.Quantile(0.99) / auditRatioScale
		out[i] = st
	}
	return out
}

type auditSort struct {
	names []string
	kinds []*auditKind
}

func (s *auditSort) Len() int           { return len(s.names) }
func (s *auditSort) Less(i, j int) bool { return s.names[i] < s.names[j] }
func (s *auditSort) Swap(i, j int) {
	s.names[i], s.names[j] = s.names[j], s.names[i]
	s.kinds[i], s.kinds[j] = s.kinds[j], s.kinds[i]
}
