package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels name a series within a metric family. Rendering sorts keys, so two
// maps with equal contents address the same series.
type Labels map[string]string

// Counter is a monotonically increasing series: one atomic, no locks.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (callers keep counters monotone; Add does not enforce it).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable series: one atomic holding float64 bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// series is one (labels, value) pair within a family. Exactly one of value
// and hist is set.
type series struct {
	labels string // pre-rendered `{k="v",...}` or ""
	value  func() float64
	hist   *FloatHist
	scale  float64 // applied to hist bounds and sum at exposition
}

// family is one named metric with HELP/TYPE lines and its series in
// registration order.
type family struct {
	name, help, typ string
	series          []*series
	index           map[string]*series
}

// auditReg binds a registered Audit to its exposition name prefix and the
// extra labels (e.g. a shard id) merged into every series.
type auditReg struct {
	prefix string
	labels Labels
	audit  *Audit
}

// Registry holds named metric families and renders them in Prometheus text
// exposition format. Registration takes the registry lock; reading a Counter
// or Gauge never does. Collection samples func-backed series at scrape time,
// so components register closures over counters they already maintain.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
	audits []auditReg
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) familyLocked(name, help, typ string) *family {
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, index: make(map[string]*series)}
		r.byName[name] = f
		r.fams = append(r.fams, f)
	}
	return f
}

func (r *Registry) register(name, help, typ string, labels Labels, s *series) *series {
	s.labels = renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, typ)
	if old, ok := f.index[s.labels]; ok {
		// Re-registering a series replaces its source; the old handle keeps
		// working but no longer feeds the exposition.
		*old = *s
		return old
	}
	f.index[s.labels] = s
	f.series = append(f.series, s)
	return s
}

// Counter registers (or fetches) an owned counter series.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", labels, &series{value: func() float64 { return float64(c.v.Load()) }})
	return c
}

// Gauge registers (or fetches) an owned gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", labels, &series{value: g.Value})
	return g
}

// CounterFunc registers a counter series sampled from fn at scrape time —
// the zero-hot-path-cost variant for counters a component already keeps.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, "counter", labels, &series{value: fn})
}

// GaugeFunc registers a gauge series sampled from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, "gauge", labels, &series{value: fn})
}

// Histogram registers a FloatHist. scale converts stored values to the
// exposition unit (e.g. 1e-6 for a microsecond histogram exposed in
// seconds); 0 means 1.
func (r *Registry) Histogram(name, help string, labels Labels, h *FloatHist, scale float64) {
	if scale == 0 {
		scale = 1
	}
	r.register(name, help, "histogram", labels, &series{hist: h, scale: scale})
}

// RegisterAudit exposes a model-accuracy audit under the given name prefix:
// per decision kind, decision counts, predicted/measured benefit sums and
// error-ratio quantiles. labels are merged into every series, so several
// audits (one per shard) can share a prefix.
func (r *Registry) RegisterAudit(prefix string, labels Labels, a *Audit) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.audits = append(r.audits, auditReg{prefix: prefix, labels: labels, audit: a})
}

// renderLabels renders a label set as `{k="v",...}` with sorted keys and
// escaped values, or "" for no labels.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes a label value per the Prometheus text format:
// backslash, double-quote and newline.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline (quotes are legal
// there).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// insertLabel splices `extra` (already k="v" form) into a rendered label
// block, handling both the empty and non-empty cases.
func insertLabel(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// WritePrometheus renders every registered family (and audit) in Prometheus
// text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	audits := make([]auditReg, len(r.audits))
	copy(audits, r.audits)
	r.mu.Unlock()

	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.series {
			if s.hist != nil {
				if err := writeHist(w, f.name, s); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, fmtFloat(s.value())); err != nil {
				return err
			}
		}
	}
	for _, ar := range audits {
		if err := writeAudit(w, ar); err != nil {
			return err
		}
	}
	return nil
}

// auditLabels renders the audit series labels: the registration's extra
// labels plus kind (and optionally quantile).
func auditLabels(ar auditReg, kind, quantile string) string {
	merged := make(Labels, len(ar.labels)+2)
	for k, v := range ar.labels {
		merged[k] = v
	}
	merged["kind"] = kind
	if quantile != "" {
		merged["quantile"] = quantile
	}
	return renderLabels(merged)
}

func writeHist(w io.Writer, name string, s *series) error {
	snap := s.hist.Snapshot()
	for _, b := range snap.Buckets {
		le := insertLabel(s.labels, `le="`+fmtFloat(b.UpperBound*s.scale)+`"`)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, le, b.CumulativeCount); err != nil {
			return err
		}
	}
	inf := insertLabel(s.labels, `le="+Inf"`)
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, inf, snap.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, s.labels, fmtFloat(snap.Sum*s.scale)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, snap.Count)
	return err
}

func writeAudit(w io.Writer, ar auditReg) error {
	prefix := ar.prefix
	stats := ar.audit.Snapshot()
	if len(stats) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "# HELP %s_decisions_total Model decisions audited, by decision kind.\n# TYPE %s_decisions_total counter\n", prefix, prefix); err != nil {
		return err
	}
	for _, st := range stats {
		if _, err := fmt.Fprintf(w, "%s_decisions_total%s %d\n", prefix, auditLabels(ar, st.Kind, ""), st.N); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# HELP %s_error_ratio Measured/predicted benefit ratio quantiles per decision kind (1 = model exact).\n# TYPE %s_error_ratio gauge\n", prefix, prefix); err != nil {
		return err
	}
	for _, st := range stats {
		for _, q := range []struct {
			q string
			v float64
		}{{"0.5", st.ErrP50}, {"0.95", st.ErrP95}, {"0.99", st.ErrP99}} {
			if _, err := fmt.Fprintf(w, "%s_error_ratio%s %s\n", prefix, auditLabels(ar, st.Kind, q.q), fmtFloat(q.v)); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintf(w, "# HELP %s_predicted_benefit_sum Sum of predicted decision benefits (speedup vs alone), by kind.\n# TYPE %s_predicted_benefit_sum counter\n", prefix, prefix); err != nil {
		return err
	}
	for _, st := range stats {
		if _, err := fmt.Fprintf(w, "%s_predicted_benefit_sum%s %s\n", prefix, auditLabels(ar, st.Kind, ""), fmtFloat(st.PredictedSum)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# HELP %s_measured_benefit_sum Sum of measured decision benefits (alone-estimate / wall), by kind.\n# TYPE %s_measured_benefit_sum counter\n", prefix, prefix); err != nil {
		return err
	}
	for _, st := range stats {
		if _, err := fmt.Fprintf(w, "%s_measured_benefit_sum%s %s\n", prefix, auditLabels(ar, st.Kind, ""), fmtFloat(st.MeasuredSum)); err != nil {
			return err
		}
	}
	return nil
}
