package linsolve

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustMatrix(t *testing.T, rows [][]float64) *Matrix {
	t.Helper()
	m, err := FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func vecClose(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestSolveIdentity(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 0}, {0, 1}})
	x, err := Solve(a, []float64{3, -7})
	if err != nil {
		t.Fatal(err)
	}
	if !vecClose(x, []float64{3, -7}, 1e-12) {
		t.Errorf("x = %v", x)
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x - y = 1 → x = 2, y = 1.
	a := mustMatrix(t, [][]float64{{2, 1}, {1, -1}})
	x, err := Solve(a, []float64{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !vecClose(x, []float64{2, 1}, 1e-12) {
		t.Errorf("x = %v, want [2 1]", x)
	}
}

func TestSolveRequiresPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	a := mustMatrix(t, [][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !vecClose(x, []float64{3, 2}, 1e-12) {
		t.Errorf("x = %v, want [3 2]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Errorf("got %v, want ErrSingular", err)
	}
}

func TestSolveShapeErrors(t *testing.T) {
	rect := mustMatrix(t, [][]float64{{1, 2, 3}, {4, 5, 6}})
	if _, err := Solve(rect, []float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Errorf("non-square: got %v, want ErrShape", err)
	}
	sq := mustMatrix(t, [][]float64{{1, 0}, {0, 1}})
	if _, err := Solve(sq, []float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("bad rhs: got %v, want ErrShape", err)
	}
}

func TestSolveDoesNotMutateInputs(t *testing.T) {
	a := mustMatrix(t, [][]float64{{2, 1}, {1, -1}})
	b := []float64{5, 1}
	before := a.Clone()
	if _, err := Solve(a, b); err != nil {
		t.Fatal(err)
	}
	if !vecClose(a.Data, before.Data, 0) {
		t.Error("Solve mutated the matrix")
	}
	if !vecClose(b, []float64{5, 1}, 0) {
		t.Error("Solve mutated the rhs")
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrShape) {
		t.Errorf("got %v, want ErrShape", err)
	}
}

func TestMulVec(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 2}, {3, 4}, {5, 6}})
	y, err := a.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !vecClose(y, []float64{3, 7, 11}, 1e-12) {
		t.Errorf("y = %v", y)
	}
	if _, err := a.MulVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("got %v, want ErrShape", err)
	}
}

func TestLeastSquaresExactSystem(t *testing.T) {
	// A square consistent system must be recovered exactly.
	a := mustMatrix(t, [][]float64{{2, 1}, {1, -1}})
	x, err := LeastSquares(a, []float64{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !vecClose(x, []float64{2, 1}, 1e-9) {
		t.Errorf("x = %v, want [2 1]", x)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = a + b·t to noisy-free samples of y = 3 + 2t plus one outlier
	// balanced by symmetry: the classic regression sanity check.
	rows := [][]float64{}
	rhs := []float64{}
	for _, tv := range []float64{0, 1, 2, 3, 4} {
		rows = append(rows, []float64{1, tv})
		rhs = append(rhs, 3+2*tv)
	}
	a := mustMatrix(t, rows)
	x, err := LeastSquares(a, rhs)
	if err != nil {
		t.Fatal(err)
	}
	if !vecClose(x, []float64{3, 2}, 1e-9) {
		t.Errorf("fit = %v, want [3 2]", x)
	}
}

func TestLeastSquaresUnderdetermined(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 2, 3}})
	if _, err := LeastSquares(a, []float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("got %v, want ErrShape", err)
	}
}

func TestResidual(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 0}, {0, 1}})
	r, err := Residual(a, []float64{1, 2}, []float64{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-3) > 1e-12 {
		t.Errorf("residual = %g, want 3", r)
	}
}

// Property: Solve recovers a random x from A·x for random well-conditioned A.
func TestQuickSolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.Float64()*2 - 1
		}
		// Diagonal dominance guarantees non-singularity.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.Float64()*10 - 5
		}
		b, err := a.MulVec(want)
		if err != nil {
			return false
		}
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		return vecClose(got, want, 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the least-squares residual never exceeds the residual of any
// random competitor (optimality of the fit in the 2-norm implies we can at
// least check a weaker max-norm-competitor property via the normal
// equations' 2-norm optimality).
func TestQuickLeastSquaresBeatsPerturbations(t *testing.T) {
	norm2 := func(a *Matrix, x, b []float64) float64 {
		ax, _ := a.MulVec(x)
		var s float64
		for i := range ax {
			d := ax[i] - b[i]
			s += d * d
		}
		return s
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		rowsN := n + 1 + rng.Intn(6)
		a := NewMatrix(rowsN, n)
		for i := range a.Data {
			a.Data[i] = rng.Float64()*2 - 1
		}
		for i := 0; i < n; i++ { // keep AᵀA well away from singular
			a.Set(i, i, a.At(i, i)+2)
		}
		b := make([]float64, rowsN)
		for i := range b {
			b[i] = rng.Float64()*10 - 5
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			return true // skip ill-conditioned draws
		}
		best := norm2(a, x, b)
		for trial := 0; trial < 5; trial++ {
			y := append([]float64(nil), x...)
			y[rng.Intn(n)] += rng.Float64()*0.2 - 0.1
			if norm2(a, y, b) < best-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
