// Package linsolve provides the small dense linear-algebra kernel the
// profiling machinery needs: solving square systems by Gaussian elimination
// with partial pivoting, and over-determined systems by linear least squares
// via the normal equations.
//
// The paper's parameter-estimation procedure (Section 3.1) "solves a system
// of linear equations to divide up the active time of each operator among
// the different nodes of the query plan"; these routines are that solver.
package linsolve

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when the system has no unique solution.
var ErrSingular = errors.New("linsolve: singular or ill-conditioned matrix")

// ErrShape is returned for dimension mismatches.
var ErrShape = errors.New("linsolve: dimension mismatch")

// pivotEps is the smallest pivot magnitude treated as non-zero.
const pivotEps = 1e-12

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, Data[r*Cols+c]
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linsolve: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices; all rows must share a length.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for r, row := range rows {
		if len(row) != cols {
			return nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrShape, r, len(row), cols)
		}
		copy(m.Data[r*cols:(r+1)*cols], row)
	}
	return m, nil
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec returns m·x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("%w: vector length %d, want %d", ErrShape, len(x), m.Cols)
	}
	out := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		var s float64
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c, v := range row {
			s += v * x[c]
		}
		out[r] = s
	}
	return out, nil
}

// Solve solves the square system A·x = b by Gaussian elimination with
// partial pivoting. A and b are not modified.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("%w: matrix is %dx%d, want square", ErrShape, a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("%w: rhs length %d, want %d", ErrShape, len(b), n)
	}
	// Work on an augmented copy.
	m := a.Clone()
	rhs := append([]float64(nil), b...)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot: largest magnitude in this column at or below row col.
		best, bestAbs := col, math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(m.At(r, col)); abs > bestAbs {
				best, bestAbs = r, abs
			}
		}
		if bestAbs < pivotEps {
			return nil, fmt.Errorf("%w: pivot %g at column %d", ErrSingular, bestAbs, col)
		}
		if best != col {
			swapRows(m, best, col)
			rhs[best], rhs[col] = rhs[col], rhs[best]
		}
		pv := m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) / pv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m.Set(r, c, m.At(r, c)-f*m.At(col, c))
			}
			rhs[r] -= f * rhs[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := rhs[r]
		for c := r + 1; c < n; c++ {
			s -= m.At(r, c) * x[c]
		}
		x[r] = s / m.At(r, r)
	}
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: non-finite solution component %d", ErrSingular, i)
		}
	}
	return x, nil
}

func swapRows(m *Matrix, i, j int) {
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for c := range ri {
		ri[c], rj[c] = rj[c], ri[c]
	}
}

// LeastSquares solves the over-determined system A·x ≈ b (Rows ≥ Cols) in
// the least-squares sense via the normal equations AᵀA·x = Aᵀb. The normal
// equations square the condition number, which is acceptable for the small,
// well-scaled systems profiling produces.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if len(b) != a.Rows {
		return nil, fmt.Errorf("%w: rhs length %d, want %d", ErrShape, len(b), a.Rows)
	}
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("%w: %d equations for %d unknowns", ErrShape, a.Rows, a.Cols)
	}
	n := a.Cols
	ata := NewMatrix(n, n)
	atb := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			var s float64
			for r := 0; r < a.Rows; r++ {
				s += a.At(r, i) * a.At(r, j)
			}
			ata.Set(i, j, s)
			ata.Set(j, i, s)
		}
		var s float64
		for r := 0; r < a.Rows; r++ {
			s += a.At(r, i) * b[r]
		}
		atb[i] = s
	}
	return Solve(ata, atb)
}

// Residual returns the max-norm of A·x − b.
func Residual(a *Matrix, x, b []float64) (float64, error) {
	ax, err := a.MulVec(x)
	if err != nil {
		return 0, err
	}
	if len(b) != len(ax) {
		return 0, fmt.Errorf("%w: rhs length %d, want %d", ErrShape, len(b), len(ax))
	}
	var worst float64
	for i := range ax {
		worst = math.Max(worst, math.Abs(ax[i]-b[i]))
	}
	return worst, nil
}
