package server_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/server"
	"repro/internal/tpch"
)

var (
	testDBOnce sync.Once
	testDB     *tpch.DB
)

func db(t *testing.T) *tpch.DB {
	t.Helper()
	testDBOnce.Do(func() {
		testDB = tpch.MustGenerate(tpch.Config{ScaleFactor: 0.002, Seed: 42})
	})
	return testDB
}

// startServer brings up a server on a random loopback port and registers
// its shutdown with the test.
func startServer(t *testing.T, cfg server.Config) (*server.Server, net.Addr) {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(s.Shutdown)
	return s, ln.Addr()
}

// wire is a test client: one connection, pipelined requests, responses
// collected by id.
type wire struct {
	t  *testing.T
	nc net.Conn
	sc *bufio.Scanner
}

func dialWire(t *testing.T, addr net.Addr) *wire {
	t.Helper()
	nc, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	sc := bufio.NewScanner(nc)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	return &wire{t: t, nc: nc, sc: sc}
}

func (w *wire) send(req server.Request) {
	w.t.Helper()
	line, err := json.Marshal(req)
	if err != nil {
		w.t.Fatal(err)
	}
	if _, err := w.nc.Write(append(line, '\n')); err != nil {
		w.t.Fatal(err)
	}
}

// recv reads n responses (any order) and returns them keyed by id.
func (w *wire) recv(n int) map[string]server.Response {
	w.t.Helper()
	out := make(map[string]server.Response, n)
	deadline := time.Now().Add(30 * time.Second)
	w.nc.SetReadDeadline(deadline)
	for len(out) < n && w.sc.Scan() {
		var resp server.Response
		if err := json.Unmarshal(w.sc.Bytes(), &resp); err != nil {
			w.t.Fatalf("bad response line %q: %v", w.sc.Text(), err)
		}
		out[resp.ID] = resp
	}
	if len(out) < n {
		w.t.Fatalf("got %d/%d responses (scan err: %v)", len(out), n, w.sc.Err())
	}
	return out
}

func subplanPolicy(t *testing.T, workers int) engine.SharePolicy {
	t.Helper()
	pol, _, err := policy.ByName("subplan", core.NewEnv(float64(workers)), workers)
	if err != nil {
		t.Fatal(err)
	}
	return policy.ForEngine(pol)
}

// The server must answer every registered family over the wire, correlate
// out-of-order pipelined responses by id, serve stats and ping ops, and
// reject unknown families without dropping the connection.
func TestServerServesFamilies(t *testing.T) {
	const workers = 2
	_, addr := startServer(t, server.Config{
		DB:     db(t),
		Engine: engine.Options{Workers: workers, FanOut: engine.FanOutShare},
		Policy: subplanPolicy(t, workers),
	})
	w := dialWire(t, addr)

	var n int
	for _, f := range tpch.Families() {
		for v := 0; v < 2; v++ {
			w.send(server.Request{ID: fmt.Sprintf("%s-%d", f.Name, v), Family: f.Name, Variant: v})
			n++
		}
	}
	resps := w.recv(n)
	for id, resp := range resps {
		if resp.Status != server.StatusOK {
			t.Fatalf("%s: status %q (err %q)", id, resp.Status, resp.Error)
		}
		if resp.Rows <= 0 {
			t.Fatalf("%s: %d rows", id, resp.Rows)
		}
		switch resp.Decision {
		case core.AdmitShared.String(), core.AdmitAlone.String(), core.AdmitQueue.String():
		default:
			t.Fatalf("%s: unexpected decision %q", id, resp.Decision)
		}
		if resp.LatencyMS <= 0 {
			t.Fatalf("%s: latency %vms", id, resp.LatencyMS)
		}
	}

	w.send(server.Request{ID: "stats", Op: "stats"})
	w.send(server.Request{ID: "ping", Op: "ping"})
	w.send(server.Request{ID: "bogus", Family: "Q99"})
	resps = w.recv(3)
	if st := resps["stats"]; st.Status != server.StatusOK || st.Stats == nil || st.Stats.Completed != int64(n) {
		t.Fatalf("stats response: %+v", st)
	}
	if resps["ping"].Status != server.StatusOK {
		t.Fatalf("ping response: %+v", resps["ping"])
	}
	if resps["bogus"].Status != server.StatusError {
		t.Fatalf("unknown family response: %+v", resps["bogus"])
	}
}

// A sharded server must answer every family over the wire through its
// cluster — scattering the scatterable plans — and its stats probe must
// carry one counter row per shard whose completions and builds sum to the
// cluster aggregate.
func TestServerSharded(t *testing.T) {
	const workers, shards = 2, 2
	s, addr := startServer(t, server.Config{
		DB:     db(t),
		Shards: shards,
		Engine: engine.Options{Workers: workers, FanOut: engine.FanOutShare},
		Policy: subplanPolicy(t, workers),
	})
	if s.Cluster() == nil || s.Cluster().NumShards() != shards {
		t.Fatal("sharded server did not build its cluster")
	}
	w := dialWire(t, addr)

	var n int
	for _, f := range tpch.Families() {
		for v := 0; v < 2; v++ {
			w.send(server.Request{ID: fmt.Sprintf("%s-%d", f.Name, v), Family: f.Name, Variant: v})
			n++
		}
	}
	for id, resp := range w.recv(n) {
		if resp.Status != server.StatusOK {
			t.Fatalf("%s: status %q (err %q)", id, resp.Status, resp.Error)
		}
		if resp.Rows <= 0 {
			t.Fatalf("%s: %d rows", id, resp.Rows)
		}
	}

	w.send(server.Request{ID: "stats", Op: "stats"})
	resp := w.recv(1)["stats"]
	if resp.Status != server.StatusOK || resp.Stats == nil {
		t.Fatalf("stats response: %+v", resp)
	}
	st := resp.Stats
	if st.Completed != int64(n) {
		t.Fatalf("completed %d, want %d", st.Completed, n)
	}
	if st.Scatters == 0 {
		t.Error("no plan scattered across the shards")
	}
	if int64(st.Scatters+st.Routed) != int64(n) {
		t.Errorf("scatters %d + routed %d != %d submissions", st.Scatters, st.Routed, n)
	}
	if len(st.Shards) != shards {
		t.Fatalf("%d shard rows, want %d", len(st.Shards), shards)
	}
	var completed, builds, compileHits, compileMisses int64
	for i, row := range st.Shards {
		if row.Shard != i {
			t.Errorf("shard row %d labeled %d", i, row.Shard)
		}
		completed += row.Completed
		builds += row.HashBuilds
		compileHits += row.CompileHits
		compileMisses += row.CompileMisses
	}
	// Every scattered plan completes once per shard, every routed plan once;
	// the per-shard rows must account for exactly that.
	if want := int64(shards)*st.Scatters + st.Routed; completed != want {
		t.Errorf("shard completions sum to %d, want %d", completed, want)
	}
	if builds != st.HashBuilds {
		t.Errorf("shard builds sum to %d, aggregate says %d", builds, st.HashBuilds)
	}
	if compileHits != st.CompileHits || compileMisses != st.CompileMisses {
		t.Errorf("shard compile rows (%d/%d) disagree with aggregate (%d/%d)",
			compileHits, compileMisses, st.CompileHits, st.CompileMisses)
	}
	// The bus deduplicated the replicated build sides: Q4 and Q13 ran twice
	// each, so cross-shard attaches must have happened.
	if st.BusJoins == 0 {
		t.Error("no cross-shard bus attaches for the replicated build sides")
	}
}

// With a window of one and a queue of one, a paused engine must hold the
// first query in flight, queue the second, and shed the third — then serve
// both admitted queries after the engine starts. Saturation never hangs a
// client: every request gets exactly one response.
func TestServerQueuesThenShedsAtSaturation(t *testing.T) {
	const workers = 2
	s, addr := startServer(t, server.Config{
		DB:         db(t),
		Engine:     engine.Options{Workers: workers, FanOut: engine.FanOutShare, StartPaused: true},
		Policy:     subplanPolicy(t, workers),
		Window:     1,
		QueueLimit: 1,
	})
	w := dialWire(t, addr)

	w.send(server.Request{ID: "q1", Family: "Q6"})
	w.send(server.Request{ID: "q2", Family: "Q6"})
	w.send(server.Request{ID: "q3", Family: "Q6"})
	// The shed decision is synchronous; the two admitted queries complete
	// only once the engine starts.
	shedResp := w.recv(1)
	if resp, ok := shedResp["q3"]; !ok || resp.Status != server.StatusShed {
		t.Fatalf("expected q3 shed first, got %+v", shedResp)
	}
	s.Engine().Start()
	resps := w.recv(2)
	if resps["q1"].Status != server.StatusOK {
		t.Fatalf("q1: %+v", resps["q1"])
	}
	q2 := resps["q2"]
	if q2.Status != server.StatusOK || q2.Decision != core.AdmitQueue.String() {
		t.Fatalf("q2 should have been served from the queue: %+v", q2)
	}
	if q2.QueueMS <= 0 {
		t.Fatalf("q2 queued with zero wait: %+v", q2)
	}
	st := s.Stats()
	if st.Completed != 2 || st.Shed != 1 {
		t.Fatalf("stats after saturation: %+v", st)
	}
	// Both admitted queries were the same family: the second submit must
	// have been served by the memoized compile artifact.
	if st.CompileHits < 1 || st.CompileMisses < 1 {
		t.Fatalf("repeated family should hit the compile cache: hits=%d misses=%d", st.CompileHits, st.CompileMisses)
	}
}

// Drain must shed the backlog immediately (decision "draining"), refuse new
// arrivals, finish the in-flight query, and then return.
func TestServerDrain(t *testing.T) {
	const workers = 2
	s, addr := startServer(t, server.Config{
		DB:     db(t),
		Engine: engine.Options{Workers: workers, FanOut: engine.FanOutShare, StartPaused: true},
		Policy: subplanPolicy(t, workers),
		Window: 1,
	})
	w := dialWire(t, addr)

	w.send(server.Request{ID: "inflight", Family: "Q1"})
	w.send(server.Request{ID: "queued", Family: "Q1"})
	time.Sleep(20 * time.Millisecond) // let both reach admission

	drained := make(chan struct{})
	go func() {
		s.Drain()
		close(drained)
	}()
	// The queued query is shed by the drain while the engine is still paused.
	resps := w.recv(1)
	if r := resps["queued"]; r.Status != server.StatusShed || r.Decision != server.DecisionDraining {
		t.Fatalf("queued query during drain: %+v", resps)
	}
	w.send(server.Request{ID: "late", Family: "Q1"})
	resps = w.recv(1)
	if r := resps["late"]; r.Status != server.StatusShed || r.Decision != server.DecisionDraining {
		t.Fatalf("late arrival during drain: %+v", r)
	}
	select {
	case <-drained:
		t.Fatal("Drain returned with a query still in flight")
	case <-time.After(20 * time.Millisecond):
	}
	s.Engine().Start()
	resps = w.recv(1)
	if resps["inflight"].Status != server.StatusOK {
		t.Fatalf("in-flight query after drain: %+v", resps["inflight"])
	}
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain did not return after the in-flight query completed")
	}
}

// Queued dispatch is round-robin across tenants: with the window closed, two
// tenants' backlogs must interleave rather than draining one tenant first.
func TestServerTenantRoundRobin(t *testing.T) {
	const workers = 2
	s, addr := startServer(t, server.Config{
		DB:         db(t),
		Engine:     engine.Options{Workers: workers, FanOut: engine.FanOutShare, StartPaused: true},
		Policy:     subplanPolicy(t, workers),
		Window:     1,
		QueueLimit: 16,
	})
	w := dialWire(t, addr)

	w.send(server.Request{ID: "seed", Family: "Q6", Tenant: "a"})
	time.Sleep(20 * time.Millisecond) // occupy the window before the backlog arrives
	for i := 0; i < 2; i++ {
		w.send(server.Request{ID: fmt.Sprintf("a%d", i), Family: "Q6", Tenant: "a"})
	}
	for i := 0; i < 2; i++ {
		w.send(server.Request{ID: fmt.Sprintf("b%d", i), Family: "Q6", Tenant: "b"})
	}
	time.Sleep(20 * time.Millisecond)
	s.Engine().Start()
	resps := w.recv(5)
	for id, resp := range resps {
		if resp.Status != server.StatusOK {
			t.Fatalf("%s: %+v", id, resp)
		}
	}
	// Window=1 serializes dispatch, so queue waits order the dispatches:
	// a0 before b0 is allowed in either order (rotation start is an
	// implementation detail), but each tenant's own FIFO order must hold.
	if resps["a0"].QueueMS > resps["a1"].QueueMS {
		t.Fatalf("tenant a FIFO violated: a0 waited %.2fms, a1 %.2fms", resps["a0"].QueueMS, resps["a1"].QueueMS)
	}
	if resps["b0"].QueueMS > resps["b1"].QueueMS {
		t.Fatalf("tenant b FIFO violated: b0 waited %.2fms, b1 %.2fms", resps["b0"].QueueMS, resps["b1"].QueueMS)
	}
}
