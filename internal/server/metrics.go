package server

import (
	"net/http"

	"repro/internal/obs"
	"repro/internal/storage"
)

// This file assembles the server's unified metrics registry: every engine
// (or every cluster shard, labelled shard="<i>"), the server's own
// admission-path counters, and the process-wide page pool, all exported in
// Prometheus text format by MetricsHandler — the payload behind cordobad's
// -metrics endpoint.

// Metrics returns the server's metrics registry, building it on first use.
// Registration is closure-based sampling, so the registry adds no cost to
// the paths it observes.
func (s *Server) Metrics() *obs.Registry {
	s.metricsOnce.Do(func() {
		r := obs.NewRegistry()
		if s.cluster != nil {
			s.cluster.RegisterMetrics(r, nil)
		} else {
			s.eng.RegisterMetrics(r, nil)
		}

		// Server front door: admission outcomes and backlog. The snapshot
		// closure keeps one lock acquisition per scrape of these.
		snap := func(pick func(Stats) float64) func() float64 {
			return func() float64 {
				s.mu.Lock()
				st := Stats{
					Completed: s.completed,
					Shed:      s.shed,
					Errors:    s.errored,
					Queued:    s.queued,
					Active:    s.inflight,
				}
				s.mu.Unlock()
				return pick(st)
			}
		}
		r.CounterFunc("cordoba_queries_total", "Queries answered ok.", nil,
			snap(func(st Stats) float64 { return float64(st.Completed) }))
		r.CounterFunc("cordoba_shed_total", "Submissions refused by admission control or drain.", nil,
			snap(func(st Stats) float64 { return float64(st.Shed) }))
		r.CounterFunc("cordoba_request_errors_total", "Error responses (bad requests, unknown families, engine failures).", nil,
			snap(func(st Stats) float64 { return float64(st.Errors) }))
		r.GaugeFunc("cordoba_queued", "Backlog across tenant FIFOs.", nil,
			snap(func(st Stats) float64 { return float64(st.Queued) }))
		r.GaugeFunc("cordoba_inflight", "Admitted queries not yet answered.", nil,
			snap(func(st Stats) float64 { return float64(st.Active) }))
		for _, d := range []string{"admit-shared", "admit-alone", "queue"} {
			d := d
			r.CounterFunc("cordoba_admissions_total", "Admitted queries by admission decision.",
				obs.Labels{"decision": d}, func() float64 {
					s.mu.Lock()
					defer s.mu.Unlock()
					return float64(s.admissions[d])
				})
		}
		if s.cluster != nil {
			r.CounterFunc("cordoba_cluster_steals_total", "Scheduler steals summed across shards.", nil, func() float64 {
				var n int64
				for i := 0; i < s.cluster.NumShards(); i++ {
					n += s.cluster.Shard(i).Steals()
				}
				return float64(n)
			})
		}

		// Process-wide page pool.
		r.CounterFunc("cordoba_pagepool_gets_total", "Column allocations requested from the page pool.", nil, func() float64 {
			g, _, _ := storage.PagePoolStats()
			return float64(g)
		})
		r.CounterFunc("cordoba_pagepool_hits_total", "Column allocations served by a pooled buffer.", nil, func() float64 {
			_, h, _ := storage.PagePoolStats()
			return float64(h)
		})
		r.CounterFunc("cordoba_pagepool_puts_total", "Column buffers returned to the page pool.", nil, func() float64 {
			_, _, p := storage.PagePoolStats()
			return float64(p)
		})
		s.metrics = r
	})
	return s.metrics
}

// MetricsHandler serves the registry in Prometheus text exposition format —
// mount it at /metrics next to the pprof mux.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.Metrics().WritePrometheus(w)
	})
}
