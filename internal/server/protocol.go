// Package server puts a network front door on the staged sharing engine:
// cordobad. Clients speak a line-delimited JSON protocol over TCP — one
// request object per line, one response object per line, correlated by id,
// with responses allowed to arrive out of order (submissions complete
// asynchronously, so a pipelined connection gets each result the moment the
// engine finishes it).
//
// Every query passes model-driven admission control (core.Admit) before it
// touches the engine: a beneficial share admits even past saturation, an
// unshared query admits only into headroom, a saturated arrival queues on
// its tenant's FIFO while the predicted wait fits the patience bound, and
// everything else is shed immediately — backpressure in the same currency
// as sharing, not a hard-coded limit.
package server

import "repro/internal/obs"

// Request is one client line. Op selects the kind: a query submission (the
// default), a stats probe, a trace dump, or a ping.
type Request struct {
	// ID correlates the response; the server echoes it verbatim.
	ID string `json:"id"`
	// Op is "query" (default when empty), "stats", "trace", or "ping".
	Op string `json:"op,omitempty"`
	// Tenant names the submitter's FIFO queue ("" = "default"). Queued
	// admission is FIFO per tenant, round-robin across tenants.
	Tenant string `json:"tenant,omitempty"`
	// Family is the named query family ("Q1", "Q4", "Q6", "Q13" — see
	// tpch.Families).
	Family string `json:"family,omitempty"`
	// Variant selects the family parameterization (reduced modulo the
	// family's variant count).
	Variant int `json:"variant,omitempty"`
	// Limit caps how many recent traces an op "trace" request returns per
	// engine (0 = a server default).
	Limit int `json:"limit,omitempty"`
}

// Response is one server line.
type Response struct {
	// ID echoes the request id.
	ID string `json:"id"`
	// Status is "ok" (result follows), "shed" (refused by admission control
	// or drain), or "error" (malformed request, unknown family, engine
	// failure).
	Status string `json:"status"`
	// Decision is the admission verdict that routed the query:
	// "admit-shared", "admit-alone", "queue" (admitted after waiting), or
	// "shed"; "draining" marks a refusal during shutdown.
	Decision string `json:"decision,omitempty"`
	// Rows is the result row count (status "ok").
	Rows int `json:"rows,omitempty"`
	// QueueMS is the wall-clock time the query waited in its tenant FIFO
	// before admission (0 for immediate admissions).
	QueueMS float64 `json:"queue_ms,omitempty"`
	// LatencyMS is the wall-clock time from arrival to completion, queueing
	// included (status "ok").
	LatencyMS float64 `json:"latency_ms,omitempty"`
	// Error describes a status "error" response.
	Error string `json:"error,omitempty"`
	// Stats answers an op "stats" request.
	Stats *Stats `json:"stats,omitempty"`
	// Traces answers an op "trace" request: recent query lifecycle traces,
	// oldest first (across every shard on a sharded server).
	Traces []obs.TraceRecord `json:"traces,omitempty"`
}

// Response status values.
const (
	StatusOK    = "ok"
	StatusShed  = "shed"
	StatusError = "error"
)

// DecisionDraining marks refusals issued during graceful shutdown.
const DecisionDraining = "draining"

// Stats is a point-in-time server snapshot.
type Stats struct {
	// Completed counts queries answered with status "ok".
	Completed int64 `json:"completed"`
	// Shed counts refusals (admission control plus drain).
	Shed int64 `json:"shed"`
	// Errors counts status "error" responses.
	Errors int64 `json:"errors"`
	// Active is the engine's in-flight query count.
	Active int `json:"active"`
	// Queued is the total backlog across tenant FIFOs.
	Queued int `json:"queued"`
	// Admissions breaks admitted queries down by decision label.
	Admissions map[string]int64 `json:"admissions,omitempty"`
	// HashBuilds/BuildJoins/InflightAttaches/PivotJoins mirror the engine's
	// sharing counters.
	HashBuilds       int64         `json:"hash_builds,omitempty"`
	BuildJoins       int64         `json:"build_joins,omitempty"`
	InflightAttaches int64         `json:"inflight_attaches,omitempty"`
	PivotJoins       map[int]int64 `json:"pivot_joins,omitempty"`
	// CacheHits/CacheMisses/CacheEvictions/CacheBytes mirror the keep-alive
	// cache counters (zero without a cache).
	CacheHits      int64 `json:"cache_hits,omitempty"`
	CacheMisses    int64 `json:"cache_misses,omitempty"`
	CacheEvictions int64 `json:"cache_evictions,omitempty"`
	CacheBytes     int64 `json:"cache_bytes,omitempty"`
	// CompileHits/CompileMisses mirror the engine's submit-path compile
	// cache: hits are submits served by a memoized compile artifact.
	CompileHits   int64 `json:"compile_hits,omitempty"`
	CompileMisses int64 `json:"compile_misses,omitempty"`
	// Steals/Parks mirror the scheduler's work-stealing balance: tasks taken
	// from a peer worker's queue, and idle-park episodes (summed across
	// shards on a sharded server).
	Steals int64 `json:"steals,omitempty"`
	Parks  int64 `json:"parks,omitempty"`
	// PoolGets/PoolHits/PoolPuts mirror the process-wide page pool: column
	// allocations requested, served from the pool, and returned to it.
	PoolGets int64 `json:"pool_gets,omitempty"`
	PoolHits int64 `json:"pool_hits,omitempty"`
	PoolPuts int64 `json:"pool_puts,omitempty"`
	// BusJoins counts cross-shard attaches through the artifact bus: queries
	// that probed a hash table built on a different shard (sharded servers
	// only).
	BusJoins int64 `json:"bus_joins,omitempty"`
	// Scatters/Routed count the cluster's routing decisions: plans executed
	// scatter-gather across every shard versus routed whole to one shard
	// (sharded servers only).
	Scatters int64 `json:"scatters,omitempty"`
	Routed   int64 `json:"routed,omitempty"`
	// Shards holds one counter row per engine shard when the server runs
	// sharded (Config.Shards > 1); the top-level engine counters then
	// aggregate the whole cluster.
	Shards []ShardStats `json:"shards,omitempty"`
}

// ShardStats is one engine shard's slice of a sharded server's counters.
// A scattered query contributes to Completed on every shard it ran a
// partial on; the server-level Completed counts it once.
type ShardStats struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// Active is this shard's in-flight query count.
	Active int `json:"active"`
	// Completed counts queries (whole or partial) this shard finished.
	Completed int64 `json:"completed"`
	// HashBuilds counts shared hash builds this shard executed; with the
	// cross-shard bus deduplicating, a replicated build subtree runs on
	// exactly one shard however many probed it.
	HashBuilds int64 `json:"hash_builds"`
	// BuildJoins counts build-share attaches on this shard (local and bus).
	BuildJoins int64 `json:"build_joins"`
	// BusJoins counts this shard's attaches to build states owned by OTHER
	// shards.
	BusJoins int64 `json:"bus_joins"`
	// CompileHits/CompileMisses mirror this shard's compile cache.
	CompileHits   int64 `json:"compile_hits"`
	CompileMisses int64 `json:"compile_misses"`
}
