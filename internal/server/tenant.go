package server

import (
	"time"

	"repro/internal/core"
	"repro/internal/engine"
)

// pending is one admitted-to-queue query: everything needed to submit it
// later (spec, policy inputs) plus everything needed to answer its client
// (response writer, arrival time, the benefit the shed policy ranks by).
type pending struct {
	req     Request
	conn    *conn
	spec    engine.QuerySpec
	cands   []core.Query
	arrived time.Time
	// plan is the precompiled scatter-gather form a sharded server routes
	// through; sharded marks it valid (spec then aliases plan.Template).
	plan    engine.ShardPlan
	sharded bool
	// benefit is the predicted post-admission completion rate of this query
	// (core.AdmitBenefit at enqueue time); when the global queue overflows,
	// the entry with the lowest benefit is shed first.
	benefit float64
}

// tenantQueue is one tenant's FIFO backlog. Dispatch is FIFO within a
// tenant and round-robin across tenants, so one chatty tenant cannot starve
// the rest out of the admission window.
type tenantQueue struct {
	name string
	fifo []*pending
}

func (t *tenantQueue) push(p *pending) { t.fifo = append(t.fifo, p) }

func (t *tenantQueue) pop() *pending {
	if len(t.fifo) == 0 {
		return nil
	}
	p := t.fifo[0]
	t.fifo[0] = nil
	t.fifo = t.fifo[1:]
	return p
}

// remove deletes the queue entry at index i, preserving FIFO order.
func (t *tenantQueue) remove(i int) *pending {
	p := t.fifo[i]
	t.fifo = append(t.fifo[:i], t.fifo[i+1:]...)
	return p
}

// tenantOf returns (creating on demand) the named tenant's queue. New
// tenants join the round-robin rotation at the end.
func (s *Server) tenantOf(name string) *tenantQueue {
	if name == "" {
		name = "default"
	}
	t, ok := s.tenants[name]
	if !ok {
		t = &tenantQueue{name: name}
		s.tenants[name] = t
		s.tenantOrder = append(s.tenantOrder, name)
	}
	return t
}

// nextQueuedLocked pops the next queued query round-robin across tenants,
// FIFO within each. Returns nil when every FIFO is empty.
func (s *Server) nextQueuedLocked() *pending {
	n := len(s.tenantOrder)
	for i := 0; i < n; i++ {
		t := s.tenants[s.tenantOrder[s.rr%n]]
		s.rr++
		if p := t.pop(); p != nil {
			s.queued--
			return p
		}
	}
	return nil
}

// shedLowestBenefitLocked resolves a full queue against a newcomer: rank
// every queued entry plus the newcomer by predicted benefit and shed the
// lowest (ties shed the newcomer — it has waited least). Returns the victim,
// which is the newcomer itself when everything queued outranks it; the
// caller answers the victim and, if it wasn't the newcomer, enqueues the
// newcomer in the freed slot.
func (s *Server) shedLowestBenefitLocked(newcomer *pending) *pending {
	type slot struct {
		t *tenantQueue
		i int
	}
	var slots []slot
	var benefits []float64
	for _, name := range s.tenantOrder {
		t := s.tenants[name]
		for i, p := range t.fifo {
			slots = append(slots, slot{t, i})
			benefits = append(benefits, p.benefit)
		}
	}
	// The newcomer goes last: core.ShedVictim breaks ties toward the later
	// index, i.e. toward the entry that has invested the least waiting.
	benefits = append(benefits, newcomer.benefit)
	v := core.ShedVictim(benefits)
	if v < 0 || v == len(slots) {
		return newcomer
	}
	victim := slots[v].t.remove(slots[v].i)
	s.queued--
	return victim
}
