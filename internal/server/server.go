package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// Config assembles a Server. DB and Engine.Workers are required; everything
// else has a serving-oriented default.
type Config struct {
	// DB is the generated TPC-H instance queries run against.
	DB *tpch.DB
	// PageRows overrides the page granule of family scans (0 = family
	// default).
	PageRows int
	// Shards partitions execution across this many engine shards (0 or 1 =
	// one engine, the classic topology). Sharded servers range-partition the
	// database once at startup, compile every family's scatter-gather plan,
	// and route submissions through an engine.Cluster: scatterable queries
	// fan out across the shards and merge at a gather stage, small ones
	// route whole round-robin, and the cross-shard artifact bus deduplicates
	// replicated build subtrees cluster-wide.
	Shards int
	// Engine configures the embedded engine (Workers required).
	Engine engine.Options
	// Policy is the sharing policy submissions run under (nil = never
	// share).
	Policy engine.SharePolicy
	// Env is the model environment admission prices against (zero value =
	// core.NewEnv(Workers)).
	Env core.Env
	// MaxDegree caps the parallelize arm in admission pricing (0 = Workers).
	MaxDegree int
	// Window bounds concurrently admitted queries (0 = 2×Workers). Sharing
	// admissions respect it too: the window is the hard ceiling the model's
	// verdicts operate under.
	Window int
	// QueueLimit bounds the total backlog across tenant FIFOs (0 =
	// 8×Window). Overflow sheds the lowest-benefit entry.
	QueueLimit int
	// Patience is the model-time response bound queued submitters tolerate
	// (0 = the model default, DefaultPatienceFactor × unloaded response).
	Patience float64
}

// Server is the cordobad front door: a TCP listener speaking the line-JSON
// protocol, admission control in front of one shared engine.
type Server struct {
	cfg       Config
	eng       *engine.Engine
	cluster   *engine.Cluster             // non-nil when Config.Shards > 1
	plans     map[string]engine.ShardPlan // "<family>/<variant>" → scatter-gather plan
	env       core.Env
	maxDegree int
	window    int
	quLimit   int

	mu          sync.Mutex
	tenants     map[string]*tenantQueue
	tenantOrder []string
	rr          int
	queued      int
	inflight    int
	draining    bool
	completed   int64
	shed        int64
	errored     int64
	admissions  map[string]int64

	lnMu      sync.Mutex
	listeners []net.Listener
	conns     map[*conn]struct{}
	closed    bool

	connWG sync.WaitGroup

	metricsOnce sync.Once
	metrics     *obs.Registry
}

// New builds a server and starts its engine. Close (or Shutdown) releases
// it.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, fmt.Errorf("server: Config.DB is required")
	}
	var (
		eng     *engine.Engine
		cluster *engine.Cluster
		plans   map[string]engine.ShardPlan
	)
	if cfg.Shards > 1 {
		sdb, err := tpch.NewShardedDB(cfg.DB, cfg.Shards)
		if err != nil {
			return nil, err
		}
		plans, err = tpch.CompileShardPlans(sdb, cfg.PageRows)
		if err != nil {
			return nil, err
		}
		cluster, err = engine.NewCluster(cfg.Shards, cfg.Engine)
		if err != nil {
			return nil, err
		}
		eng = cluster.Shard(0)
	} else {
		var err error
		eng, err = engine.New(cfg.Engine)
		if err != nil {
			return nil, err
		}
	}
	// Capacity-dependent defaults scale with the topology: a k-shard cluster
	// has k×Workers emulated processors, so the model environment and the
	// admission window both widen with it.
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	env := cfg.Env
	if env == (core.Env{}) {
		env = core.NewEnv(float64(cfg.Engine.Workers * shards))
	}
	maxDegree := cfg.MaxDegree
	if maxDegree <= 0 {
		maxDegree = cfg.Engine.Workers
	}
	window := cfg.Window
	if window <= 0 {
		window = 2 * cfg.Engine.Workers * shards
	}
	quLimit := cfg.QueueLimit
	if quLimit <= 0 {
		quLimit = 8 * window
	}
	return &Server{
		cfg:        cfg,
		eng:        eng,
		cluster:    cluster,
		plans:      plans,
		env:        env,
		maxDegree:  maxDegree,
		window:     window,
		quLimit:    quLimit,
		tenants:    make(map[string]*tenantQueue),
		admissions: make(map[string]int64),
		conns:      make(map[*conn]struct{}),
	}, nil
}

// Engine exposes the embedded engine (benchmarks warm its cache directly).
// On a sharded server it is shard 0.
func (s *Server) Engine() *engine.Engine { return s.eng }

// Cluster exposes the engine cluster of a sharded server (nil when
// Config.Shards <= 1).
func (s *Server) Cluster() *engine.Cluster { return s.cluster }

// Serve accepts connections on ln until the listener is closed (by Shutdown
// or externally). It blocks; run it in a goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	if s.closed {
		s.lnMu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	s.listeners = append(s.listeners, ln)
	s.lnMu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		c := &conn{nc: nc, w: bufio.NewWriter(nc)}
		s.lnMu.Lock()
		if s.closed {
			s.lnMu.Unlock()
			nc.Close()
			return net.ErrClosed
		}
		s.conns[c] = struct{}{}
		s.lnMu.Unlock()
		s.connWG.Add(1)
		go s.handleConn(c)
	}
}

// conn is one client connection: reads are single-threaded (the handler
// goroutine), writes are serialized by wmu because engine completion
// callbacks answer out of order.
type conn struct {
	nc  net.Conn
	wmu sync.Mutex
	w   *bufio.Writer
}

// write sends one response line. Errors are swallowed: a vanished client
// must not take the query (or the server) down with it.
func (c *conn) write(resp Response) {
	line, err := json.Marshal(resp)
	if err != nil {
		return
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.w.Write(line)
	c.w.WriteByte('\n')
	c.w.Flush()
}

func (s *Server) handleConn(c *conn) {
	defer s.connWG.Done()
	defer func() {
		s.lnMu.Lock()
		delete(s.conns, c)
		s.lnMu.Unlock()
		c.nc.Close()
	}()
	sc := bufio.NewScanner(c.nc)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var req Request
		if err := json.Unmarshal([]byte(line), &req); err != nil {
			s.countError()
			c.write(Response{ID: req.ID, Status: StatusError, Error: "bad request: " + err.Error()})
			continue
		}
		switch strings.ToLower(req.Op) {
		case "", "query":
			s.handleQuery(c, req)
		case "stats":
			st := s.Stats()
			c.write(Response{ID: req.ID, Status: StatusOK, Stats: &st})
		case "trace":
			c.write(Response{ID: req.ID, Status: StatusOK, Traces: s.Traces(req.Limit)})
		case "ping":
			c.write(Response{ID: req.ID, Status: StatusOK})
		default:
			s.countError()
			c.write(Response{ID: req.ID, Status: StatusError, Error: "unknown op: " + req.Op})
		}
	}
}

func (s *Server) countError() {
	s.mu.Lock()
	s.errored++
	s.mu.Unlock()
}

// candidates compiles the admission inputs of a spec: the pivot-candidate
// models ChoosePivoted takes (highest level first), falling back to the
// declared model.
func candidates(spec engine.QuerySpec) []core.Query {
	if len(spec.Pivots) == 0 {
		return []core.Query{spec.Model}
	}
	cands := make([]core.Query, len(spec.Pivots))
	for i, opt := range spec.Pivots {
		cands[i] = opt.Model
	}
	return cands
}

// groupProspect reports the sharing opportunity the admission model prices:
// the prospective group size (live members + the newcomer) and the
// remaining-coverage argument (1 for a joinable group, negative when no
// compatible group exists). On a sharded server the prospect spans the
// cluster: each shard is consulted for its shard-qualified scattered form
// and for the build-subtree share key, which canonicalizes identically on
// every shard when the build side is replicated — exactly the groups the
// cross-shard bus merges.
func (s *Server) groupProspect(p *pending) (m int, remaining float64) {
	var g int
	if s.cluster != nil && len(p.plan.Shards) > 0 {
		bk := engine.ShareKey(p.plan.Shards[0])
		for i, sh := range p.plan.Shards {
			e := s.cluster.Shard(i)
			if k := e.GroupSize(sh.Signature); k > g {
				g = k
			}
			if k := e.GroupSize(bk); k > g {
				g = k
			}
		}
	} else {
		g = s.eng.GroupSize(p.spec.Signature)
		if k := s.eng.GroupSize(engine.ShareKey(p.spec)); k > g {
			g = k
		}
	}
	if g >= 1 {
		return g + 1, 1
	}
	return 0, -1
}

// handleQuery runs one submission through admission control and either
// submits it, queues it, or sheds it. The response is written when the
// engine completes the query (ok), or immediately on a shed/error.
func (s *Server) handleQuery(c *conn, req Request) {
	fam, ok := tpch.FamilyByName(req.Family)
	if !ok {
		s.countError()
		c.write(Response{ID: req.ID, Status: StatusError,
			Error: fmt.Sprintf("unknown family %q (have %s)", req.Family, strings.Join(tpch.FamilyNames(), ", "))})
		return
	}
	p := &pending{req: req, conn: c, arrived: time.Now()}
	if s.plans != nil {
		// Sharded: route through the precompiled scatter-gather plan. The
		// admission candidates come from the template — the plan's single-
		// engine form — so sharded and unsharded servers price arrivals
		// identically.
		sf, ok := tpch.ShardFamilyByName(req.Family)
		if !ok {
			s.countError()
			c.write(Response{ID: req.ID, Status: StatusError,
				Error: fmt.Sprintf("family %q has no shard plan", req.Family)})
			return
		}
		v := req.Variant % sf.Variants
		if v < 0 {
			v += sf.Variants
		}
		p.plan = s.plans[fmt.Sprintf("%s/%d", sf.Name, v)]
		p.sharded = true
		p.spec = p.plan.Template
	} else {
		p.spec = fam.Spec(s.cfg.DB, s.cfg.PageRows, req.Variant)
	}
	p.cands = candidates(p.spec)

	s.mu.Lock()
	if s.draining {
		s.shed++
		s.mu.Unlock()
		c.write(Response{ID: req.ID, Status: StatusShed, Decision: DecisionDraining})
		return
	}
	m, remaining := s.groupProspect(p)
	load := core.AdmitLoad{Active: s.inflight, Queued: s.queued, Patience: s.cfg.Patience}
	adm := core.Admit(p.cands, m, s.maxDegree, remaining, load, s.env)
	p.benefit = adm.Rate

	switch adm.Decision {
	case core.AdmitShared, core.AdmitAlone:
		if s.inflight < s.window {
			s.submitLocked(p, adm.Decision.String(), 0)
			s.mu.Unlock()
			return
		}
		// The model admits but the window is full — the difference between
		// model saturation and the configured concurrency cap. Queue instead;
		// the window opening re-dispatches it first-come within its tenant.
		fallthrough
	case core.AdmitQueue:
		if s.queued >= s.quLimit {
			victim := s.shedLowestBenefitLocked(p)
			if victim == p {
				s.shed++
				s.mu.Unlock()
				c.write(Response{ID: req.ID, Status: StatusShed, Decision: core.AdmitShed.String()})
				return
			}
			s.shed++
			s.tenantOf(p.req.Tenant).push(p)
			s.queued++
			s.mu.Unlock()
			victim.conn.write(Response{ID: victim.req.ID, Status: StatusShed, Decision: core.AdmitShed.String()})
			return
		}
		s.tenantOf(p.req.Tenant).push(p)
		s.queued++
		s.mu.Unlock()
	default: // AdmitShed
		s.shed++
		s.mu.Unlock()
		c.write(Response{ID: req.ID, Status: StatusShed, Decision: core.AdmitShed.String()})
	}
}

// submitLocked hands an admitted query to the engine. Called with s.mu held
// (lock order is always s.mu → engine.mu; completion callbacks run with no
// engine locks held, so their re-entry into s.mu cannot deadlock).
func (s *Server) submitLocked(p *pending, decision string, waited time.Duration) {
	s.inflight++
	s.admissions[decision]++
	req, c := p.req, p.conn
	arrived := p.arrived
	done := func(res *storage.Batch, qerr error) {
		s.onComplete()
		if qerr != nil {
			s.countError()
			c.write(Response{ID: req.ID, Status: StatusError, Decision: decision, Error: qerr.Error()})
			return
		}
		s.mu.Lock()
		s.completed++
		s.mu.Unlock()
		c.write(Response{
			ID:        req.ID,
			Status:    StatusOK,
			Decision:  decision,
			Rows:      res.Len(),
			QueueMS:   float64(waited) / float64(time.Millisecond),
			LatencyMS: float64(time.Since(arrived)) / float64(time.Millisecond),
		})
	}
	var (
		h   *engine.Handle
		err error
	)
	if p.sharded {
		h, err = s.cluster.SubmitFn(p.plan, s.cfg.Policy, done)
	} else {
		h, err = s.eng.SubmitFn(p.spec, s.cfg.Policy, done)
	}
	if err == nil {
		// The admission verdict joins the lifecycle trace here — the trace is
		// born inside SubmitFn, so the admit span lands just after the
		// submit-side events rather than before them. Predicted carries the
		// admission model's benefit rate.
		h.Trace().EventPredicted("admit",
			fmt.Sprintf("%s waited=%s", decision, waited.Round(time.Microsecond)), p.benefit)
	}
	if err != nil {
		s.inflight--
		s.errored++
		// Answer off-lock: a stalled client write must not block admission.
		go c.write(Response{ID: req.ID, Status: StatusError, Decision: decision, Error: err.Error()})
	}
}

// onComplete retires one in-flight slot and pumps the queues into the freed
// window space. Runs on an engine worker with no engine locks held.
func (s *Server) onComplete() {
	s.mu.Lock()
	s.inflight--
	s.pumpLocked()
	s.mu.Unlock()
}

// pumpLocked dispatches queued queries while the window has room: round-robin
// across tenants, FIFO within each. Dispatched entries report decision
// "queue" — they were admitted by waiting, whatever regime the engine picks
// now.
func (s *Server) pumpLocked() {
	for !s.draining && s.queued > 0 && s.inflight < s.window {
		p := s.nextQueuedLocked()
		if p == nil {
			return
		}
		s.submitLocked(p, core.AdmitQueue.String(), time.Since(p.arrived))
	}
}

// Drain gracefully quiesces: stop admitting (new queries shed with decision
// "draining"), shed the backlog, and wait for every in-flight query to
// complete and answer. The engine survives Drain; Close releases it.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	var backlog []*pending
	for {
		p := s.nextQueuedLocked()
		if p == nil {
			break
		}
		backlog = append(backlog, p)
	}
	s.shed += int64(len(backlog))
	s.mu.Unlock()
	for _, p := range backlog {
		p.conn.write(Response{ID: p.req.ID, Status: StatusShed, Decision: DecisionDraining})
	}
	if s.cluster != nil {
		s.cluster.Drain()
	} else {
		s.eng.Drain()
	}
}

// Shutdown is the SIGTERM path: close listeners (stop accepting), drain,
// then close connections and the engine. Safe to call more than once.
func (s *Server) Shutdown() {
	s.lnMu.Lock()
	s.closed = true
	lns := s.listeners
	s.listeners = nil
	s.lnMu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	s.Drain()
	s.lnMu.Lock()
	for c := range s.conns {
		c.nc.Close()
	}
	s.lnMu.Unlock()
	s.connWG.Wait()
	if s.cluster != nil {
		s.cluster.Close()
	} else {
		s.eng.Close()
	}
}

// Stats snapshots the server and engine counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	adm := make(map[string]int64, len(s.admissions))
	for k, v := range s.admissions {
		adm[k] = v
	}
	st := Stats{
		Completed:  s.completed,
		Shed:       s.shed,
		Errors:     s.errored,
		Queued:     s.queued,
		Admissions: adm,
	}
	s.mu.Unlock()
	st.PoolGets, st.PoolHits, st.PoolPuts = storage.PagePoolStats()
	if s.cluster != nil {
		// Sharded: the engine counters aggregate the cluster, and Shards
		// carries one row per engine so a stats probe sees where the work
		// actually landed.
		st.Scatters = s.cluster.Scatters()
		st.Routed = s.cluster.Routed()
		st.HashBuilds = s.cluster.HashBuilds()
		st.BuildJoins = s.cluster.BuildJoins()
		st.BusJoins = s.cluster.BusJoins()
		st.CompileHits, st.CompileMisses = s.cluster.CompileHits(), s.cluster.CompileMisses()
		pj := make(map[int]int64)
		for i := 0; i < s.cluster.NumShards(); i++ {
			e := s.cluster.Shard(i)
			st.Active += e.Active()
			st.InflightAttaches += e.InflightAttaches()
			st.Steals += e.Steals()
			st.Parks += e.Parks()
			for lvl, n := range e.PivotLevelJoins() {
				pj[lvl] += n
			}
			st.Shards = append(st.Shards, ShardStats{
				Shard:         i,
				Active:        e.Active(),
				Completed:     e.Completed(),
				HashBuilds:    e.HashBuilds(),
				BuildJoins:    e.BuildJoins(),
				BusJoins:      e.BusJoins(),
				CompileHits:   e.CompileHits(),
				CompileMisses: e.CompileMisses(),
			})
		}
		if len(pj) > 0 {
			st.PivotJoins = pj
		}
		cs := s.cluster.CacheStats()
		st.CacheHits, st.CacheMisses, st.CacheEvictions, st.CacheBytes = cs.Hits, cs.Misses, cs.Evictions, cs.Bytes
		return st
	}
	st.Active = s.eng.Active()
	st.HashBuilds = s.eng.HashBuilds()
	st.BuildJoins = s.eng.BuildJoins()
	st.InflightAttaches = s.eng.InflightAttaches()
	if pj := s.eng.PivotLevelJoins(); len(pj) > 0 {
		st.PivotJoins = pj
	}
	cs := s.eng.CacheStats()
	st.CacheHits, st.CacheMisses, st.CacheEvictions, st.CacheBytes = cs.Hits, cs.Misses, cs.Evictions, cs.Bytes
	st.CompileHits, st.CompileMisses = s.eng.CompileHits(), s.eng.CompileMisses()
	st.Steals, st.Parks = s.eng.Steals(), s.eng.Parks()
	return st
}

// Traces snapshots up to limit recent query lifecycle traces per engine
// (oldest first; limit <= 0 applies a default of 32). On a sharded server
// every shard's ring is dumped in shard order — a scattered query shows up
// once as the coordinator's scatter/gather trace (on shard 0's ring) and
// once per shard for its partial forms.
func (s *Server) Traces(limit int) []obs.TraceRecord {
	if limit <= 0 {
		limit = 32
	}
	if s.cluster == nil {
		return s.eng.Tracer().Recent(limit)
	}
	var out []obs.TraceRecord
	for i := 0; i < s.cluster.NumShards(); i++ {
		out = append(out, s.cluster.Shard(i).Tracer().Recent(limit)...)
	}
	return out
}
