package server_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/server"
)

// hasKind reports whether a trace carries at least one event of the kind.
func hasKind(rec obs.TraceRecord, kind string) bool {
	for _, e := range rec.Events {
		if e.Kind == kind {
			return true
		}
	}
	return false
}

// The trace wire op must return the complete lifecycle span chain — submit,
// compile verdict, pivot choice with the model's predicted benefit, the
// admission verdict, and a completion event pairing predicted with measured
// benefit — for queries that just ran.
func TestServerTraceOp(t *testing.T) {
	const workers = 2
	_, addr := startServer(t, server.Config{
		DB:     db(t),
		Engine: engine.Options{Workers: workers, FanOut: engine.FanOutShare},
		Policy: subplanPolicy(t, workers),
	})
	w := dialWire(t, addr)

	// One query run to completion alone first: the measured-benefit audit
	// converts u′ into an expected wall time via a calibration learned from
	// alone-like runs, so without a solo completion no trace would carry a
	// measured value. Q4 cannot parallelize (its plan has a join), so on an
	// idle engine it anchors a group that never grows — exactly an
	// alone-like run — where an idle Q1 would run as partitioned clones
	// (kind "parallel") and never feed the calibration.
	w.send(server.Request{ID: "warm", Family: "Q4", Variant: 0})
	if resp := w.recv(1)["warm"]; resp.Status != server.StatusOK {
		t.Fatalf("warm query: %+v", resp)
	}

	const n = 6
	for i := 0; i < n; i++ {
		w.send(server.Request{ID: fmt.Sprintf("q%d", i), Family: "Q1", Variant: 0})
	}
	for id, resp := range w.recv(n) {
		if resp.Status != server.StatusOK {
			t.Fatalf("%s: status %q (err %q)", id, resp.Status, resp.Error)
		}
	}

	w.send(server.Request{ID: "tr", Op: "trace", Limit: 16})
	resp := w.recv(1)["tr"]
	if resp.Status != server.StatusOK {
		t.Fatalf("trace op: %+v", resp)
	}
	if len(resp.Traces) < n {
		t.Fatalf("trace op returned %d traces, want >= %d", len(resp.Traces), n)
	}

	var sawMeasured bool
	for _, rec := range resp.Traces {
		if rec.Signature == "" || rec.ID == 0 {
			t.Fatalf("trace missing identity: %+v", rec)
		}
		for _, kind := range []string{"submit", "compile", "pivot", "admit", "complete"} {
			if !hasKind(rec, kind) {
				t.Fatalf("trace %d (%s) lacks %q span: %+v", rec.ID, rec.Signature, kind, rec.Events)
			}
		}
		if rec.Quanta <= 0 {
			t.Fatalf("trace %d: %d quanta, want > 0", rec.ID, rec.Quanta)
		}
		for _, e := range rec.Events {
			if e.Kind == "complete" {
				if e.Predicted <= 0 {
					t.Fatalf("trace %d: complete event without predicted benefit: %+v", rec.ID, e)
				}
				if e.Measured > 0 {
					sawMeasured = true
				}
			}
		}
	}
	if !sawMeasured {
		t.Fatal("no trace paired a measured benefit with its prediction")
	}
}

// The unified registry must span engine, scheduler, cache, and server
// counter families (>= 20 series) and report the completed-query counter the
// smoke test scrapes.
func TestServerMetricsExposition(t *testing.T) {
	const workers = 2
	s, addr := startServer(t, server.Config{
		DB:     db(t),
		Engine: engine.Options{Workers: workers, FanOut: engine.FanOutShare},
		Policy: subplanPolicy(t, workers),
	})
	w := dialWire(t, addr)
	w.send(server.Request{ID: "q", Family: "Q6", Variant: 0})
	if resp := w.recv(1)["q"]; resp.Status != server.StatusOK {
		t.Fatalf("query: %+v", resp)
	}

	var b strings.Builder
	if err := s.Metrics().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	series := 0
	for _, line := range strings.Split(out, "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			series++
		}
	}
	if series < 20 {
		t.Fatalf("exposition has %d series, want >= 20:\n%s", series, out)
	}
	for _, fam := range []string{
		"cordoba_queries_total 1",
		"cordoba_engine_completed_total",
		"cordoba_sched_steals_total",
		"cordoba_cache_hits_total",
		"cordoba_pagepool_gets_total",
	} {
		if !strings.Contains(out, fam) {
			t.Fatalf("exposition missing %q:\n%s", fam, out)
		}
	}

	// The sharded topology registers every shard under a shard label.
	sh, _ := startServer(t, server.Config{
		DB:     db(t),
		Shards: 2,
		Engine: engine.Options{Workers: workers, FanOut: engine.FanOutShare},
		Policy: subplanPolicy(t, workers),
	})
	b.Reset()
	if err := sh.Metrics().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`shard="0"`, `shard="1"`, "cordoba_cluster_scatters_total"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("sharded exposition missing %q", want)
		}
	}
}
