package policy

import (
	"testing"

	"repro/internal/core"
	"repro/internal/tpch"
)

func TestStaticPolicies(t *testing.T) {
	q := tpch.Model(tpch.Q6)
	if !(Always{}).ShouldJoin(q, 40) {
		t.Error("Always refused")
	}
	if (Never{}).ShouldJoin(q, 2) {
		t.Error("Never agreed")
	}
}

func TestModelGuidedFollowsModel(t *testing.T) {
	q6 := tpch.Model(tpch.Q6)
	q4 := tpch.Model(tpch.Q4)
	one := ModelGuided{Env: core.NewEnv(1)}
	many := ModelGuided{Env: core.NewEnv(32)}
	// Q6 on 1 cpu: share; on 32: don't.
	if !one.ShouldJoin(q6, 8) {
		t.Error("Q6 x8 on 1 cpu refused")
	}
	if many.ShouldJoin(q6, 8) {
		t.Error("Q6 x8 on 32 cpu accepted")
	}
	// Q4: share under load everywhere. (At light load on 32 cpus neither
	// configuration saturates, Z = 1 exactly, and the paper's strict rule
	// "share iff Z > 1" says run independently.)
	if !one.ShouldJoin(q4, 8) || !many.ShouldJoin(q4, 48) {
		t.Error("Q4 sharing refused")
	}
	if many.ShouldJoin(q6, 8) == core.ShouldShare(q6, 8, core.NewEnv(32)) == false {
		t.Error("policy diverges from core decision")
	}
}

func TestName(t *testing.T) {
	if Name(Always{}) != "always" || Name(Never{}) != "never" || Name(nil) != "never" {
		t.Error("static names wrong")
	}
	if Name(ModelGuided{}) != "model" {
		t.Error("model name wrong")
	}
	if Name(customPolicy{}) != "custom" {
		t.Error("custom name wrong")
	}
}

type customPolicy struct{}

func (customPolicy) ShouldJoin(core.Query, int) bool { return false }

func TestForEngine(t *testing.T) {
	if ForEngine(Never{}) != nil {
		t.Error("Never did not map to nil")
	}
	if ForEngine(Always{}) == nil {
		t.Error("Always mapped to nil")
	}
}
