package policy

import (
	"testing"

	"repro/internal/core"
	"repro/internal/tpch"
)

func TestStaticPolicies(t *testing.T) {
	q := tpch.Model(tpch.Q6)
	if !(Always{}).ShouldJoin(q, 40) {
		t.Error("Always refused")
	}
	if (Never{}).ShouldJoin(q, 2) {
		t.Error("Never agreed")
	}
}

func TestModelGuidedFollowsModel(t *testing.T) {
	q6 := tpch.Model(tpch.Q6)
	q4 := tpch.Model(tpch.Q4)
	one := ModelGuided{Env: core.NewEnv(1)}
	many := ModelGuided{Env: core.NewEnv(32)}
	// Q6 on 1 cpu: share; on 32: don't.
	if !one.ShouldJoin(q6, 8) {
		t.Error("Q6 x8 on 1 cpu refused")
	}
	if many.ShouldJoin(q6, 8) {
		t.Error("Q6 x8 on 32 cpu accepted")
	}
	// Q4: share under load everywhere. (At light load on 32 cpus neither
	// configuration saturates, Z = 1 exactly, and the paper's strict rule
	// "share iff Z > 1" says run independently.)
	if !one.ShouldJoin(q4, 8) || !many.ShouldJoin(q4, 48) {
		t.Error("Q4 sharing refused")
	}
	if many.ShouldJoin(q6, 8) == core.ShouldShare(q6, 8, core.NewEnv(32)) == false {
		t.Error("policy diverges from core decision")
	}
}

func TestStaticAttachPolicies(t *testing.T) {
	q := tpch.Model(tpch.Q6)
	if !(Always{}).ShouldAttach(q, 4, 0.5) {
		t.Error("Always refused attach with half the scan remaining")
	}
	if (Always{}).ShouldAttach(q, 4, 0) {
		t.Error("Always attached to an exhausted scan")
	}
	if (Never{}).ShouldAttach(q, 2, 1) {
		t.Error("Never attached")
	}
}

// TestModelGuidedAttachCoverage verifies the attach-time admission test:
// with the full scan remaining it coincides with ShouldJoin, and as the
// remaining coverage shrinks the wrap-around re-scan cost must eventually
// make attachment unprofitable.
func TestModelGuidedAttachCoverage(t *testing.T) {
	// A scan-pivot query on hardware with a little headroom: sharing two
	// copies pays when the whole scan is shared but not when most of the
	// pivot's work must be repeated on the wrap-around lap.
	q := core.Query{Name: "synthetic", PivotW: 10, PivotS: 2, Above: []float64{1}}
	p := ModelGuided{Env: core.NewEnv(1.5)}
	if p.ShouldAttach(q, 2, 1.0) != p.ShouldJoin(q, 2) {
		t.Error("full-coverage attach decision diverges from ShouldJoin")
	}
	if !p.ShouldAttach(q, 2, 1.0) {
		t.Error("profitable full-coverage attach refused")
	}
	if p.ShouldAttach(q, 2, 0.1) {
		t.Error("attach accepted with 10% coverage: wrap-around re-scan should make it unprofitable")
	}
	if p.ShouldAttach(q, 2, 0) {
		t.Error("attach accepted with no scan remaining")
	}
	// Monotonicity: once the remaining fraction is too small to pay off,
	// shrinking it further never turns the decision back on.
	refusedAt := -1.0
	for f := 1.0; f >= 0; f -= 0.05 {
		ok := p.ShouldAttach(q, 2, f)
		if ok && refusedAt >= 0 {
			t.Fatalf("attach re-admitted at remaining=%.2f after refusal at %.2f", f, refusedAt)
		}
		if !ok && refusedAt < 0 {
			refusedAt = f
		}
	}
	if refusedAt < 0 {
		t.Error("attach never refused across the coverage sweep")
	}
}

func TestName(t *testing.T) {
	if Name(Always{}) != "always" || Name(Never{}) != "never" || Name(nil) != "never" {
		t.Error("static names wrong")
	}
	if Name(ModelGuided{}) != "model" {
		t.Error("model name wrong")
	}
	if Name(customPolicy{}) != "custom" {
		t.Error("custom name wrong")
	}
}

type customPolicy struct{}

func (customPolicy) ShouldJoin(core.Query, int) bool { return false }

func TestForEngine(t *testing.T) {
	if ForEngine(Never{}) != nil {
		t.Error("Never did not map to nil")
	}
	if ForEngine(Always{}) == nil {
		t.Error("Always mapped to nil")
	}
}
