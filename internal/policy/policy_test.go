package policy

import (
	"testing"

	"repro/internal/core"
	"repro/internal/tpch"
)

func TestStaticPolicies(t *testing.T) {
	q := tpch.Model(tpch.Q6)
	if !(Always{}).ShouldJoin(q, 40) {
		t.Error("Always refused")
	}
	if (Never{}).ShouldJoin(q, 2) {
		t.Error("Never agreed")
	}
}

func TestModelGuidedFollowsModel(t *testing.T) {
	q6 := tpch.Model(tpch.Q6)
	q4 := tpch.Model(tpch.Q4)
	one := ModelGuided{Env: core.NewEnv(1)}
	many := ModelGuided{Env: core.NewEnv(32)}
	// Q6 on 1 cpu: share; on 32: don't.
	if !one.ShouldJoin(q6, 8) {
		t.Error("Q6 x8 on 1 cpu refused")
	}
	if many.ShouldJoin(q6, 8) {
		t.Error("Q6 x8 on 32 cpu accepted")
	}
	// Q4: share under load everywhere. (At light load on 32 cpus neither
	// configuration saturates, Z = 1 exactly, and the paper's strict rule
	// "share iff Z > 1" says run independently.)
	if !one.ShouldJoin(q4, 8) || !many.ShouldJoin(q4, 48) {
		t.Error("Q4 sharing refused")
	}
	if many.ShouldJoin(q6, 8) == core.ShouldShare(q6, 8, core.NewEnv(32)) == false {
		t.Error("policy diverges from core decision")
	}
}

func TestStaticAttachPolicies(t *testing.T) {
	q := tpch.Model(tpch.Q6)
	if !(Always{}).ShouldAttach(q, 4, 0.5) {
		t.Error("Always refused attach with half the scan remaining")
	}
	if (Always{}).ShouldAttach(q, 4, 0) {
		t.Error("Always attached to an exhausted scan")
	}
	if (Never{}).ShouldAttach(q, 2, 1) {
		t.Error("Never attached")
	}
}

// TestModelGuidedAttachCoverage verifies the attach-time admission test:
// with the full scan remaining it coincides with ShouldJoin, and as the
// remaining coverage shrinks the wrap-around re-scan cost must eventually
// make attachment unprofitable.
func TestModelGuidedAttachCoverage(t *testing.T) {
	// A scan-pivot query on hardware with a little headroom: sharing two
	// copies pays when the whole scan is shared but not when most of the
	// pivot's work must be repeated on the wrap-around lap.
	q := core.Query{Name: "synthetic", PivotW: 10, PivotS: 2, Above: []float64{1}}
	p := ModelGuided{Env: core.NewEnv(1.5)}
	if p.ShouldAttach(q, 2, 1.0) != p.ShouldJoin(q, 2) {
		t.Error("full-coverage attach decision diverges from ShouldJoin")
	}
	if !p.ShouldAttach(q, 2, 1.0) {
		t.Error("profitable full-coverage attach refused")
	}
	if p.ShouldAttach(q, 2, 0.1) {
		t.Error("attach accepted with 10% coverage: wrap-around re-scan should make it unprofitable")
	}
	if p.ShouldAttach(q, 2, 0) {
		t.Error("attach accepted with no scan remaining")
	}
	// Monotonicity: once the remaining fraction is too small to pay off,
	// shrinking it further never turns the decision back on.
	refusedAt := -1.0
	for f := 1.0; f >= 0; f -= 0.05 {
		ok := p.ShouldAttach(q, 2, f)
		if ok && refusedAt >= 0 {
			t.Fatalf("attach re-admitted at remaining=%.2f after refusal at %.2f", f, refusedAt)
		}
		if !ok && refusedAt < 0 {
			refusedAt = f
		}
	}
	if refusedAt < 0 {
		t.Error("attach never refused across the coverage sweep")
	}
}

func TestName(t *testing.T) {
	if Name(Always{}) != "always" || Name(Never{}) != "never" || Name(nil) != "never" {
		t.Error("static names wrong")
	}
	if Name(ModelGuided{}) != "model" {
		t.Error("model name wrong")
	}
	if Name(ModelGuided{MaxDegree: 4, PivotSelect: true}) != "subplan" {
		t.Error("pivot-selecting hybrid not named subplan")
	}
	if Name(ModelGuided{MaxDegree: 4}) != "hybrid" {
		t.Error("hybrid name wrong")
	}
	if Name(Parallel{Clones: 4}) != "parallel" {
		t.Error("parallel name wrong")
	}
	if Name(customPolicy{}) != "custom" {
		t.Error("custom name wrong")
	}
}

// The fixed parallel policy never shares and always reports its degree.
func TestParallelPolicy(t *testing.T) {
	p := Parallel{Clones: 4}
	q := core.Q6Paper()
	if p.ShouldJoin(q, 2) {
		t.Error("parallel policy agreed to share")
	}
	if p.ShouldAttach(q, 2, 1.0) {
		t.Error("parallel policy agreed to attach")
	}
	if got := p.Degree(q, 1); got != 4 {
		t.Errorf("Degree = %d, want 4", got)
	}
}

// Hybrid ModelGuided follows core.Choose on both arms: at low load on a
// multicore it parallelizes a Q4-like query (heavy work, tiny s) rather
// than share or run alone; at high load it shares and reports degree 1.
func TestModelGuidedHybrid(t *testing.T) {
	q := core.Query{
		Name:   "q4-like",
		Below:  []float64{12, 8},
		PivotW: 10,
		PivotS: 0.01,
		Above:  []float64{0.4},
	}
	p := ModelGuided{Env: core.NewEnv(4), MaxDegree: 4}
	if d := p.Degree(q, 1); d < 2 {
		t.Errorf("idle machine: Degree = %d, want ≥ 2", d)
	}
	if p.ShouldJoin(q, 1) {
		t.Error("joined a group of one")
	}
	if !p.ShouldJoin(q, 8) {
		t.Error("refused to share at high load")
	}
	if d := p.Degree(q, 8); d != 1 {
		t.Errorf("saturated machine: Degree = %d, want 1", d)
	}
	// MaxDegree ≤ 1 restores the pure share-vs-alone policy.
	serial := ModelGuided{Env: core.NewEnv(4)}
	if d := serial.Degree(q, 1); d != 1 {
		t.Errorf("degree without parallel arm = %d, want 1", d)
	}
}

// Load-aware admission: the hybrid judges the share arm at the system load,
// so a group of two is joined when eight queries are in flight (the group
// it anchors will grow), while an idle machine still refuses.
func TestModelGuidedLoadAwareJoin(t *testing.T) {
	// A scan-pivot query with cheap fan-out: at m=2 on four contexts the
	// model prefers splitting into clones, but at load 8 sharing wins.
	q := core.Query{
		Name:   "cheap-fanout-scan",
		PivotW: 10,
		PivotS: 0.3,
		Above:  []float64{0.5},
	}
	p := ModelGuided{Env: core.NewEnv(4), MaxDegree: 4}
	if p.ShouldJoinUnderLoad(q, 2, 2, true) {
		t.Error("joined at m=2 with no extra load (model prefers parallel there)")
	}
	if !p.ShouldJoinUnderLoad(q, 2, 8, true) {
		t.Error("refused a group of 2 under load 8")
	}
	// When the plan cannot run as clones the parallelize arm must not veto
	// sharing: share competes against run-alone only, so the decision under
	// load 8 stays "share" regardless of feasibility.
	if !p.ShouldJoinUnderLoad(q, 2, 8, false) {
		t.Error("infeasible parallel arm vetoed a share that beats run-alone")
	}
	// Without the parallel arm, load is ignored (pure Section 8 test).
	serial := ModelGuided{Env: core.NewEnv(4)}
	if serial.ShouldJoinUnderLoad(q, 2, 8, true) != serial.ShouldJoin(q, 2) {
		t.Error("plain model policy changed behavior under load")
	}
}

// Pivot selection: off by default (keep the declared pivot), on it picks
// the candidate level with the fastest predicted shared rate — the
// aggregate level when sharing there eliminates nearly all work.
func TestModelGuidedChoosePivot(t *testing.T) {
	aggLevel := core.Query{Name: "q@agg", Below: []float64{19}, PivotW: 3.3, PivotS: 0.2}
	scanLevel := core.Query{Name: "q@scan", PivotW: 10, PivotS: 9, Above: []float64{3.5}}
	cands := []core.Query{aggLevel, scanLevel}
	off := ModelGuided{Env: core.NewEnv(2)}
	if got := off.ChoosePivot(cands, 4); got != -1 {
		t.Errorf("PivotSelect off: ChoosePivot = %d, want -1", got)
	}
	on := ModelGuided{Env: core.NewEnv(2), PivotSelect: true}
	if got := on.ChoosePivot(cands, 4); got != 0 {
		t.Errorf("ChoosePivot = %d, want 0 (agg level)", got)
	}
	// Even a lone arrival anchors where a prospective joiner would profit.
	if got := on.ChoosePivot(cands, 1); got != 0 {
		t.Errorf("ChoosePivot under load 1 = %d, want 0", got)
	}
}

type customPolicy struct{}

func (customPolicy) ShouldJoin(core.Query, int) bool { return false }

func TestForEngine(t *testing.T) {
	if ForEngine(Never{}) != nil {
		t.Error("Never did not map to nil")
	}
	if ForEngine(Always{}) == nil {
		t.Error("Always mapped to nil")
	}
}
