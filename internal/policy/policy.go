// Package policy implements the three work-sharing policies Section 8
// compares: always-share, never-share, and the model-guided policy that
// evaluates the analytical model at runtime and admits a query to a sharing
// group only when the model predicts a benefit.
package policy

import (
	"repro/internal/core"
	"repro/internal/engine"
)

// Always applies work sharing whenever possible.
type Always struct{}

// ShouldJoin implements engine.SharePolicy: always yes.
func (Always) ShouldJoin(core.Query, int) bool { return true }

// ShouldAttach implements engine.AttachPolicy: attach whenever any of the
// scan is still ahead of the cursor.
func (Always) ShouldAttach(_ core.Query, _ int, remaining float64) bool { return remaining > 0 }

// Never executes every query independently.
type Never struct{}

// ShouldJoin implements engine.SharePolicy: always no.
func (Never) ShouldJoin(core.Query, int) bool { return false }

// ShouldAttach implements engine.AttachPolicy: never attach.
func (Never) ShouldAttach(core.Query, int, float64) bool { return false }

// ModelGuided admits a query to a group of prospective size m only when the
// model predicts shared execution of m copies beats independent execution on
// this hardware: Z(m, n) > 1 (Section 8.1's admission test; if no group
// permits sharing the engine starts the query independently, where it may be
// joined later).
type ModelGuided struct {
	// Env is the hardware the model evaluates against.
	Env core.Env
}

// ShouldJoin implements engine.SharePolicy.
func (p ModelGuided) ShouldJoin(q core.Query, m int) bool {
	return core.ShouldShare(q, m, p.Env)
}

// ShouldAttach implements engine.AttachPolicy, extending the Section 8
// admission test to mid-flight attachment. A joiner that attaches with
// fraction f of the scan remaining rides the shared cursor for only that
// fraction; the missed prefix is re-scanned on the wrap-around lap, making
// the pivot re-execute (1-f) of its per-progress work w for the group's
// benefit of one extra sharer. Amortized over the m consumers, that inflates
// the model's per-consumer cost s to s + (1-f)·w/m (equivalently, inflates
// the group pivot total p_φ(m) by (1-f)·w), and the query attaches only
// when shared execution with the inflated coefficient still beats
// independent execution of the unmodified queries: x_shared(adj) >
// x_unshared(q) — the attach-time analogue of "share iff Z > 1".
func (p ModelGuided) ShouldAttach(q core.Query, m int, remaining float64) bool {
	if remaining <= 0 || m < 1 {
		return false
	}
	if remaining > 1 {
		remaining = 1
	}
	adj := q
	adj.PivotS = q.PivotS + (1-remaining)*q.PivotW/float64(m)
	return core.SharedX(adj, m, p.Env) > core.UnsharedX(q, m, p.Env)
}

// Every built-in policy supports both submission-time and in-flight
// admission.
var (
	_ engine.AttachPolicy = Always{}
	_ engine.AttachPolicy = Never{}
	_ engine.AttachPolicy = ModelGuided{}
)

// Name returns a short policy label for reports.
func Name(p engine.SharePolicy) string {
	switch p.(type) {
	case Always:
		return "always"
	case Never, nil:
		return "never"
	case ModelGuided:
		return "model"
	default:
		return "custom"
	}
}

// ForEngine converts a policy into the form engine.Submit expects: Never
// becomes nil (the engine's never-share path, which skips group
// bookkeeping entirely).
func ForEngine(p engine.SharePolicy) engine.SharePolicy {
	if _, ok := p.(Never); ok {
		return nil
	}
	return p
}
