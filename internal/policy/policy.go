// Package policy implements the three work-sharing policies Section 8
// compares: always-share, never-share, and the model-guided policy that
// evaluates the analytical model at runtime and admits a query to a sharing
// group only when the model predicts a benefit.
package policy

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
)

// Always applies work sharing whenever possible.
type Always struct{}

// ShouldJoin implements engine.SharePolicy: always yes.
func (Always) ShouldJoin(core.Query, int) bool { return true }

// ShouldAttach implements engine.AttachPolicy: attach whenever any of the
// scan is still ahead of the cursor.
func (Always) ShouldAttach(_ core.Query, _ int, remaining float64) bool { return remaining > 0 }

// Never executes every query independently.
type Never struct{}

// ShouldJoin implements engine.SharePolicy: always no.
func (Never) ShouldJoin(core.Query, int) bool { return false }

// ShouldAttach implements engine.AttachPolicy: never attach.
func (Never) ShouldAttach(core.Query, int, float64) bool { return false }

// Parallel never shares and runs every parallelizable query as a fixed
// number of partitioned clones — the pure intra-query-parallelism baseline
// the ablation benchmarks pit against serial sharing.
type Parallel struct {
	// Clones is the clone degree every query requests (values below 2 leave
	// execution serial; the engine clamps to its worker count).
	Clones int
}

// ShouldJoin implements engine.SharePolicy: never share.
func (Parallel) ShouldJoin(core.Query, int) bool { return false }

// ShouldAttach implements engine.AttachPolicy: never attach.
func (Parallel) ShouldAttach(core.Query, int, float64) bool { return false }

// Degree implements engine.ParallelPolicy: the fixed clone degree.
func (p Parallel) Degree(core.Query, int) int { return p.Clones }

// ModelGuided admits a query to a group of prospective size m only when the
// model predicts shared execution of m copies beats independent execution on
// this hardware: Z(m, n) > 1 (Section 8.1's admission test; if no group
// permits sharing the engine starts the query independently, where it may be
// joined later). With MaxDegree > 1 it becomes the hybrid
// share-vs-parallelize policy: every admission evaluates all three regimes
// (serial shared cost s·m, parallel unshared cost w/d under the current
// load, serial alone) via core.Choose and the query shares only when
// sharing is the predicted-fastest, parallelizes when splitting is, and
// runs alone otherwise.
type ModelGuided struct {
	// Env is the hardware the model evaluates against.
	Env core.Env
	// MaxDegree caps the clone degree of the parallelize arm; 0 or 1
	// disables it, restoring the paper's pure share-vs-alone test.
	MaxDegree int
	// PivotSelect enables model-guided pivot selection: when a query offers
	// several candidate sharing pivots, a fresh group anchors at the level
	// whose shared execution the model predicts fastest under the current
	// load (engine.PivotPolicy). Candidates include build-side pivots
	// (engine.PivotOption.Build): their models are compiled at the build —
	// w_b once per group, a near-zero table hand-off s_b, probe work per
	// member (core's build-share model, see core.BuildShareZ) — so the same
	// BestPivot comparison decides between fan-out levels and amortizing
	// one hash build over the group's probes. Off, groups anchor at the
	// spec's declared pivot and candidates only matter for joining existing
	// groups.
	PivotSelect bool
}

// ShouldJoin implements engine.SharePolicy.
func (p ModelGuided) ShouldJoin(q core.Query, m int) bool {
	if p.MaxDegree > 1 {
		dec, _, _ := core.Choose(q, m, p.MaxDegree, p.Env)
		return dec == core.Share
	}
	return core.ShouldShare(q, m, p.Env)
}

// ShouldJoinUnderLoad implements engine.LoadAwarePolicy. The hybrid policy
// evaluates the share arm at the larger of the prospective group size and
// the engine's current load: under closed-loop traffic a group grows one
// arrival at a time, and judging sharing at m=2 while eight queries are in
// flight would starve the group the model wants at load 8. The parallelize
// arm competes only when the plan can actually run as clones — refusing to
// share in favor of an infeasible regime would degrade to run-alone.
// Without a parallel arm this reduces to the plain m-based Section 8 test.
func (p ModelGuided) ShouldJoinUnderLoad(q core.Query, m, load int, canParallel bool) bool {
	if p.MaxDegree <= 1 {
		return p.ShouldJoin(q, m)
	}
	if load > m {
		m = load
	}
	maxD := 1
	if canParallel {
		maxD = p.MaxDegree
	}
	dec, _, _ := core.Choose(q, m, maxD, p.Env)
	return dec == core.Share
}

// ShouldAttachUnderLoad implements engine.LoadAwarePolicy for in-flight
// admission. The hybrid evaluates the attach at the effective group size
// (the larger of the live member count and the engine load, since under
// closed-loop traffic everyone who keeps arriving will face the same
// choice) with the per-consumer cost inflated by the wrap-around re-scan,
// and attaches only when that adjusted shared rate beats both unshared
// arms — running the copies alone and splitting each into clones. Without
// a parallel arm this reduces to the plain ShouldAttach test.
func (p ModelGuided) ShouldAttachUnderLoad(q core.Query, m int, remaining float64, load int, canParallel bool) bool {
	if p.MaxDegree <= 1 {
		return p.ShouldAttach(q, m, remaining)
	}
	if remaining <= 0 || m < 1 {
		return false
	}
	if remaining > 1 {
		remaining = 1
	}
	eff := m
	if load > eff {
		eff = load
	}
	xs := core.SharedX(core.AttachAdjusted(q, eff, remaining), eff, p.Env)
	if xs <= core.UnsharedX(q, eff, p.Env) {
		return false
	}
	if canParallel {
		for d := 2; d <= p.MaxDegree; d++ {
			if core.ParallelX(q, eff, d, p.Env) >= xs {
				return false
			}
		}
	}
	return true
}

// ChoosePivot implements engine.PivotPolicy: the candidate level (highest
// first, as the engine orders them) whose shared execution the model
// predicts fastest at the anticipated group size — the engine's current
// load, since under closed-loop traffic everyone active will face the same
// merge opportunity. A negative return keeps the spec's declared pivot,
// which is what a non-selecting policy gets.
func (p ModelGuided) ChoosePivot(cands []core.Query, load int) int {
	if !p.PivotSelect {
		return -1
	}
	m := load
	if m < 2 {
		m = 2 // a group is only worth anchoring if someone may join
	}
	best, _ := core.BestPivot(cands, m, p.Env)
	return best
}

// Degree implements engine.ParallelPolicy: the clone degree for a query
// executing unshared under the given load, 1 unless the model predicts
// parallelizing beats both sharing and running alone.
func (p ModelGuided) Degree(q core.Query, load int) int {
	if p.MaxDegree <= 1 {
		return 1
	}
	dec, d, _ := core.Choose(q, load, p.MaxDegree, p.Env)
	if dec == core.Parallelize {
		return d
	}
	return 1
}

// ShouldAttach implements engine.AttachPolicy, extending the Section 8
// admission test to mid-flight attachment. A joiner that attaches with
// fraction f of the scan remaining rides the shared cursor for only that
// fraction; the missed prefix is re-scanned on the wrap-around lap, making
// the pivot re-execute (1-f) of its per-progress work w for the group's
// benefit of one extra sharer. Amortized over the m consumers, that inflates
// the model's per-consumer cost s to s + (1-f)·w/m (equivalently, inflates
// the group pivot total p_φ(m) by (1-f)·w), and the query attaches only
// when shared execution with the inflated coefficient still beats
// independent execution of the unmodified queries: x_shared(adj) >
// x_unshared(q) — the attach-time analogue of "share iff Z > 1".
func (p ModelGuided) ShouldAttach(q core.Query, m int, remaining float64) bool {
	if remaining <= 0 || m < 1 {
		return false
	}
	if remaining > 1 {
		remaining = 1
	}
	adj := core.AttachAdjusted(q, m, remaining)
	return core.SharedX(adj, m, p.Env) > core.UnsharedX(q, m, p.Env)
}

// Every built-in policy supports both submission-time and in-flight
// admission; Parallel and ModelGuided also drive clone-degree selection.
var (
	_ engine.AttachPolicy    = Always{}
	_ engine.AttachPolicy    = Never{}
	_ engine.AttachPolicy    = ModelGuided{}
	_ engine.AttachPolicy    = Parallel{}
	_ engine.ParallelPolicy  = Parallel{}
	_ engine.ParallelPolicy  = ModelGuided{}
	_ engine.LoadAwarePolicy = ModelGuided{}
	_ engine.PivotPolicy     = ModelGuided{}
)

// Name returns a short policy label for reports.
func Name(p engine.SharePolicy) string {
	switch pol := p.(type) {
	case Always:
		return "always"
	case Never, nil:
		return "never"
	case Parallel:
		return "parallel"
	case ModelGuided:
		switch {
		case pol.PivotSelect:
			return "subplan"
		case pol.MaxDegree > 1:
			return "hybrid"
		default:
			return "model"
		}
	default:
		return "custom"
	}
}

// ForEngine converts a policy into the form engine.Submit expects: Never
// becomes nil (the engine's never-share path, which skips group
// bookkeeping entirely).
func ForEngine(p engine.SharePolicy) engine.SharePolicy {
	if _, ok := p.(Never); ok {
		return nil
	}
	return p
}

// ByName resolves a policy label (the inverse of Name, plus the CLI-only
// "inflight" alias) into the policy and whether the engine should run with
// in-flight scan sharing for it. env is the hardware the model-guided
// policies evaluate against and maxDegree the clone-degree cap of their
// parallelize arm (typically the worker count). Shared by cordoba and
// benchjson so the two never drift.
func ByName(name string, env core.Env, maxDegree int) (pol engine.SharePolicy, inflight bool, err error) {
	switch name {
	case "never":
		return Never{}, false, nil
	case "always":
		return Always{}, false, nil
	case "model":
		return ModelGuided{Env: env}, false, nil
	case "inflight":
		// The model policy with mid-flight scan attach enabled.
		return ModelGuided{Env: env}, true, nil
	case "parallel":
		return Parallel{Clones: maxDegree}, false, nil
	case "hybrid":
		// Model-guided share / parallelize / run-alone with mid-scan attach.
		return ModelGuided{Env: env, MaxDegree: maxDegree}, true, nil
	case "subplan":
		// Hybrid plus model-guided pivot selection: fresh groups anchor at
		// the candidate level with the fastest predicted shared rate.
		return ModelGuided{Env: env, MaxDegree: maxDegree, PivotSelect: true}, true, nil
	default:
		return nil, false, fmt.Errorf("policy: unknown policy %q", name)
	}
}

// Names lists the labels ByName accepts, in comparison order.
var Names = []string{"model", "inflight", "parallel", "hybrid", "subplan", "always", "never"}
