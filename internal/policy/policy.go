// Package policy implements the three work-sharing policies Section 8
// compares: always-share, never-share, and the model-guided policy that
// evaluates the analytical model at runtime and admits a query to a sharing
// group only when the model predicts a benefit.
package policy

import (
	"repro/internal/core"
	"repro/internal/engine"
)

// Always applies work sharing whenever possible.
type Always struct{}

// ShouldJoin implements engine.SharePolicy: always yes.
func (Always) ShouldJoin(core.Query, int) bool { return true }

// Never executes every query independently.
type Never struct{}

// ShouldJoin implements engine.SharePolicy: always no.
func (Never) ShouldJoin(core.Query, int) bool { return false }

// ModelGuided admits a query to a group of prospective size m only when the
// model predicts shared execution of m copies beats independent execution on
// this hardware: Z(m, n) > 1 (Section 8.1's admission test; if no group
// permits sharing the engine starts the query independently, where it may be
// joined later).
type ModelGuided struct {
	// Env is the hardware the model evaluates against.
	Env core.Env
}

// ShouldJoin implements engine.SharePolicy.
func (p ModelGuided) ShouldJoin(q core.Query, m int) bool {
	return core.ShouldShare(q, m, p.Env)
}

// Name returns a short policy label for reports.
func Name(p engine.SharePolicy) string {
	switch p.(type) {
	case Always:
		return "always"
	case Never, nil:
		return "never"
	case ModelGuided:
		return "model"
	default:
		return "custom"
	}
}

// ForEngine converts a policy into the form engine.Submit expects: Never
// becomes nil (the engine's never-share path, which skips group
// bookkeeping entirely).
func ForEngine(p engine.SharePolicy) engine.SharePolicy {
	if _, ok := p.(Never); ok {
		return nil
	}
	return p
}
