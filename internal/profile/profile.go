// Package profile implements the paper's parameter-estimation procedure
// (Section 3.1): run a few test invocations of a query with and without work
// sharing, measure each operator's active time, and solve a system of linear
// equations to divide that time among the plan nodes — recovering the model
// coefficients w (own work) and s (per-consumer output cost).
//
// The pivot's active time per group round is w_φ + m·s_φ, so measurements at
// several sharing degrees m form an over-determined linear system
// [1 m]·[w s]ᵀ = busy(m) solved by least squares. Operators below the pivot
// run once per round (busy = p); operators above run once per sharer
// (busy = m·p).
package profile

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/linsolve"
	"repro/internal/sim"
)

// ErrInsufficient is returned when too few sharing degrees are supplied to
// identify the pivot coefficients.
var ErrInsufficient = errors.New("profile: need at least two distinct sharing degrees")

// Measurement is one profiled run: the sharing degree and each node's
// active time per group round (one round = the shared sub-plan executing
// once and every sharer consuming its output once).
type Measurement struct {
	// M is the number of sharers in the profiled run (1 = unshared).
	M int
	// BusyPerRound maps node name to active time per round.
	BusyPerRound map[string]float64
}

// Estimate recovers model coefficients for a plan with known structure but
// unknown work coefficients, from per-node active-time measurements at the
// given sharing degrees. The returned query is compiled against pivotName.
func Estimate(structure core.Plan, pivotName string, meas []Measurement) (core.Query, error) {
	if err := structure.Validate(); err != nil {
		return core.Query{}, err
	}
	pivot := structure.Find(pivotName)
	if pivot == nil {
		return core.Query{}, fmt.Errorf("%w: %q", core.ErrPivotNotFound, pivotName)
	}
	distinct := map[int]bool{}
	for _, m := range meas {
		distinct[m.M] = true
	}
	if len(distinct) < 2 {
		return core.Query{}, ErrInsufficient
	}
	// Pivot: least-squares fit busy(m) = w + m·s.
	var rows [][]float64
	var rhs []float64
	for _, m := range meas {
		busy, ok := m.BusyPerRound[pivotName]
		if !ok {
			return core.Query{}, fmt.Errorf("profile: measurement m=%d missing node %q", m.M, pivotName)
		}
		rows = append(rows, []float64{1, float64(m.M)})
		rhs = append(rhs, busy)
	}
	a, err := linsolve.FromRows(rows)
	if err != nil {
		return core.Query{}, err
	}
	ws, err := linsolve.LeastSquares(a, rhs)
	if err != nil {
		return core.Query{}, err
	}
	q := core.Query{Name: structure.Name, PivotW: clampNonNeg(ws[0]), PivotS: clampNonNeg(ws[1])}
	// Below-pivot nodes run once per round: p = mean busy. Above-pivot
	// nodes run once per sharer: p = mean busy/m.
	belowSet := map[string]bool{}
	var walkBelow func(nd *core.PlanNode)
	walkBelow = func(nd *core.PlanNode) {
		for _, c := range nd.Children {
			belowSet[c.Name] = true
			walkBelow(c)
		}
	}
	walkBelow(pivot)
	for _, nd := range structure.Nodes() {
		if nd == pivot {
			continue
		}
		var sum float64
		var n int
		for _, m := range meas {
			busy, ok := m.BusyPerRound[nd.Name]
			if !ok {
				return core.Query{}, fmt.Errorf("profile: measurement m=%d missing node %q", m.M, nd.Name)
			}
			if belowSet[nd.Name] {
				sum += busy
			} else {
				sum += busy / float64(m.M)
			}
			n++
		}
		p := clampNonNeg(sum / float64(n))
		if belowSet[nd.Name] {
			q.Below = append(q.Below, p)
		} else {
			q.Above = append(q.Above, p)
		}
	}
	return q, nil
}

func clampNonNeg(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// MeasureSim profiles the plan on the CMP simulator at the given sharing
// degrees and returns the measurements Estimate consumes. It converts the
// simulator's aggregate busy times to per-round figures by dividing by the
// number of group rounds completed (throughput × horizon / m).
func MeasureSim(pl core.Plan, pivotName string, degrees []int, cfg sim.Config) ([]Measurement, error) {
	var out []Measurement
	for _, m := range degrees {
		res, err := sim.Run(pl, pivotName, m, m > 1, cfg)
		if err != nil {
			return nil, err
		}
		rounds := res.Throughput * horizonOf(cfg) / float64(m)
		if rounds <= 0 {
			return nil, fmt.Errorf("profile: no progress at m=%d", m)
		}
		busy := make(map[string]float64, len(res.BusyTime))
		for name, total := range res.BusyTime {
			busy[name] = total / rounds
		}
		out = append(out, Measurement{M: m, BusyPerRound: busy})
	}
	return out, nil
}

func horizonOf(cfg sim.Config) float64 {
	if cfg.Horizon == 0 {
		return 5000
	}
	return cfg.Horizon
}

// EstimateSim is the end-to-end pipeline: simulate, measure, fit. degrees
// must contain at least two distinct sharing degrees (e.g. 1 and 4).
func EstimateSim(pl core.Plan, pivotName string, degrees []int, cfg sim.Config) (core.Query, error) {
	meas, err := MeasureSim(pl, pivotName, degrees, cfg)
	if err != nil {
		return core.Query{}, err
	}
	// The estimator fits against the plan's structure with the measured
	// coefficients; strip the known work values so nothing leaks.
	structure := stripWork(pl)
	return Estimate(structure, pivotName, meas)
}

// stripWork deep-copies the plan structure zeroing all work coefficients
// (making explicit that estimation sees only topology plus measurements).
func stripWork(pl core.Plan) core.Plan {
	var walk func(nd *core.PlanNode) *core.PlanNode
	walk = func(nd *core.PlanNode) *core.PlanNode {
		cp := &core.PlanNode{Name: nd.Name, Kind: nd.Kind}
		for _, c := range nd.Children {
			cp.Children = append(cp.Children, walk(c))
		}
		return cp
	}
	return core.Plan{Name: pl.Name, Root: walk(pl.Root)}
}
