package profile

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/tpch"
)

// Synthetic exact measurements must recover coefficients exactly.
func TestEstimateExact(t *testing.T) {
	pl := core.Fig3Plan() // bottom p=10, pivot w=6 s=1, top p=10
	meas := []Measurement{
		{M: 1, BusyPerRound: map[string]float64{"bottom": 10, "pivot": 7, "top": 10}},
		{M: 4, BusyPerRound: map[string]float64{"bottom": 10, "pivot": 10, "top": 40}},
		{M: 8, BusyPerRound: map[string]float64{"bottom": 10, "pivot": 14, "top": 80}},
	}
	q, err := Estimate(pl, "pivot", meas)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q.PivotW-6) > 1e-9 || math.Abs(q.PivotS-1) > 1e-9 {
		t.Errorf("pivot (w,s) = (%g,%g), want (6,1)", q.PivotW, q.PivotS)
	}
	if len(q.Below) != 1 || math.Abs(q.Below[0]-10) > 1e-9 {
		t.Errorf("below = %v, want [10]", q.Below)
	}
	if len(q.Above) != 1 || math.Abs(q.Above[0]-10) > 1e-9 {
		t.Errorf("above = %v, want [10]", q.Above)
	}
}

func TestEstimateErrors(t *testing.T) {
	pl := core.Fig3Plan()
	oneDegree := []Measurement{
		{M: 2, BusyPerRound: map[string]float64{"bottom": 10, "pivot": 8, "top": 20}},
		{M: 2, BusyPerRound: map[string]float64{"bottom": 10, "pivot": 8, "top": 20}},
	}
	if _, err := Estimate(pl, "pivot", oneDegree); !errors.Is(err, ErrInsufficient) {
		t.Errorf("single degree: %v", err)
	}
	missing := []Measurement{
		{M: 1, BusyPerRound: map[string]float64{"pivot": 7}},
		{M: 2, BusyPerRound: map[string]float64{"pivot": 8}},
	}
	if _, err := Estimate(pl, "pivot", missing); err == nil {
		t.Error("missing node measurements accepted")
	}
	if _, err := Estimate(pl, "ghost", nil); !errors.Is(err, core.ErrPivotNotFound) {
		t.Errorf("missing pivot: %v", err)
	}
}

// End-to-end: profile the simulator and recover the known ground-truth
// coefficients of the Fig3 query within a few percent.
func TestEstimateSimRecoversFig3(t *testing.T) {
	pl := core.Fig3Plan()
	got, err := EstimateSim(pl, "pivot", []int{1, 2, 4, 8}, sim.Config{Processors: 8, Horizon: 20000})
	if err != nil {
		t.Fatal(err)
	}
	within := func(got, want, tol float64, what string) {
		t.Helper()
		if math.Abs(got-want) > tol*math.Max(want, 1) {
			t.Errorf("%s = %g, want %g (±%.0f%%)", what, got, want, tol*100)
		}
	}
	within(got.PivotW, 6, 0.08, "pivot w")
	within(got.PivotS, 1, 0.08, "pivot s")
	if len(got.Below) != 1 || len(got.Above) != 1 {
		t.Fatalf("structure wrong: below=%v above=%v", got.Below, got.Above)
	}
	within(got.Below[0], 10, 0.08, "below p")
	within(got.Above[0], 10, 0.08, "above p")
}

// Profiling the simulated Q6 recovers the paper's published coefficients
// (the sim executes the ground-truth plan; recovery validates the whole
// estimation pipeline of Section 3.1).
func TestEstimateSimRecoversQ6(t *testing.T) {
	pl := tpch.Plan(tpch.Q6)
	got, err := EstimateSim(pl, tpch.PivotName, []int{1, 2, 4}, sim.Config{Processors: 4, Horizon: 20000})
	if err != nil {
		t.Fatal(err)
	}
	want := tpch.Model(tpch.Q6)
	relErr := func(a, b float64) float64 { return math.Abs(a-b) / math.Max(b, 1e-9) }
	if relErr(got.PivotW, want.PivotW) > 0.10 {
		t.Errorf("w = %g, want %g", got.PivotW, want.PivotW)
	}
	if relErr(got.PivotS, want.PivotS) > 0.10 {
		t.Errorf("s = %g, want %g", got.PivotS, want.PivotS)
	}
	if len(got.Above) != 1 || relErr(got.Above[0], want.Above[0]) > 0.15 {
		t.Errorf("above = %v, want %v", got.Above, want.Above)
	}
	// The recovered model must make the same sharing decisions as the
	// ground truth across the paper's grid.
	for _, n := range []float64{1, 2, 8, 32} {
		for m := 2; m <= 48; m += 2 {
			g := core.ShouldShare(got, m, core.NewEnv(n))
			w := core.ShouldShare(want, m, core.NewEnv(n))
			if g != w {
				t.Errorf("decision diverges at m=%d n=%g: est=%v truth=%v", m, n, g, w)
			}
		}
	}
}

func TestMeasureSimProducesPerRoundFigures(t *testing.T) {
	pl := core.Fig3Plan()
	meas, err := MeasureSim(pl, "pivot", []int{1, 4}, sim.Config{Processors: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(meas) != 2 {
		t.Fatalf("got %d measurements", len(meas))
	}
	// Unshared round: bottom busy ≈ p = 10.
	if b := meas[0].BusyPerRound["bottom"]; math.Abs(b-10) > 1 {
		t.Errorf("m=1 bottom busy/round = %g, want ≈ 10", b)
	}
	// Shared round with 4 sharers: top busy ≈ 4·10.
	if b := meas[1].BusyPerRound["top"]; math.Abs(b-40) > 4 {
		t.Errorf("m=4 top busy/round = %g, want ≈ 40", b)
	}
}
