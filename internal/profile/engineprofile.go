package profile

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/policy"
)

// Engine-based estimation: the online counterpart of MeasureSim. The paper
// estimates parameters offline but notes "we anticipate no significant
// barriers to online estimation"; this file is that extension. The live
// engine is profiled at several sharing degrees and the same least-squares
// fit recovers the coefficients — in wall-clock nanoseconds per unit of
// forward progress, an arbitrary but consistent scale: the model's sharing
// decisions depend only on work *ratios*, which uniform scaling preserves.

// EngineRuns configures engine profiling.
type EngineRuns struct {
	// Options configures the engines used for the profiled runs (Workers,
	// QueueCap, ...). Profile and StartPaused are forced on.
	Options engine.Options
	// Spec is the query to profile.
	Spec engine.QuerySpec
	// Structure is the query's plan topology; work coefficients are ignored.
	Structure core.Plan
	// NodeNames maps engine node names (spec stage names) to plan node
	// names in Structure.
	NodeNames map[string]string
	// Degrees are the sharing degrees to profile (≥ 2 distinct values;
	// degree 1 runs unshared).
	Degrees []int
	// Repeats averages each degree over this many runs (default 1) to
	// damp wall-clock noise.
	Repeats int
}

// MeasureEngine profiles the query on fresh engines, one per run. Each run
// submits exactly m queries into one sharing group (the engine starts
// paused, so the group cannot seal before every member joins), executes
// them, and reads per-node busy time — one group round.
func MeasureEngine(cfg EngineRuns) ([]Measurement, error) {
	if cfg.Repeats < 1 {
		cfg.Repeats = 1
	}
	var out []Measurement
	for _, m := range cfg.Degrees {
		if m < 1 {
			return nil, fmt.Errorf("profile: invalid sharing degree %d", m)
		}
		acc := make(map[string]float64)
		for r := 0; r < cfg.Repeats; r++ {
			busy, err := oneEngineRound(cfg, m)
			if err != nil {
				return nil, err
			}
			for k, v := range busy {
				acc[k] += v / float64(cfg.Repeats)
			}
		}
		out = append(out, Measurement{M: m, BusyPerRound: acc})
	}
	return out, nil
}

func oneEngineRound(cfg EngineRuns, m int) (map[string]float64, error) {
	opts := cfg.Options
	opts.Profile = true
	opts.StartPaused = true
	opts.FanOut = engine.FanOutClone
	e, err := engine.New(opts)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	var pol engine.SharePolicy
	if m > 1 {
		pol = policy.Always{}
	}
	handles := make([]*engine.Handle, m)
	for i := range handles {
		h, err := e.Submit(cfg.Spec, pol)
		if err != nil {
			return nil, err
		}
		handles[i] = h
	}
	if m > 1 {
		if got := e.GroupSize(cfg.Spec.Signature); got != m {
			return nil, fmt.Errorf("profile: expected one group of %d, got size %d", m, got)
		}
	}
	e.Start()
	for _, h := range handles {
		if _, err := h.Wait(); err != nil {
			return nil, err
		}
	}
	busy := make(map[string]float64)
	for name, d := range e.BusyTimes() {
		planName, ok := cfg.NodeNames[name]
		if !ok {
			continue
		}
		busy[planName] += float64(d.Nanoseconds())
	}
	return busy, nil
}

// EstimateEngine is the end-to-end online pipeline: profile the live engine
// and fit model coefficients against the plan structure.
func EstimateEngine(cfg EngineRuns, pivotName string) (core.Query, error) {
	meas, err := MeasureEngine(cfg)
	if err != nil {
		return core.Query{}, err
	}
	return Estimate(stripWork(cfg.Structure), pivotName, meas)
}
