package profile

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/tpch"
)

func q6EngineRuns(t *testing.T) EngineRuns {
	t.Helper()
	db := tpch.MustGenerate(tpch.Config{ScaleFactor: 0.005, Seed: 42})
	return EngineRuns{
		Options:   engine.Options{Workers: 2},
		Spec:      tpch.MustEngineSpec(tpch.Q6, db, 0),
		Structure: tpch.Plan(tpch.Q6),
		NodeNames: map[string]string{
			"q6/scan-lineitem": tpch.PivotName,
			"q6/agg":           "agg",
		},
		Degrees: []int{1, 4, 8},
		Repeats: 2,
	}
}

func TestMeasureEngineShapes(t *testing.T) {
	cfg := q6EngineRuns(t)
	meas, err := MeasureEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(meas) != 3 {
		t.Fatalf("got %d measurements", len(meas))
	}
	for _, m := range meas {
		if m.BusyPerRound[tpch.PivotName] <= 0 {
			t.Errorf("m=%d: no pivot busy time", m.M)
		}
		if m.BusyPerRound["agg"] <= 0 {
			t.Errorf("m=%d: no agg busy time", m.M)
		}
	}
	// The aggregate's per-round busy time must grow roughly with m (one
	// aggregate per sharer). The pivot's w + m·s growth is real but the
	// scan's own work dominates it on this engine, so wall-clock noise can
	// mask it — the aggregate ratio is the reliable shape check.
	if meas[2].BusyPerRound["agg"] <= 2*meas[0].BusyPerRound["agg"] {
		t.Errorf("agg busy grew too little across 8 sharers: m=1 %g, m=8 %g",
			meas[0].BusyPerRound["agg"], meas[2].BusyPerRound["agg"])
	}
}

// Online estimation on the live engine yields a model whose structure is
// sane (positive scan cost, positive per-consumer cost, small aggregate)
// and that prefers sharing Q6 on one processor but not on many — the same
// decisions the paper's offline procedure produces.
func TestEstimateEngineQ6Decisions(t *testing.T) {
	cfg := q6EngineRuns(t)
	q, err := EstimateEngine(cfg, tpch.PivotName)
	if err != nil {
		t.Fatal(err)
	}
	if q.PivotW <= 0 {
		t.Errorf("estimated pivot w = %g, want > 0", q.PivotW)
	}
	// Unlike the paper's Cordoba (where Q6's s exceeded w because every
	// scanned page was pushed to consumers), our engine scans pay the
	// predicate over the whole table but emit only the few selected rows,
	// so the physical per-consumer clone cost is near zero and wall-clock
	// noise can drive the fitted slope to the clamp. Require only that the
	// fit is non-negative; the decision checks below are the real bar.
	if q.PivotS < 0 {
		t.Errorf("estimated pivot s = %g, want ≥ 0", q.PivotS)
	}
	if len(q.Above) != 1 || q.Above[0] <= 0 {
		t.Errorf("estimated above = %v, want one positive aggregate", q.Above)
	}
	// Wall-clock scale is arbitrary; decisions are scale-free. On one
	// processor with heavy load, sharing a scan-dominated query must win.
	if !core.ShouldShare(q, 16, core.NewEnv(1)) {
		t.Errorf("online model refuses to share Q6 on 1 cpu: %+v", q)
	}
	// With processors far beyond the group's demand, sharing must lose
	// (serialization with nothing to gain).
	if core.ShouldShare(q, 16, core.NewEnv(1e6)) {
		t.Errorf("online model shares Q6 on unlimited cpus: %+v", q)
	}
}

func TestMeasureEngineRejectsBadDegrees(t *testing.T) {
	cfg := q6EngineRuns(t)
	cfg.Degrees = []int{0}
	if _, err := MeasureEngine(cfg); err == nil {
		t.Error("degree 0 accepted")
	}
}

func TestEnginePausedGroupFormation(t *testing.T) {
	db := tpch.MustGenerate(tpch.Config{ScaleFactor: 0.001, Seed: 3})
	e, err := engine.New(engine.Options{Workers: 1, StartPaused: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	spec := tpch.MustEngineSpec(tpch.Q6, db, 0)
	var handles []*engine.Handle
	for i := 0; i < 5; i++ {
		h, err := e.Submit(spec, alwaysJoin{})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	// Paused: nothing has run, so all five must be in one group.
	if got := e.GroupSize(spec.Signature); got != 5 {
		t.Fatalf("paused group size = %d, want 5", got)
	}
	e.Start()
	for i, h := range handles {
		if _, err := h.Wait(); err != nil {
			t.Fatalf("sharer %d: %v", i, err)
		}
	}
}

type alwaysJoin struct{}

func (alwaysJoin) ShouldJoin(core.Query, int) bool { return true }
