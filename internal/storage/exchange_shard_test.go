package storage

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// These tests exercise the cross-shard life of a build state: several
// "engines" (goroutines) discovering, attaching to, subscribing to, and
// releasing one state published on a shared exchange while the owner seals
// it and a sweeper runs concurrently. Run under -race this pins the
// cross-engine memory-safety the artifact bus depends on.

// Multiple engines racing attach/subscribe/release against the owner's seal
// must all observe the sealed value exactly once, and the state must retire
// only after the last reference drops.
func TestBuildStateCrossEngineConcurrency(t *testing.T) {
	const engines = 8
	ex := NewExchange()
	st := ex.PublishBuildState("bus/build")
	if st == nil {
		t.Fatal("publish returned nil state")
	}
	// The owner's build group pins the state for the duration of its own
	// probe, exactly as the engine's anchor member does — without it, the
	// first releasing engine would retire the sealed state under the rest.
	if !st.Attach() {
		t.Fatal("owner attach failed")
	}

	sealed := "the-table"
	var got atomic.Int64    // subscribers that saw the sealed value
	var misses atomic.Int64 // subscribers woken with sealed=false
	var retired atomic.Bool
	st.OnRetire(func() { retired.Store(true) })

	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < engines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			found := ex.LookupBuildState("bus/build")
			if found == nil || !found.Attach() {
				misses.Add(1)
				return
			}
			var seen sync.WaitGroup
			seen.Add(1)
			found.Subscribe(func(v any, ok bool) {
				defer seen.Done()
				if ok && v == sealed {
					got.Add(1)
				} else {
					misses.Add(1)
				}
			})
			seen.Wait()
			found.Release()
		}()
	}
	// A concurrent sweeper with a generous age bound must never reclaim the
	// live entry out from under the attachers.
	stopSweep := make(chan struct{})
	var sweep sync.WaitGroup
	sweep.Add(1)
	go func() {
		defer sweep.Done()
		for {
			select {
			case <-stopSweep:
				return
			default:
				ex.Sweep(time.Hour)
			}
		}
	}()

	close(start)
	st.Seal(sealed)
	wg.Wait()
	close(stopSweep)
	sweep.Wait()

	if m := misses.Load(); m != 0 {
		t.Fatalf("%d engines missed the sealed value", m)
	}
	if g := got.Load(); g != engines {
		t.Fatalf("%d engines saw the sealed value, want %d", g, engines)
	}
	if retired.Load() {
		t.Fatal("state retired while the publisher still owns it")
	}
	if ex.LookupBuildState("bus/build") == nil {
		t.Fatal("live sealed state not discoverable after the races")
	}
	// The owner's release is the last: the sealed state now retires and
	// leaves the exchange.
	st.Release()
	if !retired.Load() {
		t.Fatal("state survived its last release")
	}
	if ex.LookupBuildState("bus/build") != nil {
		t.Fatal("retired state still discoverable")
	}
}

// The age sweep must spare a sealed build state that still has live
// cross-shard references — an in-use bus artifact is never "leaked" however
// old it grows — and reclaim it only once unreferenced.
func TestSweepSparesLiveCrossShardBuild(t *testing.T) {
	ex := NewExchange()
	st := ex.PublishBuildState("bus/live")
	if !st.Attach() {
		t.Fatal("attach failed on a fresh state")
	}
	st.Seal("tbl")
	// Sealed and referenced: even a zero age bound must not reclaim it.
	ex.Sweep(0)
	if ex.LookupBuildState("bus/live") == nil {
		t.Fatal("sweep reclaimed a sealed state with live references")
	}
	if st.Retired() {
		t.Fatal("state retired while referenced")
	}
	// Dropping the last reference retires a sealed state without the sweep.
	st.Release()
	if !st.Retired() {
		t.Fatal("sealed state not retired at zero references")
	}
	if ex.LookupBuildState("bus/live") != nil {
		t.Fatal("retired state still discoverable")
	}
}

// A wedged build — published, never sealed, past the age bound — must be
// swept even while its publisher nominally holds it, waking subscribers into
// the failure path rather than starving them forever.
func TestSweepWakesWedgedSubscribers(t *testing.T) {
	ex := NewExchange()
	st := ex.PublishBuildState("bus/wedged")
	var failed atomic.Bool
	st.Subscribe(func(v any, sealed bool) {
		if !sealed {
			failed.Store(true)
		}
	})
	time.Sleep(time.Millisecond)
	if n := ex.Sweep(time.Nanosecond); n == 0 {
		t.Fatal("sweep spared a wedged unsealed build")
	}
	if !failed.Load() {
		t.Fatal("subscriber not woken into the failure path")
	}
	if ex.LookupBuildState("bus/wedged") != nil {
		t.Fatal("swept state still discoverable")
	}
}
