package storage

import (
	"sync"
)

// This file implements the partitioned-scan substrate for intra-query
// parallelism: a morsel dispenser that hands out disjoint page spans of one
// base-table scan to the competing clones of a single consumer group. It is
// the "parallelize" counterpart of the circular scan in scanshare.go: where
// a circular scan delivers *every* page to *every* attached consumer (work
// sharing), a dispenser delivers every page to *exactly one* clone of the
// group (work partitioning). Both are registered in the same ScanRegistry,
// so partitioned scans and in-flight shared scans over the same table
// coexist and can be monitored together.

// MorselDispenser hands out disjoint spans ("morsels") of a fixed-size
// table scan to competing clone readers. Each Next claims the next
// unclaimed span, so the clones of one consumer group collectively cover
// the table exactly once, with no page read twice and none skipped —
// regardless of how the clones interleave. All methods are safe for
// concurrent use.
type MorselDispenser struct {
	mu         sync.Mutex
	rows       int
	morselRows int
	pos        int
	closed     bool
	onClose    func()
}

// NewMorselDispenser creates a dispenser over rows rows handing out
// morselRows rows per claim (minimum 1).
func NewMorselDispenser(rows, morselRows int) *MorselDispenser {
	if morselRows < 1 {
		morselRows = 1
	}
	if rows < 0 {
		rows = 0
	}
	// A zero-row dispenser is born exhausted.
	return &MorselDispenser{rows: rows, morselRows: morselRows, closed: rows == 0}
}

// Next claims the next unclaimed span. ok is false once the table is fully
// dispensed (or the dispenser was closed); the claiming clone is then done.
// The last successful Next closes the dispenser, unregistering it.
func (md *MorselDispenser) Next() (sp Span, ok bool) {
	md.mu.Lock()
	defer md.mu.Unlock()
	if md.closed || md.pos >= md.rows {
		md.closeLocked()
		return Span{}, false
	}
	hi := md.pos + md.morselRows
	if hi > md.rows {
		hi = md.rows
	}
	sp = Span{Lo: md.pos, Hi: hi}
	md.pos = hi
	if md.pos >= md.rows {
		md.closeLocked()
	}
	return sp, true
}

// Remaining reports the fraction of the table not yet dispensed.
func (md *MorselDispenser) Remaining() float64 {
	md.mu.Lock()
	defer md.mu.Unlock()
	if md.rows == 0 || md.closed {
		return 0
	}
	return float64(md.rows-md.pos) / float64(md.rows)
}

// Close force-closes the dispenser (error paths): further Next calls report
// exhaustion, so surviving clones run off the end instead of reading spans
// whose results nobody will consume.
func (md *MorselDispenser) Close() {
	md.mu.Lock()
	defer md.mu.Unlock()
	md.closeLocked()
}

// Closed reports whether the dispenser has been fully dispensed or closed.
func (md *MorselDispenser) Closed() bool {
	md.mu.Lock()
	defer md.mu.Unlock()
	return md.closed
}

func (md *MorselDispenser) closeLocked() {
	if md.closed {
		return
	}
	md.closed = true
	if md.onClose != nil {
		hook := md.onClose
		md.onClose = nil
		hook()
	}
}

// Registration of dispensers (PublishPartitioned) lives in exchange.go with
// the rest of the unified work-exchange registry.
