package storage

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func testSchema() Schema {
	return MustSchema(
		Column{Name: "id", Type: Int64},
		Column{Name: "price", Type: Float64},
		Column{Name: "ship", Type: Date},
		Column{Name: "comment", Type: String},
	)
}

func TestSchemaDuplicate(t *testing.T) {
	_, err := NewSchema(Column{Name: "a", Type: Int64}, Column{Name: "a", Type: Float64})
	if !errors.Is(err, ErrDupColumn) {
		t.Errorf("got %v, want ErrDupColumn", err)
	}
}

func TestSchemaIndexAndProject(t *testing.T) {
	s := testSchema()
	if i, err := s.Index("price"); err != nil || i != 1 {
		t.Errorf("Index(price) = %d, %v", i, err)
	}
	if _, err := s.Index("nope"); !errors.Is(err, ErrNoColumn) {
		t.Errorf("got %v, want ErrNoColumn", err)
	}
	p, err := s.Project("comment", "id")
	if err != nil {
		t.Fatal(err)
	}
	if p.Arity() != 2 || p.Cols[0].Name != "comment" || p.Cols[1].Name != "id" {
		t.Errorf("Project = %+v", p)
	}
	if _, err := s.Project("missing"); !errors.Is(err, ErrNoColumn) {
		t.Errorf("got %v, want ErrNoColumn", err)
	}
}

func TestSchemaRowWidth(t *testing.T) {
	s := testSchema()
	// 3 fixed columns (8 each) + 1 string column (24 estimated).
	if got := s.RowWidth(); got != 48 {
		t.Errorf("RowWidth = %d, want 48", got)
	}
	if got := (Schema{}).RowWidth(); got != 1 {
		t.Errorf("empty schema RowWidth = %d, want 1", got)
	}
}

func TestMustIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustIndex did not panic")
		}
	}()
	testSchema().MustIndex("ghost")
}

func TestBatchAppendAndAccess(t *testing.T) {
	b := NewBatch(testSchema(), 4)
	if err := b.AppendRow(int64(1), 9.5, int64(100), "hello"); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendRow(int64(2), 1.25, int64(200), "bye"); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	if got := b.MustCol("price").F64[1]; got != 1.25 {
		t.Errorf("price[1] = %g", got)
	}
	if err := b.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBatchAppendErrors(t *testing.T) {
	b := NewBatch(testSchema(), 1)
	if err := b.AppendRow(int64(1)); !errors.Is(err, ErrRowShape) {
		t.Errorf("arity: got %v, want ErrRowShape", err)
	}
	if err := b.AppendRow("x", 9.5, int64(1), "y"); !errors.Is(err, ErrTypeMism) {
		t.Errorf("type: got %v, want ErrTypeMism", err)
	}
	if err := b.AppendRow(int64(1), "bad", int64(1), "y"); !errors.Is(err, ErrTypeMism) {
		t.Errorf("float col: got %v, want ErrTypeMism", err)
	}
	if err := b.AppendRow(int64(1), 2.0, int64(1), 42); !errors.Is(err, ErrTypeMism) {
		t.Errorf("string col: got %v, want ErrTypeMism", err)
	}
}

func TestBatchSliceAndGather(t *testing.T) {
	b := NewBatch(testSchema(), 8)
	for i := 0; i < 8; i++ {
		if err := b.AppendRow(int64(i), float64(i)*1.5, int64(i*10), "s"); err != nil {
			t.Fatal(err)
		}
	}
	sl := b.Slice(2, 5)
	if sl.Len() != 3 || sl.MustCol("id").I64[0] != 2 {
		t.Errorf("Slice wrong: len=%d first=%d", sl.Len(), sl.MustCol("id").I64[0])
	}
	g := b.Gather([]int{7, 0, 3})
	want := []int64{7, 0, 3}
	for i, w := range want {
		if g.MustCol("id").I64[i] != w {
			t.Errorf("Gather[%d] = %d, want %d", i, g.MustCol("id").I64[i], w)
		}
	}
}

func TestBatchValidateCatchesSkew(t *testing.T) {
	b := NewBatch(testSchema(), 2)
	if err := b.AppendRow(int64(1), 1.0, int64(1), "a"); err != nil {
		t.Fatal(err)
	}
	b.Vecs[0].AppendInt(99) // skew one column
	if err := b.Validate(); err == nil {
		t.Error("skewed batch passed validation")
	}
}

func TestVectorGatherAndEqual(t *testing.T) {
	v := NewVector(String, 3)
	v.AppendString("a")
	v.AppendString("b")
	v.AppendString("c")
	g := v.Gather([]int{2, 0})
	if g.Str[0] != "c" || g.Str[1] != "a" {
		t.Errorf("Gather = %v", g.Str)
	}
	if !v.Equal(v) {
		t.Error("vector not equal to itself")
	}
	if v.Equal(g) {
		t.Error("different vectors compare equal")
	}
	other := NewVector(Int64, 0)
	if v.Equal(other) {
		t.Error("different types compare equal")
	}
}

func TestTableScanBatches(t *testing.T) {
	tbl := NewTable("t", testSchema())
	for i := 0; i < 100; i++ {
		tbl.MustAppend(int64(i), float64(i), int64(i), "x")
	}
	var batches, rows int
	tbl.Scan(32, func(b *Batch) bool {
		batches++
		rows += b.Len()
		return true
	})
	if batches != 4 || rows != 100 {
		t.Errorf("batches=%d rows=%d, want 4/100", batches, rows)
	}
	// Early termination.
	batches = 0
	tbl.Scan(32, func(b *Batch) bool {
		batches++
		return false
	})
	if batches != 1 {
		t.Errorf("early stop scanned %d batches, want 1", batches)
	}
	// Default batch size on nonpositive argument.
	rows = 0
	tbl.Scan(0, func(b *Batch) bool { rows += b.Len(); return true })
	if rows != 100 {
		t.Errorf("default batch scan saw %d rows", rows)
	}
}

func TestPageRoundTrip(t *testing.T) {
	b := NewBatch(testSchema(), 16)
	for i := 0; i < 16; i++ {
		if err := b.AppendRow(int64(i*7), float64(i)*0.25, int64(i+1000), "row"+string(rune('a'+i))); err != nil {
			t.Fatal(err)
		}
	}
	page, err := EncodePage(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePage(page, b.Schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b.Vecs {
		if !b.Vecs[i].Equal(got.Vecs[i]) {
			t.Errorf("column %d mismatch after round-trip", i)
		}
	}
}

func TestDecodePageErrors(t *testing.T) {
	s := testSchema()
	if _, err := DecodePage([]byte{1, 2, 3}, s); !errors.Is(err, ErrPageCorrupt) {
		t.Errorf("garbage: got %v, want ErrPageCorrupt", err)
	}
	b := NewBatch(s, 1)
	if err := b.AppendRow(int64(1), 2.0, int64(3), "zz"); err != nil {
		t.Fatal(err)
	}
	page, err := EncodePage(b)
	if err != nil {
		t.Fatal(err)
	}
	// Truncated page.
	if _, err := DecodePage(page[:len(page)-3], s); !errors.Is(err, ErrPageCorrupt) {
		t.Errorf("truncated: got %v, want ErrPageCorrupt", err)
	}
	// Trailing junk.
	if _, err := DecodePage(append(append([]byte{}, page...), 0xFF), s); !errors.Is(err, ErrPageCorrupt) {
		t.Errorf("trailing: got %v, want ErrPageCorrupt", err)
	}
	// Wrong schema arity.
	narrow := MustSchema(Column{Name: "only", Type: Int64})
	if _, err := DecodePage(page, narrow); !errors.Is(err, ErrPageCorrupt) {
		t.Errorf("arity: got %v, want ErrPageCorrupt", err)
	}
	// Wrong column type.
	twisted := MustSchema(
		Column{Name: "id", Type: Float64},
		Column{Name: "price", Type: Int64},
		Column{Name: "ship", Type: Date},
		Column{Name: "comment", Type: String},
	)
	if _, err := DecodePage(page, twisted); !errors.Is(err, ErrPageCorrupt) {
		t.Errorf("types: got %v, want ErrPageCorrupt", err)
	}
}

func TestRowsPerPage(t *testing.T) {
	s := testSchema() // width 48
	if got := RowsPerPage(s, 4096); got != 85 {
		t.Errorf("RowsPerPage = %d, want 85", got)
	}
	if got := RowsPerPage(s, 0); got != 85 {
		t.Errorf("default page size: got %d, want 85", got)
	}
	if got := RowsPerPage(s, 10); got != 1 {
		t.Errorf("tiny page: got %d, want 1", got)
	}
}

func TestTypeStrings(t *testing.T) {
	names := map[Type]string{Int64: "int64", Float64: "float64", Date: "date", String: "string"}
	for ty, want := range names {
		if ty.String() != want {
			t.Errorf("%v.String() = %q", ty, ty.String())
		}
	}
	if Type(9).String() == "" {
		t.Error("unknown type empty string")
	}
}

// Property: page encode/decode round-trips random batches exactly.
func TestQuickPageRoundTrip(t *testing.T) {
	s := testSchema()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		b := NewBatch(s, n)
		for i := 0; i < n; i++ {
			str := make([]byte, rng.Intn(30))
			for j := range str {
				str[j] = byte('a' + rng.Intn(26))
			}
			if err := b.AppendRow(rng.Int63(), rng.NormFloat64(), int64(rng.Intn(100000)), string(str)); err != nil {
				return false
			}
		}
		page, err := EncodePage(b)
		if err != nil {
			return false
		}
		got, err := DecodePage(page, s)
		if err != nil {
			return false
		}
		for i := range b.Vecs {
			if !b.Vecs[i].Equal(got.Vecs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Slice then Gather composes with direct Gather.
func TestQuickSliceGatherComposition(t *testing.T) {
	s := MustSchema(Column{Name: "v", Type: Int64})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		b := NewBatch(s, n)
		for i := 0; i < n; i++ {
			if err := b.AppendRow(rng.Int63n(1000)); err != nil {
				return false
			}
		}
		lo := rng.Intn(n - 1)
		hi := lo + 1 + rng.Intn(n-lo-1)
		sl := b.Slice(lo, hi)
		k := rng.Intn(hi - lo)
		direct := b.MustCol("v").I64[lo+k]
		viaSlice := sl.MustCol("v").I64[k]
		return direct == viaSlice
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Table epochs advance on the mutation path (Append) and via BumpEpoch, so
// cached artifacts derived from a table can detect staleness.
func TestTableEpochBumps(t *testing.T) {
	tbl := NewTable("t", MustSchema(Column{Name: "v", Type: Int64}))
	if got := tbl.Epoch(); got != 0 {
		t.Fatalf("fresh table epoch = %d, want 0", got)
	}
	tbl.MustAppend(int64(1))
	tbl.MustAppend(int64(2))
	if got := tbl.Epoch(); got != 2 {
		t.Fatalf("epoch after two appends = %d, want 2", got)
	}
	tbl.BumpEpoch()
	if got := tbl.Epoch(); got != 3 {
		t.Fatalf("epoch after BumpEpoch = %d, want 3", got)
	}
	// A failed append does not publish and must not bump.
	if err := tbl.Append("wrong type"); err == nil {
		t.Fatal("append of mistyped row succeeded")
	}
	if got := tbl.Epoch(); got != 3 {
		t.Fatalf("epoch after failed append = %d, want 3", got)
	}
}
