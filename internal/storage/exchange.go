package storage

import (
	"fmt"
	"sync"
)

// This file implements the unified work-exchange registry: the single
// subsystem through which every in-flight work-sharing primitive registers,
// is discovered, and retires. Three kinds of entry coexist, all keyed by the
// canonical fingerprint of the subplan whose work they carry:
//
//   - circular scans (scanshare.go): every page to every consumer, late
//     joiners attach mid-flight and recover the missed prefix on wrap-around;
//   - partitioned scans (partition.go): every page to exactly one clone of a
//     consumer group (morsel-driven intra-query parallelism);
//   - subplan outlets: a shared operator pipeline above the scan whose pivot
//     fans each output page to its member chains. The exchange tracks the
//     outlet's live consumer count so monitors see sharing at any level, not
//     just at the leaf.
//
// Before this unification the engine juggled a scan registry and a dispenser
// map with separate lifecycles; now publish, lookup, and retire flow through
// one keyed map with kind-tagged entries.

// ExchangeKind tags one work-exchange entry.
type ExchangeKind int

const (
	// KindCircular is an in-flight circular (elevator) scan.
	KindCircular ExchangeKind = iota
	// KindPartitioned is a morsel-dispensed partitioned scan group.
	KindPartitioned
	// KindOutlet is a shared subplan pivot fanning pages to member chains.
	KindOutlet
)

// String returns the kind label.
func (k ExchangeKind) String() string {
	switch k {
	case KindCircular:
		return "circular"
	case KindPartitioned:
		return "partitioned"
	case KindOutlet:
		return "outlet"
	default:
		return fmt.Sprintf("ExchangeKind(%d)", int(k))
	}
}

// Outlet is the exchange's record of a shared subplan pipeline: the common
// prefix of a sharing group that runs once while its pivot fans each output
// page out to the member chains. The outlet carries no data itself (pages
// flow through the engine's queues); it exists so sharing above the scan is
// as observable and retireable as the scan-level primitives.
type Outlet struct {
	mu        sync.Mutex
	key       string
	consumers int
	closed    bool
	onClose   func()
}

// Key returns the fingerprint the outlet was published under.
func (o *Outlet) Key() string { return o.key }

// Attach records one more member chain drawing from the outlet. It returns
// false once the outlet has retired.
func (o *Outlet) Attach() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		return false
	}
	o.consumers++
	return true
}

// Consumers returns the current member count.
func (o *Outlet) Consumers() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.consumers
}

// Retire closes the outlet and unregisters it. Idempotent.
func (o *Outlet) Retire() {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return
	}
	o.closed = true
	hook := o.onClose
	o.onClose = nil
	o.mu.Unlock()
	if hook != nil {
		hook()
	}
}

// Closed reports whether the outlet has retired.
func (o *Outlet) Closed() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.closed
}

// exchangeEntry is one kind-tagged registration.
type exchangeEntry struct {
	kind ExchangeKind
	circ *CircularScan
	part *MorselDispenser
	out  *Outlet
}

// Exchange is the unified work-exchange registry. All methods are safe for
// concurrent use. Entries unregister themselves when their primitive closes.
type Exchange struct {
	mu      sync.Mutex
	entries map[string]exchangeEntry
	seq     int
}

// ScanRegistry is the exchange's historical name; the engine and older
// call sites still reach the registry through it.
type ScanRegistry = Exchange

// NewExchange creates an empty work-exchange registry.
func NewExchange() *Exchange {
	return &Exchange{entries: make(map[string]exchangeEntry)}
}

// NewScanRegistry creates an empty registry (alias of NewExchange).
func NewScanRegistry() *Exchange { return NewExchange() }

// Publish creates a circular scan over rows rows, registers it under key,
// and returns it. A still-live entry previously registered under the same
// key is superseded (its consumers finish undisturbed; it simply stops
// being discoverable).
func (r *Exchange) Publish(key string, rows, pageRows int) *CircularScan {
	cs := NewCircularScan(rows, pageRows)
	r.mu.Lock()
	r.entries[key] = exchangeEntry{kind: KindCircular, circ: cs}
	r.mu.Unlock()
	cs.mu.Lock()
	cs.onClose = func() { r.unregisterCircular(key, cs) }
	cs.mu.Unlock()
	return cs
}

// PublishPartitioned creates a morsel dispenser over rows rows and registers
// it under a key derived from key plus a unique sequence number: every call
// starts a fresh consumer group, so two concurrent partitioned runs of the
// same query never steal each other's spans (exactly-once is per group, not
// per table). The dispenser unregisters itself once fully dispensed or
// closed. Partitioned entries live alongside circular scans and outlets;
// the same subplan may be covered by several kinds at once.
func (r *Exchange) PublishPartitioned(key string, rows, morselRows int) *MorselDispenser {
	md := NewMorselDispenser(rows, morselRows)
	r.mu.Lock()
	r.seq++
	id := fmt.Sprintf("%s#%d", key, r.seq)
	r.entries[id] = exchangeEntry{kind: KindPartitioned, part: md}
	r.mu.Unlock()
	md.mu.Lock()
	if md.closed {
		// Zero-row dispensers may have closed before the hook was set.
		md.mu.Unlock()
		r.mu.Lock()
		delete(r.entries, id)
		r.mu.Unlock()
		return md
	}
	md.onClose = func() { r.unregisterPartitioned(id, md) }
	md.mu.Unlock()
	return md
}

// PublishOutlet registers a shared subplan outlet under key and returns it.
// A still-live outlet under the same key is superseded.
func (r *Exchange) PublishOutlet(key string) *Outlet {
	o := &Outlet{key: key}
	r.mu.Lock()
	r.entries[key] = exchangeEntry{kind: KindOutlet, out: o}
	r.mu.Unlock()
	o.mu.Lock()
	o.onClose = func() { r.unregisterOutlet(key, o) }
	o.mu.Unlock()
	return o
}

// Lookup returns the in-flight circular scan registered under key, or nil.
func (r *Exchange) Lookup(key string) *CircularScan {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.entries[key].circ
}

// LookupOutlet returns the live outlet registered under key, or nil.
func (r *Exchange) LookupOutlet(key string) *Outlet {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.entries[key].out
}

// countKind returns the number of live entries of one kind.
func (r *Exchange) countKind(k ExchangeKind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.entries {
		if e.kind == k {
			n++
		}
	}
	return n
}

// InFlight returns the number of registered (live) circular scans.
func (r *Exchange) InFlight() int { return r.countKind(KindCircular) }

// PartitionedInFlight returns the number of registered (live) partitioned
// scan groups.
func (r *Exchange) PartitionedInFlight() int { return r.countKind(KindPartitioned) }

// OutletsInFlight returns the number of registered (live) subplan outlets.
func (r *Exchange) OutletsInFlight() int { return r.countKind(KindOutlet) }

// Entries returns the total number of live registrations of all kinds.
func (r *Exchange) Entries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

func (r *Exchange) unregisterCircular(key string, cs *CircularScan) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.entries[key].circ == cs {
		delete(r.entries, key)
	}
}

func (r *Exchange) unregisterPartitioned(id string, md *MorselDispenser) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.entries[id].part == md {
		delete(r.entries, id)
	}
}

func (r *Exchange) unregisterOutlet(key string, o *Outlet) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.entries[key].out == o {
		delete(r.entries, key)
	}
}
