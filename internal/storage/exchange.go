package storage

import (
	"fmt"
	"sync"
	"time"
)

// This file implements the unified work-exchange registry: the single
// subsystem through which every in-flight work-sharing primitive registers,
// is discovered, and retires. Four kinds of entry coexist, all keyed by the
// canonical fingerprint of the subplan whose work they carry:
//
//   - circular scans (scanshare.go): every page to every consumer, late
//     joiners attach mid-flight and recover the missed prefix on wrap-around;
//   - partitioned scans (partition.go): every page to exactly one clone of a
//     consumer group (morsel-driven intra-query parallelism);
//   - subplan outlets: a shared operator pipeline above the scan whose pivot
//     fans each output page to its member chains. The exchange tracks the
//     outlet's live consumer count so monitors see sharing at any level, not
//     just at the leaf;
//   - build states: the materialized, immutable build side of a hash join,
//     run once and probed by every attached consumer. Unlike page-stream
//     entries a build state stays attachable after it is sealed — the hash
//     table is the shared artifact, not the stream that produced it — so it
//     is refcounted and retires when its last prober releases it.
//
// Before this unification the engine juggled a scan registry and a dispenser
// map with separate lifecycles; now publish, lookup, and retire flow through
// one keyed map with kind-tagged entries. Superseded entries (a republish
// under a live key) are parked on an orphan list with a timestamp so the
// age-based Sweep can force-retire primitives whose consumer group never
// completes — the wedged-consumer leak an entry-owned lifecycle cannot cover.

// ExchangeKind tags one work-exchange entry.
type ExchangeKind int

const (
	// KindCircular is an in-flight circular (elevator) scan.
	KindCircular ExchangeKind = iota
	// KindPartitioned is a morsel-dispensed partitioned scan group.
	KindPartitioned
	// KindOutlet is a shared subplan pivot fanning pages to member chains.
	KindOutlet
	// KindBuildState is a shared hash-join build side: one sealed immutable
	// hash table amortized over every attached prober.
	KindBuildState
)

// String returns the kind label.
func (k ExchangeKind) String() string {
	switch k {
	case KindCircular:
		return "circular"
	case KindPartitioned:
		return "partitioned"
	case KindOutlet:
		return "outlet"
	case KindBuildState:
		return "buildstate"
	default:
		return fmt.Sprintf("ExchangeKind(%d)", int(k))
	}
}

// Outlet is the exchange's record of a shared subplan pipeline: the common
// prefix of a sharing group that runs once while its pivot fans each output
// page out to the member chains. The outlet carries no data itself (pages
// flow through the engine's queues); it exists so sharing above the scan is
// as observable and retireable as the scan-level primitives.
type Outlet struct {
	mu        sync.Mutex
	key       string
	consumers int
	closed    bool
	onClose   func()
}

// Key returns the fingerprint the outlet was published under.
func (o *Outlet) Key() string { return o.key }

// Attach records one more member chain drawing from the outlet. It returns
// false once the outlet has retired.
func (o *Outlet) Attach() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		return false
	}
	o.consumers++
	return true
}

// Consumers returns the current member count.
func (o *Outlet) Consumers() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.consumers
}

// Retire closes the outlet and unregisters it. Idempotent.
func (o *Outlet) Retire() {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return
	}
	o.closed = true
	hook := o.onClose
	o.onClose = nil
	o.mu.Unlock()
	if hook != nil {
		hook()
	}
}

// Closed reports whether the outlet has retired.
func (o *Outlet) Closed() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.closed
}

// BuildState is the exchange's record of a shared hash-join build side: the
// build subplan runs once, seals an immutable artifact (the engine stores a
// *relop.HashTable; the exchange treats it opaquely), and every concurrent
// join query that fingerprint-matches the build subplan attaches and probes
// the one table privately. Attachment is refcounted: unlike a page stream,
// a sealed build state remains attachable — late probers lose nothing — and
// it retires when the last prober releases it, so the table's memory has the
// lifetime of its use, not of the registry.
type BuildState struct {
	mu       sync.Mutex
	key      string
	born     time.Time
	refs     int
	sealed   bool
	value    any
	retired  bool
	onClose  func()    // unregisters from the exchange
	onRetire func()    // owner hook: fail waiters, unseal joinable group
	handoff  func(any) // keep-alive hook: receives the sealed value at retire
	// subs are cross-engine seal subscribers: when the exchange is shared as
	// an artifact bus between engine shards, a shard that attaches to a build
	// in flight on another shard has no access to the owner's wakeup queues,
	// so it subscribes here instead (see Subscribe).
	subs []func(any, bool)
}

// Key returns the fingerprint the build state was published under.
func (b *BuildState) Key() string { return b.key }

// Attach records one more prober of the table (sealed or not). It returns
// false once the state has retired; the caller must then build afresh.
func (b *BuildState) Attach() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.retired {
		return false
	}
	b.refs++
	return true
}

// Release drops one prober. When the last prober releases a sealed state the
// state retires (reporting true), dropping the table; an unsealed state
// survives zero refs so a group whose first member failed admission cannot
// strand its build mid-flight.
func (b *BuildState) Release() (retired bool) {
	b.mu.Lock()
	b.refs--
	last := b.refs <= 0 && b.sealed && !b.retired
	b.mu.Unlock()
	if last {
		b.Retire()
	}
	return last
}

// Refs returns the current prober count.
func (b *BuildState) Refs() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.refs
}

// Seal publishes the built artifact; probers attached before the seal are
// woken by the owner (the exchange carries no queues), and cross-engine
// subscribers (Subscribe) are notified here. Sealing a retired state is a
// no-op so a swept wedged build cannot resurrect itself.
func (b *BuildState) Seal(value any) {
	b.mu.Lock()
	if b.retired || b.sealed {
		b.mu.Unlock()
		return
	}
	b.sealed = true
	b.value = value
	subs := b.subs
	b.subs = nil
	b.mu.Unlock()
	// Fire outside b.mu: subscribers take their own locks and may call back
	// into the state (Refs, Sealed).
	for _, fn := range subs {
		fn(value, true)
	}
}

// Subscribe registers a one-shot notification of the state's outcome: fn is
// called with (artifact, true) when the state seals, or (nil, false) when it
// retires without ever sealing — a failed or swept build. A state that has
// already resolved fires fn immediately (a retired-while-sealed state fires
// (nil, false): its artifact has been dropped or handed off, so a late
// subscriber must rebuild or go through the cache). This is the cross-engine
// half of the build-state contract: an engine attaching to a build owned by
// another engine on a shared exchange has no access to the owner's wakeup
// queues and waits through this hook instead.
func (b *BuildState) Subscribe(fn func(value any, sealed bool)) {
	b.mu.Lock()
	switch {
	case b.retired:
		b.mu.Unlock()
		fn(nil, false)
	case b.sealed:
		v := b.value
		b.mu.Unlock()
		fn(v, true)
	default:
		b.subs = append(b.subs, fn)
		b.mu.Unlock()
	}
}

// Sealed reports whether the artifact is published, returning it when so.
func (b *BuildState) Sealed() (any, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.value, b.sealed
}

// Age returns how long ago the state was published.
func (b *BuildState) Age() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return time.Since(b.born)
}

// Retire drops the state and unregisters it, firing the owner's retire hook.
// Idempotent. Probers already holding the sealed table are unaffected — the
// artifact is immutable — only discoverability ends. A sealed state with a
// hand-off hook installed (SetHandoff) passes its artifact to the hook
// instead of silently dropping it: the retire path of the keep-alive cache.
func (b *BuildState) Retire() {
	b.mu.Lock()
	if b.retired {
		b.mu.Unlock()
		return
	}
	b.retired = true
	var val any
	if b.sealed {
		val = b.value
	}
	b.value = nil
	unreg := b.onClose
	hook := b.onRetire
	keep := b.handoff
	subs := b.subs
	b.onClose, b.onRetire, b.handoff, b.subs = nil, nil, nil, nil
	b.mu.Unlock()
	if unreg != nil {
		unreg()
	}
	if keep != nil && val != nil {
		keep(val)
	}
	if hook != nil {
		hook()
	}
	// Pending subscribers on an unsealed retirement learn the build died; a
	// sealed state has already drained its list at Seal.
	for _, fn := range subs {
		fn(nil, false)
	}
}

// SetHandoff installs (or, with nil, clears) the keep-alive hand-off hook:
// fired once with the sealed artifact when the state retires while sealed,
// however the retirement happens — last release, sweep, or owner retire.
// Unsealed retirements (a failed or wedged build) have no artifact and never
// fire it. Setting a hook on an already-retired state is a no-op: the value
// is gone.
func (b *BuildState) SetHandoff(fn func(any)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.retired {
		return
	}
	b.handoff = fn
}

// Retired reports whether the state has retired.
func (b *BuildState) Retired() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.retired
}

// OnRetire sets the owner hook fired once when the state retires (by
// release, failure, or sweep). Setting it after retirement fires it
// immediately.
func (b *BuildState) OnRetire(hook func()) {
	b.mu.Lock()
	if !b.retired {
		b.onRetire = hook
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
	if hook != nil {
		hook()
	}
}

// sweepable reports whether an age-based sweep should force-retire the
// state: past maxAge and either never sealed (a wedged build starves its
// waiters forever) or unreferenced (a leak the release path missed).
func (b *BuildState) sweepable(maxAge time.Duration) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.retired && time.Since(b.born) > maxAge && (!b.sealed || b.refs <= 0)
}

// exchangeEntry is one kind-tagged registration.
type exchangeEntry struct {
	kind  ExchangeKind
	circ  *CircularScan
	part  *MorselDispenser
	out   *Outlet
	build *BuildState
	born  time.Time
}

// retirePrimitive force-closes whatever primitive the entry carries.
func (e exchangeEntry) retirePrimitive() {
	switch {
	case e.circ != nil:
		e.circ.Close()
	case e.part != nil:
		e.part.Close()
	case e.out != nil:
		e.out.Retire()
	case e.build != nil:
		e.build.Retire()
	}
}

// live reports whether the entry's primitive is still open — a closed one
// needs no sweeping and must not count as a reclaim.
func (e exchangeEntry) live() bool {
	switch {
	case e.circ != nil:
		return !e.circ.Closed()
	case e.part != nil:
		return !e.part.Closed()
	case e.out != nil:
		return !e.out.Closed()
	case e.build != nil:
		return !e.build.Retired()
	default:
		return false
	}
}

// Exchange is the unified work-exchange registry. All methods are safe for
// concurrent use. Entries unregister themselves when their primitive closes.
type Exchange struct {
	mu      sync.Mutex
	entries map[string]exchangeEntry
	seq     int
	// orphans are superseded-but-live entries awaiting their consumers (or
	// the sweep); supersedes and sweepReclaims count supersede events and
	// sweep-forced retirements for the workload stats.
	orphans       []exchangeEntry
	supersedes    int64
	sweepReclaims int64
}

// ScanRegistry is the exchange's historical name; the engine and older
// call sites still reach the registry through it.
type ScanRegistry = Exchange

// NewExchange creates an empty work-exchange registry.
func NewExchange() *Exchange {
	return &Exchange{entries: make(map[string]exchangeEntry)}
}

// NewScanRegistry creates an empty registry (alias of NewExchange).
func NewScanRegistry() *Exchange { return NewExchange() }

// registerLocked installs an entry under key, parking any still-live entry
// it supersedes on the orphan list. Caller holds r.mu.
func (r *Exchange) registerLocked(key string, e exchangeEntry) {
	if old, ok := r.entries[key]; ok {
		r.supersedes++
		old.born = time.Now() // orphan age counts from the supersede
		r.orphans = append(r.orphans, old)
	}
	e.born = time.Now()
	r.entries[key] = e
}

// Publish creates a circular scan over rows rows, registers it under key,
// and returns it. A still-live entry previously registered under the same
// key is superseded (its consumers finish undisturbed; it simply stops
// being discoverable, and the sweep reclaims it if they never do).
func (r *Exchange) Publish(key string, rows, pageRows int) *CircularScan {
	cs := NewCircularScan(rows, pageRows)
	r.mu.Lock()
	r.registerLocked(key, exchangeEntry{kind: KindCircular, circ: cs})
	r.mu.Unlock()
	cs.mu.Lock()
	cs.onClose = func() { r.unregisterCircular(key, cs) }
	cs.mu.Unlock()
	return cs
}

// PublishPartitioned creates a morsel dispenser over rows rows and registers
// it under a key derived from key plus a unique sequence number: every call
// starts a fresh consumer group, so two concurrent partitioned runs of the
// same query never steal each other's spans (exactly-once is per group, not
// per table). The dispenser unregisters itself once fully dispensed or
// closed. Partitioned entries live alongside circular scans and outlets;
// the same subplan may be covered by several kinds at once.
func (r *Exchange) PublishPartitioned(key string, rows, morselRows int) *MorselDispenser {
	md := NewMorselDispenser(rows, morselRows)
	r.mu.Lock()
	r.seq++
	id := fmt.Sprintf("%s#%d", key, r.seq)
	r.registerLocked(id, exchangeEntry{kind: KindPartitioned, part: md})
	r.mu.Unlock()
	md.mu.Lock()
	if md.closed {
		// Zero-row dispensers may have closed before the hook was set.
		md.mu.Unlock()
		r.mu.Lock()
		delete(r.entries, id)
		r.mu.Unlock()
		return md
	}
	md.onClose = func() { r.unregisterPartitioned(id, md) }
	md.mu.Unlock()
	return md
}

// PublishOutlet registers a shared subplan outlet under key and returns it.
// A still-live outlet under the same key is superseded.
func (r *Exchange) PublishOutlet(key string) *Outlet {
	o := &Outlet{key: key}
	r.mu.Lock()
	r.registerLocked(key, exchangeEntry{kind: KindOutlet, out: o})
	r.mu.Unlock()
	o.mu.Lock()
	o.onClose = func() { r.unregisterOutlet(key, o) }
	o.mu.Unlock()
	return o
}

// PublishBuildState registers a hash-join build state under key (typically
// the build subplan's fingerprint) and returns it. A still-live state under
// the same key is superseded.
func (r *Exchange) PublishBuildState(key string) *BuildState {
	b := &BuildState{key: key, born: time.Now()}
	r.mu.Lock()
	r.registerLocked(key, exchangeEntry{kind: KindBuildState, build: b})
	r.mu.Unlock()
	b.mu.Lock()
	b.onClose = func() { r.unregisterBuildState(key, b) }
	b.mu.Unlock()
	return b
}

// Lookup returns the in-flight circular scan registered under key, or nil.
func (r *Exchange) Lookup(key string) *CircularScan {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.entries[key].circ
}

// LookupOutlet returns the live outlet registered under key, or nil.
func (r *Exchange) LookupOutlet(key string) *Outlet {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.entries[key].out
}

// LookupBuildState returns the live build state registered under key, or nil.
func (r *Exchange) LookupBuildState(key string) *BuildState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.entries[key].build
}

// countKind returns the number of live entries of one kind.
func (r *Exchange) countKind(k ExchangeKind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.entries {
		if e.kind == k {
			n++
		}
	}
	return n
}

// InFlight returns the number of registered (live) circular scans.
func (r *Exchange) InFlight() int { return r.countKind(KindCircular) }

// PartitionedInFlight returns the number of registered (live) partitioned
// scan groups.
func (r *Exchange) PartitionedInFlight() int { return r.countKind(KindPartitioned) }

// OutletsInFlight returns the number of registered (live) subplan outlets.
func (r *Exchange) OutletsInFlight() int { return r.countKind(KindOutlet) }

// BuildStatesInFlight returns the number of registered (live) build states.
func (r *Exchange) BuildStatesInFlight() int { return r.countKind(KindBuildState) }

// Entries returns the total number of live registrations of all kinds.
func (r *Exchange) Entries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Orphans returns the number of superseded entries whose primitives have not
// yet closed or been swept.
func (r *Exchange) Orphans() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.orphans)
}

// SupersedeCount returns how many registrations displaced a still-live entry
// since startup — the supersede-frequency metric the workload stats surface.
func (r *Exchange) SupersedeCount() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.supersedes
}

// SweepReclaims returns how many entries Sweep has force-retired since
// startup.
func (r *Exchange) SweepReclaims() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sweepReclaims
}

// Sweep force-retires entries no entry-owned lifecycle will ever reclaim:
// superseded orphans older than maxAge whose consumer group never completed
// (the wedged-consumer case), and live build states older than maxAge that
// are unsealed (a wedged build starving its waiters) or unreferenced. It
// returns the number of entries reclaimed. Safe to call on any cadence;
// maxAge zero sweeps everything eligible immediately.
func (r *Exchange) Sweep(maxAge time.Duration) int {
	r.mu.Lock()
	var victims []exchangeEntry
	var keep []exchangeEntry
	for _, o := range r.orphans {
		switch {
		case !o.live():
			// The consumer group completed after all; nothing to reclaim.
		case time.Since(o.born) > maxAge:
			victims = append(victims, o)
		default:
			keep = append(keep, o)
		}
	}
	r.orphans = keep
	for _, e := range r.entries {
		if e.kind == KindBuildState && e.build.sweepable(maxAge) {
			victims = append(victims, e)
		}
	}
	r.sweepReclaims += int64(len(victims))
	r.mu.Unlock()
	// Retire outside r.mu: primitives unregister themselves via onClose,
	// which re-enters the exchange lock.
	for _, v := range victims {
		v.retirePrimitive()
	}
	return len(victims)
}

func (r *Exchange) unregisterCircular(key string, cs *CircularScan) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.entries[key].circ == cs {
		delete(r.entries, key)
	}
}

func (r *Exchange) unregisterPartitioned(id string, md *MorselDispenser) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.entries[id].part == md {
		delete(r.entries, id)
	}
}

func (r *Exchange) unregisterOutlet(key string, o *Outlet) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.entries[key].out == o {
		delete(r.entries, key)
	}
}

func (r *Exchange) unregisterBuildState(key string, b *BuildState) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.entries[key].build == b {
		delete(r.entries, key)
	}
}
