package storage

import "fmt"

// This file implements range partitioning, the storage half of sharded
// execution: a base table is split into n shard-local views by contiguous
// key range so each engine shard scans a disjoint slice of the data. The
// partitions are materialized snapshot tables — column vectors gathered once
// at partition time — whose names carry a shard qualifier, so a canonical
// subplan fingerprint over a partition is distinct per shard (shard-local
// artifacts never collide on a shared exchange) while a subplan over an
// unpartitioned, replicated table keeps its shard-agnostic form (its
// artifacts are shared across the whole cluster).

// PartitionName returns the catalog name of shard i of n of the named table:
// "lineitem" becomes "lineitem@s0/4". Shard qualifiers participate in plan
// fingerprints, which is what keeps one shard's partial artifacts from
// serving another shard's data.
func PartitionName(name string, i, n int) string {
	return fmt.Sprintf("%s@s%d/%d", name, i, n)
}

// RangePartition splits t into n shard tables by contiguous range over the
// integer (Int64 or Date) column col. The key domain [min, max] observed in
// the table is divided into n equal-width bands; shard i receives the rows
// whose key falls in band i, in the source table's row order. Every source
// row lands in exactly one shard, so the partitions are an exact disjoint
// cover of t.
//
// The partitions are snapshots: they do not observe later appends to t, and
// their invalidation epochs start fresh. n == 1 returns t itself — a
// single-shard cluster scans the base table under its canonical name.
func RangePartition(t *Table, col string, n int) ([]*Table, error) {
	if n < 1 {
		return nil, fmt.Errorf("storage: range partition %s: %d shards", t.Name, n)
	}
	if n == 1 {
		return []*Table{t}, nil
	}
	v, err := t.Col(col)
	if err != nil {
		return nil, fmt.Errorf("storage: range partition %s: %w", t.Name, err)
	}
	if v.Type != Int64 && v.Type != Date {
		return nil, fmt.Errorf("storage: range partition %s: column %q is %v, want an integer key", t.Name, col, v.Type)
	}
	rows := t.NumRows()
	idx := make([][]int, n)
	if rows > 0 {
		lo, hi := v.I64[0], v.I64[0]
		for _, k := range v.I64 {
			if k < lo {
				lo = k
			}
			if k > hi {
				hi = k
			}
		}
		// Equal-width key bands; the last band absorbs the remainder so the
		// cover is exact whatever the domain width.
		width := (hi - lo + int64(n)) / int64(n)
		if width < 1 {
			width = 1
		}
		for r, k := range v.I64 {
			s := int((k - lo) / width)
			if s >= n {
				s = n - 1
			}
			idx[s] = append(idx[s], r)
		}
	}
	parts := make([]*Table, n)
	for i := range parts {
		parts[i] = &Table{
			Name: PartitionName(t.Name, i, n),
			id:   nextTableID.Add(1),
			data: t.data.Gather(idx[i]),
		}
	}
	return parts, nil
}
