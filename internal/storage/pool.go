package storage

import (
	"sync"
	"sync/atomic"
)

// This file implements the page pool: scan sources allocate result pages
// through GetPage, and Release returns a page's column storage to the pool
// when the releasing task is the page's last owner. Recycling is strictly
// opt-in (only GetPage batches carry the poolable mark) and strictly
// single-owner: a page that was ever fanned out via MarkShared is never
// recycled, because reader claims prove nothing about lingering aliases held
// by consumers that adopted the page, and Writable's zero-copy move path
// clears the mark because the adopter keeps the storage (typically as a
// query result that outlives the pipeline).

// slicePool recycles one payload-slice type. Slices return with length
// reset to zero and whatever capacity they grew to, so the pool converges
// on the workload's page size without a fixed size class.
type slicePool[T any] struct{ p sync.Pool }

func (sp *slicePool[T]) get(n int) []T {
	if v, _ := sp.p.Get().(*[]T); v != nil {
		poolHits.Add(1)
		return (*v)[:0]
	}
	return make([]T, 0, n)
}

func (sp *slicePool[T]) put(s []T) {
	sp.p.Put(&s)
}

var (
	i64Pool slicePool[int64]
	f64Pool slicePool[float64]
	strPool slicePool[string]

	poolGets atomic.Int64
	poolHits atomic.Int64
	poolPuts atomic.Int64
)

// PagePoolStats reports cumulative page-pool traffic process-wide: GetPage
// calls, column allocations satisfied from the pool rather than the heap,
// and pages recycled by a last-owner Release.
func PagePoolStats() (gets, hits, puts int64) {
	return poolGets.Load(), poolHits.Load(), poolPuts.Load()
}

// GetPage returns an empty batch with capacity hint n whose column storage
// is drawn from the page pool when available. The batch is marked poolable:
// when its last owner calls Release — and the page was never fanned out —
// the storage goes back to the pool for the next GetPage.
func GetPage(s Schema, n int) *Batch {
	poolGets.Add(1)
	b := &Batch{Schema: s, Vecs: make([]Vector, s.Arity())}
	for i, c := range s.Cols {
		v := Vector{Type: c.Type}
		switch c.Type {
		case Int64, Date:
			v.I64 = i64Pool.get(n)
		case Float64:
			v.F64 = f64Pool.get(n)
		case String:
			v.Str = strPool.get(n)
		}
		b.Vecs[i] = v
	}
	b.poolable.Store(true)
	return b
}

// recycle returns the batch's column storage to the pool. Caller has already
// claimed the poolable mark (CAS true→false), so a page recycles at most
// once however many times Release races. Vecs is nilled so any
// use-after-release fails loudly instead of reading recycled memory.
func (b *Batch) recycle() {
	poolPuts.Add(1)
	for i := range b.Vecs {
		v := &b.Vecs[i]
		switch v.Type {
		case Int64, Date:
			i64Pool.put(v.I64)
		case Float64:
			f64Pool.put(v.F64)
		case String:
			// Drop string references across the full capacity so pooled pages
			// do not pin the payloads of rows they once held.
			clear(v.Str[:cap(v.Str)])
			strPool.put(v.Str)
		}
		*v = Vector{Type: v.Type}
	}
	b.Vecs = nil
}
