package storage

import "sync"

// This file implements the in-flight scan-sharing substrate: a circular
// ("elevator") cursor over a base table that several consumers ride
// together, plus a registry of the scans currently in flight per table.
//
// The paper's engine forms sharing groups at submission time: a query may
// merge with a compatible pivot only while that pivot has not yet emitted
// its first page. A circular scan relaxes exactly that assumption. A newly
// submitted query attaches to a scan already in progress at its current
// cursor position, consumes to the end of the table, then the cursor wraps
// around and re-covers the prefix the late joiner missed. Every attached
// consumer therefore sees each page exactly once, just in a rotated order —
// which is sound for any order-insensitive consumer (the hash aggregates
// that sit above every scan pivot in the reproduced plans).

// Span is a half-open row range [Lo, Hi) of one scan quantum.
type Span struct {
	// Lo and Hi bound the rows scanned this quantum, Hi exclusive.
	Lo, Hi int
}

// Len returns the number of rows the span covers.
func (sp Span) Len() int { return sp.Hi - sp.Lo }

// ScanConsumer is one reader attached to a CircularScan. A consumer is
// complete once the cursor has covered the whole table since its attach
// point (a full circle).
type ScanConsumer struct {
	owner *CircularScan
	id    int
	start int // cursor position at attach (page-aligned), immutable
	seen  int // rows covered since attach; guarded by owner.mu
	done  bool
}

// ID returns the consumer's registry-unique identifier within its scan.
func (c *ScanConsumer) ID() int { return c.id }

// Start returns the cursor offset at which the consumer attached.
func (c *ScanConsumer) Start() int { return c.start }

// Done reports whether the consumer has seen the whole table. Safe to call
// concurrently with the drive loop.
func (c *ScanConsumer) Done() bool {
	c.owner.mu.Lock()
	defer c.owner.mu.Unlock()
	return c.done
}

// CircularScan coordinates one in-flight circular scan over a table with a
// fixed row count. It owns only cursor arithmetic and consumer membership;
// reading rows and delivering pages is the caller's (the engine's) job,
// driven by Advance. All methods are safe for concurrent use.
type CircularScan struct {
	mu        sync.Mutex
	rows      int
	pageRows  int
	pos       int // next row offset to scan
	lap       int // completed wrap-arounds
	consumers []*ScanConsumer
	nextID    int
	closed    bool
	onClose   func()
}

// NewCircularScan creates a scan over rows rows advancing pageRows per
// quantum (minimum 1).
func NewCircularScan(rows, pageRows int) *CircularScan {
	if pageRows < 1 {
		pageRows = 1
	}
	if rows < 0 {
		rows = 0
	}
	return &CircularScan{rows: rows, pageRows: pageRows}
}

// Attach adds a consumer at the current cursor position. It returns false
// when the scan has already closed (all previous consumers finished); the
// caller must then start a fresh scan.
func (cs *CircularScan) Attach() (*ScanConsumer, bool) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.closed {
		return nil, false
	}
	c := &ScanConsumer{owner: cs, id: cs.nextID, start: cs.pos}
	cs.nextID++
	cs.consumers = append(cs.consumers, c)
	return c, true
}

// Detach removes a consumer before completion. The engine aborts a whole
// group (Close) rather than detaching single members — a group error
// poisons every member's result anyway — so this is API for external
// coordinators that retire consumers individually. Detaching the last
// consumer does not close the scan; the next Advance does, so the drive
// loop always observes the closure.
func (cs *CircularScan) Detach(c *ScanConsumer) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for i, o := range cs.consumers {
		if o == c {
			cs.consumers = append(cs.consumers[:i], cs.consumers[i+1:]...)
			return
		}
	}
}

// Remaining reports the fraction of the table a joiner attaching now would
// genuinely share — the residual circle of the longest-living active
// consumer, since the scan keeps running only while some existing consumer
// still needs pages; everything after the last of them completes is
// re-scanned solely for the joiner. For a first-lap scan whose original
// consumer attached at 0 this equals the uncovered fraction of the current
// lap; on a wrap-around lap serving only late joiners it is their (smaller)
// residual, not the cursor's apparent distance from the table end. Also
// returns the number of active consumers; ok is false when the scan is
// closed (unattachable).
func (cs *CircularScan) Remaining() (fraction float64, active int, ok bool) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.closed {
		return 0, 0, false
	}
	if cs.rows == 0 {
		return 0, len(cs.consumers), true
	}
	shared := 0
	for _, c := range cs.consumers {
		if left := cs.rows - c.seen; left > shared {
			shared = left
		}
	}
	return float64(shared) / float64(cs.rows), len(cs.consumers), true
}

// Progress returns the cursor offset and completed lap count.
func (cs *CircularScan) Progress() (pos, lap int) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.pos, cs.lap
}

// Advance moves the cursor one quantum and reports the span scanned, the
// consumers the span must be delivered to, and the consumers that completed
// their full circle with this span (a subset of served; their delivery is
// their last). more is false when the scan closed — either no consumers
// remain, or every remaining consumer completed on this span. After a
// closing Advance the scan accepts no further Attach.
func (cs *CircularScan) Advance() (sp Span, served, completed []*ScanConsumer, more bool) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.closed {
		return Span{}, nil, nil, false
	}
	if len(cs.consumers) == 0 || cs.rows == 0 {
		// Zero-row tables complete every consumer without scanning.
		completed = cs.consumers
		for _, c := range completed {
			c.done = true
		}
		cs.consumers = nil
		cs.closeLocked()
		return Span{}, completed, completed, false
	}
	hi := cs.pos + cs.pageRows
	if hi > cs.rows {
		hi = cs.rows
	}
	sp = Span{Lo: cs.pos, Hi: hi}
	cs.pos = hi
	if cs.pos == cs.rows {
		cs.pos = 0
		cs.lap++
	}
	served = append(served, cs.consumers...)
	var remain []*ScanConsumer
	for _, c := range cs.consumers {
		c.seen += sp.Len()
		if c.seen >= cs.rows {
			c.done = true
			completed = append(completed, c)
		} else {
			remain = append(remain, c)
		}
	}
	cs.consumers = remain
	if len(cs.consumers) == 0 {
		cs.closeLocked()
		return sp, served, completed, false
	}
	return sp, served, completed, true
}

// Close force-closes the scan (error paths), unregistering it.
func (cs *CircularScan) Close() {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.closeLocked()
}

// Closed reports whether the scan has finished or been force-closed.
func (cs *CircularScan) Closed() bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.closed
}

func (cs *CircularScan) closeLocked() {
	if cs.closed {
		return
	}
	cs.closed = true
	cs.consumers = nil
	if cs.onClose != nil {
		// Safe to call under cs.mu: no registry method holds its own lock
		// while taking a scan's.
		hook := cs.onClose
		cs.onClose = nil
		hook()
	}
}

// The registry the circular scans publish into lives in exchange.go: the
// unified work-exchange registry tracks circular scans, partitioned scans,
// and shared subplan outlets through one keyed subsystem.
