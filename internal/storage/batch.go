package storage

import (
	"fmt"
	"sync/atomic"
)

// Batch is a column-major group of tuples flowing between operators. All
// vectors have the same length.
type Batch struct {
	// Schema describes the columns.
	Schema Schema
	// Vecs holds one vector per schema column.
	Vecs []Vector
	// shared counts extra readers beyond the owner when the batch is fanned
	// out read-only to several consumers (see MarkShared / Writable /
	// Release); everShared records that the batch was fanned out at least
	// once, so Writable can classify its zero-claim path as a move.
	shared     atomic.Int32
	everShared bool
	// poolable marks a batch whose column storage came from the page pool
	// (GetPage); a last-owner Release returns it there. The CAS on this flag
	// guarantees at-most-once recycling.
	poolable atomic.Bool
}

// NewBatch allocates an empty batch with capacity hint n rows.
func NewBatch(s Schema, n int) *Batch {
	b := &Batch{Schema: s, Vecs: make([]Vector, s.Arity())}
	for i, c := range s.Cols {
		b.Vecs[i] = NewVector(c.Type, n)
	}
	return b
}

// Len returns the number of tuples in the batch.
func (b *Batch) Len() int {
	if len(b.Vecs) == 0 {
		return 0
	}
	return b.Vecs[0].Len()
}

// Col returns the vector of the named column.
func (b *Batch) Col(name string) (Vector, error) {
	i, err := b.Schema.Index(name)
	if err != nil {
		return Vector{}, err
	}
	return b.Vecs[i], nil
}

// MustCol is Col that panics on error.
func (b *Batch) MustCol(name string) Vector {
	v, err := b.Col(name)
	if err != nil {
		panic(err)
	}
	return v
}

// AppendRow appends one tuple given as one value per column: int64 for
// Int64/Date columns, float64 for Float64, string for String.
func (b *Batch) AppendRow(vals ...any) error {
	if len(vals) != b.Schema.Arity() {
		return fmt.Errorf("%w: %d values for %d columns", ErrRowShape, len(vals), b.Schema.Arity())
	}
	for i, c := range b.Schema.Cols {
		switch c.Type {
		case Int64, Date:
			x, ok := vals[i].(int64)
			if !ok {
				return fmt.Errorf("%w: column %q wants int64, got %T", ErrTypeMism, c.Name, vals[i])
			}
			b.Vecs[i].AppendInt(x)
		case Float64:
			x, ok := vals[i].(float64)
			if !ok {
				return fmt.Errorf("%w: column %q wants float64, got %T", ErrTypeMism, c.Name, vals[i])
			}
			b.Vecs[i].AppendFloat(x)
		case String:
			x, ok := vals[i].(string)
			if !ok {
				return fmt.Errorf("%w: column %q wants string, got %T", ErrTypeMism, c.Name, vals[i])
			}
			b.Vecs[i].AppendString(x)
		}
	}
	return nil
}

// AppendBatchRow appends row i of src, which must share the schema layout.
func (b *Batch) AppendBatchRow(src *Batch, i int) {
	for c := range b.Vecs {
		b.Vecs[c].AppendFrom(src.Vecs[c], i)
	}
}

// AppendBatch appends every row of src, which must share the schema layout,
// with one vector-level copy per column — the bulk form of AppendBatchRow
// for collectors and merge fan-in paths.
func (b *Batch) AppendBatch(src *Batch) {
	for c := range b.Vecs {
		b.Vecs[c].AppendVector(src.Vecs[c])
	}
}

// Slice returns the tuple range [lo, hi) as a batch sharing storage with b.
func (b *Batch) Slice(lo, hi int) *Batch {
	out := &Batch{Schema: b.Schema, Vecs: make([]Vector, len(b.Vecs))}
	for i, v := range b.Vecs {
		out.Vecs[i] = v.Slice(lo, hi)
	}
	return out
}

// Gather returns a new batch holding the rows selected by idx, in order.
func (b *Batch) Gather(idx []int) *Batch {
	out := &Batch{Schema: b.Schema, Vecs: make([]Vector, len(b.Vecs))}
	for i, v := range b.Vecs {
		out.Vecs[i] = v.Gather(idx)
	}
	return out
}

// EstimatedBytes approximates the encoded size of the batch, used to pack
// batches into fixed-size pages.
func (b *Batch) EstimatedBytes() int {
	bytes := 0
	for i, c := range b.Schema.Cols {
		if c.Type.Fixed() {
			bytes += 8 * b.Vecs[i].Len()
			continue
		}
		for _, s := range b.Vecs[i].Str {
			bytes += 4 + len(s)
		}
	}
	return bytes
}

// Validate checks all vectors agree on length and type.
func (b *Batch) Validate() error {
	if len(b.Vecs) != b.Schema.Arity() {
		return fmt.Errorf("%w: %d vectors for %d columns", ErrRowShape, len(b.Vecs), b.Schema.Arity())
	}
	n := b.Len()
	for i, c := range b.Schema.Cols {
		if b.Vecs[i].Type != c.Type {
			return fmt.Errorf("%w: column %q is %v, vector is %v", ErrTypeMism, c.Name, c.Type, b.Vecs[i].Type)
		}
		if b.Vecs[i].Len() != n {
			return fmt.Errorf("%w: column %q has %d rows, batch has %d", ErrRowShape, c.Name, b.Vecs[i].Len(), n)
		}
	}
	return nil
}
