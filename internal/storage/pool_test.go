package storage

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func poolSchema(t *testing.T) Schema {
	t.Helper()
	return MustSchema(
		Column{Name: "k", Type: Int64},
		Column{Name: "v", Type: Float64},
		Column{Name: "s", Type: String},
	)
}

func fillPage(t *testing.T, b *Batch, base int64, rows int) {
	t.Helper()
	for r := 0; r < rows; r++ {
		if err := b.AppendRow(base+int64(r), float64(base)+float64(r)/2, fmt.Sprintf("s%d-%d", base, r)); err != nil {
			t.Fatal(err)
		}
	}
}

// A last-owner Release on a pooled page recycles it, and the recycle is
// observable both in the stats and in a subsequent GetPage hit.
func TestPagePoolRecycleAndReuse(t *testing.T) {
	sch := poolSchema(t)
	g0, _, p0 := PagePoolStats()
	b := GetPage(sch, 8)
	fillPage(t, b, 100, 8)
	b.Release()
	g1, _, p1 := PagePoolStats()
	if g1-g0 != 1 || p1-p0 != 1 {
		t.Fatalf("gets/puts moved by %d/%d, want 1/1", g1-g0, p1-p0)
	}
	if b.Vecs != nil {
		t.Fatal("released page still exposes its vectors")
	}
	// The next page draws the recycled storage back out of the pool.
	_, h1, _ := PagePoolStats()
	c := GetPage(sch, 8)
	if _, h2, _ := PagePoolStats(); h2 == h1 {
		t.Error("re-acquire after recycle hit the allocator, not the pool")
	}
	if c.Len() != 0 {
		t.Fatalf("pooled page not empty: %d rows", c.Len())
	}
	// Double release cannot recycle twice.
	_, _, p2 := PagePoolStats()
	c.Release()
	c.Release()
	if _, _, p3 := PagePoolStats(); p3-p2 != 1 {
		t.Fatalf("double Release recycled %d times, want 1", p3-p2)
	}
}

// Pages that were ever fanned out (MarkShared) are permanently exempt from
// recycling: released claims prove the claimants are done, not that no
// adopter kept an alias.
func TestPagePoolNeverRecyclesSharedPages(t *testing.T) {
	sch := poolSchema(t)
	b := GetPage(sch, 4)
	fillPage(t, b, 7, 4)
	b.MarkShared(2)
	_, _, p0 := PagePoolStats()
	b.Release() // reader 1's claim
	b.Release() // reader 2's claim
	b.Release() // owner: page dead, but it was shared — must not recycle
	if _, _, p1 := PagePoolStats(); p1 != p0 {
		t.Fatalf("shared page recycled %d times, want 0", p1-p0)
	}
	if b.Vecs == nil {
		t.Fatal("shared page storage was torn down")
	}
	if b.MustCol("k").I64[0] != 7 {
		t.Fatal("shared page content lost")
	}
}

// Writable's zero-copy move hands the storage to an adopter that keeps it
// (sink results outlive the pipeline), so the move clears poolability.
func TestPagePoolWritableMoveUnpools(t *testing.T) {
	sch := poolSchema(t)
	b := GetPage(sch, 4)
	fillPage(t, b, 1, 4)
	w := b.Writable()
	if w != b {
		t.Fatal("exclusive page did not move")
	}
	_, _, p0 := PagePoolStats()
	b.Release()
	if _, _, p1 := PagePoolStats(); p1 != p0 {
		t.Fatalf("moved page recycled %d times, want 0", p1-p0)
	}
	if w.MustCol("k").I64[0] != 1 {
		t.Fatal("adopted page content lost")
	}
}

// Fuzz the pool against the clone-on-write fan-out protocol: pooled pages
// are cloned, shared, written through Writable, released, recycled, and
// re-acquired concurrently, and no still-claimed reader ever observes its
// data change under it.
func TestPagePoolFanOutFuzz(t *testing.T) {
	sch := poolSchema(t)
	const (
		goroutines = 8
		rounds     = 300
		rows       = 16
	)
	check := func(b *Batch, base int64) error {
		for r := 0; r < rows; r++ {
			if b.MustCol("k").I64[r] != base+int64(r) {
				return fmt.Errorf("k[%d] = %d, want %d", r, b.MustCol("k").I64[r], base+int64(r))
			}
			if want := fmt.Sprintf("s%d-%d", base, r); b.MustCol("s").Str[r] != want {
				return fmt.Errorf("s[%d] = %q, want %q", r, b.MustCol("s").Str[r], want)
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < rounds; i++ {
				base := int64(g*rounds+i) * rows
				b := GetPage(sch, rows)
				fillPage(t, b, base, rows)
				switch rng.Intn(3) {
				case 0:
					// FanOutClone shape: a reader keeps a private clone, the
					// original recycles; the clone must be unaffected by
					// whoever re-acquires and overwrites the storage.
					c := b.Clone()
					b.Release()
					next := GetPage(sch, rows)
					fillPage(t, next, base+1_000_000, rows)
					if err := check(c, base); err != nil {
						errs <- fmt.Errorf("clone corrupted after recycle: %w", err)
						return
					}
					c.Release()
					next.Release()
				case 1:
					// FanOutShare shape: claims released out of order, then a
					// Writable adopter takes the page; never recycled.
					b.MarkShared(2)
					b.Release()
					w := b.Writable() // drops the second claim, pays a clone
					if w == b {
						errs <- fmt.Errorf("Writable moved a page with a live claim")
						return
					}
					b.Release() // owner retires the shared original: no recycle
					if err := check(w, base); err != nil {
						errs <- fmt.Errorf("writable clone corrupted: %w", err)
						return
					}
					if err := check(b, base); err != nil {
						errs <- fmt.Errorf("shared original corrupted: %w", err)
						return
					}
				default:
					// Consuming-operator shape: fold and release immediately.
					b.Release()
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
