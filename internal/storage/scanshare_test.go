package storage

import (
	"sync"
	"testing"
)

// coverage tracks, per row, how many times a consumer received it.
type coverage struct {
	counts []int
}

func newCoverage(rows int) *coverage { return &coverage{counts: make([]int, rows)} }

func (cv *coverage) add(sp Span) {
	for r := sp.Lo; r < sp.Hi; r++ {
		cv.counts[r]++
	}
}

func (cv *coverage) exactlyOnce() bool {
	for _, c := range cv.counts {
		if c != 1 {
			return false
		}
	}
	return true
}

// drive advances the scan to completion, attaching lateJoiners[i] after i+1
// quanta, and returns each consumer's row coverage.
func drive(t *testing.T, cs *CircularScan, rows int, lateAfter []int) map[int]*coverage {
	t.Helper()
	cov := make(map[int]*coverage)
	attach := func() {
		c, ok := cs.Attach()
		if !ok {
			t.Fatal("attach to live scan failed")
		}
		cov[c.ID()] = newCoverage(rows)
	}
	attach() // initial consumer at position 0
	step := 0
	pendingLate := append([]int(nil), lateAfter...)
	for {
		sp, served, completed, more := cs.Advance()
		for _, c := range served {
			cov[c.ID()].add(sp)
		}
		for _, c := range completed {
			if !c.Done() {
				t.Errorf("completed consumer %d not marked done", c.ID())
			}
		}
		step++
		for len(pendingLate) > 0 && pendingLate[0] == step {
			pendingLate = pendingLate[1:]
			if more {
				attach()
			}
		}
		if !more {
			break
		}
	}
	if !cs.Closed() {
		t.Error("scan not closed after final Advance")
	}
	return cov
}

func TestCircularScanSingleConsumerOneLap(t *testing.T) {
	cs := NewCircularScan(10, 3)
	cov := drive(t, cs, 10, nil)
	if len(cov) != 1 {
		t.Fatalf("got %d consumers, want 1", len(cov))
	}
	for id, cv := range cov {
		if !cv.exactlyOnce() {
			t.Errorf("consumer %d coverage %v, want every row exactly once", id, cv.counts)
		}
	}
	if _, lap := cs.Progress(); lap != 1 {
		t.Errorf("lap = %d, want 1 (no wrap work without late joiners)", lap)
	}
}

func TestCircularScanWrapAroundExactlyOnce(t *testing.T) {
	// 20 rows, 4 per page = 5 quanta per lap. Joiners attach after quanta
	// 1, 3, and 7 (the last lands mid-wrap, on the second lap).
	cs := NewCircularScan(20, 4)
	cov := drive(t, cs, 20, []int{1, 3, 7})
	if len(cov) != 4 {
		t.Fatalf("got %d consumers, want 4", len(cov))
	}
	for id, cv := range cov {
		if !cv.exactlyOnce() {
			t.Errorf("consumer %d coverage %v, want every row exactly once", id, cv.counts)
		}
	}
}

func TestCircularScanAttachRejectedAfterClose(t *testing.T) {
	cs := NewCircularScan(4, 4)
	if _, ok := cs.Attach(); !ok {
		t.Fatal("initial attach failed")
	}
	if _, _, _, more := cs.Advance(); more {
		t.Fatal("single-page scan should close after one quantum")
	}
	if _, ok := cs.Attach(); ok {
		t.Error("attach to closed scan succeeded")
	}
	if _, _, ok := cs.Remaining(); ok {
		t.Error("Remaining reported a closed scan attachable")
	}
}

func TestCircularScanRemainingFraction(t *testing.T) {
	cs := NewCircularScan(10, 5)
	if _, ok := cs.Attach(); !ok {
		t.Fatal("attach failed")
	}
	if f, active, ok := cs.Remaining(); !ok || f != 1 || active != 1 {
		t.Fatalf("Remaining = %v,%v,%v want 1,1,true", f, active, ok)
	}
	cs.Advance()
	if f, _, ok := cs.Remaining(); !ok || f != 0.5 {
		t.Fatalf("Remaining after half a lap = %v,%v want 0.5,true", f, ok)
	}
}

// TestCircularScanRemainingOnWrapLap pins the shared-fraction semantics: on
// a wrap-around lap serving only a late joiner, Remaining must report that
// joiner's residual circle, not the cursor's apparent distance from the
// table end — otherwise the attach policy would price a near-solo re-scan
// as almost fully shared.
func TestCircularScanRemainingOnWrapLap(t *testing.T) {
	cs := NewCircularScan(10, 5)
	if _, ok := cs.Attach(); !ok { // A at position 0
		t.Fatal("attach failed")
	}
	cs.Advance()         // [0,5): A halfway
	b, ok := cs.Attach() // B at position 5
	if !ok {
		t.Fatal("late attach failed")
	}
	if _, _, _, more := cs.Advance(); !more { // [5,10): A completes, wrap
		t.Fatal("scan closed with B still active")
	}
	if b.Done() {
		t.Fatal("late joiner completed after half a circle")
	}
	if f, active, ok := cs.Remaining(); !ok || active != 1 || f != 0.5 {
		t.Fatalf("Remaining on wrap lap = %v,%v,%v want 0.5,1,true (B's residual, not cursor distance 1.0)", f, active, ok)
	}
}

func TestCircularScanZeroRows(t *testing.T) {
	cs := NewCircularScan(0, 8)
	c, ok := cs.Attach()
	if !ok {
		t.Fatal("attach failed")
	}
	sp, served, completed, more := cs.Advance()
	if more || sp.Len() != 0 || len(served) != 1 || len(completed) != 1 || !c.Done() {
		t.Errorf("zero-row scan: span=%v served=%d completed=%d more=%v done=%v",
			sp, len(served), len(completed), more, c.Done())
	}
}

func TestCircularScanDetach(t *testing.T) {
	cs := NewCircularScan(12, 4)
	a, _ := cs.Attach()
	b, _ := cs.Attach()
	cs.Advance()
	cs.Detach(a)
	// Only b remains; scan finishes when b completes its circle.
	laps := 0
	for {
		_, served, _, more := cs.Advance()
		for _, c := range served {
			if c == a {
				t.Fatal("detached consumer still served")
			}
		}
		if !more {
			break
		}
		if laps++; laps > 10 {
			t.Fatal("scan did not terminate")
		}
	}
	if !b.Done() {
		t.Error("remaining consumer did not complete")
	}
}

// TestCircularScanConcurrentAttachDetach exercises the registry under the
// race detector: one goroutine drives the scan while many goroutines
// attach, some detaching early. Every consumer that stays attached must be
// completed by the drive loop.
func TestCircularScanConcurrentAttachDetach(t *testing.T) {
	reg := NewScanRegistry()
	cs := reg.Publish("t/concurrent", 512, 8)
	if reg.Lookup("t/concurrent") != cs {
		t.Fatal("Lookup did not return the published scan")
	}

	var mu sync.Mutex
	seen := make(map[int]int) // consumer id -> rows delivered
	attached := make(map[int]bool)

	var wg sync.WaitGroup
	root, _ := cs.Attach()
	mu.Lock()
	attached[root.ID()] = true
	mu.Unlock()
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, ok := cs.Attach()
			if !ok {
				return // scan already finished; a fresh scan would start
			}
			if i%4 == 0 {
				cs.Detach(c)
				return
			}
			mu.Lock()
			attached[c.ID()] = true
			mu.Unlock()
		}(i)
	}

	for {
		sp, served, _, more := cs.Advance()
		mu.Lock()
		for _, c := range served {
			seen[c.ID()] += sp.Len()
		}
		mu.Unlock()
		if !more {
			break
		}
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	for id := range attached {
		if seen[id] != 512 {
			t.Errorf("consumer %d saw %d rows, want 512", id, seen[id])
		}
	}
	if reg.InFlight() != 0 {
		t.Errorf("registry still tracks %d scans after close", reg.InFlight())
	}
}

// TestScanRegistrySupersede verifies a newer scan under the same key
// replaces the old one without the old scan's close evicting the new.
func TestScanRegistrySupersede(t *testing.T) {
	reg := NewScanRegistry()
	old := reg.Publish("t/k", 8, 8)
	old.Attach()
	nw := reg.Publish("t/k", 8, 8)
	if reg.Lookup("t/k") != nw {
		t.Fatal("new scan not registered")
	}
	old.Close()
	if reg.Lookup("t/k") != nw {
		t.Error("old scan's close evicted the superseding scan")
	}
	nw.Close()
	if reg.InFlight() != 0 {
		t.Errorf("InFlight = %d after closing all, want 0", reg.InFlight())
	}
}
