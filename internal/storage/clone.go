package storage

// Clone returns a deep copy of the batch: fresh vectors whose mutation never
// affects the original. The staged engine clones pages when a shared pivot
// fans out results to multiple consumers — the physical realization of the
// per-consumer output cost s the model charges the pivot.
func (b *Batch) Clone() *Batch {
	out := &Batch{Schema: b.Schema, Vecs: make([]Vector, len(b.Vecs))}
	for i, v := range b.Vecs {
		cp := Vector{Type: v.Type}
		switch v.Type {
		case Int64, Date:
			cp.I64 = append(make([]int64, 0, len(v.I64)), v.I64...)
		case Float64:
			cp.F64 = append(make([]float64, 0, len(v.F64)), v.F64...)
		case String:
			cp.Str = append(make([]string, 0, len(v.Str)), v.Str...)
		}
		out.Vecs[i] = cp
	}
	return out
}
