package storage

import "sync/atomic"

// Clone returns a deep copy of the batch: fresh vectors whose mutation never
// affects the original. The staged engine clones pages when a shared pivot
// fans out results under its eager-copy mode — the physical realization of
// the per-consumer output cost s the model charges the pivot. Under the
// default refcounted fan-out, Clone runs only on the write path (Writable).
func (b *Batch) Clone() *Batch {
	out := &Batch{Schema: b.Schema, Vecs: make([]Vector, len(b.Vecs))}
	for i, v := range b.Vecs {
		cp := Vector{Type: v.Type}
		switch v.Type {
		case Int64, Date:
			cp.I64 = append(make([]int64, 0, len(v.I64)), v.I64...)
		case Float64:
			cp.F64 = append(make([]float64, 0, len(v.F64)), v.F64...)
		case String:
			cp.Str = append(make([]string, 0, len(v.Str)), v.Str...)
		}
		out.Vecs[i] = cp
	}
	return out
}

// Process-wide accounting of refcounted fan-out outcomes (see ShareStats).
var (
	shareMoves    atomic.Int64
	shareCopies   atomic.Int64
	shareReleases atomic.Int64
)

// ShareStats reports the cumulative outcomes of the refcounted fan-out
// protocol process-wide: moves (a Writable call found no outstanding reader
// claims on a page that had been shared and took the original, zero-copy),
// copies (a Writable call found live claims and paid a deep clone), and
// releases (a consumer finished with a shared page without writing it and
// dropped its claim via Release). More releases ahead of adoption mean more
// moves — the point of sink-side claim release.
func ShareStats() (moves, copies, releases int64) {
	return shareMoves.Load(), shareCopies.Load(), shareReleases.Load()
}

// MarkShared records n additional readers of the batch beyond its owner: the
// pivot fanning one page out to m consumers marks it with m-1 extra readers
// and hands every consumer the same pointer. Shared batches are read-only by
// contract; a consumer that needs to mutate goes through Writable, and one
// that finishes without writing drops its claim through Release.
func (b *Batch) MarkShared(n int) {
	if n > 0 {
		b.everShared = true
		b.shared.Add(int32(n))
	}
}

// Shared reports whether the batch currently has extra readers and must be
// treated as read-only.
func (b *Batch) Shared() bool { return b.shared.Load() > 0 }

// Writable is the write path of refcounted fan-out: it returns the batch
// itself when exclusively owned (a move — the common case for the last or
// only consumer) and a deep clone when other readers still hold it, giving
// up this consumer's claim on the shared original. Clone-on-write means the
// fan-out itself copies nothing; only consumers that mutate pay.
func (b *Batch) Writable() *Batch {
	for {
		n := b.shared.Load()
		if n <= 0 {
			if b.everShared {
				shareMoves.Add(1)
			}
			// The adopter keeps this storage beyond the pipeline (typically
			// as a query result), so it must never return to the page pool.
			b.poolable.Store(false)
			return b
		}
		if b.shared.CompareAndSwap(n, n-1) {
			shareCopies.Add(1)
			return b.Clone()
		}
	}
}

// Release drops one reader claim without taking a copy: the retire path for
// sinks and fan-out consumers that finish with a shared page they never
// wrote. Releasing early lets a later adopter's Writable find zero claims
// and take the original — the zero-copy move — instead of cloning against a
// reader that no longer exists. Safe to call on never-shared batches and
// idempotent past zero; each consumer must release or adopt at most once
// per page.
//
// For a pool-backed batch (GetPage) that was never fanned out, Release is
// additionally the recycle point: the caller is the page's sole owner and
// declares it dead, so its column storage returns to the page pool. Pages
// that ever carried reader claims (MarkShared) are never recycled — a
// released claim proves the claimant is done, not that no adopter kept an
// alias — and the CAS on the poolable mark makes recycling at-most-once
// even if Release is called again.
func (b *Batch) Release() {
	for {
		n := b.shared.Load()
		if n <= 0 {
			if !b.everShared && b.poolable.CompareAndSwap(true, false) {
				b.recycle()
			}
			return
		}
		if b.shared.CompareAndSwap(n, n-1) {
			shareReleases.Add(1)
			return
		}
	}
}
