package storage

import "fmt"

// Table is an in-memory, column-major base table.
type Table struct {
	// Name is the table name ("lineitem").
	Name string
	// data holds all rows as one large batch.
	data *Batch
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, s Schema) *Table {
	return &Table{Name: name, data: NewBatch(s, 0)}
}

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.data.Schema }

// NumRows returns the row count.
func (t *Table) NumRows() int { return t.data.Len() }

// Append appends one tuple (same conventions as Batch.AppendRow).
func (t *Table) Append(vals ...any) error { return t.data.AppendRow(vals...) }

// MustAppend is Append that panics on error, for generators.
func (t *Table) MustAppend(vals ...any) {
	if err := t.Append(vals...); err != nil {
		panic(fmt.Sprintf("storage: append to %s: %v", t.Name, err))
	}
}

// Data returns the table's backing batch. Callers must treat it as
// read-only; scans slice it without copying.
func (t *Table) Data() *Batch { return t.data }

// Scan invokes fn on consecutive read-only slices of at most batchRows
// tuples until the table is exhausted or fn returns false.
func (t *Table) Scan(batchRows int, fn func(*Batch) bool) {
	if batchRows <= 0 {
		batchRows = 1024
	}
	n := t.NumRows()
	for lo := 0; lo < n; lo += batchRows {
		hi := lo + batchRows
		if hi > n {
			hi = n
		}
		if !fn(t.data.Slice(lo, hi)) {
			return
		}
	}
}

// Col returns the full column vector for the named attribute.
func (t *Table) Col(name string) (Vector, error) { return t.data.Col(name) }

// MustCol is Col that panics on error.
func (t *Table) MustCol(name string) Vector { return t.data.MustCol(name) }
