package storage

import (
	"fmt"
	"sync/atomic"
)

// Table is an in-memory, column-major base table.
type Table struct {
	// Name is the table name ("lineitem").
	Name string
	// id is the table's process-unique identity nonce (see ID).
	id uint64
	// data holds all rows as one large batch.
	data *Batch
	// epoch is the table's invalidation epoch: every mutation-path publish
	// bumps it, so a cached artifact derived from the table (a sealed hash
	// build, a materialized result run) records the epoch it was built at
	// and is rejected at lookup once the table has moved on.
	epoch atomic.Uint64
}

// nextTableID issues process-unique table identity nonces (first ID is 1, so
// zero is free to mean "identity carried by the name alone").
var nextTableID atomic.Uint64

// NewTable creates an empty table with the given schema.
func NewTable(name string, s Schema) *Table {
	return &Table{Name: name, id: nextTableID.Add(1), data: NewBatch(s, 0)}
}

// ID returns the table's process-unique identity nonce, assigned at
// construction and never reused within a process. Names are a catalog-level
// identity — nothing stops two live Table instances from sharing one — so
// consumers that key derived artifacts by name (the engine's share keys)
// use the ID to tell same-named instances apart.
func (t *Table) ID() uint64 { return t.id }

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.data.Schema }

// NumRows returns the row count.
func (t *Table) NumRows() int { return t.data.Len() }

// Epoch returns the table's current invalidation epoch. Artifacts derived
// from the table are valid only while the epoch they recorded at build time
// still matches.
func (t *Table) Epoch() uint64 { return t.epoch.Load() }

// BumpEpoch advances the invalidation epoch without appending — for callers
// that mutate through Data() (documented read-only, but the escape hatch
// exists) or that need to force cached artifacts stale.
func (t *Table) BumpEpoch() { t.epoch.Add(1) }

// Append appends one tuple (same conventions as Batch.AppendRow) and bumps
// the invalidation epoch — Append is the mutation-path publish.
func (t *Table) Append(vals ...any) error {
	if err := t.data.AppendRow(vals...); err != nil {
		return err
	}
	t.epoch.Add(1)
	return nil
}

// MustAppend is Append that panics on error, for generators.
func (t *Table) MustAppend(vals ...any) {
	if err := t.Append(vals...); err != nil {
		panic(fmt.Sprintf("storage: append to %s: %v", t.Name, err))
	}
}

// Data returns the table's backing batch. Callers must treat it as
// read-only; scans slice it without copying.
func (t *Table) Data() *Batch { return t.data }

// Scan invokes fn on consecutive read-only slices of at most batchRows
// tuples until the table is exhausted or fn returns false.
func (t *Table) Scan(batchRows int, fn func(*Batch) bool) {
	if batchRows <= 0 {
		batchRows = 1024
	}
	n := t.NumRows()
	for lo := 0; lo < n; lo += batchRows {
		hi := lo + batchRows
		if hi > n {
			hi = n
		}
		if !fn(t.data.Slice(lo, hi)) {
			return
		}
	}
}

// Col returns the full column vector for the named attribute.
func (t *Table) Col(name string) (Vector, error) { return t.data.Col(name) }

// MustCol is Col that panics on error.
func (t *Table) MustCol(name string) Vector { return t.data.MustCol(name) }
