package storage

import (
	"sync"
	"testing"
)

// coverageOf asserts spans cover [0, rows) exactly once and returns per-row
// visit counts for further checks.
func coverageOf(t *testing.T, what string, spans []Span, rows int) {
	t.Helper()
	seen := make([]int, rows)
	for _, sp := range spans {
		if sp.Lo < 0 || sp.Hi > rows || sp.Lo >= sp.Hi {
			t.Fatalf("%s: bad span [%d,%d) over %d rows", what, sp.Lo, sp.Hi, rows)
		}
		for r := sp.Lo; r < sp.Hi; r++ {
			seen[r]++
		}
	}
	for r, n := range seen {
		if n != 1 {
			t.Fatalf("%s: row %d covered %d times, want exactly once", what, r, n)
		}
	}
}

// The clones of one consumer group must collectively read every row exactly
// once, however their claims interleave.
func TestMorselDispenserExactlyOnce(t *testing.T) {
	const rows, morsel, clones = 10_000, 64, 4
	md := NewMorselDispenser(rows, morsel)
	var wg sync.WaitGroup
	perClone := make([][]Span, clones)
	for c := 0; c < clones; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				sp, ok := md.Next()
				if !ok {
					return
				}
				perClone[c] = append(perClone[c], sp)
			}
		}(c)
	}
	wg.Wait()
	if !md.Closed() {
		t.Fatal("dispenser not closed after full dispense")
	}
	var all []Span
	for _, spans := range perClone {
		all = append(all, spans...)
	}
	coverageOf(t, "group", all, rows)
}

func TestMorselDispenserEdges(t *testing.T) {
	// Zero rows: immediately exhausted.
	md := NewMorselDispenser(0, 16)
	if _, ok := md.Next(); ok {
		t.Fatal("zero-row dispenser handed out a span")
	}
	if !md.Closed() {
		t.Fatal("zero-row dispenser not closed")
	}
	// Close aborts mid-flight.
	md = NewMorselDispenser(100, 10)
	if _, ok := md.Next(); !ok {
		t.Fatal("first claim failed")
	}
	md.Close()
	if _, ok := md.Next(); ok {
		t.Fatal("closed dispenser handed out a span")
	}
	if md.Remaining() != 0 {
		t.Fatalf("closed dispenser Remaining = %g, want 0", md.Remaining())
	}
	// Non-divisible tail span.
	md = NewMorselDispenser(25, 10)
	var spans []Span
	for {
		sp, ok := md.Next()
		if !ok {
			break
		}
		spans = append(spans, sp)
	}
	coverageOf(t, "tail", spans, 25)
}

// Each PublishPartitioned call is its own consumer group: concurrent groups
// over the same key never steal each other's spans.
func TestPublishPartitionedIsolatedGroups(t *testing.T) {
	const rows = 1000
	r := NewScanRegistry()
	a := r.PublishPartitioned("lineitem/q6", rows, 100)
	b := r.PublishPartitioned("lineitem/q6", rows, 100)
	if got := r.PartitionedInFlight(); got != 2 {
		t.Fatalf("PartitionedInFlight = %d, want 2", got)
	}
	drain := func(md *MorselDispenser) []Span {
		var spans []Span
		for {
			sp, ok := md.Next()
			if !ok {
				return spans
			}
			spans = append(spans, sp)
		}
	}
	coverageOf(t, "group a", drain(a), rows)
	coverageOf(t, "group b", drain(b), rows)
	if got := r.PartitionedInFlight(); got != 0 {
		t.Fatalf("PartitionedInFlight after drain = %d, want 0", got)
	}
	// Zero-row publish self-unregisters immediately.
	r.PublishPartitioned("empty", 0, 8)
	if got := r.PartitionedInFlight(); got != 0 {
		t.Fatalf("zero-row group left registered: %d", got)
	}
}

// Partitioned scans and in-flight circular scans coexist in one registry
// over the same table: the clone group sees every row exactly once between
// its members, while every circular-scan consumer — including a late joiner
// — sees every row exactly once individually. Run under -race in CI.
func TestPartitionedAndInflightExactlyOnce(t *testing.T) {
	const rows = 5_000
	r := NewScanRegistry()

	var wg sync.WaitGroup
	// Clone group: 3 partitioned readers.
	md := r.PublishPartitioned("lineitem/shared-vs-split", rows, 37)
	perClone := make([][]Span, 3)
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				sp, ok := md.Next()
				if !ok {
					return
				}
				perClone[c] = append(perClone[c], sp)
			}
		}(c)
	}

	// Circular scan: one driver thread, a founding consumer, and a late
	// joiner attaching mid-flight.
	cs := r.Publish("lineitem/shared-vs-split", rows, 41)
	first, ok := cs.Attach()
	if !ok {
		t.Fatal("fresh circular scan rejected attach")
	}
	perConsumer := map[int][]Span{}
	var late *ScanConsumer
	wg.Add(1)
	go func() {
		defer wg.Done()
		steps := 0
		for {
			sp, served, _, more := cs.Advance()
			if sp.Len() > 0 {
				for _, c := range served {
					perConsumer[c.ID()] = append(perConsumer[c.ID()], sp)
				}
			}
			steps++
			if steps == 20 && late == nil {
				if c, ok := cs.Attach(); ok {
					late = c
				}
			}
			if !more {
				return
			}
		}
	}()
	wg.Wait()

	var group []Span
	for _, spans := range perClone {
		group = append(group, spans...)
	}
	coverageOf(t, "clone group", group, rows)
	coverageOf(t, "founding consumer", perConsumer[first.ID()], rows)
	if late == nil {
		t.Fatal("late joiner never attached")
	}
	coverageOf(t, "late joiner", perConsumer[late.ID()], rows)
	if got := r.InFlight(); got != 0 {
		t.Fatalf("circular scans still registered: %d", got)
	}
	if got := r.PartitionedInFlight(); got != 0 {
		t.Fatalf("partitioned groups still registered: %d", got)
	}
}
