package storage

import (
	"fmt"
	"testing"
)

func keyTable(t *testing.T, name string, keys []int64) *Table {
	t.Helper()
	tbl := NewTable(name, MustSchema(
		Column{Name: "k", Type: Int64},
		Column{Name: "v", Type: Float64},
	))
	for i, k := range keys {
		if err := tbl.Append(k, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// RangePartition must produce an exact disjoint cover: every source row in
// exactly one partition, partition keys inside disjoint contiguous bands,
// names shard-qualified, and ids distinct from the base table's.
func TestRangePartitionDisjointCover(t *testing.T) {
	keys := []int64{7, 1, 42, 13, 99, 5, 64, 28, 100, 3, 77, 51}
	tbl := keyTable(t, "orders", keys)
	for _, n := range []int{2, 3, 4, 7} {
		parts, err := RangePartition(tbl, "k", n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(parts) != n {
			t.Fatalf("n=%d: got %d partitions", n, len(parts))
		}
		total := 0
		seen := map[int64]int{}
		var prevMax int64 = -1 << 62
		for i, p := range parts {
			if want := PartitionName("orders", i, n); p.Name != want {
				t.Errorf("n=%d: partition %d named %q, want %q", n, i, p.Name, want)
			}
			if p.ID() == tbl.ID() {
				t.Errorf("n=%d: partition %d shares the base table's id", n, i)
			}
			v, err := p.Col("k")
			if err != nil {
				t.Fatal(err)
			}
			total += p.NumRows()
			var lo, hi int64 = 1 << 62, -1 << 62
			for _, k := range v.I64 {
				seen[k]++
				if k < lo {
					lo = k
				}
				if k > hi {
					hi = k
				}
			}
			if p.NumRows() > 0 {
				if lo <= prevMax {
					t.Errorf("n=%d: partition %d range [%d,%d] overlaps earlier partitions", n, i, lo, hi)
				}
				prevMax = hi
			}
		}
		if total != tbl.NumRows() {
			t.Fatalf("n=%d: partitions hold %d rows, base has %d", n, total, tbl.NumRows())
		}
		for _, k := range keys {
			if seen[k] != 1 {
				t.Fatalf("n=%d: key %d appears %d times across partitions", n, k, seen[k])
			}
		}
	}
}

// A one-shard partition is the base table itself — same instance, canonical
// name — so a 1-shard cluster's plans keep their unqualified identity.
func TestRangePartitionSingleShard(t *testing.T) {
	tbl := keyTable(t, "t", []int64{1, 2, 3})
	parts, err := RangePartition(tbl, "k", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 1 || parts[0] != tbl {
		t.Fatal("n=1 must return the base table itself")
	}
}

// Non-integer key columns and degenerate shard counts must be rejected.
func TestRangePartitionErrors(t *testing.T) {
	tbl := keyTable(t, "t", []int64{1, 2, 3})
	if _, err := RangePartition(tbl, "v", 2); err == nil {
		t.Error("float key column accepted")
	}
	if _, err := RangePartition(tbl, "missing", 2); err == nil {
		t.Error("missing key column accepted")
	}
	if _, err := RangePartition(tbl, "k", 0); err == nil {
		t.Error("zero shards accepted")
	}
}

// Partitioning an empty table yields n valid empty partitions.
func TestRangePartitionEmpty(t *testing.T) {
	tbl := keyTable(t, "t", nil)
	parts, err := RangePartition(tbl, "k", 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range parts {
		if p.NumRows() != 0 {
			t.Errorf("partition %d has %d rows", i, p.NumRows())
		}
		if p.Name != fmt.Sprintf("t@s%d/3", i) {
			t.Errorf("partition %d named %q", i, p.Name)
		}
	}
}
