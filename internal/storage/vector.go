package storage

import "fmt"

// Vector is one column's values for a batch of tuples. Exactly one of the
// payload slices is in use, selected by Type (Date shares I64).
type Vector struct {
	// Type selects the active payload.
	Type Type
	// I64 backs Int64 and Date vectors.
	I64 []int64
	// F64 backs Float64 vectors.
	F64 []float64
	// Str backs String vectors.
	Str []string
}

// NewVector returns an empty vector of the given type with capacity hint n.
func NewVector(t Type, n int) Vector {
	v := Vector{Type: t}
	switch t {
	case Int64, Date:
		v.I64 = make([]int64, 0, n)
	case Float64:
		v.F64 = make([]float64, 0, n)
	case String:
		v.Str = make([]string, 0, n)
	default:
		panic(fmt.Sprintf("storage: unknown type %v", t))
	}
	return v
}

// Len returns the number of values.
func (v Vector) Len() int {
	switch v.Type {
	case Int64, Date:
		return len(v.I64)
	case Float64:
		return len(v.F64)
	case String:
		return len(v.Str)
	default:
		return 0
	}
}

// AppendInt appends to an integer/date vector.
func (v *Vector) AppendInt(x int64) { v.I64 = append(v.I64, x) }

// AppendFloat appends to a float vector.
func (v *Vector) AppendFloat(x float64) { v.F64 = append(v.F64, x) }

// AppendString appends to a string vector.
func (v *Vector) AppendString(x string) { v.Str = append(v.Str, x) }

// AppendFrom appends element i of src (which must share v's type family).
func (v *Vector) AppendFrom(src Vector, i int) {
	switch v.Type {
	case Int64, Date:
		v.I64 = append(v.I64, src.I64[i])
	case Float64:
		v.F64 = append(v.F64, src.F64[i])
	case String:
		v.Str = append(v.Str, src.Str[i])
	}
}

// AppendVector appends all of src (which must share v's type family) with a
// single slice-level copy.
func (v *Vector) AppendVector(src Vector) {
	switch v.Type {
	case Int64, Date:
		v.I64 = append(v.I64, src.I64...)
	case Float64:
		v.F64 = append(v.F64, src.F64...)
	case String:
		v.Str = append(v.Str, src.Str...)
	}
}

// Slice returns the sub-vector [lo, hi). The result shares backing storage.
func (v Vector) Slice(lo, hi int) Vector {
	out := Vector{Type: v.Type}
	switch v.Type {
	case Int64, Date:
		out.I64 = v.I64[lo:hi]
	case Float64:
		out.F64 = v.F64[lo:hi]
	case String:
		out.Str = v.Str[lo:hi]
	}
	return out
}

// Gather returns a new vector holding v[idx[0]], v[idx[1]], ...
func (v Vector) Gather(idx []int) Vector {
	out := NewVector(v.Type, len(idx))
	out.AppendGather(v, idx)
	return out
}

// AppendGather appends src[idx[0]], src[idx[1]], ... to v, resolving the
// payload type once instead of per row — the hot inner loop of selective
// scans, where AppendFrom's per-element type switch dominates.
func (v *Vector) AppendGather(src Vector, idx []int) {
	switch v.Type {
	case Int64, Date:
		for _, i := range idx {
			v.I64 = append(v.I64, src.I64[i])
		}
	case Float64:
		for _, i := range idx {
			v.F64 = append(v.F64, src.F64[i])
		}
	case String:
		for _, i := range idx {
			v.Str = append(v.Str, src.Str[i])
		}
	}
}

// Equal reports deep value equality (used by tests).
func (v Vector) Equal(o Vector) bool {
	if v.Type != o.Type || v.Len() != o.Len() {
		return false
	}
	switch v.Type {
	case Int64, Date:
		for i := range v.I64 {
			if v.I64[i] != o.I64[i] {
				return false
			}
		}
	case Float64:
		for i := range v.F64 {
			if v.F64[i] != o.F64[i] {
				return false
			}
		}
	case String:
		for i := range v.Str {
			if v.Str[i] != o.Str[i] {
				return false
			}
		}
	}
	return true
}
