package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// DefaultPageSize is the typical intermediate-result page size the paper's
// engine uses ("the intermediate results between operators are packed into
// pages (of typical size of 4K)", Section 3.2).
const DefaultPageSize = 4096

// ErrPageCorrupt is returned when a page fails to decode.
var ErrPageCorrupt = errors.New("storage: corrupt page")

// pageMagic guards against decoding garbage.
const pageMagic = uint32(0xC0DB0BA5)

// EncodePage serializes a batch into a self-describing byte page:
//
//	magic u32 | ncols u16 | nrows u32 | (type u8)* | column payloads
//
// Fixed columns encode 8 bytes per value; strings encode u32 length + bytes.
// Encoding is the engine's stand-in for the per-consumer output copy the
// model charges as s: the pivot pays one encode (or copy) per consumer.
func EncodePage(b *Batch) ([]byte, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if b.Schema.Arity() > math.MaxUint16 {
		return nil, fmt.Errorf("%w: %d columns", ErrRowShape, b.Schema.Arity())
	}
	out := make([]byte, 0, 64+b.EstimatedBytes())
	out = binary.BigEndian.AppendUint32(out, pageMagic)
	out = binary.BigEndian.AppendUint16(out, uint16(b.Schema.Arity()))
	out = binary.BigEndian.AppendUint32(out, uint32(b.Len()))
	for _, c := range b.Schema.Cols {
		out = append(out, byte(c.Type))
	}
	for i, c := range b.Schema.Cols {
		v := b.Vecs[i]
		switch c.Type {
		case Int64, Date:
			for _, x := range v.I64 {
				out = binary.BigEndian.AppendUint64(out, uint64(x))
			}
		case Float64:
			for _, x := range v.F64 {
				out = binary.BigEndian.AppendUint64(out, math.Float64bits(x))
			}
		case String:
			for _, s := range v.Str {
				out = binary.BigEndian.AppendUint32(out, uint32(len(s)))
				out = append(out, s...)
			}
		}
	}
	return out, nil
}

// DecodePage reverses EncodePage. Column names are not stored in the page;
// the caller supplies the schema, whose types must match the page header.
func DecodePage(page []byte, s Schema) (*Batch, error) {
	rd := pageReader{buf: page}
	magic, err := rd.u32()
	if err != nil || magic != pageMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrPageCorrupt)
	}
	ncols, err := rd.u16()
	if err != nil {
		return nil, err
	}
	if int(ncols) != s.Arity() {
		return nil, fmt.Errorf("%w: page has %d columns, schema has %d", ErrPageCorrupt, ncols, s.Arity())
	}
	nrows, err := rd.u32()
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(ncols); i++ {
		tb, err := rd.u8()
		if err != nil {
			return nil, err
		}
		if Type(tb) != s.Cols[i].Type {
			return nil, fmt.Errorf("%w: column %d type %v, schema says %v", ErrPageCorrupt, i, Type(tb), s.Cols[i].Type)
		}
	}
	b := NewBatch(s, int(nrows))
	for i, c := range s.Cols {
		switch c.Type {
		case Int64, Date:
			for r := 0; r < int(nrows); r++ {
				x, err := rd.u64()
				if err != nil {
					return nil, err
				}
				b.Vecs[i].AppendInt(int64(x))
			}
		case Float64:
			for r := 0; r < int(nrows); r++ {
				x, err := rd.u64()
				if err != nil {
					return nil, err
				}
				b.Vecs[i].AppendFloat(math.Float64frombits(x))
			}
		case String:
			for r := 0; r < int(nrows); r++ {
				n, err := rd.u32()
				if err != nil {
					return nil, err
				}
				str, err := rd.bytes(int(n))
				if err != nil {
					return nil, err
				}
				b.Vecs[i].AppendString(string(str))
			}
		}
	}
	if rd.pos != len(page) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrPageCorrupt, len(page)-rd.pos)
	}
	return b, nil
}

// RowsPerPage returns how many tuples of the schema fit a page of the given
// byte size (at least 1, so progress is always possible).
func RowsPerPage(s Schema, pageSize int) int {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	n := pageSize / s.RowWidth()
	if n < 1 {
		n = 1
	}
	return n
}

type pageReader struct {
	buf []byte
	pos int
}

func (r *pageReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.pos+n > len(r.buf) {
		return nil, fmt.Errorf("%w: truncated", ErrPageCorrupt)
	}
	out := r.buf[r.pos : r.pos+n]
	r.pos += n
	return out, nil
}

func (r *pageReader) u8() (byte, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *pageReader) u16() (uint16, error) {
	b, err := r.bytes(2)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

func (r *pageReader) u32() (uint32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (r *pageReader) u64() (uint64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}
