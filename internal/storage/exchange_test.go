package storage

import "testing"

// All three entry kinds must coexist in one exchange under their own keys
// and be counted separately and together.
func TestExchangeKindsCoexist(t *testing.T) {
	x := NewExchange()
	cs := x.Publish("scan-key", 128, 16)
	md := x.PublishPartitioned("scan-key", 128, 16)
	o := x.PublishOutlet("outlet-key")
	if got := x.InFlight(); got != 1 {
		t.Errorf("InFlight = %d, want 1", got)
	}
	if got := x.PartitionedInFlight(); got != 1 {
		t.Errorf("PartitionedInFlight = %d, want 1", got)
	}
	if got := x.OutletsInFlight(); got != 1 {
		t.Errorf("OutletsInFlight = %d, want 1", got)
	}
	if got := x.Entries(); got != 3 {
		t.Errorf("Entries = %d, want 3", got)
	}
	if x.Lookup("scan-key") != cs {
		t.Error("Lookup did not return the circular scan")
	}
	if x.LookupOutlet("outlet-key") != o {
		t.Error("LookupOutlet did not return the outlet")
	}
	// Each kind retires through its own lifecycle.
	cs.Close()
	md.Close()
	o.Retire()
	if got := x.Entries(); got != 0 {
		t.Errorf("Entries after retiring all = %d, want 0", got)
	}
}

// Outlet lifecycle: attach counts consumers, retire closes and unregisters,
// and closed outlets refuse further attaches. Retire is idempotent.
func TestOutletLifecycle(t *testing.T) {
	x := NewExchange()
	o := x.PublishOutlet("k")
	if o.Key() != "k" {
		t.Errorf("Key = %q, want k", o.Key())
	}
	if !o.Attach() || !o.Attach() {
		t.Fatal("attach to a live outlet refused")
	}
	if got := o.Consumers(); got != 2 {
		t.Errorf("Consumers = %d, want 2", got)
	}
	if o.Closed() {
		t.Error("live outlet reports closed")
	}
	o.Retire()
	o.Retire() // idempotent
	if !o.Closed() {
		t.Error("retired outlet not closed")
	}
	if o.Attach() {
		t.Error("attach to a retired outlet succeeded")
	}
	if x.LookupOutlet("k") != nil {
		t.Error("retired outlet still discoverable")
	}
}

// A newer outlet under the same key supersedes the older one: the old
// outlet keeps serving its consumers but stops being discoverable, and its
// late retire must not unregister its successor.
func TestOutletSupersede(t *testing.T) {
	x := NewExchange()
	old := x.PublishOutlet("k")
	nw := x.PublishOutlet("k")
	if x.LookupOutlet("k") != nw {
		t.Fatal("newest outlet not discoverable")
	}
	old.Retire()
	if x.LookupOutlet("k") != nw {
		t.Error("old outlet's retire unregistered its successor")
	}
	nw.Retire()
	if got := x.OutletsInFlight(); got != 0 {
		t.Errorf("OutletsInFlight = %d, want 0", got)
	}
}

// ExchangeKind labels feed monitors; keep them stable.
func TestExchangeKindStrings(t *testing.T) {
	for kind, want := range map[ExchangeKind]string{
		KindCircular:    "circular",
		KindPartitioned: "partitioned",
		KindOutlet:      "outlet",
		ExchangeKind(9): "ExchangeKind(9)",
	} {
		if got := kind.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(kind), got, want)
		}
	}
}
