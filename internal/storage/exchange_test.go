package storage

import (
	"testing"
	"time"
)

// All three entry kinds must coexist in one exchange under their own keys
// and be counted separately and together.
func TestExchangeKindsCoexist(t *testing.T) {
	x := NewExchange()
	cs := x.Publish("scan-key", 128, 16)
	md := x.PublishPartitioned("scan-key", 128, 16)
	o := x.PublishOutlet("outlet-key")
	if got := x.InFlight(); got != 1 {
		t.Errorf("InFlight = %d, want 1", got)
	}
	if got := x.PartitionedInFlight(); got != 1 {
		t.Errorf("PartitionedInFlight = %d, want 1", got)
	}
	if got := x.OutletsInFlight(); got != 1 {
		t.Errorf("OutletsInFlight = %d, want 1", got)
	}
	if got := x.Entries(); got != 3 {
		t.Errorf("Entries = %d, want 3", got)
	}
	if x.Lookup("scan-key") != cs {
		t.Error("Lookup did not return the circular scan")
	}
	if x.LookupOutlet("outlet-key") != o {
		t.Error("LookupOutlet did not return the outlet")
	}
	// Each kind retires through its own lifecycle.
	cs.Close()
	md.Close()
	o.Retire()
	if got := x.Entries(); got != 0 {
		t.Errorf("Entries after retiring all = %d, want 0", got)
	}
}

// Outlet lifecycle: attach counts consumers, retire closes and unregisters,
// and closed outlets refuse further attaches. Retire is idempotent.
func TestOutletLifecycle(t *testing.T) {
	x := NewExchange()
	o := x.PublishOutlet("k")
	if o.Key() != "k" {
		t.Errorf("Key = %q, want k", o.Key())
	}
	if !o.Attach() || !o.Attach() {
		t.Fatal("attach to a live outlet refused")
	}
	if got := o.Consumers(); got != 2 {
		t.Errorf("Consumers = %d, want 2", got)
	}
	if o.Closed() {
		t.Error("live outlet reports closed")
	}
	o.Retire()
	o.Retire() // idempotent
	if !o.Closed() {
		t.Error("retired outlet not closed")
	}
	if o.Attach() {
		t.Error("attach to a retired outlet succeeded")
	}
	if x.LookupOutlet("k") != nil {
		t.Error("retired outlet still discoverable")
	}
}

// A newer outlet under the same key supersedes the older one: the old
// outlet keeps serving its consumers but stops being discoverable, and its
// late retire must not unregister its successor.
func TestOutletSupersede(t *testing.T) {
	x := NewExchange()
	old := x.PublishOutlet("k")
	nw := x.PublishOutlet("k")
	if x.LookupOutlet("k") != nw {
		t.Fatal("newest outlet not discoverable")
	}
	old.Retire()
	if x.LookupOutlet("k") != nw {
		t.Error("old outlet's retire unregistered its successor")
	}
	nw.Retire()
	if got := x.OutletsInFlight(); got != 0 {
		t.Errorf("OutletsInFlight = %d, want 0", got)
	}
}

// ExchangeKind labels feed monitors; keep them stable.
func TestExchangeKindStrings(t *testing.T) {
	for kind, want := range map[ExchangeKind]string{
		KindCircular:    "circular",
		KindPartitioned: "partitioned",
		KindOutlet:      "outlet",
		ExchangeKind(9): "ExchangeKind(9)",
	} {
		if got := kind.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(kind), got, want)
		}
	}
}

func TestBuildStateLifecycle(t *testing.T) {
	x := NewExchange()
	bs := x.PublishBuildState("k!build")
	if x.LookupBuildState("k!build") != bs {
		t.Fatal("build state not discoverable")
	}
	if got := x.BuildStatesInFlight(); got != 1 {
		t.Fatalf("BuildStatesInFlight = %d, want 1", got)
	}
	if !bs.Attach() || !bs.Attach() {
		t.Fatal("attach to a live build state refused")
	}
	if got := bs.Refs(); got != 2 {
		t.Fatalf("Refs = %d, want 2", got)
	}
	if _, ok := bs.Sealed(); ok {
		t.Fatal("unsealed state reports sealed")
	}
	// Releasing below zero pre-seal must not retire: a group whose only
	// member failed admission keeps its in-flight build alive.
	if bs.Release() {
		t.Fatal("pre-seal release retired the state")
	}
	bs.Seal("table")
	v, ok := bs.Sealed()
	if !ok || v != "table" {
		t.Fatalf("Sealed = (%v, %v), want (table, true)", v, ok)
	}
	// Last prober releases a sealed state: it retires and unregisters.
	if !bs.Release() {
		t.Fatal("last release of a sealed state did not retire it")
	}
	if !bs.Retired() {
		t.Fatal("state not retired")
	}
	if x.LookupBuildState("k!build") != nil {
		t.Error("retired state still discoverable")
	}
	if bs.Attach() {
		t.Error("attach to a retired state succeeded")
	}
	// Sealing a retired state must not resurrect the value.
	bs.Seal("zombie")
	if v, _ := bs.Sealed(); v != nil {
		t.Errorf("retired state resurrected value %v", v)
	}
}

func TestBuildStateOnRetireHook(t *testing.T) {
	x := NewExchange()
	bs := x.PublishBuildState("k")
	fired := 0
	bs.OnRetire(func() { fired++ })
	bs.Retire()
	bs.Retire() // idempotent
	if fired != 1 {
		t.Fatalf("retire hook fired %d times, want 1", fired)
	}
	// Setting a hook after retirement fires immediately.
	late := 0
	bs.OnRetire(func() { late++ })
	if late != 1 {
		t.Errorf("late hook fired %d times, want 1", late)
	}
}

// Superseded entries whose consumers never finish are reclaimed by the
// age-based sweep, and the supersede/reclaim counters feed workload stats.
func TestSweepReclaimsOrphans(t *testing.T) {
	x := NewExchange()
	old := x.Publish("scan", 100, 10)
	if _, ok := old.Attach(); !ok {
		t.Fatal("attach to fresh scan failed")
	}
	nw := x.Publish("scan", 100, 10) // supersedes old, which stays live
	if got := x.SupersedeCount(); got != 1 {
		t.Fatalf("SupersedeCount = %d, want 1", got)
	}
	if got := x.Orphans(); got != 1 {
		t.Fatalf("Orphans = %d, want 1", got)
	}
	if got := x.Sweep(time.Hour); got != 0 {
		t.Fatalf("young orphan swept: %d", got)
	}
	if got := x.Sweep(0); got != 1 {
		t.Fatalf("Sweep(0) reclaimed %d, want 1", got)
	}
	if !old.Closed() {
		t.Error("swept orphan scan not closed")
	}
	if nw.Closed() {
		t.Error("sweep closed the live successor")
	}
	if got := x.SweepReclaims(); got != 1 {
		t.Errorf("SweepReclaims = %d, want 1", got)
	}
	if got := x.Orphans(); got != 0 {
		t.Errorf("Orphans after sweep = %d, want 0", got)
	}
}

// An orphan whose consumers complete on their own is dropped from the
// orphan list without counting as a reclaim.
func TestSweepSkipsCompletedOrphans(t *testing.T) {
	x := NewExchange()
	old := x.PublishOutlet("k")
	x.PublishOutlet("k")
	old.Retire() // consumer group finished by itself
	if got := x.Sweep(0); got != 0 {
		t.Errorf("Sweep reclaimed %d self-closed orphans, want 0", got)
	}
	if got := x.SweepReclaims(); got != 0 {
		t.Errorf("SweepReclaims = %d, want 0", got)
	}
}

// A wedged build — published, never sealed, its group hung — is force
// retired by the sweep so waiters and memory are reclaimed.
func TestSweepReclaimsWedgedBuild(t *testing.T) {
	x := NewExchange()
	bs := x.PublishBuildState("k!build")
	bs.Attach() // a waiter that will never be served
	if got := x.Sweep(time.Hour); got != 0 {
		t.Fatalf("young build swept: %d", got)
	}
	if got := x.Sweep(0); got != 1 {
		t.Fatalf("Sweep(0) reclaimed %d, want 1", got)
	}
	if !bs.Retired() {
		t.Error("wedged build not retired")
	}
	// A sealed, referenced build is never swept.
	bs2 := x.PublishBuildState("k2!build")
	bs2.Attach()
	bs2.Seal("t")
	if got := x.Sweep(0); got != 0 {
		t.Errorf("Sweep reclaimed %d live sealed builds, want 0", got)
	}
}

// The hand-off hook receives the sealed artifact at retire — the path that
// feeds the keep-alive cache — and never fires for unsealed retirements or
// after being cleared.
func TestBuildStateHandoff(t *testing.T) {
	x := NewExchange()
	bs := x.PublishBuildState("h1")
	var got any
	bs.SetHandoff(func(v any) { got = v })
	bs.Attach()
	bs.Seal("table")
	if bs.Release() != true {
		t.Fatal("last release of sealed state did not retire")
	}
	if got != "table" {
		t.Fatalf("handoff received %v, want the sealed table", got)
	}

	// Unsealed retirement (a failed build) has no artifact to hand off.
	bs2 := x.PublishBuildState("h2")
	fired := false
	bs2.SetHandoff(func(any) { fired = true })
	bs2.Retire()
	if fired {
		t.Error("handoff fired for an unsealed retirement")
	}

	// A cleared hook stays silent, and setting one post-retire is a no-op.
	bs3 := x.PublishBuildState("h3")
	bs3.SetHandoff(func(any) { fired = true })
	bs3.SetHandoff(nil)
	bs3.Seal("t3")
	bs3.Retire()
	if fired {
		t.Error("cleared handoff fired")
	}
	bs3.SetHandoff(func(any) { fired = true })
	if fired {
		t.Error("post-retire SetHandoff fired")
	}
}

// A sweep-forced retirement of a sealed, unreferenced build hands its
// artifact off too: the sweep reclaims the exchange entry, not the value.
func TestSweepHandsOffSealedBuild(t *testing.T) {
	x := NewExchange()
	bs := x.PublishBuildState("hs")
	var got any
	bs.SetHandoff(func(v any) { got = v })
	bs.Seal("table")
	if n := x.Sweep(0); n != 1 {
		t.Fatalf("Sweep = %d, want 1 (unreferenced sealed build)", n)
	}
	if got != "table" {
		t.Fatalf("handoff received %v, want the sealed table", got)
	}
}
