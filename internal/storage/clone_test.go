package storage

import "testing"

// cloneFixture builds a batch with one column of every vector type and two
// rows of distinctive values.
func cloneFixture(t *testing.T) *Batch {
	t.Helper()
	s := MustSchema(
		Column{Name: "i", Type: Int64},
		Column{Name: "f", Type: Float64},
		Column{Name: "s", Type: String},
		Column{Name: "d", Type: Date},
	)
	b := NewBatch(s, 2)
	if err := b.AppendRow(int64(7), 1.5, "alpha", int64(9131)); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendRow(int64(-3), -2.25, "beta", int64(0)); err != nil {
		t.Fatal(err)
	}
	return b
}

// Clone must deep-copy every vector type: equal contents, fully independent
// storage.
func TestBatchCloneAllVectorTypes(t *testing.T) {
	b := cloneFixture(t)
	c := b.Clone()
	if err := c.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	if c.Len() != b.Len() {
		t.Fatalf("clone has %d rows, want %d", c.Len(), b.Len())
	}
	if c.MustCol("i").I64[0] != 7 || c.MustCol("f").F64[1] != -2.25 ||
		c.MustCol("s").Str[0] != "alpha" || c.MustCol("d").I64[0] != 9131 {
		t.Error("clone contents differ from original")
	}
	// Mutating the clone must never reach the original, for any type.
	c.MustCol("i").I64[0] = 99
	c.MustCol("f").F64[1] = 99.5
	c.MustCol("s").Str[0] = "mutated"
	c.MustCol("d").I64[0] = 1
	if b.MustCol("i").I64[0] != 7 || b.MustCol("f").F64[1] != -2.25 ||
		b.MustCol("s").Str[0] != "alpha" || b.MustCol("d").I64[0] != 9131 {
		t.Error("mutating the clone changed the original")
	}
	// And appends to the clone must not grow the original.
	c.Vecs[0].AppendInt(1)
	if b.Vecs[0].Len() != 2 {
		t.Error("appending to a cloned vector grew the original")
	}
}

// Cloning empty batches (zero rows, and zero columns) must work and stay
// independent.
func TestBatchCloneEmpty(t *testing.T) {
	s := MustSchema(Column{Name: "x", Type: Int64}, Column{Name: "y", Type: String})
	empty := NewBatch(s, 0)
	c := empty.Clone()
	if c.Len() != 0 {
		t.Fatalf("clone of empty batch has %d rows", c.Len())
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("empty clone invalid: %v", err)
	}
	c.Vecs[0].AppendInt(5)
	if empty.Vecs[0].Len() != 0 {
		t.Error("append to empty clone grew the original")
	}
	colless := &Batch{}
	if cc := colless.Clone(); len(cc.Vecs) != 0 || cc.Len() != 0 {
		t.Error("clone of column-less batch is not empty")
	}
}

// The refcounted fan-out protocol: a batch marked shared is read-only;
// Writable returns a private deep copy while readers remain and the
// original once exclusively owned again (the move path).
func TestBatchSharedWritable(t *testing.T) {
	b := cloneFixture(t)
	if b.Shared() {
		t.Fatal("fresh batch reports shared")
	}
	// Exclusive ownership: Writable is a move, not a copy.
	if w := b.Writable(); w != b {
		t.Error("Writable cloned an exclusively-owned batch")
	}
	// Fan out to 3 consumers: 2 extra readers.
	b.MarkShared(2)
	if !b.Shared() {
		t.Fatal("marked batch does not report shared")
	}
	w1 := b.Writable()
	if w1 == b {
		t.Fatal("Writable returned the shared original")
	}
	w1.MustCol("i").I64[0] = 42
	if b.MustCol("i").I64[0] != 7 {
		t.Error("write to Writable copy reached the shared page")
	}
	// One claim released by w1; one reader left.
	if !b.Shared() {
		t.Fatal("batch lost shared status while a reader remains")
	}
	w2 := b.Writable()
	if w2 == b {
		t.Fatal("Writable returned the original while still shared")
	}
	// All claims released: the last consumer owns the page and may move it.
	if b.Shared() {
		t.Fatal("batch still shared after all claims released")
	}
	if w3 := b.Writable(); w3 != b {
		t.Error("last consumer did not receive the original (move)")
	}
	// MarkShared with non-positive counts is a no-op.
	b2 := cloneFixture(t)
	b2.MarkShared(0)
	b2.MarkShared(-5)
	if b2.Shared() {
		t.Error("non-positive MarkShared made the batch shared")
	}
}

// Release drops reader claims without copying, is a guarded no-op past
// zero, and feeds the process-wide share counters next to Writable's
// move/copy split.
func TestBatchReleaseAndShareStats(t *testing.T) {
	m0, _, r0 := ShareStats()
	b := cloneFixture(t)
	b.Release() // never shared: no-op, no counter movement
	if _, _, r := ShareStats(); r != r0 {
		t.Error("Release on a never-shared batch counted")
	}
	// Fan out to 3 consumers (2 claims). Two consumers finish without
	// writing and release; the last adopter then moves instead of cloning.
	b.MarkShared(2)
	b.Release()
	b.Release()
	b.Release() // past zero: guarded no-op
	if b.Shared() {
		t.Fatal("batch still shared after releases")
	}
	if w := b.Writable(); w != b {
		t.Fatal("adopter cloned although every other reader released")
	}
	m1, c1, r1 := ShareStats()
	if r1-r0 != 2 {
		t.Errorf("releases counted = %d, want 2", r1-r0)
	}
	if m1-m0 != 1 {
		t.Errorf("moves counted = %d, want 1", m1-m0)
	}
	// A batch with a live claim still pays the clone.
	b2 := cloneFixture(t)
	b2.MarkShared(1)
	if w := b2.Writable(); w == b2 {
		t.Fatal("Writable returned the original while a reader remains")
	}
	if _, c2, _ := ShareStats(); c2-c1 != 1 {
		t.Errorf("copies counted = %d, want 1", c2-c1)
	}
}
