// Package storage implements the in-memory storage substrate of the engine:
// column-major tables, typed column vectors, tuple batches, and the packed
// page representation (default 4 KB) that Cordoba-style staged engines use to
// move intermediate results between operators.
//
// The paper's workloads are memory-resident (Section 2.3: "large memories
// mean the working set of many databases fits entirely in main memory"), so
// there is no disk layer; tables live entirely in RAM.
package storage

import (
	"errors"
	"fmt"
)

// Type enumerates column types. The TPC-H subset the paper exercises needs
// integers, floating-point numerics, dates (days since epoch) and strings.
type Type int

const (
	// Int64 is a 64-bit signed integer column.
	Int64 Type = iota
	// Float64 is a 64-bit IEEE float column.
	Float64
	// Date is a day count since 1970-01-01, stored as int64.
	Date
	// String is a variable-length string column.
	String
)

// String returns the type name.
func (t Type) String() string {
	switch t {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case Date:
		return "date"
	case String:
		return "string"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Fixed returns whether values of the type have a fixed encoded width.
func (t Type) Fixed() bool { return t != String }

// FixedWidth returns the encoded width in bytes for fixed types (8 for all
// of them) and the per-value overhead for strings.
func (t Type) FixedWidth() int { return 8 }

// Column describes one attribute of a schema.
type Column struct {
	// Name is the attribute name ("l_extendedprice").
	Name string
	// Type is the storage type.
	Type Type
}

// Schema is an ordered list of columns.
type Schema struct {
	// Cols are the attributes, in tuple order.
	Cols []Column
}

// Errors reported by schema operations.
var (
	ErrNoColumn  = errors.New("storage: no such column")
	ErrDupColumn = errors.New("storage: duplicate column name")
	ErrTypeMism  = errors.New("storage: type mismatch")
	ErrRowShape  = errors.New("storage: row arity mismatch")
)

// NewSchema builds a schema and rejects duplicate column names.
func NewSchema(cols ...Column) (Schema, error) {
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		if seen[c.Name] {
			return Schema{}, fmt.Errorf("%w: %q", ErrDupColumn, c.Name)
		}
		seen[c.Name] = true
	}
	return Schema{Cols: cols}, nil
}

// MustSchema is NewSchema that panics on error, for static definitions.
func MustSchema(cols ...Column) Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Index returns the position of the named column, or an error.
func (s Schema) Index(name string) (int, error) {
	for i, c := range s.Cols {
		if c.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: %q", ErrNoColumn, name)
}

// MustIndex is Index that panics on error, for plans built from literals.
func (s Schema) MustIndex(name string) int {
	i, err := s.Index(name)
	if err != nil {
		panic(err)
	}
	return i
}

// Arity returns the number of columns.
func (s Schema) Arity() int { return len(s.Cols) }

// Equal reports whether two schemas agree column for column (name and type).
func (s Schema) Equal(o Schema) bool {
	if len(s.Cols) != len(o.Cols) {
		return false
	}
	for i, c := range s.Cols {
		if c != o.Cols[i] {
			return false
		}
	}
	return true
}

// Project returns a schema containing only the named columns, in order.
func (s Schema) Project(names ...string) (Schema, error) {
	out := Schema{Cols: make([]Column, 0, len(names))}
	for _, n := range names {
		i, err := s.Index(n)
		if err != nil {
			return Schema{}, err
		}
		out.Cols = append(out.Cols, s.Cols[i])
	}
	return out, nil
}

// RowWidth estimates the encoded byte width of one tuple: 8 bytes per fixed
// column plus a conservative 24 bytes per string column (length prefix plus
// typical payload). Page capacity planning uses this estimate.
func (s Schema) RowWidth() int {
	w := 0
	for _, c := range s.Cols {
		if c.Type.Fixed() {
			w += c.Type.FixedWidth()
		} else {
			w += 24
		}
	}
	if w == 0 {
		w = 1
	}
	return w
}
