package tpch

// This file is the closed-form cardinality model: per-operator row estimates
// derived from the generator's known distributions, in the same spirit as the
// work model in internal/core — one set of offline-calibrated constants, no
// runtime sampling. The sharing model already prices each subplan's work in
// this currency (rows in, rows out); here the same estimates flow into the
// physical layer as pre-sizing hints for hash builds, aggregate group maps,
// sort buffers, and result sinks (NodeSpec.RowsHint), so a well-estimated
// operator allocates its working set once instead of growing it
// incrementally. Estimates are advisory: a wrong one costs the usual
// incremental growth, never correctness — the byte-identical-results tests in
// families_test.go hold with hints on or off.
//
// Generator facts the constants encode (see gen.go):
//
//   - each order carries 1 + intn(7) lineitems — mean 4;
//   - l_commitdate - o_orderdate is uniform [30, 90] while l_receiptdate -
//     o_orderdate is the sum of uniform [1, 121] and [1, 30] (mean ≈ 77,
//     wide spread), so P(commit < receipt) ≈ 0.6;
//   - about 1 comment in 33 contains "special … requests", so Q13's NOT LIKE
//     filter keeps ≈ 32/33 of orders;
//   - o_orderdate is uniform over [DateEpochStart, DateOrderEnd], so a date
//     window keeps its fractional share of orders;
//   - o_orderpriority is uniform over the 5 priorities.

// Calibrated selectivity constants.
const (
	// avgLineitemsPerOrder is the mean lineitem fan-out per order.
	avgLineitemsPerOrder = 4.0
	// lateCommitSelectivity is P(l_commitdate < l_receiptdate) under the
	// generator's date offsets — Q4's build-side filter.
	lateCommitSelectivity = 0.6
	// nonSpecialSelectivity is the fraction of orders whose comment does NOT
	// match Q13's special-requests pattern (32 of 33 comments).
	nonSpecialSelectivity = 32.0 / 33.0
)

// orderDateFraction returns the share of the generated o_orderdate domain
// covered by the window [lo, hi).
func orderDateFraction(lo, hi int64) float64 {
	span := float64(DateOrderEnd - DateEpochStart + 1)
	if hi > DateOrderEnd+1 {
		hi = DateOrderEnd + 1
	}
	if lo < DateEpochStart {
		lo = DateEpochStart
	}
	if hi <= lo || span <= 0 {
		return 0
	}
	return float64(hi-lo) / span
}

// EstimateQ4BuildRows estimates the late-commit lineitem rows hashed by Q4's
// semi-join build — the map and row-buffer pre-size of the shared build.
func EstimateQ4BuildRows(db *DB) int {
	return int(lateCommitSelectivity * float64(db.Lineitem.NumRows()))
}

// EstimateOrdersWindowRows estimates the orders falling in the orderdate
// window [lo, hi) — Q4's probe-side cardinality.
func EstimateOrdersWindowRows(db *DB, lo, hi int64) int {
	return int(orderDateFraction(lo, hi) * float64(db.Orders.NumRows()))
}

// EstimateQ13BuildRows estimates the orders surviving Q13's comment filter —
// the rows hashed (keyed by o_custkey) by the family's shared outer-join
// build.
func EstimateQ13BuildRows(db *DB) int {
	return int(nonSpecialSelectivity * float64(db.Orders.NumRows()))
}

// EstimateCustomerRangeRows estimates the customers in the key range
// [lo, hi) — Q13's probe-side cardinality (customer keys are dense 1..N).
func EstimateCustomerRangeRows(db *DB, lo, hi int64) int {
	n := int64(db.Customer.NumRows())
	if hi > n+1 {
		hi = n + 1
	}
	if lo < 1 {
		lo = 1
	}
	if hi <= lo {
		return 0
	}
	return int(hi - lo)
}

// Group-count estimates for the benchmark aggregates: these bound output
// cardinality, so they size both group maps and result sinks.
const (
	// Q1Groups is the distinct (l_returnflag, l_linestatus) combinations the
	// generator produces: {R,A}×F plus N×{O,F}.
	Q1Groups = 4
	// Q4Groups is the o_orderpriority domain size.
	Q4Groups = 5
	// Q13DistGroups caps the distinct per-customer order counts Q13's outer
	// distribution sees (counts concentrate well below this under the
	// generator's ~10 orders/customer mean).
	Q13DistGroups = 64
)
