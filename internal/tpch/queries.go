package tpch

import (
	"fmt"

	"repro/internal/relop"
	"repro/internal/storage"
)

// QueryID names the four benchmark queries the paper evaluates.
type QueryID int

const (
	// Q1 is the scan-heavy pricing summary report.
	Q1 QueryID = iota
	// Q6 is the scan-heavy forecasting revenue change query (the paper's
	// running example).
	Q6
	// Q4 is the join-heavy order priority checking query.
	Q4
	// Q13 is the join-heavy customer distribution query.
	Q13
)

// String returns the query name.
func (q QueryID) String() string {
	switch q {
	case Q1:
		return "Q1"
	case Q6:
		return "Q6"
	case Q4:
		return "Q4"
	case Q13:
		return "Q13"
	default:
		return fmt.Sprintf("QueryID(%d)", int(q))
	}
}

// ScanHeavy reports whether the query is scan-heavy (shares at the scan) or
// join-heavy (shares at the join), per the paper's Section 3 taxonomy.
func (q QueryID) ScanHeavy() bool { return q == Q1 || q == Q6 }

// AllQueries lists the benchmark queries in paper order.
var AllQueries = []QueryID{Q1, Q6, Q4, Q13}

// Run executes the query directly (single-threaded reference execution,
// no staging) and returns its result. The staged engine's output is
// cross-checked against these runners in integration tests.
func Run(q QueryID, db *DB) (*storage.Batch, error) {
	switch q {
	case Q1:
		return RunQ1(db)
	case Q6:
		return RunQ6(db)
	case Q4:
		return RunQ4(db)
	case Q13:
		return RunQ13(db)
	default:
		return nil, fmt.Errorf("tpch: unknown query %d", int(q))
	}
}

// Q6Pred is the Q6 selection: shipped within one year, discount in
// [0.05, 0.07], quantity < 24.
func Q6Pred() relop.Pred {
	return relop.And{Preds: []relop.Pred{
		relop.Cmp{Op: relop.Ge, L: relop.Col("l_shipdate"), R: relop.ConstInt{V: DateQ6Start}},
		relop.Cmp{Op: relop.Lt, L: relop.Col("l_shipdate"), R: relop.ConstInt{V: DateQ6End}},
		relop.Cmp{Op: relop.Ge, L: relop.Col("l_discount"), R: relop.ConstFloat{V: 0.05}},
		relop.Cmp{Op: relop.Le, L: relop.Col("l_discount"), R: relop.ConstFloat{V: 0.07}},
		relop.Cmp{Op: relop.Lt, L: relop.Col("l_quantity"), R: relop.ConstInt{V: 24}},
	}}
}

// RunQ6 executes TPC-H Q6: SELECT sum(l_extendedprice * l_discount) AS
// revenue FROM lineitem WHERE <Q6Pred>.
func RunQ6(db *DB) (*storage.Batch, error) {
	scanCols := []string{"l_extendedprice", "l_discount"}
	scanSchema, err := db.Lineitem.Schema().Project(scanCols...)
	if err != nil {
		return nil, err
	}
	agg, err := relop.NewHashAgg(scanSchema, nil, []relop.AggSpec{{
		Func: relop.Sum,
		Expr: relop.Arith{Op: relop.Mul, L: relop.Col("l_extendedprice"), R: relop.Col("l_discount")},
		As:   "revenue",
	}}, nil)
	if err != nil {
		return nil, err
	}
	emit, result := relop.Collect(agg.OutSchema())
	return runScanInto(db.Lineitem, Q6Pred(), scanCols, agg, emit, result)
}

// Q1Pred is the Q1 selection: l_shipdate <= 1998-12-01 - 90 days.
func Q1Pred() relop.Pred {
	return relop.Cmp{Op: relop.Le, L: relop.Col("l_shipdate"), R: relop.ConstInt{V: DateQ1Cutoff}}
}

// RunQ1 executes TPC-H Q1: the pricing summary report grouped by
// (l_returnflag, l_linestatus).
func RunQ1(db *DB) (*storage.Batch, error) {
	scanCols := []string{"l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice", "l_discount", "l_tax"}
	scanSchema, err := db.Lineitem.Schema().Project(scanCols...)
	if err != nil {
		return nil, err
	}
	discPrice := relop.Arith{Op: relop.Mul,
		L: relop.Col("l_extendedprice"),
		R: relop.Arith{Op: relop.Sub, L: relop.ConstFloat{V: 1}, R: relop.Col("l_discount")}}
	charge := relop.Arith{Op: relop.Mul, L: discPrice,
		R: relop.Arith{Op: relop.Add, L: relop.ConstFloat{V: 1}, R: relop.Col("l_tax")}}
	agg, err := relop.NewHashAgg(scanSchema, []string{"l_returnflag", "l_linestatus"}, []relop.AggSpec{
		{Func: relop.Sum, Expr: relop.Col("l_quantity"), As: "sum_qty"},
		{Func: relop.Sum, Expr: relop.Col("l_extendedprice"), As: "sum_base_price"},
		{Func: relop.Sum, Expr: discPrice, As: "sum_disc_price"},
		{Func: relop.Sum, Expr: charge, As: "sum_charge"},
		{Func: relop.Avg, Expr: relop.Col("l_quantity"), As: "avg_qty"},
		{Func: relop.Avg, Expr: relop.Col("l_extendedprice"), As: "avg_price"},
		{Func: relop.Avg, Expr: relop.Col("l_discount"), As: "avg_disc"},
		{Func: relop.Count, As: "count_order"},
	}, nil)
	if err != nil {
		return nil, err
	}
	emit, result := relop.Collect(agg.OutSchema())
	return runScanInto(db.Lineitem, Q1Pred(), scanCols, agg, emit, result)
}

// Q4OrdersPred is Q4's orders selection: one quarter of order dates.
func Q4OrdersPred() relop.Pred {
	return relop.And{Preds: []relop.Pred{
		relop.Cmp{Op: relop.Ge, L: relop.Col("o_orderdate"), R: relop.ConstInt{V: DateQ4Start}},
		relop.Cmp{Op: relop.Lt, L: relop.Col("o_orderdate"), R: relop.ConstInt{V: DateQ4End}},
	}}
}

// Q4LineitemPred is Q4's EXISTS predicate source: l_commitdate <
// l_receiptdate.
func Q4LineitemPred() relop.Pred {
	return relop.Cmp{Op: relop.Lt, L: relop.Col("l_commitdate"), R: relop.Col("l_receiptdate")}
}

// RunQ4 executes TPC-H Q4: order priority checking via a semi-join of
// late-commit lineitems against one quarter of orders.
func RunQ4(db *DB) (*storage.Batch, error) {
	lineCols := []string{"l_orderkey"}
	lineSchema, err := db.Lineitem.Schema().Project(lineCols...)
	if err != nil {
		return nil, err
	}
	orderCols := []string{"o_orderkey", "o_orderpriority"}
	orderSchema, err := db.Orders.Schema().Project(orderCols...)
	if err != nil {
		return nil, err
	}
	hj, err := relop.NewHashJoin(relop.Semi, lineSchema, "l_orderkey", orderSchema, "o_orderkey", nil)
	if err != nil {
		return nil, err
	}
	// Build: lineitems with l_commitdate < l_receiptdate.
	buildScan, err := relop.NewScan(db.Lineitem, Q4LineitemPred(), lineCols, 0, hj.PushBuild)
	if err != nil {
		return nil, err
	}
	if err := buildScan.Run(); err != nil {
		return nil, err
	}
	if err := hj.FinishBuild(); err != nil {
		return nil, err
	}
	// Probe: quarter's orders; aggregate priorities downstream.
	agg, err := relop.NewHashAgg(hj.OutSchema(), []string{"o_orderpriority"}, []relop.AggSpec{
		{Func: relop.Count, As: "order_count"},
	}, nil)
	if err != nil {
		return nil, err
	}
	emit, result := relop.Collect(agg.OutSchema())
	agg.SetEmit(emit)
	hjEmit := func(b *storage.Batch) error { return agg.Push(b) }
	hj.SetEmit(hjEmit)
	probeScan, err := relop.NewScan(db.Orders, Q4OrdersPred(), orderCols, 0, hj.Push)
	if err != nil {
		return nil, err
	}
	if err := probeScan.Run(); err != nil {
		return nil, err
	}
	if err := hj.Finish(); err != nil {
		return nil, err
	}
	if err := agg.Finish(); err != nil {
		return nil, err
	}
	return result(), nil
}

// Q13CommentPred is Q13's order filter: o_comment NOT LIKE
// '%special%requests%'.
func Q13CommentPred() relop.Pred {
	return relop.Not{P: relop.ContainsAll{Column: "o_comment", Substrings: []string{"special", "requests"}}}
}

// RunQ13 executes TPC-H Q13: the customer order-count distribution via a
// left outer join of customers against comment-filtered orders.
func RunQ13(db *DB) (*storage.Batch, error) {
	// Build side: filtered orders as (o_custkey, one).
	buildSchema := storage.MustSchema(
		storage.Column{Name: "o_custkey", Type: storage.Int64},
		storage.Column{Name: "one", Type: storage.Int64},
	)
	custCols := []string{"c_custkey"}
	custSchema, err := db.Customer.Schema().Project(custCols...)
	if err != nil {
		return nil, err
	}
	hj, err := relop.NewHashJoin(relop.LeftOuter, buildSchema, "o_custkey", custSchema, "c_custkey", nil)
	if err != nil {
		return nil, err
	}
	buildBatch := storage.NewBatch(buildSchema, 1024)
	flush := func() error {
		if buildBatch.Len() == 0 {
			return nil
		}
		err := hj.PushBuild(buildBatch)
		buildBatch = storage.NewBatch(buildSchema, 1024)
		return err
	}
	orderScan, err := relop.NewScan(db.Orders, Q13CommentPred(), []string{"o_custkey"}, 0, func(b *storage.Batch) error {
		keys := b.MustCol("o_custkey")
		for i := 0; i < b.Len(); i++ {
			if err := buildBatch.AppendRow(keys.I64[i], int64(1)); err != nil {
				return err
			}
		}
		if buildBatch.Len() >= 1024 {
			return flush()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := orderScan.Run(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if err := hj.FinishBuild(); err != nil {
		return nil, err
	}
	// Per-customer counts: sum of "one" over the outer join.
	perCust, err := relop.NewHashAgg(hj.OutSchema(), []string{"c_custkey"}, []relop.AggSpec{
		{Func: relop.Sum, Expr: relop.Col("one"), As: "c_count_f"},
	}, nil)
	if err != nil {
		return nil, err
	}
	// Distribution: group by c_count.
	distSchema := storage.MustSchema(storage.Column{Name: "c_count", Type: storage.Int64})
	dist, err := relop.NewHashAgg(distSchema, []string{"c_count"}, []relop.AggSpec{
		{Func: relop.Count, As: "custdist"},
	}, nil)
	if err != nil {
		return nil, err
	}
	emit, result := relop.Collect(dist.OutSchema())
	dist.SetEmit(emit)
	perCust.SetEmit(func(b *storage.Batch) error {
		counts := b.MustCol("c_count_f")
		out := storage.NewBatch(distSchema, b.Len())
		for i := 0; i < b.Len(); i++ {
			if err := out.AppendRow(int64(counts.F64[i])); err != nil {
				return err
			}
		}
		return dist.Push(out)
	})
	hj.SetEmit(perCust.Push)
	custScan, err := relop.NewScan(db.Customer, nil, custCols, 0, hj.Push)
	if err != nil {
		return nil, err
	}
	if err := custScan.Run(); err != nil {
		return nil, err
	}
	if err := hj.Finish(); err != nil {
		return nil, err
	}
	if err := perCust.Finish(); err != nil {
		return nil, err
	}
	if err := dist.Finish(); err != nil {
		return nil, err
	}
	return result(), nil
}

// runScanInto wires a scan into a terminal aggregate and returns its result.
func runScanInto(tbl *storage.Table, pred relop.Pred, cols []string, agg *relop.HashAgg, emit relop.Emit, result func() *storage.Batch) (*storage.Batch, error) {
	agg.SetEmit(emit)
	sc, err := relop.NewScan(tbl, pred, cols, 0, agg.Push)
	if err != nil {
		return nil, err
	}
	if err := sc.Run(); err != nil {
		return nil, err
	}
	if err := agg.Finish(); err != nil {
		return nil, err
	}
	return result(), nil
}
