package tpch

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/relop"
	"repro/internal/storage"
)

// This file defines query families: groups of related-but-not-identical
// queries whose plans share a common subplan prefix, exercising the
// pivot-above-the-scan machinery of PR 3.
//
//   - The Q1 family varies the grouping of the pricing summary report. All
//     variants run the identical filtered lineitem pass (one share key at
//     the scan), then diverge at their aggregates. Two arrivals of the SAME
//     variant additionally offer the aggregate itself as a pivot candidate:
//     the whole query runs once and only final rows fan out.
//   - The Q6 family varies the forecasting query's shipdate window inside
//     the spec's one-year range. Variants scan with the family's superset
//     predicate (the full year) and each member applies its variant's
//     residual date filter in its private chain — the superset-scan +
//     residual-filter pattern. Identical variants may again lift the pivot
//     to the aggregate.
//
// Every spec declares pivot candidates highest level first, with the work
// model compiled at each level, so model-guided policies can pick the
// highest beneficial sharing point per group.

// Q6FamilyVariants and Q1FamilyVariants are the family sizes.
const (
	Q6FamilyVariants = 3
	Q1FamilyVariants = 3
)

// q6FamilyWindow returns the variant's shipdate window [lo, hi) inside the
// family's superset range. Variant 0 is the full spec year; 1 and 2 are its
// halves.
func q6FamilyWindow(variant int) (lo, hi int64) {
	mid := MustDate(1994, 7, 1)
	switch variant % Q6FamilyVariants {
	case 1:
		return DateQ6Start, mid
	case 2:
		return mid, DateQ6End
	default:
		return DateQ6Start, DateQ6End
	}
}

// q6SupersetPred is the family's shared scan predicate: every clause of
// Q6Pred except the variant-specific shipdate bounds, plus the widest
// window, so each variant's rows are a subset of the scan's output.
func q6SupersetPred() relop.Pred {
	return relop.And{Preds: []relop.Pred{
		relop.Cmp{Op: relop.Ge, L: relop.Col("l_shipdate"), R: relop.ConstInt{V: DateQ6Start}},
		relop.Cmp{Op: relop.Lt, L: relop.Col("l_shipdate"), R: relop.ConstInt{V: DateQ6End}},
		relop.Cmp{Op: relop.Ge, L: relop.Col("l_discount"), R: relop.ConstFloat{V: 0.05}},
		relop.Cmp{Op: relop.Le, L: relop.Col("l_discount"), R: relop.ConstFloat{V: 0.07}},
		relop.Cmp{Op: relop.Lt, L: relop.Col("l_quantity"), R: relop.ConstInt{V: 24}},
	}}
}

// q6ResidualPred is the variant's private filter over the superset scan.
func q6ResidualPred(variant int) relop.Pred {
	lo, hi := q6FamilyWindow(variant)
	return relop.And{Preds: []relop.Pred{
		relop.Cmp{Op: relop.Ge, L: relop.Col("l_shipdate"), R: relop.ConstInt{V: lo}},
		relop.Cmp{Op: relop.Lt, L: relop.Col("l_shipdate"), R: relop.ConstInt{V: hi}},
	}}
}

// Q6FamilyModel returns the variant-independent work model of a Q6 family
// member compiled at a pivot level: level 0 is the scan (the paper's Q6
// coefficients with the residual filter as extra above-pivot work), level 1
// the residual filter, level 2 the aggregate (everything below runs once
// per group; only final rows are handed to each consumer).
func Q6FamilyModel(level int) core.Query {
	base := core.Q6Paper() // w=9.66 s=10.34 at the scan, p=0.97 above
	const residual = 0.5
	scanP := base.PivotW + base.PivotS
	switch level {
	case 2:
		return core.Query{
			Name:   "TPC-H Q6 family @agg",
			Below:  []float64{scanP, residual},
			PivotW: base.Above[0],
			PivotS: 0.05,
		}
	case 1:
		return core.Query{
			Name:   "TPC-H Q6 family @residual",
			Below:  []float64{scanP},
			PivotW: residual,
			PivotS: base.PivotS * 0.5, // residual output is a subset of the scan's
			Above:  append([]float64(nil), base.Above...),
		}
	default:
		return core.Query{
			Name:   "TPC-H Q6 family @scan",
			PivotW: base.PivotW,
			PivotS: base.PivotS,
			Above:  []float64{residual, base.Above[0]},
		}
	}
}

// Q6FamilySpec builds the engine spec of one Q6 family variant: superset
// scan (shared prefix), residual date filter, revenue aggregate. The spec
// anchors at the scan by default and offers the aggregate as the higher
// pivot candidate.
func Q6FamilySpec(db *DB, pageRows, variant int) engine.QuerySpec {
	variant = variant % Q6FamilyVariants
	scanCols := []string{"l_extendedprice", "l_discount", "l_shipdate"}
	scanSchema, err := db.Lineitem.Schema().Project(scanCols...)
	if err != nil {
		panic(err)
	}
	agg := func(emit relop.Emit) (relop.Operator, error) {
		return relop.NewHashAgg(scanSchema, nil, []relop.AggSpec{{
			Func: relop.Sum,
			Expr: relop.Arith{Op: relop.Mul, L: relop.Col("l_extendedprice"), R: relop.Col("l_discount")},
			As:   "revenue",
		}}, emit)
	}
	residual := q6ResidualPred(variant)
	return engine.QuerySpec{
		Signature: fmt.Sprintf("tpch/q6f/v%d", variant),
		Model:     Q6FamilyModel(0),
		Pivot:     0,
		Pivots: []engine.PivotOption{
			{Pivot: 2, Model: Q6FamilyModel(2)},
			{Pivot: 0, Model: Q6FamilyModel(0)},
		},
		Nodes: []engine.NodeSpec{
			engine.ScanNode("q6f/scan-lineitem", db.Lineitem, q6SupersetPred(), scanCols, pageRows),
			{
				Name:        "q6f/residual",
				Input:       0,
				Fingerprint: fmt.Sprintf("q6f/residual[v=%d]", variant),
				Op: func(emit relop.Emit) (relop.Operator, error) {
					return relop.NewFilter(residual, scanSchema, emit), nil
				},
			},
			{
				Name:        "q6f/agg",
				Input:       1,
				Fingerprint: fmt.Sprintf("q6f/agg[v=%d]", variant),
				Op:          agg,
			},
		},
	}
}

// Q6FamilyReference executes a Q6 family variant single-threaded (scan with
// the variant's full predicate, no sharing machinery), the ground truth the
// engine's shared execution is checked against.
func Q6FamilyReference(db *DB, variant int) (*storage.Batch, error) {
	lo, hi := q6FamilyWindow(variant)
	pred := relop.And{Preds: []relop.Pred{
		relop.Cmp{Op: relop.Ge, L: relop.Col("l_shipdate"), R: relop.ConstInt{V: lo}},
		relop.Cmp{Op: relop.Lt, L: relop.Col("l_shipdate"), R: relop.ConstInt{V: hi}},
		relop.Cmp{Op: relop.Ge, L: relop.Col("l_discount"), R: relop.ConstFloat{V: 0.05}},
		relop.Cmp{Op: relop.Le, L: relop.Col("l_discount"), R: relop.ConstFloat{V: 0.07}},
		relop.Cmp{Op: relop.Lt, L: relop.Col("l_quantity"), R: relop.ConstInt{V: 24}},
	}}
	scanCols := []string{"l_extendedprice", "l_discount", "l_shipdate"}
	scanSchema, err := db.Lineitem.Schema().Project(scanCols...)
	if err != nil {
		return nil, err
	}
	agg, err := relop.NewHashAgg(scanSchema, nil, []relop.AggSpec{{
		Func: relop.Sum,
		Expr: relop.Arith{Op: relop.Mul, L: relop.Col("l_extendedprice"), R: relop.Col("l_discount")},
		As:   "revenue",
	}}, nil)
	if err != nil {
		return nil, err
	}
	emit, result := relop.Collect(agg.OutSchema())
	return runScanInto(db.Lineitem, pred, scanCols, agg, emit, result)
}

// q1FamilyGroupBy returns the variant's grouping columns: the classic
// (l_returnflag, l_linestatus) report and its two single-column rollups.
func q1FamilyGroupBy(variant int) []string {
	switch variant % Q1FamilyVariants {
	case 1:
		return []string{"l_returnflag"}
	case 2:
		return []string{"l_linestatus"}
	default:
		return []string{"l_returnflag", "l_linestatus"}
	}
}

// Q1FamilyModel returns the work model of a Q1 family member at a pivot
// level: 0 the scan (the calibrated Q1 coefficients), 1 the aggregate.
// The family plan is shaped exactly like the benchmark Q1 plan, so both
// levels delegate to ModelAt.
func Q1FamilyModel(level int) core.Query { return ModelAt(Q1, level) }

// Q1FamilySpec builds the engine spec of one Q1 family variant: the shared
// Q1 lineitem pass feeding a variant grouping of the full aggregate list.
// Variants share the scan with each other and the whole plan with arrivals
// of the same variant; the parallel forms are kept, so the spec also
// remains eligible for partitioned-clone execution.
func Q1FamilySpec(db *DB, pageRows, variant int) engine.QuerySpec {
	variant = variant % Q1FamilyVariants
	scanCols := []string{"l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice", "l_discount", "l_tax"}
	scanSchema, err := db.Lineitem.Schema().Project(scanCols...)
	if err != nil {
		panic(err)
	}
	groupBy := q1FamilyGroupBy(variant)
	op, partial, merge := aggForms(scanSchema, groupBy, q1AggSpecs())
	return engine.QuerySpec{
		Signature: fmt.Sprintf("tpch/q1f/v%d", variant),
		Model:     Q1FamilyModel(0),
		Pivot:     0,
		Pivots: []engine.PivotOption{
			{Pivot: 1, Model: Q1FamilyModel(1)},
			{Pivot: 0, Model: Q1FamilyModel(0)},
		},
		Nodes: []engine.NodeSpec{
			engine.ScanNode("q1f/scan-lineitem", db.Lineitem, Q1Pred(), scanCols, pageRows),
			{
				Name:        "q1f/agg",
				Input:       0,
				Fingerprint: fmt.Sprintf("q1f/agg[gb=%v]", groupBy),
				Op:          op,
				Partial:     partial,
				Merge:       merge,
			},
		},
	}
}

// q1AggSpecs is the Q1 aggregate list shared by every family variant.
func q1AggSpecs() []relop.AggSpec {
	discPrice := relop.Arith{Op: relop.Mul,
		L: relop.Col("l_extendedprice"),
		R: relop.Arith{Op: relop.Sub, L: relop.ConstFloat{V: 1}, R: relop.Col("l_discount")}}
	charge := relop.Arith{Op: relop.Mul, L: discPrice,
		R: relop.Arith{Op: relop.Add, L: relop.ConstFloat{V: 1}, R: relop.Col("l_tax")}}
	return []relop.AggSpec{
		{Func: relop.Sum, Expr: relop.Col("l_quantity"), As: "sum_qty"},
		{Func: relop.Sum, Expr: relop.Col("l_extendedprice"), As: "sum_base_price"},
		{Func: relop.Sum, Expr: discPrice, As: "sum_disc_price"},
		{Func: relop.Sum, Expr: charge, As: "sum_charge"},
		{Func: relop.Avg, Expr: relop.Col("l_quantity"), As: "avg_qty"},
		{Func: relop.Avg, Expr: relop.Col("l_extendedprice"), As: "avg_price"},
		{Func: relop.Avg, Expr: relop.Col("l_discount"), As: "avg_disc"},
		{Func: relop.Count, As: "count_order"},
	}
}

// Q1FamilyReference executes a Q1 family variant single-threaded.
func Q1FamilyReference(db *DB, variant int) (*storage.Batch, error) {
	scanCols := []string{"l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice", "l_discount", "l_tax"}
	scanSchema, err := db.Lineitem.Schema().Project(scanCols...)
	if err != nil {
		return nil, err
	}
	agg, err := relop.NewHashAgg(scanSchema, q1FamilyGroupBy(variant), q1AggSpecs(), nil)
	if err != nil {
		return nil, err
	}
	emit, result := relop.Collect(agg.OutSchema())
	return runScanInto(db.Lineitem, Q1Pred(), scanCols, agg, emit, result)
}
