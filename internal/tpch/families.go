package tpch

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/relop"
	"repro/internal/storage"
)

// This file defines query families: groups of related-but-not-identical
// queries whose plans share a common subplan prefix, exercising the
// pivot-above-the-scan machinery of PR 3.
//
//   - The Q1 family varies the grouping of the pricing summary report. All
//     variants run the identical filtered lineitem pass (one share key at
//     the scan), then diverge at their aggregates. Two arrivals of the SAME
//     variant additionally offer the aggregate itself as a pivot candidate:
//     the whole query runs once and only final rows fan out.
//   - The Q6 family varies the forecasting query's shipdate window inside
//     the spec's one-year range. Variants scan with the family's superset
//     predicate (the full year) and each member applies its variant's
//     residual date filter in its private chain — the superset-scan +
//     residual-filter pattern. Identical variants may again lift the pivot
//     to the aggregate.
//
// Every spec declares pivot candidates highest level first, with the work
// model compiled at each level, so model-guided policies can pick the
// highest beneficial sharing point per group.

//   - The Q4 family varies the order-priority query's orderdate window
//     inside the spec's quarter. Every variant probes a different slice of
//     orders, but the semi-join's build side — the late-commit lineitem
//     subplan — is byte-for-byte the same subtree, so variants cannot merge
//     at the join yet fingerprint-match at the build: the engine runs one
//     hash build and each variant probes it privately (the hybrid-hash-join
//     reuse case).
//   - The Q13 family varies which customer segment is counted (custkey
//     ranges standing in for market segments). The probe side differs per
//     variant while the filtered-orders build subtree (scan + tag) is
//     shared, again one build for the whole family.
//
// Q6FamilyVariants and friends are the family sizes.
const (
	Q6FamilyVariants  = 3
	Q1FamilyVariants  = 3
	Q4FamilyVariants  = 3
	Q13FamilyVariants = 3
)

// q6FamilyWindow returns the variant's shipdate window [lo, hi) inside the
// family's superset range. Variant 0 is the full spec year; 1 and 2 are its
// halves.
func q6FamilyWindow(variant int) (lo, hi int64) {
	mid := MustDate(1994, 7, 1)
	switch variant % Q6FamilyVariants {
	case 1:
		return DateQ6Start, mid
	case 2:
		return mid, DateQ6End
	default:
		return DateQ6Start, DateQ6End
	}
}

// q6SupersetPred is the family's shared scan predicate: every clause of
// Q6Pred except the variant-specific shipdate bounds, plus the widest
// window, so each variant's rows are a subset of the scan's output.
func q6SupersetPred() relop.Pred {
	return relop.And{Preds: []relop.Pred{
		relop.Cmp{Op: relop.Ge, L: relop.Col("l_shipdate"), R: relop.ConstInt{V: DateQ6Start}},
		relop.Cmp{Op: relop.Lt, L: relop.Col("l_shipdate"), R: relop.ConstInt{V: DateQ6End}},
		relop.Cmp{Op: relop.Ge, L: relop.Col("l_discount"), R: relop.ConstFloat{V: 0.05}},
		relop.Cmp{Op: relop.Le, L: relop.Col("l_discount"), R: relop.ConstFloat{V: 0.07}},
		relop.Cmp{Op: relop.Lt, L: relop.Col("l_quantity"), R: relop.ConstInt{V: 24}},
	}}
}

// q6ResidualPred is the variant's private filter over the superset scan.
func q6ResidualPred(variant int) relop.Pred {
	lo, hi := q6FamilyWindow(variant)
	return relop.And{Preds: []relop.Pred{
		relop.Cmp{Op: relop.Ge, L: relop.Col("l_shipdate"), R: relop.ConstInt{V: lo}},
		relop.Cmp{Op: relop.Lt, L: relop.Col("l_shipdate"), R: relop.ConstInt{V: hi}},
	}}
}

// Q6FamilyModel returns the variant-independent work model of a Q6 family
// member compiled at a pivot level: level 0 is the scan (the paper's Q6
// coefficients with the residual filter as extra above-pivot work), level 1
// the residual filter, level 2 the aggregate (everything below runs once
// per group; only final rows are handed to each consumer).
func Q6FamilyModel(level int) core.Query {
	base := core.Q6Paper() // w=9.66 s=10.34 at the scan, p=0.97 above
	const residual = 0.5
	scanP := base.PivotW + base.PivotS
	switch level {
	case 2:
		return core.Query{
			Name:   "TPC-H Q6 family @agg",
			Below:  []float64{scanP, residual},
			PivotW: base.Above[0],
			PivotS: 0.05,
		}
	case 1:
		return core.Query{
			Name:   "TPC-H Q6 family @residual",
			Below:  []float64{scanP},
			PivotW: residual,
			PivotS: base.PivotS * 0.5, // residual output is a subset of the scan's
			Above:  append([]float64(nil), base.Above...),
		}
	default:
		return core.Query{
			Name:   "TPC-H Q6 family @scan",
			PivotW: base.PivotW,
			PivotS: base.PivotS,
			Above:  []float64{residual, base.Above[0]},
		}
	}
}

// Q6FamilySpec builds the engine spec of one Q6 family variant: superset
// scan (shared prefix), residual date filter, revenue aggregate. The spec
// anchors at the scan by default and offers the aggregate as the higher
// pivot candidate.
func Q6FamilySpec(db *DB, pageRows, variant int) engine.QuerySpec {
	variant = variant % Q6FamilyVariants
	scanCols := []string{"l_extendedprice", "l_discount", "l_shipdate"}
	scanSchema, err := db.Lineitem.Schema().Project(scanCols...)
	if err != nil {
		panic(err)
	}
	agg, aggPartial, aggMerge := aggForms(scanSchema, nil, []relop.AggSpec{{
		Func: relop.Sum,
		Expr: relop.Arith{Op: relop.Mul, L: relop.Col("l_extendedprice"), R: relop.Col("l_discount")},
		As:   "revenue",
	}}, 1)
	residual := q6ResidualPred(variant)
	sig := fmt.Sprintf("tpch/q6f/v%d", variant)
	return engine.QuerySpec{
		Signature: sig,
		PlanKey:   sig,
		Model:     Q6FamilyModel(0),
		Pivot:     0,
		Pivots: []engine.PivotOption{
			{Pivot: 2, Model: Q6FamilyModel(2)},
			{Pivot: 0, Model: Q6FamilyModel(0)},
		},
		Nodes: []engine.NodeSpec{
			engine.ScanNode("q6f/scan-lineitem", db.Lineitem, q6SupersetPred(), scanCols, pageRows),
			{
				Name:        "q6f/residual",
				Input:       0,
				Fingerprint: fmt.Sprintf("q6f/residual[v=%d]", variant),
				Op: func(emit relop.Emit) (relop.Operator, error) {
					return relop.NewFilter(residual, scanSchema, emit), nil
				},
			},
			{
				Name:        "q6f/agg",
				Input:       1,
				Fingerprint: fmt.Sprintf("q6f/agg[v=%d]", variant),
				Op:          agg,
				Partial:     aggPartial,
				Merge:       aggMerge,
				RowsHint:    1,
			},
		},
	}
}

// Q6FamilyReference executes a Q6 family variant single-threaded (scan with
// the variant's full predicate, no sharing machinery), the ground truth the
// engine's shared execution is checked against.
func Q6FamilyReference(db *DB, variant int) (*storage.Batch, error) {
	lo, hi := q6FamilyWindow(variant)
	pred := relop.And{Preds: []relop.Pred{
		relop.Cmp{Op: relop.Ge, L: relop.Col("l_shipdate"), R: relop.ConstInt{V: lo}},
		relop.Cmp{Op: relop.Lt, L: relop.Col("l_shipdate"), R: relop.ConstInt{V: hi}},
		relop.Cmp{Op: relop.Ge, L: relop.Col("l_discount"), R: relop.ConstFloat{V: 0.05}},
		relop.Cmp{Op: relop.Le, L: relop.Col("l_discount"), R: relop.ConstFloat{V: 0.07}},
		relop.Cmp{Op: relop.Lt, L: relop.Col("l_quantity"), R: relop.ConstInt{V: 24}},
	}}
	scanCols := []string{"l_extendedprice", "l_discount", "l_shipdate"}
	scanSchema, err := db.Lineitem.Schema().Project(scanCols...)
	if err != nil {
		return nil, err
	}
	agg, err := relop.NewHashAgg(scanSchema, nil, []relop.AggSpec{{
		Func: relop.Sum,
		Expr: relop.Arith{Op: relop.Mul, L: relop.Col("l_extendedprice"), R: relop.Col("l_discount")},
		As:   "revenue",
	}}, nil)
	if err != nil {
		return nil, err
	}
	emit, result := relop.Collect(agg.OutSchema())
	return runScanInto(db.Lineitem, pred, scanCols, agg, emit, result)
}

// q4FamilyWindow returns the variant's orderdate window [lo, hi) inside the
// spec quarter. Variant 0 is the full quarter; 1 and 2 are its halves.
func q4FamilyWindow(variant int) (lo, hi int64) {
	mid := MustDate(1993, 8, 15)
	switch variant % Q4FamilyVariants {
	case 1:
		return DateQ4Start, mid
	case 2:
		return mid, DateQ4End
	default:
		return DateQ4Start, DateQ4End
	}
}

// q4FamilyOrdersPred is the variant's orders selection.
func q4FamilyOrdersPred(variant int) relop.Pred {
	lo, hi := q4FamilyWindow(variant)
	return relop.And{Preds: []relop.Pred{
		relop.Cmp{Op: relop.Ge, L: relop.Col("o_orderdate"), R: relop.ConstInt{V: lo}},
		relop.Cmp{Op: relop.Lt, L: relop.Col("o_orderdate"), R: relop.ConstInt{V: hi}},
	}}
}

// Q4FamilyModel returns the work model of a Q4 family member at a pivot
// level: 2 the semi-join (variants with identical windows merge there), 0
// the lineitem build side (any two variants merge there — one hash build
// amortized over the family's probes).
func Q4FamilyModel(level int) core.Query {
	if level == 0 {
		m := BuildModel(Q4)
		m.Name = "TPC-H Q4 family @build"
		return m
	}
	m := Model(Q4)
	m.Name = "TPC-H Q4 family @join"
	return m
}

// Q4FamilySpec builds the engine spec of one Q4 family variant: the shared
// late-commit lineitem build feeding a semi-join probed by the variant's
// orderdate window, counted per priority. The spec anchors at the join and
// offers the build subtree as the lower, cross-variant candidate.
func Q4FamilySpec(db *DB, pageRows, variant int) engine.QuerySpec {
	return q4FamilySpec(db, pageRows, variant, true)
}

// Q4FamilySpecNoHints is Q4FamilySpec with the cardinality-model pre-sizing
// hints disabled — the unsized arm of the pre-sizing ablation. Results are
// byte-identical to the hinted spec; only allocation behavior differs.
func Q4FamilySpecNoHints(db *DB, pageRows, variant int) engine.QuerySpec {
	return q4FamilySpec(db, pageRows, variant, false)
}

func q4FamilySpec(db *DB, pageRows, variant int, hints bool) engine.QuerySpec {
	variant = variant % Q4FamilyVariants
	lineSchema := storage.MustSchema(storage.Column{Name: "l_orderkey", Type: storage.Int64})
	orderCols := []string{"o_orderkey", "o_orderpriority"}
	orderSchema, err := db.Orders.Schema().Project(orderCols...)
	if err != nil {
		panic(err)
	}
	buildHint, aggHint := 0, 0
	if hints {
		buildHint = EstimateQ4BuildRows(db)
		aggHint = Q4Groups
	}
	q4AggOp, q4AggPartial, q4AggMerge := aggForms(orderSchema, []string{"o_orderpriority"}, []relop.AggSpec{
		{Func: relop.Count, As: "order_count"},
	}, aggHint)
	sig := fmt.Sprintf("tpch/q4f/v%d", variant)
	return engine.QuerySpec{
		Signature: sig,
		PlanKey:   sig,
		Model:     Q4FamilyModel(2),
		Pivot:     2,
		Pivots: []engine.PivotOption{
			{Pivot: 2, Model: Q4FamilyModel(2)},
			{Pivot: 0, Build: true, Model: Q4FamilyModel(0)},
		},
		Nodes: []engine.NodeSpec{
			engine.ScanNode("q4f/scan-lineitem", db.Lineitem, Q4LineitemPred(), []string{"l_orderkey"}, pageRows),
			engine.ScanNode("q4f/scan-orders", db.Orders, q4FamilyOrdersPred(variant), orderCols, pageRows),
			semiJoinNode("q4f/semijoin", lineSchema, orderSchema, 0, 1, buildHint),
			{Name: "q4f/agg", Input: 2, Fingerprint: "q4f/agg", RowsHint: aggHint,
				Op: q4AggOp, Partial: q4AggPartial, Merge: q4AggMerge},
		},
	}
}

// Q4FamilyBuildPred returns the family's build-side predicate restricted to
// the first buildFrac of the orderkey space: the late-commit clause plus
// l_orderkey < cut, so the hash build's row count — and therefore the build
// cost w_b — scales with buildFrac. The build-share ablation sweeps it
// against the probe fan-in. buildFrac ≥ 1 keeps the full build.
func Q4FamilyBuildPred(db *DB, buildFrac float64) relop.Pred {
	if buildFrac >= 1 {
		return Q4LineitemPred()
	}
	cut := int64(1 + buildFrac*float64(db.Orders.NumRows()))
	return relop.And{Preds: []relop.Pred{
		relop.Cmp{Op: relop.Lt, L: relop.Col("l_commitdate"), R: relop.Col("l_receiptdate")},
		relop.Cmp{Op: relop.Lt, L: relop.Col("l_orderkey"), R: relop.ConstInt{V: cut}},
	}}
}

// Q4FamilySpecSized is Q4FamilySpec with the build side restricted to
// buildFrac of the orderkey space — the ablation's build-cost axis. All
// variants at one buildFrac still share one build (the build subtree is
// variant-independent).
func Q4FamilySpecSized(db *DB, pageRows, variant int, buildFrac float64) engine.QuerySpec {
	spec := Q4FamilySpec(db, pageRows, variant)
	spec.Signature = fmt.Sprintf("%s/bf%.2f", spec.Signature, buildFrac)
	// The restricted build side changes the plan, so the compile-cache key
	// must carry the buildFrac suffix too.
	spec.PlanKey = spec.Signature
	spec.Nodes[0].Scan.Pred = Q4FamilyBuildPred(db, buildFrac)
	return spec
}

// Q4FamilyReference executes a Q4 family variant single-threaded: the
// ground truth shared execution is checked against.
func Q4FamilyReference(db *DB, variant int) (*storage.Batch, error) {
	lineCols := []string{"l_orderkey"}
	lineSchema, err := db.Lineitem.Schema().Project(lineCols...)
	if err != nil {
		return nil, err
	}
	orderCols := []string{"o_orderkey", "o_orderpriority"}
	orderSchema, err := db.Orders.Schema().Project(orderCols...)
	if err != nil {
		return nil, err
	}
	hj, err := relop.NewHashJoin(relop.Semi, lineSchema, "l_orderkey", orderSchema, "o_orderkey", nil)
	if err != nil {
		return nil, err
	}
	buildScan, err := relop.NewScan(db.Lineitem, Q4LineitemPred(), lineCols, 0, hj.PushBuild)
	if err != nil {
		return nil, err
	}
	if err := buildScan.Run(); err != nil {
		return nil, err
	}
	if err := hj.FinishBuild(); err != nil {
		return nil, err
	}
	agg, err := relop.NewHashAgg(hj.OutSchema(), []string{"o_orderpriority"}, []relop.AggSpec{
		{Func: relop.Count, As: "order_count"},
	}, nil)
	if err != nil {
		return nil, err
	}
	emit, result := relop.Collect(agg.OutSchema())
	agg.SetEmit(emit)
	hj.SetEmit(agg.Push)
	probeScan, err := relop.NewScan(db.Orders, q4FamilyOrdersPred(variant), orderCols, 0, hj.Push)
	if err != nil {
		return nil, err
	}
	if err := probeScan.Run(); err != nil {
		return nil, err
	}
	if err := hj.Finish(); err != nil {
		return nil, err
	}
	if err := agg.Finish(); err != nil {
		return nil, err
	}
	return result(), nil
}

// q13FamilyCustRange returns the variant's customer key range [lo, hi):
// variant 0 is every customer, 1 and 2 split the key space in half.
func q13FamilyCustRange(db *DB, variant int) (lo, hi int64) {
	n := int64(db.Customer.NumRows())
	switch variant % Q13FamilyVariants {
	case 1:
		return 1, n/2 + 1
	case 2:
		return n/2 + 1, n + 1
	default:
		return 1, n + 1
	}
}

// q13FamilyCustPred is the variant's customer selection.
func q13FamilyCustPred(db *DB, variant int) relop.Pred {
	lo, hi := q13FamilyCustRange(db, variant)
	return relop.And{Preds: []relop.Pred{
		relop.Cmp{Op: relop.Ge, L: relop.Col("c_custkey"), R: relop.ConstInt{V: lo}},
		relop.Cmp{Op: relop.Lt, L: relop.Col("c_custkey"), R: relop.ConstInt{V: hi}},
	}}
}

// Q13FamilyModel returns the work model of a Q13 family member at a pivot
// level: 3 the outer join, 1 the filtered-orders build subtree.
func Q13FamilyModel(level int) core.Query {
	if level == 1 {
		m := BuildModel(Q13)
		m.Name = "TPC-H Q13 family @build"
		return m
	}
	m := Model(Q13)
	m.Name = "TPC-H Q13 family @join"
	return m
}

// Q13FamilySpec builds the engine spec of one Q13 family variant: the
// shared filtered-orders build (scan + tag) outer-joined against the
// variant's customer segment, counted into the order-count distribution.
func Q13FamilySpec(db *DB, pageRows, variant int) engine.QuerySpec {
	return q13FamilySpec(db, pageRows, variant, true)
}

// Q13FamilySpecNoHints is Q13FamilySpec with the cardinality-model
// pre-sizing hints disabled — the unsized arm of the pre-sizing ablation.
func Q13FamilySpecNoHints(db *DB, pageRows, variant int) engine.QuerySpec {
	return q13FamilySpec(db, pageRows, variant, false)
}

func q13FamilySpec(db *DB, pageRows, variant int, hints bool) engine.QuerySpec {
	variant = variant % Q13FamilyVariants
	orderScanSchema := storage.MustSchema(storage.Column{Name: "o_custkey", Type: storage.Int64})
	buildSchema := storage.MustSchema(
		storage.Column{Name: "o_custkey", Type: storage.Int64},
		storage.Column{Name: "one", Type: storage.Int64},
	)
	custSchema := storage.MustSchema(storage.Column{Name: "c_custkey", Type: storage.Int64})
	joinOut := storage.MustSchema(
		storage.Column{Name: "c_custkey", Type: storage.Int64},
		storage.Column{Name: "one", Type: storage.Int64},
	)
	perCustOut := storage.MustSchema(
		storage.Column{Name: "c_custkey", Type: storage.Int64},
		storage.Column{Name: "c_count", Type: storage.Float64},
	)
	buildHint, custHint, distHint := 0, 0, 0
	if hints {
		lo, hi := q13FamilyCustRange(db, variant)
		buildHint = EstimateQ13BuildRows(db)
		custHint = EstimateCustomerRangeRows(db, lo, hi)
		distHint = Q13DistGroups
	}
	distOp, distPartial, distMerge := aggForms(perCustOut, []string{"c_count"}, []relop.AggSpec{
		{Func: relop.Count, As: "custdist"},
	}, distHint)
	sig := fmt.Sprintf("tpch/q13f/v%d", variant)
	return engine.QuerySpec{
		Signature: sig,
		PlanKey:   sig,
		Model:     Q13FamilyModel(3),
		Pivot:     3,
		Pivots: []engine.PivotOption{
			{Pivot: 3, Model: Q13FamilyModel(3)},
			{Pivot: 1, Build: true, Model: Q13FamilyModel(1)},
		},
		Nodes: []engine.NodeSpec{
			engine.ScanNode("q13f/scan-orders", db.Orders, Q13CommentPred(), []string{"o_custkey"}, pageRows),
			{Name: "q13f/tag", Input: 0, Fingerprint: "q13f/tag", Op: func(emit relop.Emit) (relop.Operator, error) {
				return relop.NewProject(orderScanSchema, []relop.ProjectCol{
					{As: "o_custkey", Expr: relop.Col("o_custkey")},
					{As: "one", Expr: relop.ConstInt{V: 1}},
				}, emit)
			}},
			engine.ScanNode("q13f/scan-customer", db.Customer, q13FamilyCustPred(db, variant), []string{"c_custkey"}, pageRows),
			outerJoinNode("q13f/outerjoin", buildSchema, custSchema, 1, 2, buildHint),
			{Name: "q13f/percust", Input: 3, Fingerprint: "q13f/percust", RowsHint: custHint, Op: func(emit relop.Emit) (relop.Operator, error) {
				return relop.NewHashAggSized(joinOut, []string{"c_custkey"}, []relop.AggSpec{
					{Func: relop.Sum, Expr: relop.Col("one"), As: "c_count"},
				}, custHint, emit)
			}},
			{Name: "q13f/dist", Input: 4, Fingerprint: "q13f/dist", RowsHint: distHint,
				Op: distOp, Partial: distPartial, Merge: distMerge},
		},
	}
}

// Q13FamilyReference executes a Q13 family variant single-threaded with the
// engine plan's operators (float c_count, like q13Spec), so shared engine
// results can be compared byte for byte.
func Q13FamilyReference(db *DB, variant int) (*storage.Batch, error) {
	buildSchema := storage.MustSchema(
		storage.Column{Name: "o_custkey", Type: storage.Int64},
		storage.Column{Name: "one", Type: storage.Int64},
	)
	custSchema := storage.MustSchema(storage.Column{Name: "c_custkey", Type: storage.Int64})
	hj, err := relop.NewHashJoin(relop.LeftOuter, buildSchema, "o_custkey", custSchema, "c_custkey", nil)
	if err != nil {
		return nil, err
	}
	buildBatch := storage.NewBatch(buildSchema, 1024)
	orderScan, err := relop.NewScan(db.Orders, Q13CommentPred(), []string{"o_custkey"}, 0, func(b *storage.Batch) error {
		keys := b.MustCol("o_custkey")
		for i := 0; i < b.Len(); i++ {
			if err := buildBatch.AppendRow(keys.I64[i], int64(1)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := orderScan.Run(); err != nil {
		return nil, err
	}
	if err := hj.PushBuild(buildBatch); err != nil {
		return nil, err
	}
	if err := hj.FinishBuild(); err != nil {
		return nil, err
	}
	perCust, err := relop.NewHashAgg(hj.OutSchema(), []string{"c_custkey"}, []relop.AggSpec{
		{Func: relop.Sum, Expr: relop.Col("one"), As: "c_count"},
	}, nil)
	if err != nil {
		return nil, err
	}
	dist, err := relop.NewHashAgg(perCust.OutSchema(), []string{"c_count"}, []relop.AggSpec{
		{Func: relop.Count, As: "custdist"},
	}, nil)
	if err != nil {
		return nil, err
	}
	emit, result := relop.Collect(dist.OutSchema())
	dist.SetEmit(emit)
	perCust.SetEmit(dist.Push)
	hj.SetEmit(perCust.Push)
	custScan, err := relop.NewScan(db.Customer, q13FamilyCustPred(db, variant), []string{"c_custkey"}, 0, hj.Push)
	if err != nil {
		return nil, err
	}
	if err := custScan.Run(); err != nil {
		return nil, err
	}
	if err := hj.Finish(); err != nil {
		return nil, err
	}
	if err := perCust.Finish(); err != nil {
		return nil, err
	}
	if err := dist.Finish(); err != nil {
		return nil, err
	}
	return result(), nil
}

// q1FamilyGroupBy returns the variant's grouping columns: the classic
// (l_returnflag, l_linestatus) report and its two single-column rollups.
func q1FamilyGroupBy(variant int) []string {
	switch variant % Q1FamilyVariants {
	case 1:
		return []string{"l_returnflag"}
	case 2:
		return []string{"l_linestatus"}
	default:
		return []string{"l_returnflag", "l_linestatus"}
	}
}

// Q1FamilyModel returns the work model of a Q1 family member at a pivot
// level: 0 the scan (the calibrated Q1 coefficients), 1 the aggregate.
// The family plan is shaped exactly like the benchmark Q1 plan, so both
// levels delegate to ModelAt.
func Q1FamilyModel(level int) core.Query { return ModelAt(Q1, level) }

// Q1FamilySpec builds the engine spec of one Q1 family variant: the shared
// Q1 lineitem pass feeding a variant grouping of the full aggregate list.
// Variants share the scan with each other and the whole plan with arrivals
// of the same variant; the parallel forms are kept, so the spec also
// remains eligible for partitioned-clone execution.
func Q1FamilySpec(db *DB, pageRows, variant int) engine.QuerySpec {
	return q1FamilySpec(db, pageRows, variant, true)
}

// Q1FamilySpecNoHints is Q1FamilySpec with the cardinality-model pre-sizing
// hints disabled — the unsized arm of the pre-sizing ablation.
func Q1FamilySpecNoHints(db *DB, pageRows, variant int) engine.QuerySpec {
	return q1FamilySpec(db, pageRows, variant, false)
}

func q1FamilySpec(db *DB, pageRows, variant int, hints bool) engine.QuerySpec {
	variant = variant % Q1FamilyVariants
	scanCols := []string{"l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice", "l_discount", "l_tax"}
	scanSchema, err := db.Lineitem.Schema().Project(scanCols...)
	if err != nil {
		panic(err)
	}
	groupBy := q1FamilyGroupBy(variant)
	groupHint := 0
	if hints {
		// Q1Groups bounds every variant: the rollups see no more distinct
		// keys than the full (returnflag, linestatus) grouping.
		groupHint = Q1Groups
	}
	op, partial, merge := aggForms(scanSchema, groupBy, q1AggSpecs(), groupHint)
	sig := fmt.Sprintf("tpch/q1f/v%d", variant)
	return engine.QuerySpec{
		Signature: sig,
		PlanKey:   sig,
		Model:     Q1FamilyModel(0),
		Pivot:     0,
		Pivots: []engine.PivotOption{
			{Pivot: 1, Model: Q1FamilyModel(1)},
			{Pivot: 0, Model: Q1FamilyModel(0)},
		},
		Nodes: []engine.NodeSpec{
			engine.ScanNode("q1f/scan-lineitem", db.Lineitem, Q1Pred(), scanCols, pageRows),
			{
				Name:        "q1f/agg",
				Input:       0,
				Fingerprint: fmt.Sprintf("q1f/agg[gb=%v]", groupBy),
				Op:          op,
				Partial:     partial,
				Merge:       merge,
				RowsHint:    groupHint,
			},
		},
	}
}

// q1AggSpecs is the Q1 aggregate list shared by every family variant.
func q1AggSpecs() []relop.AggSpec {
	discPrice := relop.Arith{Op: relop.Mul,
		L: relop.Col("l_extendedprice"),
		R: relop.Arith{Op: relop.Sub, L: relop.ConstFloat{V: 1}, R: relop.Col("l_discount")}}
	charge := relop.Arith{Op: relop.Mul, L: discPrice,
		R: relop.Arith{Op: relop.Add, L: relop.ConstFloat{V: 1}, R: relop.Col("l_tax")}}
	return []relop.AggSpec{
		{Func: relop.Sum, Expr: relop.Col("l_quantity"), As: "sum_qty"},
		{Func: relop.Sum, Expr: relop.Col("l_extendedprice"), As: "sum_base_price"},
		{Func: relop.Sum, Expr: discPrice, As: "sum_disc_price"},
		{Func: relop.Sum, Expr: charge, As: "sum_charge"},
		{Func: relop.Avg, Expr: relop.Col("l_quantity"), As: "avg_qty"},
		{Func: relop.Avg, Expr: relop.Col("l_extendedprice"), As: "avg_price"},
		{Func: relop.Avg, Expr: relop.Col("l_discount"), As: "avg_disc"},
		{Func: relop.Count, As: "count_order"},
	}
}

// Q1FamilyReference executes a Q1 family variant single-threaded.
func Q1FamilyReference(db *DB, variant int) (*storage.Batch, error) {
	scanCols := []string{"l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice", "l_discount", "l_tax"}
	scanSchema, err := db.Lineitem.Schema().Project(scanCols...)
	if err != nil {
		return nil, err
	}
	agg, err := relop.NewHashAgg(scanSchema, q1FamilyGroupBy(variant), q1AggSpecs(), nil)
	if err != nil {
		return nil, err
	}
	emit, result := relop.Collect(agg.OutSchema())
	return runScanInto(db.Lineitem, Q1Pred(), scanCols, agg, emit, result)
}
