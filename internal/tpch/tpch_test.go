package tpch

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/relop"
	"repro/internal/storage"
)

func smallDB(t *testing.T) *DB {
	t.Helper()
	return MustGenerate(Config{ScaleFactor: 0.002, Seed: 42})
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(Config{ScaleFactor: 0.001, Seed: 7})
	b := MustGenerate(Config{ScaleFactor: 0.001, Seed: 7})
	if a.Orders.NumRows() != b.Orders.NumRows() || a.Lineitem.NumRows() != b.Lineitem.NumRows() {
		t.Fatal("same seed produced different cardinalities")
	}
	av, bv := a.Lineitem.MustCol("l_extendedprice"), b.Lineitem.MustCol("l_extendedprice")
	if !av.Equal(bv) {
		t.Error("same seed produced different lineitem data")
	}
	c := MustGenerate(Config{ScaleFactor: 0.001, Seed: 8})
	if av.Equal(c.Lineitem.MustCol("l_extendedprice")) {
		t.Error("different seeds produced identical data")
	}
}

func TestGenerateCardinalities(t *testing.T) {
	db := smallDB(t) // SF 0.002: 300 customers, 3000 orders
	if got := db.Customer.NumRows(); got != 300 {
		t.Errorf("customers = %d, want 300", got)
	}
	if got := db.Orders.NumRows(); got != 3000 {
		t.Errorf("orders = %d, want 3000", got)
	}
	// 1..7 lineitems per order, mean 4: expect within generous bounds.
	nl := db.Lineitem.NumRows()
	if nl < 3000 || nl > 21000 {
		t.Errorf("lineitems = %d, outside [3000, 21000]", nl)
	}
}

func TestGenerateRejectsBadScale(t *testing.T) {
	if _, err := Generate(Config{ScaleFactor: 0}); err == nil {
		t.Error("SF 0 accepted")
	}
	if _, err := Generate(Config{ScaleFactor: -1}); err == nil {
		t.Error("negative SF accepted")
	}
}

func TestGenerateDomains(t *testing.T) {
	db := smallDB(t)
	od := db.Orders.MustCol("o_orderdate").I64
	for _, d := range od {
		if d < DateEpochStart || d > DateOrderEnd {
			t.Fatalf("o_orderdate %d outside dbgen range", d)
		}
	}
	disc := db.Lineitem.MustCol("l_discount").F64
	for _, x := range disc {
		if x < 0 || x > 0.10+1e-9 {
			t.Fatalf("l_discount %g outside [0, 0.10]", x)
		}
	}
	qty := db.Lineitem.MustCol("l_quantity").I64
	for _, x := range qty {
		if x < 1 || x > 50 {
			t.Fatalf("l_quantity %d outside [1, 50]", x)
		}
	}
	ship := db.Lineitem.MustCol("l_shipdate").I64
	rcpt := db.Lineitem.MustCol("l_receiptdate").I64
	for i := range ship {
		if rcpt[i] <= ship[i] {
			t.Fatalf("l_receiptdate %d not after l_shipdate %d", rcpt[i], ship[i])
		}
	}
}

func TestCommentFrequency(t *testing.T) {
	db := MustGenerate(Config{ScaleFactor: 0.02, Seed: 3}) // 30k orders
	pred := relop.ContainsAll{Column: "o_comment", Substrings: []string{"special", "requests"}}
	matches := 0
	db.Orders.Scan(0, func(b *storage.Batch) bool {
		sel, err := pred.Filter(b, nil)
		if err != nil {
			t.Fatal(err)
		}
		matches += len(sel)
		return true
	})
	frac := float64(matches) / float64(db.Orders.NumRows())
	if frac < 0.005 || frac > 0.10 {
		t.Errorf("special-requests comment fraction = %g, want a few percent", frac)
	}
}

func TestDates(t *testing.T) {
	// 1970-01-01 is day 0; 1970-01-02 is day 1; leap handling via known
	// anchors.
	if d := MustDate(1970, 1, 1); d != 0 {
		t.Errorf("epoch = %d", d)
	}
	if d := MustDate(1970, 1, 2); d != 1 {
		t.Errorf("epoch+1 = %d", d)
	}
	if d := MustDate(2000, 3, 1) - MustDate(2000, 2, 28); d != 2 {
		t.Errorf("Feb 2000 leap day missing: %d", d)
	}
	if d := MustDate(1994, 1, 1) - MustDate(1993, 1, 1); d != 365 {
		t.Errorf("1993 length = %d", d)
	}
	if got := DateQ6End - DateQ6Start; got != 365 {
		t.Errorf("Q6 window = %d days, want 365", got)
	}
	if got := AddDays(10, 5); got != 15 {
		t.Errorf("AddDays = %d", got)
	}
}

func TestMustDatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustDate(1800,1,1) did not panic")
		}
	}()
	MustDate(1800, 1, 1)
}

func TestRunQ6MatchesBruteForce(t *testing.T) {
	db := smallDB(t)
	res, err := RunQ6(db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("Q6 emitted %d rows, want 1", res.Len())
	}
	got := res.MustCol("revenue").F64[0]
	// Brute force over raw columns.
	var want float64
	li := db.Lineitem
	ship := li.MustCol("l_shipdate").I64
	disc := li.MustCol("l_discount").F64
	qty := li.MustCol("l_quantity").I64
	price := li.MustCol("l_extendedprice").F64
	for i := 0; i < li.NumRows(); i++ {
		if ship[i] >= DateQ6Start && ship[i] < DateQ6End &&
			disc[i] >= 0.05 && disc[i] <= 0.07 && qty[i] < 24 {
			want += price[i] * disc[i]
		}
	}
	if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
		t.Errorf("Q6 revenue = %g, want %g", got, want)
	}
	if want == 0 {
		t.Error("Q6 selected no rows; generator predicates degenerate")
	}
}

func TestRunQ1MatchesBruteForce(t *testing.T) {
	db := smallDB(t)
	res, err := RunQ1(db)
	if err != nil {
		t.Fatal(err)
	}
	// Expect up to 4 groups (A/F, N/F, N/O, R/F).
	if res.Len() < 3 || res.Len() > 4 {
		t.Errorf("Q1 groups = %d, want 3..4", res.Len())
	}
	// Validate one group's count against brute force.
	li := db.Lineitem
	ship := li.MustCol("l_shipdate").I64
	flag := li.MustCol("l_returnflag").Str
	status := li.MustCol("l_linestatus").Str
	qty := li.MustCol("l_quantity").I64
	wantCount := make(map[string]int64)
	wantQty := make(map[string]float64)
	for i := 0; i < li.NumRows(); i++ {
		if ship[i] <= DateQ1Cutoff {
			k := flag[i] + "|" + status[i]
			wantCount[k]++
			wantQty[k] += float64(qty[i])
		}
	}
	gotFlag := res.MustCol("l_returnflag").Str
	gotStatus := res.MustCol("l_linestatus").Str
	gotCount := res.MustCol("count_order").I64
	gotQty := res.MustCol("sum_qty").F64
	for i := 0; i < res.Len(); i++ {
		k := gotFlag[i] + "|" + gotStatus[i]
		if gotCount[i] != wantCount[k] {
			t.Errorf("group %s count = %d, want %d", k, gotCount[i], wantCount[k])
		}
		if math.Abs(gotQty[i]-wantQty[k]) > 1e-9 {
			t.Errorf("group %s sum_qty = %g, want %g", k, gotQty[i], wantQty[k])
		}
	}
}

func TestRunQ4MatchesBruteForce(t *testing.T) {
	db := smallDB(t)
	res, err := RunQ4(db)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force: orders in the window with at least one late lineitem.
	li := db.Lineitem
	lateOrders := make(map[int64]bool)
	lkey := li.MustCol("l_orderkey").I64
	commit := li.MustCol("l_commitdate").I64
	receipt := li.MustCol("l_receiptdate").I64
	for i := 0; i < li.NumRows(); i++ {
		if commit[i] < receipt[i] {
			lateOrders[lkey[i]] = true
		}
	}
	want := make(map[string]int64)
	ord := db.Orders
	okey := ord.MustCol("o_orderkey").I64
	odate := ord.MustCol("o_orderdate").I64
	oprio := ord.MustCol("o_orderpriority").Str
	for i := 0; i < ord.NumRows(); i++ {
		if odate[i] >= DateQ4Start && odate[i] < DateQ4End && lateOrders[okey[i]] {
			want[oprio[i]]++
		}
	}
	gotPrio := res.MustCol("o_orderpriority").Str
	gotN := res.MustCol("order_count").I64
	total := int64(0)
	for i := 0; i < res.Len(); i++ {
		if gotN[i] != want[gotPrio[i]] {
			t.Errorf("priority %q count = %d, want %d", gotPrio[i], gotN[i], want[gotPrio[i]])
		}
		total += gotN[i]
	}
	if total == 0 {
		t.Error("Q4 returned zero orders; window degenerate")
	}
}

func TestRunQ13MatchesBruteForce(t *testing.T) {
	db := smallDB(t)
	res, err := RunQ13(db)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force distribution.
	keep := make(map[int]bool)
	comments := db.Orders.MustCol("o_comment").Str
	for i, c := range comments {
		if !containsInOrderTest(c, "special", "requests") {
			keep[i] = true
		}
	}
	perCust := make(map[int64]int64)
	ckeys := db.Customer.MustCol("c_custkey").I64
	for _, c := range ckeys {
		perCust[c] = 0
	}
	ocust := db.Orders.MustCol("o_custkey").I64
	for i, c := range ocust {
		if keep[i] {
			perCust[c]++
		}
	}
	wantDist := make(map[int64]int64)
	for _, n := range perCust {
		wantDist[n]++
	}
	gotCount := res.MustCol("c_count").I64
	gotDist := res.MustCol("custdist").I64
	var checked int64
	for i := 0; i < res.Len(); i++ {
		if gotDist[i] != wantDist[gotCount[i]] {
			t.Errorf("c_count=%d custdist = %d, want %d", gotCount[i], gotDist[i], wantDist[gotCount[i]])
		}
		checked += gotDist[i]
	}
	if checked != int64(db.Customer.NumRows()) {
		t.Errorf("distribution covers %d customers, want %d", checked, db.Customer.NumRows())
	}
}

func containsInOrderTest(s string, subs ...string) bool {
	pos := 0
	for _, sub := range subs {
		idx := indexFrom(s, sub, pos)
		if idx < 0 {
			return false
		}
		pos = idx + len(sub)
	}
	return true
}

func indexFrom(s, sub string, from int) int {
	for i := from; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestRunDispatch(t *testing.T) {
	db := smallDB(t)
	for _, q := range AllQueries {
		res, err := Run(q, db)
		if err != nil {
			t.Errorf("%s: %v", q, err)
			continue
		}
		if res.Len() == 0 {
			t.Errorf("%s returned no rows", q)
		}
	}
	if _, err := Run(QueryID(99), db); err == nil {
		t.Error("unknown query accepted")
	}
}

func TestModelsWellFormed(t *testing.T) {
	for _, q := range AllQueries {
		m := Model(q)
		if err := m.Validate(); err != nil {
			t.Errorf("%s model invalid: %v", q, err)
		}
		pl := Plan(q)
		if err := pl.Validate(); err != nil {
			t.Errorf("%s plan invalid: %v", q, err)
		}
		// The plan compiled at its pivot must reproduce the flat model.
		compiled := core.MustCompile(pl, pl.Find(PivotName))
		if math.Abs(compiled.PMax()-m.PMax()) > 1e-9 ||
			math.Abs(compiled.UPrime()-m.UPrime()) > 1e-9 ||
			math.Abs(compiled.PivotS-m.PivotS) > 1e-9 {
			t.Errorf("%s: plan/model mismatch (pmax %g vs %g, u' %g vs %g)", q,
				compiled.PMax(), m.PMax(), compiled.UPrime(), m.UPrime())
		}
	}
}

// The calibrated models must reproduce the Figure 2 qualitative behaviour.
func TestModelFigure2Shapes(t *testing.T) {
	// Scan-heavy: beneficial on 1 CPU (≤ ~2x), harmful on 32 CPUs at load.
	for _, q := range []QueryID{Q1, Q6} {
		m := Model(q)
		z1 := core.Z(m, 48, core.NewEnv(1))
		if z1 < 1.2 || z1 > 2.0 {
			t.Errorf("%s: Z(48,1) = %g, want within the paper's ~1.4-1.8 band", q, z1)
		}
		z32 := core.Z(m, 48, core.NewEnv(32))
		if z32 > 0.5 {
			t.Errorf("%s: Z(48,32) = %g, want strongly harmful (<0.5)", q, z32)
		}
	}
	// Join-heavy: always beneficial, large on 1 CPU, still > 1 on 32.
	for _, q := range []QueryID{Q4, Q13} {
		m := Model(q)
		z1 := core.Z(m, 48, core.NewEnv(1))
		if z1 < 15 || z1 > 40 {
			t.Errorf("%s: Z(48,1) = %g, want ~20-35 per Figure 2 right", q, z1)
		}
		for _, n := range []float64{2, 8, 32} {
			for m2 := 2; m2 <= 48; m2 += 6 {
				if z := core.Z(m, m2, core.NewEnv(n)); z < 1-1e-9 {
					t.Errorf("%s: Z(%d,%g) = %g < 1; join-heavy sharing should always win", q, m2, n, z)
				}
			}
		}
	}
}
