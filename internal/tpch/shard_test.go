package tpch

import (
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/storage"
)

func shardCluster(t *testing.T, n int, opts engine.Options) *engine.Cluster {
	t.Helper()
	c, err := engine.NewCluster(n, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// approxBatch compares batches row-for-row allowing float columns the tiny
// relative tolerance scatter-order summation legitimately perturbs.
func approxBatch(t *testing.T, what string, got, want *storage.Batch) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d rows, want %d", what, got.Len(), want.Len())
	}
	for c, col := range want.Schema.Cols {
		for i := 0; i < want.Len(); i++ {
			switch col.Type {
			case storage.Int64, storage.Date:
				if got.Vecs[c].I64[i] != want.Vecs[c].I64[i] {
					t.Fatalf("%s: row %d col %s = %d, want %d", what, i, col.Name, got.Vecs[c].I64[i], want.Vecs[c].I64[i])
				}
			case storage.String:
				if got.Vecs[c].Str[i] != want.Vecs[c].Str[i] {
					t.Fatalf("%s: row %d col %s = %q, want %q", what, i, col.Name, got.Vecs[c].Str[i], want.Vecs[c].Str[i])
				}
			case storage.Float64:
				g, w := got.Vecs[c].F64[i], want.Vecs[c].F64[i]
				if diff := math.Abs(g - w); diff > 1e-9*math.Max(1, math.Abs(w)) {
					t.Fatalf("%s: row %d col %s = %g, want %g", what, i, col.Name, g, w)
				}
			}
		}
	}
}

// The sharded database must be an exact cover: every partitioned table's
// shards hold the base row count between them, under qualified names.
func TestShardedDBPartitions(t *testing.T) {
	db := smallDB(t)
	sdb, err := NewShardedDB(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		base  *storage.Table
		parts []*storage.Table
	}{
		{db.Lineitem, sdb.Lineitem},
		{db.Orders, sdb.Orders},
		{db.Customer, sdb.Customer},
	} {
		total := 0
		for i, p := range tc.parts {
			total += p.NumRows()
			if want := storage.PartitionName(tc.base.Name, i, 4); p.Name != want {
				t.Errorf("partition named %q, want %q", p.Name, want)
			}
		}
		if total != tc.base.NumRows() {
			t.Errorf("%s partitions hold %d rows, base has %d", tc.base.Name, total, tc.base.NumRows())
		}
	}
	// One shard keeps the base tables under canonical identity.
	one, err := NewShardedDB(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	if one.Lineitem[0] != db.Lineitem || one.Orders[0] != db.Orders || one.Customer[0] != db.Customer {
		t.Error("1-shard ShardedDB must alias the base tables")
	}
}

// Every family variant scattered over every shard count must reproduce the
// single-threaded reference: exactly for the integer-count families (Q4,
// Q13), and within float summation jitter for the sum-heavy ones (Q1, Q6).
func TestShardFamiliesMatchReference(t *testing.T) {
	db := smallDB(t)
	for _, k := range []int{1, 2, 4} {
		sdb, err := NewShardedDB(db, k)
		if err != nil {
			t.Fatal(err)
		}
		c := shardCluster(t, k, engine.Options{Workers: 2})
		for _, f := range ShardFamilies() {
			for v := 0; v < f.Variants; v++ {
				plan, err := f.Plan(sdb, 0, v)
				if err != nil {
					t.Fatalf("%s/%d over %d shards: %v", f.Name, v, k, err)
				}
				h, err := c.Submit(plan, nil)
				if err != nil {
					t.Fatalf("%s/%d over %d shards: %v", f.Name, v, k, err)
				}
				got, err := h.Wait()
				if err != nil {
					t.Fatalf("%s/%d over %d shards: %v", f.Name, v, k, err)
				}
				want, err := f.Reference(db, v)
				if err != nil {
					t.Fatal(err)
				}
				what := f.Name + " scattered"
				switch f.Name {
				case "Q4", "Q13":
					if renderBatch(t, got) != renderBatch(t, want) {
						t.Errorf("%s/%d over %d shards: result not byte-identical to reference", f.Name, v, k)
					}
				default:
					approxBatch(t, what, got, want)
				}
			}
		}
		if k > 1 && c.Scatters() == 0 {
			t.Errorf("%d shards: no plan scattered", k)
		}
		c.Drain()
	}
}

// The cross-shard artifact bus must deduplicate the replicated build side of
// a scattered plan: one Q4 scattered over four shards runs exactly ONE
// lineitem hash build cluster-wide — shard 0 anchors it, the other three
// discover the in-flight state on the bus and probe the one sealed table.
// Run under -race this exercises concurrent multi-engine access to the
// shared build state.
func TestShardBusOneBuild(t *testing.T) {
	db := smallDB(t)
	const k = 4
	sdb, err := NewShardedDB(db, k)
	if err != nil {
		t.Fatal(err)
	}
	c := shardCluster(t, k, engine.Options{Workers: 2, StartPaused: true})
	plan, err := sdb.Q4FamilyShardPlan(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Submit(plan, policy.Always{})
	if err != nil {
		t.Fatal(err)
	}
	// All four shard submissions land before any work runs: exactly one
	// shard anchored the build, the rest joined through the bus.
	if got := c.BusJoins(); got != k-1 {
		t.Fatalf("bus joins = %d, want %d", got, k-1)
	}
	c.Start()
	got, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if builds := c.HashBuilds(); builds != 1 {
		t.Fatalf("cluster ran %d hash builds, want exactly 1", builds)
	}
	want, err := Q4FamilyReference(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	if renderBatch(t, got) != renderBatch(t, want) {
		t.Error("bus-shared scattered result differs from reference")
	}
	c.Drain()
}

// A burst of different Q13 variants scattered together must still run one
// filtered-orders build cluster-wide: the replicated build subtree keys
// identically on every shard, whatever the probe-side variant.
func TestShardBusOneBuildAcrossVariants(t *testing.T) {
	db := smallDB(t)
	const k = 2
	sdb, err := NewShardedDB(db, k)
	if err != nil {
		t.Fatal(err)
	}
	c := shardCluster(t, k, engine.Options{Workers: 2, StartPaused: true})
	var handles []*engine.Handle
	for v := 0; v < Q13FamilyVariants; v++ {
		plan, err := sdb.Q13FamilyShardPlan(0, v)
		if err != nil {
			t.Fatal(err)
		}
		h, err := c.Submit(plan, policy.Always{})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	c.Start()
	for v, h := range handles {
		got, err := h.Wait()
		if err != nil {
			t.Fatalf("variant %d: %v", v, err)
		}
		want, err := Q13FamilyReference(db, v)
		if err != nil {
			t.Fatal(err)
		}
		if renderBatch(t, got) != renderBatch(t, want) {
			t.Errorf("variant %d: scattered result differs from reference", v)
		}
	}
	if builds := c.HashBuilds(); builds != 1 {
		t.Fatalf("cluster ran %d hash builds for %d scattered variants, want 1", builds, Q13FamilyVariants)
	}
	c.Drain()
}
