// Package tpch provides a deterministic, scale-factor-driven generator for
// the TPC-H subset the paper evaluates (LINEITEM, ORDERS, CUSTOMER), the four
// benchmark queries it runs (scan-heavy Q1 and Q6, join-heavy Q4 and Q13,
// following the DBmbench characterization the authors cite), and the
// calibrated work-model coefficients each query contributes to the analytical
// model and the CMP simulator.
package tpch

import "fmt"

// Dates are stored as day counts since 1970-01-01 (storage.Date). The
// generator only needs civil-date arithmetic, implemented here without
// importing time to keep generation allocation-free and obviously
// deterministic.

// daysFromCivil converts a Gregorian calendar date to a day count since
// 1970-01-01 (Howard Hinnant's algorithm).
func daysFromCivil(y, m, d int) int64 {
	if m <= 2 {
		y--
	}
	var era int
	if y >= 0 {
		era = y / 400
	} else {
		era = (y - 399) / 400
	}
	yoe := y - era*400 // [0, 399]
	var mp int
	if m > 2 {
		mp = m - 3
	} else {
		mp = m + 9
	}
	doy := (153*mp+2)/5 + d - 1                    // [0, 365]
	doe := yoe*365 + yoe/4 - yoe/100 + doy         // [0, 146096]
	return int64(era)*146097 + int64(doe) - 719468 // shift epoch to 1970-01-01
}

// MustDate converts "YYYY-MM-DD"-style components to a storage date and
// panics on out-of-range input (generator constants only).
func MustDate(y, m, d int) int64 {
	if y < 1900 || y > 2100 || m < 1 || m > 12 || d < 1 || d > 31 {
		panic(fmt.Sprintf("tpch: invalid date %04d-%02d-%02d", y, m, d))
	}
	return daysFromCivil(y, m, d)
}

// Benchmark-relevant date constants.
var (
	// DateEpochStart is the earliest o_orderdate dbgen produces.
	DateEpochStart = MustDate(1992, 1, 1)
	// DateOrderEnd is the latest o_orderdate.
	DateOrderEnd = MustDate(1998, 8, 2)
	// DateQ1Cutoff is Q1's shipdate upper bound (1998-12-01 minus 90 days).
	DateQ1Cutoff = MustDate(1998, 12, 1) - 90
	// DateQ6Start is Q6's shipdate lower bound (the spec's 1994-01-01).
	DateQ6Start = MustDate(1994, 1, 1)
	// DateQ6End is Q6's exclusive shipdate upper bound (one year later).
	DateQ6End = MustDate(1995, 1, 1)
	// DateQ4Start is Q4's orderdate lower bound (1993-07-01).
	DateQ4Start = MustDate(1993, 7, 1)
	// DateQ4End is Q4's exclusive orderdate upper bound (one quarter later).
	DateQ4End = MustDate(1993, 10, 1)
)

// AddDays offsets a date by n days.
func AddDays(d int64, n int) int64 { return d + int64(n) }
