package tpch

import "repro/internal/core"

// Work-model coefficients for the benchmark queries, expressed per unit of
// forward progress (Section 4.1.1). The paper publishes only Q6's profiled
// parameters (w = 9.66, s = 10.34 at the scan, p = 0.97 at the aggregate);
// the Q1/Q4/Q13 coefficients below are calibrated so that the model and the
// CMP simulator reproduce the qualitative shapes of Figures 2 and 5:
//
//   - Scan-heavy Q1/Q6 pay a large per-sharer output cost s at the scan
//     pivot (every selected column is copied to every consumer), so sharing
//     helps on 1 CPU (≤ ~1.8x) and collapses with many processors.
//   - Join-heavy Q4/Q13 do most of their work below or at the join pivot and
//     hand tiny aggregates upward, so s is small relative to the eliminated
//     work and sharing always wins (up to ~30x on 1 CPU at 48 clients).
//
// EXPERIMENTS.md records these substitutions alongside the measured curves.

// Model returns the calibrated analytical model for the query, compiled
// against its sharing pivot (scan for Q1/Q6, join for Q4/Q13).
func Model(q QueryID) core.Query {
	switch q {
	case Q6:
		return core.Q6Paper()
	case Q1:
		// Q1 scans the same table as Q6 but feeds a much heavier aggregate
		// (eight aggregate columns over ~98% of lineitem): moderate scan
		// work, large per-consumer hand-off (six columns copied per tuple),
		// noticeable above-pivot work.
		return core.Query{
			Name:   "TPC-H Q1",
			PivotW: 8.0,
			PivotS: 9.0,
			Above:  []float64{3.5},
		}
	case Q4:
		// Q4 shares at the semi-join: both scans and the join build execute
		// below/at the pivot, and each sharer receives only a priority
		// stream (s tiny) feeding a trivial count.
		return core.Query{
			Name:   "TPC-H Q4",
			Below:  []float64{12, 8}, // lineitem scan, orders scan
			PivotW: 10,               // join build + probe work
			PivotS: 0.01,
			Above:  []float64{0.4}, // per-priority count
		}
	case Q13:
		// Q13 shares at the outer join: comment filtering and the join
		// dominate; the per-customer counting above the pivot is small.
		return core.Query{
			Name:   "TPC-H Q13",
			Below:  []float64{14, 9}, // orders scan+filter, customer scan
			PivotW: 12,
			PivotS: 0.05,
			Above:  []float64{0.8},
		}
	default:
		panic("tpch: no model for query " + q.String())
	}
}

// ModelAt returns the calibrated model of a scan-heavy query compiled at a
// pivot level of its engine plan: level 0 is the scan (identical to Model),
// level 1 the aggregate — the whole plan below the pivot runs once per
// group and each consumer receives only final summary rows. Join-heavy
// queries keep their single join-level compilation.
func ModelAt(q QueryID, level int) core.Query {
	base := Model(q)
	if level == 0 || !q.ScanHeavy() {
		return base
	}
	scanP := base.PivotW + base.PivotS
	aggW := base.Above[0]
	return core.Query{
		Name:   base.Name + " @agg",
		Below:  []float64{scanP},
		PivotW: aggW,
		PivotS: 0.1, // a page of summary rows per consumer
	}
}

// BuildModel returns the join-heavy query's model compiled at its build-side
// pivot: the whole build subtree — scanning, filtering, and hashing the
// build input — folds into the pivot's work w (run once per group), the
// per-consumer cost s is a hand-off of the sealed table (a pointer, not a
// page stream, so s is even smaller than the join-pivot s), and the probe
// subtree, the probe phase, and the aggregates above replicate per member.
// This is the "one build amortized over k probes" arm of core's build-share
// model; because s ≈ 0 its benefit grows with the group size on any
// processor count.
func BuildModel(q QueryID) core.Query {
	base := Model(q)
	switch q {
	case Q4:
		return core.Query{
			Name:   "TPC-H Q4 @build",
			PivotW: base.Below[0], // lineitem scan + hash build
			PivotS: 0.005,
			Above:  []float64{base.Below[1], base.PivotW, base.Above[0]}, // orders scan, probe, agg
		}
	case Q13:
		return core.Query{
			Name:   "TPC-H Q13 @build",
			PivotW: base.Below[0], // orders scan+filter+tag + hash build
			PivotS: 0.005,
			Above:  append([]float64{base.Below[1], base.PivotW}, base.Above...), // customer scan, probe, counts
		}
	default:
		panic("tpch: no build model for query " + q.String())
	}
}

// Plan returns the query's operator tree with the calibrated coefficients
// attached, pivot node named "pivot". The tree form feeds the simulator
// (which needs the operator topology, not just the flattened Query).
func Plan(q QueryID) core.Plan {
	m := Model(q)
	pivot := &core.PlanNode{Name: "pivot", W: m.PivotW, S: m.PivotS, Kind: core.Pipelined}
	for i, p := range m.Below {
		pivot.Children = append(pivot.Children, core.NewNode(belowName(q, i), p, 0))
	}
	node := pivot
	for i, p := range m.Above {
		node = core.NewNode(aboveName(q, i), p, 0, node)
	}
	return core.Plan{Name: m.Name, Root: node}
}

func belowName(q QueryID, i int) string {
	if q == Q4 || q == Q13 {
		if i == 0 {
			return "scan-build"
		}
		return "scan-probe"
	}
	return "scan"
}

func aboveName(q QueryID, i int) string {
	if i == 0 {
		return "agg"
	}
	return "agg" + string(rune('0'+i))
}

// PivotName returns the plan-node name at which the query shares.
const PivotName = "pivot"
