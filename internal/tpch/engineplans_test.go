package tpch

import (
	"strings"
	"testing"

	"repro/internal/engine"
)

func TestEngineSpecsValidate(t *testing.T) {
	db := smallDB(t)
	for _, q := range AllQueries {
		spec, err := EngineSpec(q, db, 0)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("%s spec invalid: %v", q, err)
		}
		if !strings.HasPrefix(spec.Signature, "tpch/") {
			t.Errorf("%s signature = %q", q, spec.Signature)
		}
		if err := spec.Model.Validate(); err != nil {
			t.Errorf("%s model invalid: %v", q, err)
		}
		// Scan-heavy queries pivot at the scan (node 0), join-heavy at the
		// join.
		if q.ScanHeavy() && spec.Pivot != 0 {
			t.Errorf("%s pivot = %d, want 0 (scan)", q, spec.Pivot)
		}
		if !q.ScanHeavy() {
			nd := spec.Nodes[spec.Pivot]
			if nd.Join == nil {
				t.Errorf("%s pivot node %q is not a join", q, nd.Name)
			}
		}
	}
}

func TestEngineSpecUnknownQuery(t *testing.T) {
	db := smallDB(t)
	if _, err := EngineSpec(QueryID(42), db, 0); err == nil {
		t.Error("unknown query accepted")
	}
}

func TestMustEngineSpecPanics(t *testing.T) {
	db := smallDB(t)
	defer func() {
		if recover() == nil {
			t.Error("MustEngineSpec did not panic")
		}
	}()
	MustEngineSpec(QueryID(42), db, 0)
}

// Source factories must produce fresh, independent instances (two
// instantiations scanning concurrently would otherwise share offsets).
func TestEngineSpecSourcesAreFresh(t *testing.T) {
	db := smallDB(t)
	spec := MustEngineSpec(Q6, db, 0)
	a, err := spec.Nodes[0].NewSource()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Nodes[0].NewSource()
	if err != nil {
		t.Fatal(err)
	}
	// Drain a fully; b must still produce from the beginning.
	rowsA := 0
	for {
		batch, eof, err := a.Next()
		if err != nil {
			t.Fatal(err)
		}
		if batch != nil {
			rowsA += batch.Len()
		}
		if eof {
			break
		}
	}
	batch, _, err := b.Next()
	if err != nil {
		t.Fatal(err)
	}
	for batch == nil { // skip empty quanta at the front
		batch, _, err = b.Next()
		if err != nil {
			t.Fatal(err)
		}
	}
	if batch.Len() == 0 || rowsA == 0 {
		t.Errorf("sources not independent: a=%d rows, b first batch %d", rowsA, batch.Len())
	}
}

// Spec operator factories must be reusable: two full instantiations of the
// same spec run independently.
func TestEngineSpecReusableAcrossRuns(t *testing.T) {
	db := smallDB(t)
	spec := MustEngineSpec(Q4, db, 0)
	e, err := engine.New(engine.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	h1, err := e.Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := e.Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := h1.Wait()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := h2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Len() != r2.Len() || r1.Len() == 0 {
		t.Errorf("independent runs disagree: %d vs %d rows", r1.Len(), r2.Len())
	}
}

func TestQueryIDStrings(t *testing.T) {
	want := map[QueryID]string{Q1: "Q1", Q6: "Q6", Q4: "Q4", Q13: "Q13"}
	for q, s := range want {
		if q.String() != s {
			t.Errorf("%v.String() = %q", q, q.String())
		}
	}
	if !strings.Contains(QueryID(9).String(), "9") {
		t.Error("unknown query id string")
	}
	if !Q1.ScanHeavy() || !Q6.ScanHeavy() || Q4.ScanHeavy() || Q13.ScanHeavy() {
		t.Error("ScanHeavy classification wrong")
	}
}

func TestModelPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Model(unknown) did not panic")
		}
	}()
	Model(QueryID(77))
}
