package tpch

import (
	"strings"

	"repro/internal/engine"
	"repro/internal/storage"
)

// Family is one named parameterized query family: a plan shape whose
// variants share work at some level (whole plan, scan prefix, or hash-join
// build side). The server's wire protocol submits queries as
// (family, variant) pairs, and the workload drivers rotate through the same
// registry — one definition, every front end.
type Family struct {
	// Name is the lookup key ("Q1", "Q6", "Q4", "Q13").
	Name string
	// Variants is the number of parameterizations; Spec reduces any variant
	// argument modulo this.
	Variants int
	// Spec builds the engine spec of one variant.
	Spec func(db *DB, pageRows, variant int) engine.QuerySpec
	// Reference executes one variant single-threaded — the ground truth
	// shared execution is checked against.
	Reference func(db *DB, variant int) (*storage.Batch, error)
}

// families is the registry, in rotation order.
var families = []Family{
	{Name: "Q1", Variants: Q1FamilyVariants, Spec: Q1FamilySpec, Reference: Q1FamilyReference},
	{Name: "Q6", Variants: Q6FamilyVariants, Spec: Q6FamilySpec, Reference: Q6FamilyReference},
	{Name: "Q4", Variants: Q4FamilyVariants, Spec: Q4FamilySpec, Reference: Q4FamilyReference},
	{Name: "Q13", Variants: Q13FamilyVariants, Spec: Q13FamilySpec, Reference: Q13FamilyReference},
}

// Families returns the registered query families in rotation order. The
// slice is a copy; callers may reorder it freely.
func Families() []Family {
	out := make([]Family, len(families))
	copy(out, families)
	return out
}

// FamilyByName resolves a family by case-insensitive name.
func FamilyByName(name string) (Family, bool) {
	for _, f := range families {
		if strings.EqualFold(f.Name, name) {
			return f, true
		}
	}
	return Family{}, false
}

// FamilyNames returns the registered names in rotation order.
func FamilyNames() []string {
	out := make([]string, len(families))
	for i, f := range families {
		out[i] = f.Name
	}
	return out
}
