package tpch

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/relop"
	"repro/internal/storage"
)

// TestCardinalityEstimatesTrackReality checks the closed-form estimates
// against the generated data: each must land within 25% of the true count,
// or the pre-sizing hints would be worse than useless.
func TestCardinalityEstimatesTrackReality(t *testing.T) {
	db := smallDB(t)
	cases := []struct {
		name   string
		est    int
		actual func() int
	}{
		{"q4-build", EstimateQ4BuildRows(db), func() int {
			return countRows(t, db.Lineitem, Q4LineitemPred())
		}},
		{"q13-build", EstimateQ13BuildRows(db), func() int {
			return countRows(t, db.Orders, Q13CommentPred())
		}},
		{"orders-window", EstimateOrdersWindowRows(db, DateQ4Start, DateQ4End), func() int {
			return countRows(t, db.Orders, Q4OrdersPred())
		}},
		{"customer-range", EstimateCustomerRangeRows(db, 1, int64(db.Customer.NumRows())/2+1), func() int {
			lo, hi := q13FamilyCustRange(db, 1)
			return countRows(t, db.Customer, relop.And{Preds: []relop.Pred{
				relop.Cmp{Op: relop.Ge, L: relop.Col("c_custkey"), R: relop.ConstInt{V: lo}},
				relop.Cmp{Op: relop.Lt, L: relop.Col("c_custkey"), R: relop.ConstInt{V: hi}},
			}})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			actual := tc.actual()
			if actual == 0 {
				t.Fatal("actual count is zero; scale too small to validate")
			}
			ratio := float64(tc.est) / float64(actual)
			if ratio < 0.75 || ratio > 1.25 {
				t.Errorf("estimate %d vs actual %d (ratio %.3f), want within 25%%", tc.est, actual, ratio)
			}
		})
	}
}

// countRows runs a filtered scan and counts the surviving rows.
func countRows(t *testing.T, tbl *storage.Table, pred relop.Pred) int {
	t.Helper()
	n := 0
	sc, err := relop.NewScan(tbl, pred, nil, 0, func(b *storage.Batch) error {
		n += b.Len()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Run(); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestFootprintMatchesHint validates the hint against the sealed hash
// table's own accounting: a build pre-sized by EstimateQ4BuildRows must end
// up holding within 25% of the hinted rows, and FootprintBytes must be
// positive and scale with the row count.
func TestFootprintMatchesHint(t *testing.T) {
	db := smallDB(t)
	hint := EstimateQ4BuildRows(db)
	jb, err := relop.NewJoinBuildSized(
		storage.MustSchema(storage.Column{Name: "l_orderkey", Type: storage.Int64}),
		"l_orderkey", hint)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := relop.NewScan(db.Lineitem, Q4LineitemPred(), []string{"l_orderkey"}, 0, jb.Push)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Run(); err != nil {
		t.Fatal(err)
	}
	if err := jb.Finish(); err != nil {
		t.Fatal(err)
	}
	tbl := jb.Table()
	ratio := float64(hint) / float64(tbl.Len())
	if ratio < 0.75 || ratio > 1.25 {
		t.Errorf("hint %d vs built rows %d (ratio %.3f), want within 25%%", hint, tbl.Len(), ratio)
	}
	fp := tbl.FootprintBytes()
	if fp < int64(tbl.Len())*8 {
		t.Errorf("FootprintBytes = %d, want at least 8 bytes/row over %d rows", fp, tbl.Len())
	}
}

// TestFamiliesByteIdenticalWithAndWithoutHints is the pre-sizing safety
// gate: hints only change allocation behavior, never results. Every family
// variant is run on a fresh engine in both arms — hinted and NoHints — and
// both must be byte-identical to the single-threaded reference.
func TestFamiliesByteIdenticalWithAndWithoutHints(t *testing.T) {
	db := smallDB(t)
	families := []struct {
		name     string
		variants int
		hinted   func(v int) engine.QuerySpec
		nohints  func(v int) engine.QuerySpec
		ref      func(v int) (*storage.Batch, error)
	}{
		{"q1f", Q1FamilyVariants,
			func(v int) engine.QuerySpec { return Q1FamilySpec(db, 0, v) },
			func(v int) engine.QuerySpec { return Q1FamilySpecNoHints(db, 0, v) },
			func(v int) (*storage.Batch, error) { return Q1FamilyReference(db, v) }},
		{"q4f", Q4FamilyVariants,
			func(v int) engine.QuerySpec { return Q4FamilySpec(db, 0, v) },
			func(v int) engine.QuerySpec { return Q4FamilySpecNoHints(db, 0, v) },
			func(v int) (*storage.Batch, error) { return Q4FamilyReference(db, v) }},
		{"q13f", Q13FamilyVariants,
			func(v int) engine.QuerySpec { return Q13FamilySpec(db, 0, v) },
			func(v int) engine.QuerySpec { return Q13FamilySpecNoHints(db, 0, v) },
			func(v int) (*storage.Batch, error) { return Q13FamilyReference(db, v) }},
	}
	run := func(t *testing.T, spec engine.QuerySpec) string {
		e := familyEngine(t, engine.Options{Workers: 2})
		h, err := e.Submit(spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := h.Wait()
		if err != nil {
			t.Fatal(err)
		}
		return renderBatch(t, got)
	}
	for _, fam := range families {
		t.Run(fam.name, func(t *testing.T) {
			for v := 0; v < fam.variants; v++ {
				want, err := fam.ref(v)
				if err != nil {
					t.Fatal(err)
				}
				wantStr := renderBatch(t, want)
				if got := run(t, fam.hinted(v)); got != wantStr {
					t.Errorf("variant %d: hinted result differs from reference", v)
				}
				if got := run(t, fam.nohints(v)); got != wantStr {
					t.Errorf("variant %d: NoHints result differs from reference", v)
				}
			}
		})
	}
}
