package tpch

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/storage"
)

// This file maps the benchmark's query families onto a sharded cluster:
// which base table each family partitions, which it replicates, and the
// scatter-gather plan each (family, variant) compiles to. The choices follow
// each plan's probe side:
//
//   - Q1 and Q6 scan lineitem and aggregate — lineitem partitions and each
//     shard aggregates its slice (the grouping columns are independent of
//     the partition key, so partial aggregates merge exactly);
//   - Q4 probes orders against the late-commit lineitem build — orders
//     partitions while lineitem replicates, so the build subtree keeps its
//     shard-agnostic fingerprint and the cross-shard bus runs ONE hash build
//     for the whole cluster;
//   - Q13 probes customers against the filtered-orders build — customer
//     partitions (each custkey lands on exactly one shard, so the per-
//     customer counts are complete per shard) while orders replicates,
//     again one build cluster-wide.
type ShardedDB struct {
	// Full is the unpartitioned database; replicated scans and route-whole
	// submissions read it directly.
	Full *DB
	// N is the shard count the partitions were cut for.
	N int
	// Lineitem, Orders, Customer hold shard i's partition at index i:
	// lineitem ranged on l_orderkey, orders on o_orderkey, customer on
	// c_custkey. With N == 1 each holds the base table itself.
	Lineitem []*storage.Table
	Orders   []*storage.Table
	Customer []*storage.Table
}

// NewShardedDB range-partitions db for an n-shard cluster. The partitions
// are snapshots cut once; every family plan for this topology remaps its
// partitioned scans through them.
func NewShardedDB(db *DB, n int) (*ShardedDB, error) {
	li, err := storage.RangePartition(db.Lineitem, "l_orderkey", n)
	if err != nil {
		return nil, err
	}
	ord, err := storage.RangePartition(db.Orders, "o_orderkey", n)
	if err != nil {
		return nil, err
	}
	cust, err := storage.RangePartition(db.Customer, "c_custkey", n)
	if err != nil {
		return nil, err
	}
	return &ShardedDB{Full: db, N: n, Lineitem: li, Orders: ord, Customer: cust}, nil
}

// partRemap returns a CompileScatter remap that substitutes shard i's
// partition for the one partitioned base table and leaves every other scan
// on its replicated original.
func partRemap(base *storage.Table, parts []*storage.Table) func(int, *storage.Table) *storage.Table {
	return func(shard int, tbl *storage.Table) *storage.Table {
		if tbl == base {
			return parts[shard]
		}
		return tbl
	}
}

// Q1FamilyShardPlan compiles one Q1 family variant for scatter-gather over
// the sharded lineitem.
func (s *ShardedDB) Q1FamilyShardPlan(pageRows, variant int) (engine.ShardPlan, error) {
	return engine.CompileScatter(Q1FamilySpec(s.Full, pageRows, variant), s.N,
		partRemap(s.Full.Lineitem, s.Lineitem))
}

// Q6FamilyShardPlan compiles one Q6 family variant for scatter-gather over
// the sharded lineitem.
func (s *ShardedDB) Q6FamilyShardPlan(pageRows, variant int) (engine.ShardPlan, error) {
	return engine.CompileScatter(Q6FamilySpec(s.Full, pageRows, variant), s.N,
		partRemap(s.Full.Lineitem, s.Lineitem))
}

// Q4FamilyShardPlan compiles one Q4 family variant for scatter-gather over
// the sharded orders. The lineitem build side stays replicated, so its
// subtree fingerprints identically on every shard and the cluster's bus
// shares one hash build across all of them.
func (s *ShardedDB) Q4FamilyShardPlan(pageRows, variant int) (engine.ShardPlan, error) {
	return engine.CompileScatter(Q4FamilySpec(s.Full, pageRows, variant), s.N,
		partRemap(s.Full.Orders, s.Orders))
}

// Q13FamilyShardPlan compiles one Q13 family variant for scatter-gather over
// the sharded customers. The filtered-orders build side stays replicated —
// one build cluster-wide — and each shard's per-customer counts are complete
// because every custkey lives on exactly one shard.
func (s *ShardedDB) Q13FamilyShardPlan(pageRows, variant int) (engine.ShardPlan, error) {
	return engine.CompileScatter(Q13FamilySpec(s.Full, pageRows, variant), s.N,
		partRemap(s.Full.Customer, s.Customer))
}

// ShardFamily pairs a query family with its scatter-gather compiler, for
// front ends (the server, the workload drivers, the benches) that rotate
// through the registry by name.
type ShardFamily struct {
	Name     string
	Variants int
	// Plan compiles one variant's ShardPlan for the given topology.
	Plan func(s *ShardedDB, pageRows, variant int) (engine.ShardPlan, error)
	// Reference executes one variant single-threaded — the same ground truth
	// the unsharded families check against.
	Reference func(db *DB, variant int) (*storage.Batch, error)
}

// ShardFamilies returns the scatter-gather family registry in rotation
// order — the same families and order as Families().
func ShardFamilies() []ShardFamily {
	return []ShardFamily{
		{Name: "Q1", Variants: Q1FamilyVariants, Plan: (*ShardedDB).Q1FamilyShardPlan, Reference: Q1FamilyReference},
		{Name: "Q6", Variants: Q6FamilyVariants, Plan: (*ShardedDB).Q6FamilyShardPlan, Reference: Q6FamilyReference},
		{Name: "Q4", Variants: Q4FamilyVariants, Plan: (*ShardedDB).Q4FamilyShardPlan, Reference: Q4FamilyReference},
		{Name: "Q13", Variants: Q13FamilyVariants, Plan: (*ShardedDB).Q13FamilyShardPlan, Reference: Q13FamilyReference},
	}
}

// ShardFamilyByName resolves a scatter-gather family by case-insensitive
// name.
func ShardFamilyByName(name string) (ShardFamily, bool) {
	for _, f := range ShardFamilies() {
		if strings.EqualFold(f.Name, name) {
			return f, true
		}
	}
	return ShardFamily{}, false
}

// CompileShardPlans compiles every (family, variant) ShardPlan for one
// topology, keyed "<family>/<variant>" — the table a front end routes
// submissions through.
func CompileShardPlans(s *ShardedDB, pageRows int) (map[string]engine.ShardPlan, error) {
	plans := make(map[string]engine.ShardPlan)
	for _, f := range ShardFamilies() {
		for v := 0; v < f.Variants; v++ {
			p, err := f.Plan(s, pageRows, v)
			if err != nil {
				return nil, fmt.Errorf("tpch: shard plan %s/%d: %w", f.Name, v, err)
			}
			plans[fmt.Sprintf("%s/%d", f.Name, v)] = p
		}
	}
	return plans, nil
}
