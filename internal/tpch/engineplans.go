package tpch

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/relop"
	"repro/internal/storage"
)

// EngineSpec builds the staged-engine execution spec for a benchmark query:
// the operator DAG, its sharing pivot (scan for Q1/Q6, join for Q4/Q13, as
// in Section 3.1 of the paper), and the calibrated model coefficients the
// sharing policy consults. All base-table scans are declared (NodeSpec.Scan)
// rather than opaque, so the scan-pivot queries Q1 and Q6 can additionally
// share their scans in flight through the circular scan registry when the
// engine runs with InflightSharing. The scan-heavy specs also offer their
// aggregate as a second pivot candidate (QuerySpec.Pivots, models compiled
// per level via ModelAt), so a pivot-selecting policy can lift identical
// queries to whole-plan sharing; the join-heavy specs declare split
// Build/Probe forms and offer their build subtree as a build-side
// candidate (BuildModel), so queries that agree only below the build run
// one hash build and probe it privately. See families.go for specs whose
// subplans are shared across non-identical queries.
func EngineSpec(q QueryID, db *DB, pageRows int) (engine.QuerySpec, error) {
	switch q {
	case Q6:
		return q6Spec(db, pageRows), nil
	case Q1:
		return q1Spec(db, pageRows), nil
	case Q4:
		return q4Spec(db, pageRows), nil
	case Q13:
		return q13Spec(db, pageRows), nil
	default:
		return engine.QuerySpec{}, fmt.Errorf("tpch: no engine spec for query %d", int(q))
	}
}

// MustEngineSpec is EngineSpec that panics on error.
func MustEngineSpec(q QueryID, db *DB, pageRows int) engine.QuerySpec {
	spec, err := EngineSpec(q, db, pageRows)
	if err != nil {
		panic(err)
	}
	return spec
}

// aggForms builds the serial, clone-partial, and merge factories of one
// grouping aggregate, so scan-pivot plans can both share serially and run
// as partitioned clones. groupHint pre-sizes the serial form's group map to
// the estimated distinct-key count (see cardinality.go); zero means unsized.
func aggForms(in storage.Schema, groupBy []string, specs []relop.AggSpec, groupHint int) (op, partial, merge engine.OpFactory) {
	op = func(emit relop.Emit) (relop.Operator, error) {
		return relop.NewHashAggSized(in, groupBy, specs, groupHint, emit)
	}
	partial = func(emit relop.Emit) (relop.Operator, error) {
		return relop.NewPartialHashAgg(in, groupBy, specs, emit)
	}
	merge = func(emit relop.Emit) (relop.Operator, error) {
		return relop.NewMergeHashAgg(in, groupBy, specs, emit)
	}
	return op, partial, merge
}

func q6Spec(db *DB, pageRows int) engine.QuerySpec {
	scanCols := []string{"l_extendedprice", "l_discount"}
	scanSchema := storage.MustSchema(
		storage.Column{Name: "l_extendedprice", Type: storage.Float64},
		storage.Column{Name: "l_discount", Type: storage.Float64},
	)
	op, partial, merge := aggForms(scanSchema, nil, []relop.AggSpec{{
		Func: relop.Sum,
		Expr: relop.Arith{Op: relop.Mul, L: relop.Col("l_extendedprice"), R: relop.Col("l_discount")},
		As:   "revenue",
	}}, 1)
	return engine.QuerySpec{
		Signature: "tpch/q6",
		PlanKey:   "tpch/q6",
		Model:     Model(Q6),
		Pivot:     0,
		Pivots: []engine.PivotOption{
			{Pivot: 1, Model: ModelAt(Q6, 1)},
			{Pivot: 0, Model: ModelAt(Q6, 0)},
		},
		Nodes: []engine.NodeSpec{
			engine.ScanNode("q6/scan-lineitem", db.Lineitem, Q6Pred(), scanCols, pageRows),
			{Name: "q6/agg", Input: 0, Fingerprint: "q6/agg", Op: op, Partial: partial, Merge: merge, RowsHint: 1},
		},
	}
}

func q1Spec(db *DB, pageRows int) engine.QuerySpec {
	scanCols := []string{"l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice", "l_discount", "l_tax"}
	scanSchema, err := db.Lineitem.Schema().Project(scanCols...)
	if err != nil {
		panic(err)
	}
	op, partial, merge := aggForms(scanSchema, []string{"l_returnflag", "l_linestatus"}, q1AggSpecs(), Q1Groups)
	return engine.QuerySpec{
		Signature: "tpch/q1",
		PlanKey:   "tpch/q1",
		Model:     Model(Q1),
		Pivot:     0,
		Pivots: []engine.PivotOption{
			{Pivot: 1, Model: ModelAt(Q1, 1)},
			{Pivot: 0, Model: ModelAt(Q1, 0)},
		},
		Nodes: []engine.NodeSpec{
			engine.ScanNode("q1/scan-lineitem", db.Lineitem, Q1Pred(), scanCols, pageRows),
			{Name: "q1/agg", Input: 0, Fingerprint: "q1/agg", Op: op, Partial: partial, Merge: merge, RowsHint: Q1Groups},
		},
	}
}

func q4Spec(db *DB, pageRows int) engine.QuerySpec {
	lineSchema := storage.MustSchema(storage.Column{Name: "l_orderkey", Type: storage.Int64})
	orderCols := []string{"o_orderkey", "o_orderpriority"}
	orderSchema, err := db.Orders.Schema().Project(orderCols...)
	if err != nil {
		panic(err)
	}
	buildHint := EstimateQ4BuildRows(db)
	return engine.QuerySpec{
		Signature: "tpch/q4",
		PlanKey:   "tpch/q4",
		Model:     Model(Q4),
		Pivot:     2,
		// Candidates highest level first: the whole-plan join pivot, then
		// the build side — two identical Q4s share the join outright, while
		// a query that only matches the lineitem build subplan (a date-window
		// variant) still amortizes the one hash build.
		Pivots: []engine.PivotOption{
			{Pivot: 2, Model: Model(Q4)},
			{Pivot: 0, Build: true, Model: BuildModel(Q4)},
		},
		Nodes: []engine.NodeSpec{
			engine.ScanNode("q4/scan-lineitem", db.Lineitem, Q4LineitemPred(), []string{"l_orderkey"}, pageRows),
			engine.ScanNode("q4/scan-orders", db.Orders, Q4OrdersPred(), orderCols, pageRows),
			semiJoinNode("q4/semijoin", lineSchema, orderSchema, 0, 1, buildHint),
			{Name: "q4/agg", Input: 2, Fingerprint: "q4/agg", RowsHint: Q4Groups, Op: func(emit relop.Emit) (relop.Operator, error) {
				return relop.NewHashAggSized(orderSchema, []string{"o_orderpriority"}, []relop.AggSpec{
					{Func: relop.Count, As: "order_count"},
				}, Q4Groups, emit)
			}},
		},
	}
}

// semiJoinNode builds the Q4-shaped semi-join node with its split
// Build/Probe forms declared, so the build side is a shareable pivot.
// buildHint pre-sizes the split build's hash table to the estimated
// build-side cardinality (zero = unsized).
func semiJoinNode(name string, lineSchema, orderSchema storage.Schema, buildIn, probeIn, buildHint int) engine.NodeSpec {
	return engine.NodeSpec{
		Name:        name,
		Fingerprint: name,
		BuildInput:  buildIn,
		ProbeInput:  probeIn,
		Join: func(emit relop.Emit) (engine.JoinOperator, error) {
			return relop.NewHashJoin(relop.Semi, lineSchema, "l_orderkey", orderSchema, "o_orderkey", emit)
		},
		Build: func() (*relop.JoinBuild, error) {
			return relop.NewJoinBuildSized(lineSchema, "l_orderkey", buildHint)
		},
		Probe: func(emit relop.Emit) (engine.ProbeOperator, error) {
			return relop.NewHashJoinProbe(relop.Semi, lineSchema, "l_orderkey", orderSchema, "o_orderkey", emit)
		},
	}
}

func q13Spec(db *DB, pageRows int) engine.QuerySpec {
	orderScanSchema := storage.MustSchema(storage.Column{Name: "o_custkey", Type: storage.Int64})
	buildSchema := storage.MustSchema(
		storage.Column{Name: "o_custkey", Type: storage.Int64},
		storage.Column{Name: "one", Type: storage.Int64},
	)
	custSchema := storage.MustSchema(storage.Column{Name: "c_custkey", Type: storage.Int64})
	joinOut := storage.MustSchema(
		storage.Column{Name: "c_custkey", Type: storage.Int64},
		storage.Column{Name: "one", Type: storage.Int64},
	)
	perCustOut := storage.MustSchema(
		storage.Column{Name: "c_custkey", Type: storage.Int64},
		storage.Column{Name: "c_count", Type: storage.Float64},
	)
	buildHint := EstimateQ13BuildRows(db)
	custHint := db.Customer.NumRows()
	return engine.QuerySpec{
		Signature: "tpch/q13",
		PlanKey:   "tpch/q13",
		Model:     Model(Q13),
		Pivot:     3,
		// The join pivot first, then the build subtree (orders scan + tag):
		// Q13 variants that share only the filtered-orders side run one
		// build and probe their own customer sets against it.
		Pivots: []engine.PivotOption{
			{Pivot: 3, Model: Model(Q13)},
			{Pivot: 1, Build: true, Model: BuildModel(Q13)},
		},
		Nodes: []engine.NodeSpec{
			engine.ScanNode("q13/scan-orders", db.Orders, Q13CommentPred(), []string{"o_custkey"}, pageRows),
			{Name: "q13/tag", Input: 0, Fingerprint: "q13/tag", Op: func(emit relop.Emit) (relop.Operator, error) {
				return relop.NewProject(orderScanSchema, []relop.ProjectCol{
					{As: "o_custkey", Expr: relop.Col("o_custkey")},
					{As: "one", Expr: relop.ConstInt{V: 1}},
				}, emit)
			}},
			engine.ScanNode("q13/scan-customer", db.Customer, nil, []string{"c_custkey"}, pageRows),
			outerJoinNode("q13/outerjoin", buildSchema, custSchema, 1, 2, buildHint),
			{Name: "q13/percust", Input: 3, Op: func(emit relop.Emit) (relop.Operator, error) {
				return relop.NewHashAggSized(joinOut, []string{"c_custkey"}, []relop.AggSpec{
					{Func: relop.Sum, Expr: relop.Col("one"), As: "c_count"},
				}, custHint, emit)
			}},
			{Name: "q13/dist", Input: 4, RowsHint: Q13DistGroups, Op: func(emit relop.Emit) (relop.Operator, error) {
				return relop.NewHashAggSized(perCustOut, []string{"c_count"}, []relop.AggSpec{
					{Func: relop.Count, As: "custdist"},
				}, Q13DistGroups, emit)
			}},
		},
	}
}

// outerJoinNode builds the Q13-shaped left-outer join node with its split
// Build/Probe forms declared, so the build side is a shareable pivot.
// buildHint pre-sizes the split build's hash table (zero = unsized).
func outerJoinNode(name string, buildSchema, custSchema storage.Schema, buildIn, probeIn, buildHint int) engine.NodeSpec {
	return engine.NodeSpec{
		Name:        name,
		Fingerprint: name,
		BuildInput:  buildIn,
		ProbeInput:  probeIn,
		Join: func(emit relop.Emit) (engine.JoinOperator, error) {
			return relop.NewHashJoin(relop.LeftOuter, buildSchema, "o_custkey", custSchema, "c_custkey", emit)
		},
		Build: func() (*relop.JoinBuild, error) {
			return relop.NewJoinBuildSized(buildSchema, "o_custkey", buildHint)
		},
		Probe: func(emit relop.Emit) (engine.ProbeOperator, error) {
			return relop.NewHashJoinProbe(relop.LeftOuter, buildSchema, "o_custkey", custSchema, "c_custkey", emit)
		},
	}
}
