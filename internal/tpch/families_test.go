package tpch

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/storage"
)

// renderBatch renders a batch row by row in emitted order — the exact form,
// so comparisons assert byte-identical results, not just equal row sets
// (aggregates emit in deterministic key order, making this well-defined).
func renderBatch(t *testing.T, b *storage.Batch) string {
	t.Helper()
	out := ""
	for i := 0; i < b.Len(); i++ {
		for c, col := range b.Schema.Cols {
			switch col.Type {
			case storage.Int64, storage.Date:
				out += fmt.Sprintf("|%d", b.Vecs[c].I64[i])
			case storage.Float64:
				out += fmt.Sprintf("|%.9f", b.Vecs[c].F64[i])
			case storage.String:
				out += "|" + b.Vecs[c].Str[i]
			}
		}
		out += "\n"
	}
	return out
}

func familyEngine(t *testing.T, opts engine.Options) *engine.Engine {
	t.Helper()
	e, err := engine.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// TestFamilyShareKeys pins the fingerprint algebra the families rely on:
// all variants coincide at the scan prefix, no two variants coincide at
// their aggregates, and identical variants coincide everywhere.
func TestFamilyShareKeys(t *testing.T) {
	db := smallDB(t)
	q6 := func(v int) engine.QuerySpec { return Q6FamilySpec(db, 0, v) }
	q1 := func(v int) engine.QuerySpec { return Q1FamilySpec(db, 0, v) }
	for v := 1; v < Q6FamilyVariants; v++ {
		a, b := q6(0), q6(v)
		a.Pivot, b.Pivot = 0, 0
		if engine.ShareKey(a) != engine.ShareKey(b) {
			t.Errorf("q6 variants 0 and %d do not share the scan prefix", v)
		}
		a.Pivot, b.Pivot = 2, 2
		if engine.ShareKey(a) == engine.ShareKey(b) {
			t.Errorf("q6 variants 0 and %d wrongly share at the aggregate", v)
		}
	}
	for v := 1; v < Q1FamilyVariants; v++ {
		a, b := q1(0), q1(v)
		if engine.ShareKey(a) != engine.ShareKey(b) {
			t.Errorf("q1 variants 0 and %d do not share the scan prefix", v)
		}
		a.Pivot, b.Pivot = 1, 1
		if engine.ShareKey(a) == engine.ShareKey(b) {
			t.Errorf("q1 variants 0 and %d wrongly share at the aggregate", v)
		}
	}
	same1, same2 := q1(1), q1(1)
	same1.Pivot, same2.Pivot = 1, 1
	if engine.ShareKey(same1) != engine.ShareKey(same2) {
		t.Error("identical q1 variants do not share at the aggregate")
	}
}

// TestQ6FamilySupersetResidual is the acceptance check for superset-scan +
// residual-filter sharing: all three date-window variants submitted to a
// paused engine merge into one group at the scan, and every member's result
// is byte-identical to the same query run alone (single-threaded reference
// and an unshared engine run). Run under -race this also exercises the
// refcounted fan-out of one page to divergent private chains.
func TestQ6FamilySupersetResidual(t *testing.T) {
	db := smallDB(t)
	for _, fanOut := range []engine.FanOutMode{engine.FanOutShare, engine.FanOutClone} {
		t.Run(fanOut.String(), func(t *testing.T) {
			e := familyEngine(t, engine.Options{Workers: 2, FanOut: fanOut, StartPaused: true})
			var handles []*engine.Handle
			for v := 0; v < Q6FamilyVariants; v++ {
				h, err := e.Submit(Q6FamilySpec(db, 0, v), policy.Always{})
				if err != nil {
					t.Fatal(err)
				}
				handles = append(handles, h)
			}
			// All three variants must have merged into one scan-level group.
			scanKey := engine.ShareKey(Q6FamilySpec(db, 0, 0))
			if got := e.GroupSize(scanKey); got != Q6FamilyVariants {
				t.Fatalf("scan group size = %d, want %d", got, Q6FamilyVariants)
			}
			e.Start()
			for v, h := range handles {
				got, err := h.Wait()
				if err != nil {
					t.Fatalf("variant %d: %v", v, err)
				}
				want, err := Q6FamilyReference(db, v)
				if err != nil {
					t.Fatal(err)
				}
				if renderBatch(t, got) != renderBatch(t, want) {
					t.Errorf("variant %d: shared result differs from reference", v)
				}
				alone := familyEngine(t, engine.Options{Workers: 2, FanOut: fanOut})
				ha, err := alone.Submit(Q6FamilySpec(db, 0, v), nil)
				if err != nil {
					t.Fatal(err)
				}
				aloneRes, err := ha.Wait()
				if err != nil {
					t.Fatal(err)
				}
				if renderBatch(t, got) != renderBatch(t, aloneRes) {
					t.Errorf("variant %d: shared result differs from run-alone", v)
				}
			}
			if joins := e.PivotLevelJoins(); joins[0] != Q6FamilyVariants-1 {
				t.Errorf("pivot-level joins = %v, want %d at level 0", joins, Q6FamilyVariants-1)
			}
		})
	}
}

// TestQ1FamilySharedAtScan checks the group-by variants of Q1 share the
// lineitem pass while producing each variant's own correct rollup.
func TestQ1FamilySharedAtScan(t *testing.T) {
	db := smallDB(t)
	e := familyEngine(t, engine.Options{Workers: 2, StartPaused: true})
	var handles []*engine.Handle
	for v := 0; v < Q1FamilyVariants; v++ {
		h, err := e.Submit(Q1FamilySpec(db, 0, v), policy.Always{})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	if got := e.GroupSize(engine.ShareKey(Q1FamilySpec(db, 0, 0))); got != Q1FamilyVariants {
		t.Fatalf("scan group size = %d, want %d", got, Q1FamilyVariants)
	}
	e.Start()
	for v, h := range handles {
		got, err := h.Wait()
		if err != nil {
			t.Fatalf("variant %d: %v", v, err)
		}
		want, err := Q1FamilyReference(db, v)
		if err != nil {
			t.Fatal(err)
		}
		if renderBatch(t, got) != renderBatch(t, want) {
			t.Errorf("variant %d: shared result differs from reference", v)
		}
	}
}

// TestQ1FamilyPivotLift checks model-guided pivot selection lifts identical
// queries to the aggregate: under the subplan policy a fresh group anchors
// at the agg level (the model's best), the second arrival merges there, and
// results stay byte-identical to the reference.
func TestQ1FamilyPivotLift(t *testing.T) {
	db := smallDB(t)
	pol := policy.ModelGuided{Env: core.NewEnv(2), PivotSelect: true}
	e := familyEngine(t, engine.Options{Workers: 2, StartPaused: true})
	spec := Q1FamilySpec(db, 0, 0)
	h1, err := e.Submit(spec, pol)
	if err != nil {
		t.Fatal(err)
	}
	aggSpec := spec
	aggSpec.Pivot = 1
	if got := e.GroupSize(engine.ShareKey(aggSpec)); got != 1 {
		t.Fatalf("no agg-level group after first submit (size %d)", got)
	}
	h2, err := e.Submit(spec, pol)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.GroupSize(engine.ShareKey(aggSpec)); got != 2 {
		t.Fatalf("agg-level group size = %d, want 2", got)
	}
	e.Start()
	want, err := Q1FamilyReference(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range []*engine.Handle{h1, h2} {
		got, err := h.Wait()
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
		if renderBatch(t, got) != renderBatch(t, want) {
			t.Errorf("member %d: agg-pivot shared result differs from reference", i)
		}
	}
	if joins := e.PivotLevelJoins(); joins[1] != 1 {
		t.Errorf("pivot-level joins = %v, want 1 at level 1", joins)
	}
}

// TestJoinFamilyBuildKeys pins the fingerprint algebra build sharing relies
// on: no two Q4 (or Q13) variants coincide at the join, every pair
// coincides at the build subtree, and the build key is distinct from the
// fan-out key of the same subtree.
func TestJoinFamilyBuildKeys(t *testing.T) {
	db := smallDB(t)
	for v := 1; v < Q4FamilyVariants; v++ {
		a, b := Q4FamilySpec(db, 0, 0), Q4FamilySpec(db, 0, v)
		if engine.ShareKey(a) == engine.ShareKey(b) {
			t.Errorf("q4 variants 0 and %d wrongly share at the join", v)
		}
		if engine.BuildShareKey(a, 0) != engine.BuildShareKey(b, 0) {
			t.Errorf("q4 variants 0 and %d do not share the build subplan", v)
		}
	}
	for v := 1; v < Q13FamilyVariants; v++ {
		a, b := Q13FamilySpec(db, 0, 0), Q13FamilySpec(db, 0, v)
		if engine.ShareKey(a) == engine.ShareKey(b) {
			t.Errorf("q13 variants 0 and %d wrongly share at the join", v)
		}
		if engine.BuildShareKey(a, 1) != engine.BuildShareKey(b, 1) {
			t.Errorf("q13 variants 0 and %d do not share the build subplan", v)
		}
	}
	// The standard Q4 spec scans lineitem identically, so it amortizes the
	// same build as the family variants.
	if engine.BuildShareKey(MustEngineSpec(Q4, db, 0), 0) != engine.BuildShareKey(Q4FamilySpec(db, 0, 0), 0) {
		t.Error("standard Q4 and the Q4 family do not share the lineitem build")
	}
}

// TestQ4FamilyBuildShare is the acceptance check for build-side sharing:
// two concurrently submitted Q4-family variants execute exactly one hash
// build — the first anchors a group at the join whose shared subtree
// publishes the build state, the second matches only the build subplan and
// attaches to the table — and each member's result is byte-identical to the
// single-threaded reference and to the same query run alone. Run under
// -race this also exercises the seal/attach handshake.
func TestQ4FamilyBuildShare(t *testing.T) {
	db := smallDB(t)
	e := familyEngine(t, engine.Options{Workers: 2, StartPaused: true})
	variants := []int{1, 2}
	var handles []*engine.Handle
	for _, v := range variants {
		h, err := e.Submit(Q4FamilySpec(db, 0, v), policy.Always{})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	key := engine.BuildShareKey(Q4FamilySpec(db, 0, 0), 0)
	if got := e.GroupSize(key); got != 2 {
		t.Fatalf("build group size = %d, want 2", got)
	}
	e.Start()
	for i, h := range handles {
		v := variants[i]
		got, err := h.Wait()
		if err != nil {
			t.Fatalf("variant %d: %v", v, err)
		}
		want, err := Q4FamilyReference(db, v)
		if err != nil {
			t.Fatal(err)
		}
		if renderBatch(t, got) != renderBatch(t, want) {
			t.Errorf("variant %d: shared result differs from reference", v)
		}
		alone := familyEngine(t, engine.Options{Workers: 2})
		ha, err := alone.Submit(Q4FamilySpec(db, 0, v), nil)
		if err != nil {
			t.Fatal(err)
		}
		aloneRes, err := ha.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if renderBatch(t, got) != renderBatch(t, aloneRes) {
			t.Errorf("variant %d: shared result differs from run-alone", v)
		}
	}
	if got := e.HashBuilds(); got != 1 {
		t.Errorf("HashBuilds = %d, want exactly 1", got)
	}
	if got := e.BuildJoins(); got != 1 {
		t.Errorf("BuildJoins = %d, want 1", got)
	}
	if got := e.Exchange().BuildStatesInFlight(); got != 0 {
		t.Errorf("build states in flight after completion = %d, want 0", got)
	}
}

// TestQ13FamilyBuildShare checks the outer-join family: all three customer
// segments amortize one filtered-orders build (scan + tag project — a
// multi-node build subtree), each producing its own correct distribution.
func TestQ13FamilyBuildShare(t *testing.T) {
	db := smallDB(t)
	e := familyEngine(t, engine.Options{Workers: 2, StartPaused: true})
	var handles []*engine.Handle
	for v := 0; v < Q13FamilyVariants; v++ {
		h, err := e.Submit(Q13FamilySpec(db, 0, v), policy.Always{})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	e.Start()
	for v, h := range handles {
		got, err := h.Wait()
		if err != nil {
			t.Fatalf("variant %d: %v", v, err)
		}
		want, err := Q13FamilyReference(db, v)
		if err != nil {
			t.Fatal(err)
		}
		if renderBatch(t, got) != renderBatch(t, want) {
			t.Errorf("variant %d: shared result differs from reference", v)
		}
	}
	if got := e.HashBuilds(); got != 1 {
		t.Errorf("HashBuilds = %d, want exactly 1", got)
	}
	if got := e.BuildJoins(); got != int64(Q13FamilyVariants-1) {
		t.Errorf("BuildJoins = %d, want %d", got, Q13FamilyVariants-1)
	}
}

// TestQ4FamilyCacheAcrossBursts is the acceptance check for across-burst
// sharing: three bursts of all Q4-family variants, each burst fully drained
// before the next (so every burst's build state retires), with an idle gap
// far below the keep-alive window. With the cache the whole run executes
// exactly one hash build — burst 1 builds, its retired table is retained,
// and every later burst's anchor attaches to it with zero build work. The
// identical run with the cache disabled rebuilds per burst. Every result is
// byte-identical to the single-threaded reference, cached or cold.
func TestQ4FamilyCacheAcrossBursts(t *testing.T) {
	db := smallDB(t)
	const bursts = 3
	runBursts := func(e *engine.Engine) {
		t.Helper()
		for b := 0; b < bursts; b++ {
			var handles []*engine.Handle
			for v := 0; v < Q4FamilyVariants; v++ {
				h, err := e.Submit(Q4FamilySpec(db, 0, v), policy.Always{})
				if err != nil {
					t.Fatal(err)
				}
				handles = append(handles, h)
			}
			for v, h := range handles {
				got, err := h.Wait()
				if err != nil {
					t.Fatalf("burst %d variant %d: %v", b, v, err)
				}
				want, err := Q4FamilyReference(db, v)
				if err != nil {
					t.Fatal(err)
				}
				if renderBatch(t, got) != renderBatch(t, want) {
					t.Errorf("burst %d variant %d: result differs from reference", b, v)
				}
			}
			if got := e.Exchange().BuildStatesInFlight(); got != 0 {
				t.Fatalf("burst %d: %d build states survived the drain", b, got)
			}
		}
	}

	cache := artifact.New(artifact.Config{BudgetBytes: 64 << 20, TTL: time.Minute})
	warm := familyEngine(t, engine.Options{Workers: 2, Cache: cache})
	runBursts(warm)
	if got := warm.HashBuilds(); got != 1 {
		t.Errorf("HashBuilds with cache = %d, want exactly 1 across %d bursts", got, bursts)
	}
	if got := warm.CacheHits(); got < int64(bursts-1) {
		t.Errorf("CacheHits = %d, want at least one per warm burst (%d)", got, bursts-1)
	}
	if got, budget := warm.CacheBytes(), int64(64<<20); got <= 0 || got > budget {
		t.Errorf("CacheBytes = %d, want within (0, %d]", got, budget)
	}

	cold := familyEngine(t, engine.Options{Workers: 2})
	runBursts(cold)
	if got := cold.HashBuilds(); got < int64(bursts) {
		t.Errorf("HashBuilds without cache = %d, want at least one per burst (%d)", got, bursts)
	}
}
