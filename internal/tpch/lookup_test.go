package tpch

import "testing"

// Every registered family must resolve by name (case-insensitively), build
// a valid spec for every variant (including out-of-range arguments, reduced
// modulo the family size), and agree with its reference on the variant
// count.
func TestFamilyLookup(t *testing.T) {
	db := MustGenerate(Config{ScaleFactor: 0.002, Seed: 42})
	if len(Families()) != len(FamilyNames()) {
		t.Fatalf("Families()/FamilyNames() length mismatch")
	}
	for _, name := range FamilyNames() {
		f, ok := FamilyByName(name)
		if !ok {
			t.Fatalf("FamilyByName(%q) missing", name)
		}
		lower, ok := FamilyByName("q" + name[1:])
		if !ok || lower.Name != f.Name {
			t.Fatalf("FamilyByName is not case-insensitive for %q", name)
		}
		if f.Variants < 1 {
			t.Fatalf("family %s: %d variants", name, f.Variants)
		}
		for v := 0; v < f.Variants+1; v++ { // +1 exercises the modulo path
			spec := f.Spec(db, 0, v)
			if err := spec.Validate(); err != nil {
				t.Fatalf("family %s variant %d: invalid spec: %v", name, v, err)
			}
		}
		if _, err := f.Reference(db, 0); err != nil {
			t.Fatalf("family %s reference: %v", name, err)
		}
	}
	if _, ok := FamilyByName("Q99"); ok {
		t.Fatal("FamilyByName(Q99) resolved")
	}
}
