package tpch

import (
	"fmt"

	"repro/internal/storage"
)

// Config controls data generation.
type Config struct {
	// ScaleFactor scales row counts: SF 1.0 ≈ 150k customers, 1.5M orders,
	// ~6M lineitems (the paper runs SF 1.0 in-memory; tests use small SFs —
	// the sharing trade-off depends on work ratios, which are
	// scale-invariant).
	ScaleFactor float64
	// Seed makes generation deterministic; the same seed always produces
	// identical tables.
	Seed uint64
}

// DB holds the generated tables.
type DB struct {
	// Customer has columns c_custkey, c_mktsegment.
	Customer *storage.Table
	// Orders has columns o_orderkey, o_custkey, o_orderdate,
	// o_orderpriority, o_comment.
	Orders *storage.Table
	// Lineitem has columns l_orderkey, l_quantity, l_extendedprice,
	// l_discount, l_tax, l_returnflag, l_linestatus, l_shipdate,
	// l_commitdate, l_receiptdate.
	Lineitem *storage.Table
}

// Table cardinalities at scale factor 1.
const (
	customersPerSF = 150_000
	ordersPerSF    = 1_500_000
)

// Priorities is the o_orderpriority domain.
var Priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}

// commentWords seeds o_comment; "special" + "requests" appear in order with
// roughly the frequency needed for Q13's anti-predicate to be selective but
// not trivial.
var commentWords = []string{
	"carefully", "final", "deposits", "sleep", "furiously", "ironic",
	"accounts", "pending", "theodolites", "quickly", "bold", "packages",
}

// Generate builds the database for the given configuration.
func Generate(cfg Config) (*DB, error) {
	if cfg.ScaleFactor <= 0 {
		return nil, fmt.Errorf("tpch: scale factor must be positive, got %g", cfg.ScaleFactor)
	}
	rng := newPRNG(cfg.Seed)
	db := &DB{
		Customer: storage.NewTable("customer", storage.MustSchema(
			storage.Column{Name: "c_custkey", Type: storage.Int64},
			storage.Column{Name: "c_mktsegment", Type: storage.String},
		)),
		Orders: storage.NewTable("orders", storage.MustSchema(
			storage.Column{Name: "o_orderkey", Type: storage.Int64},
			storage.Column{Name: "o_custkey", Type: storage.Int64},
			storage.Column{Name: "o_orderdate", Type: storage.Date},
			storage.Column{Name: "o_orderpriority", Type: storage.String},
			storage.Column{Name: "o_comment", Type: storage.String},
		)),
		Lineitem: storage.NewTable("lineitem", storage.MustSchema(
			storage.Column{Name: "l_orderkey", Type: storage.Int64},
			storage.Column{Name: "l_quantity", Type: storage.Int64},
			storage.Column{Name: "l_extendedprice", Type: storage.Float64},
			storage.Column{Name: "l_discount", Type: storage.Float64},
			storage.Column{Name: "l_tax", Type: storage.Float64},
			storage.Column{Name: "l_returnflag", Type: storage.String},
			storage.Column{Name: "l_linestatus", Type: storage.String},
			storage.Column{Name: "l_shipdate", Type: storage.Date},
			storage.Column{Name: "l_commitdate", Type: storage.Date},
			storage.Column{Name: "l_receiptdate", Type: storage.Date},
		)),
	}
	nCust := scaled(customersPerSF, cfg.ScaleFactor)
	nOrders := scaled(ordersPerSF, cfg.ScaleFactor)
	segments := []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	for c := 1; c <= nCust; c++ {
		db.Customer.MustAppend(int64(c), segments[rng.intn(len(segments))])
	}
	// receiptCutoff splits returnflag R/A from N, per the dbgen rule keyed
	// on 1995-06-17.
	cutoff := MustDate(1995, 6, 17)
	orderSpan := int(DateOrderEnd - DateEpochStart)
	for o := 1; o <= nOrders; o++ {
		custkey := int64(1 + rng.intn(nCust))
		orderDate := DateEpochStart + int64(rng.intn(orderSpan+1))
		prio := Priorities[rng.intn(len(Priorities))]
		db.Orders.MustAppend(int64(o), custkey, orderDate, prio, rng.comment())
		lines := 1 + rng.intn(7)
		for l := 0; l < lines; l++ {
			qty := int64(1 + rng.intn(50))
			price := float64(qty) * (900 + float64(rng.intn(100_000))/100)
			discount := float64(rng.intn(11)) / 100 // 0.00 .. 0.10
			tax := float64(rng.intn(9)) / 100       // 0.00 .. 0.08
			shipDate := AddDays(orderDate, 1+rng.intn(121))
			commitDate := AddDays(orderDate, 30+rng.intn(61))
			receiptDate := AddDays(shipDate, 1+rng.intn(30))
			var flag string
			switch {
			case receiptDate <= cutoff && rng.intn(2) == 0:
				flag = "R"
			case receiptDate <= cutoff:
				flag = "A"
			default:
				flag = "N"
			}
			status := "O"
			if shipDate <= cutoff {
				status = "F"
			}
			db.Lineitem.MustAppend(int64(o), qty, price, discount, tax, flag, status,
				shipDate, commitDate, receiptDate)
		}
	}
	return db, nil
}

// MustGenerate is Generate that panics on error.
func MustGenerate(cfg Config) *DB {
	db, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return db
}

func scaled(base int, sf float64) int {
	n := int(float64(base) * sf)
	if n < 1 {
		n = 1
	}
	return n
}

// prng is a splitmix64 generator: tiny, fast, and deterministic across
// platforms (unlike math/rand's global state, identical streams for a seed
// are guaranteed by this code alone).
type prng struct{ state uint64 }

func newPRNG(seed uint64) *prng { return &prng{state: seed ^ 0x9E3779B97F4A7C15} }

func (p *prng) next() uint64 {
	p.state += 0x9E3779B97F4A7C15
	z := p.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (p *prng) intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("tpch: intn(%d)", n))
	}
	return int(p.next() % uint64(n))
}

// comment builds an o_comment; about 3% contain "special" ... "requests" in
// order, making Q13's NOT LIKE filter meaningfully selective.
func (p *prng) comment() string {
	n := 3 + p.intn(5)
	out := make([]byte, 0, 64)
	specialAt := -1
	if p.intn(33) == 0 {
		specialAt = p.intn(n)
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			out = append(out, ' ')
		}
		switch {
		case i == specialAt:
			out = append(out, "special"...)
		case i == specialAt+1 && specialAt >= 0:
			out = append(out, "requests"...)
		default:
			out = append(out, commentWords[p.intn(len(commentWords))]...)
		}
	}
	return string(out)
}
