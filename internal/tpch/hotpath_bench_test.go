package tpch

import (
	"testing"

	"repro/internal/engine"
)

// BenchmarkSubmitPath measures the end-to-end submit path of a repeated
// query family, cold (PlanKey stripped, every submit recanonicalizes) vs
// warm (memoized compile artifact). Run with -benchmem: the warm arm should
// show fewer allocs/op by the full canonicalization working set.
func BenchmarkSubmitPath(b *testing.B) {
	db := MustGenerate(Config{ScaleFactor: 0.002, Seed: 42})
	for _, arm := range []struct {
		name string
		warm bool
	}{{"cold", false}, {"warm", true}} {
		b.Run(arm.name, func(b *testing.B) {
			e, err := engine.New(engine.Options{Workers: 2})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			spec := MustEngineSpec(Q4, db, 0)
			if !arm.warm {
				spec.PlanKey = ""
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h, err := e.Submit(spec, nil)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := h.Wait(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompileStep isolates the canonicalization the compile cache
// saves: a cold Compile against the warm Valid+Matches guard.
func BenchmarkCompileStep(b *testing.B) {
	db := MustGenerate(Config{ScaleFactor: 0.002, Seed: 42})
	spec := MustEngineSpec(Q4, db, 0)
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			engine.Compile(spec)
		}
	})
	b.Run("warm", func(b *testing.B) {
		cp := engine.Compile(spec)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !cp.Valid() || !cp.Matches(spec) {
				b.Fatal("warm guard rejected an unchanged spec")
			}
		}
	})
}
