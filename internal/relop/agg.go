package relop

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/storage"
)

// AggFunc enumerates aggregate functions.
type AggFunc int

// Aggregate functions.
const (
	// Sum accumulates Σx as float64.
	Sum AggFunc = iota
	// Count counts rows; Expr may be nil.
	Count
	// Avg computes Σx / n.
	Avg
	// Min keeps the smallest value.
	Min
	// Max keeps the largest value.
	Max
)

func (f AggFunc) String() string {
	switch f {
	case Sum:
		return "sum"
	case Count:
		return "count"
	case Avg:
		return "avg"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(f))
	}
}

// AggSpec describes one aggregate output column.
type AggSpec struct {
	// Func is the aggregate function.
	Func AggFunc
	// Expr is the aggregated expression (nil allowed for Count).
	Expr Expr
	// As names the output column.
	As string
}

// HashAgg is a hash-based grouping aggregate. It is a stop-&-go operator:
// Push accumulates, Finish emits one row per group (deterministically
// ordered by group key for reproducibility). In partial mode (see
// NewPartialHashAgg) Finish instead emits raw accumulator state for a
// downstream MergeHashAgg to combine — the clone-local half of a
// partitioned parallel aggregation.
type HashAgg struct {
	groupBy   []string
	specs     []AggSpec
	inSchema  storage.Schema
	outSchema storage.Schema
	groups    map[string]*aggState
	emit      Emit
	batchRows int
	partial   bool
	done      bool
}

type aggState struct {
	keyVals []any // group key values, in groupBy order
	sums    []float64
	counts  []int64
	mins    []float64
	maxs    []float64
	seen    []bool
}

// NewHashAgg builds a grouping aggregate. groupBy may be empty for a global
// aggregate (which emits exactly one row even over empty input, matching
// SQL semantics for COUNT/SUM over empty tables).
func NewHashAgg(in storage.Schema, groupBy []string, specs []AggSpec, emit Emit) (*HashAgg, error) {
	return NewHashAggSized(in, groupBy, specs, 0, emit)
}

// NewHashAggSized is NewHashAgg with a group-count hint: the group map is
// pre-sized to the estimated number of distinct keys, sparing the incremental
// rehashes a growing map pays. Advisory only — zero or a wrong estimate never
// affects results.
func NewHashAggSized(in storage.Schema, groupBy []string, specs []AggSpec, hint int, emit Emit) (*HashAgg, error) {
	var outCols []storage.Column
	for _, g := range groupBy {
		i, err := in.Index(g)
		if err != nil {
			return nil, err
		}
		outCols = append(outCols, in.Cols[i])
	}
	for _, sp := range specs {
		t := storage.Float64
		switch sp.Func {
		case Count:
			t = storage.Int64
		case Sum, Avg, Min, Max:
			if sp.Expr == nil {
				return nil, fmt.Errorf("%w: %s requires an expression", ErrType, sp.Func)
			}
			et, err := sp.Expr.Type(in)
			if err != nil {
				return nil, err
			}
			if et == storage.String {
				return nil, fmt.Errorf("%w: %s over string expression", ErrType, sp.Func)
			}
		default:
			return nil, fmt.Errorf("%w: unknown aggregate %d", ErrType, int(sp.Func))
		}
		outCols = append(outCols, storage.Column{Name: sp.As, Type: t})
	}
	out, err := storage.NewSchema(outCols...)
	if err != nil {
		return nil, err
	}
	if hint < 0 {
		hint = 0
	}
	return &HashAgg{
		groupBy:   groupBy,
		specs:     specs,
		inSchema:  in,
		outSchema: out,
		groups:    make(map[string]*aggState, hint),
		emit:      emit,
		batchRows: storage.RowsPerPage(out, storage.DefaultPageSize),
	}, nil
}

// OutSchema implements Operator.
func (h *HashAgg) OutSchema() storage.Schema { return h.outSchema }

// ConsumesInput reports that Push folds each batch into accumulators.
func (h *HashAgg) ConsumesInput() bool { return true }

// Push implements Operator.
func (h *HashAgg) Push(b *storage.Batch) error {
	if h.done {
		return ErrFinished
	}
	keyVecs := make([]storage.Vector, len(h.groupBy))
	for i, g := range h.groupBy {
		v, err := b.Col(g)
		if err != nil {
			return err
		}
		keyVecs[i] = v
	}
	vals := make([]storage.Vector, len(h.specs))
	for i, sp := range h.specs {
		if sp.Expr == nil {
			continue
		}
		v, err := sp.Expr.Eval(b)
		if err != nil {
			return err
		}
		vals[i] = v
	}
	var keyBuf strings.Builder
	for row := 0; row < b.Len(); row++ {
		key, keyVals := groupKeyAt(keyVecs, row, &keyBuf)
		st := h.groups[key]
		if st == nil {
			st = newAggState(keyVals, len(h.specs))
			h.groups[key] = st
		}
		for i, sp := range h.specs {
			var x float64
			if sp.Expr != nil {
				x = asFloat(vals[i], row)
			}
			st.counts[i]++
			st.sums[i] += x
			if x < st.mins[i] {
				st.mins[i] = x
			}
			if x > st.maxs[i] {
				st.maxs[i] = x
			}
			st.seen[i] = true
		}
	}
	return nil
}

// Finish implements Operator: emits one row per group, ordered by key. In
// partial mode it emits raw accumulator state instead (and nothing at all
// over empty input — the merge side synthesizes the empty-global row).
func (h *HashAgg) Finish() error {
	if h.done {
		return ErrFinished
	}
	h.done = true
	if h.partial {
		return emitPartialState(h.groups, h.specs, h.outSchema, h.batchRows, h.emit)
	}
	return emitFinalRows(h.groups, h.groupBy, h.specs, h.outSchema, h.batchRows, h.emit)
}

// groupKeyAt renders the group key of one row: the canonical string used as
// the hash key plus the key values in group-by order.
func groupKeyAt(keyVecs []storage.Vector, row int, buf *strings.Builder) (string, []any) {
	buf.Reset()
	keyVals := make([]any, len(keyVecs))
	for i, v := range keyVecs {
		switch v.Type {
		case storage.Int64, storage.Date:
			fmt.Fprintf(buf, "i%d|", v.I64[row])
			keyVals[i] = v.I64[row]
		case storage.Float64:
			fmt.Fprintf(buf, "f%g|", v.F64[row])
			keyVals[i] = v.F64[row]
		case storage.String:
			fmt.Fprintf(buf, "s%q|", v.Str[row])
			keyVals[i] = v.Str[row]
		}
	}
	return buf.String(), keyVals
}

// newAggState allocates accumulator state for one group of n aggregates.
func newAggState(keyVals []any, n int) *aggState {
	st := &aggState{
		keyVals: keyVals,
		sums:    make([]float64, n),
		counts:  make([]int64, n),
		mins:    make([]float64, n),
		maxs:    make([]float64, n),
		seen:    make([]bool, n),
	}
	for i := range st.mins {
		st.mins[i] = math.Inf(1)
		st.maxs[i] = math.Inf(-1)
	}
	return st
}

// sortedGroupKeys returns the group hash keys in deterministic order.
func sortedGroupKeys(groups map[string]*aggState) []string {
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// emitFinalRows streams final aggregate rows, one per group ordered by key,
// synthesizing the single zero row a global aggregate owes over empty input.
// Shared by HashAgg and MergeHashAgg so serial and partial+merge execution
// emit identical results.
func emitFinalRows(groups map[string]*aggState, groupBy []string, specs []AggSpec, outSchema storage.Schema, batchRows int, emit Emit) error {
	if len(groupBy) == 0 && len(groups) == 0 {
		// Global aggregate over empty input: one row of zeros (unseen
		// min/max render as 0 via zeroIfUnseen).
		groups[""] = newAggState(nil, len(specs))
	}
	out := storage.NewBatch(outSchema, batchRows)
	for _, k := range sortedGroupKeys(groups) {
		st := groups[k]
		row := make([]any, 0, outSchema.Arity())
		row = append(row, st.keyVals...)
		for i, sp := range specs {
			switch sp.Func {
			case Sum:
				row = append(row, st.sums[i])
			case Count:
				row = append(row, st.counts[i])
			case Avg:
				if st.counts[i] == 0 {
					row = append(row, 0.0)
				} else {
					row = append(row, st.sums[i]/float64(st.counts[i]))
				}
			case Min:
				row = append(row, zeroIfUnseen(st.mins[i], st.seen[i]))
			case Max:
				row = append(row, zeroIfUnseen(st.maxs[i], st.seen[i]))
			}
		}
		if err := out.AppendRow(row...); err != nil {
			return err
		}
		if out.Len() >= batchRows {
			if err := emit(out); err != nil {
				return err
			}
			out = storage.NewBatch(outSchema, batchRows)
		}
	}
	if out.Len() > 0 {
		return emit(out)
	}
	return nil
}

func zeroIfUnseen(v float64, seen bool) float64 {
	if !seen {
		return 0
	}
	return v
}
