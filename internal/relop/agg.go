package relop

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/storage"
)

// AggFunc enumerates aggregate functions.
type AggFunc int

// Aggregate functions.
const (
	// Sum accumulates Σx as float64.
	Sum AggFunc = iota
	// Count counts rows; Expr may be nil.
	Count
	// Avg computes Σx / n.
	Avg
	// Min keeps the smallest value.
	Min
	// Max keeps the largest value.
	Max
)

func (f AggFunc) String() string {
	switch f {
	case Sum:
		return "sum"
	case Count:
		return "count"
	case Avg:
		return "avg"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(f))
	}
}

// AggSpec describes one aggregate output column.
type AggSpec struct {
	// Func is the aggregate function.
	Func AggFunc
	// Expr is the aggregated expression (nil allowed for Count).
	Expr Expr
	// As names the output column.
	As string
}

// HashAgg is a hash-based grouping aggregate. It is a stop-&-go operator:
// Push accumulates, Finish emits one row per group (deterministically
// ordered by group key for reproducibility).
type HashAgg struct {
	groupBy   []string
	specs     []AggSpec
	inSchema  storage.Schema
	outSchema storage.Schema
	groups    map[string]*aggState
	emit      Emit
	batchRows int
	done      bool
}

type aggState struct {
	keyVals []any // group key values, in groupBy order
	sums    []float64
	counts  []int64
	mins    []float64
	maxs    []float64
	seen    []bool
}

// NewHashAgg builds a grouping aggregate. groupBy may be empty for a global
// aggregate (which emits exactly one row even over empty input, matching
// SQL semantics for COUNT/SUM over empty tables).
func NewHashAgg(in storage.Schema, groupBy []string, specs []AggSpec, emit Emit) (*HashAgg, error) {
	var outCols []storage.Column
	for _, g := range groupBy {
		i, err := in.Index(g)
		if err != nil {
			return nil, err
		}
		outCols = append(outCols, in.Cols[i])
	}
	for _, sp := range specs {
		t := storage.Float64
		switch sp.Func {
		case Count:
			t = storage.Int64
		case Sum, Avg, Min, Max:
			if sp.Expr == nil {
				return nil, fmt.Errorf("%w: %s requires an expression", ErrType, sp.Func)
			}
			et, err := sp.Expr.Type(in)
			if err != nil {
				return nil, err
			}
			if et == storage.String {
				return nil, fmt.Errorf("%w: %s over string expression", ErrType, sp.Func)
			}
		default:
			return nil, fmt.Errorf("%w: unknown aggregate %d", ErrType, int(sp.Func))
		}
		outCols = append(outCols, storage.Column{Name: sp.As, Type: t})
	}
	out, err := storage.NewSchema(outCols...)
	if err != nil {
		return nil, err
	}
	return &HashAgg{
		groupBy:   groupBy,
		specs:     specs,
		inSchema:  in,
		outSchema: out,
		groups:    make(map[string]*aggState),
		emit:      emit,
		batchRows: storage.RowsPerPage(out, storage.DefaultPageSize),
	}, nil
}

// OutSchema implements Operator.
func (h *HashAgg) OutSchema() storage.Schema { return h.outSchema }

// Push implements Operator.
func (h *HashAgg) Push(b *storage.Batch) error {
	if h.done {
		return ErrFinished
	}
	keyVecs := make([]storage.Vector, len(h.groupBy))
	for i, g := range h.groupBy {
		v, err := b.Col(g)
		if err != nil {
			return err
		}
		keyVecs[i] = v
	}
	vals := make([]storage.Vector, len(h.specs))
	for i, sp := range h.specs {
		if sp.Expr == nil {
			continue
		}
		v, err := sp.Expr.Eval(b)
		if err != nil {
			return err
		}
		vals[i] = v
	}
	var keyBuf strings.Builder
	for row := 0; row < b.Len(); row++ {
		keyBuf.Reset()
		keyVals := make([]any, len(keyVecs))
		for i, v := range keyVecs {
			switch v.Type {
			case storage.Int64, storage.Date:
				fmt.Fprintf(&keyBuf, "i%d|", v.I64[row])
				keyVals[i] = v.I64[row]
			case storage.Float64:
				fmt.Fprintf(&keyBuf, "f%g|", v.F64[row])
				keyVals[i] = v.F64[row]
			case storage.String:
				fmt.Fprintf(&keyBuf, "s%q|", v.Str[row])
				keyVals[i] = v.Str[row]
			}
		}
		st := h.groups[keyBuf.String()]
		if st == nil {
			st = &aggState{
				keyVals: keyVals,
				sums:    make([]float64, len(h.specs)),
				counts:  make([]int64, len(h.specs)),
				mins:    make([]float64, len(h.specs)),
				maxs:    make([]float64, len(h.specs)),
				seen:    make([]bool, len(h.specs)),
			}
			for i := range st.mins {
				st.mins[i] = math.Inf(1)
				st.maxs[i] = math.Inf(-1)
			}
			h.groups[keyBuf.String()] = st
		}
		for i, sp := range h.specs {
			var x float64
			if sp.Expr != nil {
				x = asFloat(vals[i], row)
			}
			st.counts[i]++
			st.sums[i] += x
			if x < st.mins[i] {
				st.mins[i] = x
			}
			if x > st.maxs[i] {
				st.maxs[i] = x
			}
			st.seen[i] = true
		}
	}
	return nil
}

// Finish implements Operator: emits one row per group, ordered by key.
func (h *HashAgg) Finish() error {
	if h.done {
		return ErrFinished
	}
	h.done = true
	if len(h.groupBy) == 0 && len(h.groups) == 0 {
		// Global aggregate over empty input: one row of zeros.
		h.groups[""] = &aggState{
			sums:   make([]float64, len(h.specs)),
			counts: make([]int64, len(h.specs)),
			mins:   make([]float64, len(h.specs)),
			maxs:   make([]float64, len(h.specs)),
			seen:   make([]bool, len(h.specs)),
		}
	}
	keys := make([]string, 0, len(h.groups))
	for k := range h.groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := storage.NewBatch(h.outSchema, h.batchRows)
	for _, k := range keys {
		st := h.groups[k]
		row := make([]any, 0, h.outSchema.Arity())
		row = append(row, st.keyVals...)
		for i, sp := range h.specs {
			switch sp.Func {
			case Sum:
				row = append(row, st.sums[i])
			case Count:
				row = append(row, st.counts[i])
			case Avg:
				if st.counts[i] == 0 {
					row = append(row, 0.0)
				} else {
					row = append(row, st.sums[i]/float64(st.counts[i]))
				}
			case Min:
				row = append(row, zeroIfUnseen(st.mins[i], st.seen[i]))
			case Max:
				row = append(row, zeroIfUnseen(st.maxs[i], st.seen[i]))
			}
		}
		if err := out.AppendRow(row...); err != nil {
			return err
		}
		if out.Len() >= h.batchRows {
			if err := h.emit(out); err != nil {
				return err
			}
			out = storage.NewBatch(h.outSchema, h.batchRows)
		}
	}
	if out.Len() > 0 {
		return h.emit(out)
	}
	return nil
}

func zeroIfUnseen(v float64, seen bool) float64 {
	if !seen {
		return 0
	}
	return v
}
