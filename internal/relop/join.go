package relop

import (
	"fmt"

	"repro/internal/storage"
)

// JoinKind selects hash-join semantics.
type JoinKind int

const (
	// Inner emits a combined row for every key match.
	Inner JoinKind = iota
	// Semi emits each probe row at most once if any build row matches
	// (EXISTS semantics, used by TPC-H Q4).
	Semi
	// Anti emits each probe row only if no build row matches.
	Anti
	// LeftOuter emits every probe row; non-matching rows carry zero/empty
	// build-side values plus a match count of zero when counting (used by
	// TPC-H Q13's left outer join).
	LeftOuter
)

func (k JoinKind) String() string {
	switch k {
	case Inner:
		return "inner"
	case Semi:
		return "semi"
	case Anti:
		return "anti"
	case LeftOuter:
		return "left-outer"
	default:
		return fmt.Sprintf("JoinKind(%d)", int(k))
	}
}

// HashTable is the sealed, immutable build side of a hash join: the
// materialized build rows plus the key index over them. Once sealed it is
// read-only by contract, so any number of probe operators — within one query
// or across concurrently executing queries that fingerprint-match the build
// subplan — may share the one table, each probing privately. Its row storage
// participates in the refcounted shared-page protocol (storage.Batch
// MarkShared/Release) so probers account for their claims like any fan-out
// consumer.
type HashTable struct {
	schema storage.Schema
	key    string
	keyIdx int
	rows   *storage.Batch
	index  map[int64][]int
}

// Schema returns the build-side schema.
func (t *HashTable) Schema() storage.Schema { return t.schema }

// Key returns the build key column name.
func (t *HashTable) Key() string { return t.key }

// Rows returns the materialized build rows. Shared tables are read-only.
func (t *HashTable) Rows() *storage.Batch { return t.rows }

// Len returns the number of build rows.
func (t *HashTable) Len() int { return t.rows.Len() }

// FootprintBytes approximates the resident size of the sealed table: the
// materialized build rows plus the key index (one bucket header and one
// 8-byte row reference per indexed row). The keep-alive cache charges this
// against its byte budget when deciding whether retaining the table beats
// rebuilding it.
func (t *HashTable) FootprintBytes() int64 {
	bytes := int64(t.rows.EstimatedBytes())
	for _, rows := range t.index {
		bytes += 16 + 8*int64(len(rows))
	}
	return bytes
}

// Matches returns the build-row indices matching k (nil when none).
func (t *HashTable) Matches(k int64) []int { return t.index[k] }

// MatchCounts returns, for each key in probeKeys, how many build rows match.
// Q13 uses this to count orders per customer including zero counts.
func (t *HashTable) MatchCounts(probeKeys []int64) []int64 {
	out := make([]int64, len(probeKeys))
	for i, k := range probeKeys {
		out[i] = int64(len(t.index[k]))
	}
	return out
}

// JoinBuild is the stop-&-go build phase of a hash join, split out so the
// engine can run one build for a whole group of join queries: Push every
// build-side batch, Finish, then hand Table to each prober.
type JoinBuild struct {
	tbl  *HashTable
	done bool
}

// NewJoinBuild constructs a build over the given schema keyed on buildKey.
func NewJoinBuild(build storage.Schema, buildKey string) (*JoinBuild, error) {
	return NewJoinBuildSized(build, buildKey, 0)
}

// NewJoinBuildSized is NewJoinBuild with a row-count hint: the row buffer and
// the key index are pre-sized to the estimated build cardinality, so a build
// whose model guessed right never rehashes or regrows mid-build. The hint is
// advisory — zero (or a wrong estimate) only costs the usual incremental
// growth, never correctness.
func NewJoinBuildSized(build storage.Schema, buildKey string, hint int) (*JoinBuild, error) {
	bi, err := build.Index(buildKey)
	if err != nil {
		return nil, err
	}
	if t := build.Cols[bi].Type; t != storage.Int64 && t != storage.Date {
		return nil, fmt.Errorf("%w: join key %q must be integer, is %v", ErrType, buildKey, t)
	}
	if hint < 0 {
		hint = 0
	}
	return &JoinBuild{tbl: &HashTable{
		schema: build,
		key:    buildKey,
		keyIdx: bi,
		rows:   storage.NewBatch(build, hint),
		index:  make(map[int64][]int, hint),
	}}, nil
}

// OutSchema implements Operator (the build "emits" nothing; the schema is
// the build side's, for fan-in adapters).
func (jb *JoinBuild) OutSchema() storage.Schema { return jb.tbl.schema }

// Push implements Operator: hashes one build-side batch into the table.
func (jb *JoinBuild) Push(b *storage.Batch) error {
	if jb.done {
		return ErrFinished
	}
	keys, err := b.Col(jb.tbl.key)
	if err != nil {
		return err
	}
	base := jb.tbl.rows.Len()
	for i := 0; i < b.Len(); i++ {
		jb.tbl.rows.AppendBatchRow(b, i)
		k := keys.I64[i]
		jb.tbl.index[k] = append(jb.tbl.index[k], base+i)
	}
	return nil
}

// Finish implements Operator: seals the table.
func (jb *JoinBuild) Finish() error {
	if jb.done {
		return ErrFinished
	}
	jb.done = true
	return nil
}

// ConsumesInput reports that Push copies what it needs from each batch.
func (jb *JoinBuild) ConsumesInput() bool { return true }

// Table returns the sealed table; it panics before Finish (an unsealed
// table is mutable and must not escape).
func (jb *JoinBuild) Table() *HashTable {
	if !jb.done {
		panic("relop: JoinBuild.Table before Finish")
	}
	return jb.tbl
}

// HashJoinProbe is the pipelined probe phase of a hash join: constructed
// against the build and probe schemas, attached to a sealed HashTable (its
// own build's, or one shared across queries), then streamed through
// Push/Finish like any operator.
//
// Output schema: probe columns followed by build columns (except the build
// key, which duplicates the probe key). Semi and Anti joins emit only probe
// columns.
type HashJoinProbe struct {
	kind        JoinKind
	buildKey    string
	probeKey    string
	buildSchema storage.Schema
	probeSchema storage.Schema
	outSchema   storage.Schema
	buildCols   []int // indices of emitted build columns
	tbl         *HashTable
	emit        Emit
	done        bool
}

// NewHashJoinProbe constructs the probe phase of a hash join of the given
// kind; AttachTable must be called before the first Push.
func NewHashJoinProbe(kind JoinKind, build storage.Schema, buildKey string, probe storage.Schema, probeKey string, emit Emit) (*HashJoinProbe, error) {
	bi, err := build.Index(buildKey)
	if err != nil {
		return nil, err
	}
	if t := build.Cols[bi].Type; t != storage.Int64 && t != storage.Date {
		return nil, fmt.Errorf("%w: join key %q must be integer, is %v", ErrType, buildKey, t)
	}
	pi, err := probe.Index(probeKey)
	if err != nil {
		return nil, err
	}
	if t := probe.Cols[pi].Type; t != storage.Int64 && t != storage.Date {
		return nil, fmt.Errorf("%w: join key %q must be integer, is %v", ErrType, probeKey, t)
	}
	h := &HashJoinProbe{
		kind:        kind,
		buildKey:    buildKey,
		probeKey:    probeKey,
		buildSchema: build,
		probeSchema: probe,
		emit:        emit,
	}
	var outCols []storage.Column
	outCols = append(outCols, probe.Cols...)
	if kind == Inner || kind == LeftOuter {
		for i, c := range build.Cols {
			if i == bi {
				continue
			}
			h.buildCols = append(h.buildCols, i)
			outCols = append(outCols, c)
		}
	}
	out, err := storage.NewSchema(outCols...)
	if err != nil {
		return nil, fmt.Errorf("relop: join output schema: %w (rename overlapping columns)", err)
	}
	h.outSchema = out
	return h, nil
}

// OutSchema implements Operator.
func (h *HashJoinProbe) OutSchema() storage.Schema { return h.outSchema }

// AttachTable points the probe at a sealed hash table. The table's schema
// and key must match what the probe was constructed against.
func (h *HashJoinProbe) AttachTable(t *HashTable) error {
	if t == nil {
		return fmt.Errorf("relop: attach of nil hash table")
	}
	if t.key != h.buildKey || !t.schema.Equal(h.buildSchema) {
		return fmt.Errorf("relop: hash table (key %q) does not match probe build side (key %q)", t.key, h.buildKey)
	}
	h.tbl = t
	return nil
}

// Attached reports whether a table has been attached.
func (h *HashJoinProbe) Attached() bool { return h.tbl != nil }

// Push implements Operator: probes one batch.
func (h *HashJoinProbe) Push(b *storage.Batch) error {
	if h.done {
		return ErrFinished
	}
	if h.tbl == nil {
		return fmt.Errorf("relop: probe before AttachTable")
	}
	keys, err := b.Col(h.probeKey)
	if err != nil {
		return err
	}
	out := storage.NewBatch(h.outSchema, b.Len())
	for i := 0; i < b.Len(); i++ {
		matches := h.tbl.index[keys.I64[i]]
		switch h.kind {
		case Semi:
			if len(matches) > 0 {
				appendProbeRow(out, b, i)
			}
		case Anti:
			if len(matches) == 0 {
				appendProbeRow(out, b, i)
			}
		case Inner:
			for _, m := range matches {
				appendProbeRow(out, b, i)
				h.appendBuildRow(out, len(b.Schema.Cols), m)
			}
		case LeftOuter:
			if len(matches) == 0 {
				appendProbeRow(out, b, i)
				h.appendNullBuildRow(out, len(b.Schema.Cols))
				continue
			}
			for _, m := range matches {
				appendProbeRow(out, b, i)
				h.appendBuildRow(out, len(b.Schema.Cols), m)
			}
		}
	}
	if out.Len() == 0 {
		return nil
	}
	return h.emit(out)
}

// Finish implements Operator.
func (h *HashJoinProbe) Finish() error {
	if h.done {
		return ErrFinished
	}
	h.done = true
	return nil
}

// ConsumesInput reports that Push copies matching rows into fresh output.
func (h *HashJoinProbe) ConsumesInput() bool { return true }

// HashJoin joins a build side and a probe side on int64 key columns: the
// classic single-query composition of the split build/probe phases. The
// build phase is stop-&-go (Section 5.3.3): call PushBuild for every build
// batch, then FinishBuild (which seals the table and attaches the probe),
// then stream the probe side through Push/Finish.
type HashJoin struct {
	build *JoinBuild
	probe *HashJoinProbe
}

// NewHashJoin constructs a hash join of the given kind.
func NewHashJoin(kind JoinKind, build storage.Schema, buildKey string, probe storage.Schema, probeKey string, emit Emit) (*HashJoin, error) {
	jb, err := NewJoinBuild(build, buildKey)
	if err != nil {
		return nil, err
	}
	pr, err := NewHashJoinProbe(kind, build, buildKey, probe, probeKey, emit)
	if err != nil {
		return nil, err
	}
	return &HashJoin{build: jb, probe: pr}, nil
}

// OutSchema implements Operator.
func (h *HashJoin) OutSchema() storage.Schema { return h.probe.OutSchema() }

// PushBuild consumes one build-side batch.
func (h *HashJoin) PushBuild(b *storage.Batch) error { return h.build.Push(b) }

// FinishBuild seals the hash table and attaches the probe phase to it; Push
// may be called afterwards.
func (h *HashJoin) FinishBuild() error {
	if err := h.build.Finish(); err != nil {
		return err
	}
	return h.probe.AttachTable(h.build.Table())
}

// Push implements Operator: probes one batch.
func (h *HashJoin) Push(b *storage.Batch) error {
	if !h.probe.Attached() && !h.build.done {
		return fmt.Errorf("relop: probe before FinishBuild")
	}
	return h.probe.Push(b)
}

// Finish implements Operator.
func (h *HashJoin) Finish() error { return h.probe.Finish() }

// ConsumesInput reports that both phases copy what they need per batch.
func (h *HashJoin) ConsumesInput() bool { return true }

// Table returns the sealed hash table (valid after FinishBuild).
func (h *HashJoin) Table() *HashTable { return h.build.Table() }

// BuildFanIn adapts the build side to the Operator interface so a producer
// can Push/Finish into it like any other consumer.
func (h *HashJoin) BuildFanIn() Operator { return &buildSide{h: h} }

type buildSide struct{ h *HashJoin }

func (b *buildSide) OutSchema() storage.Schema   { return b.h.build.tbl.schema }
func (b *buildSide) Push(x *storage.Batch) error { return b.h.PushBuild(x) }
func (b *buildSide) Finish() error               { return b.h.FinishBuild() }

func appendProbeRow(out *storage.Batch, probe *storage.Batch, row int) {
	for c := range probe.Vecs {
		out.Vecs[c].AppendFrom(probe.Vecs[c], row)
	}
}

func (h *HashJoinProbe) appendBuildRow(out *storage.Batch, offset, row int) {
	for j, ci := range h.buildCols {
		out.Vecs[offset+j].AppendFrom(h.tbl.rows.Vecs[ci], row)
	}
}

func (h *HashJoinProbe) appendNullBuildRow(out *storage.Batch, offset int) {
	for j, ci := range h.buildCols {
		switch h.buildSchema.Cols[ci].Type {
		case storage.Int64, storage.Date:
			out.Vecs[offset+j].AppendInt(0)
		case storage.Float64:
			out.Vecs[offset+j].AppendFloat(0)
		case storage.String:
			out.Vecs[offset+j].AppendString("")
		}
	}
}

// MatchCounts returns, for each key in probeKeys, how many build rows match
// (valid after FinishBuild).
func (h *HashJoin) MatchCounts(probeKeys []int64) []int64 {
	return h.build.Table().MatchCounts(probeKeys)
}

// NLJoin is a (block) nested-loop join: the inner side is fully
// materialized, then each outer batch is joined against it with an arbitrary
// predicate over the combined row. It is fully pipelinable on the outer side
// (Section 5.3.1).
type NLJoin struct {
	pred        Pred
	inner       *storage.Batch
	outerSchema storage.Schema
	outSchema   storage.Schema
	emit        Emit
	innerDone   bool
	done        bool
}

// NewNLJoin builds a nested-loop join; pred filters the concatenated
// (outer ++ inner) row. Column names must not collide.
func NewNLJoin(outer, inner storage.Schema, pred Pred, emit Emit) (*NLJoin, error) {
	var cols []storage.Column
	cols = append(cols, outer.Cols...)
	cols = append(cols, inner.Cols...)
	out, err := storage.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	if pred == nil {
		pred = True{}
	}
	return &NLJoin{
		pred:        pred,
		inner:       storage.NewBatch(inner, 0),
		outerSchema: outer,
		outSchema:   out,
		emit:        emit,
	}, nil
}

// OutSchema implements Operator.
func (j *NLJoin) OutSchema() storage.Schema { return j.outSchema }

// PushInner materializes inner-side batches.
func (j *NLJoin) PushInner(b *storage.Batch) error {
	if j.innerDone {
		return ErrFinished
	}
	for i := 0; i < b.Len(); i++ {
		j.inner.AppendBatchRow(b, i)
	}
	return nil
}

// FinishInner seals the inner side.
func (j *NLJoin) FinishInner() error {
	if j.innerDone {
		return ErrFinished
	}
	j.innerDone = true
	return nil
}

// Push implements Operator: joins one outer batch against the whole inner.
func (j *NLJoin) Push(b *storage.Batch) error {
	if j.done {
		return ErrFinished
	}
	if !j.innerDone {
		return fmt.Errorf("relop: outer push before FinishInner")
	}
	out := storage.NewBatch(j.outSchema, b.Len())
	nOuterCols := len(j.outerSchema.Cols)
	for o := 0; o < b.Len(); o++ {
		for in := 0; in < j.inner.Len(); in++ {
			// Materialize the candidate combined row into a 1-row batch and
			// test the predicate. Block NLJ would batch this; correctness
			// first, the engine charges its cost via the work model.
			cand := storage.NewBatch(j.outSchema, 1)
			for c := 0; c < nOuterCols; c++ {
				cand.Vecs[c].AppendFrom(b.Vecs[c], o)
			}
			for c := range j.inner.Vecs {
				cand.Vecs[nOuterCols+c].AppendFrom(j.inner.Vecs[c], in)
			}
			sel, err := j.pred.Filter(cand, nil)
			if err != nil {
				return err
			}
			if len(sel) == 1 {
				out.AppendBatchRow(cand, 0)
			}
		}
	}
	if out.Len() == 0 {
		return nil
	}
	return j.emit(out)
}

// Finish implements Operator.
func (j *NLJoin) Finish() error {
	if j.done {
		return ErrFinished
	}
	j.done = true
	return nil
}

// MergeJoin joins two sorted inputs on integer keys. Both inputs are
// accumulated (the engine sorts them upstream via Sort operators, making the
// ensemble the three-operation decomposition of Section 5.3.2), then merged
// on Finish. Duplicate keys produce the full cross product per key group.
type MergeJoin struct {
	leftKey, rightKey string
	left, right       *storage.Batch
	outSchema         storage.Schema
	rightCols         []int
	emit              Emit
	leftDone, done    bool
}

// NewMergeJoin builds a merge join over sorted inputs.
func NewMergeJoin(left storage.Schema, leftKey string, right storage.Schema, rightKey string, emit Emit) (*MergeJoin, error) {
	li, err := left.Index(leftKey)
	if err != nil {
		return nil, err
	}
	if t := left.Cols[li].Type; t != storage.Int64 && t != storage.Date {
		return nil, fmt.Errorf("%w: merge key %q must be integer", ErrType, leftKey)
	}
	ri, err := right.Index(rightKey)
	if err != nil {
		return nil, err
	}
	if t := right.Cols[ri].Type; t != storage.Int64 && t != storage.Date {
		return nil, fmt.Errorf("%w: merge key %q must be integer", ErrType, rightKey)
	}
	m := &MergeJoin{
		leftKey:  leftKey,
		rightKey: rightKey,
		left:     storage.NewBatch(left, 0),
		right:    storage.NewBatch(right, 0),
		emit:     emit,
	}
	var cols []storage.Column
	cols = append(cols, left.Cols...)
	for i, c := range right.Cols {
		if i == ri {
			continue
		}
		m.rightCols = append(m.rightCols, i)
		cols = append(cols, c)
	}
	out, err := storage.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	m.outSchema = out
	return m, nil
}

// OutSchema implements Operator.
func (m *MergeJoin) OutSchema() storage.Schema { return m.outSchema }

// PushLeft accumulates left-side rows (must arrive key-sorted).
func (m *MergeJoin) PushLeft(b *storage.Batch) error {
	if m.leftDone {
		return ErrFinished
	}
	for i := 0; i < b.Len(); i++ {
		m.left.AppendBatchRow(b, i)
	}
	return nil
}

// FinishLeft seals the left side.
func (m *MergeJoin) FinishLeft() error {
	if m.leftDone {
		return ErrFinished
	}
	m.leftDone = true
	return nil
}

// Push accumulates right-side rows (must arrive key-sorted).
func (m *MergeJoin) Push(b *storage.Batch) error {
	if m.done {
		return ErrFinished
	}
	for i := 0; i < b.Len(); i++ {
		m.right.AppendBatchRow(b, i)
	}
	return nil
}

// Finish implements Operator: merges the two sorted sides and emits.
func (m *MergeJoin) Finish() error {
	if m.done {
		return ErrFinished
	}
	if !m.leftDone {
		return fmt.Errorf("relop: right side finished before left")
	}
	m.done = true
	lk := m.left.MustCol(m.leftKey).I64
	rk := m.right.MustCol(m.rightKey).I64
	out := storage.NewBatch(m.outSchema, 0)
	flush := func() error {
		if out.Len() == 0 {
			return nil
		}
		err := m.emit(out)
		out = storage.NewBatch(m.outSchema, 0)
		return err
	}
	i, j := 0, 0
	for i < len(lk) && j < len(rk) {
		switch {
		case lk[i] < rk[j]:
			i++
		case lk[i] > rk[j]:
			j++
		default:
			key := lk[i]
			iEnd := i
			for iEnd < len(lk) && lk[iEnd] == key {
				iEnd++
			}
			jEnd := j
			for jEnd < len(rk) && rk[jEnd] == key {
				jEnd++
			}
			for a := i; a < iEnd; a++ {
				for b := j; b < jEnd; b++ {
					for c := range m.left.Vecs {
						out.Vecs[c].AppendFrom(m.left.Vecs[c], a)
					}
					for ci, rc := range m.rightCols {
						out.Vecs[len(m.left.Vecs)+ci].AppendFrom(m.right.Vecs[rc], b)
					}
				}
			}
			if out.Len() >= 1024 {
				if err := flush(); err != nil {
					return err
				}
			}
			i, j = iEnd, jEnd
		}
	}
	return flush()
}
