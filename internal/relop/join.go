package relop

import (
	"fmt"

	"repro/internal/storage"
)

// JoinKind selects hash-join semantics.
type JoinKind int

const (
	// Inner emits a combined row for every key match.
	Inner JoinKind = iota
	// Semi emits each probe row at most once if any build row matches
	// (EXISTS semantics, used by TPC-H Q4).
	Semi
	// Anti emits each probe row only if no build row matches.
	Anti
	// LeftOuter emits every probe row; non-matching rows carry zero/empty
	// build-side values plus a match count of zero when counting (used by
	// TPC-H Q13's left outer join).
	LeftOuter
)

func (k JoinKind) String() string {
	switch k {
	case Inner:
		return "inner"
	case Semi:
		return "semi"
	case Anti:
		return "anti"
	case LeftOuter:
		return "left-outer"
	default:
		return fmt.Sprintf("JoinKind(%d)", int(k))
	}
}

// HashJoin joins a build side and a probe side on int64 key columns. The
// build phase is stop-&-go (Section 5.3.3): call PushBuild for every build
// batch, then FinishBuild, then stream the probe side through Push/Finish.
//
// Output schema: probe columns followed by build columns (except the build
// key, which duplicates the probe key). Semi and Anti joins emit only probe
// columns.
type HashJoin struct {
	kind        JoinKind
	buildKey    string
	probeKey    string
	buildSchema storage.Schema
	probeSchema storage.Schema
	outSchema   storage.Schema
	buildCols   []int // indices of emitted build columns
	table       map[int64][]int
	buildRows   *storage.Batch
	emit        Emit
	buildDone   bool
	done        bool
}

// NewHashJoin constructs a hash join of the given kind.
func NewHashJoin(kind JoinKind, build storage.Schema, buildKey string, probe storage.Schema, probeKey string, emit Emit) (*HashJoin, error) {
	bi, err := build.Index(buildKey)
	if err != nil {
		return nil, err
	}
	if t := build.Cols[bi].Type; t != storage.Int64 && t != storage.Date {
		return nil, fmt.Errorf("%w: join key %q must be integer, is %v", ErrType, buildKey, t)
	}
	pi, err := probe.Index(probeKey)
	if err != nil {
		return nil, err
	}
	if t := probe.Cols[pi].Type; t != storage.Int64 && t != storage.Date {
		return nil, fmt.Errorf("%w: join key %q must be integer, is %v", ErrType, probeKey, t)
	}
	h := &HashJoin{
		kind:        kind,
		buildKey:    buildKey,
		probeKey:    probeKey,
		buildSchema: build,
		probeSchema: probe,
		table:       make(map[int64][]int),
		buildRows:   storage.NewBatch(build, 0),
		emit:        emit,
	}
	var outCols []storage.Column
	outCols = append(outCols, probe.Cols...)
	if kind == Inner || kind == LeftOuter {
		for i, c := range build.Cols {
			if i == bi {
				continue
			}
			h.buildCols = append(h.buildCols, i)
			outCols = append(outCols, c)
		}
	}
	out, err := storage.NewSchema(outCols...)
	if err != nil {
		return nil, fmt.Errorf("relop: join output schema: %w (rename overlapping columns)", err)
	}
	h.outSchema = out
	return h, nil
}

// OutSchema implements Operator.
func (h *HashJoin) OutSchema() storage.Schema { return h.outSchema }

// PushBuild consumes one build-side batch.
func (h *HashJoin) PushBuild(b *storage.Batch) error {
	if h.buildDone {
		return ErrFinished
	}
	keys, err := b.Col(h.buildKey)
	if err != nil {
		return err
	}
	base := h.buildRows.Len()
	for i := 0; i < b.Len(); i++ {
		h.buildRows.AppendBatchRow(b, i)
		k := keys.I64[i]
		h.table[k] = append(h.table[k], base+i)
	}
	return nil
}

// FinishBuild seals the hash table; Push may be called afterwards.
func (h *HashJoin) FinishBuild() error {
	if h.buildDone {
		return ErrFinished
	}
	h.buildDone = true
	return nil
}

// Push implements Operator: probes one batch.
func (h *HashJoin) Push(b *storage.Batch) error {
	if h.done {
		return ErrFinished
	}
	if !h.buildDone {
		return fmt.Errorf("relop: probe before FinishBuild")
	}
	keys, err := b.Col(h.probeKey)
	if err != nil {
		return err
	}
	out := storage.NewBatch(h.outSchema, b.Len())
	for i := 0; i < b.Len(); i++ {
		matches := h.table[keys.I64[i]]
		switch h.kind {
		case Semi:
			if len(matches) > 0 {
				appendProbeRow(out, b, i)
			}
		case Anti:
			if len(matches) == 0 {
				appendProbeRow(out, b, i)
			}
		case Inner:
			for _, m := range matches {
				appendProbeRow(out, b, i)
				h.appendBuildRow(out, len(b.Schema.Cols), m)
			}
		case LeftOuter:
			if len(matches) == 0 {
				appendProbeRow(out, b, i)
				h.appendNullBuildRow(out, len(b.Schema.Cols))
				continue
			}
			for _, m := range matches {
				appendProbeRow(out, b, i)
				h.appendBuildRow(out, len(b.Schema.Cols), m)
			}
		}
	}
	if out.Len() == 0 {
		return nil
	}
	return h.emit(out)
}

// Finish implements Operator.
func (h *HashJoin) Finish() error {
	if h.done {
		return ErrFinished
	}
	h.done = true
	return nil
}

// BuildFanIn adapts the build side to the Operator interface so a producer
// can Push/Finish into it like any other consumer.
func (h *HashJoin) BuildFanIn() Operator { return &buildSide{h: h} }

type buildSide struct{ h *HashJoin }

func (b *buildSide) OutSchema() storage.Schema   { return b.h.buildSchema }
func (b *buildSide) Push(x *storage.Batch) error { return b.h.PushBuild(x) }
func (b *buildSide) Finish() error               { return b.h.FinishBuild() }

func appendProbeRow(out *storage.Batch, probe *storage.Batch, row int) {
	for c := range probe.Vecs {
		out.Vecs[c].AppendFrom(probe.Vecs[c], row)
	}
}

func (h *HashJoin) appendBuildRow(out *storage.Batch, offset, row int) {
	for j, ci := range h.buildCols {
		out.Vecs[offset+j].AppendFrom(h.buildRows.Vecs[ci], row)
	}
}

func (h *HashJoin) appendNullBuildRow(out *storage.Batch, offset int) {
	for j, ci := range h.buildCols {
		switch h.buildSchema.Cols[ci].Type {
		case storage.Int64, storage.Date:
			out.Vecs[offset+j].AppendInt(0)
		case storage.Float64:
			out.Vecs[offset+j].AppendFloat(0)
		case storage.String:
			out.Vecs[offset+j].AppendString("")
		}
	}
}

// MatchCounts returns, for each key in probeKeys, how many build rows match.
// Q13 uses this to count orders per customer including zero counts.
func (h *HashJoin) MatchCounts(probeKeys []int64) []int64 {
	out := make([]int64, len(probeKeys))
	for i, k := range probeKeys {
		out[i] = int64(len(h.table[k]))
	}
	return out
}

// NLJoin is a (block) nested-loop join: the inner side is fully
// materialized, then each outer batch is joined against it with an arbitrary
// predicate over the combined row. It is fully pipelinable on the outer side
// (Section 5.3.1).
type NLJoin struct {
	pred        Pred
	inner       *storage.Batch
	outerSchema storage.Schema
	outSchema   storage.Schema
	emit        Emit
	innerDone   bool
	done        bool
}

// NewNLJoin builds a nested-loop join; pred filters the concatenated
// (outer ++ inner) row. Column names must not collide.
func NewNLJoin(outer, inner storage.Schema, pred Pred, emit Emit) (*NLJoin, error) {
	var cols []storage.Column
	cols = append(cols, outer.Cols...)
	cols = append(cols, inner.Cols...)
	out, err := storage.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	if pred == nil {
		pred = True{}
	}
	return &NLJoin{
		pred:        pred,
		inner:       storage.NewBatch(inner, 0),
		outerSchema: outer,
		outSchema:   out,
		emit:        emit,
	}, nil
}

// OutSchema implements Operator.
func (j *NLJoin) OutSchema() storage.Schema { return j.outSchema }

// PushInner materializes inner-side batches.
func (j *NLJoin) PushInner(b *storage.Batch) error {
	if j.innerDone {
		return ErrFinished
	}
	for i := 0; i < b.Len(); i++ {
		j.inner.AppendBatchRow(b, i)
	}
	return nil
}

// FinishInner seals the inner side.
func (j *NLJoin) FinishInner() error {
	if j.innerDone {
		return ErrFinished
	}
	j.innerDone = true
	return nil
}

// Push implements Operator: joins one outer batch against the whole inner.
func (j *NLJoin) Push(b *storage.Batch) error {
	if j.done {
		return ErrFinished
	}
	if !j.innerDone {
		return fmt.Errorf("relop: outer push before FinishInner")
	}
	out := storage.NewBatch(j.outSchema, b.Len())
	nOuterCols := len(j.outerSchema.Cols)
	for o := 0; o < b.Len(); o++ {
		for in := 0; in < j.inner.Len(); in++ {
			// Materialize the candidate combined row into a 1-row batch and
			// test the predicate. Block NLJ would batch this; correctness
			// first, the engine charges its cost via the work model.
			cand := storage.NewBatch(j.outSchema, 1)
			for c := 0; c < nOuterCols; c++ {
				cand.Vecs[c].AppendFrom(b.Vecs[c], o)
			}
			for c := range j.inner.Vecs {
				cand.Vecs[nOuterCols+c].AppendFrom(j.inner.Vecs[c], in)
			}
			sel, err := j.pred.Filter(cand, nil)
			if err != nil {
				return err
			}
			if len(sel) == 1 {
				out.AppendBatchRow(cand, 0)
			}
		}
	}
	if out.Len() == 0 {
		return nil
	}
	return j.emit(out)
}

// Finish implements Operator.
func (j *NLJoin) Finish() error {
	if j.done {
		return ErrFinished
	}
	j.done = true
	return nil
}

// MergeJoin joins two sorted inputs on integer keys. Both inputs are
// accumulated (the engine sorts them upstream via Sort operators, making the
// ensemble the three-operation decomposition of Section 5.3.2), then merged
// on Finish. Duplicate keys produce the full cross product per key group.
type MergeJoin struct {
	leftKey, rightKey string
	left, right       *storage.Batch
	outSchema         storage.Schema
	rightCols         []int
	emit              Emit
	leftDone, done    bool
}

// NewMergeJoin builds a merge join over sorted inputs.
func NewMergeJoin(left storage.Schema, leftKey string, right storage.Schema, rightKey string, emit Emit) (*MergeJoin, error) {
	li, err := left.Index(leftKey)
	if err != nil {
		return nil, err
	}
	if t := left.Cols[li].Type; t != storage.Int64 && t != storage.Date {
		return nil, fmt.Errorf("%w: merge key %q must be integer", ErrType, leftKey)
	}
	ri, err := right.Index(rightKey)
	if err != nil {
		return nil, err
	}
	if t := right.Cols[ri].Type; t != storage.Int64 && t != storage.Date {
		return nil, fmt.Errorf("%w: merge key %q must be integer", ErrType, rightKey)
	}
	m := &MergeJoin{
		leftKey:  leftKey,
		rightKey: rightKey,
		left:     storage.NewBatch(left, 0),
		right:    storage.NewBatch(right, 0),
		emit:     emit,
	}
	var cols []storage.Column
	cols = append(cols, left.Cols...)
	for i, c := range right.Cols {
		if i == ri {
			continue
		}
		m.rightCols = append(m.rightCols, i)
		cols = append(cols, c)
	}
	out, err := storage.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	m.outSchema = out
	return m, nil
}

// OutSchema implements Operator.
func (m *MergeJoin) OutSchema() storage.Schema { return m.outSchema }

// PushLeft accumulates left-side rows (must arrive key-sorted).
func (m *MergeJoin) PushLeft(b *storage.Batch) error {
	if m.leftDone {
		return ErrFinished
	}
	for i := 0; i < b.Len(); i++ {
		m.left.AppendBatchRow(b, i)
	}
	return nil
}

// FinishLeft seals the left side.
func (m *MergeJoin) FinishLeft() error {
	if m.leftDone {
		return ErrFinished
	}
	m.leftDone = true
	return nil
}

// Push accumulates right-side rows (must arrive key-sorted).
func (m *MergeJoin) Push(b *storage.Batch) error {
	if m.done {
		return ErrFinished
	}
	for i := 0; i < b.Len(); i++ {
		m.right.AppendBatchRow(b, i)
	}
	return nil
}

// Finish implements Operator: merges the two sorted sides and emits.
func (m *MergeJoin) Finish() error {
	if m.done {
		return ErrFinished
	}
	if !m.leftDone {
		return fmt.Errorf("relop: right side finished before left")
	}
	m.done = true
	lk := m.left.MustCol(m.leftKey).I64
	rk := m.right.MustCol(m.rightKey).I64
	out := storage.NewBatch(m.outSchema, 0)
	flush := func() error {
		if out.Len() == 0 {
			return nil
		}
		err := m.emit(out)
		out = storage.NewBatch(m.outSchema, 0)
		return err
	}
	i, j := 0, 0
	for i < len(lk) && j < len(rk) {
		switch {
		case lk[i] < rk[j]:
			i++
		case lk[i] > rk[j]:
			j++
		default:
			key := lk[i]
			iEnd := i
			for iEnd < len(lk) && lk[iEnd] == key {
				iEnd++
			}
			jEnd := j
			for jEnd < len(rk) && rk[jEnd] == key {
				jEnd++
			}
			for a := i; a < iEnd; a++ {
				for b := j; b < jEnd; b++ {
					for c := range m.left.Vecs {
						out.Vecs[c].AppendFrom(m.left.Vecs[c], a)
					}
					for ci, rc := range m.rightCols {
						out.Vecs[len(m.left.Vecs)+ci].AppendFrom(m.right.Vecs[rc], b)
					}
				}
			}
			if out.Len() >= 1024 {
				if err := flush(); err != nil {
					return err
				}
			}
			i, j = iEnd, jEnd
		}
	}
	return flush()
}
