package relop

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/storage"
)

// SortKey describes one sort column.
type SortKey struct {
	// Column is the sort column name.
	Column string
	// Desc sorts descending when true.
	Desc bool
}

// Sort is a stop-&-go operator: it buffers all input, sorts by the keys,
// and emits ordered batches on Finish. This is exactly the operator class
// Section 5.2 models as decoupling the rates below it from those above.
type Sort struct {
	keys      []SortKey
	schema    storage.Schema
	buf       *storage.Batch
	emit      Emit
	batchRows int
	done      bool
}

// NewSort builds a sort over the given schema.
func NewSort(schema storage.Schema, keys []SortKey, emit Emit) (*Sort, error) {
	return NewSortSized(schema, keys, 0, emit)
}

// NewSortSized is NewSort with a row-count hint pre-sizing the sort buffer to
// the estimated input cardinality, so a well-estimated sort buffers without
// reallocating. Advisory only.
func NewSortSized(schema storage.Schema, keys []SortKey, hint int, emit Emit) (*Sort, error) {
	for _, k := range keys {
		if _, err := schema.Index(k.Column); err != nil {
			return nil, err
		}
	}
	if hint < 0 {
		hint = 0
	}
	return &Sort{
		keys:      keys,
		schema:    schema,
		buf:       storage.NewBatch(schema, hint),
		emit:      emit,
		batchRows: storage.RowsPerPage(schema, storage.DefaultPageSize),
	}, nil
}

// OutSchema implements Operator.
func (s *Sort) OutSchema() storage.Schema { return s.schema }

// ConsumesInput reports that Push buffers a vector-level copy of each batch.
func (s *Sort) ConsumesInput() bool { return true }

// Push implements Operator: buffers rows (one vector-level copy per column).
func (s *Sort) Push(b *storage.Batch) error {
	if s.done {
		return ErrFinished
	}
	s.buf.AppendBatch(b)
	return nil
}

// Finish implements Operator: sorts and emits.
func (s *Sort) Finish() error {
	if s.done {
		return ErrFinished
	}
	s.done = true
	n := s.buf.Len()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	keyVecs := make([]storage.Vector, len(s.keys))
	for i, k := range s.keys {
		keyVecs[i] = s.buf.MustCol(k.Column)
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for i, k := range s.keys {
			c := compareAt(keyVecs[i], idx[a], idx[b])
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	for lo := 0; lo < n; lo += s.batchRows {
		hi := lo + s.batchRows
		if hi > n {
			hi = n
		}
		if err := s.emit(s.buf.Gather(idx[lo:hi])); err != nil {
			return err
		}
	}
	return nil
}

// compareAt orders two rows of one vector: -1, 0, or 1.
func compareAt(v storage.Vector, a, b int) int { return compareAt2(v, a, v, b) }

// SortMerge is the fan-in half of a partitioned sort: each pushed batch
// must itself be ordered by the keys (every page a Sort clone emits is),
// and Finish k-way merges the buffered runs into globally ordered output.
// SortMerge over clone outputs ≡ one serial Sort over the whole input
// (stability across runs follows arrival order, which is all a parallel
// plan can promise anyway).
type SortMerge struct {
	keys      []SortKey
	schema    storage.Schema
	runs      []*storage.Batch
	emit      Emit
	batchRows int
	done      bool
}

// NewSortMerge builds a merge over the given schema and keys.
func NewSortMerge(schema storage.Schema, keys []SortKey, emit Emit) (*SortMerge, error) {
	for _, k := range keys {
		if _, err := schema.Index(k.Column); err != nil {
			return nil, err
		}
	}
	return &SortMerge{
		keys:      keys,
		schema:    schema,
		emit:      emit,
		batchRows: storage.RowsPerPage(schema, storage.DefaultPageSize),
	}, nil
}

// OutSchema implements Operator.
func (s *SortMerge) OutSchema() storage.Schema { return s.schema }

// Push implements Operator: buffers one sorted run.
func (s *SortMerge) Push(b *storage.Batch) error {
	if s.done {
		return ErrFinished
	}
	if b.Len() > 0 {
		s.runs = append(s.runs, b)
	}
	return nil
}

// Finish implements Operator: k-way merges the runs and emits ordered
// batches.
func (s *SortMerge) Finish() error {
	if s.done {
		return ErrFinished
	}
	s.done = true
	type cursor struct {
		run *storage.Batch
		key []storage.Vector // key column vectors of run
		row int
		ord int // run arrival index, the deterministic tie-break
	}
	// less orders heap entries by sort keys, breaking ties by run arrival
	// order so the merge is deterministic.
	heap := make([]*cursor, 0, len(s.runs))
	less := func(a, b *cursor) bool {
		for i, k := range s.keys {
			c := compareAt2(a.key[i], a.row, b.key[i], b.row)
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return a.ord < b.ord
	}
	push := func(c *cursor) {
		heap = append(heap, c)
		for i := len(heap) - 1; i > 0; {
			p := (i - 1) / 2
			if !less(heap[i], heap[p]) {
				break
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	pop := func() *cursor {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			min := i
			if l < len(heap) && less(heap[l], heap[min]) {
				min = l
			}
			if r < len(heap) && less(heap[r], heap[min]) {
				min = r
			}
			if min == i {
				break
			}
			heap[i], heap[min] = heap[min], heap[i]
			i = min
		}
		return top
	}
	for ri, run := range s.runs {
		c := &cursor{run: run, key: make([]storage.Vector, len(s.keys)), ord: ri}
		for i, k := range s.keys {
			c.key[i] = run.MustCol(k.Column)
		}
		push(c)
	}
	out := storage.NewBatch(s.schema, s.batchRows)
	flush := func() error {
		if out.Len() == 0 {
			return nil
		}
		err := s.emit(out)
		out = storage.NewBatch(s.schema, s.batchRows)
		return err
	}
	for len(heap) > 0 {
		c := pop()
		if len(heap) == 0 {
			// Single run left: bulk-copy its tail in page-size chunks.
			for lo := c.row; lo < c.run.Len(); {
				take := s.batchRows - out.Len()
				if take > c.run.Len()-lo {
					take = c.run.Len() - lo
				}
				out.AppendBatch(c.run.Slice(lo, lo+take))
				lo += take
				if out.Len() >= s.batchRows {
					if err := flush(); err != nil {
						return err
					}
				}
			}
			break
		}
		out.AppendBatchRow(c.run, c.row)
		c.row++
		if c.row < c.run.Len() {
			push(c)
		}
		if out.Len() >= s.batchRows {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	s.runs = nil
	return flush()
}

// compareAt2 orders one row of vector a against one row of vector b (same
// type): -1, 0, or 1.
func compareAt2(a storage.Vector, ai int, b storage.Vector, bi int) int {
	switch a.Type {
	case storage.Int64, storage.Date:
		switch {
		case a.I64[ai] < b.I64[bi]:
			return -1
		case a.I64[ai] > b.I64[bi]:
			return 1
		}
	case storage.Float64:
		switch {
		case a.F64[ai] < b.F64[bi]:
			return -1
		case a.F64[ai] > b.F64[bi]:
			return 1
		}
	case storage.String:
		return strings.Compare(a.Str[ai], b.Str[bi])
	}
	return 0
}

// TopK keeps the k smallest (or largest) rows by the sort keys. It bounds
// memory where a full Sort would buffer everything.
type TopK struct {
	inner *Sort
	k     int
	emit  Emit
}

// NewTopK builds a TopK operator.
func NewTopK(schema storage.Schema, keys []SortKey, k int, emit Emit) (*TopK, error) {
	if k <= 0 {
		return nil, fmt.Errorf("relop: TopK requires k > 0, got %d", k)
	}
	t := &TopK{k: k, emit: emit}
	collected := 0
	inner, err := NewSort(schema, keys, func(b *storage.Batch) error {
		if collected >= k {
			return nil
		}
		take := b.Len()
		if collected+take > k {
			take = k - collected
		}
		collected += take
		return emit(b.Slice(0, take))
	})
	if err != nil {
		return nil, err
	}
	t.inner = inner
	return t, nil
}

// OutSchema implements Operator.
func (t *TopK) OutSchema() storage.Schema { return t.inner.OutSchema() }

// Push implements Operator.
func (t *TopK) Push(b *storage.Batch) error { return t.inner.Push(b) }

// Finish implements Operator.
func (t *TopK) Finish() error { return t.inner.Finish() }
