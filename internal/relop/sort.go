package relop

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/storage"
)

// SortKey describes one sort column.
type SortKey struct {
	// Column is the sort column name.
	Column string
	// Desc sorts descending when true.
	Desc bool
}

// Sort is a stop-&-go operator: it buffers all input, sorts by the keys,
// and emits ordered batches on Finish. This is exactly the operator class
// Section 5.2 models as decoupling the rates below it from those above.
type Sort struct {
	keys      []SortKey
	schema    storage.Schema
	buf       *storage.Batch
	emit      Emit
	batchRows int
	done      bool
}

// NewSort builds a sort over the given schema.
func NewSort(schema storage.Schema, keys []SortKey, emit Emit) (*Sort, error) {
	for _, k := range keys {
		if _, err := schema.Index(k.Column); err != nil {
			return nil, err
		}
	}
	return &Sort{
		keys:      keys,
		schema:    schema,
		buf:       storage.NewBatch(schema, 0),
		emit:      emit,
		batchRows: storage.RowsPerPage(schema, storage.DefaultPageSize),
	}, nil
}

// OutSchema implements Operator.
func (s *Sort) OutSchema() storage.Schema { return s.schema }

// Push implements Operator: buffers rows.
func (s *Sort) Push(b *storage.Batch) error {
	if s.done {
		return ErrFinished
	}
	for i := 0; i < b.Len(); i++ {
		s.buf.AppendBatchRow(b, i)
	}
	return nil
}

// Finish implements Operator: sorts and emits.
func (s *Sort) Finish() error {
	if s.done {
		return ErrFinished
	}
	s.done = true
	n := s.buf.Len()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	keyVecs := make([]storage.Vector, len(s.keys))
	for i, k := range s.keys {
		keyVecs[i] = s.buf.MustCol(k.Column)
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for i, k := range s.keys {
			c := compareAt(keyVecs[i], idx[a], idx[b])
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	for lo := 0; lo < n; lo += s.batchRows {
		hi := lo + s.batchRows
		if hi > n {
			hi = n
		}
		if err := s.emit(s.buf.Gather(idx[lo:hi])); err != nil {
			return err
		}
	}
	return nil
}

// compareAt orders two rows of one vector: -1, 0, or 1.
func compareAt(v storage.Vector, a, b int) int {
	switch v.Type {
	case storage.Int64, storage.Date:
		switch {
		case v.I64[a] < v.I64[b]:
			return -1
		case v.I64[a] > v.I64[b]:
			return 1
		}
	case storage.Float64:
		switch {
		case v.F64[a] < v.F64[b]:
			return -1
		case v.F64[a] > v.F64[b]:
			return 1
		}
	case storage.String:
		return strings.Compare(v.Str[a], v.Str[b])
	}
	return 0
}

// TopK keeps the k smallest (or largest) rows by the sort keys. It bounds
// memory where a full Sort would buffer everything.
type TopK struct {
	inner *Sort
	k     int
	emit  Emit
}

// NewTopK builds a TopK operator.
func NewTopK(schema storage.Schema, keys []SortKey, k int, emit Emit) (*TopK, error) {
	if k <= 0 {
		return nil, fmt.Errorf("relop: TopK requires k > 0, got %d", k)
	}
	t := &TopK{k: k, emit: emit}
	collected := 0
	inner, err := NewSort(schema, keys, func(b *storage.Batch) error {
		if collected >= k {
			return nil
		}
		take := b.Len()
		if collected+take > k {
			take = k - collected
		}
		collected += take
		return emit(b.Slice(0, take))
	})
	if err != nil {
		return nil, err
	}
	t.inner = inner
	return t, nil
}

// OutSchema implements Operator.
func (t *TopK) OutSchema() storage.Schema { return t.inner.OutSchema() }

// Push implements Operator.
func (t *TopK) Push(b *storage.Batch) error { return t.inner.Push(b) }

// Finish implements Operator.
func (t *TopK) Finish() error { return t.inner.Finish() }
