package relop

import (
	"fmt"
	"strings"

	"repro/internal/storage"
)

// This file implements the partial/merge split of the grouping aggregate,
// the operator-level half of intra-query parallelism: d partitioned clones
// each run a partial aggregate over their share of the input and emit raw
// accumulator state; the clone outputs fan in through a single MergeHashAgg
// that combines the states and emits exactly what one serial HashAgg over
// the whole input would have. The split is exact (Avg carries its sum and
// count separately), so partial-over-partitions + merge ≡ serial.

// avgCountSuffix names the hidden count column an Avg aggregate adds to the
// partial layout.
const avgCountSuffix = ":count"

// PartialAggSchema returns the schema of the partial-state batches a
// partial aggregate emits: the group-by columns followed by one accumulator
// column per aggregate — two for Avg, whose sum and count must travel
// separately to merge exactly.
func PartialAggSchema(in storage.Schema, groupBy []string, specs []AggSpec) (storage.Schema, error) {
	var cols []storage.Column
	for _, g := range groupBy {
		i, err := in.Index(g)
		if err != nil {
			return storage.Schema{}, err
		}
		cols = append(cols, in.Cols[i])
	}
	for _, sp := range specs {
		switch sp.Func {
		case Count:
			cols = append(cols, storage.Column{Name: sp.As, Type: storage.Int64})
		case Sum, Min, Max:
			cols = append(cols, storage.Column{Name: sp.As, Type: storage.Float64})
		case Avg:
			cols = append(cols,
				storage.Column{Name: sp.As, Type: storage.Float64},
				storage.Column{Name: sp.As + avgCountSuffix, Type: storage.Int64})
		default:
			return storage.Schema{}, fmt.Errorf("%w: unknown aggregate %d", ErrType, int(sp.Func))
		}
	}
	return storage.NewSchema(cols...)
}

// NewPartialHashAgg builds the clone-local form of NewHashAgg: it
// accumulates exactly like the serial aggregate but Finish emits raw
// accumulator state in PartialAggSchema layout — one row per group, nothing
// at all over empty input (the merge side synthesizes the empty-global
// row). Feed its output to a MergeHashAgg built with the same arguments.
func NewPartialHashAgg(in storage.Schema, groupBy []string, specs []AggSpec, emit Emit) (*HashAgg, error) {
	h, err := NewHashAgg(in, groupBy, specs, emit)
	if err != nil {
		return nil, err
	}
	ps, err := PartialAggSchema(in, groupBy, specs)
	if err != nil {
		return nil, err
	}
	h.partial = true
	h.outSchema = ps
	h.batchRows = storage.RowsPerPage(ps, storage.DefaultPageSize)
	return h, nil
}

// emitPartialState streams raw accumulator rows in PartialAggSchema order.
func emitPartialState(groups map[string]*aggState, specs []AggSpec, outSchema storage.Schema, batchRows int, emit Emit) error {
	out := storage.NewBatch(outSchema, batchRows)
	for _, k := range sortedGroupKeys(groups) {
		st := groups[k]
		row := make([]any, 0, outSchema.Arity())
		row = append(row, st.keyVals...)
		for i, sp := range specs {
			switch sp.Func {
			case Count:
				row = append(row, st.counts[i])
			case Sum:
				row = append(row, st.sums[i])
			case Min:
				row = append(row, st.mins[i])
			case Max:
				row = append(row, st.maxs[i])
			case Avg:
				row = append(row, st.sums[i], st.counts[i])
			}
		}
		if err := out.AppendRow(row...); err != nil {
			return err
		}
		if out.Len() >= batchRows {
			if err := emit(out); err != nil {
				return err
			}
			out = storage.NewBatch(outSchema, batchRows)
		}
	}
	if out.Len() > 0 {
		return emit(out)
	}
	return nil
}

// MergeHashAgg is the fan-in half of a partitioned aggregation: it consumes
// partial-state batches (as emitted by NewPartialHashAgg instances over
// disjoint partitions of the input), combines states per group, and emits
// final rows identical to one serial NewHashAgg over the whole input —
// including the single zero row a global aggregate owes over empty input.
type MergeHashAgg struct {
	groupBy   []string
	specs     []AggSpec
	inSchema  storage.Schema // PartialAggSchema layout
	outSchema storage.Schema // identical to NewHashAgg's
	groups    map[string]*aggState
	emit      Emit
	batchRows int
	done      bool
}

// NewMergeHashAgg builds the merge aggregate. in, groupBy, and specs are
// the same arguments the serial (and partial) aggregate was built with; the
// merge derives the partial input layout and the final output schema from
// them.
func NewMergeHashAgg(in storage.Schema, groupBy []string, specs []AggSpec, emit Emit) (*MergeHashAgg, error) {
	// The serial constructor performs all spec validation and derives the
	// final output schema.
	serial, err := NewHashAgg(in, groupBy, specs, nil)
	if err != nil {
		return nil, err
	}
	ps, err := PartialAggSchema(in, groupBy, specs)
	if err != nil {
		return nil, err
	}
	return &MergeHashAgg{
		groupBy:   groupBy,
		specs:     specs,
		inSchema:  ps,
		outSchema: serial.outSchema,
		groups:    make(map[string]*aggState),
		emit:      emit,
		batchRows: serial.batchRows,
	}, nil
}

// OutSchema implements Operator.
func (m *MergeHashAgg) OutSchema() storage.Schema { return m.outSchema }

// ConsumesInput reports that Push folds partial states into accumulators.
func (m *MergeHashAgg) ConsumesInput() bool { return true }

// Push implements Operator: combines one batch of partial states.
func (m *MergeHashAgg) Push(b *storage.Batch) error {
	if m.done {
		return ErrFinished
	}
	keyVecs := make([]storage.Vector, len(m.groupBy))
	for i, g := range m.groupBy {
		v, err := b.Col(g)
		if err != nil {
			return err
		}
		keyVecs[i] = v
	}
	// State columns follow the key columns positionally: one per aggregate,
	// two for Avg.
	stateVecs := make([][]storage.Vector, len(m.specs))
	ci := len(m.groupBy)
	for i, sp := range m.specs {
		width := 1
		if sp.Func == Avg {
			width = 2
		}
		if ci+width > len(b.Vecs) {
			return fmt.Errorf("%w: partial batch has %d columns, need %d", ErrType, len(b.Vecs), ci+width)
		}
		stateVecs[i] = b.Vecs[ci : ci+width]
		ci += width
	}
	var keyBuf strings.Builder
	for row := 0; row < b.Len(); row++ {
		key, keyVals := groupKeyAt(keyVecs, row, &keyBuf)
		st := m.groups[key]
		if st == nil {
			st = newAggState(keyVals, len(m.specs))
			m.groups[key] = st
		}
		for i, sp := range m.specs {
			vs := stateVecs[i]
			switch sp.Func {
			case Count:
				st.counts[i] += vs[0].I64[row]
			case Sum:
				st.sums[i] += vs[0].F64[row]
			case Min:
				if x := vs[0].F64[row]; x < st.mins[i] {
					st.mins[i] = x
				}
			case Max:
				if x := vs[0].F64[row]; x > st.maxs[i] {
					st.maxs[i] = x
				}
			case Avg:
				st.sums[i] += vs[0].F64[row]
				st.counts[i] += vs[1].I64[row]
			}
			st.seen[i] = true
		}
	}
	return nil
}

// Finish implements Operator: emits final rows, ordered by group key.
func (m *MergeHashAgg) Finish() error {
	if m.done {
		return ErrFinished
	}
	m.done = true
	return emitFinalRows(m.groups, m.groupBy, m.specs, m.outSchema, m.batchRows, m.emit)
}
