package relop

import (
	"math/rand"
	"testing"

	"repro/internal/storage"
)

// BenchmarkPredFilter measures page filtering with a TPC-H-Q6-shaped
// conjunction, pooled (the owner retains the selection buffer across pages,
// per the may-reuse-sel contract) vs fresh (nil sel every page). Run with
// -benchmem: the pooled arm should be allocation-free in steady state.
func BenchmarkPredFilter(b *testing.B) {
	const rows = 4096
	s := storage.MustSchema(
		storage.Column{Name: "a", Type: storage.Int64},
		storage.Column{Name: "b", Type: storage.Float64},
	)
	rng := rand.New(rand.NewSource(42))
	batch := storage.NewBatch(s, rows)
	for i := 0; i < rows; i++ {
		if err := batch.AppendRow(int64(rng.Intn(100)), rng.Float64()*100); err != nil {
			b.Fatal(err)
		}
	}
	pred := And{Preds: []Pred{
		Cmp{Op: Ge, L: Col("a"), R: ConstInt{V: 10}},
		Cmp{Op: Lt, L: Col("a"), R: ConstInt{V: 80}},
		Cmp{Op: Ge, L: Col("b"), R: ConstFloat{V: 5}},
		Cmp{Op: Le, L: Col("b"), R: ConstFloat{V: 95}},
	}}
	b.Run("pooled", func(b *testing.B) {
		buf := FillSel(nil, rows)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sel, err := pred.Filter(batch, FillSel(buf, rows))
			if err != nil {
				b.Fatal(err)
			}
			buf = sel
		}
	})
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pred.Filter(batch, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The set-algebra shape: Or/Not draw scratch from the pool instead of
	// building a map per page.
	orPred := Or{Preds: []Pred{
		Cmp{Op: Lt, L: Col("a"), R: ConstInt{V: 20}},
		Not{P: Cmp{Op: Lt, L: Col("b"), R: ConstFloat{V: 50}}},
	}}
	b.Run("or-not-pooled", func(b *testing.B) {
		buf := FillSel(nil, rows)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sel, err := orPred.Filter(batch, FillSel(buf, rows))
			if err != nil {
				b.Fatal(err)
			}
			buf = sel
		}
	})
}
