package relop

import (
	"math/rand"
	"testing"

	"repro/internal/storage"
)

// These tests pin the may-reuse-sel contract of Pred.Filter under the
// zero-alloc page loop: an owner that retains the returned selection and
// refills it with FillSel for the next page must see exactly the rows a
// fresh nil-sel call selects — no row leaking across pages through the
// reused backing array or the pooled Or/Not scratch.

// randomPred builds a random predicate tree of Cmp leaves under And/Or/Not,
// over the two-column (a int64, b float64) test schema.
func randomPred(rng *rand.Rand, depth int) Pred {
	if depth <= 0 || rng.Intn(3) == 0 {
		op := CmpOp(rng.Intn(6))
		if rng.Intn(2) == 0 {
			return Cmp{Op: op, L: Col("a"), R: ConstInt{V: int64(rng.Intn(10))}}
		}
		return Cmp{Op: op, L: Col("b"), R: ConstFloat{V: rng.Float64() * 10}}
	}
	switch rng.Intn(3) {
	case 0:
		n := 2 + rng.Intn(2)
		ps := make([]Pred, n)
		for i := range ps {
			ps[i] = randomPred(rng, depth-1)
		}
		return And{Preds: ps}
	case 1:
		n := 2 + rng.Intn(2)
		ps := make([]Pred, n)
		for i := range ps {
			ps[i] = randomPred(rng, depth-1)
		}
		return Or{Preds: ps}
	default:
		return Not{P: randomPred(rng, depth-1)}
	}
}

// randomBatch builds a batch of n rows with small-domain values so random
// predicates select non-trivial subsets.
func randomBatch(t *testing.T, rng *rand.Rand, n int) *storage.Batch {
	t.Helper()
	s := storage.MustSchema(
		storage.Column{Name: "a", Type: storage.Int64},
		storage.Column{Name: "b", Type: storage.Float64},
	)
	b := storage.NewBatch(s, n)
	for i := 0; i < n; i++ {
		if err := b.AppendRow(int64(rng.Intn(10)), rng.Float64()*10); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func TestPredFilterReusedBufferMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 64; trial++ {
		pred := randomPred(rng, 3)
		var buf []int
		for page := 0; page < 16; page++ {
			b := randomBatch(t, rng, 1+rng.Intn(64))
			fresh, err := pred.Filter(b, nil)
			if err != nil {
				t.Fatalf("trial %d page %d: fresh filter: %v", trial, page, err)
			}
			// Copy before the reused-buffer call: fresh and the reused
			// buffer must not be confused by the comparison itself.
			want := append([]int(nil), fresh...)
			got, err := pred.Filter(b, FillSel(buf, b.Len()))
			if err != nil {
				t.Fatalf("trial %d page %d: reused filter: %v", trial, page, err)
			}
			buf = got
			if len(got) != len(want) {
				t.Fatalf("trial %d page %d (%s): reused sel has %d rows, fresh has %d",
					trial, page, pred, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d page %d (%s): row %d: reused %d != fresh %d",
						trial, page, pred, i, got[i], want[i])
				}
			}
			for i := 1; i < len(got); i++ {
				if got[i] <= got[i-1] {
					t.Fatalf("trial %d page %d: sel not strictly increasing at %d", trial, page, i)
				}
			}
			if len(got) > 0 && got[len(got)-1] >= b.Len() {
				t.Fatalf("trial %d page %d: sel row %d out of range (page has %d rows) — stale index leaked",
					trial, page, got[len(got)-1], b.Len())
			}
		}
	}
}

// TestFillSelReusesBacking pins the zero-alloc property itself: refilling a
// large-enough buffer must not allocate.
func TestFillSelReusesBacking(t *testing.T) {
	buf := FillSel(nil, 128)
	allocs := testing.AllocsPerRun(100, func() {
		buf = FillSel(buf, 64)
		buf = FillSel(buf, 128)
	})
	if allocs != 0 {
		t.Errorf("FillSel on a retained buffer allocates %v times per run, want 0", allocs)
	}
}
