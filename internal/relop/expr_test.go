package relop

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/storage"
)

func exprSchema() storage.Schema {
	return storage.MustSchema(
		storage.Column{Name: "qty", Type: storage.Int64},
		storage.Column{Name: "price", Type: storage.Float64},
		storage.Column{Name: "day", Type: storage.Date},
		storage.Column{Name: "note", Type: storage.String},
	)
}

func exprBatch(t *testing.T) *storage.Batch {
	t.Helper()
	b := storage.NewBatch(exprSchema(), 4)
	rows := [][]any{
		{int64(10), 5.0, int64(100), "fast special delivery requests"},
		{int64(20), 2.5, int64(200), "normal"},
		{int64(30), 1.0, int64(300), "special packed requests"},
		{int64(40), 4.0, int64(400), "requests then special"},
	}
	for _, r := range rows {
		if err := b.AppendRow(r...); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func TestColRefEval(t *testing.T) {
	b := exprBatch(t)
	v, err := Col("qty").Eval(b)
	if err != nil {
		t.Fatal(err)
	}
	if v.I64[2] != 30 {
		t.Errorf("qty[2] = %d", v.I64[2])
	}
	if _, err := Col("ghost").Eval(b); !errors.Is(err, storage.ErrNoColumn) {
		t.Errorf("got %v, want ErrNoColumn", err)
	}
	ty, err := Col("price").Type(exprSchema())
	if err != nil || ty != storage.Float64 {
		t.Errorf("Type = %v, %v", ty, err)
	}
}

func TestConstEval(t *testing.T) {
	b := exprBatch(t)
	iv, err := ConstInt{V: 7}.Eval(b)
	if err != nil || iv.Len() != 4 || iv.I64[3] != 7 {
		t.Errorf("ConstInt eval: %v %v", iv, err)
	}
	fv, err := ConstFloat{V: 1.5}.Eval(b)
	if err != nil || fv.F64[0] != 1.5 {
		t.Errorf("ConstFloat eval: %v %v", fv, err)
	}
}

func TestArithIntAndFloat(t *testing.T) {
	b := exprBatch(t)
	// qty * 2 (pure int)
	v, err := Arith{Op: Mul, L: Col("qty"), R: ConstInt{V: 2}}.Eval(b)
	if err != nil {
		t.Fatal(err)
	}
	if v.Type != storage.Int64 || v.I64[1] != 40 {
		t.Errorf("int arith = %v", v)
	}
	// price * (1 - 0.5): float promotion
	disc := Arith{Op: Sub, L: ConstFloat{V: 1}, R: ConstFloat{V: 0.5}}
	v2, err := Arith{Op: Mul, L: Col("price"), R: disc}.Eval(b)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Type != storage.Float64 || v2.F64[0] != 2.5 {
		t.Errorf("float arith = %v", v2)
	}
	// int + float promotes
	v3, err := Arith{Op: Add, L: Col("qty"), R: Col("price")}.Eval(b)
	if err != nil || v3.Type != storage.Float64 || v3.F64[0] != 15 {
		t.Errorf("promotion = %v %v", v3, err)
	}
	// division, including int div-by-zero guard
	v4, err := Arith{Op: Div, L: Col("qty"), R: ConstInt{V: 0}}.Eval(b)
	if err != nil || v4.I64[0] != 0 {
		t.Errorf("div by zero = %v %v", v4, err)
	}
}

func TestArithStringRejected(t *testing.T) {
	b := exprBatch(t)
	if _, err := (Arith{Op: Add, L: Col("note"), R: ConstInt{V: 1}}).Eval(b); !errors.Is(err, ErrType) {
		t.Errorf("got %v, want ErrType", err)
	}
	if _, err := (Arith{Op: Add, L: Col("note"), R: ConstInt{V: 1}}).Type(exprSchema()); !errors.Is(err, ErrType) {
		t.Errorf("Type: got %v, want ErrType", err)
	}
}

func TestCmpFilters(t *testing.T) {
	b := exprBatch(t)
	cases := []struct {
		name string
		p    Pred
		want []int
	}{
		{"qty < 25", Cmp{Op: Lt, L: Col("qty"), R: ConstInt{V: 25}}, []int{0, 1}},
		{"qty >= 30", Cmp{Op: Ge, L: Col("qty"), R: ConstInt{V: 30}}, []int{2, 3}},
		{"price = 2.5", Cmp{Op: Eq, L: Col("price"), R: ConstFloat{V: 2.5}}, []int{1}},
		{"price <> 2.5", Cmp{Op: Ne, L: Col("price"), R: ConstFloat{V: 2.5}}, []int{0, 2, 3}},
		{"day > 250", Cmp{Op: Gt, L: Col("day"), R: ConstInt{V: 250}}, []int{2, 3}},
		{"qty <= 10", Cmp{Op: Le, L: Col("qty"), R: ConstInt{V: 10}}, []int{0}},
	}
	for _, tc := range cases {
		got, err := tc.p.Filter(b, nil)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if !equalInts(got, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestCmpStringAndTypeMismatch(t *testing.T) {
	b := exprBatch(t)
	p := Cmp{Op: Eq, L: Col("note"), R: Col("note")}
	got, err := p.Filter(b, nil)
	if err != nil || len(got) != 4 {
		t.Errorf("string self-compare: %v %v", got, err)
	}
	bad := Cmp{Op: Eq, L: Col("note"), R: ConstInt{V: 1}}
	if _, err := bad.Filter(b, nil); !errors.Is(err, ErrType) {
		t.Errorf("got %v, want ErrType", err)
	}
}

func TestAndOrNot(t *testing.T) {
	b := exprBatch(t)
	lt := Cmp{Op: Lt, L: Col("qty"), R: ConstInt{V: 35}} // 0,1,2
	gt := Cmp{Op: Gt, L: Col("qty"), R: ConstInt{V: 15}} // 1,2,3
	eq := Cmp{Op: Eq, L: Col("qty"), R: ConstInt{V: 40}} // 3
	and := And{Preds: []Pred{lt, gt}}
	got, err := and.Filter(b, nil)
	if err != nil || !equalInts(got, []int{1, 2}) {
		t.Errorf("AND = %v %v", got, err)
	}
	or := Or{Preds: []Pred{and, eq}}
	got, err = or.Filter(b, nil)
	if err != nil || !equalInts(got, []int{1, 2, 3}) {
		t.Errorf("OR = %v %v", got, err)
	}
	not := Not{P: or}
	got, err = not.Filter(b, nil)
	if err != nil || !equalInts(got, []int{0}) {
		t.Errorf("NOT = %v %v", got, err)
	}
	// Short-circuit: an empty AND result stops early.
	never := Cmp{Op: Lt, L: Col("qty"), R: ConstInt{V: 0}}
	and2 := And{Preds: []Pred{never, lt}}
	got, err = and2.Filter(b, nil)
	if err != nil || len(got) != 0 {
		t.Errorf("short-circuit AND = %v %v", got, err)
	}
}

func TestContainsAll(t *testing.T) {
	b := exprBatch(t)
	// '%special%requests%' matches rows 0 and 2 (in-order), not row 3
	// (reversed order) or 1.
	p := ContainsAll{Column: "note", Substrings: []string{"special", "requests"}}
	got, err := p.Filter(b, nil)
	if err != nil || !equalInts(got, []int{0, 2}) {
		t.Errorf("ContainsAll = %v %v", got, err)
	}
	// NOT LIKE form used by Q13.
	not := Not{P: p}
	got, err = not.Filter(b, nil)
	if err != nil || !equalInts(got, []int{1, 3}) {
		t.Errorf("NOT ContainsAll = %v %v", got, err)
	}
	bad := ContainsAll{Column: "qty", Substrings: []string{"x"}}
	if _, err := bad.Filter(b, nil); !errors.Is(err, ErrType) {
		t.Errorf("got %v, want ErrType", err)
	}
	missing := ContainsAll{Column: "ghost"}
	if _, err := missing.Filter(b, nil); !errors.Is(err, storage.ErrNoColumn) {
		t.Errorf("got %v, want ErrNoColumn", err)
	}
}

func TestPredStrings(t *testing.T) {
	p := And{Preds: []Pred{
		Cmp{Op: Lt, L: Col("qty"), R: ConstInt{V: 24}},
		Not{P: ContainsAll{Column: "note", Substrings: []string{"a", "b"}}},
		Or{Preds: []Pred{True{}, Cmp{Op: Ge, L: Col("price"), R: ConstFloat{V: 1}}}},
	}}
	s := p.String()
	for _, want := range []string{"qty < 24", "NOT", "LIKE", "TRUE", "OR", "AND"} {
		if !strings.Contains(s, want) {
			t.Errorf("Pred.String() missing %q: %s", want, s)
		}
	}
	e := Arith{Op: Mul, L: Col("price"), R: Arith{Op: Sub, L: ConstFloat{V: 1}, R: Col("price")}}
	if es := e.String(); !strings.Contains(es, "*") || !strings.Contains(es, "-") {
		t.Errorf("Expr.String() = %q", es)
	}
}

func TestFilterRespectsIncomingSelection(t *testing.T) {
	b := exprBatch(t)
	p := Cmp{Op: Gt, L: Col("qty"), R: ConstInt{V: 5}} // matches all
	got, err := p.Filter(b, []int{1, 3})
	if err != nil || !equalInts(got, []int{1, 3}) {
		t.Errorf("selection not respected: %v %v", got, err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
