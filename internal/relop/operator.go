package relop

import (
	"fmt"

	"repro/internal/storage"
)

// Emit is the output callback through which operators hand completed batches
// to their consumer. The staged engine points Emit at a stage queue; tests
// point it at a collector.
type Emit func(*storage.Batch) error

// Operator is a push-based pipelined operator: the producer calls Push for
// each input batch and Finish exactly once when the input is exhausted.
// Stop-&-go operators (Sort, hash-join build) buffer in Push and do their
// work in Finish.
type Operator interface {
	// OutSchema returns the schema of emitted batches.
	OutSchema() storage.Schema
	// Push consumes one input batch.
	Push(b *storage.Batch) error
	// Finish flushes any buffered state and emits remaining output.
	Finish() error
}

// Consuming marks operators whose Push neither retains nor forwards the
// input batch — they copy whatever they need (aggregate accumulators,
// buffered row copies, fresh output vectors) before returning. The engine
// may release such an operator's reader claim on a shared page the moment
// Push returns, which lets a sibling consumer's Writable take the original
// instead of cloning. Pass-through operators (Filter, Project) must NOT
// implement this: they may hand the input batch — or vectors aliasing it —
// downstream, where the claim still guards it.
type Consuming interface {
	// ConsumesInput reports that pushed batches never escape the operator.
	ConsumesInput() bool
}

// Consumes reports whether op declares itself input-consuming.
func Consumes(op any) bool {
	c, ok := op.(Consuming)
	return ok && c.ConsumesInput()
}

// Collect returns an Emit that appends emitted rows into a single batch,
// plus a getter for the result. Convenient for tests and examples.
func Collect(s storage.Schema) (Emit, func() *storage.Batch) {
	return CollectSized(s, 0)
}

// CollectSized is Collect with a row-count hint pre-sizing the result batch.
func CollectSized(s storage.Schema, hint int) (Emit, func() *storage.Batch) {
	if hint < 0 {
		hint = 0
	}
	out := storage.NewBatch(s, hint)
	emit := func(b *storage.Batch) error {
		out.AppendBatch(b)
		return nil
	}
	return emit, func() *storage.Batch { return out }
}

// Scan is a source operator: it reads a base table in batches, applies a
// predicate, projects columns, and emits. It has no Push input; call Run.
type Scan struct {
	table     *storage.Table
	pred      Pred
	outSchema storage.Schema
	cols      []string
	batchRows int
	emit      Emit
}

// NewScan builds a scan over table emitting the named columns (all columns
// if cols is nil) for rows satisfying pred (all rows if pred is nil).
func NewScan(table *storage.Table, pred Pred, cols []string, batchRows int, emit Emit) (*Scan, error) {
	s := table.Schema()
	if cols == nil {
		for _, c := range s.Cols {
			cols = append(cols, c.Name)
		}
	}
	out, err := s.Project(cols...)
	if err != nil {
		return nil, err
	}
	if pred == nil {
		pred = True{}
	}
	if batchRows <= 0 {
		batchRows = storage.RowsPerPage(out, storage.DefaultPageSize)
	}
	return &Scan{table: table, pred: pred, outSchema: out, cols: cols, batchRows: batchRows, emit: emit}, nil
}

// OutSchema implements Operator.
func (s *Scan) OutSchema() storage.Schema { return s.outSchema }

// Push implements Operator; scans are sources and accept no input.
func (s *Scan) Push(*storage.Batch) error {
	return fmt.Errorf("relop: Scan is a source; use Run")
}

// Finish implements Operator.
func (s *Scan) Finish() error { return nil }

// Run executes the scan to completion.
func (s *Scan) Run() error {
	var runErr error
	var selBuf []int
	s.table.Scan(s.batchRows, func(b *storage.Batch) bool {
		sel, err := s.pred.Filter(b, FillSel(selBuf, b.Len()))
		if err != nil {
			runErr = err
			return false
		}
		selBuf = sel // retain the backing array for the next page
		if len(sel) == 0 {
			return true
		}
		projected, err := projectRows(b, s.cols, s.outSchema, sel)
		if err != nil {
			runErr = err
			return false
		}
		if err := s.emit(projected); err != nil {
			runErr = err
			return false
		}
		return true
	})
	return runErr
}

// projectRows gathers sel rows of the named columns into a fresh batch.
func projectRows(b *storage.Batch, cols []string, out storage.Schema, sel []int) (*storage.Batch, error) {
	res := &storage.Batch{Schema: out, Vecs: make([]storage.Vector, len(cols))}
	for i, name := range cols {
		v, err := b.Col(name)
		if err != nil {
			return nil, err
		}
		res.Vecs[i] = v.Gather(sel)
	}
	return res, nil
}

// Filter applies a predicate to flowing batches.
type Filter struct {
	pred   Pred
	schema storage.Schema
	emit   Emit
	sel    []int // reused selection buffer; emitted batches never alias it
	done   bool
}

// NewFilter builds a filter with the given input/output schema.
func NewFilter(pred Pred, schema storage.Schema, emit Emit) *Filter {
	if pred == nil {
		pred = True{}
	}
	return &Filter{pred: pred, schema: schema, emit: emit}
}

// OutSchema implements Operator.
func (f *Filter) OutSchema() storage.Schema { return f.schema }

// Push implements Operator.
func (f *Filter) Push(b *storage.Batch) error {
	if f.done {
		return ErrFinished
	}
	sel, err := f.pred.Filter(b, FillSel(f.sel, b.Len()))
	if err != nil {
		return err
	}
	f.sel = sel
	if len(sel) == 0 {
		return nil
	}
	if len(sel) == b.Len() {
		return f.emit(b)
	}
	return f.emit(b.Gather(sel))
}

// Finish implements Operator.
func (f *Filter) Finish() error {
	f.done = true
	return nil
}

// ProjectCol names one output column of a projection.
type ProjectCol struct {
	// As is the output column name.
	As string
	// Expr computes the column.
	Expr Expr
}

// Project evaluates scalar expressions over flowing batches.
type Project struct {
	cols      []ProjectCol
	outSchema storage.Schema
	emit      Emit
	done      bool
}

// NewProject builds a projection; the output schema is derived from the
// expressions against the given input schema.
func NewProject(in storage.Schema, cols []ProjectCol, emit Emit) (*Project, error) {
	outCols := make([]storage.Column, len(cols))
	for i, c := range cols {
		t, err := c.Expr.Type(in)
		if err != nil {
			return nil, err
		}
		outCols[i] = storage.Column{Name: c.As, Type: t}
	}
	out, err := storage.NewSchema(outCols...)
	if err != nil {
		return nil, err
	}
	return &Project{cols: cols, outSchema: out, emit: emit}, nil
}

// OutSchema implements Operator.
func (p *Project) OutSchema() storage.Schema { return p.outSchema }

// Push implements Operator.
func (p *Project) Push(b *storage.Batch) error {
	if p.done {
		return ErrFinished
	}
	out := &storage.Batch{Schema: p.outSchema, Vecs: make([]storage.Vector, len(p.cols))}
	for i, c := range p.cols {
		v, err := c.Expr.Eval(b)
		if err != nil {
			return err
		}
		// Date columns keep their declared type even though expressions
		// produce Int64 vectors.
		v.Type = p.outSchema.Cols[i].Type
		out.Vecs[i] = v
	}
	return p.emit(out)
}

// Finish implements Operator.
func (p *Project) Finish() error {
	p.done = true
	return nil
}
