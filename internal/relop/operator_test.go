package relop

import (
	"errors"
	"math"
	"testing"

	"repro/internal/storage"
)

func testTable(t *testing.T, n int) *storage.Table {
	t.Helper()
	tbl := storage.NewTable("t", storage.MustSchema(
		storage.Column{Name: "k", Type: storage.Int64},
		storage.Column{Name: "v", Type: storage.Float64},
		storage.Column{Name: "g", Type: storage.Int64},
	))
	for i := 0; i < n; i++ {
		tbl.MustAppend(int64(i), float64(i)*0.5, int64(i%3))
	}
	return tbl
}

func TestScanFullTable(t *testing.T) {
	tbl := testTable(t, 100)
	emit, result := Collect(tbl.Schema())
	sc, err := NewScan(tbl, nil, nil, 16, emit)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Run(); err != nil {
		t.Fatal(err)
	}
	if got := result().Len(); got != 100 {
		t.Errorf("scanned %d rows, want 100", got)
	}
}

func TestScanPredicateAndProjection(t *testing.T) {
	tbl := testTable(t, 100)
	out, err := tbl.Schema().Project("v")
	if err != nil {
		t.Fatal(err)
	}
	emit, result := Collect(out)
	sc, err := NewScan(tbl, Cmp{Op: Lt, L: Col("k"), R: ConstInt{V: 10}}, []string{"v"}, 7, emit)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Run(); err != nil {
		t.Fatal(err)
	}
	r := result()
	if r.Len() != 10 {
		t.Fatalf("got %d rows, want 10", r.Len())
	}
	if r.Schema.Arity() != 1 {
		t.Errorf("projection kept %d columns", r.Schema.Arity())
	}
	if r.MustCol("v").F64[9] != 4.5 {
		t.Errorf("v[9] = %g, want 4.5", r.MustCol("v").F64[9])
	}
}

func TestScanErrors(t *testing.T) {
	tbl := testTable(t, 10)
	if _, err := NewScan(tbl, nil, []string{"ghost"}, 0, nil); !errors.Is(err, storage.ErrNoColumn) {
		t.Errorf("got %v, want ErrNoColumn", err)
	}
	emit, _ := Collect(tbl.Schema())
	sc, err := NewScan(tbl, nil, nil, 0, emit)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Push(nil); err == nil {
		t.Error("Push on a Scan accepted")
	}
	if err := sc.Finish(); err != nil {
		t.Errorf("Finish: %v", err)
	}
}

func TestFilterOperator(t *testing.T) {
	tbl := testTable(t, 20)
	emit, result := Collect(tbl.Schema())
	f := NewFilter(Cmp{Op: Eq, L: Col("g"), R: ConstInt{V: 0}}, tbl.Schema(), emit)
	tbl.Scan(8, func(b *storage.Batch) bool {
		if err := f.Push(b); err != nil {
			t.Fatal(err)
		}
		return true
	})
	if err := f.Finish(); err != nil {
		t.Fatal(err)
	}
	if got := result().Len(); got != 7 { // k ∈ {0,3,6,9,12,15,18}
		t.Errorf("filter kept %d rows, want 7", got)
	}
	if err := f.Push(nil); !errors.Is(err, ErrFinished) {
		t.Errorf("push after finish: got %v, want ErrFinished", err)
	}
}

func TestProjectOperator(t *testing.T) {
	tbl := testTable(t, 4)
	cols := []ProjectCol{
		{As: "double_v", Expr: Arith{Op: Mul, L: Col("v"), R: ConstFloat{V: 2}}},
		{As: "k", Expr: Col("k")},
	}
	p, err := NewProject(tbl.Schema(), cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	emit, result := Collect(p.OutSchema())
	p.emit = emit
	tbl.Scan(0, func(b *storage.Batch) bool {
		if err := p.Push(b); err != nil {
			t.Fatal(err)
		}
		return true
	})
	if err := p.Finish(); err != nil {
		t.Fatal(err)
	}
	r := result()
	if r.MustCol("double_v").F64[3] != 3.0 {
		t.Errorf("double_v[3] = %g, want 3", r.MustCol("double_v").F64[3])
	}
	if r.MustCol("k").I64[2] != 2 {
		t.Errorf("k[2] = %d", r.MustCol("k").I64[2])
	}
}

func TestProjectBadExpr(t *testing.T) {
	tbl := testTable(t, 1)
	if _, err := NewProject(tbl.Schema(), []ProjectCol{{As: "x", Expr: Col("ghost")}}, nil); err == nil {
		t.Error("projection over missing column accepted")
	}
}

func TestHashAggGrouped(t *testing.T) {
	tbl := testTable(t, 9) // groups g=0:{0,3,6} g=1:{1,4,7} g=2:{2,5,8}
	agg, err := NewHashAgg(tbl.Schema(), []string{"g"}, []AggSpec{
		{Func: Sum, Expr: Col("v"), As: "sum_v"},
		{Func: Count, As: "n"},
		{Func: Avg, Expr: Col("k"), As: "avg_k"},
		{Func: Min, Expr: Col("k"), As: "min_k"},
		{Func: Max, Expr: Col("k"), As: "max_k"},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	emit, result := Collect(agg.OutSchema())
	agg.emit = emit
	tbl.Scan(4, func(b *storage.Batch) bool {
		if err := agg.Push(b); err != nil {
			t.Fatal(err)
		}
		return true
	})
	if err := agg.Finish(); err != nil {
		t.Fatal(err)
	}
	r := result()
	if r.Len() != 3 {
		t.Fatalf("got %d groups, want 3", r.Len())
	}
	// Groups are emitted in key order 0,1,2.
	if g := r.MustCol("g").I64; g[0] != 0 || g[1] != 1 || g[2] != 2 {
		t.Errorf("group order = %v", g)
	}
	if s := r.MustCol("sum_v").F64[0]; math.Abs(s-4.5) > 1e-12 { // (0+3+6)*0.5
		t.Errorf("sum_v[g=0] = %g, want 4.5", s)
	}
	if n := r.MustCol("n").I64[1]; n != 3 {
		t.Errorf("n[g=1] = %d, want 3", n)
	}
	if a := r.MustCol("avg_k").F64[2]; math.Abs(a-5) > 1e-12 { // (2+5+8)/3
		t.Errorf("avg_k[g=2] = %g, want 5", a)
	}
	if mn := r.MustCol("min_k").F64[1]; mn != 1 {
		t.Errorf("min_k[g=1] = %g, want 1", mn)
	}
	if mx := r.MustCol("max_k").F64[0]; mx != 6 {
		t.Errorf("max_k[g=0] = %g, want 6", mx)
	}
}

func TestHashAggGlobalOverEmptyInput(t *testing.T) {
	s := storage.MustSchema(storage.Column{Name: "x", Type: storage.Float64})
	agg, err := NewHashAgg(s, nil, []AggSpec{
		{Func: Count, As: "n"},
		{Func: Sum, Expr: Col("x"), As: "s"},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	emit, result := Collect(agg.OutSchema())
	agg.emit = emit
	if err := agg.Finish(); err != nil {
		t.Fatal(err)
	}
	r := result()
	if r.Len() != 1 {
		t.Fatalf("global agg over empty input emitted %d rows, want 1", r.Len())
	}
	if r.MustCol("n").I64[0] != 0 || r.MustCol("s").F64[0] != 0 {
		t.Errorf("empty aggregate = n:%d s:%g", r.MustCol("n").I64[0], r.MustCol("s").F64[0])
	}
}

func TestHashAggErrors(t *testing.T) {
	s := storage.MustSchema(
		storage.Column{Name: "x", Type: storage.Float64},
		storage.Column{Name: "note", Type: storage.String},
	)
	if _, err := NewHashAgg(s, []string{"ghost"}, nil, nil); !errors.Is(err, storage.ErrNoColumn) {
		t.Errorf("bad group col: %v", err)
	}
	if _, err := NewHashAgg(s, nil, []AggSpec{{Func: Sum, As: "s"}}, nil); !errors.Is(err, ErrType) {
		t.Errorf("sum without expr: %v", err)
	}
	if _, err := NewHashAgg(s, nil, []AggSpec{{Func: Sum, Expr: Col("note"), As: "s"}}, nil); !errors.Is(err, ErrType) {
		t.Errorf("sum over string: %v", err)
	}
	if _, err := NewHashAgg(s, nil, []AggSpec{{Func: AggFunc(99), Expr: Col("x"), As: "s"}}, nil); !errors.Is(err, ErrType) {
		t.Errorf("unknown func: %v", err)
	}
	agg, err := NewHashAgg(s, nil, []AggSpec{{Func: Count, As: "n"}}, func(*storage.Batch) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := agg.Finish(); !errors.Is(err, ErrFinished) {
		t.Errorf("double finish: %v", err)
	}
	if err := agg.Push(storage.NewBatch(s, 0)); !errors.Is(err, ErrFinished) {
		t.Errorf("push after finish: %v", err)
	}
}

func TestHashAggStringGroupKeys(t *testing.T) {
	s := storage.MustSchema(
		storage.Column{Name: "name", Type: storage.String},
		storage.Column{Name: "x", Type: storage.Float64},
	)
	b := storage.NewBatch(s, 4)
	for _, r := range [][]any{{"a", 1.0}, {"b", 2.0}, {"a", 3.0}, {"b", 4.0}} {
		if err := b.AppendRow(r...); err != nil {
			t.Fatal(err)
		}
	}
	agg, err := NewHashAgg(s, []string{"name"}, []AggSpec{{Func: Sum, Expr: Col("x"), As: "s"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	emit, result := Collect(agg.OutSchema())
	agg.emit = emit
	if err := agg.Push(b); err != nil {
		t.Fatal(err)
	}
	if err := agg.Finish(); err != nil {
		t.Fatal(err)
	}
	r := result()
	if r.Len() != 2 || r.MustCol("s").F64[0] != 4 || r.MustCol("s").F64[1] != 6 {
		t.Errorf("string-key agg wrong: %v", r.MustCol("s").F64)
	}
}
