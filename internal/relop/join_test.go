package relop

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/storage"
)

func ordersSchema() storage.Schema {
	return storage.MustSchema(
		storage.Column{Name: "okey", Type: storage.Int64},
		storage.Column{Name: "prio", Type: storage.String},
	)
}

func linesSchema() storage.Schema {
	return storage.MustSchema(
		storage.Column{Name: "lkey", Type: storage.Int64},
		storage.Column{Name: "amt", Type: storage.Float64},
	)
}

func makeOrders(t *testing.T, keys []int64) *storage.Batch {
	t.Helper()
	b := storage.NewBatch(ordersSchema(), len(keys))
	for _, k := range keys {
		if err := b.AppendRow(k, "p"); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func makeLines(t *testing.T, keys []int64) *storage.Batch {
	t.Helper()
	b := storage.NewBatch(linesSchema(), len(keys))
	for i, k := range keys {
		if err := b.AppendRow(k, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func TestHashJoinInner(t *testing.T) {
	hj, err := NewHashJoin(Inner, linesSchema(), "lkey", ordersSchema(), "okey", nil)
	if err != nil {
		t.Fatal(err)
	}
	emit, result := Collect(hj.OutSchema())
	hj.SetEmit(emit)
	if err := hj.PushBuild(makeLines(t, []int64{1, 2, 2, 5})); err != nil {
		t.Fatal(err)
	}
	if err := hj.FinishBuild(); err != nil {
		t.Fatal(err)
	}
	if err := hj.Push(makeOrders(t, []int64{2, 3, 5})); err != nil {
		t.Fatal(err)
	}
	if err := hj.Finish(); err != nil {
		t.Fatal(err)
	}
	r := result()
	// okey=2 matches two build rows; okey=5 one; okey=3 none.
	if r.Len() != 3 {
		t.Fatalf("inner join emitted %d rows, want 3", r.Len())
	}
	keys := r.MustCol("okey").I64
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if keys[0] != 2 || keys[1] != 2 || keys[2] != 5 {
		t.Errorf("keys = %v", keys)
	}
	// Output carries probe cols + non-key build cols.
	if _, err := r.Col("amt"); err != nil {
		t.Errorf("missing build column: %v", err)
	}
}

func TestHashJoinSemiAndAnti(t *testing.T) {
	for _, tc := range []struct {
		kind JoinKind
		want []int64
	}{
		{Semi, []int64{2, 5}},
		{Anti, []int64{3}},
	} {
		hj, err := NewHashJoin(tc.kind, linesSchema(), "lkey", ordersSchema(), "okey", nil)
		if err != nil {
			t.Fatal(err)
		}
		emit, result := Collect(hj.OutSchema())
		hj.SetEmit(emit)
		if err := hj.PushBuild(makeLines(t, []int64{1, 2, 2, 5})); err != nil {
			t.Fatal(err)
		}
		if err := hj.FinishBuild(); err != nil {
			t.Fatal(err)
		}
		if err := hj.Push(makeOrders(t, []int64{2, 3, 5})); err != nil {
			t.Fatal(err)
		}
		if err := hj.Finish(); err != nil {
			t.Fatal(err)
		}
		r := result()
		got := append([]int64(nil), r.MustCol("okey").I64...)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(tc.want) {
			t.Errorf("%v join: keys = %v, want %v", tc.kind, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%v join: keys = %v, want %v", tc.kind, got, tc.want)
				break
			}
		}
		// Semi/Anti output schema has only probe columns.
		if r.Schema.Arity() != 2 {
			t.Errorf("%v join schema arity = %d, want 2", tc.kind, r.Schema.Arity())
		}
	}
}

func TestHashJoinLeftOuter(t *testing.T) {
	hj, err := NewHashJoin(LeftOuter, linesSchema(), "lkey", ordersSchema(), "okey", nil)
	if err != nil {
		t.Fatal(err)
	}
	emit, result := Collect(hj.OutSchema())
	hj.SetEmit(emit)
	if err := hj.PushBuild(makeLines(t, []int64{2, 2})); err != nil {
		t.Fatal(err)
	}
	if err := hj.FinishBuild(); err != nil {
		t.Fatal(err)
	}
	if err := hj.Push(makeOrders(t, []int64{2, 9})); err != nil {
		t.Fatal(err)
	}
	if err := hj.Finish(); err != nil {
		t.Fatal(err)
	}
	r := result()
	// okey=2 matches twice; okey=9 appears once with null-extended amt=0.
	if r.Len() != 3 {
		t.Fatalf("left outer emitted %d rows, want 3", r.Len())
	}
	var unmatched int
	keys := r.MustCol("okey").I64
	for i := range keys {
		if keys[i] == 9 {
			unmatched++
			if r.MustCol("amt").F64[i] != 0 {
				t.Errorf("unmatched row amt = %g, want 0", r.MustCol("amt").F64[i])
			}
		}
	}
	if unmatched != 1 {
		t.Errorf("unmatched rows = %d, want 1", unmatched)
	}
}

func TestHashJoinMatchCounts(t *testing.T) {
	hj, err := NewHashJoin(Semi, linesSchema(), "lkey", ordersSchema(), "okey", func(*storage.Batch) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := hj.PushBuild(makeLines(t, []int64{1, 1, 1, 4})); err != nil {
		t.Fatal(err)
	}
	if err := hj.FinishBuild(); err != nil {
		t.Fatal(err)
	}
	got := hj.MatchCounts([]int64{1, 4, 7})
	if got[0] != 3 || got[1] != 1 || got[2] != 0 {
		t.Errorf("MatchCounts = %v, want [3 1 0]", got)
	}
}

func TestHashJoinProtocolErrors(t *testing.T) {
	hj, err := NewHashJoin(Inner, linesSchema(), "lkey", ordersSchema(), "okey", func(*storage.Batch) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := hj.Push(makeOrders(t, []int64{1})); err == nil {
		t.Error("probe before FinishBuild accepted")
	}
	if err := hj.FinishBuild(); err != nil {
		t.Fatal(err)
	}
	if err := hj.PushBuild(makeLines(t, []int64{1})); !errors.Is(err, ErrFinished) {
		t.Errorf("build after FinishBuild: %v", err)
	}
	if err := hj.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := hj.Push(makeOrders(t, []int64{1})); !errors.Is(err, ErrFinished) {
		t.Errorf("probe after Finish: %v", err)
	}
	// Float join keys rejected.
	bad := storage.MustSchema(storage.Column{Name: "f", Type: storage.Float64})
	if _, err := NewHashJoin(Inner, bad, "f", ordersSchema(), "okey", nil); !errors.Is(err, ErrType) {
		t.Errorf("float build key: %v", err)
	}
	if _, err := NewHashJoin(Inner, linesSchema(), "lkey", bad, "f", nil); !errors.Is(err, ErrType) {
		t.Errorf("float probe key: %v", err)
	}
	// Column collisions in Inner output rejected.
	dup := storage.MustSchema(
		storage.Column{Name: "okey", Type: storage.Int64},
		storage.Column{Name: "prio", Type: storage.String},
	)
	if _, err := NewHashJoin(Inner, dup, "okey", ordersSchema(), "okey", nil); err == nil {
		t.Error("colliding output columns accepted")
	}
}

func TestHashJoinBuildFanIn(t *testing.T) {
	hj, err := NewHashJoin(Semi, linesSchema(), "lkey", ordersSchema(), "okey", func(*storage.Batch) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	side := hj.BuildFanIn()
	if side.OutSchema().Arity() != 2 {
		t.Errorf("build side schema arity = %d", side.OutSchema().Arity())
	}
	if err := side.Push(makeLines(t, []int64{1})); err != nil {
		t.Fatal(err)
	}
	if err := side.Finish(); err != nil {
		t.Fatal(err)
	}
	if !hj.build.done {
		t.Error("BuildFanIn.Finish did not seal the build")
	}
	if !hj.probe.Attached() {
		t.Error("BuildFanIn.Finish did not attach the probe to the table")
	}
}

func TestNLJoin(t *testing.T) {
	outer := storage.MustSchema(storage.Column{Name: "a", Type: storage.Int64})
	inner := storage.MustSchema(storage.Column{Name: "b", Type: storage.Int64})
	// Band join: a < b.
	j, err := NewNLJoin(outer, inner, Cmp{Op: Lt, L: Col("a"), R: Col("b")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	emit, result := Collect(j.OutSchema())
	j.emit = emit
	ib := storage.NewBatch(inner, 3)
	for _, v := range []int64{1, 5, 9} {
		if err := ib.AppendRow(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.PushInner(ib); err != nil {
		t.Fatal(err)
	}
	if err := j.FinishInner(); err != nil {
		t.Fatal(err)
	}
	ob := storage.NewBatch(outer, 2)
	for _, v := range []int64{4, 8} {
		if err := ob.AppendRow(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Push(ob); err != nil {
		t.Fatal(err)
	}
	if err := j.Finish(); err != nil {
		t.Fatal(err)
	}
	// 4 < {5,9} and 8 < {9}: 3 pairs.
	if got := result().Len(); got != 3 {
		t.Errorf("NLJ emitted %d rows, want 3", got)
	}
}

func TestNLJoinProtocol(t *testing.T) {
	outer := storage.MustSchema(storage.Column{Name: "a", Type: storage.Int64})
	inner := storage.MustSchema(storage.Column{Name: "b", Type: storage.Int64})
	j, err := NewNLJoin(outer, inner, nil, func(*storage.Batch) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	ob := storage.NewBatch(outer, 1)
	if err := ob.AppendRow(int64(1)); err != nil {
		t.Fatal(err)
	}
	if err := j.Push(ob); err == nil {
		t.Error("outer push before FinishInner accepted")
	}
}

func TestMergeJoin(t *testing.T) {
	left := storage.MustSchema(
		storage.Column{Name: "lk", Type: storage.Int64},
		storage.Column{Name: "lv", Type: storage.Float64},
	)
	right := storage.MustSchema(
		storage.Column{Name: "rk", Type: storage.Int64},
		storage.Column{Name: "rv", Type: storage.Float64},
	)
	mj, err := NewMergeJoin(left, "lk", right, "rk", nil)
	if err != nil {
		t.Fatal(err)
	}
	emit, result := Collect(mj.OutSchema())
	mj.emit = emit
	lb := storage.NewBatch(left, 4)
	for _, k := range []int64{1, 2, 2, 4} {
		if err := lb.AppendRow(k, float64(k)); err != nil {
			t.Fatal(err)
		}
	}
	rb := storage.NewBatch(right, 4)
	for _, k := range []int64{2, 2, 3, 4} {
		if err := rb.AppendRow(k, float64(-k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := mj.PushLeft(lb); err != nil {
		t.Fatal(err)
	}
	if err := mj.FinishLeft(); err != nil {
		t.Fatal(err)
	}
	if err := mj.Push(rb); err != nil {
		t.Fatal(err)
	}
	if err := mj.Finish(); err != nil {
		t.Fatal(err)
	}
	// key 2: 2x2 = 4 pairs; key 4: 1 pair. Total 5.
	if got := result().Len(); got != 5 {
		t.Errorf("merge join emitted %d rows, want 5", got)
	}
}

func TestMergeJoinProtocol(t *testing.T) {
	left := storage.MustSchema(storage.Column{Name: "lk", Type: storage.Int64})
	right := storage.MustSchema(storage.Column{Name: "rk", Type: storage.Int64})
	mj, err := NewMergeJoin(left, "lk", right, "rk", func(*storage.Batch) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := mj.Finish(); err == nil {
		t.Error("Finish before FinishLeft accepted")
	}
	bad := storage.MustSchema(storage.Column{Name: "f", Type: storage.Float64})
	if _, err := NewMergeJoin(bad, "f", right, "rk", nil); !errors.Is(err, ErrType) {
		t.Errorf("float merge key: %v", err)
	}
}

// Property: hash join inner result equals the brute-force cross-filtered
// count for random key sets.
func TestQuickHashJoinMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nb, np := rng.Intn(40), rng.Intn(40)
		buildKeys := make([]int64, nb)
		for i := range buildKeys {
			buildKeys[i] = int64(rng.Intn(10))
		}
		probeKeys := make([]int64, np)
		for i := range probeKeys {
			probeKeys[i] = int64(rng.Intn(10))
		}
		want := 0
		for _, p := range probeKeys {
			for _, b := range buildKeys {
				if p == b {
					want++
				}
			}
		}
		hj, err := NewHashJoin(Inner, linesSchemaQuick(), "lkey", ordersSchemaQuick(), "okey", nil)
		if err != nil {
			return false
		}
		got := 0
		hj.SetEmit(func(b *storage.Batch) error { got += b.Len(); return nil })
		bb := storage.NewBatch(linesSchemaQuick(), nb)
		for i, k := range buildKeys {
			if err := bb.AppendRow(k, float64(i)); err != nil {
				return false
			}
		}
		pb := storage.NewBatch(ordersSchemaQuick(), np)
		for _, k := range probeKeys {
			if err := pb.AppendRow(k, "p"); err != nil {
				return false
			}
		}
		if err := hj.PushBuild(bb); err != nil {
			return false
		}
		if err := hj.FinishBuild(); err != nil {
			return false
		}
		if err := hj.Push(pb); err != nil {
			return false
		}
		if err := hj.Finish(); err != nil {
			return false
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: merge join over sorted inputs agrees with hash join.
func TestQuickMergeJoinAgreesWithHashJoin(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl, nr := 1+rng.Intn(30), 1+rng.Intn(30)
		lk := make([]int64, nl)
		for i := range lk {
			lk[i] = int64(rng.Intn(8))
		}
		rk := make([]int64, nr)
		for i := range rk {
			rk[i] = int64(rng.Intn(8))
		}
		sort.Slice(lk, func(i, j int) bool { return lk[i] < lk[j] })
		sort.Slice(rk, func(i, j int) bool { return rk[i] < rk[j] })
		left := storage.MustSchema(storage.Column{Name: "lk", Type: storage.Int64})
		right := storage.MustSchema(storage.Column{Name: "rk", Type: storage.Int64})
		mj, err := NewMergeJoin(left, "lk", right, "rk", nil)
		if err != nil {
			return false
		}
		mjRows := 0
		mj.emit = func(b *storage.Batch) error { mjRows += b.Len(); return nil }
		lb := storage.NewBatch(left, nl)
		for _, k := range lk {
			if err := lb.AppendRow(k); err != nil {
				return false
			}
		}
		rb := storage.NewBatch(right, nr)
		for _, k := range rk {
			if err := rb.AppendRow(k); err != nil {
				return false
			}
		}
		if err := mj.PushLeft(lb); err != nil {
			return false
		}
		if err := mj.FinishLeft(); err != nil {
			return false
		}
		if err := mj.Push(rb); err != nil {
			return false
		}
		if err := mj.Finish(); err != nil {
			return false
		}
		want := 0
		for _, a := range lk {
			for _, b := range rk {
				if a == b {
					want++
				}
			}
		}
		return mjRows == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func linesSchemaQuick() storage.Schema {
	return storage.MustSchema(
		storage.Column{Name: "lkey", Type: storage.Int64},
		storage.Column{Name: "amt", Type: storage.Float64},
	)
}

func ordersSchemaQuick() storage.Schema {
	return storage.MustSchema(
		storage.Column{Name: "okey", Type: storage.Int64},
		storage.Column{Name: "prio", Type: storage.String},
	)
}

// FootprintBytes charges the cache for the materialized rows plus the key
// index, and grows with the build.
func TestHashTableFootprintBytes(t *testing.T) {
	schema := storage.MustSchema(storage.Column{Name: "k", Type: storage.Int64})
	build := func(rows int) *HashTable {
		jb, err := NewJoinBuild(schema, "k")
		if err != nil {
			t.Fatal(err)
		}
		b := storage.NewBatch(schema, rows)
		for i := 0; i < rows; i++ {
			b.Vecs[0].AppendInt(int64(i % 8)) // 8 buckets, rows/8 refs each
		}
		if err := jb.Push(b); err != nil {
			t.Fatal(err)
		}
		if err := jb.Finish(); err != nil {
			t.Fatal(err)
		}
		return jb.Table()
	}
	small := build(16)
	large := build(256)
	if small.FootprintBytes() <= int64(small.Rows().EstimatedBytes()) {
		t.Errorf("footprint %d must exceed raw row bytes %d (index overhead)",
			small.FootprintBytes(), small.Rows().EstimatedBytes())
	}
	if large.FootprintBytes() <= small.FootprintBytes() {
		t.Errorf("footprint must grow with the build: %d rows -> %d bytes, %d rows -> %d bytes",
			16, small.FootprintBytes(), 256, large.FootprintBytes())
	}
}
