// Package relop implements the relational operator kernels the staged engine
// executes: predicate scans, projections, hash aggregation, sorting,
// nested-loop / hash / merge joins, all operating on column-major tuple
// batches (storage.Batch) in a push-based pipeline.
//
// Operators receive input batches via Push and emit output batches through a
// caller-supplied emit callback, which is how the staged engine routes pages
// between stages and how the pivot fan-outs output to multiple sharers.
package relop

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"

	"repro/internal/storage"
)

// Errors reported by expression evaluation and operator plumbing.
var (
	ErrType     = errors.New("relop: type error")
	ErrFinished = errors.New("relop: operator already finished")
)

// Expr is a scalar expression evaluated over a batch, producing one value
// per input row.
type Expr interface {
	// Type returns the expression's result type under the given schema.
	Type(s storage.Schema) (storage.Type, error)
	// Eval evaluates the expression over all rows of the batch.
	Eval(b *storage.Batch) (storage.Vector, error)
	// String renders the expression for diagnostics.
	String() string
}

// ColRef references a named column.
type ColRef struct {
	// Name is the column name.
	Name string
}

// Col is shorthand for a column reference expression.
func Col(name string) ColRef { return ColRef{Name: name} }

// Type implements Expr.
func (c ColRef) Type(s storage.Schema) (storage.Type, error) {
	i, err := s.Index(c.Name)
	if err != nil {
		return 0, err
	}
	return s.Cols[i].Type, nil
}

// Eval implements Expr.
func (c ColRef) Eval(b *storage.Batch) (storage.Vector, error) {
	return b.Col(c.Name)
}

// String implements Expr.
func (c ColRef) String() string { return c.Name }

// ConstInt is an integer (or date) literal.
type ConstInt struct {
	// V is the literal value.
	V int64
}

// Type implements Expr.
func (ConstInt) Type(storage.Schema) (storage.Type, error) { return storage.Int64, nil }

// Eval implements Expr.
func (c ConstInt) Eval(b *storage.Batch) (storage.Vector, error) {
	v := storage.NewVector(storage.Int64, b.Len())
	for i := 0; i < b.Len(); i++ {
		v.AppendInt(c.V)
	}
	return v, nil
}

// String implements Expr.
func (c ConstInt) String() string { return fmt.Sprintf("%d", c.V) }

// ConstFloat is a floating-point literal.
type ConstFloat struct {
	// V is the literal value.
	V float64
}

// Type implements Expr.
func (ConstFloat) Type(storage.Schema) (storage.Type, error) { return storage.Float64, nil }

// Eval implements Expr.
func (c ConstFloat) Eval(b *storage.Batch) (storage.Vector, error) {
	v := storage.NewVector(storage.Float64, b.Len())
	for i := 0; i < b.Len(); i++ {
		v.AppendFloat(c.V)
	}
	return v, nil
}

// String implements Expr.
func (c ConstFloat) String() string { return fmt.Sprintf("%g", c.V) }

// ArithOp enumerates arithmetic operators.
type ArithOp int

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

func (op ArithOp) String() string {
	switch op {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	default:
		return "?"
	}
}

// Arith is a binary arithmetic expression. Mixed int/float operands promote
// to float.
type Arith struct {
	// Op is the operator.
	Op ArithOp
	// L and R are the operands.
	L, R Expr
}

// Type implements Expr.
func (a Arith) Type(s storage.Schema) (storage.Type, error) {
	lt, err := a.L.Type(s)
	if err != nil {
		return 0, err
	}
	rt, err := a.R.Type(s)
	if err != nil {
		return 0, err
	}
	if lt == storage.String || rt == storage.String {
		return 0, fmt.Errorf("%w: arithmetic on string", ErrType)
	}
	if lt == storage.Float64 || rt == storage.Float64 {
		return storage.Float64, nil
	}
	return storage.Int64, nil
}

// Eval implements Expr.
func (a Arith) Eval(b *storage.Batch) (storage.Vector, error) {
	lv, err := a.L.Eval(b)
	if err != nil {
		return storage.Vector{}, err
	}
	rv, err := a.R.Eval(b)
	if err != nil {
		return storage.Vector{}, err
	}
	if lv.Type == storage.String || rv.Type == storage.String {
		return storage.Vector{}, fmt.Errorf("%w: arithmetic on string", ErrType)
	}
	n := b.Len()
	// Promote to float if either side is float.
	if lv.Type == storage.Float64 || rv.Type == storage.Float64 {
		out := storage.NewVector(storage.Float64, n)
		for i := 0; i < n; i++ {
			x, y := asFloat(lv, i), asFloat(rv, i)
			out.AppendFloat(applyFloat(a.Op, x, y))
		}
		return out, nil
	}
	out := storage.NewVector(storage.Int64, n)
	for i := 0; i < n; i++ {
		out.AppendInt(applyInt(a.Op, lv.I64[i], rv.I64[i]))
	}
	return out, nil
}

// String implements Expr.
func (a Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R)
}

func asFloat(v storage.Vector, i int) float64 {
	if v.Type == storage.Float64 {
		return v.F64[i]
	}
	return float64(v.I64[i])
}

func applyFloat(op ArithOp, x, y float64) float64 {
	switch op {
	case Add:
		return x + y
	case Sub:
		return x - y
	case Mul:
		return x * y
	case Div:
		return x / y
	default:
		panic(fmt.Sprintf("relop: unknown arith op %d", int(op)))
	}
}

func applyInt(op ArithOp, x, y int64) int64 {
	switch op {
	case Add:
		return x + y
	case Sub:
		return x - y
	case Mul:
		return x * y
	case Div:
		if y == 0 {
			return 0
		}
		return x / y
	default:
		panic(fmt.Sprintf("relop: unknown arith op %d", int(op)))
	}
}

// CmpOp enumerates comparison operators.
type CmpOp int

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return "?"
	}
}

// Pred is a predicate: given a batch and a candidate selection (row
// indices), it returns the subset of rows that satisfy it. A nil selection
// means "all rows".
type Pred interface {
	// Filter returns the surviving row indices. It may reuse sel's backing
	// array; callers must not rely on sel afterwards.
	Filter(b *storage.Batch, sel []int) ([]int, error)
	// String renders the predicate for diagnostics.
	String() string
}

// Cmp compares two scalar expressions.
type Cmp struct {
	// Op is the comparison operator.
	Op CmpOp
	// L and R are the operands.
	L, R Expr
}

// Filter implements Pred.
func (c Cmp) Filter(b *storage.Batch, sel []int) ([]int, error) {
	if out, ok, err := c.fastFilter(b, sel); ok {
		return out, err
	}
	lv, err := c.L.Eval(b)
	if err != nil {
		return nil, err
	}
	rv, err := c.R.Eval(b)
	if err != nil {
		return nil, err
	}
	sel = allRows(b, sel)
	out := sel[:0]
	for _, i := range sel {
		ok, err := cmpAt(c.Op, lv, rv, i)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, i)
		}
	}
	return out, nil
}

// fastFilter handles the dominant predicate shapes — column vs literal and
// column vs column — without Eval: literals stay scalar instead of being
// materialized into a constant vector per page. ok=false falls back to the
// general path. Comparison semantics match cmpAt exactly (numeric operands
// compare as float64).
func (c Cmp) fastFilter(b *storage.Batch, sel []int) ([]int, bool, error) {
	lc, isCol := c.L.(ColRef)
	if !isCol {
		return nil, false, nil
	}
	lv, err := b.Col(lc.Name)
	if err != nil {
		return nil, true, err
	}
	switch r := c.R.(type) {
	case ConstInt:
		if lv.Type == storage.String {
			return nil, true, fmt.Errorf("%w: comparing %v to %v", ErrType, lv.Type, storage.Int64)
		}
		out, err := filterScalar(c.Op, lv, float64(r.V), b, sel)
		return out, true, err
	case ConstFloat:
		if lv.Type == storage.String {
			return nil, true, fmt.Errorf("%w: comparing %v to %v", ErrType, lv.Type, storage.Float64)
		}
		out, err := filterScalar(c.Op, lv, r.V, b, sel)
		return out, true, err
	case ColRef:
		rv, err := b.Col(r.Name)
		if err != nil {
			return nil, true, err
		}
		sel = allRows(b, sel)
		out := sel[:0]
		for _, i := range sel {
			ok, err := cmpAt(c.Op, lv, rv, i)
			if err != nil {
				return nil, true, err
			}
			if ok {
				out = append(out, i)
			}
		}
		return out, true, nil
	}
	return nil, false, nil
}

// filterScalar filters a numeric column against a scalar literal.
func filterScalar(op CmpOp, lv storage.Vector, y float64, b *storage.Batch, sel []int) ([]int, error) {
	sel = allRows(b, sel)
	out := sel[:0]
	for _, i := range sel {
		x := asFloat(lv, i)
		var ord int
		switch {
		case x < y:
			ord = -1
		case x > y:
			ord = 1
		}
		ok, err := ordMatches(op, ord)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, i)
		}
	}
	return out, nil
}

// ordMatches translates a three-way comparison into the operator's verdict.
func ordMatches(op CmpOp, ord int) (bool, error) {
	switch op {
	case Eq:
		return ord == 0, nil
	case Ne:
		return ord != 0, nil
	case Lt:
		return ord < 0, nil
	case Le:
		return ord <= 0, nil
	case Gt:
		return ord > 0, nil
	case Ge:
		return ord >= 0, nil
	default:
		return false, fmt.Errorf("%w: unknown comparison %d", ErrType, int(op))
	}
}

// String implements Pred.
func (c Cmp) String() string { return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R) }

func cmpAt(op CmpOp, lv, rv storage.Vector, i int) (bool, error) {
	var ord int
	switch {
	case lv.Type == storage.String && rv.Type == storage.String:
		ord = strings.Compare(lv.Str[i], rv.Str[i])
	case lv.Type != storage.String && rv.Type != storage.String:
		x, y := asFloat(lv, i), asFloat(rv, i)
		switch {
		case x < y:
			ord = -1
		case x > y:
			ord = 1
		}
	default:
		return false, fmt.Errorf("%w: comparing %v to %v", ErrType, lv.Type, rv.Type)
	}
	return ordMatches(op, ord)
}

// And is predicate conjunction with short-circuit filtering.
type And struct {
	// Preds are the conjuncts, applied in order.
	Preds []Pred
}

// Filter implements Pred.
func (a And) Filter(b *storage.Batch, sel []int) ([]int, error) {
	sel = allRows(b, sel)
	var err error
	for _, p := range a.Preds {
		sel, err = p.Filter(b, sel)
		if err != nil {
			return nil, err
		}
		if len(sel) == 0 {
			return sel, nil
		}
	}
	return sel, nil
}

// String implements Pred.
func (a And) String() string {
	parts := make([]string, len(a.Preds))
	for i, p := range a.Preds {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, " AND ") + ")"
}

// Or is predicate disjunction.
type Or struct {
	// Preds are the disjuncts.
	Preds []Pred
}

// predScratch is the per-page working set of the set-algebra predicates: a
// row-mark vector and a candidate-copy buffer. Pooled so steady-state Or/Not
// filtering over a page stream allocates nothing.
type predScratch struct {
	marks []bool
	cand  []int
}

var predScratchPool = sync.Pool{New: func() any { return new(predScratch) }}

// marksFor returns the mark vector cleared and sized for n rows.
func (s *predScratch) marksFor(n int) []bool {
	if cap(s.marks) < n {
		s.marks = make([]bool, n)
	}
	s.marks = s.marks[:n]
	clear(s.marks)
	return s.marks
}

// Filter implements Pred.
func (o Or) Filter(b *storage.Batch, sel []int) ([]int, error) {
	sel = allRows(b, sel)
	sc := predScratchPool.Get().(*predScratch)
	defer predScratchPool.Put(sc)
	keep := sc.marksFor(b.Len())
	for _, p := range o.Preds {
		// Each disjunct gets a private candidate copy: Filter may destroy
		// its argument's backing, and sel must survive for the next one.
		sc.cand = append(sc.cand[:0], sel...)
		got, err := p.Filter(b, sc.cand)
		if err != nil {
			return nil, err
		}
		for _, i := range got {
			keep[i] = true
		}
	}
	out := sel[:0]
	for _, i := range sel {
		if keep[i] {
			out = append(out, i)
		}
	}
	return out, nil
}

// String implements Pred.
func (o Or) String() string {
	parts := make([]string, len(o.Preds))
	for i, p := range o.Preds {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, " OR ") + ")"
}

// Not negates a predicate.
type Not struct {
	// P is the negated predicate.
	P Pred
}

// Filter implements Pred.
func (n Not) Filter(b *storage.Batch, sel []int) ([]int, error) {
	sel = allRows(b, sel)
	sc := predScratchPool.Get().(*predScratch)
	defer predScratchPool.Put(sc)
	sc.cand = append(sc.cand[:0], sel...)
	got, err := n.P.Filter(b, sc.cand)
	if err != nil {
		return nil, err
	}
	drop := sc.marksFor(b.Len())
	for _, i := range got {
		drop[i] = true
	}
	out := sel[:0]
	for _, i := range sel {
		if !drop[i] {
			out = append(out, i)
		}
	}
	return out, nil
}

// String implements Pred.
func (n Not) String() string { return "NOT " + n.P.String() }

// ContainsAll matches rows whose string column contains every substring in
// order (the shape of TPC-H's `NOT LIKE '%special%requests%'`).
type ContainsAll struct {
	// Column is the string column to match.
	Column string
	// Substrings must appear left to right.
	Substrings []string
}

// Filter implements Pred.
func (c ContainsAll) Filter(b *storage.Batch, sel []int) ([]int, error) {
	v, err := b.Col(c.Column)
	if err != nil {
		return nil, err
	}
	if v.Type != storage.String {
		return nil, fmt.Errorf("%w: ContainsAll on %v column %q", ErrType, v.Type, c.Column)
	}
	sel = allRows(b, sel)
	out := sel[:0]
	for _, i := range sel {
		if containsInOrder(v.Str[i], c.Substrings) {
			out = append(out, i)
		}
	}
	return out, nil
}

// String implements Pred.
func (c ContainsAll) String() string {
	return fmt.Sprintf("%s LIKE '%%%s%%'", c.Column, strings.Join(c.Substrings, "%"))
}

func containsInOrder(s string, subs []string) bool {
	for _, sub := range subs {
		i := strings.Index(s, sub)
		if i < 0 {
			return false
		}
		s = s[i+len(sub):]
	}
	return true
}

// allRows materializes the implicit full selection when sel is nil.
func allRows(b *storage.Batch, sel []int) []int {
	if sel != nil {
		return sel
	}
	out := make([]int, b.Len())
	for i := range out {
		out[i] = i
	}
	return out
}

// FillSel resizes buf to the full selection 0..n-1, reusing its backing
// array when capacity allows. This is the owner half of Pred.Filter's
// may-reuse-sel contract: a page-loop that passes FillSel of a retained
// buffer (keeping whatever Filter returns as the next buffer) filters every
// page after the first without allocating a selection vector.
func FillSel(buf []int, n int) []int {
	if cap(buf) < n {
		buf = make([]int, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = i
	}
	return buf
}

// True is a predicate that keeps every row.
type True struct{}

// Filter implements Pred.
func (True) Filter(b *storage.Batch, sel []int) ([]int, error) { return allRows(b, sel), nil }

// String implements Pred.
func (True) String() string { return "TRUE" }

// PredEqual reports whether two predicate trees are structurally identical:
// the same shape built from the same operators, columns, and literals. It is
// the comparison half of the engine's plan-identity guards — two predicates
// for which PredEqual holds filter any batch identically. nil equals only
// nil (an absent predicate is a distinct identity from an explicit True).
// The standard predicate kinds compare without allocating; unknown Pred
// implementations fall back to reflect.DeepEqual.
func PredEqual(a, b Pred) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	switch x := a.(type) {
	case True:
		_, ok := b.(True)
		return ok
	case Cmp:
		y, ok := b.(Cmp)
		return ok && x.Op == y.Op && ExprEqual(x.L, y.L) && ExprEqual(x.R, y.R)
	case And:
		y, ok := b.(And)
		return ok && predsEqual(x.Preds, y.Preds)
	case Or:
		y, ok := b.(Or)
		return ok && predsEqual(x.Preds, y.Preds)
	case Not:
		y, ok := b.(Not)
		return ok && PredEqual(x.P, y.P)
	case ContainsAll:
		y, ok := b.(ContainsAll)
		if !ok || x.Column != y.Column || len(x.Substrings) != len(y.Substrings) {
			return false
		}
		for i := range x.Substrings {
			if x.Substrings[i] != y.Substrings[i] {
				return false
			}
		}
		return true
	default:
		return reflect.DeepEqual(a, b)
	}
}

func predsEqual(a, b []Pred) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !PredEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// ExprEqual reports whether two scalar expression trees are structurally
// identical, under the same contract as PredEqual.
func ExprEqual(a, b Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	switch x := a.(type) {
	case ColRef:
		y, ok := b.(ColRef)
		return ok && x == y
	case ConstInt:
		y, ok := b.(ConstInt)
		return ok && x == y
	case ConstFloat:
		y, ok := b.(ConstFloat)
		return ok && x == y
	case Arith:
		y, ok := b.(Arith)
		return ok && x.Op == y.Op && ExprEqual(x.L, y.L) && ExprEqual(x.R, y.R)
	default:
		return reflect.DeepEqual(a, b)
	}
}
