package relop

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/storage"
)

func TestSortAscendingAndDescending(t *testing.T) {
	s := storage.MustSchema(
		storage.Column{Name: "k", Type: storage.Int64},
		storage.Column{Name: "name", Type: storage.String},
	)
	b := storage.NewBatch(s, 4)
	for _, r := range [][]any{{int64(3), "c"}, {int64(1), "a"}, {int64(2), "b"}, {int64(1), "z"}} {
		if err := b.AppendRow(r...); err != nil {
			t.Fatal(err)
		}
	}
	// Ascending by k, descending by name to break ties.
	op, err := NewSort(s, []SortKey{{Column: "k"}, {Column: "name", Desc: true}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	emit, result := Collect(s)
	op.emit = emit
	if err := op.Push(b); err != nil {
		t.Fatal(err)
	}
	if err := op.Finish(); err != nil {
		t.Fatal(err)
	}
	r := result()
	wantK := []int64{1, 1, 2, 3}
	wantName := []string{"z", "a", "b", "c"}
	for i := range wantK {
		if r.MustCol("k").I64[i] != wantK[i] || r.MustCol("name").Str[i] != wantName[i] {
			t.Errorf("row %d = (%d,%q), want (%d,%q)", i, r.MustCol("k").I64[i], r.MustCol("name").Str[i], wantK[i], wantName[i])
		}
	}
}

func TestSortStability(t *testing.T) {
	s := storage.MustSchema(
		storage.Column{Name: "k", Type: storage.Int64},
		storage.Column{Name: "seq", Type: storage.Int64},
	)
	b := storage.NewBatch(s, 6)
	for i := 0; i < 6; i++ {
		if err := b.AppendRow(int64(i%2), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	op, err := NewSort(s, []SortKey{{Column: "k"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	emit, result := Collect(s)
	op.emit = emit
	if err := op.Push(b); err != nil {
		t.Fatal(err)
	}
	if err := op.Finish(); err != nil {
		t.Fatal(err)
	}
	r := result()
	// Equal keys keep input order: seq 0,2,4 then 1,3,5.
	want := []int64{0, 2, 4, 1, 3, 5}
	for i, w := range want {
		if got := r.MustCol("seq").I64[i]; got != w {
			t.Errorf("seq[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestSortUnknownKey(t *testing.T) {
	s := storage.MustSchema(storage.Column{Name: "k", Type: storage.Int64})
	if _, err := NewSort(s, []SortKey{{Column: "ghost"}}, nil); !errors.Is(err, storage.ErrNoColumn) {
		t.Errorf("got %v, want ErrNoColumn", err)
	}
}

func TestSortDoubleFinish(t *testing.T) {
	s := storage.MustSchema(storage.Column{Name: "k", Type: storage.Int64})
	op, err := NewSort(s, []SortKey{{Column: "k"}}, func(*storage.Batch) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := op.Finish(); !errors.Is(err, ErrFinished) {
		t.Errorf("double finish: %v", err)
	}
	if err := op.Push(storage.NewBatch(s, 0)); !errors.Is(err, ErrFinished) {
		t.Errorf("push after finish: %v", err)
	}
}

func TestTopK(t *testing.T) {
	s := storage.MustSchema(storage.Column{Name: "k", Type: storage.Int64})
	op, err := NewTopK(s, []SortKey{{Column: "k", Desc: true}}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	emit, result := Collect(s)
	op.inner.emit = func(b *storage.Batch) error {
		// rewire through the TopK truncation logic by reusing its emit
		return emit(b)
	}
	// Simpler: construct fresh with the collector.
	op, err = NewTopK(s, []SortKey{{Column: "k", Desc: true}}, 3, emit)
	if err != nil {
		t.Fatal(err)
	}
	b := storage.NewBatch(s, 10)
	for i := 0; i < 10; i++ {
		if err := b.AppendRow(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := op.Push(b); err != nil {
		t.Fatal(err)
	}
	if err := op.Finish(); err != nil {
		t.Fatal(err)
	}
	r := result()
	if r.Len() != 3 {
		t.Fatalf("TopK emitted %d rows, want 3", r.Len())
	}
	want := []int64{9, 8, 7}
	for i, w := range want {
		if got := r.MustCol("k").I64[i]; got != w {
			t.Errorf("top[%d] = %d, want %d", i, got, w)
		}
	}
	if _, err := NewTopK(s, nil, 0, emit); err == nil {
		t.Error("k=0 accepted")
	}
}

// Property: Sort emits a permutation of its input in key order.
func TestQuickSortIsOrderedPermutation(t *testing.T) {
	s := storage.MustSchema(storage.Column{Name: "k", Type: storage.Int64})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		in := make([]int64, n)
		b := storage.NewBatch(s, n)
		for i := range in {
			in[i] = int64(rng.Intn(50))
			if err := b.AppendRow(in[i]); err != nil {
				return false
			}
		}
		op, err := NewSort(s, []SortKey{{Column: "k"}}, nil)
		if err != nil {
			return false
		}
		var out []int64
		op.emit = func(ob *storage.Batch) error {
			out = append(out, ob.MustCol("k").I64...)
			return nil
		}
		if err := op.Push(b); err != nil {
			return false
		}
		if err := op.Finish(); err != nil {
			return false
		}
		if len(out) != n {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i-1] > out[i] {
				return false
			}
		}
		sorted := append([]int64(nil), in...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range sorted {
			if out[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
