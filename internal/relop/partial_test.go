package relop

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/storage"
)

func partialTestSchema() storage.Schema {
	return storage.MustSchema(
		storage.Column{Name: "k", Type: storage.Int64},
		storage.Column{Name: "tag", Type: storage.String},
		storage.Column{Name: "v", Type: storage.Float64},
	)
}

func randomBatches(t *testing.T, s storage.Schema, batches, rowsPer int, seed int64) []*storage.Batch {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([]*storage.Batch, batches)
	for i := range out {
		b := storage.NewBatch(s, rowsPer)
		for r := 0; r < rowsPer; r++ {
			if err := b.AppendRow(
				int64(rng.Intn(7)),
				fmt.Sprintf("t%d", rng.Intn(3)),
				rng.Float64()*100-50,
			); err != nil {
				t.Fatal(err)
			}
		}
		out[i] = b
	}
	return out
}

// collectRows returns an Emit that renders every emitted row to a canonical
// string, preserving emission order.
func collectRows() (Emit, *[]string) {
	var rows []string
	emit := func(b *storage.Batch) error {
		for i := 0; i < b.Len(); i++ {
			s := ""
			for c, col := range b.Schema.Cols {
				switch col.Type {
				case storage.Int64, storage.Date:
					s += fmt.Sprintf("|%d", b.Vecs[c].I64[i])
				case storage.Float64:
					s += fmt.Sprintf("|%.9f", b.Vecs[c].F64[i])
				case storage.String:
					s += "|" + b.Vecs[c].Str[i]
				}
			}
			rows = append(rows, s)
		}
		return nil
	}
	return emit, &rows
}

func assertRowsEqual(t *testing.T, what string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d\n got %s\nwant %s", what, i, got[i], want[i])
		}
	}
}

// runSerialAgg aggregates all input through one serial HashAgg.
func runSerialAgg(t *testing.T, s storage.Schema, groupBy []string, specs []AggSpec, input []*storage.Batch) []string {
	t.Helper()
	emit, rows := collectRows()
	agg, err := NewHashAgg(s, groupBy, specs, emit)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range input {
		if err := agg.Push(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := agg.Finish(); err != nil {
		t.Fatal(err)
	}
	return *rows
}

// runPartialMergeAgg splits input across clones partial aggregates fanning
// into one merge.
func runPartialMergeAgg(t *testing.T, s storage.Schema, groupBy []string, specs []AggSpec, input []*storage.Batch, clones int) []string {
	t.Helper()
	emit, rows := collectRows()
	merge, err := NewMergeHashAgg(s, groupBy, specs, emit)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < clones; c++ {
		part, err := NewPartialHashAgg(s, groupBy, specs, merge.Push)
		if err != nil {
			t.Fatal(err)
		}
		for i := c; i < len(input); i += clones {
			if err := part.Push(input[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := part.Finish(); err != nil {
			t.Fatal(err)
		}
	}
	if err := merge.Finish(); err != nil {
		t.Fatal(err)
	}
	return *rows
}

// Partial aggregation over disjoint partitions, merged, must equal one
// serial aggregation over the whole input — for every aggregate function,
// grouped and global, including empty input (where the merge owes the
// global zero row) and clones that saw no rows (whose partials emit
// nothing, so their +Inf/-Inf min/max seeds never leak).
func TestPartialMergeAggEquivalence(t *testing.T) {
	s := partialTestSchema()
	specs := []AggSpec{
		{Func: Sum, Expr: Col("v"), As: "sum_v"},
		{Func: Count, As: "n"},
		{Func: Avg, Expr: Col("v"), As: "avg_v"},
		{Func: Min, Expr: Col("v"), As: "min_v"},
		{Func: Max, Expr: Col("v"), As: "max_v"},
	}
	for _, tc := range []struct {
		name    string
		groupBy []string
		batches int
		clones  int
	}{
		{"grouped", []string{"k", "tag"}, 9, 3},
		{"global", nil, 9, 3},
		{"grouped-empty", []string{"k"}, 0, 3},
		{"global-empty", nil, 0, 3},
		{"idle-clones", nil, 2, 5}, // more clones than batches: some see nothing
	} {
		t.Run(tc.name, func(t *testing.T) {
			input := randomBatches(t, s, tc.batches, 64, 7)
			want := runSerialAgg(t, s, tc.groupBy, specs, input)
			got := runPartialMergeAgg(t, s, tc.groupBy, specs, input, tc.clones)
			assertRowsEqual(t, tc.name, got, want)
		})
	}
}

// The merge's output schema must match the serial aggregate's exactly.
func TestMergeAggSchemaMatchesSerial(t *testing.T) {
	s := partialTestSchema()
	specs := []AggSpec{
		{Func: Avg, Expr: Col("v"), As: "avg_v"},
		{Func: Count, As: "n"},
	}
	serial, err := NewHashAgg(s, []string{"k"}, specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	merge, err := NewMergeHashAgg(s, []string{"k"}, specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	sg, mg := serial.OutSchema(), merge.OutSchema()
	if len(sg.Cols) != len(mg.Cols) {
		t.Fatalf("merge arity %d, serial %d", len(mg.Cols), len(sg.Cols))
	}
	for i := range sg.Cols {
		if sg.Cols[i] != mg.Cols[i] {
			t.Fatalf("col %d: merge %+v, serial %+v", i, mg.Cols[i], sg.Cols[i])
		}
	}
	// And the partial layout carries Avg's count separately.
	ps, err := PartialAggSchema(s, []string{"k"}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Cols) != 4 { // k, avg_v sum, avg_v count, n
		t.Fatalf("partial arity %d, want 4", len(ps.Cols))
	}
}

// SortMerge over per-clone sorted partitions must equal one serial Sort.
func TestSortMergeEquivalence(t *testing.T) {
	s := partialTestSchema()
	keys := []SortKey{{Column: "k"}, {Column: "v", Desc: true}}
	input := randomBatches(t, s, 8, 50, 11)

	wantEmit, want := collectRows()
	serial, err := NewSort(s, keys, wantEmit)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range input {
		if err := serial.Push(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := serial.Finish(); err != nil {
		t.Fatal(err)
	}

	gotEmit, got := collectRows()
	merge, err := NewSortMerge(s, keys, gotEmit)
	if err != nil {
		t.Fatal(err)
	}
	const clones = 3
	for c := 0; c < clones; c++ {
		clone, err := NewSort(s, keys, merge.Push)
		if err != nil {
			t.Fatal(err)
		}
		for i := c; i < len(input); i += clones {
			if err := clone.Push(input[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := clone.Finish(); err != nil {
			t.Fatal(err)
		}
	}
	if err := merge.Finish(); err != nil {
		t.Fatal(err)
	}
	assertRowsEqual(t, "sortmerge", *got, *want)
}

// SortMerge edge cases: no input at all, and a single run (bulk tail path).
func TestSortMergeEdges(t *testing.T) {
	s := partialTestSchema()
	keys := []SortKey{{Column: "v"}}

	emit, rows := collectRows()
	sm, err := NewSortMerge(s, keys, emit)
	if err != nil {
		t.Fatal(err)
	}
	if err := sm.Finish(); err != nil {
		t.Fatal(err)
	}
	if len(*rows) != 0 {
		t.Fatalf("empty merge emitted %d rows", len(*rows))
	}

	// One pre-sorted run passes through unchanged, exercising the bulk tail.
	input := randomBatches(t, s, 1, 500, 5)
	wantEmit, want := collectRows()
	srt, err := NewSort(s, keys, wantEmit)
	if err != nil {
		t.Fatal(err)
	}
	sortedEmit, sorted := Collect(s)
	srt2, err := NewSort(s, keys, sortedEmit)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range input {
		if err := srt.Push(b); err != nil {
			t.Fatal(err)
		}
		if err := srt2.Push(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := srt.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := srt2.Finish(); err != nil {
		t.Fatal(err)
	}
	gotEmit, got := collectRows()
	sm2, err := NewSortMerge(s, keys, gotEmit)
	if err != nil {
		t.Fatal(err)
	}
	if err := sm2.Push(sorted()); err != nil {
		t.Fatal(err)
	}
	if err := sm2.Finish(); err != nil {
		t.Fatal(err)
	}
	assertRowsEqual(t, "single run", *got, *want)
}
