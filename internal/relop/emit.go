package relop

// SetEmit rewires where the operator sends output. Pipelines are often built
// consumer-last (an operator's consumer may need the operator's OutSchema to
// construct itself), so every operator allows late binding of its emit
// callback. Call before the first Push/Finish.

// SetEmit implements late emit binding for Filter.
func (f *Filter) SetEmit(e Emit) { f.emit = e }

// SetEmit implements late emit binding for Project.
func (p *Project) SetEmit(e Emit) { p.emit = e }

// SetEmit implements late emit binding for HashAgg.
func (h *HashAgg) SetEmit(e Emit) { h.emit = e }

// SetEmit implements late emit binding for Sort.
func (s *Sort) SetEmit(e Emit) { s.emit = e }

// SetEmit implements late emit binding for HashJoin (probe-phase output).
func (h *HashJoin) SetEmit(e Emit) { h.probe.emit = e }

// SetEmit implements late emit binding for HashJoinProbe.
func (h *HashJoinProbe) SetEmit(e Emit) { h.emit = e }

// SetEmit implements late emit binding for NLJoin.
func (j *NLJoin) SetEmit(e Emit) { j.emit = e }

// SetEmit implements late emit binding for MergeJoin.
func (m *MergeJoin) SetEmit(e Emit) { m.emit = e }
