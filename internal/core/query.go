package core

import (
	"fmt"
	"math"
)

// Query is the flattened form of a plan, compiled against a chosen pivot
// operator φ. It carries exactly the quantities the model equations need:
// the p values of the operators strictly below the pivot (shared once per
// group), the pivot's own work W and per-consumer output cost S, and the p
// values of the operators above the pivot (replicated per sharer).
type Query struct {
	// Name identifies the query.
	Name string
	// Below holds p_k for each operator strictly below the pivot. Under
	// sharing these execute once for the whole group.
	Below []float64
	// PivotW is w_φ, the pivot's own work per unit of forward progress.
	PivotW float64
	// PivotS is s_φ, the pivot's cost to output one unit of forward progress
	// to each consumer. Under sharing with M consumers the pivot's total
	// becomes p_φ(M) = PivotW + M·PivotS.
	PivotS float64
	// Above holds p_k for each operator above the pivot. These are private
	// to each query and replicated M times under sharing.
	Above []float64
}

// Compile flattens a plan against the pivot node. The pivot must be a node
// of the plan. Everything in the subtree rooted at the pivot (excluding the
// pivot itself) lands in Below; everything else lands in Above.
func Compile(pl Plan, pivot *PlanNode) (Query, error) {
	if err := pl.Validate(); err != nil {
		return Query{}, err
	}
	if pivot == nil || !subtreeContains(pl.Root, pivot) {
		return Query{}, fmt.Errorf("%w: plan %q", ErrPivotNotFound, pl.Name)
	}
	q := Query{Name: pl.Name, PivotW: pivot.W, PivotS: pivot.S}
	var below func(nd *PlanNode)
	below = func(nd *PlanNode) {
		for _, c := range nd.Children {
			q.Below = append(q.Below, c.P())
			below(c)
		}
	}
	below(pivot)
	var above func(nd *PlanNode)
	above = func(nd *PlanNode) {
		if nd == pivot {
			return
		}
		q.Above = append(q.Above, nd.P())
		for _, c := range nd.Children {
			above(c)
		}
	}
	above(pl.Root)
	return q, nil
}

// MustCompile is Compile that panics on error, for static plan definitions.
func MustCompile(pl Plan, pivot *PlanNode) Query {
	q, err := Compile(pl, pivot)
	if err != nil {
		panic(err)
	}
	return q
}

// PivotP returns the pivot's total work per unit of forward progress with m
// consumers: p_φ(m) = w_φ + m·s_φ. With m = 1 this is the unshared pivot p.
func (q Query) PivotP(m int) float64 { return q.PivotW + float64(m)*q.PivotS }

// PMax returns the bottleneck work p_max of one unshared query.
func (q Query) PMax() float64 {
	pm := q.PivotP(1)
	for _, p := range q.Below {
		pm = math.Max(pm, p)
	}
	for _, p := range q.Above {
		pm = math.Max(pm, p)
	}
	return pm
}

// UPrime returns u', the total work per unit of forward progress of one
// unshared query: Σ p_k over all operators.
func (q Query) UPrime() float64 {
	sum := q.PivotP(1)
	for _, p := range q.Below {
		sum += p
	}
	for _, p := range q.Above {
		sum += p
	}
	return sum
}

// R returns the peak rate of forward progress r = 1/p_max of one query run
// alone with unlimited processors. R is +Inf for an all-zero plan.
func (q Query) R() float64 { return 1 / q.PMax() }

// U returns the maximum processor utilization u = u'/p_max of one query:
// the degree of pipeline parallelism the query can exploit. U can exceed 1.
func (q Query) U() float64 { return q.UPrime() / q.PMax() }

// SharedPMax returns the bottleneck work of the merged plan when m queries
// share at the pivot: the below-pivot operators (one instance), the pivot
// with p_φ(m), and the above-pivot operators of every sharer.
func (q Query) SharedPMax(m int) float64 {
	pm := q.PivotP(m)
	for _, p := range q.Below {
		pm = math.Max(pm, p)
	}
	for _, p := range q.Above {
		pm = math.Max(pm, p)
	}
	return pm
}

// SharedUPrime returns u'_shared(m): total work per unit of forward progress
// of the merged plan — below-pivot work once, the fan-out pivot, and m copies
// of the above-pivot work (Section 4.3).
func (q Query) SharedUPrime(m int) float64 {
	sum := q.PivotP(m)
	for _, p := range q.Below {
		sum += p
	}
	for _, p := range q.Above {
		sum += float64(m) * p
	}
	return sum
}

// WorkEliminated returns the fraction of the group's total unshared work that
// sharing m queries removes: 1 - u'_shared(m)/(m·u'). It is 0 for m = 1 and
// grows toward (Σ below + w_φ)/u' as m grows (Section 6.3's "fraction of work
// eliminated" axis).
func (q Query) WorkEliminated(m int) float64 {
	if m <= 1 {
		return 0
	}
	total := float64(m) * q.UPrime()
	if total == 0 {
		return 0
	}
	return 1 - q.SharedUPrime(m)/total
}

// Validate checks that all work coefficients are finite and non-negative and
// that the query performs some work.
func (q Query) Validate() error {
	check := func(v float64, what string) error {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("%w: query %q %s=%g", ErrNegativeWork, q.Name, what, v)
		}
		return nil
	}
	if err := check(q.PivotW, "pivot w"); err != nil {
		return err
	}
	if err := check(q.PivotS, "pivot s"); err != nil {
		return err
	}
	for i, p := range q.Below {
		if err := check(p, fmt.Sprintf("below[%d]", i)); err != nil {
			return err
		}
	}
	for i, p := range q.Above {
		if err := check(p, fmt.Sprintf("above[%d]", i)); err != nil {
			return err
		}
	}
	if q.UPrime() == 0 {
		return fmt.Errorf("core: query %q performs no work", q.Name)
	}
	return nil
}
