package core

// This file models the pivot at an arbitrary level. The paper defines the
// pivot φ as the highest point where sharing is possible and charges
// p_φ(M) = w_φ + Σ_m s_mφ at whatever level sharing happens; Compile already
// flattens a plan against any pivot node, so a "level" here is simply one
// Query compiled at one candidate pivot. Given the compilations for every
// candidate level, the functions below answer the two questions PR 3's
// engine asks at admission time: at which level should a fresh group anchor
// (BestPivot), and which of the four execution regimes — run-alone, share
// at some φ, parallelize, or attach to an in-flight scan — maximizes the
// predicted rate of forward progress (ChoosePivoted).
//
// The unshared quantities are pivot-invariant: u' is the sum of every
// operator's p and p_max their maximum, regardless of where the plan is
// split into below/pivot/above. The run-alone and parallelize arms are
// therefore evaluated once (on the first candidate), while the share and
// attach arms vary by level.

// AttachAdjusted returns the query's model with the pivot's per-consumer
// cost inflated for an in-flight attach: a joiner sharing only the fraction
// remaining of the pivot's pass makes the group re-execute (1-remaining) of
// the pivot work w solely for its benefit, which amortized over m consumers
// charges s + (1-remaining)·w/m per consumer (the attach-time analogue of
// "share iff Z > 1"; see policy.ModelGuided.ShouldAttach).
func AttachAdjusted(q Query, m int, remaining float64) Query {
	if remaining < 0 {
		remaining = 0
	}
	if remaining > 1 {
		remaining = 1
	}
	if m < 1 {
		m = 1
	}
	adj := q
	adj.PivotS = q.PivotS + (1-remaining)*q.PivotW/float64(m)
	return adj
}

// BestPivot returns the candidate level whose shared execution of m copies
// the model predicts fastest, with the predicted aggregate rate. Candidates
// are Query compilations of one plan at different pivots, ordered however
// the caller likes (the engine passes highest level first); earlier
// candidates win ties, so with a highest-first ordering the model realizes
// the paper's "highest point where sharing is possible" whenever levels
// predict equal rates. m below 2 degenerates to 0 (sharing a single query
// changes nothing, so the first candidate is as good as any).
func BestPivot(cands []Query, m int, env Env) (int, float64) {
	if len(cands) == 0 {
		return -1, 0
	}
	best, bestX := 0, SharedX(cands[0], m, env)
	for i := 1; i < len(cands); i++ {
		if x := SharedX(cands[i], m, env); x > bestX {
			best, bestX = i, x
		}
	}
	return best, bestX
}

// ChoosePivoted extends Choose to the four-way decision across candidate
// pivot levels: run-alone, share at the best φ, parallelize into clones, or
// attach to an in-flight scan. remaining describes the sharing opportunity
// the engine actually has: 1 is a not-yet-started group (submission-time
// share, full coverage), a fraction in (0, 1) is a scan already in flight
// (the attach arm, with the per-consumer cost inflated by the wrap-around
// re-scan of the missed prefix), and a negative value means no compatible
// group exists at all (both sharing arms are skipped). maxDegree caps the
// parallel search as in Choose. It returns the predicted-fastest regime,
// the candidate index of the pivot to use (0 when the decision has no
// pivot), the clone degree (1 unless parallelizing), and the predicted
// rate. Simpler regimes win ties: sharing must strictly beat run-alone and
// parallelize must strictly beat both.
func ChoosePivoted(cands []Query, m, maxDegree int, remaining float64, env Env) (Decision, int, int, float64) {
	if len(cands) == 0 {
		return RunAlone, 0, 1, 0
	}
	if m < 1 {
		m = 1
	}
	best, pivot, degree, x := RunAlone, 0, 1, UnsharedX(cands[0], m, env)
	if m >= 2 && remaining >= 0 {
		dec := Share
		if remaining < 1 {
			dec = AttachInflight
		}
		for i, q := range cands {
			if xs := SharedX(AttachAdjusted(q, m, remaining), m, env); xs > x {
				best, pivot, x = dec, i, xs
			}
		}
	}
	for d := 2; d <= maxDegree; d++ {
		if xp := ParallelX(cands[0], m, d, env); xp > x {
			best, pivot, degree, x = Parallelize, 0, d, xp
		}
	}
	return best, pivot, degree, x
}
