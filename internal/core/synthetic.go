package core

// Reference models published in the paper, used by the validation tests and
// the figure benchmarks.

// Q6Paper returns the TPC-H Q6 model extracted in Section 4.4 by profiling
// the UltraSparc T1 testbed: a two-stage pipeline (table scan feeding an
// aggregate) sharing at the scan. The published parameters are w = 9.66 and
// s = 10.34 for the scan and p = 0.97 for the aggregate, giving
// p_max = 20, u' ≈ 21 and
//
//	x_unshared(M,n) = min(M/20, n/21)
//	x_shared(M,n)   = min(1/(9.66/M + 10.34), n/(9.66/M + 11.31))
func Q6Paper() Query {
	return Query{
		Name:   "TPC-H Q6 (paper §4.4)",
		PivotW: 9.66,
		PivotS: 10.34,
		Above:  []float64{0.97},
	}
}

// Fig3Plan returns the synthetic three-stage query of Figure 3, used
// throughout the sensitivity analysis of Section 6: a bottom operator with
// p = 10, a pivot with w = 6 and s = 1, and a top operator with p = 10.
// Sharing at the pivot eliminates nearly 60% of the work. Each query alone
// requires u = 27/10 = 2.7 processors for peak throughput.
func Fig3Plan() Plan {
	bottom := NewNode("bottom", 10, 0)
	pivot := NewNode("pivot", 6, 1, bottom)
	top := NewNode("top", 10, 0, pivot)
	return Plan{Name: "fig3 synthetic", Root: top}
}

// Fig3Query returns the compiled Figure 3 query with the middle stage as
// pivot: Below = [10], PivotW = 6, PivotS = 1, Above = [10].
func Fig3Query() Query {
	pl := Fig3Plan()
	return MustCompile(pl, pl.Find("pivot"))
}

// Fig4CenterQuery returns the Figure 4 (center) variant of the synthetic
// query with the pivot's per-consumer output cost replaced by s, keeping
// p_pivot anchored at w = 6.
func Fig4CenterQuery(s float64) Query {
	q := Fig3Query()
	q.PivotS = s
	return q
}

// Fig4RightQuery returns the Figure 4 (right) variant: the top operator is
// split into five balanced pipeline stages with p = 8 each (14% of total
// work apiece), and stagesBelow of them (0..5) are moved below the pivot.
// The fraction of work eliminated by sharing then sweeps 28%..98%:
//
//	eliminated(m→∞) = (10 + 8·stagesBelow + 6) / 57
func Fig4RightQuery(stagesBelow int) Query {
	if stagesBelow < 0 {
		stagesBelow = 0
	}
	if stagesBelow > 5 {
		stagesBelow = 5
	}
	q := Query{
		Name:   "fig4-right synthetic",
		Below:  []float64{10},
		PivotW: 6,
		PivotS: 1,
	}
	for i := 0; i < stagesBelow; i++ {
		q.Below = append(q.Below, 8)
	}
	for i := stagesBelow; i < 5; i++ {
		q.Above = append(q.Above, 8)
	}
	return q
}

// AsymptoticEliminated returns the limiting fraction of work sharing can
// eliminate for q as the group grows: (Σ below + w_φ) / u'.
func AsymptoticEliminated(q Query) float64 {
	u := q.UPrime()
	if u == 0 {
		return 0
	}
	return (sum(q.Below) + q.PivotW) / u
}
