package core

import (
	"math"
	"testing"
)

// admitTestQuery is a share-friendly plan: heavy pivot work, cheap fan-out,
// a light private chain — sharing eliminates most of the work.
func admitTestQuery() Query {
	return Query{Name: "admit-share", Below: []float64{2}, PivotW: 10, PivotS: 0.2, Above: []float64{1}}
}

// admitLonerQuery is a share-hostile plan: the pivot's per-consumer cost
// rivals its work, so merging buys nothing.
func admitLonerQuery() Query {
	return Query{Name: "admit-alone", PivotW: 1, PivotS: 6, Above: []float64{1}}
}

func TestAdmitEmptySystemAdmits(t *testing.T) {
	env := NewEnv(2)
	for _, q := range []Query{admitTestQuery(), admitLonerQuery()} {
		adm := Admit([]Query{q}, 0, 1, -1, AdmitLoad{Active: 0, Queued: 0}, env)
		if adm.Decision != AdmitAlone {
			t.Fatalf("%s on an empty system: got %v, want admit-alone", q.Name, adm.Decision)
		}
		if adm.Rate <= 0 {
			t.Fatalf("%s: admitted with non-positive predicted rate %g", q.Name, adm.Rate)
		}
	}
	// Even a query whose u' exceeds the processor count admits when nothing
	// else is running: an idle system has no one to protect.
	big := Query{Name: "oversized", Below: []float64{5, 5}, PivotW: 5, PivotS: 0.1, Above: []float64{5}}
	if adm := Admit([]Query{big}, 0, 1, -1, AdmitLoad{}, NewEnv(1)); adm.Decision != AdmitAlone {
		t.Fatalf("oversized query on an empty system: got %v, want admit-alone", adm.Decision)
	}
}

func TestAdmitSharedPastSaturation(t *testing.T) {
	env := NewEnv(2)
	q := admitTestQuery()
	// 16 active queries saturate 2 processors many times over; a sharing
	// opportunity must still admit, because the marginal demand of joining
	// is only the private chain plus one more s.
	adm := Admit([]Query{q}, 4, 1, 1, AdmitLoad{Active: 16, Queued: 8}, env)
	if adm.Decision != AdmitShared {
		t.Fatalf("beneficial share under saturation: got %v, want admit-shared", adm.Decision)
	}
	if adm.Exec != Share {
		t.Fatalf("admit-shared execution regime: got %v, want Share", adm.Exec)
	}
	// The same load with no compatible group must not admit outright.
	alone := Admit([]Query{q}, 0, 1, -1, AdmitLoad{Active: 16, Queued: 8}, env)
	if alone.Decision == AdmitShared || alone.Decision == AdmitAlone {
		t.Fatalf("no group, saturated: got %v, want queue or shed", alone.Decision)
	}
}

func TestAdmitQueueShedCrossoverMatchesModel(t *testing.T) {
	env := NewEnv(2)
	q := admitLonerQuery() // no sharing arm: forces the queue/shed pricing
	load := AdmitLoad{Active: 6}
	k := QueueCrossover(q, load, env)
	if k < 0 {
		t.Fatalf("crossover %d: expected a non-degenerate queueing region", k)
	}
	if k > 10_000 {
		t.Fatalf("crossover %d: patience bound should be finite", k)
	}
	for depth := 0; depth <= k; depth++ {
		load.Queued = depth
		if adm := Admit([]Query{q}, 0, 1, -1, load, env); adm.Decision != AdmitQueue {
			t.Fatalf("depth %d ≤ crossover %d: got %v, want queue", depth, k, adm.Decision)
		}
	}
	for _, depth := range []int{k + 1, k + 2, 4 * (k + 1)} {
		load.Queued = depth
		adm := Admit([]Query{q}, 0, 1, -1, load, env)
		if adm.Decision != AdmitShed {
			t.Fatalf("depth %d > crossover %d: got %v, want shed", depth, k, adm.Decision)
		}
		if adm.Crossover != k {
			t.Fatalf("shed at depth %d reports crossover %d, want %d", depth, adm.Crossover, k)
		}
	}
	// Queue wait must grow linearly with depth: the priced wait at the
	// crossover plus one more slot is what pushed the response past patience.
	load.Queued = k
	atK := Admit([]Query{q}, 0, 1, -1, load, env)
	load.Queued = k + 1
	pastK := Admit([]Query{q}, 0, 1, -1, load, env)
	if !(pastK.Wait > atK.Wait) {
		t.Fatalf("wait not monotone across crossover: %g then %g", atK.Wait, pastK.Wait)
	}
}

func TestAdmitImpatientShedsOutright(t *testing.T) {
	env := NewEnv(2)
	q := admitLonerQuery()
	// Patience below even the saturated service time: nothing queues.
	load := AdmitLoad{Active: 6, Queued: 0, Patience: 1e-9}
	if k := QueueCrossover(q, load, env); k != -1 {
		t.Fatalf("crossover under impossible patience: got %d, want -1", k)
	}
	if adm := Admit([]Query{q}, 0, 1, -1, load, env); adm.Decision != AdmitShed {
		t.Fatalf("impossible patience: got %v, want shed", adm.Decision)
	}
}

func TestShedVictimLowestBenefitFirst(t *testing.T) {
	env := NewEnv(2)
	active := 12
	// The sharer rides an existing group; the loner pays its full way. At
	// the same load the sharer's predicted per-query rate is strictly
	// higher, so the loner is the one a full window sheds.
	sharer := AdmitBenefit([]Query{admitTestQuery()}, 4, 1, 1, active, env)
	loner := AdmitBenefit([]Query{admitLonerQuery()}, 0, 1, -1, active, env)
	if !(sharer > loner) {
		t.Fatalf("benefit ordering: sharer %g must beat loner %g", sharer, loner)
	}
	if v := ShedVictim([]float64{sharer, loner}); v != 1 {
		t.Fatalf("ShedVictim([sharer, loner]) = %d, want 1 (the loner)", v)
	}
	if v := ShedVictim([]float64{loner, sharer}); v != 0 {
		t.Fatalf("ShedVictim([loner, sharer]) = %d, want 0 (the loner)", v)
	}
	// Ties yield the younger (later) arrival; empty input has no victim.
	if v := ShedVictim([]float64{1, 1, 1}); v != 2 {
		t.Fatalf("tie-break: got %d, want 2", v)
	}
	if v := ShedVictim(nil); v != -1 {
		t.Fatalf("empty: got %d, want -1", v)
	}
}

func TestAdmitDegenerateInputs(t *testing.T) {
	env := NewEnv(2)
	if adm := Admit(nil, 0, 1, -1, AdmitLoad{}, env); adm.Decision != AdmitShed {
		t.Fatalf("no candidates: got %v, want shed", adm.Decision)
	}
	// Negative load fields clamp instead of corrupting the arithmetic.
	adm := Admit([]Query{admitTestQuery()}, 0, 1, -1, AdmitLoad{Active: -3, Queued: -7}, env)
	if adm.Decision != AdmitAlone {
		t.Fatalf("clamped negative load: got %v, want admit-alone", adm.Decision)
	}
	if math.IsNaN(adm.Rate) || math.IsInf(adm.Rate, 0) {
		t.Fatalf("clamped negative load: non-finite rate %g", adm.Rate)
	}
}
