package core

import (
	"math"
	"testing"
)

// Splitting a query must help on an idle multicore (the bottleneck divides
// by d) and saturate at the serial merge floor p_max/s.
func TestParallelSpeedupShape(t *testing.T) {
	q := Q6Paper() // w=9.66, s=10.34, above 0.97; p_max = 20
	env := NewEnv(8)
	s2 := ParallelSpeedup(q, 2, env)
	s4 := ParallelSpeedup(q, 4, env)
	if s2 <= 1 {
		t.Fatalf("degree-2 speedup %g, want > 1", s2)
	}
	if s4 < s2 {
		t.Fatalf("speedup not monotone: d=2 %g, d=4 %g", s2, s4)
	}
	// Merge floor: x_parallel can never exceed 1/s per query.
	ceiling := q.PMax() / q.PivotS
	for d := 2; d <= 32; d++ {
		if sp := ParallelSpeedup(q, d, env); sp > ceiling+1e-9 {
			t.Fatalf("d=%d speedup %g exceeds merge-floor ceiling %g", d, sp, ceiling)
		}
	}
	// Degree 1 is never better than plain serial execution.
	if x1, xu := ParallelX(q, 1, 1, env), UnsharedX(q, 1, env); x1 > xu+1e-12 {
		t.Fatalf("ParallelX(d=1) %g > UnsharedX %g", x1, xu)
	}
}

// Under saturation parallelism buys nothing (work is conserved), so the
// saturated rate with clones must not beat the saturated serial rate.
func TestParallelConservesWorkUnderSaturation(t *testing.T) {
	q := Q6Paper()
	env := NewEnv(2)
	m := 16 // far beyond what 2 processors can serve at peak
	xp := ParallelX(q, m, 4, env)
	xu := UnsharedX(q, m, env)
	if xp > xu+1e-12 {
		t.Fatalf("saturated parallel %g beats saturated serial %g", xp, xu)
	}
}

// The defining crossover: at low load the model parallelizes (idle
// processors make rate the constraint), at high load it shares (work
// elimination is all that matters once saturated). Q4's coefficients —
// heavy work below the pivot, tiny per-consumer s — show both regimes on
// one machine.
func TestChooseCrossover(t *testing.T) {
	q := Query{
		Name:   "q4-like",
		Below:  []float64{12, 8},
		PivotW: 10,
		PivotS: 0.01,
		Above:  []float64{0.4},
	}
	env := NewEnv(4)
	decLow, dLow, _ := Choose(q, 1, 4, env)
	if decLow != Parallelize || dLow < 2 {
		t.Fatalf("m=1: Choose = %v degree %d, want parallelize with degree ≥ 2", decLow, dLow)
	}
	decHigh, _, _ := Choose(q, 8, 4, env)
	if decHigh != Share {
		t.Fatalf("m=8: Choose = %v, want share", decHigh)
	}
}

// On one processor nothing can beat serial execution: no idle contexts to
// parallelize onto, and Choose must not fabricate clones.
func TestChooseSingleProcessorNeverParallelizes(t *testing.T) {
	env := NewEnv(1)
	for _, q := range []Query{Q6Paper(), Fig3Query()} {
		for m := 1; m <= 8; m++ {
			dec, d, _ := Choose(q, m, 8, env)
			if dec == Parallelize {
				t.Fatalf("%s m=%d: parallelize degree %d on 1 processor", q.Name, m, d)
			}
		}
	}
}

// Choose returns the max of the three modeled arms, so a hybrid policy that
// follows it is by construction within any tolerance of the better of
// always-share and always-parallelize at every swept point.
func TestChooseDominatesStaticArms(t *testing.T) {
	q := Q6Paper()
	for _, n := range []float64{1, 2, 4, 8} {
		env := NewEnv(n)
		for m := 1; m <= 12; m++ {
			_, _, x := Choose(q, m, int(n), env)
			xs := SharedX(q, m, env)
			var xpBest float64
			for d := 2; d <= int(n); d++ {
				xpBest = math.Max(xpBest, ParallelX(q, m, d, env))
			}
			if m >= 2 && x < xs-1e-12 {
				t.Fatalf("n=%g m=%d: chosen %g below shared %g", n, m, x, xs)
			}
			if x < xpBest-1e-12 {
				t.Fatalf("n=%g m=%d: chosen %g below parallel best %g", n, m, x, xpBest)
			}
		}
	}
}

func TestDecisionString(t *testing.T) {
	for dec, want := range map[Decision]string{
		RunAlone:     "run-alone",
		Share:        "share",
		Parallelize:  "parallelize",
		Decision(42): "Decision(42)",
	} {
		if got := dec.String(); got != want {
			t.Fatalf("Decision(%d).String() = %q, want %q", int(dec), got, want)
		}
	}
}
