package core

import (
	"testing"
)

func TestMaterializeMarksNode(t *testing.T) {
	pl := Fig3Plan()
	mat, err := Materialize(pl, "pivot")
	if err != nil {
		t.Fatal(err)
	}
	if got := mat.Find("pivot").Kind; got != StopAndGo {
		t.Errorf("pivot kind = %v, want stop-and-go", got)
	}
	// Original untouched.
	if pl.Find("pivot").Kind != Pipelined {
		t.Error("Materialize mutated its input")
	}
	phases, err := SplitPhases(mat)
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 2 {
		t.Errorf("materialized plan split into %d phases, want 2", len(phases))
	}
}

func TestMaterializeMissingNode(t *testing.T) {
	if _, err := Materialize(Fig3Plan(), "ghost"); err == nil {
		t.Error("missing node accepted")
	}
	if _, err := Materialize(Plan{Name: "empty"}, "x"); err == nil {
		t.Error("invalid plan accepted")
	}
}

// The Section 5.1 scenario: a sharing group where one member's consumer is
// extremely slow. Pipelined, the slow consumer throttles the whole merged
// plan; materializing the pivot's output decouples the shared phase, which
// then runs at its own bottleneck rate.
func TestMaterializeDecouplesSlowConsumer(t *testing.T) {
	scan := NewNode("scan", 8, 1)
	pivot := NewNode("pivot", 4, 0.5, scan)
	slowTop := NewNode("top", 40, 0, pivot) // extremely slow consumer
	pl := Plan{Name: "slow-consumer", Root: slowTop}

	// Fully pipelined: the merged plan's bottleneck is the slow consumer.
	q := MustCompile(pl, pl.Find("pivot"))
	const m = 6
	if got := q.SharedPMax(m); got != 40 {
		t.Fatalf("pipelined shared p_max = %g, want 40 (slow top dominates)", got)
	}

	// Materialize at the pivot: the shared phase no longer contains the
	// slow consumer, so its bottleneck is the scan/pivot work.
	mat, err := Materialize(pl, "pivot")
	if err != nil {
		t.Fatal(err)
	}
	phases, err := SplitPhases(mat)
	if err != nil {
		t.Fatal(err)
	}
	sharedPhase := phases[0]
	qShared := MustCompile(sharedPhase, sharedPhase.Find("pivot"))
	if got := qShared.SharedPMax(m); got >= 40 {
		t.Errorf("materialized shared-phase p_max = %g, want < 40", got)
	}
	// The shared phase's group rate beats the throttled pipelined rate on
	// ample processors.
	env := NewEnv(16)
	if SharedX(qShared, m, env) <= SharedX(q, m, env) {
		t.Errorf("materialization did not speed the shared phase: %g ≤ %g",
			SharedX(qShared, m, env), SharedX(q, m, env))
	}
}
