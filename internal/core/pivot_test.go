package core

import (
	"math"
	"testing"
)

// pivotCandidates returns one plan compiled at two levels, highest first:
// at the aggregate (everything below it runs once per group, tiny
// per-consumer hand-off) and at the scan (large per-consumer output cost,
// the aggregate replicated per sharer). The underlying plan is scan(w=10,
// s=9) feeding agg(w=3.3, s=0.2), so the unshared quantities agree across
// compilations: u' = 22.5, p_max = 19.
func pivotCandidates() []Query {
	agg := Query{Name: "q@agg", Below: []float64{19}, PivotW: 3.3, PivotS: 0.2}
	scan := Query{Name: "q@scan", PivotW: 10, PivotS: 9, Above: []float64{3.5}}
	return []Query{agg, scan}
}

// The unshared model must be pivot-invariant: the same plan compiled at any
// level reports the same u', p_max, and unshared rate.
func TestPivotCompilationUnsharedInvariant(t *testing.T) {
	cands := pivotCandidates()
	env := NewEnv(4)
	for i := 1; i < len(cands); i++ {
		if a, b := cands[0].UPrime(), cands[i].UPrime(); math.Abs(a-b) > 1e-9 {
			t.Errorf("u' differs across pivot levels: %g vs %g", a, b)
		}
		if a, b := cands[0].PMax(), cands[i].PMax(); math.Abs(a-b) > 1e-9 {
			t.Errorf("p_max differs across pivot levels: %g vs %g", a, b)
		}
		for _, m := range []int{1, 4, 16} {
			if a, b := UnsharedX(cands[0], m, env), UnsharedX(cands[i], m, env); math.Abs(a-b) > 1e-9 {
				t.Errorf("x_unshared(m=%d) differs across levels: %g vs %g", m, a, b)
			}
		}
	}
}

// Sharing at the aggregate eliminates strictly more work per joiner than
// sharing at the scan, so BestPivot must pick the higher level for every
// group size that shares at all.
func TestBestPivotPrefersHigherLevel(t *testing.T) {
	cands := pivotCandidates()
	env := NewEnv(1)
	for _, m := range []int{2, 4, 8, 24} {
		best, x := BestPivot(cands, m, env)
		if best != 0 {
			t.Errorf("m=%d: BestPivot = %d (x=%g), want 0 (agg level)", m, best, x)
		}
		if xs := SharedX(cands[1], m, env); x < xs {
			t.Errorf("m=%d: best x %g below scan-level x %g", m, x, xs)
		}
	}
	if best, _ := BestPivot(nil, 4, env); best != -1 {
		t.Errorf("BestPivot(nil) = %d, want -1", best)
	}
}

// AttachAdjusted inflates only the per-consumer cost, by the missed
// fraction of the pivot work amortized over the group.
func TestAttachAdjusted(t *testing.T) {
	q := Query{Name: "q", PivotW: 10, PivotS: 2, Above: []float64{1}}
	adj := AttachAdjusted(q, 4, 0.25)
	want := 2 + 0.75*10/4
	if math.Abs(adj.PivotS-want) > 1e-9 {
		t.Errorf("adjusted s = %g, want %g", adj.PivotS, want)
	}
	if adj.PivotW != q.PivotW || len(adj.Above) != 1 {
		t.Error("AttachAdjusted touched coefficients other than s")
	}
	// Full coverage adjusts nothing; remaining is clamped to [0, 1].
	if full := AttachAdjusted(q, 4, 1); full.PivotS != q.PivotS {
		t.Errorf("remaining=1 changed s: %g", full.PivotS)
	}
	if over := AttachAdjusted(q, 4, 1.7); over.PivotS != q.PivotS {
		t.Errorf("remaining>1 changed s: %g", over.PivotS)
	}
	if zero, neg := AttachAdjusted(q, 4, 0), AttachAdjusted(q, 4, -0.5); zero.PivotS != neg.PivotS {
		t.Errorf("negative remaining not clamped to 0: %g vs %g", neg.PivotS, zero.PivotS)
	}
}

// ChoosePivoted must reach all four decisions in the regimes that favor
// them, and report the pivot level sharing decisions anchor at.
func TestChoosePivotedFourWay(t *testing.T) {
	cands := pivotCandidates()

	// One query, one processor: nothing to share or split.
	if dec, _, _, _ := ChoosePivoted(cands, 1, 1, 1, NewEnv(1)); dec != RunAlone {
		t.Errorf("m=1: decision %v, want run-alone", dec)
	}

	// Saturated machine, full-coverage group available: share, at the
	// aggregate level.
	dec, pivot, degree, x := ChoosePivoted(cands, 8, 1, 1, NewEnv(1))
	if dec != Share || pivot != 0 || degree != 1 {
		t.Errorf("saturated: (%v, pivot=%d, d=%d), want (share, 0, 1)", dec, pivot, degree)
	}
	if alone := UnsharedX(cands[0], 8, NewEnv(1)); x <= alone {
		t.Errorf("shared x %g not above run-alone %g", x, alone)
	}

	// Idle machine, no group to join: splitting one query into clones is
	// the only way to use the spare contexts.
	dec, _, degree, _ = ChoosePivoted(cands, 1, 8, -1, NewEnv(8))
	if dec != Parallelize || degree < 2 {
		t.Errorf("idle: (%v, d=%d), want parallelize with d >= 2", dec, degree)
	}

	// Saturated machine, in-flight group with most coverage left: attach.
	dec, pivot, _, _ = ChoosePivoted(cands, 8, 1, 0.9, NewEnv(1))
	if dec != AttachInflight {
		t.Errorf("in-flight: decision %v, want attach-in-flight", dec)
	}
	if pivot != 0 {
		t.Errorf("in-flight: pivot %d, want 0", pivot)
	}

	// Nearly exhausted coverage makes attaching worse than running alone.
	if dec, _, _, _ := ChoosePivoted(pivotCandidates()[1:], 2, 1, 0.01, NewEnv(4)); dec != RunAlone {
		t.Errorf("exhausted coverage: decision %v, want run-alone", dec)
	}
}

// The Decision labels feed reports; keep them stable.
func TestDecisionStrings(t *testing.T) {
	for dec, want := range map[Decision]string{
		RunAlone:       "run-alone",
		Share:          "share",
		Parallelize:    "parallelize",
		AttachInflight: "attach-in-flight",
		Decision(42):   "Decision(42)",
	} {
		if got := dec.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(dec), got, want)
		}
	}
}
