package core

// Sensitivity-analysis sweep helpers (Section 6). Each returns the series a
// figure plots: speedup Z as a function of the number of clients m, for one
// setting of the swept parameter.

// Point is one (m, value) sample of a sweep.
type Point struct {
	// M is the number of clients (queries in the sharing group).
	M int
	// Value is the plotted quantity (usually speedup Z).
	Value float64
}

// Series is a named sequence of sweep points.
type Series struct {
	// Label identifies the curve ("16 CPU", "s=0.25", ...).
	Label string
	// Points are ordered by M ascending.
	Points []Point
}

// SweepClients evaluates Z(m, env) for m = 1..maxM.
func SweepClients(q Query, env Env, maxM int) Series {
	s := Series{Label: q.Name}
	for m := 1; m <= maxM; m++ {
		s.Points = append(s.Points, Point{M: m, Value: Z(q, m, env)})
	}
	return s
}

// SweepProcessors produces the Figure 4 (left) family: one Z-vs-m series per
// processor count.
func SweepProcessors(q Query, processors []int, maxM int) []Series {
	out := make([]Series, 0, len(processors))
	for _, n := range processors {
		s := SweepClients(q, NewEnv(float64(n)), maxM)
		s.Label = formatCPUs(n)
		out = append(out, s)
	}
	return out
}

// SweepPivotCost produces the Figure 4 (center) family: one Z-vs-m series per
// per-consumer output cost s, on a fixed processor count.
func SweepPivotCost(base Query, costs []float64, env Env, maxM int) []Series {
	out := make([]Series, 0, len(costs))
	for _, c := range costs {
		q := base
		q.PivotS = c
		s := SweepClients(q, env, maxM)
		s.Label = formatS(c)
		out = append(out, s)
	}
	return out
}

// SweepWorkEliminated produces the Figure 4 (right) family: one Z-vs-m series
// per number of stages moved below the pivot, on a fixed processor count. The
// label records the asymptotic fraction of work sharing eliminates.
func SweepWorkEliminated(env Env, maxM int) []Series {
	out := make([]Series, 0, 6)
	for stages := 5; stages >= 0; stages-- {
		q := Fig4RightQuery(stages)
		s := SweepClients(q, env, maxM)
		s.Label = formatStages(stages, AsymptoticEliminated(q))
		out = append(out, s)
	}
	return out
}

func formatCPUs(n int) string {
	return itoa(n) + " CPU"
}

func formatS(c float64) string {
	return "s=" + ftoa(c)
}

func formatStages(stages int, frac float64) string {
	return itoa(stages) + "/5 (" + itoa(int(frac*100+0.5)) + "%)"
}

// itoa/ftoa keep this file free of fmt for the hot sweep paths used in
// benchmarks.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func ftoa(v float64) string {
	// Two decimal places, enough for sweep labels.
	whole := int(v)
	frac := int((v-float64(whole))*100 + 0.5)
	if frac == 100 {
		whole++
		frac = 0
	}
	if frac == 0 {
		return itoa(whole) + ".0"
	}
	s := itoa(frac)
	if frac < 10 {
		s = "0" + s
	}
	return itoa(whole) + "." + s
}
