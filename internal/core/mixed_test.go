package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHomogeneousGroupMatchesScalarAPI(t *testing.T) {
	for _, q := range []Query{Q6Paper(), Fig3Query(), Fig4RightQuery(2)} {
		for _, m := range []int{1, 2, 7, 32} {
			g := Homogeneous(q, m)
			if err := g.Validate(); err != nil {
				t.Fatalf("%s m=%d: %v", q.Name, m, err)
			}
			for _, n := range []float64{1, 8, 32} {
				env := NewEnv(n)
				almostEq(t, g.SharedX(env), SharedX(q, m, env), 1e-9, "group shared rate")
				almostEq(t, g.UnsharedX(env, Closed), UnsharedX(q, m, env), 1e-9, "group closed unshared rate")
				almostEq(t, g.UnsharedX(env, Open), UnsharedX(q, m, env), 1e-9, "group open unshared rate")
				almostEq(t, g.Z(env, Closed), Z(q, m, env), 1e-9, "group Z")
			}
		}
	}
}

func TestGroupValidate(t *testing.T) {
	if err := (Group{}).Validate(); err == nil {
		t.Error("empty group accepted")
	}
	a := Query{Name: "a", Below: []float64{10}, PivotW: 5, PivotS: 1, Above: []float64{2}}
	b := Query{Name: "b", Below: []float64{10}, PivotW: 5, PivotS: 3, Above: []float64{9, 4}}
	if err := (Group{Members: []Query{a, b}}).Validate(); err != nil {
		t.Errorf("compatible members rejected: %v", err)
	}
	c := Query{Name: "c", Below: []float64{99}, PivotW: 5, PivotS: 1}
	if err := (Group{Members: []Query{a, c}}).Validate(); err == nil {
		t.Error("members with different shared sub-plans accepted")
	}
	d := Query{Name: "d", Below: []float64{10}, PivotW: 7, PivotS: 1}
	if err := (Group{Members: []Query{a, d}}).Validate(); err == nil {
		t.Error("members with different pivot work accepted")
	}
}

func TestGroupPivotFanOut(t *testing.T) {
	a := Query{Name: "a", Below: []float64{10}, PivotW: 5, PivotS: 1, Above: []float64{2}}
	b := Query{Name: "b", Below: []float64{10}, PivotW: 5, PivotS: 3, Above: []float64{4}}
	g := Group{Members: []Query{a, b}}
	// p_φ(M) = w + Σ s_mφ = 5 + 1 + 3.
	almostEq(t, g.PivotP(), 9, 1e-12, "p_φ")
	// u'_shared = below(10) + p_φ(9) + above(2+4).
	almostEq(t, g.SharedUPrime(), 25, 1e-12, "u'_shared")
	almostEq(t, g.SharedPMax(), 10, 1e-12, "p_max shared")
}

// A mismatched group in a closed system: the fast query raises the harmonic
// mean, so closed-system unshared throughput exceeds the open-system
// (slowest-throttled) estimate.
func TestClosedBeatsOpenForMismatchedRates(t *testing.T) {
	slow := Query{Name: "slow", Below: []float64{10}, PivotW: 5, PivotS: 1, Above: []float64{30}}
	fast := Query{Name: "fast", Below: []float64{10}, PivotW: 5, PivotS: 1, Above: []float64{1}}
	g := Group{Members: []Query{slow, fast}}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	env := NewEnv(8)
	xClosed := g.UnsharedX(env, Closed)
	xOpen := g.UnsharedX(env, Open)
	if xClosed <= xOpen {
		t.Errorf("closed %g ≤ open %g; faster queries should raise the closed-system harmonic mean", xClosed, xOpen)
	}
}

func TestClosedSystemHarmonicMean(t *testing.T) {
	// Two queries with p_max 10 and 30 and unlimited processors: the closed
	// form r = M²/Σp_max = 4/40 = 0.1 (M times the harmonic mean of the
	// member rates 1/10 and 1/30).
	slow := Query{Name: "slow", PivotW: 25, PivotS: 5}
	fast := Query{Name: "fast", PivotW: 5, PivotS: 5}
	g := Group{Members: []Query{slow, fast}}
	env := NewEnv(1e9)
	almostEq(t, g.UnsharedX(env, Closed), 4.0/40, 1e-9, "harmonic-mean rate")
	// Open system: both throttled to the slowest, r = 2·(1/30).
	almostEq(t, g.UnsharedX(env, Open), 2.0/30, 1e-9, "slowest-throttled rate")
}

func TestGroupZAndDecision(t *testing.T) {
	q := Q6Paper()
	g := Homogeneous(q, 10)
	if !g.ShouldShare(NewEnv(1), Closed) {
		t.Error("Q6 x10 on 1 cpu: model should recommend sharing")
	}
	if g.ShouldShare(NewEnv(32), Closed) {
		t.Error("Q6 x10 on 32 cpu: model should recommend independent execution")
	}
}

func TestMarginalBenefit(t *testing.T) {
	q := Q6Paper()
	env := NewEnv(1)
	g := Homogeneous(q, 3)
	if !g.MarginalBenefit(q, env, Closed) {
		t.Error("on 1 cpu adding a sharer to a Q6 group should stay beneficial")
	}
	env32 := NewEnv(32)
	if g.MarginalBenefit(q, env32, Closed) {
		t.Error("on 32 cpu adding a sharer to a Q6 group should be rejected")
	}
	// Incompatible candidates are always rejected.
	other := Query{Name: "other", Below: []float64{123}, PivotW: 1, PivotS: 1}
	if g.MarginalBenefit(other, env, Closed) {
		t.Error("incompatible candidate accepted")
	}
}

func TestSystemKindString(t *testing.T) {
	if Closed.String() != "closed" || Open.String() != "open" {
		t.Errorf("got %q/%q", Closed.String(), Open.String())
	}
	if got := SystemKind(42).String(); got == "" {
		t.Error("unknown kind produced empty string")
	}
}

// Property: group shared rate is invariant under member permutation.
func TestQuickGroupPermutationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := randomQuery(rng)
		m := 2 + rng.Intn(6)
		members := make([]Query, m)
		for i := range members {
			q := base
			q.PivotS = rng.Float64() * 5
			q.Above = []float64{rng.Float64() * 10}
			members[i] = q
		}
		g := Group{Members: members}
		perm := rng.Perm(m)
		shuffled := make([]Query, m)
		for i, j := range perm {
			shuffled[i] = members[j]
		}
		g2 := Group{Members: shuffled}
		env := NewEnv(1 + float64(rng.Intn(32)))
		return math.Abs(g.SharedX(env)-g2.SharedX(env)) < 1e-9 &&
			math.Abs(g.UnsharedX(env, Closed)-g2.UnsharedX(env, Closed)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the group's shared bottleneck never falls below any member's own
// unshared bottleneck (sharing can only slow the pipeline's slowest stage).
func TestQuickSharedBottleneckDominates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := randomQuery(rng)
		m := 1 + rng.Intn(8)
		g := Homogeneous(base, m)
		return g.SharedPMax() >= base.PMax()-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
