package core

import (
	"math"
	"testing"
)

// The Section 4.4 worked example is the strongest ground truth the paper
// publishes for the model: Q6 with w=9.66, s=10.34 at the scan pivot and
// p=0.97 for the aggregate must yield the closed forms
//
//	p_max = p_φ = 20
//	u'_unshared(M) = 21·M (paper rounds 20.97 to 21)
//	x_unshared(M,n) = min(M/20, n/20.97)
//	p_max_shared(M) = 9.66 + 10.34·M
//	u'_shared(M)    = 9.66 + 11.31·M
//	x_shared(M,n)   = min(1/(9.66/M + 10.34), n/(9.66/M + 11.31))

func almostEq(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", what, got, want, tol)
	}
}

func TestQ6PaperPMax(t *testing.T) {
	q := Q6Paper()
	almostEq(t, q.PMax(), 20, 1e-9, "p_max")
	almostEq(t, q.PivotP(1), 20, 1e-9, "p_φ(1)")
	almostEq(t, q.UPrime(), 20.97, 1e-9, "u'")
	almostEq(t, q.U(), 20.97/20, 1e-9, "u")
	almostEq(t, q.R(), 1.0/20, 1e-12, "r")
}

func TestQ6PaperUnsharedClosedForm(t *testing.T) {
	q := Q6Paper()
	for _, m := range []int{1, 2, 5, 10, 48} {
		for _, n := range []float64{1, 2, 8, 32} {
			want := math.Min(float64(m)/20, n/20.97)
			got := UnsharedX(q, m, NewEnv(n))
			almostEq(t, got, want, 1e-9, "x_unshared")
		}
	}
}

func TestQ6PaperSharedClosedForm(t *testing.T) {
	q := Q6Paper()
	for _, m := range []int{1, 2, 5, 10, 48} {
		fm := float64(m)
		almostEq(t, q.SharedPMax(m), 9.66+10.34*fm, 1e-9, "p_max_shared")
		almostEq(t, q.SharedUPrime(m), 9.66+11.31*fm, 1e-9, "u'_shared")
		for _, n := range []float64{1, 2, 8, 32} {
			want := math.Min(1/(9.66/fm+10.34), n/(9.66/fm+11.31))
			got := SharedX(q, m, NewEnv(n))
			almostEq(t, got, want, 1e-9, "x_shared")
		}
	}
}

// "In this particular case we see that work sharing is only attractive when
// one processor is available." — Section 4.4.
func TestQ6PaperSharingOnlyAttractiveOnOneProcessor(t *testing.T) {
	q := Q6Paper()
	for m := 2; m <= 48; m++ {
		if !ShouldShare(q, m, NewEnv(1)) {
			t.Errorf("m=%d n=1: expected sharing to win, Z=%g", m, Z(q, m, NewEnv(1)))
		}
	}
	for _, n := range []float64{2, 8, 32} {
		sharedWins := 0
		for m := 2; m <= 48; m++ {
			if ShouldShare(q, m, NewEnv(n)) {
				sharedWins++
			}
		}
		if sharedWins > 0 {
			t.Errorf("n=%g: sharing predicted beneficial for %d group sizes; paper says only n=1 benefits", n, sharedWins)
		}
	}
}

// Section 1.2: under work sharing Q6 "utilized only three of 32 available
// hardware contexts, while independent execution utilized all of them",
// giving roughly a 10x difference at high client counts.
func TestQ6PaperUtilizationCapAndTenX(t *testing.T) {
	q := Q6Paper()
	// Shared utilization tends to (9.66/m + 11.31)/(9.66/m + 10.34) ≈ 1.09:
	// barely more than one context no matter how many sharers join.
	for _, m := range []int{8, 16, 48} {
		u := SharedUtilization(q, m)
		if u > 1.5 {
			t.Errorf("m=%d: shared utilization %g, expected ~1.1 (sharing caps parallelism)", m, u)
		}
	}
	// Independent execution of 48 clients can use all 32 contexts.
	if got := UnsharedUtilization(q, 48); got < 32 {
		t.Errorf("unshared utilization(48) = %g, want ≥ 32", got)
	}
	// The resulting gap on 32 contexts approaches an order of magnitude.
	env := NewEnv(32)
	z := Z(q, 48, env)
	if z > 0.2 {
		t.Errorf("Z(48,32) = %g, expected ≤ 0.2 (~10x loss from sharing)", z)
	}
}

// Figure 1 topmost line: on a uniprocessor, sharing Q6 yields up to ~1.8x.
func TestQ6PaperUniprocessorSpeedupShape(t *testing.T) {
	q := Q6Paper()
	env := NewEnv(1)
	prev := 0.0
	for m := 1; m <= 48; m++ {
		z := Z(q, m, env)
		if z < prev-1e-9 {
			t.Errorf("m=%d: uniprocessor speedup decreased (%g -> %g); expected monotone rise to plateau", m, prev, z)
		}
		prev = z
	}
	final := Z(q, 48, NewEnv(1))
	if final < 1.5 || final > 2.1 {
		t.Errorf("Z(48,1) = %g, want ≈ 1.8 (paper: speedups up to 1.8x on 1 cpu)", final)
	}
}

func TestQ6WorkEliminated(t *testing.T) {
	q := Q6Paper()
	if got := q.WorkEliminated(1); got != 0 {
		t.Errorf("WorkEliminated(1) = %g, want 0", got)
	}
	// As m grows, sharing eliminates up to w_scan/u' = 9.66/20.97 ≈ 46% of
	// the group's work (the scan's own work executes once; its per-consumer
	// output and the aggregates are never eliminated).
	got := q.WorkEliminated(1000)
	want := 9.66 / 20.97
	if math.Abs(got-want) > 0.01 {
		t.Errorf("WorkEliminated(1000) = %g, want ≈ %g", got, want)
	}
}
