package core

import "math"

// Little's Law helpers (Section 1.2). In a closed system with N queries in
// flight, throughput X and response time R obey X = N/R: "throttling queries
// lowers throughput even if the amount of work in the system is reduced at
// the same time" — the observation that motivates the whole model.

// ResponseTime returns the average per-query response time R = N/X implied
// by aggregate rate x with m queries in the system. It is +Inf when the
// system makes no progress.
func ResponseTime(m int, x float64) float64 {
	if x <= 0 {
		return math.Inf(1)
	}
	return float64(m) / x
}

// UnsharedResponseTime returns R for m copies of q running independently.
func UnsharedResponseTime(q Query, m int, env Env) float64 {
	return ResponseTime(m, UnsharedX(q, m, env))
}

// SharedResponseTime returns R for m copies of q sharing at the pivot. The
// sharing delay the pivot imposes shows up directly here: even when sharing
// removes work, R can grow because the group is throttled to the pivot's
// fan-out rate.
func SharedResponseTime(q Query, m int, env Env) float64 {
	return ResponseTime(m, SharedX(q, m, env))
}
