package core

import "fmt"

// Materialize returns a copy of the plan in which the named node becomes a
// stop-&-go operator: its results are materialized rather than pipelined to
// its consumer. Section 5.1 suggests this for extremely slow consumers in a
// sharing group — materializing decouples the shared sub-plan's rate from
// the slow consumer, "to prevent the latter from slowing down the entire
// pipeline". The transformed plan splits into phases at the materialization
// point (see SplitPhases), and the shared phase proceeds at its own
// bottleneck rate instead of being throttled by the slowest sharer.
func Materialize(pl Plan, nodeName string) (Plan, error) {
	if err := pl.Validate(); err != nil {
		return Plan{}, err
	}
	found := false
	var rebuild func(nd *PlanNode) *PlanNode
	rebuild = func(nd *PlanNode) *PlanNode {
		cp := &PlanNode{Name: nd.Name, W: nd.W, S: nd.S, Kind: nd.Kind}
		if nd.Name == nodeName && !found {
			found = true
			cp.Kind = StopAndGo
		}
		for _, c := range nd.Children {
			cp.Children = append(cp.Children, rebuild(c))
		}
		return cp
	}
	root := rebuild(pl.Root)
	if !found {
		return Plan{}, fmt.Errorf("core: materialize: no node %q in plan %q", nodeName, pl.Name)
	}
	return Plan{Name: pl.Name + " (materialized at " + nodeName + ")", Root: root}, nil
}
