package core

import (
	"math"
	"testing"
)

// q4Build mirrors the tpch Q4 build-pivot compilation: the build work runs
// once per group, the table hand-off is near free, and the probe side plus
// the aggregate replicate per member.
func q4Build() Query {
	return Query{
		Name:   "q4@build",
		PivotW: 12,
		PivotS: 0.005,
		Above:  []float64{8, 10, 0.4},
	}
}

// Amortizing one build over m probes must beat m parallel builds, with the
// benefit growing monotonically in m — the signature of a near-zero
// per-consumer cost.
func TestBuildShareZMonotone(t *testing.T) {
	q := q4Build()
	env := NewEnv(4)
	if z := BuildShareZ(q, 1, env); math.Abs(z-1) > 1e-9 {
		t.Errorf("BuildShareZ(1) = %v, want 1 (sharing a single query changes nothing)", z)
	}
	prev := 1.0
	for m := 2; m <= 16; m *= 2 {
		z := BuildShareZ(q, m, env)
		if z <= prev {
			t.Errorf("BuildShareZ(%d) = %v, not monotonically increasing (prev %v)", m, z, prev)
		}
		if !ShouldShareBuild(q, m, env) {
			t.Errorf("ShouldShareBuild(%d) = false, want true", m)
		}
		prev = z
	}
}

// BuildShareSpeedup is the ratio the ablation prints; it must agree with
// the raw rates and stay finite.
func TestBuildShareSpeedupConsistent(t *testing.T) {
	q := q4Build()
	env := NewEnv(2)
	for _, m := range []int{2, 6} {
		want := BuildShareX(q, m, env) / BuildAloneX(q, m, env)
		if got := BuildShareSpeedup(q, m, env); math.Abs(got-want) > 1e-12 {
			t.Errorf("BuildShareSpeedup(%d) = %v, want %v", m, got, want)
		}
	}
}

// A build candidate competes in ChoosePivoted like any other level: with a
// heavy build and light probes it wins the share arm outright under
// saturation.
func TestChoosePivotedPicksBuildCandidate(t *testing.T) {
	// Candidate 0: a join-level compilation whose fan-out stream is so
	// expensive (s·m) that merging there adds more work than it removes.
	// Candidate 1: the build compilation, whose table hand-off is free.
	joinLevel := Query{Name: "join", PivotW: 10, PivotS: 20, Above: []float64{0.4}, Below: []float64{12, 8}}
	buildLevel := q4Build()
	dec, pivot, _, _ := ChoosePivoted([]Query{joinLevel, buildLevel}, 8, 1, 1, NewEnv(1))
	if dec != Share {
		t.Fatalf("decision = %v, want Share", dec)
	}
	if pivot != 1 {
		t.Errorf("chosen candidate = %d, want 1 (the build level)", pivot)
	}
}
