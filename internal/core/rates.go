package core

import (
	"fmt"
	"math"
)

// Env describes the hardware the model reasons about.
type Env struct {
	// Processors is n, the number of execution contexts the system makes
	// available to the query group.
	Processors float64
	// KUnshared scales the effective processor count under independent
	// execution to account for contention in shared hardware resources
	// (caches, memory bandwidth): n_eff = n·k, 0 < k ≤ 1 (Section 4.1.4).
	// Zero means "no contention" (k = 1).
	KUnshared float64
	// KShared is the contention factor under shared execution. Zero means
	// "no contention" (k = 1). Sharing typically improves locality, so
	// KShared ≥ KUnshared is common in practice.
	KShared float64
}

// Processors1 is a convenience single-processor environment.
var Processors1 = Env{Processors: 1}

// NewEnv returns an Env with n processors and no hardware contention (k = 1).
func NewEnv(n float64) Env { return Env{Processors: n} }

func (e Env) effective(k float64) float64 {
	if k <= 0 || k > 1 {
		k = 1
	}
	return e.Processors * k
}

// EffectiveUnshared returns n·k for unshared execution.
func (e Env) EffectiveUnshared() float64 { return e.effective(e.KUnshared) }

// EffectiveShared returns n·k for shared execution.
func (e Env) EffectiveShared() float64 { return e.effective(e.KShared) }

// Validate rejects non-positive or non-finite processor counts.
func (e Env) Validate() error {
	if math.IsNaN(e.Processors) || math.IsInf(e.Processors, 0) || e.Processors <= 0 {
		return fmt.Errorf("core: invalid processor count %g", e.Processors)
	}
	return nil
}

// rate computes x = count·min(1/pMax, n/u'), the group rate of forward
// progress for a plan with bottleneck pMax and total work uPrime, executed by
// `count` query instances on n effective processors (Section 4.1.3).
func rate(count float64, pMax, uPrime, n float64) float64 {
	if pMax <= 0 || uPrime <= 0 {
		return math.Inf(1) // a zero-work plan progresses arbitrarily fast
	}
	return count * math.Min(1/pMax, n/uPrime)
}

// UnsharedX returns x_unshared(m,n): the aggregate rate of forward progress
// of m identical copies of q executing independently on env (Section 4.2).
// All copies proceed at the same rate and finish together.
func UnsharedX(q Query, m int, env Env) float64 {
	if m <= 0 {
		return 0
	}
	// r_unshared = m·r and u'_unshared = m·u'; the m cancels inside min:
	// x = m·min(1/p_max, n/(m·u'))·... expressed directly:
	return rate(float64(m), q.PMax(), float64(m)*q.UPrime(), env.EffectiveUnshared())
}

// SharedX returns x_shared(m,n): the aggregate rate of forward progress of m
// copies of q sharing work at the pivot on env (Section 4.3). The pivot pays
// s per consumer, so p_φ(m) = w_φ + m·s_φ may become the new bottleneck; work
// below the pivot executes once.
func SharedX(q Query, m int, env Env) float64 {
	if m <= 0 {
		return 0
	}
	return rate(float64(m), q.SharedPMax(m), q.SharedUPrime(m), env.EffectiveShared())
}

// Z returns the benefit of work sharing Z(m,n) = x_shared/x_unshared.
// Sharing is a net win iff Z > 1. Z(1,n) = 1 by construction: merging a
// single query changes nothing.
func Z(q Query, m int, env Env) float64 {
	xu := UnsharedX(q, m, env)
	xs := SharedX(q, m, env)
	switch {
	case xu == 0 && xs == 0:
		return 1
	case xu == 0:
		return math.Inf(1)
	default:
		return xs / xu
	}
}

// ShouldShare reports the model's binary recommendation: share the m queries
// at the pivot iff the predicted shared rate beats independent execution.
func ShouldShare(q Query, m int, env Env) bool { return Z(q, m, env) > 1 }

// SharedUtilization returns u_shared(m) = u'_shared(m)/p_max_shared(m): the
// peak number of processors shared execution of the group can exploit. The
// paper uses this to show sharing "artificially caps the degree of
// parallelism" (e.g. Q6 under sharing utilizes ~1 context regardless of m).
func SharedUtilization(q Query, m int) float64 {
	pm := q.SharedPMax(m)
	if pm == 0 {
		return 0
	}
	return q.SharedUPrime(m) / pm
}

// UnsharedUtilization returns m·u, the peak processors m independent copies
// can exploit.
func UnsharedUtilization(q Query, m int) float64 { return float64(m) * q.U() }

// BreakEvenClients returns the smallest group size m in [2, maxM] for which
// sharing stops being beneficial (Z ≤ 1), or 0 if sharing remains beneficial
// for every m ≤ maxM. Useful for sizing sharing groups (Section 8.1).
func BreakEvenClients(q Query, env Env, maxM int) int {
	for m := 2; m <= maxM; m++ {
		if !ShouldShare(q, m, env) {
			return m
		}
	}
	return 0
}
