// Package core implements the analytical work-sharing model from
// "To Share or Not To Share?" (Johnson et al., VLDB 2007).
//
// The model predicts the rate of forward progress of m concurrent pipelined
// queries executing on n processors, both when the queries run independently
// and when they share a common sub-plan, and therefore whether applying work
// sharing is a net win.
//
// # Terms (Table 1 of the paper)
//
//	w      work an operator performs per unit of forward progress
//	s      work required to output a unit of forward progress to EACH consumer
//	p      total work per unit of forward progress: p = Σ w_i + Σ s_j
//	r      peak rate of forward progress for a query: r = 1/p_max
//	u      maximum processor utilization per query: u = u'/p_max, u' = Σ p_k
//	x(m,n) rate of forward progress given m queries and n processors
//	φ      the pivot operator — the highest point where sharing is possible
//	Z(m,n) benefit of sharing: x_shared/x_unshared; share iff Z > 1
//
// All streams carry units of forward progress rather than tuples, so that
// operators with different selectivities are directly comparable: each
// operator's per-unit work is expressed relative to the forward progress of
// one reference tuple stream for the query.
//
// # Execution semantics captured
//
//   - Pipelined plans: the slowest (bottleneck) operator bounds the whole
//     query, r = 1/p_max.
//   - Limited hardware: if the group's utilization demand u exceeds the n
//     available processors, time-sharing uniformly throttles the rate by n/u,
//     giving x(n) = min(1/p_max, n/u').
//   - Shared execution at a pivot φ: work below φ executes once for the whole
//     group; the pivot pays its own w once plus s per consumer, so
//     p_φ(M) = w_φ + Σ_m s_mφ, which can become the new bottleneck; the
//     slowest member throttles the group.
//   - Contention for shared hardware (caches, memory bandwidth): effectively
//     only n·k processors are available, 0 < k ≤ 1, with possibly different k
//     for shared and unshared execution.
//   - Closed systems (Section 5.1): completed queries are immediately
//     replaced, so group rate uses the harmonic-mean form
//     r_unshared = M / Σ_m p_max(m) and each query is throttled only by its
//     own bottleneck.
//   - Stop-&-go operators (Section 5.2): sorts and hash builds decouple the
//     rates below and above them; SplitPhases models each phase separately.
//   - Join decompositions (Section 5.3): NLJ pipelines; MJ = two sorts plus a
//     merge; HJ = stop-&-go build plus pipelined probe.
//
// # In-flight sharing (beyond the paper)
//
// The paper's experiments form sharing groups at submission time: a query
// may merge at a pivot only while that pivot has not yet emitted its first
// page, which in steady closed-loop traffic almost never happens for
// scan pivots (the window between group creation and first emit is one
// scheduling quantum). The reproduction therefore extends the engine with a
// circular ("elevator") scan registry (internal/storage): a late arrival
// attaches to a scan already in progress at its current cursor position,
// consumes the remaining fraction f of the table riding alongside the
// existing group, and recovers the missed prefix when the cursor wraps
// around — every consumer still sees each page exactly once, in rotated
// order, which is sound above order-insensitive operators such as the hash
// aggregates over every scan pivot here.
//
// The model extends naturally to the attach decision. The wrap-around lap
// makes the pivot re-execute (1-f) of its per-progress work w solely to
// serve the late joiner, so admission evaluates the usual benefit test with
// the per-consumer cost inflated to s + (1-f)·w/m (equivalently, the group
// pivot total p_φ(m) inflated by (1-f)·w) and compares the adjusted shared
// rate against unshared execution of the unmodified queries:
// x_shared(adj; m, n) > x_unshared(m, n). With f = 1 this reduces exactly
// to the Section 8 submission-time test Z(m, n) > 1. See
// policy.ModelGuided.ShouldAttach and engine.AttachPolicy.
//
// # Share vs parallelize (beyond the paper)
//
// Sharing is only half of the paper's question: on a multicore the real
// alternative to merging m queries into one serial shared pipeline is
// running them unshared but parallelized. The reproduction therefore also
// models intra-query parallelism: a query split into d partitioned clones
// (disjoint morsels of its scan dispensed to competing clone pipelines,
// partial operators fanning into one serial merge node) has bottleneck
// work p_max/d but an extra serial merge stage costing the pivot's s — so
// its peak rate saturates at 1/s, and under processor saturation it
// degrades to the plain unshared rate because partitioning conserves work
// (ParallelX). Choose evaluates all three regimes — serial shared cost
// s·m, parallel unshared cost w/d under the current load, serial alone —
// and returns share / parallelize / run-alone plus the winning degree:
// idle contexts favor parallelizing (rate is the constraint), saturation
// favors sharing (work elimination is the constraint). The engine realizes
// each decision physically: sharing through pivot fan-out and the circular
// scan registry, parallelism through the morsel dispenser, per-clone
// partial operators, and the synthesized merge node. See
// policy.ModelGuided (MaxDegree), engine.ParallelPolicy, and
// storage.MorselDispenser.
//
// # The pivot at an arbitrary level (beyond the paper)
//
// The paper defines φ as "the highest point where sharing is possible" and
// charges p_φ(M) = w_φ + Σ_m s_mφ at whatever level sharing happens, but
// an engine that can only merge at the scan leaf forces φ to the bottom:
// every consumer re-runs the filters, projections, and aggregation the
// group could execute once. The reproduction lifts the pivot above the
// scan. The engine canonicalizes the prefix of a plan at each candidate
// pivot into a subplan fingerprint (engine.ShareKey); queries merge
// whenever their prefixes canonicalize identically, each member keeping
// its own private chain above the pivot — so group-by variants of one
// report share a single filtered table pass, date-window variants share a
// superset scan and apply private residual filters, and identical queries
// share everything down to the final fan-out of result rows. The same
// Query type models every level: Compile flattens the plan against any
// pivot node, and the unshared quantities (u', p_max) are invariant to
// where the plan is split, so only the shared arms differ by level.
// BestPivot picks the level with the fastest predicted shared rate, and
// ChoosePivoted extends Choose to the full four-way decision — run-alone,
// share at the best φ, parallelize into d clones, or attach to a scan
// already in flight with remaining coverage f (share with s inflated by
// the wrap-around re-scan; f = 1 reduces the attach arm to the plain share
// arm, f < 0 meaning no compatible group removes both sharing arms).
//
// # Build-side sharing (beyond the paper)
//
// Chain-shaped pivots stop short of the paper's join reuse case: two join
// queries whose probe sides differ can never fingerprint-match at or above
// the join, yet everything below the join's build branch may be identical.
// Tree-shaped plan specs fix this. Fingerprints canonicalize recursively
// per branch, any subtree may anchor sharing (members privately
// instantiate the arbitrary tree that remains, including other leaf scans
// and joins), and a join declaring split build/probe forms offers its
// build subtree as a pivot candidate whose shared artifact is the sealed,
// immutable hash table rather than a page stream: the group runs the
// build once, publishes the table through the work exchange as a
// refcounted buildstate entry, and every member attaches a private probe
// — before the seal (parking until the table is ready) or long after
// (sealed tables lose nothing to late joiners; the state retires with its
// last prober).
//
// The model needs no new equation, only a new compilation: a Query
// compiled at the build pivot has the build work w_b as PivotW (run once
// per group), a near-zero PivotS (handing a member an immutable table is
// a pointer hand-off, not a page stream), and the probe subtree plus
// everything above as per-member Above work. BuildShareZ names the
// comparison — one build amortized over m probes versus m parallel builds
// — and because s_b ≈ 0 the shared bottleneck does not grow with m, so
// build sharing is the rare arm whose benefit increases monotonically
// with the group size on any processor count. BestPivot and ChoosePivoted
// treat a build candidate like any other level. See engine.PivotOption
// (Build), relop.JoinBuild / HashJoinProbe, storage.BuildState, and
// tpch.Q4FamilySpec / tpch.Q13FamilySpec.
//
// # Keep-alive retention (beyond the paper)
//
// All of the above shares work among queries alive at the same time; the
// group's economics end with its last consumer. Bursty traffic breaks that
// boundary in a predictable way: a burst amortizes one hash build over its
// members, drains, and the next burst — arriving after an idle gap of
// milliseconds — rebuilds the very table the previous one just dropped.
// The reproduction therefore retains retired shared artifacts (sealed
// build-state hash tables, completed whole-plan result runs) in a
// memory-budgeted keep-alive cache (internal/artifact) keyed by the same
// canonical subtree fingerprints, converting the across-burst rebuild into
// a late attach with zero build work.
//
// The model extends with the retain-vs-evict decision, the cache-side
// sibling of the build-share test. The work a retained artifact saves per
// re-arrival is its rebuild cost — everything at and below its pivot,
// RebuildCost = Σ below + w_φ (for a build state, the build subtree plus
// the hashing pass w_b; for a result run, the whole plan). Weighted by the
// probability that a fingerprint-matching query re-arrives within the
// keep-alive window this gives RetainBenefit, and relative to the
// artifact's claim on the cache budget (footprint/budget) it gives the
// benefit ratio RetainZ — retain iff RetainZ > 1, exactly parallel to
// "share iff Z > 1" (ShouldRetain). Under memory pressure the cache evicts
// in benefit-density order (RetainScore, expected work saved per pinned
// byte), least recently used among equals: LRU-by-benefit. Correctness is
// epoch-guarded rather than modeled — every artifact records the
// invalidation epoch of its source tables at build time
// (storage.Table.Epoch, bumped by any mutation-path publish), and a lookup
// at a different epoch drops the entry instead of serving it. See
// artifact.Cache, engine.Options (Cache, SweepInterval), and the
// engine's CacheHits/CacheMisses/CacheEvictions/CacheBytes counters.
//
// # Admission control (beyond the paper)
//
// A long-running server faces a decision the paper's closed loops never do:
// what to do with a query that arrives while the system is busy. The same
// coefficients price it (Admit). Four arms, for a query q arriving on n
// processors with `active` queries running and `queued` waiting:
//
//   - admit-shared: ChoosePivoted's share (or attach) arm wins at the
//     effective contention max(m, active+1). The group is already paying
//     its below-pivot work, so q's marginal demand is only its private
//     above-pivot chain plus one more s at the pivot — admissible even past
//     saturation. Sharing is the server's first line of overload defense,
//     which is the paper's thesis restated as a queueing policy.
//   - admit-alone: q runs unshared, adding its full u' to the system.
//     Admissible only while the unshared demand fits the hardware,
//     (active+1)·u' ≤ n·k (an empty system always admits).
//   - queue: the system is saturated. A saturated system completes one
//     query per u'/n model-time, so a FIFO of depth k drains in k·u'/n and
//     q's predicted response is wait(k) + service, with service =
//     (active+1)/x(active+1, n). Queue while that response fits the
//     submitter's patience bound (default: DefaultPatienceFactor × the
//     unloaded standalone response time).
//   - shed: the predicted response exceeds the patience bound even at the
//     current depth — refuse now rather than time out later. The
//     queue-vs-shed crossover depth is exact and exported, k* =
//     ⌊(patience − service)·n/u'⌋ (QueueCrossover), so servers can size
//     queues and tests can pin the flip point.
//
// When a bounded queue overflows, the entry to shed is the one whose best
// execution arm forwards the least progress per unit time — AdmitBenefit
// prices each entry's winning arm at the current load, ShedVictim takes the
// minimum (ties shed the youngest). A query riding a sharing group scores
// its shared rate, one that must run alone scores its contended unshared
// rate, so the sharer survives the cut: work elimination, not arrival
// order, decides who stays. See internal/server for the serving front door
// wired to these decisions, and cmd/cordobad for the daemon.
//
// # Scatter-gather sharding (beyond the paper)
//
// Partitioning a table across N engine shards poses the model one more
// question: is scattering a query across all shards worth the gather?
// The answer reuses the coefficients unchanged. Running a plan whole on
// one shard costs its full utilization demand u'; scattering runs each
// shard's partial over 1/k of the input but adds a gather stage that
// folds k partial results into one, and folding is priced exactly like
// pivot fan-out — one hand-off of cost s per extra producer. So
//
//	T(k) = u'/k + s·(k−1)
//
// (ShardT), scatter iff T(k) < T(1) (ShouldScatter), and the optimal
// shard count interior to the trade-off is k* ≈ √(u'/s) (BestShards):
// scan-heavy plans with large u' scatter wide, while plans whose cost
// already concentrates in a fan-out-priced root see the gather term
// dominate immediately and route whole to a single shard, round-robin.
// One subtlety: the s in the gather term is the ROOT pivot's hand-off
// cost — the merge folds final partial aggregates — not the anchor
// pivot's. Pricing the gather at a below-root anchor (e.g. a shared
// scan's per-page s) would veto scattering for exactly the scan-heavy
// plans that benefit most. engine.ShardPlan.Gather carries the
// root-level (u', s) pair on every compiled scatter plan for this
// reason. See engine.Cluster, engine.CompileScatter, and
// tpch.CompileShardPlans;
// replicated build subtrees fingerprint identically on every shard, so
// the cross-shard work-exchange bus (below) runs one hash build
// cluster-wide and every other shard attaches to the sealed table.
//
// On the storage side all sharing primitives register, attach, and retire
// through one unified work-exchange registry (storage.Exchange), keyed by
// subplan fingerprint: circular scans (every page to every consumer),
// morsel dispensers (every page to exactly one clone), subplan outlets
// (a shared operator pipeline above the scan), and buildstate entries
// (sealed hash-join tables, refcounted by their probers); an age-based
// sweep reclaims superseded orphans and wedged builds, with supersede and
// reclaim counters surfaced in workload stats. Pivot fan-out defaults to
// refcounted read-only pages (storage.Batch.MarkShared / Writable /
// Release): every consumer receives the same page, a deep copy happens
// only on a consumer's write path, and sinks and page-consuming operators
// release their reader claims as soon as they finish so the last adopter
// takes the original by move, with eager per-consumer cloning
// (engine.FanOutClone) retained as the physical realization of s for
// calibration and ablation. See policy.ModelGuided (PivotSelect),
// engine.PivotPolicy, and tpch.Q1FamilySpec / tpch.Q6FamilySpec.
//
// A note on where the engine actually pays s. The model charges the
// per-consumer hand-off cost s at pivots — the points where one producer's
// forward progress fans out to multiple consumers. The execution engine's
// fused operator chains (internal/engine) make the physical cost structure
// match that accounting: a linear scan→filter→project→partial-agg segment
// between pivots compiles into a single task whose operators are direct
// calls, so pages cross a queue, and thus incur a hand-off, only at pivot
// and join boundaries. A fused segment pays s once, at the pivot boundary
// where the model charges it — not once per operator hop, which is what the
// fully staged execution of earlier revisions paid and what Options.NoFusion
// still pays for comparison. Fusion never crosses a pivot candidate, so the
// set of places s is paid is exactly the set of places sharing is possible.
//
// # Decision records and the audit loop (beyond the paper)
//
// Every regime commitment above — alone, share at φ, attach, build-share,
// parallel, scatter — is stamped into a DecisionRecord at the moment the
// engine commits to it, carrying the decision kind, the pivot level, the
// group size it was priced at, and the model's own predictions
// (PredictedSpeedup, PredictedZ, u′). The telemetry layer
// (internal/obs, wired in internal/engine) later pairs each record with
// the measured outcome: a calibration factor learned from queries that ran
// alone converts u′ into an expected alone wall time, and dividing by the
// query's measured wall time yields the realized speedup. The
// measured/predicted ratio per decision kind feeds prediction-error
// histograms on the metrics endpoint — a standing audit of every formula
// in this package against the engine that executes its advice.
//
// Cardinality estimates are one currency with two consumers. The same
// closed-form row-count estimates in internal/tpch that feed this model's
// work coefficients (pricing share-vs-parallelize and admit-vs-shed
// decisions) also pre-size the physical operators — hash-join builds, hash
// aggregates, sorts, and collectors start at their estimated final size
// (relop.NewJoinBuildSized and friends). Both consumers tolerate error the
// same way: a wrong estimate shifts a decision or costs a reallocation,
// never correctness.
package core
