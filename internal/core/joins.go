package core

// Join plan constructors implementing the decompositions of Section 5.3.
// Each returns a Plan fragment rooted at the join; the caller attaches
// whatever operators sit above.

// NLJ builds a (block) nested-loop join node: fully pipelinable, a single
// operator with two input streams, one usually much more expensive than the
// other. wOuter and wInner are folded into the join's own work W because the
// model attributes input-stream work w_i to the consuming operator.
func NLJ(name string, wOuter, wInner, s float64, outer, inner *PlanNode) *PlanNode {
	return &PlanNode{
		Name:     name,
		W:        wOuter + wInner,
		S:        s,
		Kind:     Pipelined,
		Children: []*PlanNode{outer, inner},
	}
}

// MergeJoin builds the three-operation decomposition of a merge join: a
// stop-&-go sort on each unsorted input feeding a pipelined merge. Passing
// leftSorted/rightSorted true skips the corresponding sort, per Section
// 5.3.2: "if any input is already sorted then the corresponding sort
// operation is unnecessary and the merge join can be pipelined."
func MergeJoin(name string, wMerge, sMerge float64, left, right *PlanNode, wSortLeft, wSortRight float64, leftSorted, rightSorted bool) *PlanNode {
	l, r := left, right
	if !leftSorted {
		l = NewStopAndGo(name+"/sort-left", wSortLeft, leftOutputCost(left), left)
	}
	if !rightSorted {
		r = NewStopAndGo(name+"/sort-right", wSortRight, leftOutputCost(right), right)
	}
	return &PlanNode{
		Name:     name,
		W:        wMerge,
		S:        sMerge,
		Kind:     Pipelined,
		Children: []*PlanNode{l, r},
	}
}

// leftOutputCost estimates a sort's output cost from its input's output
// cost: replaying sorted runs costs about as much as the input stream's
// hand-off did.
func leftOutputCost(in *PlanNode) float64 {
	if in == nil {
		return 0
	}
	return in.S
}

// HashJoin builds the two-phase decomposition of the mainstream hash join:
// a stop-&-go build over the build input and a pipelined probe consuming the
// probe input (Section 5.3.3). The build phase decouples everything below it
// from the probe.
func HashJoin(name string, wBuild, wProbe, s float64, build, probe *PlanNode) *PlanNode {
	buildSide := NewStopAndGo(name+"/build", wBuild, 0, build)
	return &PlanNode{
		Name:     name + "/probe",
		W:        wProbe,
		S:        s,
		Kind:     Pipelined,
		Children: []*PlanNode{probe, buildSide},
	}
}

// SymmetricHashJoin builds a fully pipelinable hash join (symmetric /
// XJoin-style): a single pipelined operator, so "the simple model again
// suffices."
func SymmetricHashJoin(name string, wLeft, wRight, s float64, left, right *PlanNode) *PlanNode {
	return &PlanNode{
		Name:     name,
		W:        wLeft + wRight,
		S:        s,
		Kind:     Pipelined,
		Children: []*PlanNode{left, right},
	}
}
