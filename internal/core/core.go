package core
