package core

import "testing"

func retainQ() Query {
	return Query{Name: "retain", Below: []float64{2, 3}, PivotW: 5, PivotS: 0.1, Above: []float64{1}}
}

func TestRebuildCost(t *testing.T) {
	q := retainQ()
	if got := RebuildCost(q); got != 10 {
		t.Fatalf("RebuildCost = %v, want 10 (below 2+3 plus pivot 5)", got)
	}
	if got := RebuildCost(Query{}); got != 0 {
		t.Fatalf("RebuildCost(zero) = %v, want 0", got)
	}
}

func TestRetainBenefitClamps(t *testing.T) {
	q := retainQ()
	if got := RetainBenefit(q, 0.5); got != 5 {
		t.Fatalf("RetainBenefit(0.5) = %v, want 5", got)
	}
	if got := RetainBenefit(q, -1); got != 0 {
		t.Fatalf("RetainBenefit(-1) = %v, want 0", got)
	}
	if got := RetainBenefit(q, 7); got != RebuildCost(q) {
		t.Fatalf("RetainBenefit(7) = %v, want clamped to rebuild cost %v", got, RebuildCost(q))
	}
}

func TestRetainScoreDensity(t *testing.T) {
	q := retainQ()
	small := RetainScore(q, 1, 100)
	big := RetainScore(q, 1, 1000)
	if small <= big {
		t.Fatalf("density must fall with footprint: %v (100B) vs %v (1000B)", small, big)
	}
	if got := RetainScore(q, 1, 0); got != RetainBenefit(q, 1) {
		t.Fatalf("zero footprint scores the full benefit, got %v", got)
	}
}

func TestRetainZAndShouldRetain(t *testing.T) {
	q := retainQ()
	// Tiny footprint against a big budget: Z far above 1, retain.
	if z := RetainZ(q, 0.5, 1<<10, 1<<30); z <= 1 {
		t.Fatalf("RetainZ(small artifact) = %v, want > 1", z)
	}
	if !ShouldRetain(q, 0.5, 1<<10, 1<<30) {
		t.Fatal("ShouldRetain(small artifact) = false, want true")
	}
	// An artifact that monopolizes the budget must promise commensurate
	// savings: with benefit 10·p and footprint == budget, Z == benefit.
	if z := RetainZ(q, 1, 1<<20, 1<<20); z != RetainBenefit(q, 1) {
		t.Fatalf("RetainZ(full budget) = %v, want benefit %v", z, RetainBenefit(q, 1))
	}
	// Larger than the budget: cannot be held.
	if z := RetainZ(q, 1, 2<<20, 1<<20); z != 0 {
		t.Fatalf("RetainZ(oversized) = %v, want 0", z)
	}
	if ShouldRetain(q, 1, 2<<20, 1<<20) {
		t.Fatal("ShouldRetain(oversized) = true, want false")
	}
	// Zero re-arrival probability: no benefit, never retain.
	if ShouldRetain(q, 0, 1, 1<<30) {
		t.Fatal("ShouldRetain(rearrival 0) = true, want false")
	}
	// Unbounded budget: positive benefit retains, zero benefit does not.
	if z := RetainZ(q, 1, 1<<20, 0); z != RetainZInf {
		t.Fatalf("RetainZ(unbounded) = %v, want RetainZInf", z)
	}
	if ShouldRetain(Query{}, 1, 1<<20, 0) {
		t.Fatal("ShouldRetain(zero-work artifact, unbounded) = true, want false")
	}
}
