package core

import (
	"fmt"
	"math"
)

// SystemKind selects the queueing-theory regime used to model unshared
// execution of queries with mismatched rates (Section 5.1).
type SystemKind int

const (
	// Closed systems keep a fixed number of requests in flight: every
	// completed query is immediately replaced, so delays imposed by sharing
	// directly lower throughput (Little's Law: X = N/R). This is the regime
	// for data-warehouse analysts issuing query after query, and the paper's
	// default.
	Closed SystemKind = iota
	// Open systems have arrivals independent of response time; unshared
	// queries are modeled as if throttled to the slowest member's rate.
	Open
)

// String returns the regime name.
func (s SystemKind) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	default:
		return fmt.Sprintf("SystemKind(%d)", int(s))
	}
}

// Group is a set of queries considered for sharing at a common pivot. The
// members must share the same sub-plan below the pivot (same Below work and
// the same pivot operator W); their per-consumer pivot costs and above-pivot
// plans may differ.
type Group struct {
	// Members are the candidate sharers. A query appearing twice counts as
	// two instances.
	Members []Query
}

// groupTolerance bounds the relative disagreement allowed between members'
// descriptions of the common sub-plan (profiling noise).
const groupTolerance = 1e-6

// Validate checks the group is non-empty and members agree on the shared
// sub-plan (Below multiset sum and PivotW within tolerance).
func (g Group) Validate() error {
	if len(g.Members) == 0 {
		return fmt.Errorf("core: empty sharing group")
	}
	ref := g.Members[0]
	refBelow := sum(ref.Below)
	for _, q := range g.Members[1:] {
		if !closeEnough(sum(q.Below), refBelow) || !closeEnough(q.PivotW, ref.PivotW) {
			return fmt.Errorf("core: group members %q and %q disagree on the shared sub-plan", ref.Name, q.Name)
		}
	}
	for _, q := range g.Members {
		if err := q.Validate(); err != nil {
			return err
		}
	}
	return nil
}

func sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

func closeEnough(a, b float64) bool {
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return d <= groupTolerance*math.Max(scale, 1)
}

// M returns the number of queries in the group.
func (g Group) M() int { return len(g.Members) }

// SharedPMax returns the bottleneck of the merged plan: below-pivot operators
// once, the pivot with p_φ(M) = w_φ + Σ_m s_mφ, and every member's
// above-pivot operators.
func (g Group) SharedPMax() float64 {
	ref := g.Members[0]
	pm := g.PivotP()
	for _, p := range ref.Below {
		pm = math.Max(pm, p)
	}
	for _, q := range g.Members {
		for _, p := range q.Above {
			pm = math.Max(pm, p)
		}
	}
	return pm
}

// PivotP returns p_φ(M) = w_φ + Σ_m s_mφ for the group.
func (g Group) PivotP() float64 {
	p := g.Members[0].PivotW
	for _, q := range g.Members {
		p += q.PivotS
	}
	return p
}

// SharedUPrime returns u'_shared for the merged plan.
func (g Group) SharedUPrime() float64 {
	ref := g.Members[0]
	total := g.PivotP() + sum(ref.Below)
	for _, q := range g.Members {
		total += sum(q.Above)
	}
	return total
}

// SharedX returns the aggregate forward-progress rate of the group under
// shared execution. The slowest member throttles all (the merged plan has a
// single rate).
func (g Group) SharedX(env Env) float64 {
	return rate(float64(g.M()), g.SharedPMax(), g.SharedUPrime(), env.EffectiveShared())
}

// UnsharedX returns the aggregate rate of the group executing independently
// under the given system regime (Section 5.1).
//
// Open: all members modeled as throttled to the slowest member's rate.
// Closed: r_unshared = M/Σ_m p_max(m) (faster queries raise the harmonic
// mean) and each member is throttled only by its own bottleneck, giving
// utilization u = Σ_m u'_m/p_max(m).
func (g Group) UnsharedX(env Env, kind SystemKind) float64 {
	n := env.EffectiveUnshared()
	m := float64(g.M())
	switch kind {
	case Open:
		var pSlow, uTotal float64
		for _, q := range g.Members {
			pSlow = math.Max(pSlow, q.PMax())
			uTotal += q.UPrime()
		}
		return rate(m, pSlow, uTotal, n)
	case Closed:
		// r_unshared is M times the harmonic mean of the members' peak
		// rates — faster queries raise the group rate — and each member is
		// throttled only by its own bottleneck, so utilization is
		// u = Σ_m u'_m / p_max(m). In the homogeneous limit this reduces to
		// the Section 4.2 equations exactly.
		var pSum, u float64
		for _, q := range g.Members {
			pm := q.PMax()
			pSum += pm
			if pm > 0 {
				u += q.UPrime() / pm
			}
		}
		if pSum == 0 {
			return math.Inf(1)
		}
		r := m * m / pSum
		if u == 0 {
			return r
		}
		return r * math.Min(1, n/u)
	default:
		panic(fmt.Sprintf("core: unknown system kind %d", int(kind)))
	}
}

// Z returns the sharing benefit for the group under the given regime.
func (g Group) Z(env Env, kind SystemKind) float64 {
	xu := g.UnsharedX(env, kind)
	xs := g.SharedX(env)
	switch {
	case xu == 0 && xs == 0:
		return 1
	case xu == 0:
		return math.Inf(1)
	default:
		return xs / xu
	}
}

// ShouldShare reports whether the model recommends sharing the group.
func (g Group) ShouldShare(env Env, kind SystemKind) bool {
	return g.Z(env, kind) > 1
}

// Homogeneous builds a group of m copies of q. For homogeneous groups
// Group.SharedX(env) equals SharedX(q, m, env) and Group.UnsharedX under
// either regime equals UnsharedX(q, m, env).
func Homogeneous(q Query, m int) Group {
	members := make([]Query, m)
	for i := range members {
		members[i] = q
	}
	return Group{Members: members}
}

// MarginalBenefit reports whether adding candidate to the group keeps the
// group's shared execution preferable to running the enlarged group
// unshared. Cordoba's admission test (Section 8.1) uses this to stop adding
// sharers once the pivot starts to become a bottleneck.
func (g Group) MarginalBenefit(candidate Query, env Env, kind SystemKind) bool {
	enlarged := Group{Members: append(append([]Query{}, g.Members...), candidate)}
	if err := enlarged.Validate(); err != nil {
		return false
	}
	return enlarged.ShouldShare(env, kind)
}
