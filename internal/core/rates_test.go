package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEnvEffective(t *testing.T) {
	e := Env{Processors: 10, KUnshared: 0.8, KShared: 0.5}
	almostEq(t, e.EffectiveUnshared(), 8, 1e-12, "n·k unshared")
	almostEq(t, e.EffectiveShared(), 5, 1e-12, "n·k shared")
	// k outside (0,1] means "no contention".
	e2 := Env{Processors: 10, KUnshared: 0, KShared: 1.7}
	almostEq(t, e2.EffectiveUnshared(), 10, 1e-12, "k=0 treated as 1")
	almostEq(t, e2.EffectiveShared(), 10, 1e-12, "k>1 treated as 1")
}

func TestEnvValidate(t *testing.T) {
	if err := NewEnv(4).Validate(); err != nil {
		t.Errorf("valid env rejected: %v", err)
	}
	for _, n := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if err := NewEnv(n).Validate(); err == nil {
			t.Errorf("Processors=%g accepted", n)
		}
	}
}

func TestZIsOneForSingleQuery(t *testing.T) {
	// Merging a group of one changes nothing: p_φ(1) = w + s, identical to
	// the unshared plan. This must hold for every query and environment.
	for _, q := range []Query{Q6Paper(), Fig3Query(), Fig4RightQuery(3)} {
		for _, n := range []float64{1, 2, 8, 32} {
			if z := Z(q, 1, NewEnv(n)); math.Abs(z-1) > 1e-12 {
				t.Errorf("%s n=%g: Z(1) = %g, want 1", q.Name, n, z)
			}
		}
	}
}

func TestZeroAndNegativeM(t *testing.T) {
	q := Fig3Query()
	env := NewEnv(4)
	if got := UnsharedX(q, 0, env); got != 0 {
		t.Errorf("UnsharedX(m=0) = %g, want 0", got)
	}
	if got := SharedX(q, -3, env); got != 0 {
		t.Errorf("SharedX(m=-3) = %g, want 0", got)
	}
	if got := Z(q, 0, env); got != 1 {
		t.Errorf("Z(m=0) = %g, want 1 (both rates zero)", got)
	}
}

// Section 6 headline: "systems with very few processors available benefit the
// most from work sharing, while those with an abundance of processing power
// must seek parallelism as a first priority."
func TestFig4LeftRegimes(t *testing.T) {
	q := Fig3Query()
	// 4 CPU: sharing always worthwhile once there is enough load.
	envLow := NewEnv(4)
	for m := 4; m <= 40; m++ {
		if !ShouldShare(q, m, envLow) {
			t.Errorf("4 CPU m=%d: Z=%g, paper predicts always-share regime", m, Z(q, m, envLow))
		}
	}
	// 32 CPU: sharing never worthwhile within the swept range.
	envHigh := NewEnv(32)
	for m := 2; m <= 40; m++ {
		if Z(q, m, envHigh) > 1+1e-9 {
			t.Errorf("32 CPU m=%d: Z=%g > 1, paper predicts never-share regime", m, Z(q, m, envHigh))
		}
	}
	// 16 CPU: sharing is sometimes worthwhile — harmful at moderate load,
	// beneficial at high load (the three-phase behaviour).
	env16 := NewEnv(16)
	harmful, helpful := false, false
	for m := 2; m <= 40; m++ {
		z := Z(q, m, env16)
		if z < 1-1e-9 {
			harmful = true
		}
		if z > 1+1e-9 && harmful {
			helpful = true
		}
	}
	if !harmful || !helpful {
		t.Errorf("16 CPU: expected harmful-then-helpful phases, got harmful=%v helpful=%v", harmful, helpful)
	}
}

// With no load the machine is not saturated and sharing cannot improve
// performance: Z ≤ 1 whenever m·u ≤ n (first phase of Section 6.1).
func TestNoBenefitBeforeSaturation(t *testing.T) {
	q := Fig3Query()
	for _, n := range []float64{8, 16, 32} {
		env := NewEnv(n)
		for m := 1; float64(m)*q.U() <= n; m++ {
			if z := Z(q, m, env); z > 1+1e-9 {
				t.Errorf("n=%g m=%d (unsaturated): Z=%g > 1", n, m, z)
			}
		}
	}
}

// Figure 4 center: with s = 0 sharing imposes no serialization and is never
// worse than independent execution; large s saps all benefit on 32 cores.
func TestFig4CenterExtremes(t *testing.T) {
	env := NewEnv(32)
	zeroS := Fig4CenterQuery(0)
	for m := 1; m <= 40; m++ {
		if z := Z(zeroS, m, env); z < 1-1e-9 {
			t.Errorf("s=0 m=%d: Z=%g < 1; costless sharing should never hurt", m, z)
		}
	}
	// By m=30 the s=0 curve saturates the machine and shows a clear win.
	if z := Z(zeroS, 30, env); z <= 1.2 {
		t.Errorf("s=0 m=30: Z=%g, want > 1.2 (machine saturated by shared work)", z)
	}
	bigS := Fig4CenterQuery(4)
	winners := 0
	for m := 2; m <= 40; m++ {
		if Z(bigS, m, env) > 1 {
			winners++
		}
	}
	if winners > 0 {
		t.Errorf("s=4: sharing won for %d group sizes on 32 CPU; want none", winners)
	}
}

// Figure 4 right: eliminating a larger fraction of work increases the
// benefit, but the last stage gives diminishing returns because sharing's
// utilization cap binds (Section 6.3).
func TestFig4RightOrderingAndDiminishingReturn(t *testing.T) {
	env := NewEnv(8)
	const m = 40
	zs := make([]float64, 6)
	for stages := 0; stages <= 5; stages++ {
		zs[stages] = Z(Fig4RightQuery(stages), m, env)
	}
	for s := 1; s <= 5; s++ {
		if zs[s] < zs[s-1]-1e-9 {
			t.Errorf("stages %d→%d: Z fell from %g to %g; moving work below the pivot should help", s-1, s, zs[s-1], zs[s])
		}
	}
	gain45 := zs[5] - zs[4]
	gain34 := zs[4] - zs[3]
	if gain45 > gain34 {
		t.Errorf("last stage gain %g exceeds previous gain %g; paper reports diminishing return", gain45, gain34)
	}
	// "its tendency to reduce parallelism bounds the maximum achievable
	// speedup to roughly one eighth of the 50x we might expect" — so even at
	// 98% eliminated the speedup stays in single digits.
	if zs[5] > 10 {
		t.Errorf("5/5 Z=%g, want single-digit despite 98%% work eliminated", zs[5])
	}
}

func TestFig4RightLabels(t *testing.T) {
	// Asymptotic eliminated fractions must match the figure legend.
	want := map[int]float64{0: 0.28, 1: 0.42, 2: 0.56, 3: 0.70, 4: 0.84, 5: 0.98}
	for stages, frac := range want {
		got := AsymptoticEliminated(Fig4RightQuery(stages))
		if math.Abs(got-frac) > 0.005 {
			t.Errorf("stages=%d: eliminated fraction %g, want ≈ %g", stages, got, frac)
		}
	}
}

func TestFig3QueryShape(t *testing.T) {
	q := Fig3Query()
	almostEq(t, q.PMax(), 10, 1e-12, "p_max")
	almostEq(t, q.UPrime(), 27, 1e-12, "u'")
	almostEq(t, q.U(), 2.7, 1e-12, "u (paper: each query requires 2.7 processors)")
	// Sharing eliminates nearly 60% of the work in the asymptote.
	frac := AsymptoticEliminated(q)
	if frac < 0.55 || frac > 0.65 {
		t.Errorf("eliminated fraction = %g, want ≈ 0.59", frac)
	}
	// Shared utilization is bounded (~11) regardless of group size.
	for _, m := range []int{10, 100, 1000} {
		if u := SharedUtilization(q, m); u > 11.5 {
			t.Errorf("m=%d: shared utilization %g, want ≤ ~11", m, u)
		}
	}
}

func TestBreakEvenClients(t *testing.T) {
	q := Fig3Query()
	// On 1 CPU sharing is always good: no break-even within range.
	if got := BreakEvenClients(q, NewEnv(1), 48); got != 0 {
		t.Errorf("1 CPU: break-even at m=%d, want none", got)
	}
	// On 32 CPUs sharing immediately loses.
	if got := BreakEvenClients(q, NewEnv(32), 48); got != 2 {
		t.Errorf("32 CPU: break-even at m=%d, want 2", got)
	}
}

func TestContentionReducesRates(t *testing.T) {
	q := Fig3Query()
	base := NewEnv(8)
	contended := Env{Processors: 8, KUnshared: 0.5, KShared: 0.5}
	for m := 1; m <= 20; m++ {
		if SharedX(q, m, contended) > SharedX(q, m, base)+1e-12 {
			t.Errorf("m=%d: contention increased shared rate", m)
		}
		if UnsharedX(q, m, contended) > UnsharedX(q, m, base)+1e-12 {
			t.Errorf("m=%d: contention increased unshared rate", m)
		}
	}
}

// Differential contention: if sharing improves locality (KShared > KUnshared)
// the model shifts toward sharing.
func TestDifferentialContentionShiftsDecision(t *testing.T) {
	q := Fig3Query()
	even := Env{Processors: 16, KUnshared: 1, KShared: 1}
	favorShared := Env{Processors: 16, KUnshared: 0.5, KShared: 1}
	for m := 2; m <= 40; m++ {
		if Z(q, m, favorShared) < Z(q, m, even)-1e-12 {
			t.Errorf("m=%d: sharing-friendly contention lowered Z", m)
		}
	}
}

// Property: rates are non-negative and finite for random valid queries.
func TestQuickRatesWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomQuery(rng)
		m := 1 + rng.Intn(64)
		env := NewEnv(1 + float64(rng.Intn(64)))
		xu := UnsharedX(q, m, env)
		xs := SharedX(q, m, env)
		return xu >= 0 && xs >= 0 && !math.IsNaN(xu) && !math.IsNaN(xs) &&
			!math.IsInf(xu, 0) && !math.IsInf(xs, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: more processors never reduce either rate (monotonicity in n).
func TestQuickMonotoneInProcessors(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomQuery(rng)
		m := 1 + rng.Intn(48)
		n1 := 1 + float64(rng.Intn(31))
		n2 := n1 + 1 + float64(rng.Intn(31))
		return SharedX(q, m, NewEnv(n2)) >= SharedX(q, m, NewEnv(n1))-1e-12 &&
			UnsharedX(q, m, NewEnv(n2)) >= UnsharedX(q, m, NewEnv(n1))-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: aggregate rates never decrease when clients are added (a closed
// system with more members has at least as much aggregate forward progress).
func TestQuickMonotoneInClients(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomQuery(rng)
		env := NewEnv(1 + float64(rng.Intn(32)))
		prevU, prevS := 0.0, 0.0
		for m := 1; m <= 32; m++ {
			xu := UnsharedX(q, m, env)
			xs := SharedX(q, m, env)
			if xu < prevU-1e-12 || xs < prevS-1e-12 {
				return false
			}
			prevU, prevS = xu, xs
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: with unlimited processors and positive s, sharing can never beat
// unshared execution (serialization with nothing to gain): Z ≤ 1.
func TestQuickUnlimitedProcessorsSharingNeverWins(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomQuery(rng)
		if q.PivotS == 0 {
			q.PivotS = 0.1
		}
		m := 2 + rng.Intn(47)
		env := NewEnv(1e9)
		return Z(q, m, env) <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: sharing always reduces (or preserves) total work in the system:
// u'_shared(m) ≤ m·u'.
func TestQuickSharingReducesTotalWork(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomQuery(rng)
		m := 1 + rng.Intn(64)
		return q.SharedUPrime(m) <= float64(m)*q.UPrime()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: on one processor sharing is always at least as good as unshared
// execution once the machine is saturated — any saved work helps when
// everything is time-shared anyway (Section 3.3's 1-processor argument).
func TestQuickUniprocessorSaturatedSharingNeverLoses(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomQuery(rng)
		m := 2 + rng.Intn(47)
		env := NewEnv(1)
		if float64(m)*q.U() < 1 {
			return true // machine not saturated; claim does not apply
		}
		return Z(q, m, env) >= 1-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// randomQuery builds a structurally valid random query for property tests.
func randomQuery(rng *rand.Rand) Query {
	q := Query{
		Name:   "random",
		PivotW: rng.Float64() * 20,
		PivotS: rng.Float64() * 5,
	}
	for i, n := 0, rng.Intn(4); i < n; i++ {
		q.Below = append(q.Below, rng.Float64()*20)
	}
	for i, n := 0, rng.Intn(4); i < n; i++ {
		q.Above = append(q.Above, rng.Float64()*20)
	}
	if q.UPrime() == 0 {
		q.PivotW = 1
	}
	return q
}
