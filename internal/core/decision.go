package core

// DecisionRecord captures one submit-time decision in the model's own
// currency, so the telemetry layer can later pair the prediction with the
// measured outcome (the audit loop). The engine stamps one onto every
// handle at the moment it commits a query to an execution regime.
//
// Kind names the regime: "alone", "anchor" (fresh joinable group — runs
// alone unless a later arrival attaches), "share" (pivot-level attach),
// "attach" (late attach to an in-flight fan-out), "build-share",
// "bus-share", "cache-build", "cache-result", "parallel", "scatter".
//
// PredictedSpeedup is the model's expected benefit of the chosen regime
// versus running the query alone at the same load — a ratio ≥ 1 in the
// model's intent, computed from the same SharedX/UnsharedX/BuildShareZ/
// ParallelSpeedup/ShardSpeedup terms the decision itself used. UPrime is
// the query's total unshared demand u′, the alone-estimate currency: the
// audit converts it to an expected alone wall time via a calibration
// factor learned from queries that actually ran alone, and divides by the
// measured wall time to get the realized speedup.
type DecisionRecord struct {
	// Kind is the execution regime committed to at submit.
	Kind string
	// Pivot is the plan level of the chosen pivot (-1 when none applies).
	Pivot int
	// GroupSize is the sharing group's size the decision was priced at
	// (including this query), or the parallel degree for "parallel", or the
	// shard count for "scatter".
	GroupSize int
	// PredictedSpeedup is the model's expected wall-time benefit vs running
	// alone (1 = none).
	PredictedSpeedup float64
	// PredictedZ is the sharing-benefit margin Z (or build-share Z) the
	// pivot choice reported, when one applies.
	PredictedZ float64
	// UPrime is the query's total unshared work demand u′ at decision time.
	UPrime float64
}
