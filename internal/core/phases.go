package core

import (
	"fmt"
	"math"
)

// SplitPhases decomposes a plan containing stop-&-go operators into a
// sequence of fully pipelined phases (Section 5.2). The
// production/consumption rates below a stop-&-go operator are decoupled from
// those above it, so each phase is modeled as an independent query:
//
//   - Phase i contains every minimal stop-&-go subtree of the remaining plan
//     (minimal: no stop-&-go descendants). During this phase the stop-&-go
//     node consumes its input but produces nothing, so it contributes only
//     its own work W.
//   - In the following phase each completed stop-&-go node is replaced by a
//     leaf that replays the materialized result: zero consume work, original
//     per-consumer output cost S. ("A final sub-query with an extremely fast
//     scan at its leaf node.")
//
// Phases with multiple concurrent roots (e.g. the two sorts of a merge join)
// are wrapped under a zero-cost synthetic root so each phase remains a Plan.
// A plan without stop-&-go nodes yields a single phase: the plan itself.
func SplitPhases(pl Plan) ([]Plan, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	var phases []Plan
	current := clonePlan(pl.Root)
	for i := 0; ; i++ {
		frontier := minimalStopNodes(current)
		if len(frontier) == 0 {
			break
		}
		// The frontier subtrees execute concurrently as this phase.
		roots := make([]*PlanNode, len(frontier))
		for j, nd := range frontier {
			sub := clonePlan(nd)
			sub.S = 0 // no output during the consuming phase
			sub.Kind = Pipelined
			roots[j] = sub
		}
		phases = append(phases, wrapPhase(fmt.Sprintf("%s/phase%d", pl.Name, i+1), roots))
		// Replace each completed stop-&-go subtree with a replay leaf.
		current = replaceStopNodes(current, frontier)
	}
	phases = append(phases, Plan{Name: fmt.Sprintf("%s/phase%d", pl.Name, len(phases)+1), Root: current})
	if len(phases) == 1 {
		phases[0].Name = pl.Name
	}
	return phases, nil
}

// clonePlan deep-copies a subtree so phase splitting never mutates the input.
func clonePlan(nd *PlanNode) *PlanNode {
	if nd == nil {
		return nil
	}
	cp := &PlanNode{Name: nd.Name, W: nd.W, S: nd.S, Kind: nd.Kind}
	for _, c := range nd.Children {
		cp.Children = append(cp.Children, clonePlan(c))
	}
	return cp
}

// minimalStopNodes returns stop-&-go nodes that have no stop-&-go
// descendants, in pre-order.
func minimalStopNodes(root *PlanNode) []*PlanNode {
	var out []*PlanNode
	var hasStopBelow func(nd *PlanNode) bool
	hasStopBelow = func(nd *PlanNode) bool {
		found := false
		for _, c := range nd.Children {
			if c.Kind == StopAndGo || hasStopBelow(c) {
				found = true
			}
		}
		return found
	}
	var walk func(nd *PlanNode)
	walk = func(nd *PlanNode) {
		if nd == nil {
			return
		}
		if nd.Kind == StopAndGo && !hasStopBelow(nd) {
			out = append(out, nd)
			return
		}
		for _, c := range nd.Children {
			walk(c)
		}
	}
	walk(root)
	return out
}

// replaceStopNodes substitutes each frontier node with its replay leaf.
func replaceStopNodes(root *PlanNode, frontier []*PlanNode) *PlanNode {
	inFrontier := make(map[*PlanNode]bool, len(frontier))
	for _, nd := range frontier {
		inFrontier[nd] = true
	}
	var rebuild func(nd *PlanNode) *PlanNode
	rebuild = func(nd *PlanNode) *PlanNode {
		if inFrontier[nd] {
			return &PlanNode{Name: nd.Name + " (materialized)", W: 0, S: nd.S, Kind: Pipelined}
		}
		cp := &PlanNode{Name: nd.Name, W: nd.W, S: nd.S, Kind: nd.Kind}
		for _, c := range nd.Children {
			cp.Children = append(cp.Children, rebuild(c))
		}
		return cp
	}
	return rebuild(root)
}

// wrapPhase joins concurrent phase roots under one plan.
func wrapPhase(name string, roots []*PlanNode) Plan {
	if len(roots) == 1 {
		return Plan{Name: name, Root: roots[0]}
	}
	return Plan{Name: name, Root: &PlanNode{Name: "phase", W: 0, S: 0, Kind: Pipelined, Children: roots}}
}

// PhasedRate returns the effective end-to-end rate of a query whose phases
// execute sequentially, each at rate x_i: processing one unit of forward
// progress takes Σ 1/x_i, so the effective rate is the harmonic combination
// 1/Σ(1/x_i). Infinite phase rates (zero-work phases) contribute nothing.
func PhasedRate(phaseRates []float64) float64 {
	var total float64
	for _, x := range phaseRates {
		if x <= 0 {
			return 0
		}
		if math.IsInf(x, 1) {
			continue
		}
		total += 1 / x
	}
	if total == 0 {
		return math.Inf(1)
	}
	return 1 / total
}

// PhasedZ evaluates the sharing benefit of a multi-phase plan when m copies
// share at the named pivot. Phases not containing the pivot execute unshared
// in both scenarios; the phase containing the pivot is compared shared vs
// unshared. The overall benefit is the ratio of effective phased rates.
func PhasedZ(pl Plan, pivotName string, m int, env Env) (float64, error) {
	phases, err := SplitPhases(pl)
	if err != nil {
		return 0, err
	}
	var shared, unshared []float64
	foundPivot := false
	for _, ph := range phases {
		pivot := ph.Find(pivotName)
		if pivot == nil {
			// Pivot not in this phase: fall back to the root as a formal
			// pivot; shared == unshared because we never merge here.
			q, err := Compile(ph, ph.Root)
			if err != nil {
				return 0, err
			}
			xu := UnsharedX(q, m, env)
			unshared = append(unshared, xu)
			shared = append(shared, xu)
			continue
		}
		foundPivot = true
		q, err := Compile(ph, pivot)
		if err != nil {
			return 0, err
		}
		unshared = append(unshared, UnsharedX(q, m, env))
		shared = append(shared, SharedX(q, m, env))
	}
	if !foundPivot {
		return 0, fmt.Errorf("%w: %q in any phase of %q", ErrPivotNotFound, pivotName, pl.Name)
	}
	xu := PhasedRate(unshared)
	xs := PhasedRate(shared)
	switch {
	case xu == 0 && xs == 0:
		return 1, nil
	case xu == 0:
		return math.Inf(1), nil
	default:
		return xs / xu, nil
	}
}
