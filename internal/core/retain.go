package core

// This file extends the analytical model to keep-alive retention: the
// retain-vs-evict decision for a shared artifact (a sealed hash-join build
// state, a materialized pivot result run) that has lost its last consumer.
// The sharing economics of the paper — one execution amortized over k
// consumers — stop at the lifetime of the group: the artifact retires with
// its last release, so bursty arrivals separated by a short idle gap pay the
// full rebuild of work they amortized moments earlier. Retention converts
// that rebuild into a late attach, extending sharing from in-flight to
// across-burst; the memory-pressure and recycling trade-offs mirror those of
// dynamic hybrid hash joins (Jahangiri et al., arXiv:2112.02480), where a
// spilled or retired build side is a candidate for reuse rather than
// reconstruction.
//
// The model needs no new execution equation — a retained artifact serves a
// re-arrival exactly like a late attach with zero pivot work — only an
// accounting identity for the cache: how much predicted work does keeping
// the artifact save, and is that worth the memory it pins?
//
//	RebuildCost   the work a cache hit avoids: everything at and below the
//	              artifact's pivot (Σ Below + PivotW), run once per rebuild
//	RetainBenefit RebuildCost × P(re-arrival within the keep-alive window)
//	RetainZ       RetainBenefit relative to the artifact's claim on the
//	              cache budget (footprint/budget) — the retain-vs-evict
//	              analogue of the sharing benefit Z; retain iff Z > 1
//
// Eviction under pressure orders candidates by benefit density
// (RetainBenefit per byte): the cache drops the artifact whose expected
// savings per pinned byte is lowest, breaking ties by least recent use —
// LRU-by-benefit. See internal/artifact for the cache that applies these.

// RebuildCost returns the work a retained artifact saves per re-arrival: the
// operators strictly below the artifact's pivot plus the pivot's own work,
// all of which a cold arrival would re-execute to reconstruct the artifact
// (for a build-state pivot this is the build subtree plus the hashing pass
// w_b; for a whole-plan result run it is everything below the root plus the
// root's work).
func RebuildCost(q Query) float64 {
	c := q.PivotW
	for _, p := range q.Below {
		c += p
	}
	return c
}

// RetainBenefit returns the expected work retaining an artifact saves:
// the predicted rebuild cost weighted by the probability that a
// fingerprint-matching query re-arrives within the keep-alive window.
// Probabilities are clamped to [0, 1].
func RetainBenefit(q Query, rearrival float64) float64 {
	if rearrival < 0 {
		rearrival = 0
	}
	if rearrival > 1 {
		rearrival = 1
	}
	return RebuildCost(q) * rearrival
}

// RetainScore returns the benefit density of a retained artifact: expected
// work saved per byte of footprint. The cache evicts lowest density first
// under memory pressure. A non-positive footprint scores the full benefit
// (an artifact that costs nothing to keep is never the right eviction).
func RetainScore(q Query, rearrival float64, footprintBytes int64) float64 {
	b := RetainBenefit(q, rearrival)
	if footprintBytes <= 0 {
		return b
	}
	return b / float64(footprintBytes)
}

// RetainZ returns the retain-vs-evict benefit ratio: the expected rebuild
// work saved relative to the artifact's claim on the cache budget (its
// footprint as a fraction of budgetBytes). Retaining is modeled worthwhile
// iff the ratio exceeds 1 — a tiny artifact with any benefit is kept, an
// artifact monopolizing the budget must promise commensurate savings.
// budgetBytes <= 0 means an unbounded budget: any positive benefit retains
// (the ratio degenerates to RetainZInf), no benefit does not.
func RetainZ(q Query, rearrival float64, footprintBytes, budgetBytes int64) float64 {
	b := RetainBenefit(q, rearrival)
	if budgetBytes <= 0 {
		if b > 0 {
			return RetainZInf
		}
		return 0
	}
	if footprintBytes > budgetBytes {
		return 0 // cannot be held at all
	}
	frac := float64(footprintBytes) / float64(budgetBytes)
	if frac <= 0 {
		if b > 0 {
			return RetainZInf
		}
		return 0
	}
	return b / frac
}

// RetainZInf is the Z value reported when retention is free (zero footprint
// or unbounded budget) and the benefit is positive.
const RetainZInf = 1e308

// ShouldRetain reports the model's admission recommendation for the
// keep-alive cache: hold the artifact iff its retain-vs-evict ratio exceeds
// 1 (the cache may still evict it later under pressure, in benefit-density
// order).
func ShouldRetain(q Query, rearrival float64, footprintBytes, budgetBytes int64) bool {
	return RetainZ(q, rearrival, footprintBytes, budgetBytes) > 1
}
