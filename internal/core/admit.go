package core

import "math"

// This file extends the model from execution-regime selection to admission
// control: what a long-running server should do with a query that arrives
// while other queries are active — admit it into a sharing group, admit it
// alone, park it in a queue, or shed it. The point of deriving the decision
// here, rather than hard-coding limits in the server, is that overload
// behavior then falls out of the same currency as sharing: the coefficients
// ChoosePivoted already prices (w, s, u', p_max) are all the decision needs.
//
// The four arms, priced per arriving query q on n processors with `active`
// queries running and `queued` waiting:
//
//   - admit-shared: the query joins a sharing group (or retained artifact).
//     Its marginal demand is only its above-pivot work plus the pivot's
//     per-consumer s — the group's below-pivot work is already being paid —
//     so a beneficial share (the ChoosePivoted share/attach arm winning) is
//     admissible even past saturation. Sharing IS the server's first line of
//     overload defense.
//   - admit-alone: the query runs unshared (serially or as clones). This
//     adds its full u' to the system; it is admissible only while the
//     unshared demand of the active set plus the newcomer fits the hardware:
//     (active+1)·u' ≤ n.
//   - queue: the system is saturated, but the wait for a slot is bounded.
//     Saturated, the system completes one query per u'/n model-time, so a
//     queue of depth k drains in k·u'/n; the newcomer's predicted response
//     is that wait plus its own saturated service time. Queue while
//     wait + service ≤ patience.
//   - shed: the predicted response exceeds the submitter's patience. Better
//     to refuse now than to time out later — shedding is the model saying
//     the query's slot would be wasted work.
//
// The queue-vs-shed crossover depth is exact and exported (QueueCrossover)
// so the server can size queues — and tests can pin the flip point.

// AdmitDecision is the admission controller's verdict on an arriving query.
type AdmitDecision int

const (
	// AdmitShared admits the query into a sharing group (or onto a retained
	// artifact): marginal demand ≈ its private work only.
	AdmitShared AdmitDecision = iota
	// AdmitAlone admits the query to run unshared; the system has headroom
	// for its full demand.
	AdmitAlone
	// AdmitQueue parks the query: the system is saturated but the predicted
	// wait still fits the submitter's patience.
	AdmitQueue
	// AdmitShed refuses the query: even after queueing it would miss its
	// patience bound, so executing it would only slow everyone else.
	AdmitShed
)

// String returns the decision label used in wire responses and reports.
func (d AdmitDecision) String() string {
	switch d {
	case AdmitShared:
		return "admit-shared"
	case AdmitAlone:
		return "admit-alone"
	case AdmitQueue:
		return "queue"
	case AdmitShed:
		return "shed"
	default:
		return "AdmitDecision(?)"
	}
}

// DefaultPatienceFactor scales a query's unloaded standalone response time
// into the default patience bound: a submitter is assumed to tolerate a
// response this many times slower than an idle system before queueing stops
// being worth it.
const DefaultPatienceFactor = 8.0

// AdmitLoad is the system state an admission decision is made against.
type AdmitLoad struct {
	// Active is the number of admitted queries currently executing.
	Active int
	// Queued is the number of queries already waiting ahead of this one.
	Queued int
	// Patience is the model-time response bound the submitter will tolerate
	// (wait plus service). Zero or negative selects the default:
	// DefaultPatienceFactor × the query's unloaded standalone response time.
	Patience float64
}

// Admission is a priced admission decision.
type Admission struct {
	// Decision is the verdict.
	Decision AdmitDecision
	// Exec is the execution regime ChoosePivoted chose when the query is
	// admitted (RunAlone for queued/shed arrivals — the regime they would
	// get once a slot opens is re-decided then).
	Exec Decision
	// Pivot is the candidate index of the chosen pivot level (meaningful for
	// AdmitShared).
	Pivot int
	// Degree is the clone degree of the chosen regime (1 unless
	// parallelizing).
	Degree int
	// Rate is the predicted per-query rate of forward progress of the chosen
	// arm — the benefit currency shed ordering compares (see ShedVictim).
	Rate float64
	// Wait is the predicted queue wait in model time (nonzero only for
	// AdmitQueue).
	Wait float64
	// Crossover is the queue depth at which the decision flips from queue to
	// shed: depths ≤ Crossover queue, deeper ones shed. Negative means even
	// an empty queue sheds.
	Crossover int
}

// patienceFor resolves the effective patience bound: the load's explicit
// bound, or the default factor times the query's unloaded standalone
// response time.
func patienceFor(q Query, load AdmitLoad, env Env) float64 {
	if load.Patience > 0 {
		return load.Patience
	}
	x1 := UnsharedX(q, 1, env)
	if x1 <= 0 || math.IsInf(x1, 0) {
		return 0
	}
	return DefaultPatienceFactor / x1
}

// saturatedResponse returns the newcomer's predicted service time once
// running among active+1 unshared queries.
func saturatedResponse(q Query, active int, env Env) float64 {
	m := active + 1
	x := UnsharedX(q, m, env)
	if x <= 0 {
		return math.Inf(1)
	}
	return float64(m) / x
}

// Admit prices the four admission arms for a query arriving at the given
// load and returns the verdict. cands are the query's pivot-candidate
// compilations exactly as ChoosePivoted takes them (highest level first);
// m is the prospective sharing group size and remaining the sharing
// opportunity (1 = submission-time group, (0,1) = in-flight scan, negative =
// no compatible group — both sharing arms skipped); maxDegree caps the
// parallelize arm.
//
// The effective contention the sharing and parallel arms are priced at is
// max(m, active+1): under live traffic everyone active faces the same
// choice, so judging a group at m=2 while ten queries run would starve the
// group the model wants at load ten (the same correction
// policy.ModelGuided.ShouldJoinUnderLoad applies).
func Admit(cands []Query, m, maxDegree int, remaining float64, load AdmitLoad, env Env) Admission {
	if len(cands) == 0 {
		return Admission{Decision: AdmitShed, Exec: RunAlone, Degree: 1, Crossover: -1}
	}
	q := cands[0] // unshared quantities are pivot-invariant
	if load.Active < 0 {
		load.Active = 0
	}
	if load.Queued < 0 {
		load.Queued = 0
	}
	eff := load.Active + 1
	if m > eff {
		eff = m
	}
	dec, pivot, degree, x := ChoosePivoted(cands, eff, maxDegree, remaining, env)
	perQuery := x / float64(eff)

	// A winning share or attach arm admits outright: the group is already
	// paying its below-pivot work, so the newcomer's marginal demand is only
	// its private chain plus one more s at the pivot.
	if dec == Share || dec == AttachInflight {
		return Admission{Decision: AdmitShared, Exec: dec, Pivot: pivot, Degree: degree, Rate: perQuery, Crossover: QueueCrossover(q, load, env)}
	}

	// Unshared arms carry the query's full demand. An empty system always
	// admits — there is nothing to contend with, whatever u' says about
	// saturating the hardware.
	demand := float64(load.Active+1) * q.UPrime()
	if load.Active == 0 || demand <= env.EffectiveUnshared() {
		return Admission{Decision: AdmitAlone, Exec: dec, Pivot: pivot, Degree: degree, Rate: perQuery, Crossover: QueueCrossover(q, load, env)}
	}

	// Saturated: queue while the predicted response fits the patience bound.
	patience := patienceFor(q, load, env)
	wait := queueWait(q, load.Queued, env)
	service := saturatedResponse(q, load.Active, env)
	crossover := QueueCrossover(q, load, env)
	if patience > 0 && wait+service <= patience {
		return Admission{Decision: AdmitQueue, Exec: RunAlone, Degree: 1, Rate: perQuery, Wait: wait, Crossover: crossover}
	}
	return Admission{Decision: AdmitShed, Exec: RunAlone, Degree: 1, Rate: perQuery, Wait: wait, Crossover: crossover}
}

// queueWait returns the predicted model-time wait behind `queued` earlier
// arrivals: a saturated system completes one query per u'/n, so the queue
// drains at rate n/u'.
func queueWait(q Query, queued int, env Env) float64 {
	n := env.EffectiveUnshared()
	if n <= 0 {
		return math.Inf(1)
	}
	return float64(queued) * q.UPrime() / n
}

// QueueCrossover returns the largest queue depth at which the model still
// queues q rather than shedding it: depths ≤ the crossover satisfy
// wait(k) + service ≤ patience, i.e. k ≤ (patience − service)·n/u'. A
// negative result means even an empty queue sheds (the saturated service
// time alone already exceeds the patience bound).
func QueueCrossover(q Query, load AdmitLoad, env Env) int {
	patience := patienceFor(q, load, env)
	service := saturatedResponse(q, load.Active, env)
	up := q.UPrime()
	n := env.EffectiveUnshared()
	if up <= 0 || n <= 0 || math.IsInf(service, 0) {
		return -1
	}
	slack := patience - service
	if slack < 0 {
		return -1
	}
	return int(math.Floor(slack * n / up))
}

// AdmitBenefit returns the benefit currency shedding compares: the predicted
// per-query rate of the best execution arm available to the query at the
// given load. A query that can ride an existing group scores its shared
// rate; one that can only run alone scores its (lower, contended) unshared
// rate — so when the window overflows, the sharer is the one worth keeping.
func AdmitBenefit(cands []Query, m, maxDegree int, remaining float64, active int, env Env) float64 {
	if len(cands) == 0 {
		return 0
	}
	eff := active + 1
	if m > eff {
		eff = m
	}
	if eff < 1 {
		eff = 1
	}
	_, _, _, x := ChoosePivoted(cands, eff, maxDegree, remaining, env)
	return x / float64(eff)
}

// ShedVictim returns the index of the lowest-benefit entry — the one a
// saturated server sheds first when its admission window overflows. Ties go
// to the later index (the younger arrival yields to the older one). An empty
// slice returns -1.
func ShedVictim(benefits []float64) int {
	victim := -1
	for i, b := range benefits {
		if victim < 0 || b <= benefits[victim] {
			victim = i
		}
	}
	return victim
}
