package core

import (
	"fmt"
	"math"
)

// This file extends the analytical model with the alternative the paper's
// title poses against sharing: intra-query parallelism. Instead of merging
// m queries into one serial shared pipeline (whose pivot pays s per
// consumer, total s·m), each query can be split into d partitioned clones
// that divide its work w by d and fan back in through a serial merge node.
// The model predicts the rate of both regimes under the current load and
// lets a policy pick share / parallelize / run-alone per query.

// ParallelPMax returns the bottleneck per-progress work of one query split
// into d partitioned clones. Every pipeline stage's work spreads evenly
// over the d clones (each reads a disjoint 1/d of the input), but the
// synthesized merge node that fans clone outputs back in stays serial,
// absorbing the combined clone output at the pivot's per-consumer cost s —
// so parallel speedup saturates at p_max/s no matter how large d grows.
func ParallelPMax(q Query, d int) float64 {
	if d < 1 {
		d = 1
	}
	f := float64(d)
	pm := q.PivotP(1) / f
	for _, p := range q.Below {
		pm = math.Max(pm, p/f)
	}
	for _, p := range q.Above {
		pm = math.Max(pm, p/f)
	}
	return math.Max(pm, q.PivotS)
}

// ParallelUPrime returns the total work per unit of forward progress of one
// query split into d clones: the clones together perform the query's own u'
// (partitioning eliminates nothing), plus the merge node's fan-in work s.
func ParallelUPrime(q Query, d int) float64 {
	if d <= 1 {
		return q.UPrime()
	}
	return q.UPrime() + q.PivotS
}

// ParallelX returns x_parallel(m,d,n): the aggregate rate of forward
// progress of m copies of q, each executing unshared as d partitioned
// clones, on env. Parallelism buys rate (the bottleneck shrinks toward
// p_max/d) but not work — under saturation the n/u' term governs and
// splitting only adds the merge overhead, which is exactly why sharing wins
// back the high-load regime.
func ParallelX(q Query, m, d int, env Env) float64 {
	if m <= 0 {
		return 0
	}
	return rate(float64(m), ParallelPMax(q, d), float64(m)*ParallelUPrime(q, d), env.EffectiveUnshared())
}

// ParallelSpeedup returns the predicted speedup of splitting one query into
// d clones on an otherwise idle env: x_parallel(1,d,n)/x_unshared(1,n).
func ParallelSpeedup(q Query, d int, env Env) float64 {
	base := UnsharedX(q, 1, env)
	if base == 0 {
		return 1
	}
	return ParallelX(q, 1, d, env) / base
}

// Decision is the model's per-query execution recommendation.
type Decision int

const (
	// RunAlone executes the query serially and unshared.
	RunAlone Decision = iota
	// Share merges the query into a sharing group at its pivot.
	Share
	// Parallelize splits the query into partitioned clones.
	Parallelize
	// AttachInflight joins a scan already in progress, sharing only its
	// remaining coverage and re-scanning the missed prefix on wrap-around
	// (the fourth arm of ChoosePivoted).
	AttachInflight
)

// String returns a short label for reports.
func (d Decision) String() string {
	switch d {
	case RunAlone:
		return "run-alone"
	case Share:
		return "share"
	case Parallelize:
		return "parallelize"
	case AttachInflight:
		return "attach-in-flight"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// Choose evaluates the three execution regimes for m copies of q on env —
// serial shared (the pivot pays s·m), parallel unshared (each copy's
// bottleneck work drops toward w/d), and serial unshared — and returns the
// predicted-fastest, with the clone degree to use when parallelizing
// (degree 1 otherwise). maxDegree caps the parallel search (typically the
// processor count). Simpler regimes win ties, so Parallelize must strictly
// beat both Share and RunAlone: clones are never spawned for a predicted
// wash. Choose is the single-pivot, full-coverage case of ChoosePivoted
// (see pivot.go).
func Choose(q Query, m, maxDegree int, env Env) (Decision, int, float64) {
	dec, _, degree, x := ChoosePivoted([]Query{q}, m, maxDegree, 1, env)
	return dec, degree, x
}
