package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestResponseTime(t *testing.T) {
	if got := ResponseTime(10, 2); got != 5 {
		t.Errorf("R = %g, want 5", got)
	}
	if got := ResponseTime(3, 0); !math.IsInf(got, 1) {
		t.Errorf("stalled system R = %g, want +Inf", got)
	}
}

// Little's Law consistency: X·R = N for both execution modes.
func TestQuickLittlesLawConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomQuery(rng)
		m := 1 + rng.Intn(32)
		env := NewEnv(1 + float64(rng.Intn(32)))
		xu := UnsharedX(q, m, env)
		xs := SharedX(q, m, env)
		if xu > 0 && math.Abs(xu*UnsharedResponseTime(q, m, env)-float64(m)) > 1e-9 {
			return false
		}
		if xs > 0 && math.Abs(xs*SharedResponseTime(q, m, env)-float64(m)) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The paper's Q6-on-32-contexts story in response-time terms: sharing
// throttles the group, inflating R by the same ~10-16x factor by which it
// cuts X.
func TestQ6SharingInflatesResponseTime(t *testing.T) {
	q := Q6Paper()
	env := NewEnv(32)
	const m = 48
	rShared := SharedResponseTime(q, m, env)
	rUnshared := UnsharedResponseTime(q, m, env)
	if ratio := rShared / rUnshared; ratio < 5 {
		t.Errorf("sharing inflated R by only %.1fx, want ≥ 5x", ratio)
	}
	// On one processor the saved work shortens R instead.
	env1 := NewEnv(1)
	if SharedResponseTime(q, m, env1) >= UnsharedResponseTime(q, m, env1) {
		t.Error("on 1 cpu sharing should shorten response time")
	}
}
