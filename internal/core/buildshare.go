package core

// This file extends the analytical model to hash-join build sharing — the
// paper's "many probes amortizing one build" reuse case, generalized by the
// hybrid-hash-join design-space analysis (Jahangiri et al.) to treat the
// build side as a first-class shareable artifact. A query compiled at the
// build pivot has exactly the shape SharedX already prices:
//
//	Below  — the operators feeding the build subtree (run once per group)
//	PivotW — w_b, the build work itself: scanning/filtering the build input
//	         and hashing it into the table (run once per group)
//	PivotS — s_b, the pivot's per-consumer cost. For a build-state pivot
//	         this is a pointer hand-off to an immutable table, not a page
//	         stream, so s_b is tiny — the regime where sharing keeps winning
//	         long after scan-level sharing has collapsed
//	Above  — the probe subtree, the probe phase, and everything over the
//	         join, replicated per member
//
// The functions below name that regime explicitly: one build amortized over
// m probes against m parallel builds (each member building privately).
// Because s_b ≈ 0, the shared bottleneck stays near max(p_below, w_b,
// p_above) no matter how large m grows, while the unshared group pays the
// whole build m times — build sharing is therefore the rare arm whose
// benefit grows monotonically with m on any processor count. ChoosePivoted
// needs no special casing: a build candidate enters the pivot comparison as
// its compiled Query, and BestPivot picks it whenever the amortization
// beats fan-out sharing at the other levels.

// BuildShareX returns the aggregate rate of forward progress of m join
// queries sharing one hash build, for q compiled at the build pivot: the
// build subtree runs once, the sealed table is handed to each member at
// per-consumer cost s_b, and every member probes privately.
func BuildShareX(q Query, m int, env Env) float64 { return SharedX(q, m, env) }

// BuildAloneX returns the rate of the unshared alternative: each of the m
// queries runs its own build (k parallel builds for k probes).
func BuildAloneX(q Query, m int, env Env) float64 { return UnsharedX(q, m, env) }

// BuildShareZ returns the benefit of sharing the build: the ratio of one
// build amortized over m probes to m parallel builds. Sharing the build is
// a net win iff the ratio exceeds 1.
func BuildShareZ(q Query, m int, env Env) float64 {
	xa := BuildAloneX(q, m, env)
	xs := BuildShareX(q, m, env)
	switch {
	case xa == 0 && xs == 0:
		return 1
	case xa == 0:
		return BuildShareZInf
	default:
		return xs / xa
	}
}

// BuildShareZInf is the Z value reported when the unshared arm makes no
// progress at all.
const BuildShareZInf = 1e308

// ShouldShareBuild reports the model's recommendation: run one build for the
// m queries iff the amortized rate beats m private builds.
func ShouldShareBuild(q Query, m int, env Env) bool { return BuildShareZ(q, m, env) > 1 }

// BuildShareSpeedup returns the predicted speedup of build sharing for m
// queries over running them with private builds — the number the build-share
// ablation prints next to measured q/min.
func BuildShareSpeedup(q Query, m int, env Env) float64 {
	base := BuildAloneX(q, m, env)
	if base == 0 {
		return 1
	}
	return BuildShareX(q, m, env) / base
}
