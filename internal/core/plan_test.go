package core

import (
	"errors"
	"strings"
	"testing"
)

func TestPlanValidate(t *testing.T) {
	t.Run("nil root", func(t *testing.T) {
		if err := (Plan{Name: "empty"}).Validate(); !errors.Is(err, ErrNilPlan) {
			t.Errorf("got %v, want ErrNilPlan", err)
		}
	})
	t.Run("negative work", func(t *testing.T) {
		pl := Plan{Name: "bad", Root: NewNode("x", -1, 0)}
		if err := pl.Validate(); !errors.Is(err, ErrNegativeWork) {
			t.Errorf("got %v, want ErrNegativeWork", err)
		}
	})
	t.Run("negative output cost", func(t *testing.T) {
		pl := Plan{Name: "bad", Root: NewNode("x", 1, -0.5)}
		if err := pl.Validate(); !errors.Is(err, ErrNegativeWork) {
			t.Errorf("got %v, want ErrNegativeWork", err)
		}
	})
	t.Run("repeated node", func(t *testing.T) {
		shared := NewNode("leaf", 1, 1)
		pl := Plan{Name: "dag", Root: NewNode("join", 1, 1, shared, shared)}
		if err := pl.Validate(); !errors.Is(err, ErrNodeRepeated) {
			t.Errorf("got %v, want ErrNodeRepeated", err)
		}
	})
	t.Run("ok", func(t *testing.T) {
		if err := Fig3Plan().Validate(); err != nil {
			t.Errorf("Fig3Plan invalid: %v", err)
		}
	})
}

func TestPlanNodesAndFind(t *testing.T) {
	pl := Fig3Plan()
	nodes := pl.Nodes()
	if len(nodes) != 3 {
		t.Fatalf("Nodes() returned %d nodes, want 3", len(nodes))
	}
	// Pre-order from the root.
	wantOrder := []string{"top", "pivot", "bottom"}
	for i, nd := range nodes {
		if nd.Name != wantOrder[i] {
			t.Errorf("Nodes()[%d] = %q, want %q", i, nd.Name, wantOrder[i])
		}
	}
	if pl.Find("pivot") == nil {
		t.Error("Find(pivot) = nil")
	}
	if pl.Find("nonexistent") != nil {
		t.Error("Find(nonexistent) != nil")
	}
}

func TestPlanTotalWork(t *testing.T) {
	pl := Fig3Plan()
	if got := pl.TotalWork(); got != 27 {
		t.Errorf("TotalWork = %g, want 27 (10 + 7 + 10)", got)
	}
}

func TestPlanString(t *testing.T) {
	s := Fig3Plan().String()
	for _, want := range []string{"fig3 synthetic", "top", "pivot", "bottom", "w=6", "s=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestNodeKindString(t *testing.T) {
	if Pipelined.String() != "pipelined" {
		t.Errorf("Pipelined.String() = %q", Pipelined.String())
	}
	if StopAndGo.String() != "stop-and-go" {
		t.Errorf("StopAndGo.String() = %q", StopAndGo.String())
	}
	if got := NodeKind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind String() = %q", got)
	}
}

func TestCompile(t *testing.T) {
	pl := Fig3Plan()
	q, err := Compile(pl, pl.Find("pivot"))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(q.Below) != 1 || q.Below[0] != 10 {
		t.Errorf("Below = %v, want [10]", q.Below)
	}
	if q.PivotW != 6 || q.PivotS != 1 {
		t.Errorf("pivot (w,s) = (%g,%g), want (6,1)", q.PivotW, q.PivotS)
	}
	if len(q.Above) != 1 || q.Above[0] != 10 {
		t.Errorf("Above = %v, want [10]", q.Above)
	}
}

func TestCompilePivotAtRoot(t *testing.T) {
	pl := Fig3Plan()
	q, err := Compile(pl, pl.Root)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(q.Above) != 0 {
		t.Errorf("Above = %v, want empty when pivot is the root", q.Above)
	}
	if len(q.Below) != 2 {
		t.Errorf("Below = %v, want 2 entries", q.Below)
	}
}

func TestCompilePivotAtLeaf(t *testing.T) {
	pl := Fig3Plan()
	q, err := Compile(pl, pl.Find("bottom"))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(q.Below) != 0 {
		t.Errorf("Below = %v, want empty when pivot is a leaf", q.Below)
	}
	if len(q.Above) != 2 {
		t.Errorf("Above = %v, want 2 entries", q.Above)
	}
}

func TestCompileErrors(t *testing.T) {
	pl := Fig3Plan()
	if _, err := Compile(pl, NewNode("stranger", 1, 1)); !errors.Is(err, ErrPivotNotFound) {
		t.Errorf("foreign pivot: got %v, want ErrPivotNotFound", err)
	}
	if _, err := Compile(pl, nil); !errors.Is(err, ErrPivotNotFound) {
		t.Errorf("nil pivot: got %v, want ErrPivotNotFound", err)
	}
	if _, err := Compile(Plan{Name: "empty"}, nil); !errors.Is(err, ErrNilPlan) {
		t.Errorf("empty plan: got %v, want ErrNilPlan", err)
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile did not panic on invalid input")
		}
	}()
	MustCompile(Plan{Name: "empty"}, nil)
}

// Compiling the Fig3 plan and recomputing work from the Query must agree
// with the plan's own accounting.
func TestCompilePreservesTotalWork(t *testing.T) {
	pl := Fig3Plan()
	for _, pivotName := range []string{"top", "pivot", "bottom"} {
		q := MustCompile(pl, pl.Find(pivotName))
		if got, want := q.UPrime(), pl.TotalWork(); got != want {
			t.Errorf("pivot %q: UPrime = %g, want %g", pivotName, got, want)
		}
	}
}

func TestQueryValidate(t *testing.T) {
	good := Q6Paper()
	if err := good.Validate(); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	bad := Query{Name: "neg", PivotW: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative pivot work accepted")
	}
	empty := Query{Name: "empty"}
	if err := empty.Validate(); err == nil {
		t.Error("zero-work query accepted")
	}
	nan := Query{Name: "nan", PivotW: nanValue()}
	if err := nan.Validate(); err == nil {
		t.Error("NaN work accepted")
	}
	badBelow := Query{Name: "b", PivotW: 1, Below: []float64{-2}}
	if err := badBelow.Validate(); err == nil {
		t.Error("negative below work accepted")
	}
	badAbove := Query{Name: "a", PivotW: 1, Above: []float64{-2}}
	if err := badAbove.Validate(); err == nil {
		t.Error("negative above work accepted")
	}
}

func nanValue() float64 {
	z := 0.0
	return z / z
}
