package core

import (
	"errors"
	"fmt"
	"strings"
)

// NodeKind classifies a plan node's pipelining behaviour.
type NodeKind int

const (
	// Pipelined operators pass results to consumers as soon as possible and
	// at a constant rate (scan, filter, probe, streaming aggregate, NLJ, ...).
	Pipelined NodeKind = iota
	// StopAndGo operators must consume their entire input before producing
	// any output (sort, hash-join build). They decouple the rates of the
	// sub-plan below from the operators above (Section 5.2).
	StopAndGo
)

// String returns the kind name.
func (k NodeKind) String() string {
	switch k {
	case Pipelined:
		return "pipelined"
	case StopAndGo:
		return "stop-and-go"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// PlanNode is one operator in a query plan tree. Work figures are expressed
// per unit of forward progress of the query's reference stream (Section 4.1.1),
// so selectivity is folded into the coefficients and nodes are comparable.
type PlanNode struct {
	// Name identifies the operator ("scan lineitem", "hash join", ...).
	Name string
	// W is the operator's own work per unit of forward progress, covering
	// all of its input streams (Σ w_i in the paper).
	W float64
	// S is the work required to output one unit of forward progress to each
	// consumer (s_j in the paper). In a plan tree every node has exactly one
	// consumer, so the unshared p of a node is W + S; under sharing the pivot
	// pays S once per sharer.
	S float64
	// Kind marks the node pipelined or stop-and-go.
	Kind NodeKind
	// Children are the input sub-plans (0 for leaves, 2 for joins, ...).
	Children []*PlanNode
}

// P returns the node's total work per unit of forward progress when it has a
// single consumer: p = W + S.
func (nd *PlanNode) P() float64 { return nd.W + nd.S }

// NewNode constructs a pipelined plan node.
func NewNode(name string, w, s float64, children ...*PlanNode) *PlanNode {
	return &PlanNode{Name: name, W: w, S: s, Kind: Pipelined, Children: children}
}

// NewStopAndGo constructs a stop-and-go plan node (sort, hash build).
func NewStopAndGo(name string, w, s float64, children ...*PlanNode) *PlanNode {
	return &PlanNode{Name: name, W: w, S: s, Kind: StopAndGo, Children: children}
}

// Plan is a rooted operator tree for one query.
type Plan struct {
	// Name identifies the query ("TPC-H Q6").
	Name string
	// Root is the top of the tree; its output goes to the client.
	Root *PlanNode
}

// Errors reported by plan validation and compilation.
var (
	ErrNilPlan       = errors.New("core: plan has no root")
	ErrNegativeWork  = errors.New("core: negative work coefficient")
	ErrPivotNotFound = errors.New("core: pivot node not found in plan")
	ErrNodeRepeated  = errors.New("core: node appears more than once in plan tree")
)

// Validate checks structural sanity: non-nil root, non-negative coefficients,
// and that the tree is in fact a tree (no shared or cyclic nodes).
func (pl Plan) Validate() error {
	if pl.Root == nil {
		return ErrNilPlan
	}
	seen := make(map[*PlanNode]bool)
	var walk func(nd *PlanNode) error
	walk = func(nd *PlanNode) error {
		if nd == nil {
			return ErrNilPlan
		}
		if seen[nd] {
			return fmt.Errorf("%w: %q", ErrNodeRepeated, nd.Name)
		}
		seen[nd] = true
		if nd.W < 0 || nd.S < 0 {
			return fmt.Errorf("%w: node %q (w=%g s=%g)", ErrNegativeWork, nd.Name, nd.W, nd.S)
		}
		for _, c := range nd.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(pl.Root)
}

// Nodes returns every node in the plan in pre-order.
func (pl Plan) Nodes() []*PlanNode {
	var out []*PlanNode
	var walk func(nd *PlanNode)
	walk = func(nd *PlanNode) {
		if nd == nil {
			return
		}
		out = append(out, nd)
		for _, c := range nd.Children {
			walk(c)
		}
	}
	walk(pl.Root)
	return out
}

// Find returns the first node with the given name in pre-order, or nil.
func (pl Plan) Find(name string) *PlanNode {
	for _, nd := range pl.Nodes() {
		if nd.Name == name {
			return nd
		}
	}
	return nil
}

// TotalWork returns the sum of p over all nodes: the total work one
// independent execution of the query injects into the system (u' in the
// paper, before any sharing).
func (pl Plan) TotalWork() float64 {
	var sum float64
	for _, nd := range pl.Nodes() {
		sum += nd.P()
	}
	return sum
}

// String renders the plan as an indented tree, for diagnostics.
func (pl Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %q\n", pl.Name)
	var walk func(nd *PlanNode, depth int)
	walk = func(nd *PlanNode, depth int) {
		if nd == nil {
			return
		}
		fmt.Fprintf(&b, "%s%s (w=%g s=%g %s)\n", strings.Repeat("  ", depth), nd.Name, nd.W, nd.S, nd.Kind)
		for _, c := range nd.Children {
			walk(c, depth+1)
		}
	}
	walk(pl.Root, 1)
	return b.String()
}

// subtreeContains reports whether target is nd or a descendant of nd.
func subtreeContains(nd, target *PlanNode) bool {
	if nd == nil {
		return false
	}
	if nd == target {
		return true
	}
	for _, c := range nd.Children {
		if subtreeContains(c, target) {
			return true
		}
	}
	return false
}
