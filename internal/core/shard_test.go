package core

import (
	"math"
	"testing"
)

// shardQ is a scan-heavy query: u' = 20, gather hand-off s = 0.5.
func shardQ() Query {
	return Query{Name: "shard", Below: []float64{10}, PivotW: 9, PivotS: 0.5, Above: []float64{0.5}}
}

// ShardT must reduce to u' on one shard and decompose exactly into the
// divided local arm plus the linear gather arm beyond it.
func TestShardT(t *testing.T) {
	q := shardQ()
	u := q.UPrime()
	if got := ShardT(q, 1); got != u {
		t.Fatalf("ShardT(1) = %g, want u' = %g", got, u)
	}
	if got := ShardGather(q, 1); got != 0 {
		t.Fatalf("ShardGather(1) = %g, want 0", got)
	}
	for _, k := range []int{2, 4, 8} {
		want := u/float64(k) + float64(k-1)*q.PivotS
		if got := ShardT(q, k); math.Abs(got-want) > 1e-12 {
			t.Fatalf("ShardT(%d) = %g, want %g", k, got, want)
		}
	}
	if got := ShardT(q, 0); got != u {
		t.Fatalf("ShardT(0) = %g, want clamp to 1 shard (%g)", got, u)
	}
}

// Scan-heavy queries (u' >> s) must scatter profitably and tiny queries
// (u' ~ s) must not — the routing threshold the cluster applies.
func TestShouldScatter(t *testing.T) {
	heavy := shardQ() // u'=20, s=0.5: T(4)=5+1.5 < 20
	if !ShouldScatter(heavy, 4) {
		t.Error("scan-heavy query should scatter over 4 shards")
	}
	tiny := Query{Name: "tiny", PivotW: 0.1, PivotS: 2} // gather dwarfs the saving
	if ShouldScatter(tiny, 4) {
		t.Error("tiny query should run whole")
	}
	if ShouldScatter(heavy, 1) {
		t.Error("one shard is never a scatter")
	}
}

// ShardSpeedup is T(1)/T(k) and degrades gracefully on zero-work models.
func TestShardSpeedup(t *testing.T) {
	q := shardQ()
	want := ShardT(q, 1) / ShardT(q, 4)
	if got := ShardSpeedup(q, 4); math.Abs(got-want) > 1e-12 {
		t.Fatalf("speedup = %g, want %g", got, want)
	}
	if got := ShardSpeedup(Query{}, 4); got != 1 {
		t.Fatalf("zero-work speedup = %g, want 1", got)
	}
}

// BestShards must track the analytic optimum k* = sqrt(u'/s): past it the
// linear gather term overtakes the hyperbolic local saving.
func TestBestShards(t *testing.T) {
	q := shardQ() // k* = sqrt(20/0.5) ~ 6.3
	best := BestShards(q, 64)
	kstar := math.Sqrt(q.UPrime() / q.PivotS)
	if math.Abs(float64(best)-kstar) > 1 {
		t.Fatalf("BestShards = %d, analytic k* = %.2f", best, kstar)
	}
	// The argmin must actually minimize over the searched range.
	for k := 1; k <= 64; k++ {
		if ShardT(q, k) < ShardT(q, best)-1e-12 {
			t.Fatalf("ShardT(%d) < ShardT(best=%d)", k, best)
		}
	}
	// A free gather wants every shard it can get; a dominant gather wants one.
	free := q
	free.PivotS = 0
	if got := BestShards(free, 16); got != 16 {
		t.Fatalf("free gather BestShards = %d, want 16", got)
	}
	dominated := Query{PivotW: 0.1, PivotS: 10}
	if got := BestShards(dominated, 16); got != 1 {
		t.Fatalf("gather-dominated BestShards = %d, want 1", got)
	}
}
