package core

import (
	"strings"
	"testing"
)

func TestSweepClients(t *testing.T) {
	s := SweepClients(Fig3Query(), NewEnv(4), 10)
	if len(s.Points) != 10 {
		t.Fatalf("got %d points", len(s.Points))
	}
	if s.Points[0].M != 1 || s.Points[0].Value != 1 {
		t.Errorf("first point = %+v, want Z(1) = 1", s.Points[0])
	}
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].M != s.Points[i-1].M+1 {
			t.Errorf("points not consecutive at %d", i)
		}
	}
}

func TestSweepProcessorsLabels(t *testing.T) {
	out := SweepProcessors(Fig3Query(), []int{1, 16}, 5)
	if len(out) != 2 {
		t.Fatalf("got %d series", len(out))
	}
	if out[0].Label != "1 CPU" || out[1].Label != "16 CPU" {
		t.Errorf("labels = %q, %q", out[0].Label, out[1].Label)
	}
}

func TestSweepPivotCostLabels(t *testing.T) {
	out := SweepPivotCost(Fig3Query(), []float64{0, 0.25, 2}, NewEnv(8), 5)
	want := []string{"s=0.0", "s=0.25", "s=2.0"}
	for i, s := range out {
		if s.Label != want[i] {
			t.Errorf("label[%d] = %q, want %q", i, s.Label, want[i])
		}
	}
	// The s value actually took effect: higher s, lower Z at load.
	if out[2].Points[4].Value > out[0].Points[4].Value {
		t.Error("higher pivot cost did not reduce speedup")
	}
}

func TestSweepWorkEliminatedLabels(t *testing.T) {
	out := SweepWorkEliminated(NewEnv(8), 5)
	if len(out) != 6 {
		t.Fatalf("got %d series, want 6", len(out))
	}
	if out[0].Label != "5/5 (98%)" {
		t.Errorf("first label = %q, want 5/5 (98%%)", out[0].Label)
	}
	if out[5].Label != "0/5 (28%)" {
		t.Errorf("last label = %q, want 0/5 (28%%)", out[5].Label)
	}
}

func TestItoaFtoa(t *testing.T) {
	cases := map[int]string{0: "0", 7: "7", 42: "42", -3: "-3", 120: "120"}
	for v, want := range cases {
		if got := itoa(v); got != want {
			t.Errorf("itoa(%d) = %q, want %q", v, got, want)
		}
	}
	fcases := map[float64]string{0: "0.0", 1: "1.0", 0.25: "0.25", 2.5: "2.50", 0.05: "0.05", 1.999: "2.0"}
	for v, want := range fcases {
		if got := ftoa(v); got != want {
			t.Errorf("ftoa(%g) = %q, want %q", v, got, want)
		}
	}
	if !strings.HasPrefix(formatCPUs(8), "8") {
		t.Error("formatCPUs wrong")
	}
}
