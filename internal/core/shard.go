package core

// This file extends the analytical model across the process boundary the
// rest of the package stays inside: scatter-gather execution over k engine
// shards. Range partitioning divides every pipeline stage's work by k (each
// shard scans a disjoint 1/k of the base data and runs the plan's partial
// form over it), but the coordinator pays a gather stage the single-engine
// plan never has: one partial-result hand-off per shard, priced at the
// pivot's per-consumer cost s — the same coefficient the fan-out and the
// clone merge charge, applied once per shard rather than once per consumer
// or per page. The term that decides scatter-vs-local is therefore
//
//	T(k) = u'/k + s·(k-1)         (T(1) = u', no gather on one shard)
//
// which shrinks hyperbolically in the shard-local arm and grows linearly in
// the gather arm: tiny queries (u' ≈ s) lose to the gather cost and should
// run on a single shard, scan-heavy queries (u' ≫ s) scatter profitably up
// to k* ≈ √(u'/s). The cluster's submit router consults ShouldScatter with
// exactly this term; BestShards exposes the argmin for planners and tests.

// ShardGather returns the coordinator-side gather work of a k-shard
// scatter-gather execution: one partial-stream hand-off per shard beyond the
// first, at the pivot's per-consumer cost s. One shard gathers nothing.
func ShardGather(q Query, k int) float64 {
	if k <= 1 {
		return 0
	}
	return float64(k-1) * q.PivotS
}

// ShardT returns the modeled execution time (in work units) of one query
// scattered over k shards, each shard otherwise idle: the query's total work
// u' divides evenly across the shards' disjoint partitions, plus the serial
// gather term.
func ShardT(q Query, k int) float64 {
	if k < 1 {
		k = 1
	}
	return q.UPrime()/float64(k) + ShardGather(q, k)
}

// ShardSpeedup returns the predicted speedup of scattering one query over k
// shards versus running it whole on one: T(1)/T(k). Values above 1 favor
// scattering. A zero-work model reports 1 (no basis to prefer either).
func ShardSpeedup(q Query, k int) float64 {
	t1, tk := ShardT(q, 1), ShardT(q, k)
	if t1 == 0 || tk == 0 {
		return 1
	}
	return t1 / tk
}

// ShouldScatter reports whether scattering q over k shards is predicted
// faster than running it whole on one shard — the gather-cost-vs-local-
// speedup routing test the cluster submit path applies. Ties keep the
// simpler regime (run whole).
func ShouldScatter(q Query, k int) bool {
	return ShardSpeedup(q, k) > 1
}

// BestShards returns the shard count k in [1, kmax] minimizing ShardT — the
// scatter degree a planner should use when free to choose. Ties prefer the
// smaller k.
func BestShards(q Query, kmax int) int {
	best, bestT := 1, ShardT(q, 1)
	for k := 2; k <= kmax; k++ {
		if t := ShardT(q, k); t < bestT {
			best, bestT = k, t
		}
	}
	return best
}
