package core

import (
	"math"
	"strings"
	"testing"
)

func sortPlan() Plan {
	scan := NewNode("scan", 4, 2)
	sort := NewStopAndGo("sort", 6, 1, scan)
	agg := NewNode("agg", 3, 0, sort)
	return Plan{Name: "sorted-agg", Root: agg}
}

func TestSplitPhasesPipelinedPlanIsSinglePhase(t *testing.T) {
	phases, err := SplitPhases(Fig3Plan())
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 1 {
		t.Fatalf("got %d phases, want 1", len(phases))
	}
	if phases[0].Name != "fig3 synthetic" {
		t.Errorf("single phase renamed to %q", phases[0].Name)
	}
}

func TestSplitPhasesSort(t *testing.T) {
	phases, err := SplitPhases(sortPlan())
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 2 {
		t.Fatalf("got %d phases, want 2 (consume-and-sort, replay-and-aggregate)", len(phases))
	}
	// Phase 1: scan feeding the sort's run generation; the sort emits
	// nothing during this phase.
	p1 := phases[0]
	sortNode := p1.Find("sort")
	if sortNode == nil {
		t.Fatal("phase 1 lost the sort node")
	}
	if sortNode.S != 0 {
		t.Errorf("phase-1 sort S = %g, want 0 (no output while consuming)", sortNode.S)
	}
	if sortNode.Kind != Pipelined {
		t.Errorf("phase-1 sort still marked stop-and-go")
	}
	if p1.Find("scan") == nil {
		t.Error("phase 1 lost the scan")
	}
	if p1.Find("agg") != nil {
		t.Error("phase 1 contains the aggregate, which runs only after the sort completes")
	}
	// Phase 2: materialized replay leaf feeding the aggregate.
	p2 := phases[1]
	leaf := p2.Find("sort (materialized)")
	if leaf == nil {
		t.Fatalf("phase 2 missing replay leaf; plan:\n%s", p2)
	}
	if leaf.W != 0 || leaf.S != 1 {
		t.Errorf("replay leaf (w,s) = (%g,%g), want (0,1)", leaf.W, leaf.S)
	}
	if p2.Find("agg") == nil {
		t.Error("phase 2 lost the aggregate")
	}
	if p2.Find("scan") != nil {
		t.Error("phase 2 still contains the scan")
	}
}

func TestSplitPhasesDoesNotMutateInput(t *testing.T) {
	pl := sortPlan()
	before := pl.String()
	if _, err := SplitPhases(pl); err != nil {
		t.Fatal(err)
	}
	if got := pl.String(); got != before {
		t.Errorf("SplitPhases mutated its input:\nbefore:\n%s\nafter:\n%s", before, got)
	}
}

func TestSplitPhasesMergeJoin(t *testing.T) {
	left := NewNode("scan-left", 5, 1)
	right := NewNode("scan-right", 4, 1)
	mj := MergeJoin("mj", 3, 0.5, left, right, 6, 6, false, false)
	pl := Plan{Name: "merge-join", Root: mj}
	phases, err := SplitPhases(pl)
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 2 {
		t.Fatalf("got %d phases, want 2 (both sorts concurrently, then merge)", len(phases))
	}
	// Both sorts land in phase 1 under a synthetic zero-cost root.
	p1 := phases[0]
	if p1.Find("mj/sort-left") == nil || p1.Find("mj/sort-right") == nil {
		t.Errorf("phase 1 should contain both sorts:\n%s", p1)
	}
	if root := p1.Root; root.P() != 0 {
		t.Errorf("synthetic phase root has p = %g, want 0", root.P())
	}
	p2 := phases[1]
	if p2.Find("mj") == nil {
		t.Error("phase 2 lost the merge")
	}
	if !strings.Contains(p2.String(), "materialized") {
		t.Errorf("phase 2 missing materialized leaves:\n%s", p2)
	}
}

func TestSplitPhasesSortedInputsPipelineMergeJoin(t *testing.T) {
	left := NewNode("scan-left", 5, 1)
	right := NewNode("scan-right", 4, 1)
	mj := MergeJoin("mj", 3, 0.5, left, right, 6, 6, true, true)
	phases, err := SplitPhases(Plan{Name: "pipelined-mj", Root: mj})
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 1 {
		t.Errorf("pre-sorted merge join split into %d phases, want 1", len(phases))
	}
}

func TestSplitPhasesHashJoin(t *testing.T) {
	build := NewNode("scan-build", 3, 1)
	probe := NewNode("scan-probe", 8, 1)
	hj := HashJoin("hj", 4, 2, 0.3, build, probe)
	agg := NewNode("agg", 1, 0, hj)
	phases, err := SplitPhases(Plan{Name: "hash-join", Root: agg})
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 2 {
		t.Fatalf("got %d phases, want 2 (build, probe)", len(phases))
	}
	p1 := phases[0]
	if p1.Find("hj/build") == nil || p1.Find("scan-build") == nil {
		t.Errorf("build phase wrong:\n%s", p1)
	}
	if p1.Find("scan-probe") != nil {
		t.Error("probe-side scan leaked into the build phase")
	}
	p2 := phases[1]
	if p2.Find("hj/probe") == nil || p2.Find("scan-probe") == nil || p2.Find("agg") == nil {
		t.Errorf("probe phase wrong:\n%s", p2)
	}
}

func TestSplitPhasesNestedStopAndGo(t *testing.T) {
	scan := NewNode("scan", 2, 1)
	innerSort := NewStopAndGo("inner-sort", 3, 1, scan)
	mid := NewNode("mid", 1, 1, innerSort)
	outerSort := NewStopAndGo("outer-sort", 4, 1, mid)
	top := NewNode("top", 1, 0, outerSort)
	phases, err := SplitPhases(Plan{Name: "nested", Root: top})
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 3 {
		t.Fatalf("got %d phases, want 3 for nested stop-&-go", len(phases))
	}
}

func TestSymmetricHashJoinStaysPipelined(t *testing.T) {
	l := NewNode("l", 1, 1)
	r := NewNode("r", 1, 1)
	shj := SymmetricHashJoin("shj", 2, 3, 0.5, l, r)
	phases, err := SplitPhases(Plan{Name: "shj", Root: shj})
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 1 {
		t.Errorf("symmetric hash join split into %d phases, want 1", len(phases))
	}
	if shj.W != 5 {
		t.Errorf("symmetric hash join W = %g, want wLeft+wRight = 5", shj.W)
	}
}

func TestNLJIsSingleOperator(t *testing.T) {
	outer := NewNode("outer", 2, 1)
	inner := NewNode("inner", 1, 1)
	nlj := NLJ("nlj", 7, 2, 0.5, outer, inner)
	if nlj.W != 9 {
		t.Errorf("NLJ W = %g, want 9 (wOuter+wInner)", nlj.W)
	}
	phases, err := SplitPhases(Plan{Name: "nlj", Root: nlj})
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 1 {
		t.Errorf("NLJ split into %d phases, want 1", len(phases))
	}
}

func TestPhasedRate(t *testing.T) {
	almostEq(t, PhasedRate([]float64{2, 2}), 1, 1e-12, "two rate-2 phases combine to 1")
	almostEq(t, PhasedRate([]float64{1}), 1, 1e-12, "single phase passthrough")
	if got := PhasedRate(nil); !math.IsInf(got, 1) {
		t.Errorf("no phases = %g, want +Inf", got)
	}
	if got := PhasedRate([]float64{1, 0}); got != 0 {
		t.Errorf("stalled phase = %g, want 0", got)
	}
	almostEq(t, PhasedRate([]float64{math.Inf(1), 4}), 4, 1e-12, "infinite phases contribute nothing")
}

func TestPhasedZHashJoinShareBuild(t *testing.T) {
	// Share at the build-side scan: on one processor this must help (saved
	// work always wins on a saturated uniprocessor).
	build := NewNode("scan-build", 6, 1)
	probe := NewNode("scan-probe", 8, 1)
	hj := HashJoin("hj", 4, 2, 0.3, build, probe)
	pl := Plan{Name: "hj-query", Root: NewNode("agg", 1, 0, hj)}
	z, err := PhasedZ(pl, "scan-build", 16, NewEnv(1))
	if err != nil {
		t.Fatal(err)
	}
	if z < 1 {
		t.Errorf("Z = %g, want ≥ 1 on a saturated uniprocessor", z)
	}
	// The probe phase runs unshared either way, so the overall benefit is
	// diluted relative to sharing a fully pipelined plan.
	buildOnly := Plan{Name: "build-only", Root: NewStopAndGo("hjb", 4, 0, build)}
	phases, err := SplitPhases(buildOnly)
	if err != nil {
		t.Fatal(err)
	}
	q := MustCompile(phases[0], phases[0].Find("scan-build"))
	zBuild := Z(q, 16, NewEnv(1))
	if z > zBuild+1e-9 {
		t.Errorf("phased Z %g exceeds build-phase-only Z %g; the unshared probe phase should dilute the benefit", z, zBuild)
	}
}

func TestPhasedZPivotMissing(t *testing.T) {
	if _, err := PhasedZ(Fig3Plan(), "no-such-node", 4, NewEnv(2)); err == nil {
		t.Error("missing pivot accepted")
	}
}

func TestPhasedZMatchesZForPipelinedPlan(t *testing.T) {
	pl := Fig3Plan()
	for _, m := range []int{1, 4, 16} {
		for _, n := range []float64{1, 8, 32} {
			z, err := PhasedZ(pl, "pivot", m, NewEnv(n))
			if err != nil {
				t.Fatal(err)
			}
			want := Z(Fig3Query(), m, NewEnv(n))
			almostEq(t, z, want, 1e-9, "PhasedZ vs Z on single-phase plan")
		}
	}
}
