package engine

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/relop"
	"repro/internal/storage"
)

// attachAlways admits every join and every attach; attachNever admits
// submit-time joins but refuses every in-flight attach.
type attachAlways struct{}

func (attachAlways) ShouldJoin(core.Query, int) bool                  { return true }
func (attachAlways) ShouldAttach(_ core.Query, _ int, f float64) bool { return f > 0 }

type attachNever struct{}

func (attachNever) ShouldJoin(core.Query, int) bool            { return true }
func (attachNever) ShouldAttach(core.Query, int, float64) bool { return false }

// joinOnly implements only SharePolicy: in-flight groups must refuse it.
type joinOnly struct{}

func (joinOnly) ShouldJoin(core.Query, int) bool { return true }

// scanTable builds an Int64 single-column table with values 0..rows-1.
func scanTable(t *testing.T, rows int) *storage.Table {
	t.Helper()
	tbl := storage.NewTable("t", storage.MustSchema(storage.Column{Name: "v", Type: storage.Int64}))
	for i := 0; i < rows; i++ {
		tbl.MustAppend(int64(i))
	}
	return tbl
}

// scanSpec is a bare scan query: the scan is pivot and root at once, so the
// sink receives every scanned page directly.
func scanSpec(tbl *storage.Table, pageRows int) QuerySpec {
	return QuerySpec{
		Signature: "scan/t",
		Pivot:     0,
		Nodes:     []NodeSpec{ScanNode("t/scan", tbl, nil, []string{"v"}, pageRows)},
	}
}

// sumResult checks a result holds each of 0..rows-1 exactly once (order
// free: in-flight joiners see the table rotated).
func sumResult(t *testing.T, b *storage.Batch, rows int) {
	t.Helper()
	if b.Len() != rows {
		t.Fatalf("result has %d rows, want %d", b.Len(), rows)
	}
	seen := make([]int, rows)
	for _, v := range b.MustCol("v").I64 {
		if v < 0 || v >= int64(rows) {
			t.Fatalf("result contains %d, outside 0..%d", v, rows-1)
		}
		seen[v]++
	}
	for v, n := range seen {
		if n != 1 {
			t.Errorf("row %d delivered %d times, want exactly once", v, n)
		}
	}
}

// TestInflightAttachBeforeStart pins the deterministic case: with the
// engine paused, the second submission attaches to the first group's
// circular scan at position 0 and both members see the full table.
func TestInflightAttachBeforeStart(t *testing.T) {
	const rows = 512
	tbl := scanTable(t, rows)
	e, err := New(Options{Workers: 2, FanOut: FanOutClone, StartPaused: true, InflightSharing: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	spec := scanSpec(tbl, 32)
	h1, err := e.Submit(spec, attachAlways{})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := e.Submit(spec, attachAlways{})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.InflightAttaches(); got != 1 {
		t.Errorf("InflightAttaches before start = %d, want 1", got)
	}
	e.Start()
	for _, h := range []*Handle{h1, h2} {
		res, err := h.Wait()
		if err != nil {
			t.Fatal(err)
		}
		sumResult(t, res, rows)
	}
	if e.ScanRegistry().InFlight() != 0 {
		t.Errorf("registry still tracks %d scans after completion", e.ScanRegistry().InFlight())
	}
}

// gateOp passes pages through unchanged, but each Push first waits for the
// gate channel to close. Blocking inside Push parks one scheduler worker,
// so gated tests need Workers >= 2.
type gateOp struct {
	schema storage.Schema
	gate   <-chan struct{}
	emit   relop.Emit
}

func (g *gateOp) OutSchema() storage.Schema { return g.schema }
func (g *gateOp) Push(b *storage.Batch) error {
	<-g.gate
	return g.emit(b)
}
func (g *gateOp) Finish() error { return nil }

// TestInflightLateJoinerWrapAround submits a second query after the first
// group's scan has demonstrably advanced: the joiner must attach mid-flight,
// consume to the end, and recover its missed prefix on the wrap-around lap.
// The first member's private chain is gated shut, so backpressure parks the
// scan mid-table deterministically — the attach cannot race the scan's
// completion no matter how fast the host is.
func TestInflightLateJoinerWrapAround(t *testing.T) {
	const rows = 20000
	const pageRows = 16
	tbl := scanTable(t, rows)
	e, err := New(Options{Workers: 2, FanOut: FanOutClone, InflightSharing: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	gate := make(chan struct{})
	schema := storage.MustSchema(storage.Column{Name: "v", Type: storage.Int64})
	gated := QuerySpec{
		Signature: "scan/t",
		Pivot:     0,
		Nodes: []NodeSpec{
			ScanNode("t/scan", tbl, nil, []string{"v"}, pageRows),
			{Name: "t/gate", Input: 0, Op: func(emit relop.Emit) (relop.Operator, error) {
				return &gateOp{schema: schema, gate: gate, emit: emit}, nil
			}},
		},
	}
	h1, err := e.Submit(gated, attachAlways{})
	if err != nil {
		t.Fatal(err)
	}
	// The scan registers in the work exchange under the group's share key.
	cs := e.ScanRegistry().Lookup(ShareKey(gated))
	if cs == nil {
		t.Fatal("scan not published in the registry")
	}
	// With the gate shut the member's head queue fills and the scan parks a
	// bounded number of quanta in — far past 64 rows, far short of the end.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if pos, lap := cs.Progress(); pos > 64 || lap > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("scan made no progress")
		}
		time.Sleep(20 * time.Microsecond)
	}
	// The joiner's scan prefix fingerprints identically (same declared
	// scan), so it attaches mid-flight despite its different private chain.
	h2, err := e.Submit(scanSpec(tbl, pageRows), attachAlways{})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.InflightAttaches(); got != 1 {
		t.Fatalf("InflightAttaches = %d, want 1 (scan had %d of %d rows left)",
			got, rows-func() int { p, _ := cs.Progress(); return p }(), rows)
	}
	close(gate)
	for _, h := range []*Handle{h1, h2} {
		res, err := h.Wait()
		if err != nil {
			t.Fatal(err)
		}
		sumResult(t, res, rows)
	}
}

// TestInflightRefusedRunsIndependently: when the attach policy declines,
// the newcomer starts its own group and both queries still complete.
func TestInflightRefusedRunsIndependently(t *testing.T) {
	const rows = 2048
	tbl := scanTable(t, rows)
	e, err := New(Options{Workers: 2, FanOut: FanOutClone, StartPaused: true, InflightSharing: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	spec := scanSpec(tbl, 16)
	h1, err := e.Submit(spec, attachNever{})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := e.Submit(spec, attachNever{})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.InflightAttaches(); got != 0 {
		t.Errorf("InflightAttaches = %d, want 0", got)
	}
	e.Start()
	for _, h := range []*Handle{h1, h2} {
		res, err := h.Wait()
		if err != nil {
			t.Fatal(err)
		}
		sumResult(t, res, rows)
	}
}

// TestInflightRequiresAttachPolicy: a plain SharePolicy cannot join an
// in-flight group; the engine falls back to a fresh group rather than
// violating the sealed-at-first-emit contract the policy was written for.
func TestInflightRequiresAttachPolicy(t *testing.T) {
	const rows = 256
	tbl := scanTable(t, rows)
	e, err := New(Options{Workers: 2, StartPaused: true, InflightSharing: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	spec := scanSpec(tbl, 16)
	h1, err := e.Submit(spec, joinOnly{})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := e.Submit(spec, joinOnly{})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.InflightAttaches(); got != 0 {
		t.Errorf("InflightAttaches = %d, want 0 for a join-only policy", got)
	}
	e.Start()
	for _, h := range []*Handle{h1, h2} {
		res, err := h.Wait()
		if err != nil {
			t.Fatal(err)
		}
		sumResult(t, res, rows)
	}
}

// TestInflightDisabledUsesSubmitTimeGroups: without the option, ScanNode
// pivots behave exactly like opaque sources (submission-time sealing).
func TestInflightDisabledUsesSubmitTimeGroups(t *testing.T) {
	const rows = 256
	tbl := scanTable(t, rows)
	e, err := New(Options{Workers: 2, StartPaused: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	spec := scanSpec(tbl, 16)
	if _, err := e.Submit(spec, attachAlways{}); err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	g := e.joinable[ShareKey(spec)]
	e.mu.Unlock()
	if g == nil || g.inflight != nil {
		t.Fatal("inflight machinery built despite InflightSharing=false")
	}
	if e.ScanRegistry().InFlight() != 0 {
		t.Error("scan published despite InflightSharing=false")
	}
}

// TestScanSpecValidateNilTable: a declared scan without a table must be
// rejected by Validate, not panic inside Submit.
func TestScanSpecValidateNilTable(t *testing.T) {
	spec := QuerySpec{
		Signature: "nil/t",
		Pivot:     0,
		Nodes:     []NodeSpec{ScanNode("t/scan", nil, nil, nil, 0)},
	}
	if err := spec.Validate(); err == nil {
		t.Fatal("nil-table scan passed validation")
	}
}

// failOp errors on the first page it sees.
type failOp struct {
	schema storage.Schema
	err    error
}

func (f failOp) OutSchema() storage.Schema { return f.schema }
func (f failOp) Push(*storage.Batch) error { return f.err }
func (f failOp) Finish() error             { return nil }

// TestInflightMemberFailureAbortsGroup: a dying member chain must not wedge
// the shared circular scan. The group aborts (every member resolves with
// the error), the scan leaves the registry, and the signature is free for
// a fresh, working group.
func TestInflightMemberFailureAbortsGroup(t *testing.T) {
	const rows = 2048
	tbl := scanTable(t, rows)
	boom := fmt.Errorf("member exploded")
	okSpec := scanSpec(tbl, 16)
	badSpec := QuerySpec{
		Signature: okSpec.Signature, // merges with the healthy member's group
		Pivot:     0,
		Nodes: []NodeSpec{
			okSpec.Nodes[0],
			{Name: "t/fail", Input: 0, Op: func(relop.Emit) (relop.Operator, error) {
				return failOp{schema: storage.MustSchema(storage.Column{Name: "v", Type: storage.Int64}), err: boom}, nil
			}},
		},
	}
	e, err := New(Options{Workers: 2, FanOut: FanOutClone, StartPaused: true, InflightSharing: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	h1, err := e.Submit(okSpec, attachAlways{})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := e.Submit(badSpec, attachAlways{})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	for i, h := range []*Handle{h1, h2} {
		if _, err := h.Wait(); err == nil {
			t.Errorf("member %d finished without the group error", i+1)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.ScanRegistry().InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("aborted scan never left the registry")
		}
		time.Sleep(50 * time.Microsecond)
	}
	// The signature must be reusable: a fresh submission starts a clean
	// group and completes.
	h3, err := e.Submit(okSpec, attachAlways{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h3.Wait()
	if err != nil {
		t.Fatal(err)
	}
	sumResult(t, res, rows)
}

// TestInflightAggChain runs the realistic shape — scan pivot feeding a
// private aggregation chain — with a mid-flight joiner, checking both
// members aggregate the identical full table.
func TestInflightAggChain(t *testing.T) {
	const rows = 4096
	tbl := scanTable(t, rows)
	scanSchema := storage.MustSchema(storage.Column{Name: "v", Type: storage.Int64})
	spec := QuerySpec{
		Signature: "agg/t",
		Pivot:     0,
		Nodes: []NodeSpec{
			ScanNode("t/scan", tbl, nil, []string{"v"}, 16),
			{Name: "t/agg", Input: 0, Op: func(emit relop.Emit) (relop.Operator, error) {
				return relop.NewHashAgg(scanSchema, nil, []relop.AggSpec{
					{Func: relop.Sum, Expr: relop.Col("v"), As: "total"},
					{Func: relop.Count, As: "cnt"},
				}, emit)
			}},
		},
	}
	e, err := New(Options{Workers: 2, FanOut: FanOutClone, StartPaused: true, InflightSharing: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	h1, err := e.Submit(spec, attachAlways{})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := e.Submit(spec, attachAlways{})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	wantSum := float64(rows) * float64(rows-1) / 2
	for _, h := range []*Handle{h1, h2} {
		res, err := h.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 1 {
			t.Fatalf("agg result has %d rows, want 1", res.Len())
		}
		if got := res.MustCol("total").F64[0]; got != wantSum {
			t.Errorf("sum = %v, want %v", got, wantSum)
		}
		if got := res.MustCol("cnt").I64[0]; got != int64(rows) {
			t.Errorf("count = %v, want %d", got, rows)
		}
	}
}
