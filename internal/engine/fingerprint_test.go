package engine

import (
	"testing"

	"repro/internal/relop"
	"repro/internal/storage"
)

// sumSpec is a scan feeding a global sum, with a settable signature and an
// optional aggregate fingerprint.
func sumSpec(tbl *storage.Table, sig, aggFp string) QuerySpec {
	scanSchema := storage.MustSchema(storage.Column{Name: "v", Type: storage.Int64})
	return QuerySpec{
		Signature: sig,
		Pivot:     0,
		Nodes: []NodeSpec{
			ScanNode("fp/scan", tbl, nil, []string{"v"}, 16),
			{Name: "fp/agg", Input: 0, Fingerprint: aggFp, Op: func(emit relop.Emit) (relop.Operator, error) {
				return relop.NewHashAgg(scanSchema, nil, []relop.AggSpec{
					{Func: relop.Sum, Expr: relop.Col("v"), As: "total"},
				}, emit)
			}},
		},
	}
}

// Declared scans canonicalize structurally: specs with different signatures
// but the same scan share a key at the scan pivot, while any difference in
// predicate, projection, quantum, or table breaks the match.
func TestShareKeyScanStructural(t *testing.T) {
	tbl := scanTable(t, 64)
	a := sumSpec(tbl, "sig/a", "")
	b := sumSpec(tbl, "sig/b", "")
	if ShareKey(a) != ShareKey(b) {
		t.Error("identical scans under different signatures do not share a key")
	}
	narrower := sumSpec(tbl, "sig/a", "")
	narrower.Nodes[0].Scan.PageRows = 8
	if ShareKey(a) == ShareKey(narrower) {
		t.Error("different scan quanta share a key")
	}
	pred := sumSpec(tbl, "sig/a", "")
	pred.Nodes[0].Scan.Pred = relop.Cmp{Op: relop.Lt, L: relop.Col("v"), R: relop.ConstInt{V: 10}}
	if ShareKey(a) == ShareKey(pred) {
		t.Error("different scan predicates share a key")
	}
	other := storage.NewTable("t2", storage.MustSchema(storage.Column{Name: "v", Type: storage.Int64}))
	for i := 0; i < 64; i++ {
		other.MustAppend(int64(i))
	}
	elsewhere := sumSpec(other, "sig/a", "")
	if ShareKey(a) == ShareKey(elsewhere) {
		t.Error("scans of different tables share a key")
	}
}

// Scan canonicalization is structural — table name, schema, epoch — never the
// *storage.Table pointer, so two engines over equal catalogs (two processes,
// two runs) derive equal ShareKeys and fingerprints are usable as persistent
// cache keys. A mutation to either catalog's table breaks the match until the
// epochs align again.
func TestShareKeyDeterministicAcrossCatalogs(t *testing.T) {
	mkCatalog := func() *storage.Table { return scanTable(t, 64) }
	a := sumSpec(mkCatalog(), "sig/a", "sum-v")
	b := sumSpec(mkCatalog(), "sig/a", "sum-v")
	if ShareKey(a) != ShareKey(b) {
		t.Error("equal catalogs in distinct engines do not produce equal ShareKeys")
	}
	a.Pivot, b.Pivot = 1, 1
	if ShareKey(a) != ShareKey(b) {
		t.Error("equal catalogs do not produce equal root ShareKeys")
	}
	b.Nodes[0].Scan.Table.BumpEpoch()
	if ShareKey(a) == ShareKey(b) {
		t.Error("mutated table still matches its unmutated twin")
	}
}

// Names are catalog identity, not in-process identity: when one engine has
// already bound a table name to a different live instance, a same-named
// distinct table compiles under a qualified key, so the two can never merge
// into each other's groups or hit each other's retained artifacts — while
// the engine-free canonical form stays name-keyed, preserving cross-process
// determinism, and the first-bound instance keeps the canonical key.
func TestSameNamedDistinctTablesKeepDistinctEngineKeys(t *testing.T) {
	e := newPlain(t, Options{Workers: 2})
	t1 := scanTable(t, 64)
	t2 := scanTable(t, 64) // same name "t", same schema, same epoch
	a := sumSpec(t1, "sn/a", "sum-v")
	b := sumSpec(t2, "sn/a", "sum-v")
	if ShareKey(a) != ShareKey(b) {
		t.Error("engine-free canonical keys must stay name-keyed for equal catalogs")
	}
	ca, cb := e.compileFor(a), e.compileFor(b)
	if ca.shareKeyAt(0) == cb.shareKeyAt(0) {
		t.Error("same-named distinct tables compiled to one in-process key")
	}
	if got, want := ca.shareKeyAt(0), ShareKey(a); got != want {
		t.Errorf("first-bound instance key = %q, want the canonical %q", got, want)
	}
	// The binding is stable: recompiling either table resolves the same
	// identity again.
	if got := e.compileFor(b).shareKeyAt(0); got != cb.shareKeyAt(0) {
		t.Errorf("identity qualifier unstable across compiles: %q then %q", cb.shareKeyAt(0), got)
	}
	if got := e.compileFor(a).shareKeyAt(0); got != ca.shareKeyAt(0) {
		t.Error("first-bound instance lost its canonical key")
	}
}

// Opaque operators (no declared fingerprint) fall back to signature-scoped
// identity — PR 1 semantics — while fingerprinted ones share across
// signatures.
func TestShareKeyOpaqueFallback(t *testing.T) {
	tbl := scanTable(t, 64)
	mk := func(sig, fp string) QuerySpec {
		s := sumSpec(tbl, sig, fp)
		s.Pivot = 1 // put the aggregate inside the shared prefix
		return s
	}
	if ShareKey(mk("sig/a", "")) == ShareKey(mk("sig/b", "")) {
		t.Error("opaque nodes shared across different signatures")
	}
	if ShareKey(mk("sig/a", "")) != ShareKey(mk("sig/a", "")) {
		t.Error("opaque nodes do not share within one signature")
	}
	if ShareKey(mk("sig/a", "sum-v")) != ShareKey(mk("sig/b", "sum-v")) {
		t.Error("fingerprinted nodes do not share across signatures")
	}
	if ShareKey(mk("sig/a", "sum-v")) == ShareKey(mk("sig/a", "sum-w")) {
		t.Error("different fingerprints share a key")
	}
}

// Multi-child canonicalization: subplan identity is recursive and per
// branch, so node numbering is irrelevant, build and probe branches are
// distinguished, and nested joins canonicalize through their whole subtree.
func TestShareKeyJoinCanonical(t *testing.T) {
	bt, pt := buildTables(t, 8, 8)
	dummyJoin := func(emit relop.Emit) (JoinOperator, error) {
		bs := storage.MustSchema(storage.Column{Name: "bv", Type: storage.Int64})
		ps := storage.MustSchema(storage.Column{Name: "pv", Type: storage.Int64})
		return relop.NewHashJoin(relop.Semi, bs, "bv", ps, "pv", emit)
	}
	// One join, two node orderings: [build, probe, join] vs [probe, build,
	// join]. The subtree keys at the join and at the build must agree.
	a := QuerySpec{
		Signature: "jc/a",
		Pivot:     2,
		Nodes: []NodeSpec{
			ScanNode("jc/build", bt, nil, []string{"bv"}, 16),
			ScanNode("jc/probe", pt, nil, []string{"pv"}, 16),
			{Name: "jc/join", Fingerprint: "semi", BuildInput: 0, ProbeInput: 1, Join: dummyJoin},
		},
	}
	b := QuerySpec{
		Signature: "jc/b",
		Pivot:     2,
		Nodes: []NodeSpec{
			ScanNode("jc/probe", pt, nil, []string{"pv"}, 16),
			ScanNode("jc/build", bt, nil, []string{"bv"}, 16),
			{Name: "jc/join", Fingerprint: "semi", BuildInput: 1, ProbeInput: 0, Join: dummyJoin},
		},
	}
	if ShareKey(a) != ShareKey(b) {
		t.Error("same join tree under different node numbering does not share a key")
	}
	if shareKeyAt(a, 0) != shareKeyAt(b, 1) {
		t.Error("same build subtree at different node indices does not share a key")
	}
	if BuildShareKey(a, 0) != BuildShareKey(b, 1) {
		t.Error("same build subtree does not share a build key")
	}
	if BuildShareKey(a, 0) == shareKeyAt(a, 0) {
		t.Error("build-state key must not collide with the fan-out key of the same subtree")
	}
	// Swapping the branches is a different join.
	swapped := a
	swapped.Nodes = append([]NodeSpec(nil), a.Nodes...)
	swapped.Nodes[2].BuildInput, swapped.Nodes[2].ProbeInput = 1, 0
	if ShareKey(a) == ShareKey(swapped) {
		t.Error("swapped build/probe branches share a key")
	}
	// Nested joins: the inner join's subtree feeds the outer build branch;
	// reordering the nodes must not change any level's key.
	nested := func(sig string, perm bool) QuerySpec {
		inner := NodeSpec{Name: "jc/inner", Fingerprint: "semi", Join: dummyJoin}
		outer := NodeSpec{Name: "jc/outer", Fingerprint: "semi2", Join: dummyJoin}
		if !perm {
			inner.BuildInput, inner.ProbeInput = 0, 1
			outer.BuildInput, outer.ProbeInput = 2, 3
			return QuerySpec{Signature: sig, Pivot: 4, Nodes: []NodeSpec{
				ScanNode("jc/build", bt, nil, []string{"bv"}, 16),
				ScanNode("jc/probe", pt, nil, []string{"pv"}, 16),
				inner,
				ScanNode("jc/probe2", pt, nil, []string{"pv"}, 32),
				outer,
			}}
		}
		inner.BuildInput, inner.ProbeInput = 1, 2
		outer.BuildInput, outer.ProbeInput = 3, 0
		return QuerySpec{Signature: sig, Pivot: 4, Nodes: []NodeSpec{
			ScanNode("jc/probe2", pt, nil, []string{"pv"}, 32),
			ScanNode("jc/build", bt, nil, []string{"bv"}, 16),
			ScanNode("jc/probe", pt, nil, []string{"pv"}, 16),
			inner,
			outer,
		}}
	}
	n1, n2 := nested("jc/n1", false), nested("jc/n2", true)
	if err := n1.Validate(); err != nil {
		t.Fatalf("nested spec invalid: %v", err)
	}
	if err := n2.Validate(); err != nil {
		t.Fatalf("permuted nested spec invalid: %v", err)
	}
	if ShareKey(n1) != ShareKey(n2) {
		t.Error("nested join trees under different numbering do not share a key")
	}
	if shareKeyAt(n1, 2) != shareKeyAt(n2, 3) {
		t.Error("inner join subtrees do not share a key across numberings")
	}
}

// Two queries with different signatures but a fingerprint-equal prefix must
// physically merge into one group and both complete correctly.
func TestCrossSignatureSharing(t *testing.T) {
	const rows = 1024
	tbl := scanTable(t, rows)
	e, err := New(Options{Workers: 2, StartPaused: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	a := sumSpec(tbl, "cross/a", "sum-v")
	b := sumSpec(tbl, "cross/b", "sum-v")
	ha, err := e.Submit(a, joinOnly{})
	if err != nil {
		t.Fatal(err)
	}
	hb, err := e.Submit(b, joinOnly{})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.GroupSize(ShareKey(a)); got != 2 {
		t.Fatalf("cross-signature group size = %d, want 2", got)
	}
	e.Start()
	wantSum := float64(rows) * float64(rows-1) / 2
	for i, h := range []*Handle{ha, hb} {
		res, err := h.Wait()
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
		if got := res.MustCol("total").F64[0]; got != wantSum {
			t.Errorf("member %d sum = %v, want %v", i, got, wantSum)
		}
	}
}
