package engine

import (
	"testing"
	"time"

	"repro/internal/storage"
)

// FanOutShare hands every consumer the same refcounted page, marked with
// its extra-reader count, and Writable then clones for all but the last
// owner.
func TestOutboxFanOutShare(t *testing.T) {
	s, err := NewScheduler(1)
	if err != nil {
		t.Fatal(err)
	}
	qa := NewPageQueue(s, "a", 4)
	qb := NewPageQueue(s, "b", 4)
	qc := NewPageQueue(s, "c", 4)
	ob := &outbox{outs: []*PageQueue{qa, qb, qc}, fanOut: FanOutShare}
	sch := storage.MustSchema(storage.Column{Name: "x", Type: storage.Int64})
	b := storage.NewBatch(sch, 1)
	if err := b.AppendRow(int64(7)); err != nil {
		t.Fatal(err)
	}
	ob.add(b)
	tsk := &Task{name: "x"}
	if !ob.flush(tsk) {
		t.Fatal("flush blocked unexpectedly")
	}
	got := make([]*storage.Batch, 3)
	for i, q := range []*PageQueue{qa, qb, qc} {
		got[i], _, _ = q.TryPop(tsk)
		if got[i] != b {
			t.Fatalf("consumer %d did not receive the shared original", i)
		}
	}
	if !b.Shared() {
		t.Fatal("fanned-out page not marked shared")
	}
	// Two consumers clone on write; the last inherits the original.
	w0, w1 := got[0].Writable(), got[1].Writable()
	if w0 == b || w1 == b {
		t.Error("Writable returned the shared page while readers remain")
	}
	if w2 := got[2].Writable(); w2 != b {
		t.Error("last owner did not get the original back (move)")
	}
}

// A delivery that blocks mid-fan-out and resumes must not double-count the
// page's readers.
func TestOutboxShareMarksOnce(t *testing.T) {
	s, err := NewScheduler(1)
	if err != nil {
		t.Fatal(err)
	}
	qa := NewPageQueue(s, "a", 1)
	qb := NewPageQueue(s, "b", 1)
	ob := &outbox{outs: []*PageQueue{qa, qb}, fanOut: FanOutShare}
	sch := storage.MustSchema(storage.Column{Name: "x", Type: storage.Int64})
	mk := func(v int64) *storage.Batch {
		b := storage.NewBatch(sch, 1)
		if err := b.AppendRow(v); err != nil {
			t.Fatal(err)
		}
		return b
	}
	first, second := mk(1), mk(2)
	ob.add(first)
	ob.add(second)
	tsk := &Task{name: "producer"}
	// Capacity 1: the first batch delivers, the second blocks on qa.
	if ob.flush(tsk) {
		t.Fatal("flush should have blocked on the full queue")
	}
	// Drain one page from qa and resume; repeat until everything delivered.
	for tries := 0; tries < 4 && !ob.flush(tsk); tries++ {
		if bb, ok, _ := qa.TryPop(tsk); ok {
			_ = bb
		}
		if bb, ok, _ := qb.TryPop(tsk); ok {
			_ = bb
		}
	}
	// Each page was fanned to 2 consumers: exactly 1 extra reader each,
	// despite the blocked and resumed deliveries.
	for i, b := range []*storage.Batch{first, second} {
		w := b.Writable() // drops one claim (clone)
		if w == b {
			t.Fatalf("batch %d had no reader claim", i)
		}
		if b.Shared() {
			t.Errorf("batch %d still shared after one release: readers were double-counted", i)
		}
	}
}

// A joinable submission-time group must appear in the work exchange as a
// subplan outlet with its member count, and retire when the pivot's output
// ends.
func TestEngineOutletRegistration(t *testing.T) {
	tbl := scanTable(t, 512)
	e, err := New(Options{Workers: 1, StartPaused: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	spec := scanSpec(tbl, 32)
	h1, err := e.Submit(spec, joinOnly{})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := e.Submit(spec, joinOnly{})
	if err != nil {
		t.Fatal(err)
	}
	o := e.Exchange().LookupOutlet(ShareKey(spec))
	if o == nil {
		t.Fatal("joinable group published no outlet")
	}
	if got := o.Consumers(); got != 2 {
		t.Errorf("outlet consumers = %d, want 2", got)
	}
	if got := e.Exchange().OutletsInFlight(); got != 1 {
		t.Errorf("OutletsInFlight = %d, want 1", got)
	}
	e.Start()
	for _, h := range []*Handle{h1, h2} {
		if _, err := h.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.Exchange().OutletsInFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("outlet never retired after the pivot finished")
		}
		time.Sleep(50 * time.Microsecond)
	}
}
