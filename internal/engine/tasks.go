package engine

import (
	"sync"
	"time"

	"repro/internal/storage"
)

// outbox manages an operator's output side: buffered batches awaiting
// delivery, fan-out to multiple consumers (sharers), and per-consumer
// copying. Delivery is sequential across consumers — the serialization the
// paper identifies as the pivot's fundamental cost ("the pivot must
// sequentially output results to all M consumers", Section 6.2).
type outbox struct {
	mu           sync.Mutex
	outs         []*PageQueue
	pending      []*storage.Batch
	nextConsumer int
	fanOut       FanOutMode
	onFirstEmit  func()
	// retire, when set, replaces queue closure in closeAll: parallel clones
	// share one fan-in queue, which must close only after the last clone
	// retires (see fanInCloser), not when the first one finishes.
	retire func()
	// onClosed, when set, runs once after the output stream has ended (all
	// consumer queues closed); the engine retires the group's work-exchange
	// outlet through it.
	onClosed   func()
	headMarked bool
	emitted    bool
	closed     bool
}

// add buffers a batch for delivery. The first add seals the sharing group
// via onFirstEmit (late joiners would miss this page).
func (o *outbox) add(b *storage.Batch) {
	o.mu.Lock()
	first := !o.emitted
	o.emitted = true
	o.pending = append(o.pending, b)
	o.mu.Unlock()
	if first && o.onFirstEmit != nil {
		o.onFirstEmit()
	}
}

// attach adds a consumer queue. Only valid before the first emit (enforced
// by the engine's group admission under its own lock). A closed outbox can
// still be reached by an attach racing closeAll's seal of the group: the
// stream ended with zero emissions, so the consumer's correct input is the
// empty, already-ended stream — close its queue instead of stranding it.
func (o *outbox) attach(q *PageQueue) {
	o.mu.Lock()
	closed := o.closed
	if !closed {
		o.outs = append(o.outs, q)
	}
	o.mu.Unlock()
	if closed {
		q.Close()
	}
}

// consumers returns the current fan-out width.
func (o *outbox) consumers() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.outs)
}

// deliverSeq pushes b to queues[*next:] sequentially — the serialization
// the paper identifies as the pivot's fundamental cost. What each consumer
// receives depends on the fan-out mode: FanOutShare hands every consumer
// the same refcounted read-only pointer (the caller marks the page's reader
// count once, via markShared, before the first delivery); FanOutClone
// deep-copies per consumer except the last, which receives the original (a
// move — the physical s of the model). Single-consumer hand-off always
// moves. Returns false when a full queue blocked progress, leaving *next
// at the resume position (the task should return Blocked; the queue
// registered it for wake-up).
func deliverSeq(t *Task, b *storage.Batch, queues []*PageQueue, next *int, mode FanOutMode) bool {
	for *next < len(queues) {
		out := b
		if mode == FanOutClone && *next < len(queues)-1 {
			out = b.Clone()
		}
		if !queues[*next].TryPush(t, out) {
			return false
		}
		*next++
	}
	return true
}

// markShared applies FanOutShare's reader accounting exactly once per batch:
// marked tracks whether the head batch was already marked, so a delivery
// that blocks mid-fan-out and resumes does not double-count its readers.
func markShared(b *storage.Batch, consumers int, mode FanOutMode, marked *bool) {
	if mode == FanOutShare && consumers > 1 && !*marked {
		b.MarkShared(consumers - 1)
	}
	*marked = true
}

// flush delivers pending batches to all consumers in order. It returns true
// when everything was delivered, false when a full queue blocked progress.
func (o *outbox) flush(t *Task) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	for len(o.pending) > 0 {
		markShared(o.pending[0], len(o.outs), o.fanOut, &o.headMarked)
		if !deliverSeq(t, o.pending[0], o.outs, &o.nextConsumer, o.fanOut) {
			return false
		}
		o.pending = o.pending[1:]
		o.nextConsumer = 0
		o.headMarked = false
	}
	return true
}

// closeAll closes every consumer queue, or defers to the retire hook when
// one is set; either way onClosed then fires once (idempotent overall).
func (o *outbox) closeAll() {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return
	}
	o.closed = true
	outs := append([]*PageQueue(nil), o.outs...)
	retire := o.retire
	onClosed := o.onClosed
	o.mu.Unlock()
	if retire != nil {
		retire()
	} else {
		for _, q := range outs {
			q.Close()
		}
	}
	if onClosed != nil {
		onClosed()
	}
}

// busyClock accumulates per-node busy time for profiling (Section 3.1's
// measurement input).
type busyClock struct {
	enabled bool
	mu      sync.Mutex
	nanos   map[string]int64
}

func newBusyClock(enabled bool) *busyClock {
	return &busyClock{enabled: enabled, nanos: make(map[string]int64)}
}

func (c *busyClock) measure(name string, f func()) {
	if !c.enabled {
		f()
		return
	}
	start := time.Now()
	f()
	d := time.Since(start).Nanoseconds()
	c.mu.Lock()
	c.nanos[name] += d
	c.mu.Unlock()
}

func (c *busyClock) snapshot() map[string]time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]time.Duration, len(c.nanos))
	for k, v := range c.nanos {
		out[k] = time.Duration(v)
	}
	return out
}

// sourceTask drives a PageSource: one Next per quantum, output via outbox.
type sourceTask struct {
	name  string
	src   PageSource
	out   *outbox
	clock *busyClock
	fail  func(error)
	eof   bool
}

func (st *sourceTask) step(t *Task) Status {
	flushed := false
	st.clock.measure(st.name, func() { flushed = st.out.flush(t) })
	if !flushed {
		return Blocked
	}
	if st.eof {
		st.out.closeAll()
		return Done
	}
	var b *storage.Batch
	var eof bool
	var err error
	st.clock.measure(st.name, func() { b, eof, err = st.src.Next() })
	if err != nil {
		st.fail(err)
		st.out.closeAll()
		return Done
	}
	st.eof = eof
	if b != nil {
		st.out.add(b)
	}
	return Again
}

// opTask drives a unary operator: pop one page, Push it, flush outputs.
// releaseInput marks operators that consume their input (relop.Consuming):
// the task drops the page's reader claim the moment Push returns, so a
// sibling fan-out consumer that later adopts the page can move it instead
// of cloning. Pass-through operators keep the claim alive downstream.
type opTask struct {
	name         string
	push         func(*storage.Batch) error
	finish       func() error
	in           *PageQueue
	out          *outbox
	clock        *busyClock
	fail         func(error)
	releaseInput bool
	finished     bool
}

func (ot *opTask) step(t *Task) Status {
	flushed := false
	ot.clock.measure(ot.name, func() { flushed = ot.out.flush(t) })
	if !flushed {
		return Blocked
	}
	if ot.finished {
		ot.out.closeAll()
		return Done
	}
	b, ok, done := ot.in.TryPop(t)
	switch {
	case ok:
		var err error
		ot.clock.measure(ot.name, func() { err = ot.push(b) })
		if err != nil {
			ot.fail(err)
			ot.out.closeAll()
			return Done
		}
		if ot.releaseInput {
			b.Release()
		}
		return Again
	case done:
		var err error
		ot.clock.measure(ot.name, func() { err = ot.finish() })
		if err != nil {
			ot.fail(err)
			ot.out.closeAll()
			return Done
		}
		ot.finished = true
		return Again // flush whatever Finish emitted, then close
	default:
		return Blocked
	}
}

// joinTask drives a JoinOperator: drains the build input first, then seals
// the build and streams the probe input. Bounded probe queues throttle the
// probe-side producer while the build runs — the stop-&-go decoupling of
// Section 5.3.3 falls out of the queue discipline.
type joinTask struct {
	name         string
	join         JoinOperator
	build        *PageQueue
	probe        *PageQueue
	out          *outbox
	clock        *busyClock
	fail         func(error)
	releaseInput bool
	building     bool
	finished     bool
}

func (jt *joinTask) step(t *Task) Status {
	flushed := false
	jt.clock.measure(jt.name, func() { flushed = jt.out.flush(t) })
	if !flushed {
		return Blocked
	}
	if jt.finished {
		jt.out.closeAll()
		return Done
	}
	if jt.building {
		b, ok, done := jt.build.TryPop(t)
		switch {
		case ok:
			var err error
			jt.clock.measure(jt.name, func() { err = jt.join.PushBuild(b) })
			if err != nil {
				jt.fail(err)
				jt.out.closeAll()
				return Done
			}
			if jt.releaseInput {
				b.Release()
			}
			return Again
		case done:
			var err error
			jt.clock.measure(jt.name, func() { err = jt.join.FinishBuild() })
			if err != nil {
				jt.fail(err)
				jt.out.closeAll()
				return Done
			}
			jt.building = false
			return Again
		default:
			return Blocked
		}
	}
	b, ok, done := jt.probe.TryPop(t)
	switch {
	case ok:
		var err error
		jt.clock.measure(jt.name, func() { err = jt.join.Push(b) })
		if err != nil {
			jt.fail(err)
			jt.out.closeAll()
			return Done
		}
		if jt.releaseInput {
			b.Release()
		}
		return Again
	case done:
		var err error
		jt.clock.measure(jt.name, func() { err = jt.join.Finish() })
		if err != nil {
			jt.fail(err)
			jt.out.closeAll()
			return Done
		}
		jt.finished = true
		return Again
	default:
		return Blocked
	}
}

// sinkTask drains the root queue into the query's result and completes the
// handle.
type sinkTask struct {
	in       *PageQueue
	result   *storage.Batch
	complete func(*storage.Batch)
}

func (sk *sinkTask) step(t *Task) Status {
	for {
		b, ok, done := sk.in.TryPop(t)
		switch {
		case ok:
			if sk.result.Len() == 0 {
				// Adopt the first page wholesale through the refcounted
				// write path: when this sink is the page's only owner the
				// adoption is a move (zero copy — the common case for
				// single-page aggregate results); while other readers hold
				// it, Writable yields a private clone instead.
				sk.result = b.Writable()
			} else {
				sk.result.AppendBatch(b)
				// The content is copied; drop this sink's reader claim so a
				// sibling that has yet to adopt the page can move it.
				b.Release()
			}
		case done:
			sk.complete(sk.result)
			return Done
		default:
			return Blocked
		}
	}
}
