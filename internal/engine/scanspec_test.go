package engine

import (
	"testing"

	"repro/internal/relop"
	"repro/internal/storage"
)

// twoColTable builds a table with int and string columns and n rows.
func twoColTable(t *testing.T, n int) *storage.Table {
	t.Helper()
	tbl := storage.NewTable("edge", storage.MustSchema(
		storage.Column{Name: "v", Type: storage.Int64},
		storage.Column{Name: "tag", Type: storage.String},
	))
	for i := 0; i < n; i++ {
		tbl.MustAppend(int64(i), "row")
	}
	return tbl
}

// A nil Cols projection must scan every column of the table, in schema
// order.
func TestScanSpecNilColsProjectsAll(t *testing.T) {
	tbl := twoColTable(t, 8)
	sc := &ScanSpec{Table: tbl}
	src, err := sc.newSource()
	if err != nil {
		t.Fatal(err)
	}
	got := src.Schema()
	want := tbl.Schema()
	if got.Arity() != want.Arity() {
		t.Fatalf("nil-Cols schema arity = %d, want %d", got.Arity(), want.Arity())
	}
	for i, c := range want.Cols {
		if got.Cols[i].Name != c.Name || got.Cols[i].Type != c.Type {
			t.Errorf("column %d = %+v, want %+v", i, got.Cols[i], c)
		}
	}
	b, eof, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	if b == nil || b.Len() != 8 || !eof {
		t.Fatalf("Next over 8 rows: batch=%v eof=%v", b, eof)
	}
	if b.MustCol("tag").Str[0] != "row" {
		t.Error("string column not scanned")
	}
}

// An empty table must report eof without producing a batch, and a full
// engine query over it must still complete (a global aggregate owes one
// zero row over empty input).
func TestScanSpecEmptyTable(t *testing.T) {
	tbl := twoColTable(t, 0)
	sc := &ScanSpec{Table: tbl, Cols: []string{"v"}}
	src, err := sc.newSource()
	if err != nil {
		t.Fatal(err)
	}
	b, eof, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	if b != nil || !eof {
		t.Fatalf("empty table scan: batch=%v eof=%v, want nil/true", b, eof)
	}

	e, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	scanSchema := storage.MustSchema(storage.Column{Name: "v", Type: storage.Int64})
	spec := QuerySpec{
		Signature: "edge/empty",
		Pivot:     0,
		Nodes: []NodeSpec{
			ScanNode("edge/scan", tbl, nil, []string{"v"}, 16),
			{Name: "edge/agg", Input: 0, Op: func(emit relop.Emit) (relop.Operator, error) {
				return relop.NewHashAgg(scanSchema, nil, []relop.AggSpec{
					{Func: relop.Count, As: "cnt"},
				}, emit)
			}},
		},
	}
	h, err := e.Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.MustCol("cnt").I64[0] != 0 {
		t.Errorf("empty-table aggregate = %v rows, want one zero row", res.Len())
	}
}

// PageRows <= 0 derives the quantum from the page size and the projected
// schema — not the table's full schema — and explicit values are honored.
func TestScanSpecPageRowsDerivation(t *testing.T) {
	tbl := twoColTable(t, 100)
	derived := &ScanSpec{Table: tbl, Cols: []string{"v"}}
	src, err := derived.newSource()
	if err != nil {
		t.Fatal(err)
	}
	proj, err := tbl.Schema().Project("v")
	if err != nil {
		t.Fatal(err)
	}
	if want := storage.RowsPerPage(proj, storage.DefaultPageSize); src.pageRows != want {
		t.Errorf("derived pageRows = %d, want %d", src.pageRows, want)
	}
	negative := &ScanSpec{Table: tbl, Cols: []string{"v"}, PageRows: -7}
	nsrc, err := negative.newSource()
	if err != nil {
		t.Fatal(err)
	}
	if nsrc.pageRows != src.pageRows {
		t.Errorf("negative PageRows = %d, want derived %d", nsrc.pageRows, src.pageRows)
	}
	explicit := &ScanSpec{Table: tbl, Cols: []string{"v"}, PageRows: 13}
	esrc, err := explicit.newSource()
	if err != nil {
		t.Fatal(err)
	}
	if esrc.pageRows != 13 {
		t.Errorf("explicit PageRows = %d, want 13", esrc.pageRows)
	}
	// The explicit quantum drives batch sizes: 100 rows in pages of 13.
	rows, pages := 0, 0
	for {
		b, eof, err := esrc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b != nil {
			rows += b.Len()
			pages++
			if b.Len() > 13 {
				t.Errorf("page of %d rows exceeds quantum 13", b.Len())
			}
		}
		if eof {
			break
		}
	}
	if rows != 100 || pages != 8 {
		t.Errorf("scan delivered %d rows in %d pages, want 100 in 8", rows, pages)
	}
}
