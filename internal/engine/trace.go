package engine

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// This file wires the telemetry layer (internal/obs) into the engine: one
// lifecycle trace per submitted query, a decision record stamped at the
// moment the submit path commits to an execution regime, and the
// model-accuracy audit pairing each decision's predicted benefit with the
// measured outcome at completion.
//
// Cost discipline: span events append under the trace's own mutex and occur
// a handful of times per query; the per-quantum accounting is one atomic
// add (traceStep), with time.Now() only on Blocked transitions. A disabled
// tracer (Options.TraceCap < 0) reduces every call to a nil-receiver test.

// Tracer returns the engine's per-query lifecycle tracer (nil when tracing
// is disabled).
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// Audit returns the engine's model-accuracy audit: predicted-vs-measured
// benefit per decision kind.
func (e *Engine) Audit() *obs.Audit { return e.audit }

// Parks returns the number of idle-park episodes the scheduler's workers
// have taken since startup — the complement of Steals for judging whether
// the work-stealing balancer keeps workers fed.
func (e *Engine) Parks() int64 { return e.sched.Parks() }

// Trace returns the handle's lifecycle trace (nil when tracing is off).
func (h *Handle) Trace() *obs.QueryTrace { return h.trace }

// Decision returns the submit-time decision record stamped on the handle:
// the regime the query was committed to and the model's predicted benefit.
func (h *Handle) Decision() core.DecisionRecord { return h.decision }

// traceStep wraps a task's step function with per-quantum accounting on the
// owning query's trace: one atomic add per quantum, and blocked-time
// measured across Blocked→run transitions. The closure's blockedAt is
// task-local state — a task steps on one worker at a time — so it needs no
// synchronization. With tracing off the step is returned untouched.
func traceStep(t *obs.QueryTrace, step func(*Task) Status) func(*Task) Status {
	if t == nil {
		return step
	}
	var blockedAt time.Time
	return func(tk *Task) Status {
		if !blockedAt.IsZero() {
			t.AddWait(time.Since(blockedAt))
			blockedAt = time.Time{}
		}
		t.IncQuanta()
		st := step(tk)
		if st == Blocked {
			blockedAt = time.Now()
		}
		return st
	}
}

// stampDecision records the submit-time decision on the handle. It must run
// before any of the query's tasks spawn (the completion path reads the
// record without a lock; pre-spawn stamping gives the ordering for free). A
// failed attach attempt spawns nothing, so restamping on the next candidate
// is safe.
func (e *Engine) stampDecision(h *Handle, kind string, pivot, m int, q core.Query, z, speedup float64) {
	h.decision = core.DecisionRecord{
		Kind:             kind,
		Pivot:            pivot,
		GroupSize:        m,
		PredictedSpeedup: speedup,
		PredictedZ:       z,
		UPrime:           q.UPrime(),
	}
}

// emitDecision appends the pivot-choice span (with the model's predicted
// Z/speedup) plus the anchor/attach event, once the stamped decision has
// actually committed.
func emitDecision(h *Handle, role, detail string) {
	if h.trace == nil {
		return
	}
	d := h.decision
	h.trace.EventPredicted("pivot",
		fmt.Sprintf("%s pivot=%d m=%d z=%.3g", d.Kind, d.Pivot, d.GroupSize, d.PredictedZ),
		d.PredictedSpeedup)
	h.trace.Event(role, detail)
}

// shareBenefit prices pivot-level sharing for the decision record: the
// sharing margin Z and the throughput ratio shared/unshared at group size m.
func (e *Engine) shareBenefit(q core.Query, m int) (z, speedup float64) {
	z = core.Z(q, m, e.env)
	speedup = 1
	if us := core.UnsharedX(q, m, e.env); us > 0 {
		speedup = core.SharedX(q, m, e.env) / us
	}
	return z, speedup
}

// buildBenefit prices build-side sharing the same way.
func (e *Engine) buildBenefit(q core.Query, m int) (z, speedup float64) {
	return core.BuildShareZ(q, m, e.env), core.BuildShareSpeedup(q, m, e.env)
}

// calibEWMAAlpha is the weight of a new run-alone sample in the wall-per-u′
// calibration — slow enough to ride out scheduling noise, fast enough to
// track a load shift within tens of completions.
const calibEWMAAlpha = 0.2

// observeCompletion closes out a query's telemetry: the completion span
// (with the measured sharing benefit next to the prediction) and the audit
// observation. Queries that ran effectively alone — kind "alone", or an
// anchor whose group never grew — also feed the wall-time-per-u′
// calibration that converts the model's alone estimate into an expected
// wall time for everyone else.
func (e *Engine) observeCompletion(h *Handle, err error, finalSize int, wall time.Duration) {
	if err != nil {
		h.trace.Event("complete", "error: "+err.Error())
		return
	}
	d := h.decision
	aloneLike := d.Kind == "alone" || (d.Kind == "anchor" && finalSize <= 1)
	e.mu.Lock()
	if aloneLike && d.UPrime > 0 && wall > 0 {
		sample := float64(wall) / d.UPrime
		if e.calibNS == 0 {
			e.calibNS = sample
		} else {
			e.calibNS += calibEWMAAlpha * (sample - e.calibNS)
		}
	}
	calib := e.calibNS
	e.mu.Unlock()

	var measured float64
	if calib > 0 && d.UPrime > 0 && wall > 0 {
		// Expected alone wall time over measured wall time: >1 means the
		// chosen regime beat running alone.
		measured = calib * d.UPrime / float64(wall)
	}
	pred := d.PredictedSpeedup
	if pred <= 0 {
		pred = 1
	}
	kind := d.Kind
	if kind == "" {
		kind = "alone"
	}
	if measured > 0 {
		e.audit.Observe(kind, pred, measured)
	}
	h.trace.EventMeasured("complete",
		fmt.Sprintf("wall=%s m=%d", wall.Round(time.Microsecond), finalSize),
		pred, measured)
}
