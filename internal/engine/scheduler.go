// Package engine implements Cordoba, the staged database execution engine of
// Section 3.2: queries decompose into operator tasks ("packets") routed
// through stages, intermediate results move between operators as packed
// pages through bounded queues (slow consumers throttle producers), and
// work sharing merges compatible queries at a pivot operator whose output
// then fans out to every sharer — paying the per-consumer cost s the
// analytical model charges.
//
// Processor emulation: all tasks run on a cooperative scheduler with a fixed
// number of worker goroutines. A task executes one bounded quantum (one page
// of work) per step and then yields, emulating the round-robin fairness of
// the paper's UltraSparc T1 testbed with n hardware contexts.
//
// The scheduler is morsel-style: each worker owns a private FIFO run queue
// and steals from its peers when its own runs dry, so ready-task dispatch
// never serializes on a global lock. Parking and waking a blocked task is a
// per-task atomic handshake (see wake), so a producer waking a parked
// consumer touches only that task's state plus one per-worker queue — the
// page-hop hot path shares no global mutable state at all.
package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Status is a task step's outcome.
type Status int

const (
	// Again means the task has more work and should be rescheduled.
	Again Status = iota
	// Blocked means the task waits on a queue; the queue wakes it.
	Blocked
	// Done means the task finished and leaves the scheduler.
	Done
)

// taskState tracks where a task currently lives. The zero value is
// stateQueued, so a Task constructed bare (tests build them without Spawn)
// treats every wake as a no-op on an already-runnable task.
type taskState int32

const (
	stateQueued taskState = iota
	stateRunning
	stateParked
	stateFinished
)

// Task is a cooperative unit of execution. Step performs one bounded
// quantum of work and reports what to do next.
//
// state and wakeup form the park/wake handshake: a waker CASes
// stateParked→stateQueued and re-enqueues the task itself, or — when the
// task is mid-step — sets wakeup so the worker retries instead of parking.
// Both sides re-check after publishing their half, so a wake can never slip
// between "step returned Blocked" and "task parked".
type Task struct {
	name   string
	step   func(*Task) Status
	state  atomic.Int32
	wakeup atomic.Bool // a queue woke the task while it was running
}

// runQueue is one worker's private FIFO of runnable tasks: a growable ring
// under its own mutex, with an atomic length so thieves and idle-parking
// workers can scan for work without touching the lock.
type runQueue struct {
	mu   sync.Mutex
	buf  []*Task
	head int
	size int
	n    atomic.Int32
}

func (q *runQueue) push(t *Task) {
	q.mu.Lock()
	if q.size == len(q.buf) {
		grown := make([]*Task, maxInt(2*len(q.buf), 8))
		for i := 0; i < q.size; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf, q.head = grown, 0
	}
	q.buf[(q.head+q.size)%len(q.buf)] = t
	q.size++
	q.n.Store(int32(q.size))
	q.mu.Unlock()
}

// pop removes the oldest task (FIFO preserves the round-robin fairness of
// the emulated testbed; thieves use it too, so stolen work is the victim's
// oldest — the task that has waited longest).
func (q *runQueue) pop() *Task {
	if q.n.Load() == 0 {
		return nil
	}
	q.mu.Lock()
	if q.size == 0 {
		q.mu.Unlock()
		return nil
	}
	t := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	q.n.Store(int32(q.size))
	q.mu.Unlock()
	return t
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Scheduler runs tasks on a fixed pool of worker goroutines, emulating a
// machine with Workers processors. Tasks yield after each quantum; each
// worker serves its own run queue FIFO and steals from peers when idle.
type Scheduler struct {
	workers int
	queues  []*runQueue
	// next round-robins external spawns and wakes across the worker queues.
	next atomic.Uint64
	// steals counts successful cross-queue steals (observability for the
	// fairness tests and the scaling benchmark); parks counts idle-park
	// episodes — a worker finding every queue empty and going to sleep.
	steals atomic.Int64
	parks  atomic.Int64
	// queuedPages counts pages currently buffered across every PageQueue
	// wired to this scheduler — the engine-wide intermediate-result
	// footprint, sampled by the metrics registry.
	queuedPages atomic.Int64

	// The idle lot: workers that found every queue empty park here. idlers
	// is read lock-free by enqueuers, which take idleMu only when someone is
	// actually parked — the enqueue hot path on a busy scheduler never
	// touches a shared lock.
	idleMu   sync.Mutex
	idleCond *sync.Cond
	idlers   atomic.Int32

	// live counts tasks not yet Done; doneCond broadcasts (under doneMu)
	// when it reaches zero, for WaitIdle.
	live     atomic.Int64
	doneMu   sync.Mutex
	doneCond *sync.Cond

	startMu sync.Mutex
	started bool
	stopped atomic.Bool
	wg      sync.WaitGroup
}

// NewScheduler creates a scheduler with the given number of workers
// (emulated processors).
func NewScheduler(workers int) (*Scheduler, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("engine: workers must be positive, got %d", workers)
	}
	s := &Scheduler{workers: workers, queues: make([]*runQueue, workers)}
	for i := range s.queues {
		s.queues[i] = &runQueue{}
	}
	s.idleCond = sync.NewCond(&s.idleMu)
	s.doneCond = sync.NewCond(&s.doneMu)
	return s, nil
}

// Workers returns the emulated processor count.
func (s *Scheduler) Workers() int { return s.workers }

// Steals returns the cumulative count of tasks taken from a peer's queue.
func (s *Scheduler) Steals() int64 { return s.steals.Load() }

// Parks returns the cumulative count of idle-park episodes: a worker that
// found every run queue empty and slept on the idle lot.
func (s *Scheduler) Parks() int64 { return s.parks.Load() }

// QueuedPages returns the number of pages currently buffered across every
// PageQueue attached to this scheduler.
func (s *Scheduler) QueuedPages() int64 { return s.queuedPages.Load() }

// RunQueueDepth returns the number of runnable tasks currently enqueued
// across all worker queues (parked and running tasks excluded).
func (s *Scheduler) RunQueueDepth() int64 {
	var n int64
	for _, q := range s.queues {
		n += int64(q.n.Load())
	}
	return n
}

// Start launches the worker pool. It is idempotent.
func (s *Scheduler) Start() {
	s.startMu.Lock()
	defer s.startMu.Unlock()
	if s.started {
		return
	}
	s.started = true
	for i := 0; i < s.workers; i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
}

// Stop shuts the pool down after in-flight quanta complete and waits for the
// workers to exit. Parked and queued tasks are abandoned.
func (s *Scheduler) Stop() {
	if !s.stopped.Swap(true) {
		s.idleMu.Lock()
		s.idleCond.Broadcast()
		s.idleMu.Unlock()
		s.doneMu.Lock()
		s.doneCond.Broadcast()
		s.doneMu.Unlock()
	}
	s.wg.Wait()
}

// enqueue makes t runnable on queue qi (mod workers) and pokes an idle
// worker if one is parked. Callers have already set t's state to
// stateQueued (or spawned it so).
func (s *Scheduler) enqueue(t *Task, qi int) {
	s.queues[qi%s.workers].push(t)
	if s.idlers.Load() > 0 {
		s.idleMu.Lock()
		s.idleCond.Signal()
		s.idleMu.Unlock()
	}
}

// Spawn registers a new task and makes it runnable. Spawns round-robin
// across the worker queues so a burst of tasks spreads without stealing.
func (s *Scheduler) Spawn(name string, step func(*Task) Status) *Task {
	t := &Task{name: name, step: step}
	t.state.Store(int32(stateQueued))
	s.live.Add(1)
	s.enqueue(t, int(s.next.Add(1)-1))
	return t
}

// WaitIdle blocks until no live tasks remain (all Done) or the scheduler
// stops.
func (s *Scheduler) WaitIdle() {
	s.doneMu.Lock()
	defer s.doneMu.Unlock()
	for s.live.Load() > 0 && !s.stopped.Load() {
		s.doneCond.Wait()
	}
}

// Live returns the number of tasks not yet Done.
func (s *Scheduler) Live() int { return int(s.live.Load()) }

// wake moves a parked task back to a run queue. Waking a running task
// defers the wake to the end of its current step (the worker re-enqueues
// instead of parking); waking a queued or finished task is a no-op. Unlike
// the former global-lock design, the handshake is entirely per-task: the
// CAS parked→queued elects exactly one enqueuer however many queues wake
// the task at once.
func (s *Scheduler) wake(t *Task) {
	for {
		switch taskState(t.state.Load()) {
		case stateParked:
			if t.state.CompareAndSwap(int32(stateParked), int32(stateQueued)) {
				s.enqueue(t, int(s.next.Add(1)-1))
				return
			}
		case stateRunning:
			t.wakeup.Store(true)
			// The worker may have parked between our load and the store; if
			// so it might also have consumed wakeup already — loop and settle
			// through the CAS arm, which is race-free.
			if taskState(t.state.Load()) != stateParked {
				return
			}
		default:
			// Queued tasks will run and re-poll their queues; finished tasks
			// are gone; a bare zero-value Task (tests) reads as queued.
			return
		}
	}
}

// findWork returns the next runnable task for worker id: its own queue
// first, then a steal sweep over the peers.
func (s *Scheduler) findWork(id int) *Task {
	if t := s.queues[id].pop(); t != nil {
		return t
	}
	for i := 1; i < s.workers; i++ {
		if t := s.queues[(id+i)%s.workers].pop(); t != nil {
			s.steals.Add(1)
			return t
		}
	}
	return nil
}

// anyQueued reports whether any run queue holds a task (lock-free scan).
func (s *Scheduler) anyQueued() bool {
	for _, q := range s.queues {
		if q.n.Load() > 0 {
			return true
		}
	}
	return false
}

func (s *Scheduler) worker(id int) {
	defer s.wg.Done()
	for {
		if s.stopped.Load() {
			return
		}
		t := s.findWork(id)
		if t == nil {
			// Idle-park handshake: publish idleness, then re-scan before
			// sleeping. An enqueuer that missed our idlers increment must
			// have pushed before our re-scan (both sides sequence an atomic
			// store before an atomic load), so either we see its task here
			// or it sees us and signals.
			s.idleMu.Lock()
			s.idlers.Add(1)
			s.parks.Add(1)
			for !s.stopped.Load() && !s.anyQueued() {
				s.idleCond.Wait()
			}
			s.idlers.Add(-1)
			s.idleMu.Unlock()
			continue
		}

		t.state.Store(int32(stateRunning))
		// A stale wakeup from a previous epoch would only force one spurious
		// retry later; clear it now. Clearing cannot lose a fresh wake: any
		// waker that set the flag did so after its queue mutation committed,
		// which the step about to run will observe directly.
		t.wakeup.Store(false)

		st := t.step(t)

		switch st {
		case Again:
			t.state.Store(int32(stateQueued))
			s.enqueue(t, id)
		case Blocked:
			t.state.Store(int32(stateParked))
			if t.wakeup.Swap(false) {
				// A queue changed state during the step; retry rather than
				// parking and losing the wakeup. The CAS may lose to a
				// concurrent wake() that already re-enqueued the task — then
				// the wake is theirs and we must not double-enqueue.
				if t.state.CompareAndSwap(int32(stateParked), int32(stateQueued)) {
					s.enqueue(t, id)
				}
			}
		case Done:
			t.state.Store(int32(stateFinished))
			if s.live.Add(-1) == 0 {
				s.doneMu.Lock()
				s.doneCond.Broadcast()
				s.doneMu.Unlock()
			}
		}
	}
}
