// Package engine implements Cordoba, the staged database execution engine of
// Section 3.2: queries decompose into operator tasks ("packets") routed
// through stages, intermediate results move between operators as packed
// pages through bounded queues (slow consumers throttle producers), and
// work sharing merges compatible queries at a pivot operator whose output
// then fans out to every sharer — paying the per-consumer cost s the
// analytical model charges.
//
// Processor emulation: all tasks run on a cooperative scheduler with a fixed
// number of worker goroutines. A task executes one bounded quantum (one page
// of work) per step and then yields, emulating the round-robin fairness of
// the paper's UltraSparc T1 testbed with n hardware contexts.
package engine

import (
	"fmt"
	"sync"
)

// Status is a task step's outcome.
type Status int

const (
	// Again means the task has more work and should be rescheduled.
	Again Status = iota
	// Blocked means the task waits on a queue; the queue wakes it.
	Blocked
	// Done means the task finished and leaves the scheduler.
	Done
)

// taskState tracks where a task currently lives.
type taskState int

const (
	stateQueued taskState = iota
	stateRunning
	stateParked
	stateFinished
)

// Task is a cooperative unit of execution. Step performs one bounded
// quantum of work and reports what to do next.
type Task struct {
	name   string
	step   func(*Task) Status
	state  taskState
	wakeup bool // a queue woke the task while it was running
}

// Scheduler runs tasks on a fixed pool of worker goroutines, emulating a
// machine with Workers processors. Tasks yield after each quantum; ready
// tasks are served FIFO (round-robin among runnable tasks, like the T1's
// per-core round-robin issue).
type Scheduler struct {
	workers int

	mu      sync.Mutex
	cond    *sync.Cond // signals: ready task available or shutdown
	idle    *sync.Cond // signals: live count changed
	ready   []*Task
	live    int
	started bool
	stopped bool
	wg      sync.WaitGroup
}

// NewScheduler creates a scheduler with the given number of workers
// (emulated processors).
func NewScheduler(workers int) (*Scheduler, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("engine: workers must be positive, got %d", workers)
	}
	s := &Scheduler{workers: workers}
	s.cond = sync.NewCond(&s.mu)
	s.idle = sync.NewCond(&s.mu)
	return s, nil
}

// Workers returns the emulated processor count.
func (s *Scheduler) Workers() int { return s.workers }

// Start launches the worker pool. It is idempotent.
func (s *Scheduler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	for i := 0; i < s.workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Stop shuts the pool down after in-flight quanta complete and waits for the
// workers to exit. Parked tasks are abandoned.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.stopped = true
	s.cond.Broadcast()
	s.idle.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// Spawn registers a new task and makes it runnable.
func (s *Scheduler) Spawn(name string, step func(*Task) Status) *Task {
	t := &Task{name: name, step: step, state: stateQueued}
	s.mu.Lock()
	s.live++
	s.ready = append(s.ready, t)
	s.cond.Signal()
	s.mu.Unlock()
	return t
}

// WaitIdle blocks until no live tasks remain (all Done) or the scheduler
// stops.
func (s *Scheduler) WaitIdle() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.live > 0 && !s.stopped {
		s.idle.Wait()
	}
}

// Live returns the number of tasks not yet Done.
func (s *Scheduler) Live() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live
}

// wakeLocked moves a parked task back to the ready list. Callers hold s.mu.
// Waking a running task defers the wake to the end of its current step;
// waking a queued or finished task is a no-op.
func (s *Scheduler) wakeLocked(t *Task) {
	switch t.state {
	case stateParked:
		t.state = stateQueued
		s.ready = append(s.ready, t)
		s.cond.Signal()
	case stateRunning:
		t.wakeup = true
	}
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.ready) == 0 && !s.stopped {
			s.cond.Wait()
		}
		if s.stopped {
			s.mu.Unlock()
			return
		}
		t := s.ready[0]
		s.ready = s.ready[1:]
		t.state = stateRunning
		s.mu.Unlock()

		st := t.step(t)

		s.mu.Lock()
		switch st {
		case Again:
			t.state = stateQueued
			t.wakeup = false
			s.ready = append(s.ready, t)
			s.cond.Signal()
		case Blocked:
			if t.wakeup {
				// A queue changed state during the step; retry immediately
				// rather than parking and losing the wakeup.
				t.wakeup = false
				t.state = stateQueued
				s.ready = append(s.ready, t)
				s.cond.Signal()
			} else {
				t.state = stateParked
			}
		case Done:
			t.state = stateFinished
			s.live--
			if s.live == 0 {
				s.idle.Broadcast()
			}
		}
		s.mu.Unlock()
	}
}
