package engine

import (
	"repro/internal/storage"
)

// PageQueue is the bounded page buffer connecting a producer operator to a
// consumer operator. Finite capacity realizes the model assumption that
// "slow consumers throttle producers" (Section 4): a producer facing a full
// queue parks until the consumer drains a page.
//
// All methods take the task performing the operation so the queue can park
// and wake it through the scheduler.
type PageQueue struct {
	s        *Scheduler
	name     string
	capacity int

	// guarded by s.mu
	items    []*storage.Batch
	closed   bool
	waitProd []*Task
	waitCons []*Task
}

// NewPageQueue creates a queue with the given page capacity (minimum 1).
func NewPageQueue(s *Scheduler, name string, capacity int) *PageQueue {
	if capacity < 1 {
		capacity = 1
	}
	return &PageQueue{s: s, name: name, capacity: capacity}
}

// TryPush appends a page. It returns false — after registering t to be
// woken — when the queue is full; the task should return Blocked. Pushing
// to a closed queue discards the page and reports success (the consumer is
// gone; drop output on the floor so upstream can drain and finish) after
// releasing the departed consumer's reader claim, so surviving fan-out
// siblings are not forced to clone against a reader that will never come.
func (q *PageQueue) TryPush(t *Task, b *storage.Batch) bool {
	q.s.mu.Lock()
	defer q.s.mu.Unlock()
	if q.closed {
		b.Release()
		return true
	}
	if len(q.items) >= q.capacity {
		q.waitProd = append(q.waitProd, t)
		return false
	}
	q.items = append(q.items, b)
	q.wakeOneLocked(&q.waitCons)
	return true
}

// TryPop removes the oldest page. ok=false with done=false means "empty but
// producer still running" (task should return Blocked after this call
// registered it for wake-up); ok=false with done=true means the queue is
// closed and drained.
func (q *PageQueue) TryPop(t *Task) (b *storage.Batch, ok, done bool) {
	q.s.mu.Lock()
	defer q.s.mu.Unlock()
	if len(q.items) > 0 {
		b = q.items[0]
		q.items = q.items[1:]
		q.wakeOneLocked(&q.waitProd)
		return b, true, false
	}
	if q.closed {
		return nil, false, true
	}
	q.waitCons = append(q.waitCons, t)
	return nil, false, false
}

// Close marks the producer finished and wakes all waiting consumers (and
// producers, so fan-out peers observing a closed sibling can make progress).
func (q *PageQueue) Close() {
	q.s.mu.Lock()
	defer q.s.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	for _, t := range q.waitCons {
		q.s.wakeLocked(t)
	}
	q.waitCons = nil
	for _, t := range q.waitProd {
		q.s.wakeLocked(t)
	}
	q.waitProd = nil
}

// Len returns the current number of buffered pages.
func (q *PageQueue) Len() int {
	q.s.mu.Lock()
	defer q.s.mu.Unlock()
	return len(q.items)
}

// Closed reports whether the queue is closed.
func (q *PageQueue) Closed() bool {
	q.s.mu.Lock()
	defer q.s.mu.Unlock()
	return q.closed
}

func (q *PageQueue) wakeOneLocked(list *[]*Task) {
	if len(*list) == 0 {
		return
	}
	t := (*list)[0]
	*list = (*list)[1:]
	q.s.wakeLocked(t)
}
