package engine

import (
	"sync"

	"repro/internal/storage"
)

// MinQueueCap is the smallest page capacity a PageQueue supports. Capacity 1
// is load-bearing in two ways: it guarantees a producer can always make
// progress into an empty queue (so closed-loop pipelines never deadlock on a
// zero-capacity hop), and it is the tightest producer throttle the engine
// offers — buildShare.newWaiter relies on a MinQueueCap queue as a pure
// close-signal that never buffers data. NewPageQueue raises smaller requests
// to this value rather than rejecting them.
const MinQueueCap = 1

// PageQueue is the bounded page buffer connecting a producer operator to a
// consumer operator. Finite capacity realizes the model assumption that
// "slow consumers throttle producers" (Section 4): a producer facing a full
// queue parks until the consumer drains a page.
//
// All methods take the task performing the operation so the queue can park
// and wake it through the scheduler. The queue owns its lock: push/pop
// touch only queue-local state, and the scheduler is consulted solely to
// wake a parked task — after the queue lock is released — so page hops on
// different queues never contend with each other or with task dispatch.
type PageQueue struct {
	s        *Scheduler
	name     string
	capacity int

	mu       sync.Mutex
	items    []*storage.Batch
	closed   bool
	waitProd []*Task
	waitCons []*Task
}

// NewPageQueue creates a queue with the given page capacity. Capacities
// below MinQueueCap are raised to it (see the constant's doc for why the
// floor exists).
func NewPageQueue(s *Scheduler, name string, capacity int) *PageQueue {
	if capacity < MinQueueCap {
		capacity = MinQueueCap
	}
	return &PageQueue{s: s, name: name, capacity: capacity}
}

// TryPush appends a page. It returns false — after registering t to be
// woken — when the queue is full; the task should return Blocked. Pushing
// to a closed queue discards the page and reports success (the consumer is
// gone; drop output on the floor so upstream can drain and finish) after
// releasing the departed consumer's reader claim, so surviving fan-out
// siblings are not forced to clone against a reader that will never come.
func (q *PageQueue) TryPush(t *Task, b *storage.Batch) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		b.Release()
		return true
	}
	if len(q.items) >= q.capacity {
		q.waitProd = append(q.waitProd, t)
		q.mu.Unlock()
		return false
	}
	q.items = append(q.items, b)
	w := takeWaiter(&q.waitCons)
	q.mu.Unlock()
	q.s.queuedPages.Add(1)
	if w != nil {
		q.s.wake(w)
	}
	return true
}

// TryPop removes the oldest page. ok=false with done=false means "empty but
// producer still running" (task should return Blocked after this call
// registered it for wake-up); ok=false with done=true means the queue is
// closed and drained.
func (q *PageQueue) TryPop(t *Task) (b *storage.Batch, ok, done bool) {
	q.mu.Lock()
	if len(q.items) > 0 {
		b = q.items[0]
		q.items = q.items[1:]
		w := takeWaiter(&q.waitProd)
		q.mu.Unlock()
		q.s.queuedPages.Add(-1)
		if w != nil {
			q.s.wake(w)
		}
		return b, true, false
	}
	if q.closed {
		q.mu.Unlock()
		return nil, false, true
	}
	q.waitCons = append(q.waitCons, t)
	q.mu.Unlock()
	return nil, false, false
}

// Close marks the producer finished and wakes all waiting consumers (and
// producers, so fan-out peers observing a closed sibling can make progress).
func (q *PageQueue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	waiters := append(q.waitCons, q.waitProd...)
	q.waitCons, q.waitProd = nil, nil
	q.mu.Unlock()
	for _, t := range waiters {
		q.s.wake(t)
	}
}

// Len returns the current number of buffered pages.
func (q *PageQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Closed reports whether the queue is closed.
func (q *PageQueue) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// takeWaiter pops the oldest waiter, or nil. Caller holds the queue lock;
// the wake itself happens after unlock.
func takeWaiter(list *[]*Task) *Task {
	if len(*list) == 0 {
		return nil
	}
	t := (*list)[0]
	*list = (*list)[1:]
	return t
}
