package engine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/relop"
	"repro/internal/storage"
)

// buildAnchor joins anything and anchors fresh groups at a fixed candidate
// index — tests pin it at the build-side option.
type buildAnchor struct{ idx int }

func (buildAnchor) ShouldJoin(core.Query, int) bool            { return true }
func (p buildAnchor) ChoosePivot([]core.Query, int) int        { return p.idx }
func (buildAnchor) ShouldAttach(core.Query, int, float64) bool { return false }

// buildTables returns a build table (values 0..buildRows-1) and a probe
// table (values 0..probeRows-1), distinct columns so the join schemas line
// up.
func buildTables(t *testing.T, buildRows, probeRows int) (*storage.Table, *storage.Table) {
	t.Helper()
	bt := storage.NewTable("bt", storage.MustSchema(storage.Column{Name: "bv", Type: storage.Int64}))
	for i := 0; i < buildRows; i++ {
		bt.MustAppend(int64(i))
	}
	pt := storage.NewTable("pt", storage.MustSchema(storage.Column{Name: "pv", Type: storage.Int64}))
	for i := 0; i < probeRows; i++ {
		pt.MustAppend(int64(i))
	}
	return bt, pt
}

// semiSpec is a semi-join of a shared build scan against a per-variant probe
// scan: nodes [build scan, probe scan, join(split forms)], join as root,
// with the join and the build side offered as pivot candidates.
func semiSpec(bt, pt *storage.Table, sig string, probePred relop.Pred) QuerySpec {
	buildSchema := storage.MustSchema(storage.Column{Name: "bv", Type: storage.Int64})
	probeSchema := storage.MustSchema(storage.Column{Name: "pv", Type: storage.Int64})
	return QuerySpec{
		Signature: sig,
		Pivot:     2,
		Pivots: []PivotOption{
			{Pivot: 2},
			// The build candidate carries a nominal work model so keep-alive
			// retention (which prices the rebuild a cache hit saves) has a
			// positive benefit; sharing tests ignore it.
			{Pivot: 0, Build: true, Model: core.Query{
				Name: sig + "@build", PivotW: 2, PivotS: 0.01, Above: []float64{1},
			}},
		},
		Nodes: []NodeSpec{
			ScanNode(sig+"/build-scan", bt, nil, []string{"bv"}, 16),
			ScanNode(sig+"/probe-scan", pt, probePred, []string{"pv"}, 16),
			{
				Name:        sig + "/join",
				Fingerprint: "semi(bv=pv)",
				BuildInput:  0,
				ProbeInput:  1,
				Join: func(emit relop.Emit) (JoinOperator, error) {
					return relop.NewHashJoin(relop.Semi, buildSchema, "bv", probeSchema, "pv", emit)
				},
				Build: func() (*relop.JoinBuild, error) {
					return relop.NewJoinBuild(buildSchema, "bv")
				},
				Probe: func(emit relop.Emit) (ProbeOperator, error) {
					return relop.NewHashJoinProbe(relop.Semi, buildSchema, "bv", probeSchema, "pv", emit)
				},
			},
		},
	}
}

// wantRange asserts the result holds exactly the values lo..hi-1 (in any
// order).
func wantRange(t *testing.T, what string, b *storage.Batch, lo, hi int64) {
	t.Helper()
	if b.Len() != int(hi-lo) {
		t.Fatalf("%s: %d rows, want %d", what, b.Len(), hi-lo)
	}
	seen := make(map[int64]bool)
	for _, v := range b.MustCol("pv").I64 {
		if v < lo || v >= hi || seen[v] {
			t.Fatalf("%s: unexpected or duplicate value %d", what, v)
		}
		seen[v] = true
	}
}

// Two different-variant join queries anchored at the build side execute
// exactly one hash build: the anchor opens a pure build group, the second
// variant fingerprint-matches the build subplan (its probe side differs, so
// no other level matches), and both probe the one table privately.
func TestBuildShareTwoQueriesOneBuild(t *testing.T) {
	bt, pt := buildTables(t, 32, 64)
	e, err := New(Options{Workers: 2, StartPaused: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	specA := semiSpec(bt, pt, "bs/a", relop.Cmp{Op: relop.Lt, L: relop.Col("pv"), R: relop.ConstInt{V: 32}})
	specB := semiSpec(bt, pt, "bs/b", relop.Cmp{Op: relop.Ge, L: relop.Col("pv"), R: relop.ConstInt{V: 16}})

	// Anchor at the build candidate (index 1: candidates are ordered join
	// level first).
	ha, err := e.Submit(specA, buildAnchor{idx: 1})
	if err != nil {
		t.Fatal(err)
	}
	key := BuildShareKey(specA, 0)
	if got := e.GroupSize(key); got != 1 {
		t.Fatalf("build group size after anchor = %d, want 1", got)
	}
	hb, err := e.Submit(specB, buildAnchor{idx: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.GroupSize(key); got != 2 {
		t.Fatalf("build group size after join = %d, want 2", got)
	}
	e.Start()
	ra, err := ha.Wait()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := hb.Wait()
	if err != nil {
		t.Fatal(err)
	}
	// Build holds 0..31; variant A probes 0..31, variant B probes 16..63.
	wantRange(t, "variant A", ra, 0, 32)
	wantRange(t, "variant B", rb, 16, 32)
	if got := e.HashBuilds(); got != 1 {
		t.Errorf("HashBuilds = %d, want exactly 1 shared build", got)
	}
	if got := e.BuildJoins(); got != 1 {
		t.Errorf("BuildJoins = %d, want 1", got)
	}
	if got := e.PivotLevelJoins()[0]; got != 1 {
		t.Errorf("PivotLevelJoins[0] = %d, want 1", got)
	}
}

// A group anchored at the join pivot with a build candidate inside its
// shared subtree runs its join split and publishes the table (a mixed
// group): identical queries merge at the join, a different variant attaches
// to the build — one hash build total, sharing at the highest level each
// pair of plans permits.
func TestBuildShareMixedGroup(t *testing.T) {
	bt, pt := buildTables(t, 32, 64)
	e, err := New(Options{Workers: 2, StartPaused: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	specA := semiSpec(bt, pt, "bsm/a", relop.Cmp{Op: relop.Lt, L: relop.Col("pv"), R: relop.ConstInt{V: 32}})
	specB := semiSpec(bt, pt, "bsm/b", relop.Cmp{Op: relop.Ge, L: relop.Col("pv"), R: relop.ConstInt{V: 16}})

	// joinOnly has no ChoosePivot, so the anchor stays at the declared join
	// pivot — the mixed-group path.
	h1, err := e.Submit(specA, joinOnly{})
	if err != nil {
		t.Fatal(err)
	}
	// Identical variant: merges at the join level (whole-plan sharing).
	h2, err := e.Submit(specA, joinOnly{})
	if err != nil {
		t.Fatal(err)
	}
	// Different variant: only the build subplan matches.
	h3, err := e.Submit(specB, joinOnly{})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	r1, err := h1.Wait()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := h2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	r3, err := h3.Wait()
	if err != nil {
		t.Fatal(err)
	}
	wantRange(t, "member 1", r1, 0, 32)
	wantRange(t, "member 2", r2, 0, 32)
	wantRange(t, "variant B", r3, 16, 32)
	if got := e.HashBuilds(); got != 1 {
		t.Errorf("HashBuilds = %d, want exactly 1 shared build", got)
	}
	if got := e.BuildJoins(); got != 1 {
		t.Errorf("BuildJoins = %d, want 1", got)
	}
	if got := e.PivotLevelJoins()[2]; got != 1 {
		t.Errorf("PivotLevelJoins[2] = %d, want 1 (identical variant at the join)", got)
	}
}

// A sealed table retires when its last prober releases it: the exchange
// entry disappears, the group stops being joinable, and a later arrival
// builds afresh.
func TestBuildStateRetiresWithLastProber(t *testing.T) {
	bt, pt := buildTables(t, 16, 16)
	e, err := New(Options{Workers: 2, StartPaused: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	spec := semiSpec(bt, pt, "bsr/a", nil)
	h, err := e.Submit(spec, buildAnchor{idx: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Exchange().BuildStatesInFlight(); got != 1 {
		t.Fatalf("build states in flight = %d, want 1", got)
	}
	e.Start()
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := e.Exchange().BuildStatesInFlight(); got != 0 {
		t.Errorf("build states in flight after completion = %d, want 0", got)
	}
	// A fresh arrival cannot find the retired table; it runs a new build.
	h2, err := e.Submit(spec, buildAnchor{idx: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h2.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := e.HashBuilds(); got != 2 {
		t.Errorf("HashBuilds = %d, want 2 (second arrival rebuilt)", got)
	}
}

// Members may attach after the build sealed — the table is immutable, late
// probers lose nothing — as long as an earlier prober still holds it live.
func TestBuildShareLateAttach(t *testing.T) {
	bt, pt := buildTables(t, 32, 64)
	e, err := New(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	specA := semiSpec(bt, pt, "bsl/a", relop.Cmp{Op: relop.Lt, L: relop.Col("pv"), R: relop.ConstInt{V: 32}})
	key := BuildShareKey(specA, 0)
	ha, err := e.Submit(specA, buildAnchor{idx: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Attach repeatedly while the group lives; a running engine may seal the
	// build at any point in this loop, exercising both the pre-seal (parked
	// waiter) and post-seal (immediate) attach paths.
	var extras []*Handle
	for i := 0; i < 4; i++ {
		if e.GroupSize(key) == 0 {
			break // group retired already (all members done)
		}
		sig := "bsl/late"
		specB := semiSpec(bt, pt, sig, relop.Cmp{Op: relop.Ge, L: relop.Col("pv"), R: relop.ConstInt{V: int64(i)}})
		h, err := e.Submit(specB, buildAnchor{idx: 1})
		if err != nil {
			t.Fatal(err)
		}
		extras = append(extras, h)
	}
	ra, err := ha.Wait()
	if err != nil {
		t.Fatal(err)
	}
	wantRange(t, "anchor", ra, 0, 32)
	for i, h := range extras {
		r, err := h.Wait()
		if err != nil {
			t.Fatalf("late member %d: %v", i, err)
		}
		wantRange(t, "late member", r, int64(i), 32)
	}
	// However the timing fell, the builds executed plus the fresh groups
	// must account for every query exactly once; with at least one late
	// attach there are fewer builds than queries.
	builds, joins := e.HashBuilds(), e.BuildJoins()
	if int(builds)+int(joins) != 1+len(extras) {
		t.Errorf("builds=%d joins=%d for %d queries", builds, joins, 1+len(extras))
	}
}
