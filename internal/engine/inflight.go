package engine

import (
	"sync"

	"repro/internal/storage"
)

// inflightScan drives one shared circular table scan and fans its pages out
// to a consumer set that may grow while the scan runs. It is the in-flight
// counterpart of the submission-time outbox: where the outbox seals its
// group on first emit (late joiners would miss pages), the circular scan
// registry lets a joiner attach at the current cursor, consume to the end
// of the table, and pick up the missed prefix on the wrap-around lap — so
// every consumer still sees every page exactly once.
//
// Delivery remains sequential across consumers, preserving the pivot's
// fundamental per-consumer cost s; the fan-out mode decides what each
// consumer receives (refcounted shared page or private clone — see
// FanOutMode), and any copy work is accounted to the scan node's busy
// clock like any pivot work.
type inflightScan struct {
	name   string
	src    *tableSource
	scan   *storage.CircularScan
	clock  *busyClock
	fail   func(error)
	retire func() // removes the group from the joinable map; called once
	fanOut FanOutMode

	mu           sync.Mutex
	queues       map[int]*PageQueue // scan-consumer id -> member chain head
	pending      []scanDelivery
	nextConsumer int
	headMarked   bool
	finished     bool
}

// scanDelivery is one scanned span awaiting fan-out: the filtered page (nil
// when the predicate selected no rows — coverage still advances), the
// member queues it goes to (resolved at enqueue time, while the consumer
// set is provably stable), and the consumer ids whose circle completes
// with it (their queues close after this delivery).
type scanDelivery struct {
	b          *storage.Batch
	targets    []*PageQueue
	closeAfter []int
}

func newInflightScan(name string, src *tableSource, scan *storage.CircularScan, clock *busyClock, fail func(error), fanOut FanOutMode) *inflightScan {
	return &inflightScan{
		name:   name,
		src:    src,
		scan:   scan,
		clock:  clock,
		fail:   fail,
		fanOut: fanOut,
		queues: make(map[int]*PageQueue),
	}
}

// attach registers a member chain as a scan consumer at the current cursor.
// Registering the queue and attaching the cursor happen under one lock so a
// concurrently advancing scan either misses the joiner entirely (it attaches
// at the next span) or finds its queue ready. Returns false when the scan
// already finished; the caller must start a fresh group.
func (fs *inflightScan) attach(q *PageQueue) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	c, ok := fs.scan.Attach()
	if !ok {
		return false
	}
	fs.queues[c.ID()] = q
	return true
}

// flush delivers pending spans in order via the same sequential fan-out
// protocol the submission-time outbox uses (deliverSeq). Completed
// consumers' queues close after their last page.
func (fs *inflightScan) flush(t *Task) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for len(fs.pending) > 0 {
		d := &fs.pending[0]
		if d.b != nil {
			markShared(d.b, len(d.targets), fs.fanOut, &fs.headMarked)
			if !deliverSeq(t, d.b, d.targets, &fs.nextConsumer, fs.fanOut) {
				return false
			}
		}
		for _, id := range d.closeAfter {
			if q := fs.queues[id]; q != nil {
				q.Close()
				delete(fs.queues, id)
			}
		}
		fs.pending = fs.pending[1:]
		fs.nextConsumer = 0
		fs.headMarked = false
	}
	return true
}

// abort closes the scan and every consumer queue after a group failure —
// whether the scan itself errored or a member chain died (a dead chain
// stops draining its head queue, which would otherwise park the scan task
// forever). Idempotent.
func (fs *inflightScan) abort() {
	fs.scan.Close()
	fs.mu.Lock()
	queues := make([]*PageQueue, 0, len(fs.queues))
	for _, q := range fs.queues {
		queues = append(queues, q)
	}
	fs.queues = make(map[int]*PageQueue)
	fs.pending = nil
	fs.nextConsumer = 0
	fs.headMarked = false
	fs.mu.Unlock()
	for _, q := range queues {
		q.Close()
	}
}

// step is the scan task body: flush pending deliveries, then advance the
// circular cursor one quantum, read the span, and enqueue its delivery.
// When the cursor reports no live consumers remain the scan retires its
// group immediately (new arrivals start fresh groups) and finishes once
// the tail of pending deliveries drains.
func (fs *inflightScan) step(t *Task) Status {
	flushed := false
	fs.clock.measure(fs.name, func() { flushed = fs.flush(t) })
	if !flushed {
		return Blocked
	}
	if fs.finished {
		return Done
	}
	sp, served, completed, more := fs.scan.Advance()
	var b *storage.Batch
	if sp.Len() > 0 && len(served) > 0 {
		var err error
		fs.clock.measure(fs.name, func() { b, err = fs.src.readSpan(sp.Lo, sp.Hi) })
		if err != nil {
			fs.fail(err)
			fs.abort()
			fs.retire()
			return Done
		}
	}
	closeAfter := make([]int, len(completed))
	for i, c := range completed {
		closeAfter[i] = c.ID()
	}
	fs.mu.Lock()
	// Resolve target queues now: every served consumer registered its queue
	// at attach, and removals (closeAfter, abort) happen under fs.mu, so a
	// missing entry only means the group already aborted — skip it.
	var targets []*PageQueue
	if b != nil {
		targets = make([]*PageQueue, 0, len(served))
		for _, c := range served {
			if q := fs.queues[c.ID()]; q != nil {
				targets = append(targets, q)
			}
		}
	}
	fs.pending = append(fs.pending, scanDelivery{b: b, targets: targets, closeAfter: closeAfter})
	fs.mu.Unlock()
	if !more {
		fs.finished = true
		fs.retire()
	}
	return Again
}
