package engine

import (
	"fmt"
	"strings"

	"repro/internal/relop"
	"repro/internal/storage"
)

// This file implements operator-chain fusion: linear runs of unary
// operators (scan→filter→project→partial-agg segments between pivots,
// fan-outs, and joins) compile into one task that steps the whole chain
// within a single quantum, with batches handed from operator to operator by
// direct call instead of through intermediate PageQueues. Fingerprints,
// pivot boundaries, and fan-out semantics are untouched — a fused segment
// always ends exactly where a page must cross a task boundary (the pivot's
// fan-out outbox, a join input, a split-build collector, the sink), so
// sharing groups observe byte-identical page streams. The per-consumer cost
// s the model charges is therefore paid once, at the segment's boundary
// outbox, not once per operator hop.

// fusedRun is one fused segment: a head node (source, unary operator, join,
// or split-join probe) plus the unary operator nodes absorbed onto its
// output, in upstream→downstream order. An empty ops list is an unfused
// node instantiated exactly as before.
type fusedRun struct {
	head int
	ops  []int
}

// tail returns the node whose output the segment emits — the segment's
// boundary, where its outbox (and queue, if any) lives.
func (r fusedRun) tail() int {
	if n := len(r.ops); n > 0 {
		return r.ops[n-1]
	}
	return r.head
}

// fuseRuns partitions the instantiated node set into fused runs. include(i)
// reports whether this construction instantiates node i at all (shared
// subtrees instantiate their mask, members its complement, cached builds
// mask their saved subtree out). A node joins its producer's run when it is
// a unary operator whose input node is also instantiated — every other
// consumption (joins, the collector, the member boundary, the sink) is a
// real task boundary and ends the run. With fuse=false every run is a
// singleton and execution degenerates to the staged (one task per node)
// model. Runs are returned in topological order of their heads; absorbed[i]
// marks nodes executed inside another node's run.
func fuseRuns(spec QuerySpec, include func(int) bool, fuse bool) (runs []fusedRun, absorbed []bool) {
	absorbed = make([]bool, len(spec.Nodes))
	headOf := make([]int, len(spec.Nodes))
	runAt := make(map[int]int, len(spec.Nodes))
	for i := range spec.Nodes {
		if !include(i) {
			continue
		}
		nd := spec.Nodes[i]
		if fuse && nd.Op != nil && include(nd.Input) {
			// Absorb into the producer's run (Validate guarantees single
			// consumption, so this is the producer's only consumer).
			h := headOf[nd.Input]
			headOf[i] = h
			absorbed[i] = true
			runs[runAt[h]].ops = append(runs[runAt[h]].ops, i)
			continue
		}
		headOf[i] = i
		runAt[i] = len(runs)
		runs = append(runs, fusedRun{head: i})
	}
	return runs, absorbed
}

// fusedChain is the composed push/finish pair of a run's absorbed
// operators: push enters the most-upstream operator and cascades by direct
// call; finish flushes each operator's buffered state downstream in
// upstream→downstream order. consumes reports whether any operator in the
// chain is relop.Consuming — if so, nothing in or beyond the chain aliases
// a pushed batch after push returns (Consuming operators copy what they
// retain, and aliases emitted by earlier pass-through operators stop at the
// first Consuming one), so the caller may release the input immediately,
// exactly as the staged opTask does per node.
type fusedChain struct {
	push     func(*storage.Batch) error
	finishes []func() error
	consumes bool
}

func (c *fusedChain) finish() error {
	for _, f := range c.finishes {
		if err := f(); err != nil {
			return err
		}
	}
	return nil
}

// buildChain composes the unary operators of the given nodes (upstream→
// downstream order) into a chain whose tail emits into ob. Construction
// runs downstream-first so each operator's emit closure is the next
// operator's Push.
func buildChain(nodes []NodeSpec, ops []int, ob *outbox) (*fusedChain, error) {
	c := &fusedChain{}
	emit := relop.Emit(func(b *storage.Batch) error { ob.add(b); return nil })
	c.finishes = make([]func() error, len(ops))
	for k := len(ops) - 1; k >= 0; k-- {
		op, err := nodes[ops[k]].Op(emit)
		if err != nil {
			return nil, err
		}
		if relop.Consumes(op) {
			c.consumes = true
		}
		c.finishes[k] = op.Finish
		emit = op.Push
	}
	c.push = emit
	return c, nil
}

// fusedName labels a fused segment for scheduling and diagnostics.
func fusedName(nodes []NodeSpec, r fusedRun) string {
	if len(r.ops) == 0 {
		return nodes[r.head].Name
	}
	parts := make([]string, 0, len(r.ops)+1)
	parts = append(parts, nodes[r.head].Name)
	for _, i := range r.ops {
		parts = append(parts, nodes[i].Name)
	}
	return strings.Join(parts, "+")
}

// fusedSourceTask drives a source head with a fused operator chain: one
// source quantum per step, pushed through the whole chain by direct call.
// release mirrors opTask.releaseInput for the chain as a whole (see
// fusedChain.consumes).
type fusedSourceTask struct {
	name     string
	src      PageSource
	chain    *fusedChain
	out      *outbox
	clock    *busyClock
	fail     func(error)
	eof      bool
	finished bool
}

func (ft *fusedSourceTask) step(t *Task) Status {
	flushed := false
	ft.clock.measure(ft.name, func() { flushed = ft.out.flush(t) })
	if !flushed {
		return Blocked
	}
	if ft.finished {
		ft.out.closeAll()
		return Done
	}
	if ft.eof {
		var err error
		ft.clock.measure(ft.name, func() { err = ft.chain.finish() })
		if err != nil {
			ft.fail(err)
			ft.out.closeAll()
			return Done
		}
		ft.finished = true
		return Again // flush whatever finish emitted, then close
	}
	var b *storage.Batch
	var eof bool
	var err error
	ft.clock.measure(ft.name, func() {
		b, eof, err = ft.src.Next()
		if err == nil && b != nil {
			if err = ft.chain.push(b); err == nil && ft.chain.consumes {
				b.Release()
			}
		}
	})
	if err != nil {
		ft.fail(err)
		ft.out.closeAll()
		return Done
	}
	ft.eof = eof
	return Again
}

// fusedJoin wraps a JoinOperator whose emissions feed a fused chain: Finish
// cascades into the chain's finishes so buffered downstream state flushes
// when the probe stream ends.
type fusedJoin struct {
	JoinOperator
	chain *fusedChain
}

func (f *fusedJoin) Finish() error {
	if err := f.JoinOperator.Finish(); err != nil {
		return err
	}
	return f.chain.finish()
}

// fusedProbe is fusedJoin's analogue for the split-probe phase.
type fusedProbe struct {
	ProbeOperator
	chain *fusedChain
}

func (f *fusedProbe) Finish() error {
	if err := f.ProbeOperator.Finish(); err != nil {
		return err
	}
	return f.chain.finish()
}

// fusedProbeOp instantiates nd's split-probe phase with the run's absorbed
// chain composed onto its emissions (plain when the run is a singleton).
func fusedProbeOp(nodes []NodeSpec, nd NodeSpec, r fusedRun, ob *outbox) (ProbeOperator, error) {
	if len(r.ops) == 0 {
		return nd.Probe(func(b *storage.Batch) error { ob.add(b); return nil })
	}
	chain, err := buildChain(nodes, r.ops, ob)
	if err != nil {
		return nil, err
	}
	p, err := nd.Probe(chain.push)
	if err != nil {
		return nil, err
	}
	return &fusedProbe{ProbeOperator: p, chain: chain}, nil
}

// fuseOK reports whether this engine fuses operator chains: on by default,
// off under Options.NoFusion (the staged ablation) and under Profile, which
// needs per-node busy-time attribution a fused segment cannot provide.
func (e *Engine) fuseOK() bool {
	return !e.opts.NoFusion && !e.opts.Profile
}

// fusedTask instantiates the execution task for one fused run whose
// boundary output goes to ob, resolving input queues through qOf. It is
// nodeTask generalized to segments: an empty run falls through to the
// per-node form, and the split-join probe head is wired by the call sites
// (which pass the chain through fusedProbeChain).
func (e *Engine) fusedTask(spec QuerySpec, r fusedRun, qOf func(int) *PageQueue, ob *outbox, fail func(error)) (string, func(*Task) Status, error) {
	nd := spec.Nodes[r.head]
	if len(r.ops) == 0 {
		step, err := e.nodeTask(nd, qOf, ob, fail)
		return nd.Name, step, err
	}
	name := fusedName(spec.Nodes, r)
	chain, err := buildChain(spec.Nodes, r.ops, ob)
	if err != nil {
		return "", nil, err
	}
	switch {
	case nd.IsSource():
		src, err := nd.NewSource()
		if err != nil {
			return "", nil, err
		}
		return name, (&fusedSourceTask{name: name, src: src, chain: chain, out: ob, clock: e.clock, fail: fail}).step, nil
	case nd.Op != nil:
		op, err := nd.Op(chain.push)
		if err != nil {
			return "", nil, err
		}
		push := op.Push
		consumes := chain.consumes || relop.Consumes(op)
		finishes := append([]func() error{op.Finish}, chain.finishes...)
		head := &fusedChain{push: push, finishes: finishes, consumes: consumes}
		return name, (&opTask{name: name, push: head.push, finish: head.finish, in: qOf(nd.Input), out: ob, clock: e.clock, fail: fail, releaseInput: head.consumes}).step, nil
	case nd.Join != nil:
		jn, err := nd.Join(chain.push)
		if err != nil {
			return "", nil, err
		}
		fj := &fusedJoin{JoinOperator: jn, chain: chain}
		return name, (&joinTask{name: name, join: fj, build: qOf(nd.BuildInput), probe: qOf(nd.ProbeInput), out: ob, clock: e.clock, fail: fail, building: true, releaseInput: relop.Consumes(jn)}).step, nil
	default:
		return "", nil, fmt.Errorf("%w: node %s has no executable form", ErrBadSpec, nd.Name)
	}
}
