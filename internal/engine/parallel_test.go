package engine_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/relop"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// assertApproxResult compares batches row-for-row (both sides emit rows in
// deterministic group-key order), allowing float columns a tiny relative
// tolerance: clone-partitioned aggregation sums in a different order than
// the serial plan, which legitimately perturbs the last ulp of large sums.
func assertApproxResult(t *testing.T, what string, got, want *storage.Batch) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d rows, want %d", what, got.Len(), want.Len())
	}
	for c, col := range want.Schema.Cols {
		for i := 0; i < want.Len(); i++ {
			switch col.Type {
			case storage.Int64, storage.Date:
				if got.Vecs[c].I64[i] != want.Vecs[c].I64[i] {
					t.Fatalf("%s: row %d col %s = %d, want %d", what, i, col.Name, got.Vecs[c].I64[i], want.Vecs[c].I64[i])
				}
			case storage.String:
				if got.Vecs[c].Str[i] != want.Vecs[c].Str[i] {
					t.Fatalf("%s: row %d col %s = %q, want %q", what, i, col.Name, got.Vecs[c].Str[i], want.Vecs[c].Str[i])
				}
			case storage.Float64:
				g, w := got.Vecs[c].F64[i], want.Vecs[c].F64[i]
				if diff := math.Abs(g - w); diff > 1e-9*math.Max(1, math.Abs(w)) {
					t.Fatalf("%s: row %d col %s = %g, want %g", what, i, col.Name, g, w)
				}
			}
		}
	}
}

// Parallel clone execution must reproduce the serial result (up to
// summation-order float jitter) for every parallelizable plan, at every
// degree, on every worker count.
func TestParallelMatchesSerial(t *testing.T) {
	db := testDB(t)
	for _, q := range []tpch.QueryID{tpch.Q1, tpch.Q6} {
		serial := tpch.MustEngineSpec(q, db, 0)
		eSerial := newEngine(t, engine.Options{Workers: 2})
		hs, err := eSerial.Submit(serial, nil)
		if err != nil {
			t.Fatalf("%s serial submit: %v", q, err)
		}
		want, err := hs.Wait()
		if err != nil {
			t.Fatalf("%s serial wait: %v", q, err)
		}
		for _, workers := range []int{1, 4} {
			for _, degree := range []int{2, 4} {
				e := newEngine(t, engine.Options{Workers: workers})
				spec := tpch.MustEngineSpec(q, db, 0)
				spec.Parallel = degree
				h, err := e.Submit(spec, nil)
				if err != nil {
					t.Fatalf("%s parallel submit: %v", q, err)
				}
				got, err := h.Wait()
				if err != nil {
					t.Fatalf("%s parallel wait: %v", q, err)
				}
				assertApproxResult(t, fmt.Sprintf("%s workers=%d degree=%d", q, workers, degree), got, want)
				// Degree clamps to the machine; a clamp to 1 falls back to
				// the serial pipeline (clones on one context are pure
				// overhead), so no parallel run is counted.
				wantClones := int64(degree)
				if degree > workers {
					wantClones = int64(workers)
				}
				wantRuns := int64(1)
				if wantClones <= 1 {
					wantRuns, wantClones = 0, 0
				}
				if e.ParallelRuns() != wantRuns || e.ParallelClones() != wantClones {
					t.Fatalf("%s workers=%d degree=%d: runs=%d clones=%d, want %d/%d",
						q, workers, degree, e.ParallelRuns(), e.ParallelClones(), wantRuns, wantClones)
				}
			}
		}
	}
}

// Concurrent parallel runs of the same signature get isolated morsel groups
// (no span stealing), and the registry drains when they finish.
func TestParallelConcurrentSameSignature(t *testing.T) {
	db := testDB(t)
	e := newEngine(t, engine.Options{Workers: 4})
	serialSpec := tpch.MustEngineSpec(tpch.Q6, db, 0)
	eRef := newEngine(t, engine.Options{Workers: 1})
	hRef, err := eRef.Submit(serialSpec, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := hRef.Wait()
	if err != nil {
		t.Fatal(err)
	}

	const runs = 4
	handles := make([]*engine.Handle, runs)
	for i := range handles {
		spec := tpch.MustEngineSpec(tpch.Q6, db, 0)
		spec.Parallel = 2
		h, err := e.Submit(spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	for i, h := range handles {
		got, err := h.Wait()
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		assertApproxResult(t, fmt.Sprintf("concurrent run %d", i), got, want)
	}
	if got := e.ScanRegistry().PartitionedInFlight(); got != 0 {
		t.Fatalf("partitioned groups still registered: %d", got)
	}
	if got := e.Active(); got != 0 {
		t.Fatalf("active queries after drain: %d", got)
	}
}

// A ParallelPolicy drives degree selection when the spec does not pin one:
// a fixed-degree policy parallelizes scan-pivot plans and leaves
// non-parallelizable plans serial.
type fixedDegree struct{ d int }

func (fixedDegree) ShouldJoin(core.Query, int) bool { return false }
func (p fixedDegree) Degree(core.Query, int) int    { return p.d }

func TestParallelPolicyDrivesDegree(t *testing.T) {
	db := testDB(t)
	e := newEngine(t, engine.Options{Workers: 4})
	pol := fixedDegree{d: 3}

	h, err := e.Submit(tpch.MustEngineSpec(tpch.Q6, db, 0), pol)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	if e.ParallelRuns() != 1 || e.ParallelClones() != 3 {
		t.Fatalf("runs=%d clones=%d, want 1/3", e.ParallelRuns(), e.ParallelClones())
	}

	// Q4's pivot is a join — not a linear scan chain — so the policy's
	// degree is ignored and the query runs serially.
	h, err = e.Submit(tpch.MustEngineSpec(tpch.Q4, db, 0), pol)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	if e.ParallelRuns() != 1 {
		t.Fatalf("non-parallelizable plan counted as parallel run: %d", e.ParallelRuns())
	}
}

// An explicit degree on a non-parallelizable plan is a spec error, caught
// at submission.
func TestParallelDegreeValidation(t *testing.T) {
	db := testDB(t)
	spec := tpch.MustEngineSpec(tpch.Q4, db, 0)
	spec.Parallel = 2
	e := newEngine(t, engine.Options{Workers: 2})
	if _, err := e.Submit(spec, nil); err == nil {
		t.Fatal("parallel degree on join-pivot plan accepted")
	}
	spec = tpch.MustEngineSpec(tpch.Q6, db, 0)
	spec.Parallel = -1
	if _, err := e.Submit(spec, nil); err == nil {
		t.Fatal("negative parallel degree accepted")
	}
}

// threeNodeSpec builds a scan → filter → agg chain over lineitem: the
// filter is a partition-safe interior node, so the spec exercises the
// per-clone interior-operator wiring that the two-node Q1/Q6 plans never
// touch. failPartial makes the root's partial form error on its first
// push, for the failure-path test.
func threeNodeSpec(db *tpch.DB, failPartial bool) engine.QuerySpec {
	scanCols := []string{"l_quantity", "l_extendedprice"}
	scanSchema := storage.MustSchema(
		storage.Column{Name: "l_quantity", Type: storage.Float64},
		storage.Column{Name: "l_extendedprice", Type: storage.Float64},
	)
	pred := relop.Cmp{Op: relop.Lt, L: relop.Col("l_quantity"), R: relop.ConstFloat{V: 25}}
	specs := []relop.AggSpec{
		{Func: relop.Sum, Expr: relop.Col("l_extendedprice"), As: "sum_price"},
		{Func: relop.Count, As: "n"},
	}
	partial := func(emit relop.Emit) (relop.Operator, error) {
		return relop.NewPartialHashAgg(scanSchema, nil, specs, emit)
	}
	if failPartial {
		partial = func(emit relop.Emit) (relop.Operator, error) {
			inner, err := relop.NewPartialHashAgg(scanSchema, nil, specs, emit)
			if err != nil {
				return nil, err
			}
			return failingOp{Operator: inner}, nil
		}
	}
	return engine.QuerySpec{
		Signature: "test/three-node",
		Model:     core.Q6Paper(),
		Pivot:     0,
		Nodes: []engine.NodeSpec{
			engine.ScanNode("t3/scan", db.Lineitem, nil, scanCols, 0),
			{Name: "t3/filter", Input: 0, Op: func(emit relop.Emit) (relop.Operator, error) {
				return relop.NewFilter(pred, scanSchema, emit), nil
			}},
			{Name: "t3/agg", Input: 1,
				Op: func(emit relop.Emit) (relop.Operator, error) {
					return relop.NewHashAgg(scanSchema, nil, specs, emit)
				},
				Partial: partial,
				Merge: func(emit relop.Emit) (relop.Operator, error) {
					return relop.NewMergeHashAgg(scanSchema, nil, specs, emit)
				}},
		},
	}
}

// failingOp errors on the first push — a clone that dies mid-scan.
type failingOp struct{ relop.Operator }

func (failingOp) Push(*storage.Batch) error { return fmt.Errorf("injected clone failure") }

// Interior partition-safe operators must chain correctly inside every
// clone pipeline: a three-node scan → filter → agg plan at degree ≥ 2
// reproduces its serial result.
func TestParallelInteriorNodes(t *testing.T) {
	db := testDB(t)
	spec := threeNodeSpec(db, false)
	if !spec.CanParallel() {
		t.Fatal("three-node spec not parallelizable")
	}
	e := newEngine(t, engine.Options{Workers: 4})
	h, err := e.Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for _, degree := range []int{2, 4} {
		par := threeNodeSpec(db, false)
		par.Parallel = degree
		h, err := e.Submit(par, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := h.Wait()
		if err != nil {
			t.Fatal(err)
		}
		assertApproxResult(t, fmt.Sprintf("three-node degree=%d", degree), got, want)
	}
}

// A clone failing mid-run must poison the handle with its error, close the
// shared scan state so no task wedges, and drain the registry.
func TestParallelFailurePropagates(t *testing.T) {
	db := testDB(t)
	spec := threeNodeSpec(db, true)
	spec.Parallel = 2
	e := newEngine(t, engine.Options{Workers: 2})
	h, err := e.Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(); err == nil {
		t.Fatal("clone failure did not poison the result")
	}
	if got := e.ScanRegistry().PartitionedInFlight(); got != 0 {
		t.Fatalf("partitioned groups still registered after failure: %d", got)
	}
	if got := e.Active(); got != 0 {
		t.Fatalf("active queries after failed run: %d", got)
	}
	// The engine keeps serving after the failed run.
	ok, err := e.Submit(tpch.MustEngineSpec(tpch.Q6, db, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ok.Wait(); err != nil {
		t.Fatalf("engine wedged after failed parallel run: %v", err)
	}
}

// CanParallel must hold for the scan-pivot plans and fail for join pivots.
func TestCanParallel(t *testing.T) {
	db := testDB(t)
	for q, want := range map[tpch.QueryID]bool{
		tpch.Q1:  true,
		tpch.Q6:  true,
		tpch.Q4:  false,
		tpch.Q13: false,
	} {
		if got := tpch.MustEngineSpec(q, db, 0).CanParallel(); got != want {
			t.Fatalf("%s CanParallel = %v, want %v", q, got, want)
		}
	}
}
