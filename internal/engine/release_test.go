package engine

import (
	"testing"

	"repro/internal/relop"
	"repro/internal/storage"
)

// Pushing a shared page to a closed queue (its consumer retired) must drop
// that consumer's reader claim, not just discard the page — otherwise the
// surviving sibling is forced to clone against a reader that will never
// come.
func TestClosedQueueReleasesClaim(t *testing.T) {
	sched, err := NewScheduler(1)
	if err != nil {
		t.Fatal(err)
	}
	q := NewPageQueue(sched, "q", 4)
	q.Close()
	b := storage.NewBatch(storage.MustSchema(storage.Column{Name: "v", Type: storage.Int64}), 0)
	b.MarkShared(1)
	if !q.TryPush(&Task{}, b) {
		t.Fatal("push to closed queue did not report success")
	}
	if b.Shared() {
		t.Error("discarded page kept its reader claim")
	}
	if w := b.Writable(); w != b {
		t.Error("surviving owner cloned after the departed consumer's claim was dropped")
	}
}

// Fan-out consumers that finish with a page without writing it release
// their claims: a scan shared between an aggregate chain (which consumes
// each page and releases on push) and a bare sink (which appends and
// releases all pages after its first) must leave claim releases — and at
// most one adoption — in the share counters.
func TestFanOutConsumersReleaseClaims(t *testing.T) {
	const rows, pageRows = 256, 16
	tbl := scanTable(t, rows)
	aggSchema := storage.MustSchema(storage.Column{Name: "v", Type: storage.Int64})
	aggSpec := QuerySpec{
		Signature: "rel/agg",
		Pivot:     0,
		Nodes: []NodeSpec{
			ScanNode("rel/scan", tbl, nil, []string{"v"}, pageRows),
			{Name: "rel/sum", Input: 0, Op: func(emit relop.Emit) (relop.Operator, error) {
				return relop.NewHashAgg(aggSchema, nil, []relop.AggSpec{
					{Func: relop.Sum, Expr: relop.Col("v"), As: "total"},
				}, emit)
			}},
		},
	}
	bareSpec := QuerySpec{
		Signature: "rel/bare",
		Pivot:     0,
		Nodes:     []NodeSpec{ScanNode("rel/scan", tbl, nil, []string{"v"}, pageRows)},
	}
	m0, c0, r0 := storage.ShareStats()
	e, err := New(Options{Workers: 1, StartPaused: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ha, err := e.Submit(aggSpec, joinOnly{})
	if err != nil {
		t.Fatal(err)
	}
	hb, err := e.Submit(bareSpec, joinOnly{})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.GroupSize(ShareKey(bareSpec)); got != 2 {
		t.Fatalf("scan group size = %d, want 2", got)
	}
	e.Start()
	ra, err := ha.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got := ra.MustCol("total").F64[0]; got != float64(rows)*float64(rows-1)/2 {
		t.Errorf("agg member sum = %v", got)
	}
	rb, err := hb.Wait()
	if err != nil {
		t.Fatal(err)
	}
	sumResult(t, rb, rows)
	m1, c1, r1 := storage.ShareStats()
	pages := rows / pageRows
	// The aggregate releases every page it consumes; the bare sink releases
	// every page after the one it adopts.
	if minWant := int64(pages); r1-r0 < minWant {
		t.Errorf("claim releases = %d, want at least %d", r1-r0, minWant)
	}
	// Exactly one shared page is ever adopted (the bare sink's first); it is
	// a move when the aggregate released first, a copy otherwise — never
	// more than one of either.
	if adoptions := (m1 - m0) + (c1 - c0); adoptions != 1 {
		t.Errorf("adoptions (moves+copies) = %d, want 1", adoptions)
	}
}
