package engine

import (
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/relop"
	"repro/internal/storage"
)

// cacheEngine builds an engine over a fresh keep-alive cache.
func cacheEngine(t *testing.T, cfg artifact.Config, opts Options) (*Engine, *artifact.Cache) {
	t.Helper()
	c := artifact.New(cfg)
	opts.Cache = c
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e, c
}

// runOne submits spec and waits for its result.
func runOne(t *testing.T, e *Engine, spec QuerySpec, pol SharePolicy) *storage.Batch {
	t.Helper()
	h, err := e.Submit(spec, pol)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Two bursts separated by an idle gap shorter than the keep-alive window
// execute exactly one hash build: the first burst's table retires into the
// cache, the second burst's arrival anchors a cache-served group and
// registers as a late attach with zero build work.
func TestBuildCacheHitAcrossBursts(t *testing.T) {
	bt, pt := buildTables(t, 32, 64)
	e, c := cacheEngine(t, artifact.Config{BudgetBytes: 1 << 20, TTL: time.Minute}, Options{Workers: 2})
	specA := semiSpec(bt, pt, "bc/a", relop.Cmp{Op: relop.Lt, L: relop.Col("pv"), R: relop.ConstInt{V: 32}})
	specB := semiSpec(bt, pt, "bc/b", relop.Cmp{Op: relop.Ge, L: relop.Col("pv"), R: relop.ConstInt{V: 16}})

	// Burst 1: one build, table handed to the cache at retire.
	ra := runOne(t, e, specA, buildAnchor{idx: 1})
	wantRange(t, "burst 1", ra, 0, 32)
	if got := e.Exchange().BuildStatesInFlight(); got != 0 {
		t.Fatalf("build states in flight between bursts = %d, want 0", got)
	}
	if s := c.Stats(); s.Entries != 1 {
		t.Fatalf("cache entries after burst 1 = %d, want the retired table retained", s.Entries)
	}

	// Burst 2 (different variant — only the build subplan matches): served
	// from the cache, no rebuild.
	rb := runOne(t, e, specB, buildAnchor{idx: 1})
	wantRange(t, "burst 2", rb, 16, 32)
	if got := e.HashBuilds(); got != 1 {
		t.Errorf("HashBuilds across bursts = %d, want exactly 1", got)
	}
	if got := e.CacheHits(); got != 1 {
		t.Errorf("CacheHits = %d, want 1", got)
	}
	if got := e.BuildJoins(); got != 1 {
		t.Errorf("BuildJoins = %d, want the cache hit counted as a late attach", got)
	}
	// The served group re-offered the table at its retire: still retained.
	if s := c.Stats(); s.Entries != 1 {
		t.Errorf("cache entries after burst 2 = %d, want the table re-retained", s.Entries)
	}
}

// The same two bursts without a cache rebuild per burst — the baseline the
// keep-alive window removes.
func TestBuildRebuildsPerBurstWithoutCache(t *testing.T) {
	bt, pt := buildTables(t, 32, 64)
	e, err := New(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	spec := semiSpec(bt, pt, "nc/a", nil)
	wantRange(t, "burst 1", runOne(t, e, spec, buildAnchor{idx: 1}), 0, 32)
	wantRange(t, "burst 2", runOne(t, e, spec, buildAnchor{idx: 1}), 0, 32)
	if got := e.HashBuilds(); got != 2 {
		t.Errorf("HashBuilds without cache = %d, want 2 (one per burst)", got)
	}
}

// An idle gap past the keep-alive window expires the artifact: the next
// burst misses and rebuilds.
func TestBuildCacheMissAfterExpiry(t *testing.T) {
	bt, pt := buildTables(t, 32, 64)
	e, c := cacheEngine(t, artifact.Config{BudgetBytes: 1 << 20, TTL: 30 * time.Millisecond}, Options{Workers: 2})
	spec := semiSpec(bt, pt, "ex/a", nil)
	runOne(t, e, spec, buildAnchor{idx: 1})
	time.Sleep(80 * time.Millisecond)
	runOne(t, e, spec, buildAnchor{idx: 1})
	if got := e.HashBuilds(); got != 2 {
		t.Errorf("HashBuilds with expired gap = %d, want 2", got)
	}
	if s := c.Stats(); s.Expirations < 1 {
		t.Errorf("Expirations = %d, want at least 1", s.Expirations)
	}
	if got := e.CacheHits(); got != 0 {
		t.Errorf("CacheHits = %d, want 0 (entry expired)", got)
	}
}

// A mutation-path publish on the build's source table bumps its epoch: the
// retained table is rejected as stale and the rebuild sees the new data.
func TestBuildCacheEpochInvalidation(t *testing.T) {
	bt, pt := buildTables(t, 32, 64)
	e, c := cacheEngine(t, artifact.Config{BudgetBytes: 1 << 20, TTL: time.Minute}, Options{Workers: 2})
	spec := semiSpec(bt, pt, "ep/a", relop.Cmp{Op: relop.Ge, L: relop.Col("pv"), R: relop.ConstInt{V: 16}})
	wantRange(t, "burst 1", runOne(t, e, spec, buildAnchor{idx: 1}), 16, 32)

	// Publish a new build row (40): a cached serve would miss it.
	bt.MustAppend(int64(40))
	got := runOne(t, e, spec, buildAnchor{idx: 1})
	seen := make(map[int64]bool)
	for _, v := range got.MustCol("pv").I64 {
		seen[v] = true
	}
	if !seen[40] {
		t.Error("result after mutation lacks the new build row — stale table was served")
	}
	if builds := e.HashBuilds(); builds != 2 {
		t.Errorf("HashBuilds = %d, want 2 (stale entry rejected, rebuilt)", builds)
	}
	// The epoch is baked into the canonical scan fingerprint, so the
	// post-mutation lookup probes a different key entirely: staleness
	// registers as a miss, never an epoch-mismatch hit on the old entry.
	if s := c.Stats(); s.Invalidations != 0 {
		t.Errorf("Invalidations = %d, want 0 (epoch change rotates the key)", s.Invalidations)
	}
}

// Under a byte budget too small for two tables the cache evicts the
// lower-benefit one, and the footprint gauge never exceeds the budget.
func TestBuildCacheEvictionUnderTightBudget(t *testing.T) {
	bt, pt := buildTables(t, 32, 64)
	bt2 := storage.NewTable("bt2", storage.MustSchema(storage.Column{Name: "bv", Type: storage.Int64}))
	for i := 0; i < 32; i++ {
		bt2.MustAppend(int64(i))
	}
	// Budget sized to one 32-row table (rows + index), not two.
	e, c := cacheEngine(t, artifact.Config{BudgetBytes: 1500, TTL: time.Minute}, Options{Workers: 2})
	specA := semiSpec(bt, pt, "ev/a", nil)
	specB := semiSpec(bt2, pt, "ev/b", nil)
	runOne(t, e, specA, buildAnchor{idx: 1})
	runOne(t, e, specB, buildAnchor{idx: 1})
	s := c.Stats()
	if s.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1 (second table displaced the first)", s.Evictions)
	}
	if s.Entries != 1 {
		t.Errorf("Entries = %d, want 1", s.Entries)
	}
	if s.Bytes > 1500 || e.CacheBytes() > 1500 {
		t.Errorf("CacheBytes = %d exceeds the %d budget", s.Bytes, 1500)
	}
	// The evicted table is gone: re-running its query rebuilds.
	runOne(t, e, specA, buildAnchor{idx: 1})
	if got := e.HashBuilds(); got != 3 {
		t.Errorf("HashBuilds = %d, want 3 (eviction forced a rebuild)", got)
	}
}

// A mixed group (anchored at the join with the build candidate inside its
// shared subtree) also serves its build from the cache: the second burst's
// fan-out group starts with a sealed table and spawns no build subtree.
func TestMixedGroupServesBuildFromCache(t *testing.T) {
	bt, pt := buildTables(t, 32, 64)
	e, _ := cacheEngine(t, artifact.Config{BudgetBytes: 1 << 20, TTL: time.Minute}, Options{Workers: 2})
	spec := semiSpec(bt, pt, "mx/a", relop.Cmp{Op: relop.Lt, L: relop.Col("pv"), R: relop.ConstInt{V: 32}})
	// joinOnly has no ChoosePivot: both bursts anchor mixed groups at the
	// declared join pivot.
	wantRange(t, "burst 1", runOne(t, e, spec, joinOnly{}), 0, 32)
	wantRange(t, "burst 2", runOne(t, e, spec, joinOnly{}), 0, 32)
	if got := e.HashBuilds(); got != 1 {
		t.Errorf("HashBuilds = %d, want 1 (mixed group reused the cached table)", got)
	}
	if got := e.CacheHits(); got < 1 {
		t.Errorf("CacheHits = %d, want at least 1", got)
	}
}

// resultSpec is a scan → count aggregate whose root is offered as a pivot
// candidate, making the finished result a cacheable artifact.
func resultSpec(pt *storage.Table, sig string) QuerySpec {
	schema := storage.MustSchema(storage.Column{Name: "pv", Type: storage.Int64})
	return QuerySpec{
		Signature: sig,
		Pivot:     0,
		Pivots: []PivotOption{
			{Pivot: 1, Model: core.Query{Name: sig + "@agg", Below: []float64{2}, PivotW: 1, PivotS: 0.01}},
			{Pivot: 0, Model: core.Query{Name: sig + "@scan", PivotW: 2, PivotS: 0.5, Above: []float64{1}}},
		},
		Nodes: []NodeSpec{
			ScanNode(sig+"/scan", pt, nil, []string{"pv"}, 16),
			{
				Name:        sig + "/agg",
				Input:       0,
				Fingerprint: sig + "/count",
				Op: func(emit relop.Emit) (relop.Operator, error) {
					return relop.NewHashAgg(schema, nil, []relop.AggSpec{{Func: relop.Count, As: "n"}}, emit)
				},
			},
		},
	}
}

// A completed root-pivot result run is retained and a fingerprint-matching
// re-arrival is served from it without re-executing the plan.
func TestResultRunServedFromCache(t *testing.T) {
	_, pt := buildTables(t, 4, 64)
	e, c := cacheEngine(t, artifact.Config{BudgetBytes: 1 << 20, TTL: time.Minute}, Options{Workers: 2})
	spec := resultSpec(pt, "rr/a")
	first := runOne(t, e, spec, joinOnly{})
	if first.Len() != 1 || first.MustCol("n").I64[0] != 64 {
		t.Fatalf("cold run result = %v rows", first.Len())
	}
	second := runOne(t, e, spec, joinOnly{})
	if second.Len() != 1 || second.MustCol("n").I64[0] != 64 {
		t.Fatalf("warm run result differs: %v rows", second.Len())
	}
	if got := e.CacheHits(); got != 1 {
		t.Errorf("CacheHits = %d, want 1 (second run served)", got)
	}
	if got := e.Completed(); got != 2 {
		t.Errorf("Completed = %d, want 2 (served runs count as completions)", got)
	}
	if s := c.Stats(); s.Entries != 1 {
		t.Errorf("cache entries = %d, want the result run retained", s.Entries)
	}
	// A never-share submission must not be served retained work.
	cold := runOne(t, e, spec, nil)
	if cold.MustCol("n").I64[0] != 64 {
		t.Fatal("never-share run wrong result")
	}
	if got := e.CacheHits(); got != 1 {
		t.Errorf("CacheHits after never-share run = %d, want still 1", got)
	}
}

// A mutation to the scanned table invalidates the retained result run: the
// re-arrival recomputes and sees the new row.
func TestResultRunEpochInvalidation(t *testing.T) {
	_, pt := buildTables(t, 4, 64)
	e, c := cacheEngine(t, artifact.Config{BudgetBytes: 1 << 20, TTL: time.Minute}, Options{Workers: 2})
	spec := resultSpec(pt, "ri/a")
	runOne(t, e, spec, joinOnly{})
	pt.MustAppend(int64(999))
	got := runOne(t, e, spec, joinOnly{})
	if n := got.MustCol("n").I64[0]; n != 65 {
		t.Errorf("count after mutation = %d, want 65 (stale run must not be served)", n)
	}
	// Epoch-in-fingerprint: the mutated re-arrival looks up a rotated key,
	// so the stale run is simply never found (a miss), not invalidated.
	if s := c.Stats(); s.Invalidations != 0 {
		t.Errorf("Invalidations = %d, want 0 (epoch change rotates the key)", s.Invalidations)
	}
}

// Drop-and-recreate: a replacement table restarts its epoch, so its
// (name, schema, epoch) triple can exactly collide with the retired table's
// retained artifacts. The engine's table-identity qualifier keeps the two
// instances apart — the recreated table's run recomputes over the new data
// instead of being served the retired table's result.
func TestResultRunNotServedAcrossTableRecreate(t *testing.T) {
	mkTable := func(val func(i int) int64) *storage.Table {
		tbl := storage.NewTable("rc", storage.MustSchema(storage.Column{Name: "rv", Type: storage.Int64}))
		for i := 0; i < 64; i++ {
			tbl.MustAppend(val(i))
		}
		return tbl
	}
	schema := storage.MustSchema(storage.Column{Name: "rv", Type: storage.Int64})
	sumResultSpec := func(tbl *storage.Table) QuerySpec {
		return QuerySpec{
			Signature: "rc/a",
			Pivot:     0,
			Pivots: []PivotOption{
				{Pivot: 1, Model: core.Query{Name: "rc@agg", Below: []float64{2}, PivotW: 1, PivotS: 0.01}},
			},
			Nodes: []NodeSpec{
				ScanNode("rc/scan", tbl, nil, []string{"rv"}, 16),
				{Name: "rc/agg", Input: 0, Fingerprint: "rc/sum", Op: func(emit relop.Emit) (relop.Operator, error) {
					return relop.NewHashAgg(schema, nil, []relop.AggSpec{{Func: relop.Sum, Expr: relop.Col("rv"), As: "total"}}, emit)
				}},
			},
		}
	}
	e, _ := cacheEngine(t, artifact.Config{BudgetBytes: 1 << 20, TTL: time.Minute}, Options{Workers: 2})
	old := mkTable(func(i int) int64 { return int64(i) })
	first := runOne(t, e, sumResultSpec(old), joinOnly{})
	if got := first.MustCol("total").F64[0]; got != 2016 {
		t.Fatalf("cold run sum = %v, want 2016", got)
	}
	// Same name, same schema, same append count (equal epoch), new contents.
	replacement := mkTable(func(i int) int64 { return 1 })
	second := runOne(t, e, sumResultSpec(replacement), joinOnly{})
	if got := second.MustCol("total").F64[0]; got != 64 {
		t.Errorf("recreated table served the retired table's result: sum = %v, want 64", got)
	}
	if got := e.CacheHits(); got != 0 {
		t.Errorf("CacheHits = %d, want 0 (recreated table must miss)", got)
	}
}

// The periodic sweep (Options.SweepInterval) reclaims wedged exchange
// entries on its own cadence and leaves unexpired cached artifacts alone —
// sweep-vs-cache non-interference.
func TestSweepIntervalTickerAndCacheNonInterference(t *testing.T) {
	bt, pt := buildTables(t, 32, 64)
	e, c := cacheEngine(t,
		artifact.Config{BudgetBytes: 1 << 20, TTL: time.Minute},
		Options{Workers: 2, SweepInterval: 5 * time.Millisecond, SweepAge: time.Millisecond})

	// Seed the cache with a retired build.
	spec := semiSpec(bt, pt, "sw/a", nil)
	runOne(t, e, spec, buildAnchor{idx: 1})
	if s := c.Stats(); s.Entries != 1 {
		t.Fatalf("cache entries = %d, want 1", s.Entries)
	}

	// A wedged, never-sealed build state only the sweep can reclaim.
	e.Exchange().PublishBuildState("sw/wedged")
	deadline := time.Now().Add(2 * time.Second)
	for e.Exchange().SweepReclaims() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("periodic sweep never reclaimed the wedged build")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Many sweep ticks later the cached artifact is still live and serves
	// the next burst.
	if s := c.Stats(); s.Entries != 1 {
		t.Fatalf("sweep evicted an unexpired cached artifact: %+v", s)
	}
	runOne(t, e, spec, buildAnchor{idx: 1})
	if got := e.HashBuilds(); got != 1 {
		t.Errorf("HashBuilds = %d, want 1 (cache survived the sweeps)", got)
	}
}
