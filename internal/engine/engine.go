package engine

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/relop"
	"repro/internal/storage"
)

// FanOutMode selects how a shared pivot fans one output page out to its m
// consumers.
type FanOutMode int

const (
	// FanOutShare (the default) hands every consumer the same refcounted
	// read-only page (storage.Batch.MarkShared); a consumer deep-copies only
	// on its write path (storage.Batch.Writable). The pivot still pays the
	// per-consumer delivery s — the sequential hand-off the model charges —
	// but no longer a full page copy per sharer.
	FanOutShare FanOutMode = iota
	// FanOutClone eagerly deep-copies the page for every consumer except the
	// last, which receives the original (a move, not a copy). This is the
	// physical realization of the model's per-consumer cost s as the paper's
	// testbed paid it; profiling calibration and the fan-out ablation use it.
	FanOutClone
)

// String returns the mode label.
func (m FanOutMode) String() string {
	switch m {
	case FanOutShare:
		return "share"
	case FanOutClone:
		return "clone"
	default:
		return fmt.Sprintf("FanOutMode(%d)", int(m))
	}
}

// Options configures an Engine.
type Options struct {
	// Workers is the emulated processor count n (required, ≥ 1).
	Workers int
	// QueueCap is the page capacity of inter-operator queues (default 8).
	// Finite capacity makes slow consumers throttle producers.
	QueueCap int
	// FanOut selects the pivot fan-out discipline (default FanOutShare:
	// refcounted read-only pages, clone only on the write path).
	FanOut FanOutMode
	// MaxGroupSize caps sharers per group (0 = unlimited). Section 8.1's
	// multiple-groups strategy bounds groups to preserve parallelism.
	MaxGroupSize int
	// Profile enables per-node busy-time accounting for parameter
	// estimation (Section 3.1). Profiling implies NoFusion: busy time is
	// attributed per plan node, which a fused segment cannot separate.
	Profile bool
	// NoFusion disables operator-chain fusion, running every plan node as
	// its own staged task with an intermediate PageQueue per hop — the
	// pre-fusion execution model, kept for the fused-vs-staged ablation.
	// By default linear unary-operator runs between task boundaries (pivot
	// fan-outs, joins, collectors, the sink) execute as single fused tasks.
	NoFusion bool
	// StartPaused creates the engine with its processors halted; queries
	// may be submitted (and will merge into sharing groups, since no pivot
	// can emit) but nothing executes until Start. This is the batch-arrival
	// regime of multi-query optimization, and what the offline profiling
	// procedure uses to pin sharing degrees exactly.
	StartPaused bool
	// InflightSharing lets queries whose pivot is a declared table scan
	// (NodeSpec.Scan) join a sharing group after its scan has started: the
	// joiner attaches to the circular scan at its current cursor, consumes
	// to the end of the table, and covers the missed prefix when the cursor
	// wraps around. Requires a policy implementing AttachPolicy to admit
	// joiners. Off by default, which preserves the paper's submission-time
	// grouping semantics exactly.
	InflightSharing bool
	// Cache, when set, retains retired shared artifacts — sealed hash-join
	// build states and completed root-pivot result runs — for the cache's
	// keep-alive window instead of dropping them with their last consumer.
	// Lookups consult it before anchoring fresh groups, so bursty arrivals
	// separated by an idle gap attach to retained work (zero rebuild)
	// rather than re-executing it. Nil (the default) preserves
	// retire-at-last-release semantics exactly. Entries are invalidated by
	// source-table epoch, so mutation-path publishes are never served stale.
	Cache *artifact.Cache
	// SweepInterval, when positive, runs SweepExchange on a background
	// ticker with SweepAge as the reclaim age — the wedged-consumer reclaim
	// path under live traffic, without the driver having to call it.
	SweepInterval time.Duration
	// SweepAge is the age beyond which the periodic sweep force-retires
	// orphaned or wedged exchange entries (default: SweepInterval).
	SweepAge time.Duration
	// TraceCap sizes the per-engine ring buffer of per-query lifecycle
	// traces: 0 means the default (256), a negative value disables tracing
	// entirely (span calls reduce to nil-receiver tests). Traces record span
	// events from submit through pivot choice to completion, plus scheduler
	// quanta and queue-wait time, and are served by the server's trace op.
	TraceCap int
	// Bus, when set, replaces the engine's private work exchange with a
	// shared one — the cross-shard artifact bus. Engines sharing a bus (the
	// shards of a Cluster) publish and discover build states through it, so a
	// hash table built on any shard serves probers on every shard: the submit
	// path, finding no local group and no cached table, consults the bus for
	// a live build state under the same canonical key and attaches to it as a
	// foreign share — build once per cluster, not once per shard. Sharing a
	// bus only composes with shard-agnostic fingerprints: subplans over
	// replicated tables (the same *storage.Table instance on every shard)
	// canonicalize identically everywhere, while range-partitioned shard
	// tables carry shard-qualified names so shard-local artifacts never
	// collide. Nil (the default) keeps a private exchange.
	Bus *storage.Exchange
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.QueueCap == 0 {
		o.QueueCap = 8
	}
	if o.SweepAge == 0 {
		o.SweepAge = o.SweepInterval
	}
	if o.TraceCap == 0 {
		o.TraceCap = 256
	}
	return o
}

// SharePolicy decides, at submission time, whether a query should join a
// sharing group. Implementations: always-share, never-share (a nil policy),
// and the model-guided policy of Section 8.
type SharePolicy interface {
	// ShouldJoin reports whether a query with the given model should join a
	// group that would then contain m members.
	ShouldJoin(q core.Query, m int) bool
}

// ParallelPolicy extends SharePolicy with the share-vs-parallelize
// decision: when a query will not join a sharing group, the engine asks the
// policy for a clone degree and, if it exceeds 1 (and the plan supports
// partitioned execution), runs the query unshared as that many partitioned
// clones fanning into a synthesized merge node.
type ParallelPolicy interface {
	SharePolicy
	// Degree returns the partitioned clone degree (1 = serial) for a query
	// executing unshared while load queries (including it) are active.
	Degree(q core.Query, load int) int
}

// LoadAwarePolicy lets a policy weigh group admission against the engine's
// current load rather than only the prospective group size. Closed-loop
// traffic grows groups one arrival at a time, so a pure m-based test
// evaluates sharing at m = 2 even when eight queries are in flight — and a
// hybrid share-vs-parallelize policy would then refuse the group it should
// anchor. When a policy implements this interface the engine consults
// ShouldJoinUnderLoad instead of ShouldJoin at submission time.
type LoadAwarePolicy interface {
	SharePolicy
	// ShouldJoinUnderLoad reports whether a query should join a group that
	// would then have m members, while load queries (including this one)
	// are active engine-wide. canParallel reports whether the plan could
	// alternatively run as partitioned clones — when false the policy must
	// not refuse sharing in favor of a parallelize arm the engine cannot
	// realize (the refusal would silently degrade to run-alone).
	ShouldJoinUnderLoad(q core.Query, m, load int, canParallel bool) bool
	// ShouldAttachUnderLoad is the in-flight counterpart: whether to attach
	// to a scan with the given remaining shared fraction when the group
	// would have m live members and load queries are active. Policies
	// without in-flight reasoning can delegate to their ShouldAttach.
	ShouldAttachUnderLoad(q core.Query, m int, remaining float64, load int, canParallel bool) bool
}

// PivotPolicy extends SharePolicy with model-guided pivot selection: when a
// query offering several candidate pivot levels (QuerySpec.Pivots) anchors a
// fresh sharing group, the engine asks the policy which level to anchor at.
// Joining an existing group needs no selection — the group's level is fixed
// and the engine probes candidates highest-first.
type PivotPolicy interface {
	SharePolicy
	// ChoosePivot returns the index (into cands, ordered highest pivot
	// first) of the level a new group should anchor at, while load queries
	// (including this one) are active. Each candidate is the query's model
	// compiled at that level. Return a negative index to keep the spec's
	// declared pivot.
	ChoosePivot(cands []core.Query, load int) int
}

// AttachPolicy extends SharePolicy with the in-flight admission test:
// whether a query should attach to a scan already in progress, given the
// fraction of the table it would genuinely share (the residual circle of
// the longest-living current consumer — see storage.CircularScan.Remaining).
// Only that fraction is consumed riding alongside existing members; the
// rest is re-scanned solely for the joiner, extra pivot work the model must
// charge against the sharing benefit.
type AttachPolicy interface {
	SharePolicy
	// ShouldAttach reports whether a query with the given model should join
	// an in-flight group that would then have m live members, when remaining
	// is the fraction of the scan it would share with them.
	ShouldAttach(q core.Query, m int, remaining float64) bool
}

// Handle tracks one submitted query.
type Handle struct {
	name   string
	done   chan struct{}
	onDone func(*storage.Batch, error)

	// resultKey/resultModel/resultEpoch describe the query's result as a
	// cacheable artifact (set at submit when the engine runs with a
	// keep-alive cache and the spec's fingerprint covers the whole plan):
	// the sink offers the finished batch to the cache under resultKey, and
	// a fingerprint-matching arrival at the same epoch is served from it.
	resultKey   string
	resultModel core.Query
	resultEpoch uint64

	// trace is the query's lifecycle trace (nil with tracing disabled);
	// decision is the submit-time decision record, stamped before any of the
	// query's tasks spawn and read lock-free at completion.
	trace    *obs.QueryTrace
	decision core.DecisionRecord

	mu     sync.Mutex
	result *storage.Batch
	err    error

	submitted time.Time
	completed time.Time
}

// Wait blocks until the query finishes and returns its result.
func (h *Handle) Wait() (*storage.Batch, error) {
	<-h.done
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.result, h.err
}

// Duration returns the query's response time (valid after Wait).
func (h *Handle) Duration() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.completed.Sub(h.submitted)
}

// shareGroup is a set of queries merged at a pivot: one instance of the
// shared sub-plan whose pivot output fans out to every member's private
// chain. Members need not be identical queries — any spec whose shared
// prefix canonicalizes to the group's key may join, each bringing its own
// private chain (residual filters, different aggregates).
type shareGroup struct {
	signature string
	// key is the canonical fingerprint of the shared subplan at the group's
	// pivot level (see fingerprint.go); the joinable map and the work
	// exchange are keyed by it.
	key   string
	pivot *outbox
	// outlet mirrors the group in the unified work-exchange registry so
	// sharing above the scan is as observable as scan-level primitives.
	outlet *storage.Outlet
	// inflight is set instead of pivot when the group's pivot is a declared
	// scan shared through the circular scan registry; such groups admit
	// members after the pivot starts emitting.
	inflight *inflightScan
	// build is set when the group shares a hash-join build side: alone for a
	// pure build group (the whole shared part is the build subtree plus the
	// collector), or next to pivot for a mixed group (a fan-out group whose
	// shared join runs split, its table additionally published under
	// buildKey). Build membership outlives the pivot seal — the table stays
	// attachable until its last prober releases it.
	build    *buildShare
	buildKey string
	spec     QuerySpec
	// trace is the anchor member's lifecycle trace; the group's seal event
	// lands there (joiners see their own attach events).
	trace *obs.QueryTrace

	mu      sync.Mutex
	size    int
	started bool
	err     error
	// onFail runs once, on the first failure, outside g.mu. In-flight
	// groups use it to abort the shared scan: a dead member chain stops
	// draining its head queue, and without the abort the scan task would
	// park on that full queue forever while the still-joinable group kept
	// recruiting new members into the hang.
	onFail func()
}

func (g *shareGroup) fail(err error) {
	g.mu.Lock()
	first := g.err == nil
	if first {
		g.err = err
	}
	hook := g.onFail
	g.mu.Unlock()
	if first && hook != nil {
		hook()
	}
}

func (g *shareGroup) firstError() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

// Engine is the staged execution engine.
type Engine struct {
	sched *Scheduler
	opts  Options
	clock *busyClock
	scans *storage.ScanRegistry
	// cache is the keep-alive shared-artifact cache (nil = retention off).
	cache     *artifact.Cache
	closeOnce sync.Once
	// tracer retains the most recent per-query lifecycle traces (nil when
	// Options.TraceCap < 0); audit accumulates predicted-vs-measured benefit
	// per decision kind; env is the model environment at the engine's
	// emulated processor count, used to price decisions for the records.
	tracer *obs.Tracer
	audit  *obs.Audit
	env    core.Env

	mu sync.Mutex
	// sweepStop ends the periodic sweep goroutine (nil when none running).
	sweepStop chan struct{}
	// closed is set by Close; it gates StartSweep so a late sweep can never
	// outlive the engine.
	closed bool
	// drained is created by Drain and closed when active reaches zero; a
	// non-nil value means the engine refuses new submissions.
	drained  chan struct{}
	joinable map[string]*shareGroup // keyed by subplan share key
	// compiled memoizes submit-path compile artifacts per QuerySpec.PlanKey
	// (see compile.go); compileHits/compileMisses count reuse.
	compiled      map[string]*Compiled
	compileHits   int64
	compileMisses int64
	// tableIdent binds each scanned table name to the first *storage.Table
	// instance this engine saw under it (guarded by identMu, not e.mu —
	// compiles run without the engine lock). Share keys canonicalize scans
	// by name, and names are not an in-process identity: a same-named
	// distinct instance (drop-and-recreate, a second catalog) is qualified
	// by its process-unique ID so its groups and cached artifacts can never
	// cross with the first instance's (see tableIdentity).
	identMu          sync.Mutex
	tableIdent       map[string]*storage.Table
	active           int
	completed        int64
	inflightAttaches int64
	parallelRuns     int64
	parallelClones   int64
	hashBuilds       int64
	buildJoins       int64
	busJoins         int64
	pivotJoins       map[int]int64 // pivot level -> members merged there
	// calibNS is the EWMA of wall-nanoseconds per unit of modeled work u′,
	// learned from queries that ran effectively alone; the audit uses it to
	// turn the model's alone estimate into an expected wall time.
	calibNS float64
}

// New creates and starts an engine emulating opts.Workers processors.
func New(opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	sched, err := NewScheduler(opts.Workers)
	if err != nil {
		return nil, err
	}
	scans := opts.Bus
	if scans == nil {
		scans = storage.NewExchange()
	}
	e := &Engine{
		sched:      sched,
		opts:       opts,
		clock:      newBusyClock(opts.Profile),
		scans:      scans,
		cache:      opts.Cache,
		tracer:     obs.NewTracer(opts.TraceCap),
		audit:      obs.NewAudit(),
		env:        core.NewEnv(float64(opts.Workers)),
		joinable:   make(map[string]*shareGroup),
		compiled:   make(map[string]*Compiled),
		tableIdent: make(map[string]*storage.Table),
		pivotJoins: make(map[int]int64),
	}
	if opts.SweepInterval > 0 {
		e.StartSweep(opts.SweepInterval, opts.SweepAge)
	}
	if !opts.StartPaused {
		sched.Start()
	}
	return e, nil
}

// Start launches a paused engine's processors. It is idempotent and a no-op
// for engines created running.
func (e *Engine) Start() { e.sched.Start() }

// StartSweep launches the background exchange sweep on the given cadence —
// the late counterpart of Options.SweepInterval, for drivers that decide on
// a sweep after construction (a server enabling reclamation once it starts
// accepting traffic). maxAge ≤ 0 defaults to the cadence. It reports whether
// the sweep started: false when a sweep is already running, the cadence is
// non-positive, or the engine is closed. The closed check is what keeps a
// late start from leaking the ticker goroutine — a sweep started after
// Close would otherwise never receive the stop signal Close already sent.
func (e *Engine) StartSweep(every, maxAge time.Duration) bool {
	if every <= 0 {
		return false
	}
	if maxAge <= 0 {
		maxAge = every
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed || e.sweepStop != nil {
		return false
	}
	e.sweepStop = make(chan struct{})
	go e.sweepLoop(every, maxAge, e.sweepStop)
	return true
}

// Close shuts the engine down. Outstanding queries are abandoned, the
// periodic sweep (if any) stops. Idempotent.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		e.mu.Lock()
		e.closed = true
		stop := e.sweepStop
		e.mu.Unlock()
		if stop != nil {
			close(stop)
		}
		e.sched.Stop()
	})
}

// ErrDraining is returned by Submit once Drain has been called: the engine
// finishes what it has but admits nothing new.
var ErrDraining = fmt.Errorf("engine: draining, not accepting new queries")

// Drain stops admission and blocks until every in-flight query has
// completed. Subsequent Submits fail with ErrDraining; groups already
// running finish normally (their members' results and callbacks are
// delivered). Drain is idempotent and safe to call concurrently; every
// caller returns once the engine is idle. The caller typically follows with
// Close.
func (e *Engine) Drain() {
	e.mu.Lock()
	if e.drained == nil {
		e.drained = make(chan struct{})
		if e.active == 0 {
			close(e.drained)
		}
	}
	ch := e.drained
	e.mu.Unlock()
	<-ch
}

// Draining reports whether Drain has been called.
func (e *Engine) Draining() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.drained != nil
}

// Workers returns the emulated processor count.
func (e *Engine) Workers() int { return e.opts.Workers }

// Completed returns the number of queries finished since startup.
func (e *Engine) Completed() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.completed
}

// BusyTimes returns per-node accumulated busy time (Profile mode only).
func (e *Engine) BusyTimes() map[string]time.Duration { return e.clock.snapshot() }

// Steals returns the number of tasks the scheduler's workers have taken from
// peers' run queues since startup — nonzero steals under load show the
// work-stealing balancer is moving work off hot queues.
func (e *Engine) Steals() int64 { return e.sched.Steals() }

// InflightAttaches returns the number of queries that joined a sharing
// group after its scan had started (in-flight attaches).
func (e *Engine) InflightAttaches() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.inflightAttaches
}

// ParallelRuns returns the number of queries executed as partitioned
// clones since startup.
func (e *Engine) ParallelRuns() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.parallelRuns
}

// ParallelClones returns the total clone pipelines spawned for parallel
// runs since startup (Σ degree over ParallelRuns).
func (e *Engine) ParallelClones() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.parallelClones
}

// HashBuilds returns the number of shared hash-join builds executed (sealed)
// since startup — one per build-sharing group however many members probed
// the table. Joins executed through the opaque single-query path are not
// counted.
func (e *Engine) HashBuilds() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.hashBuilds
}

// BuildJoins returns the number of queries that attached to an existing
// shared hash build (the group's anchor is not counted — it shares with no
// one until someone joins).
func (e *Engine) BuildJoins() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.buildJoins
}

// BusJoins returns the number of queries that attached through the shared
// bus to a build state published by another engine — the cross-shard subset
// of BuildJoins. Always zero without Options.Bus.
func (e *Engine) BusJoins() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.busJoins
}

// CacheStats returns the keep-alive cache's counters and footprint (zero
// when the engine runs without a cache).
func (e *Engine) CacheStats() artifact.Stats {
	if e.cache == nil {
		return artifact.Stats{}
	}
	return e.cache.Stats()
}

// CacheHits returns the number of lookups served from a retained artifact —
// each one a late attach (or a whole result) that cost zero rebuild work.
func (e *Engine) CacheHits() int64 { return e.CacheStats().Hits }

// CacheMisses returns the number of cache lookups that found nothing usable
// (absent, expired, or stale).
func (e *Engine) CacheMisses() int64 { return e.CacheStats().Misses }

// CacheEvictions returns the number of retained artifacts dropped for
// memory pressure.
func (e *Engine) CacheEvictions() int64 { return e.CacheStats().Evictions }

// CacheBytes returns the cache's current retained footprint. It never
// exceeds the cache's byte budget.
func (e *Engine) CacheBytes() int64 { return e.CacheStats().Bytes }

// SweepExchange force-retires work-exchange entries no consumer will ever
// reclaim — superseded orphans and wedged or unreferenced build states older
// than maxAge — returning the number reclaimed, and prunes joinable build
// groups whose table has retired. Long-running drivers call it periodically
// (or set Options.SweepInterval and let the engine do so). The keep-alive
// cache runs its own clock: the sweep only releases bytes held by entries
// already past their keep-alive window, never live ones — sweeping and
// caching do not interfere.
func (e *Engine) SweepExchange(maxAge time.Duration) int {
	n := e.scans.Sweep(maxAge)
	if e.cache != nil {
		e.cache.ExpireTTL()
	}
	e.mu.Lock()
	for k, g := range e.joinable {
		if g.build != nil && k == g.buildKey && g.build.state.Retired() {
			delete(e.joinable, k)
		}
	}
	e.mu.Unlock()
	return n
}

// Active returns the number of submitted queries not yet completed.
func (e *Engine) Active() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.active
}

// ScanRegistry exposes the engine's work-exchange registry — circular
// scans, partitioned scans, and shared subplan outlets — for monitoring.
func (e *Engine) ScanRegistry() *storage.Exchange { return e.scans }

// Exchange is ScanRegistry under the registry's unified name.
func (e *Engine) Exchange() *storage.Exchange { return e.scans }

// PivotLevelJoins returns, per pivot node level, how many queries merged
// into a sharing group anchored at that level (submission-time joins plus
// in-flight attaches; group anchors are not counted — they share with no
// one until someone joins).
func (e *Engine) PivotLevelJoins() map[int]int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[int]int64, len(e.pivotJoins))
	for k, v := range e.pivotJoins {
		out[k] = v
	}
	return out
}

// Submit enqueues a query for execution. If policy is non-nil the engine
// tries to share: join an existing compatible group when the policy agrees,
// otherwise start a new joinable group. A nil policy always executes
// independently (never-share).
func (e *Engine) Submit(spec QuerySpec, policy SharePolicy) (*Handle, error) {
	return e.SubmitFn(spec, policy, nil)
}

// SubmitFn is Submit with a completion callback, invoked from the engine
// worker that finishes the query (after the handle is resolved). Closed-loop
// drivers use it to resubmit without dedicating a goroutine per client —
// essential on hosts where spare OS-level parallelism is scarce.
func (e *Engine) SubmitFn(spec QuerySpec, policy SharePolicy, onDone func(*storage.Batch, error)) (*Handle, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	// Resolve the spec's compile artifact — memoized per PlanKey, so a
	// repeated family pays a few atomic epoch loads instead of re-rendering
	// every canonical fingerprint (see compile.go).
	cp, compileHit := e.compileForHit(spec)
	h := &Handle{name: spec.Signature, done: make(chan struct{}), onDone: onDone, submitted: time.Now()}
	h.trace = e.tracer.Begin(spec.Signature)
	h.trace.Event("submit", spec.Signature)
	if compileHit {
		h.trace.Event("compile", "hit")
	} else {
		h.trace.Event("compile", "miss")
	}

	// With a keep-alive cache and a whole-plan fingerprint, the query's
	// result is itself a shareable artifact: tag the handle so the sink
	// offers the finished batch to the cache. A nil policy means
	// never-share, which extends to never seeding or reading retained work.
	if e.cache != nil && policy != nil && cp.resultOK {
		h.resultKey = cp.resultKey
		h.resultModel = cp.resultModelFor(spec)
		h.resultEpoch = cp.epochAtNode(len(spec.Nodes) - 1)
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.drained != nil {
		return nil, ErrDraining
	}
	// Serve the query outright when a fingerprint-matching result run at
	// the current epoch is retained — the across-burst analogue of joining
	// a group whose pivot is the root, so it passes the same admission test
	// as a size-2 group.
	if h.resultKey != "" && e.admitSharedLocked(policy, h.resultModel, 2, spec.CanParallel()) {
		if res, ok := e.lookupCachedResult(h); ok {
			z, sp := e.shareBenefit(h.resultModel, 2)
			e.stampDecision(h, "cache-result", len(spec.Nodes)-1, 2, h.resultModel, z, sp)
			emitDecision(h, "serve", "cached result run")
			e.serveResult(h, res)
			return h, nil
		}
	}
	if policy != nil {
		// Probe the candidate pivots highest level first: the paper defines
		// the pivot as the highest point where sharing is possible, and a
		// group at a higher level eliminates strictly more work per joiner.
		// opt is a local copy whose model comes from the incoming spec —
		// admission always prices with the caller's current estimates, even
		// on a warm compile hit.
		for j, opt := range cp.opts {
			opt.Model = cp.optModel(spec, j)
			if opt.Build {
				// Build-side candidate: the joinable entry is a shared hash
				// build (pure or published by a mixed group); members attach
				// to the table — before or after it seals — and run
				// everything outside the build subtree privately.
				key := cp.keys[j]
				g := e.joinable[key]
				if g != nil && g.build != nil && g.build.state.Retired() {
					// The table's last prober released it (or the sweep
					// reclaimed a wedged build); prune the stale entry. The
					// retired table may live on in the keep-alive cache,
					// where the consult below finds it.
					delete(e.joinable, key)
					g = nil
				}
				if g == nil || g.build == nil {
					// No live local group at this level. On a shared bus the
					// build may be live on another engine — in flight or
					// sealed but not yet retired; attaching is sharing with
					// that engine's group, so it passes the usual admission
					// test with m counting the state's cluster-wide probers.
					// A successful attach anchors a local foreign share the
					// rest of this shard's burst then joins like any build
					// group.
					if e.opts.Bus != nil {
						if st := e.scans.LookupBuildState(key); st != nil &&
							e.admitSharedLocked(policy, opt.Model, st.Refs()+1, spec.CanParallel()) {
							z, sp := e.buildBenefit(opt.Model, st.Refs()+1)
							e.stampDecision(h, "bus-share", opt.Pivot, st.Refs()+1, opt.Model, z, sp)
							ng, err := e.newBusBuildGroupLocked(spec, opt, h, st, cp)
							if err != nil {
								return nil, err
							}
							if ng != nil {
								ng.trace = h.trace
								emitDecision(h, "attach", "bus build state")
								e.joinable[ng.key] = ng
								e.buildJoins++
								e.busJoins++
								e.pivotJoins[opt.Pivot]++
								e.active++
								return h, nil
							}
							// The state retired between the lookup and the
							// attach; fall through to the cache consult.
						}
					}
					// Consult the keep-alive cache before giving up on this
					// level, under the same admission test as joining a
					// size-2 group (attaching to retained work is sharing
					// with the departed group that produced it). A hit
					// anchors a cache-served group — the table is already
					// sealed, the build subtree never runs, and this query
					// registers as a late attach with zero build work —
					// which the rest of the burst then joins like any build
					// group.
					if e.admitSharedLocked(policy, opt.Model, 2, spec.CanParallel()) {
						epoch := cp.epochs[j]
						if tbl, ok := e.lookupCachedTable(key, epoch); ok {
							z, sp := e.buildBenefit(opt.Model, 2)
							e.stampDecision(h, "cache-build", opt.Pivot, 2, opt.Model, z, sp)
							ng, err := e.newCachedBuildGroupLocked(spec, opt, h, tbl, epoch, cp)
							if err != nil {
								return nil, err
							}
							ng.trace = h.trace
							emitDecision(h, "anchor", "cache-served build")
							e.joinable[ng.key] = ng
							e.buildJoins++
							e.pivotJoins[opt.Pivot]++
							e.active++
							return h, nil
						}
					}
					continue
				}
				mspec := spec
				mspec.Pivot = opt.Pivot
				mspec.Model = opt.Model
				g.mu.Lock()
				m := g.size + 1
				g.mu.Unlock()
				admit := e.opts.MaxGroupSize == 0 || m <= e.opts.MaxGroupSize
				if admit {
					admit = e.admitSharedLocked(policy, mspec.Model, m, spec.CanParallel())
				}
				if admit {
					z, sp := e.buildBenefit(mspec.Model, m)
					e.stampDecision(h, "build-share", opt.Pivot, m, mspec.Model, z, sp)
					attached, err := e.attachBuildLocked(g, mspec, h, cp)
					if err != nil {
						return nil, err
					}
					if attached {
						emitDecision(h, "attach", "shared hash build")
						e.buildJoins++
						e.pivotJoins[opt.Pivot]++
						e.active++
						return h, nil
					}
					// The table retired between the lookup and the attach;
					// fall through to the remaining candidates.
				}
				continue
			}
			g := e.joinable[cp.keys[j]]
			if g == nil {
				continue
			}
			// The member's view of the spec at this group's level: the
			// private chain starts above opt.Pivot and the model carries the
			// coefficients compiled there.
			mspec := spec
			mspec.Pivot = opt.Pivot
			mspec.Model = opt.Model
			switch {
			case g.inflight != nil:
				// In-flight group: members attach to the circular scan at
				// its current cursor, whether or not the pivot has emitted.
				// g.firstError guards the window between a member failing
				// and its abort closing the scan: an arrival there must not
				// inherit the doomed group's error.
				if ap, ok := policy.(AttachPolicy); ok && g.firstError() == nil {
					remaining, active, live := g.inflight.scan.Remaining()
					admit := func() bool {
						if lap, ok := policy.(LoadAwarePolicy); ok {
							return lap.ShouldAttachUnderLoad(mspec.Model, active+1, remaining, e.active+1, spec.CanParallel())
						}
						return ap.ShouldAttach(mspec.Model, active+1, remaining)
					}
					if live &&
						(e.opts.MaxGroupSize == 0 || active < e.opts.MaxGroupSize) &&
						admit() {
						z, sp := e.shareBenefit(core.AttachAdjusted(mspec.Model, active+1, remaining), active+1)
						e.stampDecision(h, "attach", opt.Pivot, active+1, mspec.Model, z, sp)
						attached, err := e.attachInflightLocked(g, mspec, h, cp)
						if err != nil {
							return nil, err
						}
						if attached {
							emitDecision(h, "attach", fmt.Sprintf("inflight scan remaining=%.2f", remaining))
							e.inflightAttaches++
							e.pivotJoins[opt.Pivot]++
							e.active++
							return h, nil
						}
						// The scan finished between the consult and the
						// attach; fall through to a fresh group.
					}
				}
			default:
				g.mu.Lock()
				canJoin := !g.started && (e.opts.MaxGroupSize == 0 || g.size < e.opts.MaxGroupSize)
				m := g.size + 1
				g.mu.Unlock()
				if canJoin {
					canJoin = e.admitSharedLocked(policy, mspec.Model, m, spec.CanParallel())
				}
				if canJoin {
					z, sp := e.shareBenefit(mspec.Model, m)
					e.stampDecision(h, "share", opt.Pivot, m, mspec.Model, z, sp)
					if err := e.attachLocked(g, mspec, h, cp); err != nil {
						return nil, err
					}
					emitDecision(h, "attach", "pivot group")
					e.pivotJoins[opt.Pivot]++
					e.active++
					return h, nil
				}
			}
		}
	}
	// Not sharing. The share-vs-parallelize decision: an explicit spec
	// degree wins, else a ParallelPolicy chooses one under the current load;
	// degree > 1 on a parallelizable plan runs partitioned clones instead of
	// the serial pipeline. Parallel runs are never joinable — they are the
	// unshared alternative the model weighs sharing against.
	if d := e.parallelDegreeLocked(spec, policy); d > 1 {
		e.stampDecision(h, "parallel", spec.Pivot, d, spec.Model, 0,
			core.ParallelSpeedup(spec.Model, d, e.env))
		if err := e.newParallelGroupLocked(spec, h, d, cp); err != nil {
			return nil, err
		}
		emitDecision(h, "anchor", fmt.Sprintf("partitioned clones d=%d", d))
		e.parallelRuns++
		e.parallelClones += int64(d)
		e.active++
		return h, nil
	}
	// Fresh group. When the spec offers several pivot levels, a
	// pivot-selecting policy chooses where to anchor it — possibly at a
	// build-side candidate, making the fresh group a pure build group;
	// otherwise the declared pivot stands.
	gspec := spec
	anchorBuild := PivotOption{Pivot: -1}
	if policy != nil && len(spec.Pivots) > 0 {
		if pp, ok := policy.(PivotPolicy); ok {
			opts := cp.opts
			cands := make([]core.Query, len(opts))
			for i := range opts {
				cands[i] = cp.optModel(spec, i)
			}
			if i := pp.ChoosePivot(cands, e.active+1); i >= 0 && i < len(opts) {
				if opts[i].Build {
					anchorBuild = opts[i]
					anchorBuild.Model = cands[i]
				} else {
					gspec.Pivot = opts[i].Pivot
					gspec.Model = cands[i]
				}
			}
		}
	}
	if anchorBuild.Pivot >= 0 {
		// An anchor runs alone until someone joins: predicted speedup 1, with
		// the prospective margin for the next joiner recorded as Z.
		z, _ := e.buildBenefit(anchorBuild.Model, 2)
		e.stampDecision(h, "anchor", anchorBuild.Pivot, 1, anchorBuild.Model, z, 1)
		g, err := e.newBuildGroupLocked(gspec, anchorBuild, h, cp)
		if err != nil {
			return nil, err
		}
		g.trace = h.trace
		emitDecision(h, "anchor", "build group")
		e.joinable[g.key] = g
		e.active++
		return h, nil
	}
	if policy != nil {
		z, _ := e.shareBenefit(gspec.Model, 2)
		e.stampDecision(h, "anchor", gspec.Pivot, 1, gspec.Model, z, 1)
	} else {
		e.stampDecision(h, "alone", gspec.Pivot, 1, gspec.Model, 0, 1)
	}
	g, err := e.newGroupLocked(gspec, h, policy, cp)
	if err != nil {
		return nil, err
	}
	g.trace = h.trace
	if policy != nil {
		emitDecision(h, "anchor", "pivot group")
		e.joinable[g.key] = g
		if g.build != nil {
			// A mixed group is additionally joinable at its build subtree.
			e.joinable[g.buildKey] = g
		}
	} else {
		emitDecision(h, "anchor", "unshared run")
	}
	e.active++
	return h, nil
}

// admitSharedLocked runs the submission-time admission test shared by every
// sharing path: the load-aware form when the policy supports it, the plain
// m-based Section 8 test otherwise, never for a nil policy. Cache-served
// attaches use it with m = 2 — attaching to retained work is sharing with
// the departed group that produced it — so never-share-style policies are
// not quietly handed shared artifacts. Caller holds e.mu.
func (e *Engine) admitSharedLocked(policy SharePolicy, model core.Query, m int, canParallel bool) bool {
	if policy == nil {
		return false
	}
	if lap, ok := policy.(LoadAwarePolicy); ok {
		return lap.ShouldJoinUnderLoad(model, m, e.active+1, canParallel)
	}
	return policy.ShouldJoin(model, m)
}

// parallelDegreeLocked resolves the clone degree for an unshared execution
// of spec: the spec's explicit request, else the policy's choice, clamped
// to the emulated processor count. Caller holds e.mu.
func (e *Engine) parallelDegreeLocked(spec QuerySpec, policy SharePolicy) int {
	if !spec.CanParallel() {
		return 1
	}
	d := spec.Parallel
	if d == 0 {
		if pp, ok := policy.(ParallelPolicy); ok {
			d = pp.Degree(spec.Model, e.active+1)
		}
	}
	if d > e.opts.Workers {
		d = e.opts.Workers
	}
	if d < 1 {
		d = 1
	}
	return d
}

// newGroupLocked instantiates the shared sub-plan — the subtree rooted at
// the pivot — and the first member's private part. Caller holds e.mu. A
// non-nil policy makes the group joinable (it will accept further members);
// only joinable groups with a declared scan pivot get the in-flight
// machinery. When the shared subtree contains a join with split Build/Probe
// forms declared as a build candidate, the join runs split and the group
// additionally publishes its hash table under the build key (a mixed
// group) — served from the keep-alive cache when the policy admits retained
// work and a fingerprint-matching table is live at the current epoch.
func (e *Engine) newGroupLocked(spec QuerySpec, h *Handle, policy SharePolicy, cp *Compiled) (*shareGroup, error) {
	joinable := policy != nil
	if e.opts.InflightSharing && joinable && spec.Nodes[spec.Pivot].Scan != nil {
		return e.newInflightGroupLocked(spec, h, cp)
	}
	g := &shareGroup{signature: spec.Signature, key: cp.shareKeyAt(spec.Pivot), spec: spec, size: 1}
	pivotOut := &outbox{fanOut: e.opts.FanOut}
	pivotOut.onFirstEmit = func() { e.sealGroup(g) }
	g.pivot = pivotOut
	if joinable {
		// Mirror the shared pipeline in the work-exchange registry: monitors
		// see subplan outlets next to circular and partitioned scans, and
		// the outlet retires when the pivot's output stream ends.
		g.outlet = e.scans.PublishOutlet(g.key)
		g.outlet.Attach()
		outlet := g.outlet
		pivotOut.onClosed = func() {
			outlet.Retire()
			// A pivot stream that ends without emitting a single page never
			// fires onFirstEmit; seal here too, or the spent group stays in
			// e.joinable and later same-key arrivals attach to a closed
			// outbox that can never feed or close their input queues.
			e.sealGroup(g)
		}
	}

	// A shareable build side inside the shared subtree: run the join split
	// and publish the table so different-shaped queries can still amortize
	// the build even when they cannot match the anchor level. When the
	// keep-alive cache retains a fingerprint-matching table at the current
	// epoch, the group's own build is served from it instead: the share
	// starts sealed, cachedBuild masks the build-subtree nodes that never
	// spawn, and the anchor registers as a late attach with zero build work.
	splitJoin := -1
	var bs *buildShare
	var cachedBuild []bool
	if joinable {
		if opt, joinIdx, ok := buildOptionWithin(spec, spec.Pivot); ok {
			splitJoin = joinIdx
			var epoch uint64
			var tbl *relop.HashTable
			hit := false
			if e.cache != nil {
				epoch = cp.epochAtNode(opt.Pivot)
				if e.admitSharedLocked(policy, opt.Model, 2, spec.CanParallel()) {
					tbl, hit = e.lookupCachedTable(cp.buildKeyAt(opt.Pivot), epoch)
				}
			}
			bs = e.newBuildShareLocked(g, cp.buildKeyAt(opt.Pivot), opt, epoch)
			if hit {
				bs.sealCached(tbl)
				cachedBuild = spec.SubtreeMask(opt.Pivot)
				e.buildJoins++
				e.pivotJoins[opt.Pivot]++
			}
			// A member failure poisons the whole group (its error reaches
			// every sink), so stop recruiting into it on either key: retire
			// the build state and seal the group. Without this a mixed
			// group's sealed, still-referenced state would keep admitting
			// fingerprint-matching queries into the stale failure — and a
			// wedged dead chain would make it unsweepable too.
			g.onFail = func() {
				bs.failShare()
				e.sealGroup(g)
			}
		}
	}
	// A construction error below must not strand the published build state:
	// abort it so waiters fail fast and the exchange entry retires.
	built := false
	defer func() {
		if !built && bs != nil {
			bs.failShare()
		}
	}()

	// Fuse the shared part into segments; each segment's boundary (its tail
	// node) gets the outbox — the pivot's fan-out for the pivot segment, a
	// single-consumer outbox over one queue otherwise. Interior nodes of a
	// fused segment have no queue at all.
	mask := spec.SubtreeMask(spec.Pivot)
	include := func(i int) bool {
		return mask[i] && !(cachedBuild != nil && cachedBuild[i])
	}
	runs, _ := fuseRuns(spec, include, e.fuseOK())
	outs := make([]*outbox, len(spec.Nodes))
	queues := make([]*PageQueue, len(spec.Nodes))
	for _, r := range runs {
		tl := r.tail()
		if tl == spec.Pivot {
			outs[tl] = pivotOut
			continue
		}
		q := NewPageQueue(e.sched, spec.Nodes[tl].Name, e.opts.QueueCap)
		queues[tl] = q
		outs[tl] = &outbox{outs: []*PageQueue{q}}
	}
	// Wire the first member's private part before spawning anything so the
	// pivot has a consumer from the start.
	if err := e.attachChain(g, spec, h, cp); err != nil {
		return nil, err
	}
	// Instantiate and spawn shared tasks, one per segment. Build-subtree
	// nodes served from the cache never spawn — their work is the rebuild
	// the retained table saves.
	qOf := func(idx int) *PageQueue { return queues[idx] }
	for _, r := range runs {
		nd := spec.Nodes[r.head]
		if nd.Join != nil && r.head == splitJoin {
			// The split form: a collector builds the shared table once
			// (skipped when the table came from the cache); one shared
			// probe streams the group's probe side against it — through the
			// segment's fused chain — into the usual fan-out. The group
			// holds the probe's reference.
			if !bs.attachProber() {
				return nil, fmt.Errorf("%w: fresh build state rejected attach", ErrBadSpec)
			}
			ob := outs[r.tail()]
			pr, err := fusedProbeOp(spec.Nodes, nd, r, ob)
			if err != nil {
				return nil, err
			}
			if cachedBuild == nil {
				jb, err := nd.Build()
				if err != nil {
					return nil, err
				}
				collector := &buildCollectorTask{name: nd.Name + "/build", jb: jb, in: queues[nd.BuildInput], bs: bs, clock: e.clock, fail: g.fail}
				e.sched.Spawn(collector.name, collector.step)
			}
			pname := fusedName(spec.Nodes, r)
			prober := &probeAttachTask{name: pname, bs: bs, ready: bs.newWaiter(e.sched, nd.Name), probe: pr, in: queues[nd.ProbeInput], out: ob, clock: e.clock, fail: g.fail}
			e.sched.Spawn(pname, prober.step)
			continue
		}
		name, step, err := e.fusedTask(spec, r, qOf, outs[r.tail()], g.fail)
		if err != nil {
			return nil, err
		}
		e.sched.Spawn(name, step)
	}
	built = true
	return g, nil
}

// nodeTask instantiates the execution task for one plan node whose output
// goes to ob, resolving input queues through qOf. It covers the three plain
// node kinds — shared-subtree and member instantiation both route through
// it; only the build-share split forms (collector, probe-attach) are wired
// at the call sites.
func (e *Engine) nodeTask(nd NodeSpec, qOf func(int) *PageQueue, ob *outbox, fail func(error)) (func(*Task) Status, error) {
	emit := func(b *storage.Batch) error { ob.add(b); return nil }
	switch {
	case nd.IsSource():
		src, err := nd.NewSource()
		if err != nil {
			return nil, err
		}
		return (&sourceTask{name: nd.Name, src: src, out: ob, clock: e.clock, fail: fail}).step, nil
	case nd.Op != nil:
		op, err := nd.Op(emit)
		if err != nil {
			return nil, err
		}
		return (&opTask{name: nd.Name, push: op.Push, finish: op.Finish, in: qOf(nd.Input), out: ob, clock: e.clock, fail: fail, releaseInput: relop.Consumes(op)}).step, nil
	case nd.Join != nil:
		jn, err := nd.Join(emit)
		if err != nil {
			return nil, err
		}
		return (&joinTask{name: nd.Name, join: jn, build: qOf(nd.BuildInput), probe: qOf(nd.ProbeInput), out: ob, clock: e.clock, fail: fail, building: true, releaseInput: relop.Consumes(jn)}).step, nil
	default:
		return nil, fmt.Errorf("%w: node %s has no executable form", ErrBadSpec, nd.Name)
	}
}

// newBuildShareLocked publishes a build state for the subtree of spec rooted
// at the candidate pivot and wires it to group g. The state's seal bumps the
// engine's executed-build counter; a retired state (last prober released,
// failure, or sweep) is pruned from the joinable map lazily — at the next
// probe of its key or the next SweepExchange — so retirement never needs
// e.mu. With a keep-alive cache the state's retire hand-off offers the
// sealed table for retention: epoch is the source tables' invalidation
// epoch the artifact was (or will be) built at, and opt.Model — compiled at
// the build pivot — prices the rebuild a future hit would save. key is the
// build-state share key of the subtree at opt.Pivot (already canonicalized
// by the caller's compile artifact). Caller holds e.mu.
func (e *Engine) newBuildShareLocked(g *shareGroup, key string, opt PivotOption, epoch uint64) *buildShare {
	bs := &buildShare{key: key, pivot: opt.Pivot, state: e.scans.PublishBuildState(key)}
	bs.onSeal = func() {
		e.mu.Lock()
		e.hashBuilds++
		e.mu.Unlock()
	}
	if e.cache != nil {
		cache, model := e.cache, opt.Model
		bs.state.SetHandoff(func(v any) {
			if tbl, ok := v.(*relop.HashTable); ok {
				cache.Put(key, tbl, tbl.FootprintBytes(), model, epoch)
			}
		})
	}
	g.build = bs
	g.buildKey = key
	return bs
}

// newBuildGroupLocked instantiates a pure build group anchored at a
// build-side pivot candidate: the shared part is the build subtree plus the
// collector that seals the hash table; every member — the anchor included —
// attaches a private probe phase to the table and runs everything outside
// the build subtree itself. The group stays joinable until the last prober
// releases the table (or the build fails, or the sweep retires a wedged
// build). Caller holds e.mu.
func (e *Engine) newBuildGroupLocked(spec QuerySpec, opt PivotOption, h *Handle, cp *Compiled) (*shareGroup, error) {
	gspec := spec
	gspec.Pivot = opt.Pivot
	gspec.Model = opt.Model
	g := &shareGroup{signature: spec.Signature, spec: gspec, size: 1}
	bs := e.newBuildShareLocked(g, cp.buildKeyAt(opt.Pivot), opt, cp.epochAtNode(opt.Pivot))
	g.key = g.buildKey
	g.onFail = func() {
		bs.failShare()
		e.sealGroup(g)
	}

	// A construction error below must not strand the published state (or a
	// half-wired first member): abort so waiters fail fast and the exchange
	// entry retires.
	built := false
	defer func() {
		if !built {
			bs.failShare()
		}
	}()

	// First member (probe side and above), wired before the build spawns.
	if !bs.attachProber() {
		return nil, fmt.Errorf("%w: fresh build state rejected attach", ErrBadSpec)
	}
	_, start, err := e.buildMember(g, gspec, h, bs, cp)
	if err != nil {
		bs.releaseProber()
		return nil, err
	}
	start()

	// Shared part: the build subtree feeding the collector, fused into
	// segments. The subtree root (the build pivot) always ends a segment —
	// its consumer is the collector, a task boundary — so queues[opt.Pivot]
	// exists whether or not fusion collapsed the nodes below it.
	mask := gspec.SubtreeMask(opt.Pivot)
	joinIdx := gspec.pivotConsumer(opt.Pivot)
	jb, err := gspec.Nodes[joinIdx].Build()
	if err != nil {
		return nil, err
	}
	include := func(i int) bool { return mask[i] }
	runs, _ := fuseRuns(gspec, include, e.fuseOK())
	outs := make([]*outbox, len(gspec.Nodes))
	queues := make([]*PageQueue, len(gspec.Nodes))
	for _, r := range runs {
		tl := r.tail()
		q := NewPageQueue(e.sched, gspec.Nodes[tl].Name, e.opts.QueueCap)
		queues[tl] = q
		outs[tl] = &outbox{outs: []*PageQueue{q}}
	}
	type pendingSpawn struct {
		name string
		step func(*Task) Status
	}
	var spawns []pendingSpawn
	qOf := func(idx int) *PageQueue { return queues[idx] }
	for _, r := range runs {
		name, step, err := e.fusedTask(gspec, r, qOf, outs[r.tail()], g.fail)
		if err != nil {
			return nil, err
		}
		spawns = append(spawns, pendingSpawn{name, step})
	}
	collector := &buildCollectorTask{name: gspec.Nodes[joinIdx].Name + "/build", jb: jb, in: queues[opt.Pivot], bs: bs, clock: e.clock, fail: g.fail}
	for _, p := range spawns {
		e.sched.Spawn(p.name, p.step)
	}
	e.sched.Spawn(collector.name, collector.step)
	built = true
	return g, nil
}

// attachBuildLocked adds a member to a group's shared hash build. It returns
// false (without error) when the table retired concurrently — the caller
// then proceeds to other candidates or a fresh group. Caller holds e.mu.
func (e *Engine) attachBuildLocked(g *shareGroup, spec QuerySpec, h *Handle, cp *Compiled) (bool, error) {
	bs := g.build
	if !bs.attachProber() {
		return false, nil
	}
	_, start, err := e.buildMember(g, spec, h, bs, cp)
	if err != nil {
		bs.releaseProber()
		return false, err
	}
	g.mu.Lock()
	g.size++
	g.mu.Unlock()
	start()
	return true, nil
}

// newInflightGroupLocked instantiates a group whose pivot is a declared
// scan shared through the circular scan registry. The pivot never seals the
// group; it stays joinable until the scan's last consumer completes. Caller
// holds e.mu.
func (e *Engine) newInflightGroupLocked(spec QuerySpec, h *Handle, cp *Compiled) (*shareGroup, error) {
	g := &shareGroup{signature: spec.Signature, key: cp.shareKeyAt(spec.Pivot), spec: spec, size: 1}
	nd := spec.Nodes[spec.Pivot]
	src, err := nd.Scan.newSource()
	if err != nil {
		return nil, err
	}
	cs := e.scans.Publish(g.key, nd.Scan.Table.NumRows(), src.pageRows)
	fs := newInflightScan(nd.Name, src, cs, e.clock, g.fail, e.opts.FanOut)
	fs.retire = func() { e.sealGroup(g) }
	g.inflight = fs
	// Any member's failure aborts the whole group (its error already poisons
	// every member's result): close the scan and all chains so nothing
	// wedges, and retire so new arrivals start a clean group.
	g.onFail = func() {
		fs.abort()
		e.sealGroup(g)
	}

	// Wire the first member's chain before spawning the scan task so the
	// pivot has a consumer from the start.
	in, start, err := e.buildMember(g, spec, h, nil, cp)
	if err != nil {
		return nil, err
	}
	if !fs.attach(in) {
		// Unreachable: a freshly published scan cannot be closed.
		return nil, fmt.Errorf("%w: fresh circular scan rejected attach", ErrBadSpec)
	}
	start()
	e.sched.Spawn(nd.Name, fs.step)
	return g, nil
}

// attachLocked adds a member to an existing, not-yet-started group. Caller
// holds e.mu; group non-started status is stable because sealGroup also
// takes e.mu.
func (e *Engine) attachLocked(g *shareGroup, spec QuerySpec, h *Handle, cp *Compiled) error {
	if err := e.attachChain(g, spec, h, cp); err != nil {
		return err
	}
	g.mu.Lock()
	g.size++
	g.mu.Unlock()
	if g.outlet != nil {
		g.outlet.Attach()
	}
	return nil
}

// attachInflightLocked adds a member to a group whose scan is in progress.
// It returns false (without error) when the scan completed concurrently —
// the caller then starts a fresh group for the query. Caller holds e.mu.
func (e *Engine) attachInflightLocked(g *shareGroup, spec QuerySpec, h *Handle, cp *Compiled) (bool, error) {
	in, start, err := e.buildMember(g, spec, h, nil, cp)
	if err != nil {
		return false, err
	}
	if !g.inflight.attach(in) {
		// Nothing was spawned yet; the unstarted chain is garbage collected.
		return false, nil
	}
	g.mu.Lock()
	g.size++
	g.mu.Unlock()
	start()
	return true, nil
}

// attachChain wires one member's private part (every node outside the
// pivot's subtree, plus the sink) to the group's pivot outbox.
func (e *Engine) attachChain(g *shareGroup, spec QuerySpec, h *Handle, cp *Compiled) error {
	in, start, err := e.buildMember(g, spec, h, nil, cp)
	if err != nil {
		return err
	}
	// The pivot gains its consumer before any task that could feed it runs
	// (for new groups) or while the group is provably unstarted (joins).
	g.pivot.attach(in)
	start()
	return nil
}

// buildMember constructs one member's private part — every node outside the
// subtree rooted at spec.Pivot, plus the sink — without spawning its tasks.
// The private part is an arbitrary tree: further leaf scans run their own
// source tasks, private joins their own build/probe, unary operators their
// chains. What feeds the member from the shared side depends on bs:
//
//   - bs nil (fan-out and in-flight groups): the node consuming the pivot
//     is fed from the returned head queue, which the caller attaches to the
//     group's fan-out before calling start;
//   - bs non-nil (build-share membership): the join consuming the pivot as
//     its build input runs as a probe phase attached to the shared hash
//     table (head is nil — no pages cross the share boundary at all).
//
// The caller has already taken the member's prober reference when bs is
// non-nil; the spawned probe task releases it when it retires.
func (e *Engine) buildMember(g *shareGroup, spec QuerySpec, h *Handle, bs *buildShare, cp *Compiled) (*PageQueue, func(), error) {
	var head *PageQueue
	if bs == nil {
		head = NewPageQueue(e.sched, spec.Signature+"/pivot-out", e.opts.QueueCap)
	}
	rootIdx := len(spec.Nodes) - 1
	type pendingSpawn struct {
		name string
		step func(*Task) Status
	}
	var spawns []pendingSpawn
	sinkIn := head
	if spec.Pivot != rootIdx {
		// The private part fuses like the shared part: segments form over
		// the mask's complement, and only segment tails get a queue. The
		// root is always a tail (the sink is its consumer), so sinkIn is
		// always wired.
		mask := spec.SubtreeMask(spec.Pivot)
		include := func(i int) bool { return !mask[i] }
		runs, _ := fuseRuns(spec, include, e.fuseOK())
		outQ := make([]*PageQueue, len(spec.Nodes))
		for _, r := range runs {
			tl := r.tail()
			outQ[tl] = NewPageQueue(e.sched, spec.Nodes[tl].Name, e.opts.QueueCap)
		}
		// qOf resolves a private node's input: the shared pivot's output
		// arrives on the head queue; everything else is private.
		qOf := func(idx int) *PageQueue {
			if idx == spec.Pivot {
				return head
			}
			return outQ[idx]
		}
		sinkIn = outQ[rootIdx]
		for _, r := range runs {
			nd := spec.Nodes[r.head]
			ob := &outbox{outs: []*PageQueue{outQ[r.tail()]}}
			if nd.Join != nil && bs != nil && nd.BuildInput == spec.Pivot {
				// The member's side of the shared build: probe privately
				// against the group's sealed table, with the segment's
				// fused chain composed onto the probe's emissions.
				pr, err := fusedProbeOp(spec.Nodes, nd, r, ob)
				if err != nil {
					return nil, nil, err
				}
				pname := fusedName(spec.Nodes, r)
				body := &probeAttachTask{name: pname, bs: bs, ready: bs.newWaiter(e.sched, nd.Name), probe: pr, in: qOf(nd.ProbeInput), out: ob, clock: e.clock, fail: g.fail}
				spawns = append(spawns, pendingSpawn{pname, body.step})
				continue
			}
			name, step, err := e.fusedTask(spec, r, qOf, ob, g.fail)
			if err != nil {
				return nil, nil, err
			}
			spawns = append(spawns, pendingSpawn{name, step})
		}
	}
	rootSchema, err := cp.schema(spec, e.rootSchema)
	if err != nil {
		return nil, nil, err
	}
	// The hint is read from the incoming spec, not the artifact: like the
	// models, it is advisory and must track the caller's current estimates.
	sink := e.newSinkTask(g, h, sinkIn, rootSchema, spec.Nodes[rootIdx].RowsHint)
	// Member-private tasks carry the member's trace: one atomic add per
	// quantum, blocked-time across park/wake transitions. Shared-subtree
	// tasks serve the whole group and are attributed to no single member.
	start := func() {
		for _, p := range spawns {
			e.sched.Spawn(p.name, traceStep(h.trace, p.step))
		}
		e.sched.Spawn(spec.Signature+"/sink", traceStep(h.trace, sink.step))
	}
	return head, start, nil
}

// newSinkTask builds the sink that drains in into one member's result batch
// and completes its handle (with the group's first error, if any). hint
// pre-sizes the result's column buffers to the plan's estimated output
// cardinality — the same currency the sharing model prices, spent here on
// allocation instead of admission.
func (e *Engine) newSinkTask(g *shareGroup, h *Handle, in *PageQueue, schema storage.Schema, hint int) *sinkTask {
	sink := &sinkTask{in: in, result: storage.NewBatch(schema, hint)}
	sink.complete = func(res *storage.Batch) {
		err := g.firstError()
		if err == nil {
			// A successful whole-plan-fingerprinted result is a shareable
			// artifact: offer it to the keep-alive cache (no-op without one).
			e.captureResult(h, res)
		}
		h.mu.Lock()
		h.result = res
		h.err = err
		h.completed = time.Now()
		wall := h.completed.Sub(h.submitted)
		h.mu.Unlock()
		g.mu.Lock()
		finalSize := g.size
		g.mu.Unlock()
		e.observeCompletion(h, err, finalSize, wall)
		e.mu.Lock()
		e.completed++
		e.active--
		if e.active == 0 && e.drained != nil {
			close(e.drained)
		}
		e.mu.Unlock()
		close(h.done)
		if h.onDone != nil {
			h.onDone(res, err)
		}
	}
	return sink
}

// sealGroup marks a group started and un-joinable. For submission-time
// groups this fires when the pivot produces its first page; for in-flight
// groups, when the circular scan retires (its last consumer completed).
func (e *Engine) sealGroup(g *shareGroup) {
	e.mu.Lock()
	defer e.mu.Unlock()
	g.mu.Lock()
	first := !g.started
	g.started = true
	size := g.size
	g.mu.Unlock()
	if first && g.trace != nil {
		g.trace.Event("seal", fmt.Sprintf("m=%d", size))
	}
	if e.joinable[g.key] == g {
		delete(e.joinable, g.key)
	}
}

// tableIdentity resolves a scanned table's in-process identity qualifier for
// canonical fingerprints: 0 while the table is the only instance this engine
// has seen under its name — the canonical, cross-process form, so equal
// catalogs in distinct engines still derive equal keys — and the table's
// process-unique ID once the name is already bound to a different instance.
// Qualified keys can never collide with the first instance's groups or
// keep-alive artifacts, even when a drop-and-recreate restarts the epoch at
// 0. The binding is first-sight and permanent for the engine's lifetime
// (one pointer retained per name); engines sharing one artifact cache across
// disagreeing same-named catalogs remain out of scope, exactly as before.
func (e *Engine) tableIdentity(t *storage.Table) uint64 {
	e.identMu.Lock()
	defer e.identMu.Unlock()
	first, ok := e.tableIdent[t.Name]
	if !ok {
		e.tableIdent[t.Name] = t
		return 0
	}
	if first == t {
		return 0
	}
	return t.ID()
}

// rootSchema derives the output schema of the spec's root node by
// instantiating throwaway operators (factories are cheap).
func (e *Engine) rootSchema(spec QuerySpec) (storage.Schema, error) {
	nd := spec.Nodes[len(spec.Nodes)-1]
	nop := func(*storage.Batch) error { return nil }
	switch {
	case nd.IsSource():
		src, err := nd.NewSource()
		if err != nil {
			return storage.Schema{}, err
		}
		return src.Schema(), nil
	case nd.Op != nil:
		op, err := nd.Op(nop)
		if err != nil {
			return storage.Schema{}, err
		}
		return op.OutSchema(), nil
	case nd.Join != nil:
		jn, err := nd.Join(nop)
		if err != nil {
			return storage.Schema{}, err
		}
		return jn.OutSchema(), nil
	default:
		return storage.Schema{}, fmt.Errorf("%w: empty node", ErrBadSpec)
	}
}

// GroupSize reports the current member count of the joinable group matching
// the argument — a subplan share key (exact) or a query signature (0 if
// none). Several groups can share a signature at different pivot levels;
// the largest wins.
func (e *Engine) GroupSize(signatureOrKey string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	best := 0
	measure := func(g *shareGroup) {
		g.mu.Lock()
		if g.size > best {
			best = g.size
		}
		g.mu.Unlock()
	}
	if g := e.joinable[signatureOrKey]; g != nil {
		measure(g)
		return best
	}
	for _, g := range e.joinable {
		if g.signature == signatureOrKey {
			measure(g)
		}
	}
	return best
}

// OpOf adapts a relop unary operator constructor into an OpFactory.
func OpOf(build func(emit relop.Emit) (relop.Operator, error)) OpFactory { return build }
