package engine

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/relop"
	"repro/internal/storage"
)

// PageSource produces pages for a leaf operator (table scan). Next performs
// at most one page worth of work per call; it may return a nil batch with
// eof=false when a quantum of work selected no rows (highly selective
// predicates still cost work).
type PageSource interface {
	// Schema describes emitted pages.
	Schema() storage.Schema
	// Next returns the next page (nil if this quantum produced no rows) and
	// whether the source is exhausted.
	Next() (b *storage.Batch, eof bool, err error)
}

// SourceFactory creates a fresh PageSource per query instantiation.
type SourceFactory func() (PageSource, error)

// OpFactory creates a fresh unary operator whose output goes to emit.
type OpFactory func(emit relop.Emit) (relop.Operator, error)

// JoinOperator is the two-input operator contract (hash join): the build
// side streams in first and is sealed with FinishBuild, then the probe side
// streams through Push/Finish. *relop.HashJoin satisfies it.
type JoinOperator interface {
	OutSchema() storage.Schema
	PushBuild(*storage.Batch) error
	FinishBuild() error
	Push(*storage.Batch) error
	Finish() error
}

// JoinFactory creates a fresh join operator per query instantiation.
type JoinFactory func(emit relop.Emit) (JoinOperator, error)

// ProbeOperator is the probe phase of a split hash join: the engine attaches
// it to a sealed hash table — its own group's, or one built once and shared
// across queries — then streams the probe side through Push/Finish.
// *relop.HashJoinProbe satisfies it.
type ProbeOperator interface {
	OutSchema() storage.Schema
	AttachTable(*relop.HashTable) error
	Push(*storage.Batch) error
	Finish() error
}

// ProbeFactory creates a fresh probe-phase operator per member.
type ProbeFactory func(emit relop.Emit) (ProbeOperator, error)

// BuildFactory creates the build-phase operator that materializes a join's
// hash table (run once per shared build, not per member).
type BuildFactory func() (*relop.JoinBuild, error)

// ScanSpec declares a base-table scan transparently enough for the engine
// to share it in flight: unlike an opaque SourceFactory, the engine can see
// the table (so it can publish a circular scan in the registry) and read
// arbitrary row spans (so a late joiner's wrap-around lap can re-cover the
// prefix it missed).
type ScanSpec struct {
	// Table is the base table scanned.
	Table *storage.Table
	// Pred filters rows (nil = all rows).
	Pred relop.Pred
	// Cols projects the named columns (nil = all columns).
	Cols []string
	// PageRows is the scan quantum in rows (0 = derive from page size).
	PageRows int
}

// NodeSpec describes one operator in a query spec. Exactly one of Source,
// Scan, Op, Join must be set.
type NodeSpec struct {
	// Name identifies the node; it doubles as the stage name for
	// profiling/busy-time accounting.
	Name string
	// RowsHint estimates the node's output cardinality (0 = unknown). The
	// engine pre-sizes the sink's result buffer from the root node's hint;
	// plan builders additionally close their operator factories over
	// per-node hints (relop.NewJoinBuildSized, relop.NewHashAggSized) so
	// hash maps and buffers start at their final size instead of growing
	// through doubling. Hints come from the same cardinality estimates the
	// sharing model prices work with — one currency, two consumers.
	RowsHint int
	// Fingerprint is the node's canonical identity for subplan sharing:
	// two nodes with equal fingerprints (and equally-fingerprinted inputs)
	// compute the same thing. Declared scans fingerprint themselves
	// structurally and may leave this empty; operator and join factories are
	// opaque closures, so a plan builder that wants the node inside a shared
	// prefix must declare its identity here. Empty on a non-scan node means
	// opaque: sharing through that node falls back to whole-Signature
	// matching (PR 1 semantics).
	Fingerprint string
	// Source makes this node a leaf producer.
	Source SourceFactory
	// Scan makes this node a declared base-table scan — a leaf producer the
	// engine may additionally share in flight when it is the pivot.
	Scan *ScanSpec
	// Op makes this node a unary operator over Input.
	Op OpFactory
	// Input is the child node index for unary operators.
	Input int
	// Partial and Merge, when both set on the root operator of a
	// parallelizable spec, are its clone-local and fan-in forms: under
	// parallel execution each clone runs Partial over its partition of the
	// scan and the clone outputs fan in through one synthesized Merge node,
	// which must emit exactly what Op over the whole input would have
	// (e.g. relop.NewPartialHashAgg / relop.NewMergeHashAgg). Nodes between
	// the scan and the root run their plain Op per clone and must therefore
	// be partition-safe — row-local operators like Filter and Project.
	Partial OpFactory
	Merge   OpFactory
	// Join makes this node a binary build/probe operator.
	Join JoinFactory
	// BuildInput and ProbeInput are the child node indices for joins.
	BuildInput, ProbeInput int
	// Build and Probe, when both set on a Join node, are its split forms:
	// Build materializes the immutable hash table (run once per shared
	// build) and Probe attaches to a sealed table and streams the probe side
	// (run per member). Declaring them makes the join's build side a
	// first-class shareable artifact — a PivotOption with Build set may then
	// anchor sharing on the build subtree, and concurrent queries whose
	// build subplans fingerprint-match run the build once and probe
	// privately. Absent, the join executes only through the opaque Join
	// factory (PR 3 semantics).
	Build BuildFactory
	Probe ProbeFactory
}

// IsSource reports whether the node is a leaf producer (Source or Scan).
func (nd NodeSpec) IsSource() bool { return nd.Source != nil || nd.Scan != nil }

// NewSource instantiates the node's page source, whether it was declared
// opaquely (Source) or transparently (Scan). Every call produces a fresh,
// independent instance.
func (nd NodeSpec) NewSource() (PageSource, error) {
	switch {
	case nd.Source != nil:
		return nd.Source()
	case nd.Scan != nil:
		return nd.Scan.newSource()
	default:
		return nil, fmt.Errorf("%w: node %s is not a source", ErrBadSpec, nd.Name)
	}
}

// ScanNode builds a NodeSpec for a declared, in-flight-shareable table scan.
func ScanNode(name string, tbl *storage.Table, pred relop.Pred, cols []string, pageRows int) NodeSpec {
	return NodeSpec{Name: name, Scan: &ScanSpec{Table: tbl, Pred: pred, Cols: cols, PageRows: pageRows}}
}

// QuerySpec describes an executable query: nodes in topological order (root
// last) plus the sharing pivot. The subtree rooted at the pivot is the
// shared sub-plan; every node outside it — an arbitrary tree of operators,
// joins, and even other leaf scans — is instantiated privately per sharer,
// with the member's node that consumes the pivot fed from the group's
// fan-out (or, for build-side pivots, attached to the group's sealed hash
// table).
type QuerySpec struct {
	// Signature identifies the shareable sub-plan; only queries with equal
	// signatures may merge (Cordoba detects sharing opportunities by
	// matching packets at stage queues; signature equality is our packet
	// match).
	Signature string
	// PlanKey, when non-empty, declares the spec a member of a stable plan
	// family: every spec submitted under the same PlanKey has the same node
	// structure (same tables, predicates, fingerprints, pivot candidates),
	// so the engine may reuse one compiled artifact — canonical
	// fingerprints, share keys, sorted pivot options, the root schema —
	// across submissions instead of re-rendering them (see compile.go). The
	// compiled artifact is epoch-validated against the scanned tables and
	// structurally guarded against key misuse, so a wrong or reused PlanKey
	// degrades to a recompile, never to a wrong plan. Empty means compile
	// fresh on every submit.
	PlanKey string
	// Nodes are the operators, children before parents, root last.
	Nodes []NodeSpec
	// Pivot indexes the sharing pivot node.
	Pivot int
	// Model carries the query's analytical-model coefficients, used by
	// model-guided sharing policies at admission time.
	Model core.Query
	// Pivots optionally offers alternative sharing pivots: each option is a
	// node index at which the plan may merge with a group, paired with the
	// model compiled against that pivot. When empty the spec shares only at
	// Pivot. At submission the engine probes options from the highest level
	// down ("the highest point where sharing is possible") for a joinable
	// group, and a pivot-selecting policy chooses the level a fresh group
	// anchors at.
	Pivots []PivotOption
	// Parallel requests unshared execution as this many partitioned clones
	// (0 = let the submission policy decide, 1 = force serial). Degrees
	// above 1 require a parallelizable plan (see CanParallel) and are
	// clamped to the engine's worker count at submission.
	Parallel int
}

// PivotOption is one candidate sharing pivot: a node index the plan may
// merge at, with the model coefficients compiled against that pivot (the
// split of work into below/pivot/above depends on the level).
type PivotOption struct {
	// Pivot indexes the candidate pivot node.
	Pivot int
	// Build marks a build-side candidate: Pivot is the root of the build
	// subtree of a join declaring split Build/Probe forms, and the shared
	// artifact is the sealed hash table that subtree builds — members run
	// the build once and probe privately — rather than a fanned-out page
	// stream. The group stays joinable for as long as the table is live
	// (sealed tables lose nothing to late joiners).
	Build bool
	// Model is the query's work model compiled at this pivot.
	Model core.Query
}

// Spec validation errors.
var (
	ErrBadSpec = errors.New("engine: invalid query spec")
)

// pivotOptions returns the spec's candidate pivots ordered highest level
// first, falling back to the declared (Pivot, Model) when none are offered.
func (q QuerySpec) pivotOptions() []PivotOption {
	if len(q.Pivots) == 0 {
		return []PivotOption{{Pivot: q.Pivot, Model: q.Model}}
	}
	out := append([]PivotOption(nil), q.Pivots...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Pivot > out[j-1].Pivot; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// CanParallel reports whether the spec can run as partitioned clones: the
// plan is a linear chain rooted at a declared base-table scan (node 0), so
// morsels of the scan can be dispensed to clones, and the root operator
// provides the Partial/Merge pair the synthesized fan-in needs.
func (q QuerySpec) CanParallel() bool {
	if len(q.Nodes) < 2 || q.Nodes[0].Scan == nil {
		return false
	}
	for i := 1; i < len(q.Nodes); i++ {
		if q.Nodes[i].Op == nil || q.Nodes[i].Input != i-1 {
			return false
		}
	}
	root := q.Nodes[len(q.Nodes)-1]
	return root.Partial != nil && root.Merge != nil
}

// SubtreeMask returns, per node, whether it belongs to the subtree rooted at
// pivot — the shared sub-plan when sharing anchors there. Because every
// non-root node is consumed exactly once, the subtree is self-contained: no
// node inside it is consumed outside it except the pivot itself.
func (q QuerySpec) SubtreeMask(pivot int) []bool {
	in := make([]bool, len(q.Nodes))
	var mark func(i int)
	mark = func(i int) {
		in[i] = true
		nd := q.Nodes[i]
		switch {
		case nd.Op != nil:
			mark(nd.Input)
		case nd.Join != nil:
			mark(nd.BuildInput)
			mark(nd.ProbeInput)
		}
	}
	if pivot >= 0 && pivot < len(q.Nodes) {
		mark(pivot)
	}
	return in
}

// pivotConsumer returns the index of the node consuming pivot's output, or
// -1 for the root (the sink consumes it).
func (q QuerySpec) pivotConsumer(pivot int) int {
	for i, nd := range q.Nodes {
		if nd.Op != nil && nd.Input == pivot {
			return i
		}
		if nd.Join != nil && (nd.BuildInput == pivot || nd.ProbeInput == pivot) {
			return i
		}
	}
	return -1
}

// validateBuildOption checks a build-side pivot candidate: the candidate
// node must be the build input of a join declaring split Build/Probe forms.
func (q QuerySpec) validateBuildOption(pivot int) error {
	c := q.pivotConsumer(pivot)
	if c < 0 {
		return fmt.Errorf("%w: build pivot %d has no consuming join", ErrBadSpec, pivot)
	}
	nd := q.Nodes[c]
	if nd.Join == nil || nd.BuildInput != pivot {
		return fmt.Errorf("%w: build pivot %d is not the build input of a join", ErrBadSpec, pivot)
	}
	if nd.Build == nil || nd.Probe == nil {
		return fmt.Errorf("%w: join %d (%s) lacks the Build/Probe split a build pivot needs", ErrBadSpec, c, nd.Name)
	}
	return nil
}

// Validate checks structural constraints: node kinds, topological child
// references, single consumption of every non-root node, well-formed pivot
// candidates (build-side candidates must anchor the build input of a join
// with split forms), and a parallelizable plan when a clone degree is
// requested. The part outside a pivot's subtree may be any tree — operators,
// joins, further leaf scans — since members instantiate it privately.
func (q QuerySpec) Validate() error {
	if len(q.Nodes) == 0 {
		return fmt.Errorf("%w: no nodes", ErrBadSpec)
	}
	if q.Parallel < 0 {
		return fmt.Errorf("%w: negative parallel degree %d", ErrBadSpec, q.Parallel)
	}
	if q.Parallel > 1 && !q.CanParallel() {
		return fmt.Errorf("%w: parallel degree %d on a non-parallelizable plan", ErrBadSpec, q.Parallel)
	}
	if q.Pivot < 0 || q.Pivot >= len(q.Nodes) {
		return fmt.Errorf("%w: pivot %d out of range", ErrBadSpec, q.Pivot)
	}
	consumed := make([]int, len(q.Nodes))
	for i, nd := range q.Nodes {
		kinds := 0
		if nd.Source != nil {
			kinds++
		}
		if nd.Scan != nil {
			kinds++
		}
		if nd.Op != nil {
			kinds++
		}
		if nd.Join != nil {
			kinds++
		}
		if kinds != 1 {
			return fmt.Errorf("%w: node %d (%s) must set exactly one of Source/Scan/Op/Join", ErrBadSpec, i, nd.Name)
		}
		if (nd.Build != nil) != (nd.Probe != nil) {
			return fmt.Errorf("%w: node %d (%s) must set Build and Probe together", ErrBadSpec, i, nd.Name)
		}
		if nd.Build != nil && nd.Join == nil {
			return fmt.Errorf("%w: node %d (%s) declares Build/Probe without Join", ErrBadSpec, i, nd.Name)
		}
		if nd.Scan != nil && nd.Scan.Table == nil {
			return fmt.Errorf("%w: node %d (%s) scan has no table", ErrBadSpec, i, nd.Name)
		}
		if nd.Op != nil {
			if nd.Input < 0 || nd.Input >= i {
				return fmt.Errorf("%w: node %d (%s) input %d not topological", ErrBadSpec, i, nd.Name, nd.Input)
			}
			consumed[nd.Input]++
		}
		if nd.Join != nil {
			for _, in := range []int{nd.BuildInput, nd.ProbeInput} {
				if in < 0 || in >= i {
					return fmt.Errorf("%w: node %d (%s) join input %d not topological", ErrBadSpec, i, nd.Name, in)
				}
				consumed[in]++
			}
			if nd.BuildInput == nd.ProbeInput {
				return fmt.Errorf("%w: node %d (%s) build and probe share input", ErrBadSpec, i, nd.Name)
			}
		}
	}
	for i := range q.Nodes {
		want := 1
		if i == len(q.Nodes)-1 {
			want = 0 // root feeds the sink
		}
		if consumed[i] != want {
			return fmt.Errorf("%w: node %d (%s) consumed %d times, want %d", ErrBadSpec, i, q.Nodes[i].Name, consumed[i], want)
		}
	}
	for _, opt := range q.Pivots {
		if opt.Pivot < 0 || opt.Pivot >= len(q.Nodes) {
			return fmt.Errorf("%w: candidate pivot %d out of range", ErrBadSpec, opt.Pivot)
		}
		if opt.Build {
			if err := q.validateBuildOption(opt.Pivot); err != nil {
				return err
			}
		}
	}
	return nil
}

// TableSource returns a SourceFactory scanning tbl with pred over the given
// columns, one page of base-table rows per quantum.
func TableSource(tbl *storage.Table, pred relop.Pred, cols []string, pageRows int) SourceFactory {
	sc := &ScanSpec{Table: tbl, Pred: pred, Cols: cols, PageRows: pageRows}
	return func() (PageSource, error) { return sc.newSource() }
}

// newSource instantiates the scan's page reader.
func (sc *ScanSpec) newSource() (*tableSource, error) {
	s := sc.Table.Schema()
	useCols := sc.Cols
	if useCols == nil {
		for _, c := range s.Cols {
			useCols = append(useCols, c.Name)
		}
	}
	out, err := s.Project(useCols...)
	if err != nil {
		return nil, err
	}
	p := sc.Pred
	if p == nil {
		p = relop.True{}
	}
	rows := sc.PageRows
	if rows <= 0 {
		rows = storage.RowsPerPage(out, storage.DefaultPageSize)
	}
	return &tableSource{tbl: sc.Table, pred: p, cols: useCols, out: out, pageRows: rows}, nil
}

type tableSource struct {
	tbl      *storage.Table
	pred     relop.Pred
	cols     []string
	out      storage.Schema
	pageRows int
	offset   int
	sel      []int // reused selection buffer; output batches never alias it
}

// Schema implements PageSource.
func (t *tableSource) Schema() storage.Schema { return t.out }

// Next implements PageSource: one page of base rows per call.
func (t *tableSource) Next() (*storage.Batch, bool, error) {
	n := t.tbl.NumRows()
	if t.offset >= n {
		return nil, true, nil
	}
	hi := t.offset + t.pageRows
	if hi > n {
		hi = n
	}
	b, err := t.readSpan(t.offset, hi)
	if err != nil {
		return nil, false, err
	}
	t.offset = hi
	return b, t.offset >= n, nil
}

// readSpan filters and projects base rows [lo, hi), returning nil when the
// predicate selects none. Circular scans call it with registry-chosen spans
// (including wrap-around re-reads for late joiners).
func (t *tableSource) readSpan(lo, hi int) (*storage.Batch, error) {
	window := t.tbl.Data().Slice(lo, hi)
	sel, err := t.pred.Filter(window, relop.FillSel(t.sel, window.Len()))
	if err != nil {
		return nil, err
	}
	t.sel = sel // retain the backing array for the next span
	if len(sel) == 0 {
		return nil, nil
	}
	// Scan output pages come from the page pool: a Consuming chain (or the
	// staged equivalent) releases each page once folded, returning the
	// column storage here for the next span instead of to the allocator.
	res := storage.GetPage(t.out, len(sel))
	for i, name := range t.cols {
		v, err := window.Col(name)
		if err != nil {
			return nil, err
		}
		res.Vecs[i].AppendGather(v, sel)
	}
	return res, nil
}
